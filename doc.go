// Package repro is a from-scratch Go reproduction of Keim, Kriegel &
// Seidl, "Supporting Data Mining of Large Databases by Visual Feedback
// Queries" (ICDE 1994) — the VisDB system.
//
// The public API lives in repro/visdb; the experiment harness that
// regenerates every figure and quantitative claim of the paper lives in
// cmd/visdbbench; repository-level benchmarks for each experiment are
// in bench_test.go. See README.md for an overview, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record.
package repro
