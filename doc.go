// Package repro is a from-scratch Go reproduction of Keim, Kriegel &
// Seidl, "Supporting Data Mining of Large Databases by Visual Feedback
// Queries" (ICDE 1994) — the VisDB system.
//
// The public API lives in repro/visdb; the experiment harness that
// regenerates every figure and quantitative claim of the paper lives in
// cmd/visdbbench; repository-level benchmarks for each experiment are
// in bench_test.go. See README.md for an overview, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// # Building and testing
//
// The repository is a single Go module (module repro, Go ≥ 1.24) with
// no external dependencies:
//
//	go build ./... && go test ./...
//	go vet ./...
//	go test -bench=. -benchmem          # repository benchmarks
//	go test -run '^$' -bench SortRanking -benchtime=1x .  # CI smoke
//
// # Ranking: selection instead of sorting
//
// The paper observes that "query processing time is dominated by the
// time needed for sorting". Since only GridW×GridH·(numPreds+1)
// distance values are ever displayed, the engine ranks by selection by
// default: internal/topk quickselects the display budget in expected
// O(n) and relevance normalization finds its reduction range with a
// bounded heap instead of a full sort. Two engine options control the
// trade-off:
//
//   - Options.FullSort: exact O(n log n) ranking of every item (the
//     A-series ablations, exact quantiles; implied by Arrange2D).
//   - Options.Workers: bounds the worker pool that chunks
//     per-predicate distance computation across rows and sibling
//     predicates (0 → GOMAXPROCS). Parallel and serial runs produce
//     bit-identical results.
//
// # Incremental feedback loop
//
// The paper's interactivity (section 4.3) is a tight modify-recompute
// loop: drag a slider, recompute, repaint. Two layers make the
// recompute incremental while staying bit-identical to a cold run:
//
//   - core.RunCache (used by every session, or explicitly via
//     Engine.RunCached) caches per-predicate leaf distance vectors
//     across reruns, keyed by the condition's structural signature —
//     table, attribute, operator, literals, distance function, but NOT
//     the weighting factor. A weight-only rerun recomputes no
//     distances; a single-slider drag recomputes exactly one leaf.
//     Hot leaves additionally get a sorted quantile index so the
//     reduction-first normalization range for any weight is O(1).
//     Keys embed table row counts, so entries never serve stale data;
//     invalidation (per-condition on range edits, pruning on query
//     replacement, an LRU cap) only bounds memory.
//   - relevance.Evaluate is a chunk-fused evaluator: normalization
//     ranges come from cheap scans and selections, then one chunked
//     pass per tree level scales children (leaf chunks in L1-resident
//     scratch), combines them, and folds range statistics — instead of
//     ~7 O(n) passes with an n-sized allocation per node. Output
//     buffers are pooled across reruns, and per-predicate window
//     vectors materialize lazily (windows only read the displayed
//     items). The pooling contract: a session Result is valid until
//     the next recalculation.
//
// BenchmarkReweight and BenchmarkSliderDrag track the interactive
// latencies across cheap-numeric, approximate-join and edit-distance
// workloads at n = 1e6.
//
// # Rank before scale: monotonic-transform-aware top-k with block pruning
//
// After the leaves are cached and the evaluation fused, a warm rerun
// on cheap predicates is bounded by the combination math itself: the
// root combine kernel's final scalar step — the geometric root
// (Πd^w)^(1/Σw) of OR, the Lp root, the weight-normalized division —
// the root's [0, Scale] re-normalization, and the full-array selection
// pass. All of those transforms are MONOTONE, and only k ≪ n values
// are ever displayed, so on the default selection path the engine now
// ranks the root's RAW combined values and applies the final
// transforms only to the top-k survivors (relevance.EvalOptions.
// DeferRoot → Result.RankRoot):
//
//   - The root combine runs chunk-on-demand with raw kernels (no
//     final root/division), streaming each chunk through a
//     threshold-seeded lexicographic (value, index) selector
//     (topk.StreamSelector).
//   - Block pruning: per-chunk lower bounds on the raw combined value
//     — folded from per-leaf chunk minima (relevance.LeafChunkStats,
//     cached next to the quantile index) through the monotone child
//     scalings — let the pass skip every chunk that provably cannot
//     beat the running k-th candidate. The session carries the
//     previous recalculation's k-th raw value as the seed threshold,
//     so a weight drag starts pruning from its very first chunk; a
//     stale seed can only cost a re-run of the selection, never
//     correctness, and query/range edits clear it.
//   - Tie resolution keeps the result bit-identical to
//     Options.FullSort: scaled-space ties (values clamped to Scale,
//     degenerate ranges, rounding collisions) order by item index, so
//     the cut computes the exact raw-domain preimage of the k-th
//     scaled value by monotone bisection (topk.SupWhere) and walks
//     indices ascending — a skipped chunk is provably inside the tie
//     class (unbounded preimage: the Scale clamp), provably outside
//     it, or gets materialized after all.
//   - Result.Combined() materializes the full scaled vector lazily
//     (Stats and exact-match aggregation still see exact values);
//     displays, wire responses and windows read the ranked prefix via
//     Result.DistanceOfRank and never force it.
//
// StageTimings.Scale times the survivor scaling, and Pruned/Chunks
// count the skipped combine chunks (also exposed over the wire).
// The identity property — bitwise-equal rows, distances, relevances
// and order against FullSort under randomized interaction scripts,
// clamp-boundary ties, zero/NaN distances and every combiner mode —
// is asserted by TestRankBeforeScaleMatchesFullSortScript,
// TestDeferredRankMatchesEagerSelection and the selection suite.
//
// # Columnar segments: catalogs larger than RAM
//
// internal/dataset stores every column as chunk-aligned segments of
// SegmentSize = 4096 values — the same chunk size the fused evaluator
// and the block-pruning pass already iterate in — behind a
// segment-reader interface with two backends:
//
//   - In-memory (the default): segments are plain slices; Append works.
//   - File-backed (dataset.WriteCatalogFile / OpenCatalogFile): a
//     write-once segment-catalog file (currently "VSEGCAT3"; streamed
//     with O(segment) memory, JSON footer mapping every
//     table/field/segment to its blob, per-field min/max stats, FNV-1a
//     content epoch). Reads go through mmap where available (linux) or
//     os.File.ReadAt everywhere else (OpenOptions.ForceReadAt forces
//     the fallback), into a bounded decoded-segment LRU cache —
//     resident memory is O(cache budget), not O(catalog), and the
//     format is immutable (Append is rejected).
//
// The catalog epoch flows into every structural cache key (a single
// keying helper in internal/core builds all of them), so a regenerated
// file can never cross-serve another file's cached vectors; in-memory
// catalogs report epoch 0 and keep their row-count keying. Serving a
// catalog from disk is bitwise identical to serving it from memory —
// asserted by lockstep randomized-script replays over both backends
// under a deliberately tiny cache (TestDiskReplayBitIdentical,
// TestDiskCatalogReplayMatchesInMemory), race-clean in CI. visdbd
// accepts "name:path" catalog specs (-catalog-cache-mb bounds the
// decoded cache), visdbgen -format seg writes the files (-seg-version
// selects an older layout), and CSV ingest streams rows chunk-by-chunk
// with O(chunk) peak allocation.
//
// # Segment format v3: per-segment stats pushdown and codecs
//
// The "VSEGCAT3" layout (v1/v2 files stay readable; all three round
// trip bit-identically through both read backends) extends the footer
// and the blob encoding; the file shape is unchanged — blobs, then a
// JSON footer, then the 20-byte tail [footer CRC32C | footer length |
// "VSEGEND3"]:
//
//   - Per-segment statistics. Every numeric segment blob's footer
//     entry carries min/max (hex float strings — exact bits,
//     infinities survive JSON) and a count of unusable rows (nulls,
//     plus NaN entries of float columns), exposed through
//     dataset.SegmentStatser. The soundness contract: min/max bound
//     every usable value the segment decodes to under the
//     Value.AsFloat coercion, and stats that fail to parse are a typed
//     ErrCorruptSegment at open — never silently dropped pruning.
//   - Predicate pushdown. A cold file-backed range scan consults the
//     stats before decoding: a segment with stats, zero unusable rows
//     and [min, max] inside the query interval (strict bounds
//     honored) provably scores range distance exactly 0 on every row,
//     so the decode is skipped and the zero-filled distance range IS
//     the exact answer — results stay bit-identical by construction,
//     which is also why only the all-inside case is skipped (a
//     wholly-outside segment has per-row distances the footer cannot
//     reproduce). Skipped chunks' entries in the per-leaf chunk-stats
//     index are synthesized from the footer proof, so deferred-root
//     block pruning composes with the pushdown on the very first cold
//     run. Attribute values of skipped segments materialize lazily on
//     display-path touches (slider first/last labels).
//     StageTimings.SegsSkipped/Segs (wire: segs_skipped/segs)
//     attribute it; Options.NoSegmentStats is the ablation gate, and
//     the BENCH_9.json cold-scan floors fail CI if the pushdown
//     silently deactivates.
//   - Segment codecs. Int and time blobs are delta-coded
//     (zigzag+uvarint over the word stream), float blobs
//     xor-with-previous coded, behind the decoded-segment LRU so
//     decode cost stays attributed to fileSource.decode; a codec is
//     kept only when strictly smaller than the raw payload, blob CRCs
//     cover the on-disk (compressed) bytes, and clustered columns
//     shrink the file measurably (enforced as a bench floor).
//
// # Incremental interior normalization
//
// With leaves cached and the root deferred, a warm rerun's remaining
// full-array pass was the interior nodes': every AND/OR node re-ran
// its combine pass just to re-derive its normalization range. Cached
// runs now keep a relevance.InteriorEntry per interior node — its raw
// combined vector plus a per-chunk equal-width histogram sketch of the
// combined values — keyed by a structural signature over the subtree
// (children's identities and effective weights, combiner options, NOT
// the node's own weight, so own-weight and sibling-weight drags reuse
// the entry; leaf identities are the leaves' full cache keys, which
// keeps De-Morganed negations and reweighted subqueries with colliding
// labels apart). A warm rerun serves the node's vector from the entry
// and localizes the order statistic its normalization needs to one
// histogram bucket, gathering candidates only from chunks whose bucket
// count is nonzero — an exactness guard falls back to the full scan
// whenever more than half the chunks would be touched, so the selected
// range is always exactly the full-scan range and results stay
// bit-identical (Options.NoInteriorSketch is the ablation gate).
// Entries live in the private RunCache tier and promote through the
// SharedCache's separate quarter-budget interior tier, so a second
// session's first run already takes the fast path.
// StageTimings.SketchHits/SketchRescans (and the wire timings)
// attribute it; the BENCH_9.json floors fail CI if the sketch silently
// deactivates or stops beating the sketchless baseline.
//
// # Shared cache: serving many sessions on one catalog
//
// Concurrent sessions on the same catalog attach to a core.SharedCache
// (session.NewShared / visdb.NewSessionShared), turning the predicate
// cache into three tiers resolved in order:
//
//	private RunCache  →  catalog SharedCache  →  recompute
//
// The shared tier holds immutable leaf distance vectors and their
// promoted quantile indexes under the same structural keys as the
// private tier, with singleflight fills (N sessions dragging the same
// slider compute a leaf once) and LRU + byte-budget eviction. The
// invalidation rules are asymmetric by design:
//
//   - A range edit invalidates the superseded range in BOTH tiers
//     (the dead range is dead for everyone); sessions still at that
//     range keep their private copies.
//   - Query replacement (SetQuery/Undo) prunes only the PRIVATE tier —
//     one session abandoning a query says nothing about the others.
//   - Eviction and invalidation only ever unlink entries
//     (copy-on-invalidate): vectors are immutable, so sessions holding
//     them through their private tier or a live Result are unaffected,
//     and correctness never depends on invalidation (keys embed table
//     names and row counts).
//
// Everything downstream of the leaves — evaluation buffers, rankings,
// Results — stays session-private, so sessions remain single-goroutine
// state machines while the catalog tier is fully concurrent.
// TestConcurrentSharedSessionsMatchFreshEngine (run under -race in CI)
// asserts bitwise identity between shared-cache sessions and isolated
// fresh engines at every step of randomized concurrent scripts;
// BenchmarkConcurrentSessions and the visdbbench -concurrent traffic
// mode measure the serving path.
//
// Admission into the shared tier is cost-aware (core.SharedOptions):
// only leaves whose measured compute time reaches AdmitMinCost
// (default ~1ms — edit-distance, join and subquery leaves) become
// resident, so a single session sweeping hundreds of slider positions
// over cheap numeric predicates cannot churn the byte budget. Rejected
// fills still serve their vector to the caller and to every
// singleflight waiter. NewSharedCache (the in-process constructor)
// admits everything; NewSharedCacheOpts applies the policy.
//
// # Serving layer: visdbd, sharded session routing over HTTP
//
// The cross-process step of the scaling roadmap is internal/server —
// a stdlib-only HTTP/JSON subsystem hosted by the cmd/visdbd daemon
// and consumed through the typed visdb/client package (the wire
// vocabulary lives in internal/wire). The server hosts any number of
// catalogs partitioned across N shards by a deterministic name hash
// (server.ShardOf); a session is created against a catalog, lives on
// the catalog's shard (the session ID embeds the shard index, which
// is the entire routing table), and is driven through the full
// interaction protocol:
//
//	POST   /v1/sessions                {catalog, query, options}
//	POST   /v1/sessions/{id}/query     replace the whole query
//	POST   /v1/sessions/{id}/range     {attr, lo, hi} slider drag (null bound = open side)
//	POST   /v1/sessions/{id}/weight    {pred, weight} by predicate index
//	POST   /v1/sessions/{id}/pct       {pct} displayed-fraction slider
//	POST   /v1/sessions/{id}/undo      revert the last modification
//	GET    /v1/sessions/{id}/results   top-k rows (?top=k&tuples=1)
//	GET    /v1/sessions/{id}/timings   stage timings + cache attribution
//	DELETE /v1/sessions/{id}           close
//	GET    /v1/shards[/{shard}]        per-shard sessions/recalcs/cache stats
//	GET    /v1/catalogs                served catalogs and shard homes
//
// Each catalog owns one SharedCache, so remote sessions share leaf
// work exactly like in-process ones (warm clients see nonzero
// SharedHits in their wire timings); per-session mutexes serialize
// edits while distinct sessions run concurrently. Every mutating
// response carries a wire.Summary and results responses add only the
// top-k ranked rows, so wire cost is proportional to the display
// budget, never to n — and float64 values survive JSON bit-exactly,
// which TestRemoteReplayMatchesInProcess exploits to assert bitwise
// identity between a remote session and a fresh in-process engine at
// every step of a randomized script. The daemon drains in-flight
// recalculations on SIGTERM before exiting; visdbbench -serve/-remote
// measure the serving overhead against the in-process -concurrent
// mode.
//
// # Failure semantics
//
// The serving layer is built so that every failure a distributed
// deployment actually sees — lost requests, lost responses, slow
// recalculations, damaged data files, crashed members, dead routers,
// a dead cache store — has a defined, tested outcome. The mechanisms
// compose:
//
//   - Request deadlines. visdbd -request-timeout arms a
//     context.Context deadline per request that flows through
//     Engine.Run into the chunk-fused evaluator, which polls a
//     cancellation checkpoint between chunks. An overrun answers 504
//     with code "deadline" (client disconnect: "canceled"), the
//     session rolls back to its pre-request state — query, ranges,
//     weights, history and displayed fraction all restored, the
//     aborted run's pooled buffers reclaimed — and leaf vectors the
//     aborted run completed stay cached, so a retry resumes instead
//     of starting over. Completed cache entries are never partial:
//     leaf computations are atomic with respect to cancellation.
//   - Idempotent retries. Mutating operations carry a per-session
//     monotonic sequence number (wire Seq; 0 = legacy non-idempotent).
//     A request is applied only when its Seq is past the last applied
//     number; retransmitting the last applied Seq replays the stored
//     response without recomputing (lost-response case); any older Seq
//     answers 409 "seq_conflict" so a late duplicate can never
//     re-apply. Responses are recorded for applied operations and
//     validation failures, never for rolled-back 5xx outcomes — a
//     retried timeout re-applies, which together with rollback gives
//     exactly-once application. visdb/client stamps Seq automatically
//     and, with Client.Retry set (RetryPolicy: attempt budget,
//     exponential backoff with jitter, Retry-After hints, injectable
//     clock for sleepless tests), retries transport errors and 5xx —
//     never 4xx — reusing the same Seq across attempts of one
//     operation.
//   - Segment checksums and quarantine. VSEGCAT2+ files carry a
//     CRC32C per segment blob plus a footer CRC; verification runs at
//     open (framing/footer) and on every segment decode. Damage
//     surfaces as a typed dataset.ErrCorruptSegment; visdbd
//     quarantines the affected catalog — at startup (the file fails
//     verification at load) or mid-serve (a decode trips a checksum)
//     — answering 503 "catalog_quarantined" with a Retry-After hint
//     for that catalog while every other catalog, including same-shard
//     neighbors, keeps serving. Legacy VSEGCAT1 files stay readable
//     (no per-blob checksums to verify).
//   - Session-ID nonces. Session IDs embed a per-process random nonce
//     ("s{shard}.{seq}-{nonce}"), so a restarted member answers a
//     stale ID — its own previous incarnation's or a dead peer's —
//     with a deterministic 404 "session_not_found" instead of silently
//     serving a different session that happened to reuse the counter.
//     That 404 is the trigger of the client-side recovery contract.
//   - Automatic session recovery. client.FleetSession wraps a session
//     with a deterministic operation log: every applied modification
//     (query, range, weight, pct — undo is folded into the log, so
//     replay needs no history) is recorded with the Seq it was
//     applied under. When an operation comes back "session_not_found"
//     (or the endpoint is unreachable and rotation finds another
//     router), the wrapper recreates the session on whatever member
//     now owns the catalog's shard, replays the log in order under
//     the ORIGINAL sequence numbers — so a replay racing a duplicate
//     retransmission still applies each operation exactly once — and
//     then re-issues the interrupted operation. Recoveries are
//     counted (FleetSession.Recoveries) and bounded per logical
//     operation (FleetOptions.MaxRecoveries) so a permanently sick
//     fleet surfaces the underlying error instead of looping.
//     Validation failures (4xx) are surfaced, not recovered: they are
//     deterministic, and their burned sequence numbers are legal gaps.
//   - KV circuit breaker. The internal/kv client wraps every
//     Get/Put in a breaker FSM: closed (normal traffic) → open after
//     BreakerThreshold consecutive transport errors (every call
//     short-circuits locally, zero network work, the cache degrades
//     to recompute) → half-open after BreakerCooldown (exactly one
//     probe call goes through; success closes the breaker, failure
//     re-opens it and restarts the cooldown). 200/404 on Get and
//     204/413 on Put count as healthy — only transport-level failure
//     trips it. The state, trip count and short-circuit count ride
//     the wire.SharedStats ("remote_breaker", "remote_trips",
//     "remote_short_circuits") into /v1/shards and the router's
//     /v1/fleet, so a flapping store is visible fleet-wide.
//
// Every non-2xx response carries a machine-readable wire code
// (wire.Code*; client.APIError exposes Code and RetryAfter):
//
//	404 session_not_found    unknown/dead session ID (recreate+replay)
//	409 seq_conflict         stale sequence number; resynchronize
//	409 nothing_to_undo      no earlier state to revert to
//	503 session_cap          shard at its session limit (Retry-After)
//	503 catalog_quarantined  segment checksum failure (Retry-After)
//	503 node_down            fleet member unreachable (Retry-After)
//	503 no_healthy_members   no member owns the shard (Retry-After)
//	504 deadline             recalculation overran, rolled back
//	504 canceled             client disconnected, rolled back
//
// The client's retry policy keys on these codes, not just the status
// class: node_down, catalog_quarantined, session_cap,
// no_healthy_members, deadline and canceled retry (honoring
// Retry-After); seq_conflict, nothing_to_undo and session_not_found
// never retry (the latter recovers via FleetSession instead); unknown
// codes fall back to retrying 5xx.
//
// internal/faultinject supplies the deterministic fault surface the
// suite drives this with: a scripted http.RoundTripper (drop before
// the server, drop the response after application), corrupting /
// truncating / slow io.ReaderAt wrappers, handler-level
// latency/error injection (server.Config.FaultHook), a
// connection-severing Breaker that makes an in-process member
// indistinguishable from a crashed one, and a seeded chaos scheduler
// (faultinject.GenerateChaosScript) that emits a deterministic
// fault timeline — member kills and restarts, router kills, kv
// partitions, injected latency — under invariants (never the last
// healthy member or router, a fully-healed tail) so a soak is
// reproducible from its seed alone.
// TestChaosReplayMatchesInProcess asserts that a randomized
// interaction script driven through drops, injected 500s and
// automatic retries stays bitwise identical to a fault-free
// in-process session with recalculation counts proving exactly-once
// application; TestFleetChaosSoakSelfHeals drives FleetSessions
// through a scripted multi-router soak — member crashes with
// restarts, kv partitions, latency — asserting both routers converge
// on the same PlacementHash after every event, results stay bitwise
// identical to fault-free engines, recalculation counts prove
// exactly-once application across recoveries, and no caller ever
// sees an error; TestDeadlineRollsBackAndRetryResumes proves the 504
// path rolls back bitwise and resumes; the corruption suite proves
// single-bit flips anywhere in a v2+ file are caught and contained.
//
// # Fleet topology: visdbrouter, placement, and the networked kv tier
//
// Above single-daemon serving sits the fleet tier: N visdbd member
// processes (each running the same -shards value and the same catalog
// set) behind one cmd/visdbrouter front end (internal/router), with an
// optional cmd/visdbkv store (internal/kv) externalizing the shared
// predicate cache across the members:
//
//	client ── visdbrouter ──┬── visdbd a ──┐
//	                        ├── visdbd b ──┼── visdbkv
//	                        └── visdbd c ──┘
//
// The router owns the placement map. Each of the fleet's shards is
// assigned by rendezvous hashing — FNV-64a of "shard|member", highest
// score among the HEALTHY members wins — so placement is a pure
// function of the healthy set: any number of routers probing the same
// members converge on the same map without coordinating (run two or
// more visdbrouter instances against the same -members for a
// redundant control plane — clients rotate on transport failure), and
// a membership change moves only the shards whose winner changed.
// Every router response carries an X-Visdb-Placement-Epoch header — a
// router-local counter that bumps whenever the placement changes —
// and GET /v1/health reports the epoch plus a PlacementHash over the
// full shard→owner map; epochs are only comparable within one router,
// the hash is comparable across routers and is what the convergence
// tests assert. Requests route exactly like visdbd's own shards:
// session creation hashes the catalog name (server.ShardOf), and every
// other session operation parses the shard index out of the session ID
// ("s{shard}.{seq}"), so the ID remains the entire routing table.
//
// Health and failure. The router probes each member's GET /v1/health
// (uptime, per-shard session counts, quarantined catalogs) on a
// period (jittered by -probe-jitter so N routers don't probe in
// lockstep); -fail-after consecutive failures marks the member down
// and recomputes placement immediately — its sessions died with it,
// so there is nothing to drain. A transport error during a live
// forward does the same thing BEFORE answering, so the 503 node_down
// response (with a Retry-After hint) already reflects the new
// placement and the client's retry lands on the new owner. Rejoin is
// symmetric hysteresis: a downed member needs -fail-after consecutive
// CLEAN probes to be re-admitted (any failure resets the streak), so
// a flapping member stays out until it is actually stable. Session
// IDs are not preserved across a failover: the new owner answers 404
// "session_not_found" for the dead node's sessions, and
// client.FleetSession automates the recovery contract — recreate the
// session (creation routes by catalog, landing on the new owner) and
// replay the operation log under the original sequence numbers, which
// the kv tier makes cheap because the dead node's computed leaf work
// is still resident in the store. A shard moving between two HEALTHY
// members instead drains: existing traffic (and new creations) stay
// on the old owner until its health report shows zero sessions on
// that shard, bounded by -drain-timeout — a rejoining member takes
// its shards back without dropping anyone's in-flight session. When
// NO member is healthy the router answers 503 "no_healthy_members"
// (with Retry-After) rather than picking a dead owner.
//
// The kv tier. visdbd -shared-kv attaches a read-through/write-through
// remote backend (core.SharedBackend) to every catalog's SharedCache:
// a shared-tier miss consults the store before computing (only the
// singleflight leader issues the network read), and admitted fills are
// written back, so leaf vectors, quantile indexes and interior entries
// computed on one member warm every member. Entries travel in the
// deterministic binary codec of internal/relevance (internal/binenc);
// lookups degrade to a local recompute on any store error — the kv
// tier can die without breaking serving. The store itself speaks a
// minimal stdlib HTTP protocol: GET/PUT /v1/kv?key=K (200/404 on GET;
// 204 accepted, 413 over the value cap on PUT), GET /v1/kv/stats, and
// GET /healthz, with LRU entry- and byte-budget eviction. Values are
// immutable: re-PUTting a key refreshes recency but keeps the first
// bytes, matching the cache's copy-on-invalidate discipline. Keys are
// STRUCTURAL (table identity, row count, content epoch — not catalog
// names), which is what lets replica catalogs share entries; the
// operator contract is therefore that every catalog attached to one
// store holds identical data for identical table identities (replicas
// of different data must use distinct stores or distinct epochs).
//
// The router also aggregates the fleet: GET /v1/fleet reports
// membership and health, per-member owned shards, fleet-wide session
// and recalculation counts, the fleet-wide shared-hit rate (summed
// across members, remote hits included), and the kv store's counters.
// TestFleetReplayMatchesInProcess drives concurrent randomized
// sessions through a three-member fleet and asserts bitwise identity
// with fresh in-process engines at every step; TestExternalFleetReplay
// repeats that over real visdbd/visdbrouter/visdbkv processes in CI;
// TestFleetNodeKillRecovers kills a member mid-run and proves recovery
// via the retry/recreate/replay contract with recalc-counter equality
// against a fault-free mirror; visdbbench -json -fleet records the
// fleet's recalcs/s, step-latency percentiles and sharing counters as
// CI data with regression floors, and its node-kill phase kills a
// live member under self-healing FleetSessions with floors requiring
// recoveries > 0 and zero caller-visible errors.
//
// Render artifacts under out/ are generated by visdbbench and the
// examples; they are not tracked in git.
package repro
