// Package repro is a from-scratch Go reproduction of Keim, Kriegel &
// Seidl, "Supporting Data Mining of Large Databases by Visual Feedback
// Queries" (ICDE 1994) — the VisDB system.
//
// The public API lives in repro/visdb; the experiment harness that
// regenerates every figure and quantitative claim of the paper lives in
// cmd/visdbbench; repository-level benchmarks for each experiment are
// in bench_test.go. See README.md for an overview, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// # Building and testing
//
// The repository is a single Go module (module repro, Go ≥ 1.24) with
// no external dependencies:
//
//	go build ./... && go test ./...
//	go vet ./...
//	go test -bench=. -benchmem          # repository benchmarks
//	go test -run '^$' -bench SortRanking -benchtime=1x .  # CI smoke
//
// # Ranking: selection instead of sorting
//
// The paper observes that "query processing time is dominated by the
// time needed for sorting". Since only GridW×GridH·(numPreds+1)
// distance values are ever displayed, the engine ranks by selection by
// default: internal/topk quickselects the display budget in expected
// O(n) and relevance normalization finds its reduction range with a
// bounded heap instead of a full sort. Two engine options control the
// trade-off:
//
//   - Options.FullSort: exact O(n log n) ranking of every item (the
//     A-series ablations, exact quantiles; implied by Arrange2D).
//   - Options.Workers: bounds the worker pool that chunks
//     per-predicate distance computation across rows and sibling
//     predicates (0 → GOMAXPROCS). Parallel and serial runs produce
//     bit-identical results.
package repro
