package repro

// Repository-level benchmarks: one per figure and quantitative claim of
// the paper (the regenerating correctness harness is
// internal/experiments, runnable via cmd/visdbbench), plus
// micro-benchmarks of the pipeline stages. Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/arrange"
	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/join"
	"repro/internal/kdtree"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relevance"
	"repro/internal/render"
	"repro/internal/session"
	"repro/internal/topk"
)

const paperQuery = `
SELECT Temperature, Solar_Radiation, Humidity, Ozone
FROM Weather, Air-Pollution
WHERE (Temperature > 15.0 OR Solar_Radiation > 600 OR Humidity < 60)
  AND CONNECT with-time-diff(120)`

// --- Figure 1a: spiral arrangement + coloring of 65,536 items -------

func BenchmarkFig1aSpiral(b *testing.B) {
	const w, h = 256, 256
	rng := rand.New(rand.NewSource(1))
	dists := make([]float64, w*h)
	for i := range dists {
		dists[i] = math.Abs(rng.NormFloat64())
	}
	norm := relevance.Normalize(dists, 0)
	sorted, _ := reduce.SortWithIndex(norm.Scaled)
	cm := colormap.VisDB(colormap.DefaultLevels)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win := render.NewWindow("f1a", w, h, 1)
		for k, cell := range arrange.Spiral(w, h) {
			win.SetCell(cell, cm.AtNorm(sorted[k]/relevance.Scale))
		}
	}
}

// --- Figure 1b: 2D quadrant arrangement -----------------------------

func BenchmarkFig1b2D(b *testing.B) {
	const w, h = 128, 128
	rng := rand.New(rand.NewSource(2))
	items := make([]arrange.QuadItem, w*h*3/4)
	for i := range items {
		items[i] = arrange.QuadItem{SignX: rng.Intn(3) - 1, SignY: rng.Intn(3) - 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrange.Quad2D(w, h, items)
	}
}

// --- Figure 2: display-reduction heuristics --------------------------

func BenchmarkFig2Heuristic(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	dists := make([]float64, 50000)
	for i := range dists {
		if i < 10000 {
			dists[i] = 1 + 0.1*rng.NormFloat64()
		} else {
			dists[i] = 100 + rng.NormFloat64()
		}
	}
	sorted, _ := reduce.SortWithIndex(dists)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reduce.Cut(sorted, 12000, 2)
	}
}

// --- Figure 3: query parsing + GRADI rendering -----------------------

func BenchmarkFig3Parse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := query.Parse(paperQuery)
		if err != nil {
			b.Fatal(err)
		}
		_ = query.Gradi(q)
	}
}

// --- Figures 4/5: the full pipeline on 68,376 objects ----------------

func fig4Engine(b *testing.B) *core.Engine {
	b.Helper()
	cat, _, err := datagen.Environmental(datagen.EnvConfig{
		Hours: 2849, PollutionEvery: 119, OffsetMinutes: 0, Seed: 1994,
	})
	if err != nil {
		b.Fatal(err)
	}
	return core.New(cat, nil, core.Options{GridW: 165, GridH: 165})
}

func BenchmarkFig4Pipeline(b *testing.B) {
	eng := fig4Engine(b)
	q, err := query.Parse(paperQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4PipelineParallel measures the concurrent sibling
// evaluation option on the same workload.
func BenchmarkFig4PipelineParallel(b *testing.B) {
	cat, _, err := datagen.Environmental(datagen.EnvConfig{
		Hours: 2849, PollutionEvery: 119, OffsetMinutes: 0, Seed: 1994,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := core.New(cat, nil, core.Options{GridW: 165, GridH: 165, Parallel: true})
	q, err := query.Parse(paperQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5ORPart(b *testing.B) {
	eng := fig4Engine(b)
	res, err := eng.RunSQL(paperQuery)
	if err != nil {
		b.Fatal(err)
	}
	orPart := res.Query.Where.(*query.BoolExpr).Children[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.DrillDownWindows(orPart, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Claim C1: O(n log n) scaling sweep ------------------------------

func BenchmarkScaling(b *testing.B) {
	for _, n := range []int{10000, 100000, 1000000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			tbl, err := dataset.NewTable("S", dataset.Schema{
				{Name: "a", Kind: dataset.KindFloat},
				{Name: "b", Kind: dataset.KindFloat},
				{Name: "c", Kind: dataset.KindFloat},
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if err := tbl.AppendRow(
					dataset.Float(rng.Float64()*100),
					dataset.Float(rng.Float64()*100),
					dataset.Float(rng.Float64()*100),
				); err != nil {
					b.Fatal(err)
				}
			}
			cat := dataset.NewCatalog()
			if err := cat.AddTable(tbl); err != nil {
				b.Fatal(err)
			}
			eng := core.New(cat, nil, core.Options{GridW: 128, GridH: 128})
			q, err := query.Parse(`SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30`)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Interactive loop: incremental reruns ----------------------------

// interactTable builds the n-row three-attribute table the interaction
// benchmarks share.
func interactCatalog(b *testing.B, n int) *dataset.Catalog {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	tbl, err := dataset.NewTable("S", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
		{Name: "b", Kind: dataset.KindFloat},
		{Name: "c", Kind: dataset.KindFloat},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(
			dataset.Float(rng.Float64()*100),
			dataset.Float(rng.Float64()*100),
			dataset.Float(rng.Float64()*100),
		); err != nil {
			b.Fatal(err)
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		b.Fatal(err)
	}
	return cat
}

const interactQuery = `SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30`

// stringCatalog builds an n-row person table for the approximate-match
// workloads: edit-distance predicates are the paper's "complex distance
// functions" whose recomputation cost motivates both the
// auto-recalculate-off escape hatch and the session cache.
func stringCatalog(b *testing.B, n int) *dataset.Catalog {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	tbl, err := dataset.NewTable("P", dataset.Schema{
		{Name: "name", Kind: dataset.KindString},
		{Name: "city", Kind: dataset.KindString},
		{Name: "age", Kind: dataset.KindInt},
	})
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"miller", "smith", "meier", "schmidt", "maier", "mueller", "smythe", "schmitt"}
	cities := []string{"munich", "berlin", "hamburg", "bremen", "cologne", "dresden"}
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(
			dataset.Str(names[rng.Intn(len(names))]),
			dataset.Str(cities[rng.Intn(len(cities))]),
			dataset.Int(int64(18+rng.Intn(60))),
		); err != nil {
			b.Fatal(err)
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		b.Fatal(err)
	}
	return cat
}

const stringQuery = `SELECT name FROM P WHERE name = 'meyer' USING edit AND city = 'muenchen' USING edit AND age BETWEEN 30 AND 40`

// reweightWorkload runs one cold/warm pair: a fresh Engine.Run per
// weight change versus the session's cached Recalculate.
func reweightWorkload(b *testing.B, cat *dataset.Catalog, opt core.Options, sql string) {
	b.Run("cold", func(b *testing.B) {
		q, err := query.Parse(sql)
		if err != nil {
			b.Fatal(err)
		}
		eng := core.New(cat, nil, opt)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			query.Predicates(q.Where)[0].SetWeight(float64(2 + i%2))
			if _, err := eng.Run(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s, err := session.NewSQL(cat, nil, opt, sql)
		if err != nil {
			b.Fatal(err)
		}
		pred := query.Predicates(s.Query().Where)[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate so every iteration is a real change (no-op
			// drags skip recalculation entirely).
			if err := s.SetWeight(pred, float64(2+i%2)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReweight is the section 5.2 weighting-slider loop at
// n = 1e6 across three workloads: cheap numeric predicates (the cache's
// worst case — leaf recomputation never dominated), the paper query
// over a ~1e6-pair approximate join, and edit-distance predicates (the
// "complex distance functions" the paper's auto-recalculate-off option
// existed for). The warm side serves every leaf vector — and its
// normalization quantiles — from the session cache and writes into
// pooled buffers; cached and cold results are bit-identical
// (TestInteractionScriptMatchesFreshEngine and the core cache tests).
func BenchmarkReweight(b *testing.B) {
	const n = 1_000_000
	opt := core.Options{GridW: 128, GridH: 128}
	b.Run("numeric", func(b *testing.B) {
		reweightWorkload(b, interactCatalog(b, n), opt, interactQuery)
	})
	b.Run("join", func(b *testing.B) {
		cat, _, err := datagen.Environmental(datagen.EnvConfig{
			Hours: 10900, PollutionEvery: 119, OffsetMinutes: 0, Seed: 1994,
		})
		if err != nil {
			b.Fatal(err)
		}
		reweightWorkload(b, cat, opt, paperQuery) // ~1e6 cross-product pairs
	})
	b.Run("strings", func(b *testing.B) {
		reweightWorkload(b, stringCatalog(b, n), opt, stringQuery)
	})
}

// BenchmarkSliderDrag is the range-slider drag at n = 1e6: each step
// recomputes exactly the dragged predicate's leaf (the numeric age
// slider) and serves the two edit-distance leaves from the cache — the
// figure-4 drag loop over the expensive-predicate workload.
func BenchmarkSliderDrag(b *testing.B) {
	const n = 1_000_000
	cat := stringCatalog(b, n)
	opt := core.Options{GridW: 128, GridH: 128}
	s, err := session.NewSQL(cat, nil, opt, stringQuery)
	if err != nil {
		b.Fatal(err)
	}
	c, err := s.FindCond("age")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SetRange(c, float64(25+i%10), float64(45+i%10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentSessions is the multi-tenant serving workload:
// M sessions on one catalog attached to a shared catalog-level cache,
// interacting concurrently. Session 1 pays the cold leaf computation;
// every later session starts warm off the shared tier (asserted via
// StageTimings.SharedHits), and steady-state interactions run fully
// cached. Reported metrics: shared-tier hit rate and resident bytes.
func BenchmarkConcurrentSessions(b *testing.B) {
	const (
		n        = 200_000
		sessions = 4
	)
	cat := interactCatalog(b, n)
	opt := core.Options{GridW: 128, GridH: 128}
	shared := core.NewSharedCache(0, 0)
	// Each pooled session carries its own interaction counter: the
	// weight alternation must be per-session (a per-goroutine counter
	// would let interleaved goroutines repeat a session's current
	// weight, degenerating iterations into no-op recalcs).
	type benchSession struct {
		s *session.Session
		i int
	}
	pool := make(chan *benchSession, sessions)
	for i := 0; i < sessions; i++ {
		s, err := session.NewSQLShared(cat, nil, opt, interactQuery, shared)
		if err != nil {
			b.Fatal(err)
		}
		tm := s.Result().Timings
		if i == 0 {
			if tm.SharedHits != 0 {
				b.Fatalf("first session warm-started: %+v", tm)
			}
		} else if tm.SharedHits == 0 || tm.CacheHits != tm.SharedHits || tm.CacheMisses != 0 {
			// The acceptance property of the shared tier: sessions after
			// the first serve every leaf across sessions, visible in the
			// run's cache attribution.
			b.Fatalf("session %d did not warm-start off the shared tier: %+v", i, tm)
		}
		pool <- &benchSession{s: s}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bs := <-pool
			pred := query.Predicates(bs.s.Query().Where)[0]
			// Alternate weights so every iteration really recalculates.
			if err := bs.s.SetWeight(pred, float64(2+bs.i%2)); err != nil {
				b.Error(err)
			}
			bs.i++
			pool <- bs
		}
	})
	b.StopTimer()
	st := shared.Stats()
	total := st.Hits + st.Misses
	if total > 0 {
		b.ReportMetric(float64(st.Hits)/float64(total), "shared-hit-rate")
	}
	b.ReportMetric(float64(st.Bytes)/(1<<20), "shared-MiB")
}

// BenchmarkSortRanking isolates the ranking stage the paper names as
// the dominating cost: the full O(n log n) sort against the
// selection-based partial ranking that materializes only the display
// budget (a 128×128 grid plus the gap-heuristic margin).
func BenchmarkSortRanking(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	dists := make([]float64, 300000)
	for i := range dists {
		dists[i] = rng.Float64() * 255
	}
	const displayBudget = 128*128 + (128*128)/4 + 32
	b.Run("fullsort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reduce.SortWithIndex(dists)
		}
	})
	b.Run("select-k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			topk.SelectKWithIndex(dists, displayBudget)
		}
	})
}

// --- Claim C2: display capacity (pure arithmetic; bench the window
// fill at the paper's display budget) ---------------------------------

func BenchmarkCapacityWindowFill(b *testing.B) {
	const w, h = 1024, 1280 / 4 // one of four windows on the paper display
	cm := colormap.VisDB(colormap.DefaultLevels)
	cells := arrange.Spiral(w, h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win := render.NewWindow("cap", w, h, 1)
		for k, cell := range cells {
			win.SetCell(cell, cm.At(k%256))
		}
	}
}

// --- Claim C3: hot-spot recall workload ------------------------------

func BenchmarkHotSpotRecall(b *testing.B) {
	tbl, truth, err := datagen.CADParts(datagen.CADConfig{Parts: 2000, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		b.Fatal(err)
	}
	eng := core.New(cat, nil, core.Options{GridW: 48, GridH: 48})
	q, err := query.Parse(datagen.CADQuerySQL(truth, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Claim C4: approximate join scoring ------------------------------

func BenchmarkApproxJoin(b *testing.B) {
	cat, _, err := datagen.Environmental(datagen.EnvConfig{Hours: 480, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	w, err := cat.Table("Weather")
	if err != nil {
		b.Fatal(err)
	}
	p, err := cat.Table("Air-Pollution")
	if err != nil {
		b.Fatal(err)
	}
	conn, err := cat.Connection("with-time-diff")
	if err != nil {
		b.Fatal(err)
	}
	pairs := join.Pairs(w.NumRows(), p.NumRows(), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.ConnDistances(conn, w, p, pairs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations --------------------------------------------------------

func BenchmarkAblationNormalize(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	dists := make([]float64, 100000)
	for i := range dists {
		dists[i] = rng.ExpFloat64() * 10
	}
	b.Run("reduction-first", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			relevance.Normalize(dists, 30000)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			relevance.Normalize(dists, 0)
		}
	})
}

func BenchmarkAblationORMean(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m, n := 3, 100000
	dists := make([][]float64, m)
	for j := range dists {
		dists[j] = make([]float64, n)
		for i := range dists[j] {
			dists[j][i] = rng.Float64() * 255
		}
	}
	weights := []float64{1, 2, 0.5}
	b.Run("geometric", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relevance.CombineOr(dists, weights, relevance.WeightNormalized); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arithmetic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relevance.CombineAnd(dists, weights, relevance.WeightNormalized); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationReduce(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	dists := make([]float64, 100000)
	for i := range dists {
		if i < 20000 {
			dists[i] = 1 + 0.1*rng.NormFloat64()
		} else {
			dists[i] = 100 + rng.NormFloat64()
		}
	}
	sorted, _ := reduce.SortWithIndex(dists)
	b.Run("quantile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := reduce.DisplayFraction(25000, len(sorted), 0)
			reduce.QuantileCut(len(sorted), p)
		}
	})
	b.Run("gap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reduce.GapCut(sorted, reduce.GapOptions{RMin: 10000, RMax: 25000})
		}
	})
}

// --- Substrate micro-benchmarks ---------------------------------------

func BenchmarkSpiralGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arrange.Spiral(256, 256)
	}
}

func BenchmarkColormapLookup(b *testing.B) {
	cm := colormap.VisDB(colormap.DefaultLevels)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.AtNorm(float64(i%1000) / 1000)
	}
}

func BenchmarkKDTreeRange(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	pts := make([][]float64, 100000)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	tr, err := kdtree.Build(pts)
	if err != nil {
		b.Fatal(err)
	}
	lo := []float64{20, 20, 20}
	hi := []float64{30, 30, 30}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Range(lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderComposePNG(b *testing.B) {
	wins := make([]*render.Window, 4)
	cm := colormap.VisDB(256)
	for i := range wins {
		wins[i] = render.NewWindow(fmt.Sprintf("w%d", i), 128, 128, 1)
		for k, cell := range arrange.Spiral(128, 128) {
			wins[i].SetCell(cell, cm.At(k%256))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render.Compose(wins, 2, 6)
	}
}

// --- Experiment-harness smoke benchmark --------------------------------

// BenchmarkExperimentSuite times the full figure/claim regeneration
// (without image output), which is what CI gates on.
func BenchmarkExperimentSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, err := experiments.All("")
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reports {
			if !r.Pass {
				b.Fatalf("experiment %s failed", r.ID)
			}
		}
	}
}
