package main

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/visdb/client"
)

// TestDaemonSmoke drives one full daemon lifecycle in-process: start
// on an ephemeral port, run a scripted session through the typed
// client (create, drag, weight, undo, results, timings, close), then
// cancel the context — the SIGTERM path — and assert a clean, drained
// exit.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := config{
		addr:         "127.0.0.1:0",
		shards:       2,
		catalogs:     "traffic:3000",
		seed:         7,
		gridW:        16,
		gridH:        16,
		admitMin:     -1, // admit everything: the smoke catalog's leaves are cheap
		drainTimeout: 10 * time.Second,
	}
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, func(addr string) { addrc <- addr }) }()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c := client.New("http://" + addr)
	rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer rcancel()

	s, sum, err := c.NewSession(rctx, "traffic", `SELECT a FROM S WHERE a > 50 AND b < 40`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 3000 || sum.Displayed == 0 {
		t.Fatalf("initial summary n=%d displayed=%d", sum.N, sum.Displayed)
	}
	if sum, err = s.SetRange(rctx, "a", 30, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if sum.Recalcs != 2 {
		t.Fatalf("after drag: recalcs=%d", sum.Recalcs)
	}
	if _, err = s.SetWeight(rctx, 0, 2.5); err != nil {
		t.Fatal(err)
	}
	if sum, err = s.Undo(rctx); err != nil {
		t.Fatal(err)
	}
	res, err := s.Results(rctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("results rows = %d, want 5", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.IsNaN(row.Distance) || row.Relevance <= 0 || row.Relevance > 1 {
			t.Fatalf("bad row %+v", row)
		}
	}
	if _, err := s.Timings(rctx); err != nil {
		t.Fatal(err)
	}
	// A second session on the same catalog warm-starts off the shared
	// tier: cross-process reuse visible over the wire.
	s2, sum2, err := c.NewSession(rctx, "traffic", `SELECT a FROM S WHERE a > 50 AND b < 40`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Timings.SharedHits == 0 {
		t.Fatalf("warm session saw no shared hits: %+v", sum2.Timings)
	}
	if err := s2.Close(rctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(rctx); err != nil {
		t.Fatal(err)
	}
	stats, err := c.ShardStats(rctx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range stats {
		total += int(st.SessionsCreated)
	}
	if total != 2 {
		t.Fatalf("sessions created = %d, want 2", total)
	}

	cancel() // SIGTERM path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
}
