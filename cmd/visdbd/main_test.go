package main

import (
	"context"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/visdb/client"
)

// TestDaemonSmoke drives one full daemon lifecycle in-process: start
// on an ephemeral port, run a scripted session through the typed
// client (create, drag, weight, undo, results, timings, close), then
// cancel the context — the SIGTERM path — and assert a clean, drained
// exit.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := config{
		addr:         "127.0.0.1:0",
		shards:       2,
		catalogs:     "traffic:3000",
		seed:         7,
		gridW:        16,
		gridH:        16,
		admitMin:     -1, // admit everything: the smoke catalog's leaves are cheap
		drainTimeout: 10 * time.Second,
	}
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, func(addr string) { addrc <- addr }) }()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c := client.New("http://" + addr)
	rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer rcancel()

	s, sum, err := c.NewSession(rctx, "traffic", `SELECT a FROM S WHERE a > 50 AND b < 40`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 3000 || sum.Displayed == 0 {
		t.Fatalf("initial summary n=%d displayed=%d", sum.N, sum.Displayed)
	}
	if sum, err = s.SetRange(rctx, "a", 30, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if sum.Recalcs != 2 {
		t.Fatalf("after drag: recalcs=%d", sum.Recalcs)
	}
	if _, err = s.SetWeight(rctx, 0, 2.5); err != nil {
		t.Fatal(err)
	}
	if sum, err = s.Undo(rctx); err != nil {
		t.Fatal(err)
	}
	res, err := s.Results(rctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("results rows = %d, want 5", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.IsNaN(row.Distance) || row.Relevance <= 0 || row.Relevance > 1 {
			t.Fatalf("bad row %+v", row)
		}
	}
	if _, err := s.Timings(rctx); err != nil {
		t.Fatal(err)
	}
	// A second session on the same catalog warm-starts off the shared
	// tier: cross-process reuse visible over the wire.
	s2, sum2, err := c.NewSession(rctx, "traffic", `SELECT a FROM S WHERE a > 50 AND b < 40`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Timings.SharedHits == 0 {
		t.Fatalf("warm session saw no shared hits: %+v", sum2.Timings)
	}
	if err := s2.Close(rctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(rctx); err != nil {
		t.Fatal(err)
	}
	stats, err := c.ShardStats(rctx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range stats {
		total += int(st.SessionsCreated)
	}
	if total != 2 {
		t.Fatalf("sessions created = %d, want 2", total)
	}
	// The health self-report the fleet router polls: per-shard session
	// counts (all zero — both sessions closed), uptime, no quarantine.
	h, err := c.Health(rctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.UptimeNS <= 0 {
		t.Fatalf("health: %+v", h)
	}
	if h.Sessions != 0 || len(h.Shards) != 2 || len(h.Quarantined) != 0 {
		t.Fatalf("health after close: %+v", h)
	}

	cancel() // SIGTERM path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
}

// TestDaemonDiskCatalog: a -catalogs entry naming a segment-file path
// serves that catalog from disk — sessions answer over it, shard stats
// report the interior tier, and a bad path fails startup loudly.
func TestDaemonDiskCatalog(t *testing.T) {
	mem, err := datagen.Traffic(3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(t.TempDir(), "traffic.visdb")
	if _, err := dataset.WriteCatalogFile(segPath, mem); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := config{
		addr:         "127.0.0.1:0",
		shards:       2,
		catalogs:     "disk:" + segPath + ",synth:500",
		seed:         7,
		gridW:        16,
		gridH:        16,
		catCacheMB:   1,
		admitMin:     -1,
		drainTimeout: 10 * time.Second,
	}
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, func(addr string) { addrc <- addr }) }()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c := client.New("http://" + addr)
	rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer rcancel()
	s, sum, err := c.NewSession(rctx, "disk",
		`SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30 WEIGHT 2`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 3000 || sum.Displayed == 0 {
		t.Fatalf("initial summary n=%d displayed=%d", sum.N, sum.Displayed)
	}
	// A weight drag OUTSIDE the AND subtree leaves the subtree's cached
	// interior entry valid: the warm rerun takes the interior fast path
	// over the file-backed catalog.
	if sum, err = s.SetWeight(rctx, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if sum.Timings.SketchHits == 0 {
		t.Fatalf("warm rerun on the disk catalog took no sketch hits: %+v", sum.Timings)
	}
	if err := s.Close(rctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}

	// Startup must fail loudly on a dangling path.
	bad := cfg
	bad.catalogs = "oops:" + filepath.Join(t.TempDir(), "missing.visdb")
	if err := run(context.Background(), bad, nil); err == nil {
		t.Fatal("dangling catalog path did not fail startup")
	}
}
