// Command visdbd is the VisDB serving daemon: it hosts catalogs
// behind the HTTP/JSON interaction protocol of internal/server, so
// remote clients (visdb/client, or anything speaking JSON) drive
// visual feedback sessions against shared catalogs — the
// cross-process serving shape of the scaling roadmap.
//
// Usage:
//
//	visdbd -addr :8491 -catalogs traffic:200000
//	visdbd -addr :8491 -shards 8 -catalogs "a:100000,b:50000" -cache-mb 512
//
// Each entry of -catalogs is name:source. A numeric source (name:rows)
// serves a deterministic synthetic catalog (datagen.Traffic; table S
// with float attributes a, b, c); any other source is a path to an
// on-disk segment catalog written by visdbgen -o / csvutil, served
// straight from the file through the bounded decoded-segment cache
// (-catalog-cache-mb per catalog) — resident memory stays O(cache),
// not O(catalog), and results are bit-identical to serving the same
// data in memory. All catalogs are sharded across -shards serving
// shards by name hash. Every catalog gets its own shared
// predicate-cache tier bounded by -cache-entries / -cache-mb with
// cost-aware admission at -admit-min (0 selects the ~1ms default; a
// negative duration admits every leaf).
//
//	visdbd -addr :8491 -catalogs "traffic:200000,archive:/data/archive.visdb"
//
// Sessions idle longer than -session-ttl (default 30m; 0 disables)
// are reaped by a periodic sweep, so crashed clients release the
// pooled result buffers they pinned instead of holding a slot of the
// per-shard session cap until a DELETE that never comes.
//
// On SIGINT/SIGTERM the daemon drains: in-flight recalculations run
// to completion (bounded by -drain-timeout) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/kv"
	"repro/internal/server"
)

// config carries the parsed flags; run is separated from main so the
// smoke test can drive a full daemon lifecycle in-process.
type config struct {
	addr           string
	shards         int
	catalogs       string
	seed           int64
	gridW, gridH   int
	cacheEntries   int
	cacheMB        int
	catCacheMB     int
	forceReadAt    bool
	sharedKV       string
	admitMin       time.Duration
	drainTimeout   time.Duration
	sessionTTL     time.Duration
	requestTimeout time.Duration
}

// validate rejects flag values that would configure the daemon into a
// degenerate state, with startup errors naming the flag — a typo'd
// unit suffix ("30" instead of "30s") must fail loudly, not serve with
// a nanosecond timeout.
func (cfg *config) validate() error {
	if cfg.drainTimeout < time.Second {
		return fmt.Errorf("-drain-timeout %v is below the 1s floor (in-flight recalculations need time to finish)", cfg.drainTimeout)
	}
	if cfg.sessionTTL != 0 && cfg.sessionTTL < time.Second {
		return fmt.Errorf("-session-ttl %v is below the 1s floor (0 disables reaping)", cfg.sessionTTL)
	}
	if cfg.requestTimeout != 0 && cfg.requestTimeout < 50*time.Millisecond {
		return fmt.Errorf("-request-timeout %v is below the 50ms floor (0 disables the deadline)", cfg.requestTimeout)
	}
	if cfg.catCacheMB < 0 {
		return fmt.Errorf("-catalog-cache-mb must be >= 0, got %d", cfg.catCacheMB)
	}
	if cfg.cacheMB < 0 || cfg.cacheEntries < 0 {
		return fmt.Errorf("-cache-mb and -cache-entries must be >= 0")
	}
	if cfg.gridW <= 0 || cfg.gridH <= 0 {
		return fmt.Errorf("-gridw and -gridh must be positive, got %dx%d", cfg.gridW, cfg.gridH)
	}
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8491", "listen address")
	flag.IntVar(&cfg.shards, "shards", server.DefaultShards, "number of serving shards")
	flag.StringVar(&cfg.catalogs, "catalogs", "traffic:200000", "served catalogs, comma-separated name:rows")
	flag.Int64Var(&cfg.seed, "seed", 1994, "synthetic catalog seed")
	flag.IntVar(&cfg.gridW, "gridw", 128, "default session grid width")
	flag.IntVar(&cfg.gridH, "gridh", 128, "default session grid height")
	flag.IntVar(&cfg.cacheEntries, "cache-entries", 0, "per-catalog shared-cache entry cap (0 = default 1024)")
	flag.IntVar(&cfg.cacheMB, "cache-mb", 0, "per-catalog shared-cache byte budget in MiB (0 = default 256)")
	flag.IntVar(&cfg.catCacheMB, "catalog-cache-mb", 0, "decoded-segment cache budget in MiB for file-backed catalogs (0 = default 64)")
	flag.BoolVar(&cfg.forceReadAt, "force-readat", false, "disable mmap for file-backed catalogs; read through ReadAt")
	flag.StringVar(&cfg.sharedKV, "shared-kv", "", "visdbkv store base URL; attaches the fleet's shared-distance tier to every catalog's cache")
	flag.DurationVar(&cfg.admitMin, "admit-min", 0, "shared-tier admission threshold (0 = ~1ms default, negative admits all)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown drain bound")
	flag.DurationVar(&cfg.sessionTTL, "session-ttl", 30*time.Minute, "reap sessions idle longer than this (0 disables; each live session pins O(rows) buffers)")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", 0, "per-request deadline, recalculations included; overruns answer 504 with the session rolled back (0 disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "visdbd:", err)
		os.Exit(1)
	}
}

// buildCatalogs parses the -catalogs spec: numeric sources generate
// synthetic catalogs, everything else opens an on-disk segment catalog
// served through the bounded decoded-segment cache.
func buildCatalogs(cfg config) ([]server.CatalogConfig, error) {
	shared := core.SharedOptions{
		MaxEntries:   cfg.cacheEntries,
		MaxBytes:     int64(cfg.cacheMB) << 20,
		AdmitMinCost: cfg.admitMin,
	}
	if cfg.sharedKV != "" {
		// One client for every catalog: the kv keys are structural
		// (table identities, not catalog names), so replica catalogs
		// across the fleet share entries through it.
		shared.Backend = kv.NewClient(cfg.sharedKV)
	}
	var out []server.CatalogConfig
	seen := make(map[string]bool)
	for _, spec := range strings.Split(cfg.catalogs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, src, ok := strings.Cut(spec, ":")
		if !ok || name == "" || src == "" {
			return nil, fmt.Errorf("bad catalog spec %q (want name:rows or name:path)", spec)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate catalog name %q in -catalogs", name)
		}
		seen[name] = true
		var cat *dataset.Catalog
		if rows, err := strconv.Atoi(src); err == nil {
			if rows <= 0 {
				return nil, fmt.Errorf("bad row count in catalog spec %q", spec)
			}
			// Each catalog draws from its own seed stream so same-sized
			// catalogs hold different data.
			cat, err = datagen.Traffic(rows, cfg.seed+int64(len(out)))
			if err != nil {
				return nil, err
			}
		} else {
			cat, err = dataset.OpenCatalogFile(src, dataset.OpenOptions{
				ForceReadAt: cfg.forceReadAt,
				CacheBytes:  int64(cfg.catCacheMB) << 20,
			})
			if errors.Is(err, dataset.ErrCorruptSegment) {
				// Checksum failure at load: quarantine this catalog —
				// clients get 503 with the error — but keep serving every
				// other catalog. A wrong path or permission problem still
				// fails startup (the operator misconfigured, the data is
				// not damaged).
				log.Printf("visdbd: catalog %q QUARANTINED: %v", name, err)
				out = append(out, server.CatalogConfig{Name: name, Quarantined: fmt.Errorf("catalog %q: %w", name, err)})
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("catalog %q: %w", name, err)
			}
		}
		out = append(out, server.CatalogConfig{Name: name, Catalog: cat, Shared: shared})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no catalogs configured")
	}
	return out, nil
}

// run builds the server, serves until ctx is canceled, then drains.
// ready (may be nil) is called with the bound address once listening —
// the smoke test uses it to discover the port of addr ":0".
func run(ctx context.Context, cfg config, ready func(addr string)) error {
	if cfg.shards <= 0 {
		cfg.shards = server.DefaultShards
	}
	if err := cfg.validate(); err != nil {
		return err
	}
	catalogs, err := buildCatalogs(cfg)
	if err != nil {
		return err
	}
	// Release file-backed catalogs on exit (a no-op for in-memory ones;
	// quarantined catalogs never opened).
	defer func() {
		for _, cc := range catalogs {
			if cc.Catalog != nil {
				cc.Catalog.Close()
			}
		}
	}()
	srv, err := server.New(server.Config{
		Shards:         cfg.shards,
		Catalogs:       catalogs,
		DefaultOptions: core.Options{GridW: cfg.gridW, GridH: cfg.gridH},
		SessionTTL:     cfg.sessionTTL,
		RequestTimeout: cfg.requestTimeout,
	})
	if err != nil {
		return err
	}
	if cfg.sessionTTL > 0 {
		// Reap abandoned sessions (crashed clients never DELETE) so the
		// per-shard cap sheds attackers, not memory.
		go srv.SweepLoop(ctx)
	}
	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	for _, cc := range catalogs {
		if cc.Catalog == nil {
			log.Printf("visdbd: catalog %q on shard %d is quarantined (503)",
				cc.Name, server.ShardOf(cc.Name, cfg.shards))
			continue
		}
		log.Printf("visdbd: serving catalog %q (%d rows) on shard %d",
			cc.Name, mustRows(cc), server.ShardOf(cc.Name, cfg.shards))
	}
	log.Printf("visdbd: listening on %s (%d shards)", l.Addr(), cfg.shards)
	if ready != nil {
		ready(l.Addr().String())
	}

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: Shutdown refuses new connections and waits for
	// every in-flight request — i.e. every in-flight recalculation —
	// to finish, bounded by the drain timeout.
	log.Printf("visdbd: draining (%d requests in flight)...", srv.InFlight())
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("visdbd: drained, exiting (in flight: %d)", srv.InFlight())
	return nil
}

// mustRows reports a catalog's table row count for the startup log.
func mustRows(cc server.CatalogConfig) int {
	rows := 0
	for _, name := range cc.Catalog.TableNames() {
		if t, err := cc.Catalog.Table(name); err == nil {
			rows += t.NumRows()
		}
	}
	return rows
}
