package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/wire"
	"repro/visdb/client"
)

// writeFlippedCatalog writes a synthetic catalog to a segment file and
// XORs one byte at off (negative offsets count from the end).
func writeFlippedCatalog(t *testing.T, dir string, off int) string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	mem, err := datagen.Traffic(2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "flipped.visdb")
	if _, err := dataset.WriteCatalogFile(path, mem); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += len(raw)
	}
	raw[off] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDaemonQuarantinesCorruptCatalog is the daemon-level acceptance
// check the CI corruption step drives: a bit-flipped segment catalog
// is refused — quarantined with a typed corruption error, answering
// 503 catalog_quarantined — while a healthy catalog on the same
// daemon keeps serving. Two flip sites cover both failure times: a
// footer flip fails verification at load, a mid-blob flip passes load
// and trips the per-segment checksum on first decode.
func TestDaemonQuarantinesCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	footerFlip := writeFlippedCatalog(t, filepath.Join(dir, "f"), -10)
	blobFlip := writeFlippedCatalog(t, filepath.Join(dir, "b"), 1<<10)

	// The footer flip must be a load-time ErrCorruptSegment.
	if _, err := dataset.OpenCatalogFile(footerFlip, dataset.OpenOptions{}); !errors.Is(err, dataset.ErrCorruptSegment) {
		t.Fatalf("footer flip: want ErrCorruptSegment, got %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := config{
		addr:           "127.0.0.1:0",
		shards:         2,
		catalogs:       "loadbad:" + footerFlip + ",decodebad:" + blobFlip + ",good:800",
		seed:           7,
		gridW:          16,
		gridH:          16,
		admitMin:       -1,
		drainTimeout:   10 * time.Second,
		requestTimeout: 30 * time.Second,
	}
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, func(addr string) { addrc <- addr }) }()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c := client.New("http://" + addr)
	rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer rcancel()

	const query = `SELECT a FROM S WHERE a > 50 AND b < 40`
	for _, name := range []string{"loadbad", "decodebad"} {
		_, _, err := c.NewSession(rctx, name, query, client.Options{})
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Status != 503 || ae.Code != wire.CodeCatalogQuarantined {
			t.Fatalf("%s: want 503/%s, got %v", name, wire.CodeCatalogQuarantined, err)
		}
	}
	// The healthy catalog on the same daemon serves through it all.
	s, sum, err := c.NewSession(rctx, "good", query, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 800 {
		t.Fatalf("good catalog N = %d", sum.N)
	}
	if _, err := s.SetWeight(rctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	// The listing reports both quarantines.
	infos, err := c.Catalogs(rctx)
	if err != nil {
		t.Fatal(err)
	}
	q := map[string]bool{}
	for _, info := range infos {
		q[info.Name] = info.Quarantined
	}
	if !q["loadbad"] || !q["decodebad"] || q["good"] {
		t.Fatalf("quarantine flags: %v", q)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained")
	}
}

// TestDaemonFlagValidation: degenerate flag values fail startup with
// errors naming the flag, and duplicate catalog names are rejected
// before any data loads.
func TestDaemonFlagValidation(t *testing.T) {
	base := config{
		addr:         "127.0.0.1:0",
		shards:       1,
		catalogs:     "traffic:100",
		seed:         1,
		gridW:        8,
		gridH:        8,
		drainTimeout: 5 * time.Second,
	}
	cases := []struct {
		name string
		mut  func(c *config)
		want string
	}{
		{"drain too small", func(c *config) { c.drainTimeout = 10 * time.Millisecond }, "-drain-timeout"},
		{"ttl too small", func(c *config) { c.sessionTTL = 5 * time.Millisecond }, "-session-ttl"},
		{"request timeout too small", func(c *config) { c.requestTimeout = time.Millisecond }, "-request-timeout"},
		{"negative catalog cache", func(c *config) { c.catCacheMB = -1 }, "-catalog-cache-mb"},
		{"zero grid", func(c *config) { c.gridW = 0 }, "-gridw"},
		{"duplicate catalogs", func(c *config) { c.catalogs = "a:100,a:200" }, "duplicate catalog"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := run(context.Background(), cfg, nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want startup error mentioning %q, got %v", tc.want, err)
			}
		})
	}
}
