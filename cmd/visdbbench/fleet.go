package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/kv"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/visdb/client"
)

// The -fleet section of the -json report: an in-process fleet — three
// visdbd-equivalent members attached to one kv store behind one
// router, all over loopback HTTP — driven by the concurrent traffic
// scripts. It reports fleet-wide recalcs/s, the shared-hit rate the
// router aggregates across members, and the kv tier's traffic, so the
// cross-node sharing claims are tracked as CI data.

// fleetBenchReport is the "fleet" object of the BENCH_N.json schema.
type fleetBenchReport struct {
	Members       int              `json:"members"`
	Sessions      int              `json:"sessions"`
	Steps         int              `json:"steps"`
	Recalcs       uint64           `json:"recalcs"`
	RecalcsPerSec float64          `json:"recalcs_per_sec"`
	StepP50MS     float64          `json:"step_p50_ms"`
	StepP99MS     float64          `json:"step_p99_ms"`
	SharedHitRate float64          `json:"shared_hit_rate"`
	Shared        wire.SharedStats `json:"shared"`
	KV            wire.KVStats     `json:"kv"`
	// NodeKill is the availability phase: a member is killed mid-run
	// and self-healing FleetSessions must absorb it — recoveries > 0
	// proves the kill landed on live sessions, errors == 0 proves no
	// caller ever saw it. (Runs after the stats above are gathered, so
	// the throughput numbers describe the healthy fleet.)
	NodeKill nodeKillReport `json:"node_kill"`
}

// nodeKillReport is the "node_kill" object of the fleet report.
type nodeKillReport struct {
	Sessions   int    `json:"sessions"`
	Steps      int    `json:"steps"`
	Victim     string `json:"victim"`
	Recoveries uint64 `json:"recoveries"`
	Errors     uint64 `json:"errors"`
}

// serveLocal hosts h on an ephemeral loopback port and returns its
// base URL plus a stopper.
func serveLocal(h http.Handler) (string, func(), error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(l)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
	return "http://" + l.Addr().String(), stop, nil
}

// runFleetBench stands the fleet up, drives the traffic, and tears it
// down.
func runFleetBench(rows int, seed int64) (*fleetBenchReport, error) {
	const members, catalogs, sessions, steps = 3, 3, 6, 10
	cat, err := datagen.Traffic(rows, seed)
	if err != nil {
		return nil, err
	}
	kvURL, stopKV, err := serveLocal(kv.NewServer(0, 0))
	if err != nil {
		return nil, err
	}
	defer stopKV()

	// Every member serves the same replica catalogs (identical data —
	// the kv tier's keys are structural, so replicas warm each other),
	// sharing the read-only decoded arrays.
	var ms []router.Member
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	// Each member sits behind a kill switch for the node-kill phase.
	breakers := make(map[string]*faultinject.Breaker)
	for n := 0; n < members; n++ {
		var cfgs []server.CatalogConfig
		for i := 0; i < catalogs; i++ {
			cfgs = append(cfgs, server.CatalogConfig{
				Name:    fmt.Sprintf("r%d", i),
				Catalog: cat,
				Shared:  core.SharedOptions{AdmitMinCost: -1, Backend: kv.NewClient(kvURL)},
			})
		}
		srv, err := server.New(server.Config{
			Shards:         8,
			Catalogs:       cfgs,
			DefaultOptions: core.Options{GridW: 128, GridH: 128},
		})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("m%d", n)
		br := faultinject.NewBreaker(srv)
		breakers[name] = br
		url, stop, err := serveLocal(br)
		if err != nil {
			return nil, err
		}
		stops = append(stops, stop)
		ms = append(ms, router.Member{Name: name, URL: url})
	}
	rt, err := router.New(router.Config{Shards: 8, Members: ms, KV: kvURL})
	if err != nil {
		return nil, err
	}
	rtURL, stopRT, err := serveLocal(rt)
	if err != nil {
		return nil, err
	}
	defer stopRT()

	ctx := context.Background()
	c := client.New(rtURL)
	queries := datagen.TrafficQueries()
	type tally struct {
		steps []time.Duration
		err   error
	}
	tallies := make([]tally, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			src := queries[g%len(queries)]
			s, _, err := c.NewSession(ctx, fmt.Sprintf("r%d", g%catalogs), src, client.Options{})
			if err != nil {
				tallies[g].err = err
				return
			}
			defer s.Close(ctx)
			preds := numPreds(src)
			attrs := condAttrs(src)
			for step := 0; step < steps; step++ {
				t0 := time.Now()
				var err error
				switch op := rng.Intn(10); {
				case op < 5:
					lo := float64(int(rng.Float64() * 80))
					_, err = s.SetRange(ctx, attrs[rng.Intn(len(attrs))], lo, lo+float64(int(rng.Float64()*40)))
				case op < 8:
					_, err = s.SetWeight(ctx, rng.Intn(preds), []float64{0.5, 1, 2, 3}[rng.Intn(4)])
				default:
					_, err = s.Undo(ctx)
					if apiErr, ok := err.(*client.APIError); ok && apiErr.Status == 409 {
						continue
					}
				}
				if err != nil {
					tallies[g].err = fmt.Errorf("step %d: %w", step, err)
					return
				}
				tallies[g].steps = append(tallies[g].steps, time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []time.Duration
	for g, tl := range tallies {
		if tl.err != nil {
			return nil, fmt.Errorf("fleet session %d: %w", g, tl.err)
		}
		all = append(all, tl.steps...)
	}

	// Fleet-wide stats BEFORE the node-kill phase: the throughput and
	// sharing numbers describe the healthy fleet, not the failover.
	fleet, err := c.Fleet(ctx)
	if err != nil {
		return nil, err
	}
	rep := &fleetBenchReport{
		Members:       members,
		Sessions:      sessions,
		Steps:         steps,
		Recalcs:       fleet.Recalcs,
		RecalcsPerSec: float64(fleet.Recalcs) / elapsed.Seconds(),
		StepP50MS:     percentileMS(all, 50),
		StepP99MS:     percentileMS(all, 99),
		SharedHitRate: fleet.SharedHitRate,
		Shared:        fleet.Shared,
		KV:            fleet.KV,
	}

	// --- Node-kill phase: self-healing sessions through a dead member --
	nk, err := runNodeKill(ctx, c, rt, breakers, seed)
	if err != nil {
		return nil, err
	}
	rep.NodeKill = *nk
	return rep, nil
}

// runNodeKill opens self-healing FleetSessions on one catalog, kills
// that catalog's owning member mid-run, and keeps editing: every kill
// must be absorbed by automatic session recovery (recoveries > 0)
// with zero caller-visible errors.
func runNodeKill(ctx context.Context, c *client.Client, rt *router.Router, breakers map[string]*faultinject.Breaker, seed int64) (*nodeKillReport, error) {
	const nkSessions, nkSteps = 2, 8
	const victimCat = "r0"
	victim := rt.Placement()[server.ShardOf(victimCat, 8)]
	queries := datagen.TrafficQueries()

	var fss []*client.FleetSession
	var mirrors []string
	for g := 0; g < nkSessions; g++ {
		src := queries[g%len(queries)]
		fs, _, err := client.NewFleetSession(ctx, []*client.Client{c}, victimCat, src,
			client.FleetOptions{MaxRecoveries: 16})
		if err != nil {
			return nil, fmt.Errorf("node-kill session %d: %w", g, err)
		}
		defer fs.Close(ctx)
		fss = append(fss, fs)
		mirrors = append(mirrors, src)
	}

	rep := &nodeKillReport{Sessions: nkSessions, Steps: nkSteps, Victim: victim}
	for step := 0; step < nkSteps; step++ {
		if step == nkSteps/2 {
			// The owner dies mid-run; no health loop is running, so
			// recovery rides on passive failover plus session replay.
			breakers[victim].Kill()
		}
		for g, fs := range fss {
			rng := rand.New(rand.NewSource(seed + int64(step*nkSessions+g)))
			attrs := condAttrs(mirrors[g])
			var err error
			if step%2 == 0 {
				lo := float64(int(rng.Float64() * 80))
				_, err = fs.SetRange(ctx, attrs[rng.Intn(len(attrs))], lo, lo+40)
			} else {
				_, err = fs.SetWeight(ctx, rng.Intn(numPreds(mirrors[g])), []float64{0.5, 1, 2, 3}[rng.Intn(4)])
			}
			if err != nil {
				rep.Errors++
			}
		}
	}
	for _, fs := range fss {
		rep.Recoveries += fs.Recoveries()
	}
	return rep, nil
}

// percentileMS reports the p-th percentile of a latency sample in
// milliseconds (nearest-rank; 0 for an empty sample).
func percentileMS(samples []time.Duration, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Nanoseconds()) / 1e6
}
