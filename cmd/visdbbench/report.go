package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/session"
	"repro/internal/wire"
)

// This file implements the machine-readable benchmark mode:
//
//	visdbbench -json BENCH_6.json [-json-rows N] [-floors] [-disk]
//
// It runs the interactive-loop workloads (cold engine runs vs warm
// cached reruns, the slider drag, the concurrent multi-session
// traffic) over the deterministic traffic catalog and writes one JSON
// document with throughput, per-stage timings and the cache/prune
// counters — so the perf trajectory across PRs is tracked as data in
// the CI artifacts instead of prose in commit messages.
//
// -disk serves the catalog from an on-disk segment file through a
// deliberately small decoded-segment cache instead of from memory, so
// the report tracks the file-backed serving path (results are
// bit-identical; only where the bytes live changes).
//
// -floors additionally enforces the regression floors: the
// rank-before-scale block pruning must actually fire on the warm
// reweight workload (prune rate > 0 — a silent deactivation fails
// loud), warm reruns must beat cold runs, and the interior
// normalization sketch must carry the steady-state warm rerun
// (sketch hits > 0, rescans below one full pass, and the evaluate
// stage measurably cheaper than the -no-sketch baseline).

// reweightReport is one cold-vs-warm weight-slider workload.
type reweightReport struct {
	ColdMS  float64 `json:"cold_ms"`
	WarmMS  float64 `json:"warm_ms"`
	Speedup float64 `json:"speedup"`
	// Warm holds the steady-state warm rerun's stage timings and
	// counters (cache hits, pruned chunks, interior sketch hits and
	// rescans) in the wire schema.
	Warm wire.Timings `json:"warm"`
	// WarmSketchlessMS and WarmSketchless repeat the warm workload with
	// Options.NoInteriorSketch — the ablation baseline the sketch floors
	// compare against (its evaluate stage re-runs every interior
	// combine; the killed full-array pass, measured).
	WarmSketchlessMS float64      `json:"warm_sketchless_ms"`
	WarmSketchless   wire.Timings `json:"warm_sketchless"`
}

// coldScanReport is the cold file-backed scan workload (-disk only): a
// range predicate on the clustered attribute t, each run against a
// freshly opened catalog (empty decoded-segment cache, empty run
// cache), with the segment-stats pushdown on versus off.
type coldScanReport struct {
	// StatsOnMS/StatsOffMS are the median distances-stage times of the
	// cold runs with the footer-stats pushdown enabled vs disabled
	// (Options.NoSegmentStats) — the stage the pushdown accelerates,
	// isolated from the shared evaluate/rank cost.
	StatsOnMS  float64 `json:"stats_on_ms"`
	StatsOffMS float64 `json:"stats_off_ms"`
	Speedup    float64 `json:"speedup"`
	// StatsOn holds a representative stats-on cold run's full timings;
	// its SegsSkipped/Segs counters attribute the pushdown.
	StatsOn wire.Timings `json:"stats_on"`
	// FileBytes is the v3 (compressed, per-segment stats) catalog file
	// size; FileBytesV2 the same catalog written in format v2.
	FileBytes   int64 `json:"file_bytes"`
	FileBytesV2 int64 `json:"file_bytes_v2"`
}

type concurrentReport struct {
	Sessions      int     `json:"sessions"`
	Steps         int     `json:"steps"`
	Recalcs       int     `json:"recalcs"`
	RecalcsPerSec float64 `json:"recalcs_per_sec"`
	// StepP50MS/StepP99MS are per-interaction-step latency percentiles
	// across every session's applied edits — the paper's "response time
	// per slider movement", measured under contention.
	StepP50MS     float64          `json:"step_p50_ms"`
	StepP99MS     float64          `json:"step_p99_ms"`
	SharedHitRate float64          `json:"shared_hit_rate"`
	SharedStats   wire.SharedStats `json:"shared_stats"`
}

// benchReport is the BENCH_N.json schema.
type benchReport struct {
	Schema int   `json:"schema"`
	Rows   int   `json:"rows"`
	Seed   int64 `json:"seed"`
	// DiskBacked records whether the catalog was served from an on-disk
	// segment file (-disk); Epoch is its content-hash epoch (0 in
	// memory).
	DiskBacked   bool             `json:"disk_backed"`
	Epoch        uint64           `json:"epoch,omitempty"`
	Reweight     reweightReport   `json:"reweight"`
	SliderDragMS float64          `json:"slider_drag_ms"`
	SliderDrag   wire.Timings     `json:"slider_drag"`
	Concurrent   concurrentReport `json:"concurrent"`
	// ColdScan is present only for -disk reports.
	ColdScan *coldScanReport `json:"cold_scan,omitempty"`
	// Fleet is present only for -fleet reports: the routed three-member
	// fleet with the networked kv tier (see fleet.go).
	Fleet *fleetBenchReport `json:"fleet,omitempty"`
}

// medianMS converts a sample of durations to its median in
// milliseconds (medians shrug off one-off scheduler hiccups that would
// make floors flaky on shared CI runners).
func medianMS(samples []time.Duration) float64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return float64(samples[len(samples)/2].Nanoseconds()) / 1e6
}

// runJSONBench runs the workloads and writes the report to path.
// floors enforces the regression floors after writing (the report is
// useful even when it fails them). disk round-trips the catalog
// through a segment file first and serves it from there.
func runJSONBench(path string, rows int, seed int64, floors, disk, fleet bool) error {
	cat, err := datagen.Traffic(rows, seed)
	if err != nil {
		return err
	}
	rep := benchReport{Schema: 5, Rows: rows, Seed: seed, DiskBacked: disk}
	var segPath string
	if disk {
		segPath = filepath.Join(os.TempDir(), fmt.Sprintf("visdbbench-%d-%d.visdb", rows, seed))
		epoch, err := dataset.WriteCatalogFile(segPath, cat)
		if err != nil {
			return err
		}
		defer os.Remove(segPath)
		// An 8 MiB decoded-segment cache keeps the file-backed catalog
		// well under the in-memory footprint (3 float columns at 1e6
		// rows are 24 MiB), so the bench actually exercises paging.
		fcat, err := dataset.OpenCatalogFile(segPath, dataset.OpenOptions{CacheBytes: 8 << 20})
		if err != nil {
			return err
		}
		defer fcat.Close()
		cat = fcat
		rep.Epoch = epoch
	}
	opt := core.Options{GridW: 128, GridH: 128}
	sql := datagen.TrafficQueries()[2] // the OR query: the geometric-root hot path

	// --- Reweight: cold engine runs vs warm session reruns ----------
	q, err := query.Parse(sql)
	if err != nil {
		return err
	}
	eng := core.New(cat, nil, opt)
	pred := query.Predicates(q.Where)[0]
	var cold []time.Duration
	for i := 0; i < 5; i++ {
		pred.SetWeight(float64(2 + i%2))
		t0 := time.Now()
		if _, err := eng.Run(q); err != nil {
			return err
		}
		cold = append(cold, time.Since(t0))
	}
	s, err := session.NewSQL(cat, nil, opt, sql)
	if err != nil {
		return err
	}
	spred := query.Predicates(s.Query().Where)[0]
	var warm []time.Duration
	var warmTM core.StageTimings
	for i := 0; i < 12; i++ {
		t0 := time.Now()
		if err := s.SetWeight(spred, float64(2+i%2)); err != nil {
			return err
		}
		d := time.Since(t0)
		if i >= 2 { // the first reruns pay the one-time index builds
			warm = append(warm, d)
			warmTM = s.Result().Timings
		}
	}
	rep.Reweight = reweightReport{
		ColdMS: medianMS(cold),
		WarmMS: medianMS(warm),
		Warm:   wire.TimingsOf(warmTM),
	}
	if rep.Reweight.WarmMS > 0 {
		rep.Reweight.Speedup = rep.Reweight.ColdMS / rep.Reweight.WarmMS
	}

	// The same warm workload with the interior sketch disabled — the
	// ablation baseline whose evaluate stage re-runs every interior
	// combine pass on each drag.
	noSketch := opt
	noSketch.NoInteriorSketch = true
	sn, err := session.NewSQL(cat, nil, noSketch, sql)
	if err != nil {
		return err
	}
	snPred := query.Predicates(sn.Query().Where)[0]
	var warmNS []time.Duration
	var warmNSTM core.StageTimings
	for i := 0; i < 12; i++ {
		t0 := time.Now()
		if err := sn.SetWeight(snPred, float64(2+i%2)); err != nil {
			return err
		}
		d := time.Since(t0)
		if i >= 2 {
			warmNS = append(warmNS, d)
			warmNSTM = sn.Result().Timings
		}
	}
	rep.Reweight.WarmSketchlessMS = medianMS(warmNS)
	rep.Reweight.WarmSketchless = wire.TimingsOf(warmNSTM)

	// --- Slider drag: range edits recompute exactly one leaf --------
	c, err := s.FindCond("c")
	if err != nil {
		return err
	}
	var drags []time.Duration
	for i := 0; i < 8; i++ {
		t0 := time.Now()
		if err := s.SetRange(c, float64(20+i%5), float64(30+i%5)); err != nil {
			return err
		}
		drags = append(drags, time.Since(t0))
	}
	rep.SliderDragMS = medianMS(drags)
	rep.SliderDrag = wire.TimingsOf(s.Result().Timings)

	// --- Concurrent traffic over the shared tier --------------------
	const sessions, steps = 4, 20
	shared := core.NewSharedCache(0, 0)
	queries := datagen.TrafficQueries()
	recalcs := make([]int, sessions)
	stepTimes := make([][]time.Duration, sessions)
	errs := make([]error, sessions)
	t0 := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cs, err := session.NewSQLShared(cat, nil, opt, queries[g%len(queries)], shared)
			if err != nil {
				errs[g] = err
				return
			}
			pred := query.Predicates(cs.Query().Where)[0]
			for step := 0; step < steps; step++ {
				st := time.Now()
				if err := cs.SetWeight(pred, []float64{0.5, 1, 2, 3}[step%4]); err != nil {
					errs[g] = err
					return
				}
				stepTimes[g] = append(stepTimes[g], time.Since(st))
			}
			recalcs[g] = cs.Recalcs
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	total := 0
	var allSteps []time.Duration
	for g := range recalcs {
		if errs[g] != nil {
			return errs[g]
		}
		total += recalcs[g]
		allSteps = append(allSteps, stepTimes[g]...)
	}
	st := shared.Stats()
	rep.Concurrent = concurrentReport{
		Sessions:      sessions,
		Steps:         steps,
		Recalcs:       total,
		RecalcsPerSec: float64(total) / elapsed.Seconds(),
		StepP50MS:     percentileMS(allSteps, 50),
		StepP99MS:     percentileMS(allSteps, 99),
		SharedStats:   wire.SharedStatsOf(st),
	}
	if st.Hits+st.Misses > 0 {
		rep.Concurrent.SharedHitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}

	// --- Cold scans: the segment-stats pushdown (-disk only) --------
	if disk {
		cs, err := runColdScan(segPath, rows, seed)
		if err != nil {
			return err
		}
		rep.ColdScan = cs
	}

	// --- Fleet: routed members over the networked kv tier (-fleet) --
	if fleet {
		fb, err := runFleetBench(rows, seed)
		if err != nil {
			return err
		}
		rep.Fleet = fb
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: reweight cold %.1fms / warm %.1fms (%.2fx), pruned %d/%d chunks, sketch hits %d rescans %d (sketchless warm %.1fms), %0.1f recalcs/s concurrent\n",
		path, rep.Reweight.ColdMS, rep.Reweight.WarmMS, rep.Reweight.Speedup,
		rep.Reweight.Warm.Pruned, rep.Reweight.Warm.Chunks,
		rep.Reweight.Warm.SketchHits, rep.Reweight.Warm.SketchRescans,
		rep.Reweight.WarmSketchlessMS, rep.Concurrent.RecalcsPerSec)
	if cs := rep.ColdScan; cs != nil {
		fmt.Printf("cold scan: stats on %.2fms / off %.2fms (%.2fx), skipped %d/%d segments, file %d B vs v2 %d B\n",
			cs.StatsOnMS, cs.StatsOffMS, cs.Speedup,
			cs.StatsOn.SegsSkipped, cs.StatsOn.Segs, cs.FileBytes, cs.FileBytesV2)
	}
	if fb := rep.Fleet; fb != nil {
		fmt.Printf("fleet: %d members, %d sessions, %.1f recalcs/s, step p50 %.1fms p99 %.1fms, shared-hit rate %.3f (%d remote hits), kv %d entries\n",
			fb.Members, fb.Sessions, fb.RecalcsPerSec, fb.StepP50MS, fb.StepP99MS,
			fb.SharedHitRate, fb.Shared.RemoteHits, fb.KV.Entries)
		fmt.Printf("node kill: victim %s, %d sessions x %d steps, %d recoveries, %d errors\n",
			fb.NodeKill.Victim, fb.NodeKill.Sessions, fb.NodeKill.Steps,
			fb.NodeKill.Recoveries, fb.NodeKill.Errors)
	}
	if floors {
		return checkFloors(rep)
	}
	return nil
}

// runColdScan measures cold file-backed range scans on the clustered
// attribute t, pushdown on vs off. Every run opens the catalog fresh
// (empty decoded-segment cache) and uses a fresh run cache, so the
// distances stage always pays the from-disk cost the pushdown skips.
func runColdScan(segPath string, rows int, seed int64) (*coldScanReport, error) {
	mem, err := datagen.Traffic(rows, seed)
	if err != nil {
		return nil, err
	}
	v2Path := segPath + ".v2"
	if _, err := dataset.WriteCatalogFileV2(v2Path, mem); err != nil {
		return nil, err
	}
	defer os.Remove(v2Path)
	fi3, err := os.Stat(segPath)
	if err != nil {
		return nil, err
	}
	fi2, err := os.Stat(v2Path)
	if err != nil {
		return nil, err
	}
	// The interval covers the middle of t's domain, so most interior
	// segments are provably all-in-range while the uniform a/b/c
	// columns never qualify — the pushdown's intended shape.
	q, err := query.Parse(`SELECT a FROM S WHERE t BETWEEN 20 AND 80`)
	if err != nil {
		return nil, err
	}
	run := func(noStats bool) (core.StageTimings, error) {
		fcat, err := dataset.OpenCatalogFile(segPath, dataset.OpenOptions{CacheBytes: 8 << 20})
		if err != nil {
			return core.StageTimings{}, err
		}
		defer fcat.Close()
		eng := core.New(fcat, nil, core.Options{GridW: 128, GridH: 128, NoSegmentStats: noStats})
		res, err := eng.RunCached(q, core.NewRunCache())
		if err != nil {
			return core.StageTimings{}, err
		}
		return res.Timings, nil
	}
	var on, off []time.Duration
	var onTM core.StageTimings
	for i := 0; i < 5; i++ {
		tm, err := run(false)
		if err != nil {
			return nil, err
		}
		on = append(on, tm.Distances)
		onTM = tm
		if tm, err = run(true); err != nil {
			return nil, err
		}
		off = append(off, tm.Distances)
	}
	cs := &coldScanReport{
		StatsOnMS:   medianMS(on),
		StatsOffMS:  medianMS(off),
		StatsOn:     wire.TimingsOf(onTM),
		FileBytes:   fi3.Size(),
		FileBytesV2: fi2.Size(),
	}
	if cs.StatsOnMS > 0 {
		cs.Speedup = cs.StatsOffMS / cs.StatsOnMS
	}
	return cs, nil
}

// checkFloors enforces the hardcoded regression floors on a report.
func checkFloors(rep benchReport) error {
	var fails []string
	// The rank-before-scale block pruning must fire on warm reweight
	// reruns: a zero prune count means the bounds, the leaf chunk-stats
	// promotion, or the threshold carry-over silently deactivated.
	if rep.Reweight.Warm.Pruned <= 0 {
		fails = append(fails, "warm reweight pruned 0 chunks (block pruning deactivated)")
	}
	if rep.Reweight.Warm.Chunks <= 0 {
		fails = append(fails, "warm reweight reports no evaluator chunks")
	}
	// Warm reruns must beat cold runs (the whole point of the
	// incremental loop); medians keep this robust on noisy runners.
	if !(rep.Reweight.WarmMS < rep.Reweight.ColdMS) {
		fails = append(fails, fmt.Sprintf("warm rerun (%.1fms) not faster than cold (%.1fms)",
			rep.Reweight.WarmMS, rep.Reweight.ColdMS))
	}
	// Warm reruns serve every leaf from the cache.
	if rep.Reweight.Warm.CacheMisses != 0 || rep.Reweight.Warm.CacheHits == 0 {
		fails = append(fails, fmt.Sprintf("warm reweight cache attribution off: hits=%d misses=%d",
			rep.Reweight.Warm.CacheHits, rep.Reweight.Warm.CacheMisses))
	}
	// The interior normalization sketch must carry the steady-state warm
	// rerun: entries hit, the rescan attribution stays below one full
	// pass over the evaluator chunks, and the evaluate stage beats the
	// sketchless ablation baseline by at least 2x (the measured margin
	// is ~40x — this floor only catches silent deactivation, not noise).
	if rep.Reweight.Warm.SketchHits <= 0 {
		fails = append(fails, "warm reweight took no interior sketch hits (sketch deactivated)")
	}
	if rep.Reweight.Warm.SketchRescans >= rep.Reweight.Warm.Chunks {
		fails = append(fails, fmt.Sprintf("warm reweight rescanned %d of %d chunks (no better than a full pass)",
			rep.Reweight.Warm.SketchRescans, rep.Reweight.Warm.Chunks))
	}
	if rep.Reweight.WarmSketchless.SketchHits != 0 {
		fails = append(fails, "sketchless baseline reported sketch hits (ablation gate broken)")
	}
	if rep.Reweight.WarmSketchless.EvaluateNS < 2*rep.Reweight.Warm.EvaluateNS {
		fails = append(fails, fmt.Sprintf("sketch evaluate (%dns) not 2x under the sketchless baseline (%dns)",
			rep.Reweight.Warm.EvaluateNS, rep.Reweight.WarmSketchless.EvaluateNS))
	}
	// Cross-session sharing must happen in the concurrent workload, and
	// the step latency percentiles must be populated and ordered.
	if rep.Concurrent.SharedHitRate <= 0 {
		fails = append(fails, "concurrent sessions shared nothing")
	}
	if rep.Concurrent.StepP50MS <= 0 || rep.Concurrent.StepP99MS < rep.Concurrent.StepP50MS {
		fails = append(fails, fmt.Sprintf("concurrent step percentiles degenerate: p50=%.3fms p99=%.3fms",
			rep.Concurrent.StepP50MS, rep.Concurrent.StepP99MS))
	}
	if math.IsNaN(rep.Reweight.Speedup) {
		fails = append(fails, "speedup is NaN")
	}
	// The segment-stats pushdown floors (-disk reports): the footer
	// stats must actually skip decodes on the clustered cold scan, the
	// skipping must pay off in the distances stage, and the v3 segment
	// codecs must beat the v2 raw layout on file size.
	if cs := rep.ColdScan; cs != nil {
		if cs.StatsOn.SegsSkipped <= 0 {
			fails = append(fails, "cold scan skipped no segments (stats pushdown deactivated)")
		}
		if cs.StatsOn.Segs <= 0 {
			fails = append(fails, "cold scan reports no segments considered")
		}
		if !(cs.StatsOnMS < cs.StatsOffMS) {
			fails = append(fails, fmt.Sprintf("cold scan with stats (%.2fms) not faster than without (%.2fms)",
				cs.StatsOnMS, cs.StatsOffMS))
		}
		if cs.FileBytes >= cs.FileBytesV2 {
			fails = append(fails, fmt.Sprintf("v3 file (%d bytes) not smaller than v2 (%d bytes)",
				cs.FileBytes, cs.FileBytesV2))
		}
	}
	// The fleet floors (-fleet reports): members must actually share
	// work through the networked kv tier — a fleet where every node
	// recomputes everything has silently lost its shared-distance tier.
	if fb := rep.Fleet; fb != nil {
		if fb.SharedHitRate <= 0 {
			fails = append(fails, "fleet members shared nothing (fleet-wide hit rate 0)")
		}
		if fb.Shared.RemoteHits == 0 || fb.Shared.RemotePuts == 0 {
			fails = append(fails, fmt.Sprintf("fleet kv tier carried nothing (remote hits=%d puts=%d)",
				fb.Shared.RemoteHits, fb.Shared.RemotePuts))
		}
		if fb.KV.Entries == 0 {
			fails = append(fails, "fleet kv store holds no entries")
		}
		if fb.Recalcs == 0 || fb.RecalcsPerSec <= 0 {
			fails = append(fails, "fleet served no recalculations")
		}
		if fb.StepP50MS <= 0 || fb.StepP99MS < fb.StepP50MS {
			fails = append(fails, fmt.Sprintf("fleet step percentiles degenerate: p50=%.3fms p99=%.3fms",
				fb.StepP50MS, fb.StepP99MS))
		}
		// Self-healing floors: the node kill must have landed on live
		// sessions (recoveries > 0 — a kill nobody noticed proves
		// nothing) and no caller may have seen an error (the whole point
		// of automatic session recovery).
		if fb.NodeKill.Recoveries == 0 {
			fails = append(fails, "node-kill phase triggered no session recoveries (kill landed on an idle member)")
		}
		if fb.NodeKill.Errors != 0 {
			fails = append(fails, fmt.Sprintf("node-kill phase leaked %d caller-visible errors", fb.NodeKill.Errors))
		}
	}
	if len(fails) == 0 {
		fmt.Println("bench floors: all passed")
		return nil
	}
	for _, f := range fails {
		fmt.Fprintln(os.Stderr, "bench floor violated:", f)
	}
	return fmt.Errorf("%d bench floor(s) violated", len(fails))
}
