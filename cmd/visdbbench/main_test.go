package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	// The cheap text-only experiments keep this test fast.
	for _, id := range []string{"f3", "c2", "a4", "F3"} {
		if err := run(id, ""); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("zzz", ""); err == nil {
		t.Error("unknown experiment should fail")
	}
}
