package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	// The cheap text-only experiments keep this test fast.
	for _, id := range []string{"f3", "c2", "a4", "F3"} {
		if err := run(id, ""); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("zzz", ""); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunConcurrentTraffic(t *testing.T) {
	// Small enough to stay fast; large enough that sessions overlap and
	// the shared tier must report cross-session hits.
	if err := runConcurrent(4, 6, 2000, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunConcurrentRejectsBadArgs(t *testing.T) {
	if err := runConcurrent(0, 6, 2000, 7); err == nil {
		t.Error("zero sessions should fail")
	}
	if err := runConcurrent(2, 0, 2000, 7); err == nil {
		t.Error("zero steps should fail")
	}
}
