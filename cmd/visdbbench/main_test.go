package main

import (
	"testing"
	"time"
)

func TestRunSingleExperiment(t *testing.T) {
	// The cheap text-only experiments keep this test fast.
	for _, id := range []string{"f3", "c2", "a4", "F3"} {
		if err := run(id, ""); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("zzz", ""); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunConcurrentTraffic(t *testing.T) {
	// Small enough to stay fast; large enough that sessions overlap and
	// the shared tier must report cross-session hits.
	if err := runConcurrent(4, 6, 2000, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetBench(t *testing.T) {
	// A miniature routed fleet: the report must show cross-node sharing
	// through the kv tier and populated step percentiles.
	fb, err := runFleetBench(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fb.SharedHitRate <= 0 || fb.Shared.RemoteHits == 0 || fb.KV.Entries == 0 {
		t.Fatalf("fleet bench shows no sharing: %+v", fb)
	}
	if fb.StepP50MS <= 0 || fb.StepP99MS < fb.StepP50MS {
		t.Fatalf("degenerate percentiles: %+v", fb)
	}
	if fb.Recalcs == 0 || fb.RecalcsPerSec <= 0 {
		t.Fatalf("fleet served nothing: %+v", fb)
	}
	// The node-kill phase must land on live sessions and stay invisible
	// to callers — the same floors -floors enforces in CI.
	if fb.NodeKill.Recoveries == 0 {
		t.Fatalf("node kill triggered no recoveries: %+v", fb.NodeKill)
	}
	if fb.NodeKill.Errors != 0 {
		t.Fatalf("node kill leaked %d errors", fb.NodeKill.Errors)
	}
}

func TestPercentileMS(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	if p := percentileMS(samples, 50); p != 50 {
		t.Errorf("p50 = %v, want 50", p)
	}
	if p := percentileMS(samples, 99); p != 99 {
		t.Errorf("p99 = %v, want 99", p)
	}
	if p := percentileMS(nil, 50); p != 0 {
		t.Errorf("empty sample p50 = %v, want 0", p)
	}
	if p := percentileMS([]time.Duration{3 * time.Millisecond}, 99); p != 3 {
		t.Errorf("single sample p99 = %v, want 3", p)
	}
}

func TestRunConcurrentRejectsBadArgs(t *testing.T) {
	if err := runConcurrent(0, 6, 2000, 7); err == nil {
		t.Error("zero sessions should fail")
	}
	if err := runConcurrent(2, 0, 2000, 7); err == nil {
		t.Error("zero steps should fail")
	}
}
