// Command visdbbench regenerates the paper's figures and quantitative
// claims (see DESIGN.md §4 for the experiment index) and prints
// paper-expectation vs measured-outcome reports.
//
// Usage:
//
//	visdbbench               # run everything, images into out/
//	visdbbench -exp f4       # one experiment
//	visdbbench -out ""       # skip image output
//	visdbbench -list         # list experiment ids
//
// The concurrent-traffic mode exercises the multi-tenant serving path
// instead of the paper experiments: M goroutine sessions on one
// catalog share a catalog-level predicate cache while each drives a
// randomized interaction script, and the run reports throughput plus
// the shared-tier hit/miss/singleflight counters:
//
//	visdbbench -concurrent 8 -steps 40 -rows 200000
//
// The same traffic can be driven through the visdbd serving layer to
// measure the HTTP/JSON overhead against the in-process numbers:
// -serve hosts the traffic catalog behind the protocol (blocking until
// SIGINT), -remote replays the concurrent scripts against it through
// the typed client and prints throughput plus the server's shard and
// shared-tier counters:
//
//	visdbbench -serve :8491 -rows 200000 &
//	visdbbench -remote http://localhost:8491 -concurrent 8 -steps 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id (f1a f1b f2 f3 f4 f5 c1 c2 c3 c4 a1 a2 a3) or 'all'")
		out  = flag.String("out", "out", "directory for generated images (empty to skip)")
		list = flag.Bool("list", false, "list experiments and exit")

		concurrent = flag.Int("concurrent", 0, "concurrent-traffic mode: number of simultaneous sessions (0 runs the experiments)")
		steps      = flag.Int("steps", 40, "interaction steps per session (concurrent/remote modes)")
		rows       = flag.Int("rows", 200000, "catalog rows (concurrent/serve modes)")
		seed       = flag.Int64("seed", 1994, "script and data seed (concurrent/serve/remote modes)")

		serve  = flag.String("serve", "", "serve mode: host the traffic catalog behind the visdbd protocol on this address")
		remote = flag.String("remote", "", "remote mode: drive the concurrent scripts against a visdbd at this base URL")
		shards = flag.Int("shards", 2, "serving shards (serve mode)")

		jsonOut  = flag.String("json", "", "json mode: run the interactive-loop benchmarks and write a machine-readable report to this path")
		jsonRows = flag.Int("json-rows", 1_000_000, "catalog rows for the json benchmark mode")
		floors   = flag.Bool("floors", false, "with -json: fail (exit 1) when the regression floors are violated (prune rate, warm<cold, cache attribution, sketch hits)")
		disk     = flag.Bool("disk", false, "with -json: serve the benchmark catalog from an on-disk segment file through a bounded decoded-segment cache")
		fleet    = flag.Bool("fleet", false, "with -json: also stand up a three-member routed fleet over a networked kv tier and report fleet-wide recalcs/s, step percentiles and shared-hit rate")
	)
	flag.Parse()
	if *jsonOut != "" {
		if err := runJSONBench(*jsonOut, *jsonRows, *seed, *floors, *disk, *fleet); err != nil {
			fmt.Fprintln(os.Stderr, "visdbbench:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}
	if *serve != "" {
		if err := runServe(*serve, *shards, *rows, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "visdbbench:", err)
			os.Exit(1)
		}
		return
	}
	if *remote != "" {
		n := *concurrent
		if n <= 0 {
			n = 8
		}
		if err := runRemote(*remote, n, *steps, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "visdbbench:", err)
			os.Exit(1)
		}
		return
	}
	if *concurrent > 0 {
		if err := runConcurrent(*concurrent, *steps, *rows, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "visdbbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *out); err != nil {
		fmt.Fprintln(os.Stderr, "visdbbench:", err)
		os.Exit(1)
	}
}

func run(exp, out string) error {
	if exp == "all" {
		reports, err := experiments.All(out)
		for _, r := range reports {
			fmt.Println(r.Format())
		}
		if err != nil {
			return err
		}
		failed := 0
		for _, r := range reports {
			if !r.Pass {
				failed++
			}
		}
		fmt.Printf("%d experiments, %d failed\n", len(reports), failed)
		if failed > 0 {
			return fmt.Errorf("%d experiments failed the shape check", failed)
		}
		return nil
	}
	for _, e := range experiments.Registry() {
		if strings.EqualFold(e.ID, exp) {
			r, err := e.Run(out)
			if err != nil {
				return err
			}
			fmt.Println(r.Format())
			if !r.Pass {
				return fmt.Errorf("experiment %s failed the shape check", r.ID)
			}
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q (use -list)", exp)
}
