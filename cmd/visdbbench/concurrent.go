package main

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/session"
)

// runConcurrent is the multi-tenant traffic mode: M goroutine sessions
// on one catalog, all attached to one catalog-level shared predicate
// cache, each driving a randomized interaction script (range drags,
// weight changes, undos). It reports throughput and the shared-tier
// counters — the serving-path numbers the single-user experiments
// cannot show.
func runConcurrent(sessions, steps, rows int, seed int64) error {
	if sessions <= 0 || steps <= 0 || rows <= 0 {
		return fmt.Errorf("concurrent mode needs positive -concurrent, -steps and -rows")
	}
	cat, err := datagen.Traffic(rows, seed)
	if err != nil {
		return err
	}
	queries := datagen.TrafficQueries()
	shared := core.NewSharedCache(0, 0)
	opt := core.Options{GridW: 128, GridH: 128}

	type tally struct {
		recalcs, hits, sharedHits, misses int
		steps                             []time.Duration
		err                               error
	}
	tallies := make([]tally, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			s, err := session.NewSQLShared(cat, nil, opt, queries[g%len(queries)], shared)
			if err != nil {
				tallies[g].err = err
				return
			}
			attrs := []string{"a", "b", "c"}
			counted := 0
			count := func() {
				// No-op modifications skip recalculation; only count a
				// run's attribution once.
				if s.Recalcs == counted {
					return
				}
				counted = s.Recalcs
				tm := s.Result().Timings
				tallies[g].hits += tm.CacheHits
				tallies[g].sharedHits += tm.SharedHits
				tallies[g].misses += tm.CacheMisses
			}
			count()
			for step := 0; step < steps; step++ {
				var err error
				t0 := time.Now()
				switch op := rng.Intn(10); {
				case op < 5:
					var c *query.Cond
					if c, err = s.FindCond(attrs[rng.Intn(len(attrs))]); err != nil {
						err = nil
						continue
					}
					lo := math.Floor(rng.Float64() * 80)
					err = s.SetRange(c, lo, lo+math.Floor(rng.Float64()*40))
				case op < 8:
					preds := query.Predicates(s.Query().Where)
					err = s.SetWeight(preds[rng.Intn(len(preds))], []float64{0.5, 1, 2, 3}[rng.Intn(4)])
				default:
					if !s.CanUndo() {
						continue
					}
					err = s.Undo()
				}
				if err != nil {
					tallies[g].err = fmt.Errorf("step %d: %w", step, err)
					return
				}
				tallies[g].steps = append(tallies[g].steps, time.Since(t0))
				count()
			}
			tallies[g].recalcs = s.Recalcs
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var recalcs, hits, sharedHits, misses int
	var allSteps []time.Duration
	for g, tl := range tallies {
		if tl.err != nil {
			return fmt.Errorf("session %d: %w", g, tl.err)
		}
		recalcs += tl.recalcs
		hits += tl.hits
		sharedHits += tl.sharedHits
		misses += tl.misses
		allSteps = append(allSteps, tl.steps...)
	}
	st := shared.Stats()
	fmt.Printf("concurrent traffic: %d sessions x %d steps over %d rows\n", sessions, steps, rows)
	fmt.Printf("  elapsed          %v (%.1f recalcs/s, %d recalcs)\n",
		elapsed.Round(time.Millisecond), float64(recalcs)/elapsed.Seconds(), recalcs)
	fmt.Printf("  step latency     p50 %.2fms, p99 %.2fms (%d applied steps)\n",
		percentileMS(allSteps, 50), percentileMS(allSteps, 99), len(allSteps))
	fmt.Printf("  leaf lookups     %d hits (%d via shared tier), %d recomputed\n", hits, sharedHits, misses)
	fmt.Printf("  shared tier      %d hits / %d misses (%d singleflight waits), %d fills\n",
		st.Hits, st.Misses, st.Waits, st.Fills)
	fmt.Printf("  shared resident  %d entries, %.1f MiB\n", st.Entries, float64(st.Bytes)/(1<<20))
	if st.Hits == 0 && sessions > 1 {
		return fmt.Errorf("no cross-session sharing happened")
	}
	return nil
}
