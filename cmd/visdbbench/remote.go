package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/server"
	"repro/visdb/client"
)

// runServe hosts the concurrent-traffic catalog behind the visdbd
// protocol — the server half of the overhead experiment. The shared
// tier admits every leaf so the cache behavior matches the in-process
// -concurrent mode exactly; the only variable left is the HTTP/JSON
// serving layer. Blocks until SIGINT/SIGTERM, then drains.
func runServe(addr string, shards, rows int, seed int64) error {
	cat, err := datagen.Traffic(rows, seed)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Shards: shards,
		Catalogs: []server.CatalogConfig{{
			Name:    "traffic",
			Catalog: cat,
			Shared:  core.SharedOptions{AdmitMinCost: -1},
		}},
		DefaultOptions: core.Options{GridW: 128, GridH: 128},
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving catalog traffic (%d rows, seed %d) on %s — drive it with:\n", rows, seed, l.Addr())
	fmt.Printf("  visdbbench -remote http://%s -concurrent 8 -steps 40 -rows %d -seed %d\n", l.Addr(), rows, seed)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Printf("draining (%d in flight)...\n", srv.InFlight())
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return hs.Shutdown(sctx)
}

// runRemote is the -concurrent traffic mode driven over HTTP: the
// same randomized scripts, but every interaction is a round trip to a
// visdbd serving the traffic catalog (start one with -serve, with the
// same -rows/-seed). Comparing its recalcs/s against the in-process
// mode measures exactly the serving overhead.
func runRemote(base string, sessions, steps int, seed int64) error {
	if sessions <= 0 || steps <= 0 {
		return fmt.Errorf("remote mode needs positive -concurrent and -steps")
	}
	ctx := context.Background()
	c := client.New(base)
	if _, err := c.Catalogs(ctx); err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}

	queries := datagen.TrafficQueries()
	type tally struct {
		recalcs, hits, sharedHits, misses int
		steps                             []time.Duration
		err                               error
	}
	tallies := make([]tally, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			s, sum, err := c.NewSession(ctx, "traffic", queries[g%len(queries)], client.Options{})
			if err != nil {
				tallies[g].err = err
				return
			}
			defer s.Close(ctx)
			preds := numPreds(queries[g%len(queries)])
			counted := 0
			count := func(sum client.Summary) {
				if sum.Recalcs == counted {
					return
				}
				counted = sum.Recalcs
				tallies[g].hits += sum.Timings.CacheHits
				tallies[g].sharedHits += sum.Timings.SharedHits
				tallies[g].misses += sum.Timings.CacheMisses
				tallies[g].recalcs = sum.Recalcs
			}
			count(sum)
			attrs := condAttrs(queries[g%len(queries)])
			for step := 0; step < steps; step++ {
				var err error
				t0 := time.Now()
				switch op := rng.Intn(10); {
				case op < 5:
					lo := math.Floor(rng.Float64() * 80)
					sum, err = s.SetRange(ctx, attrs[rng.Intn(len(attrs))], lo, lo+math.Floor(rng.Float64()*40))
				case op < 8:
					sum, err = s.SetWeight(ctx, rng.Intn(preds), []float64{0.5, 1, 2, 3}[rng.Intn(4)])
				default:
					sum, err = s.Undo(ctx)
					if apiErr, ok := err.(*client.APIError); ok && apiErr.Status == 409 {
						// Nothing to undo (no-op edits snapshot nothing).
						continue
					}
				}
				if err != nil {
					tallies[g].err = fmt.Errorf("step %d: %w", step, err)
					return
				}
				tallies[g].steps = append(tallies[g].steps, time.Since(t0))
				count(sum)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var recalcs, hits, sharedHits, misses int
	var allSteps []time.Duration
	for g, tl := range tallies {
		if tl.err != nil {
			return fmt.Errorf("session %d: %w", g, tl.err)
		}
		recalcs += tl.recalcs
		hits += tl.hits
		sharedHits += tl.sharedHits
		misses += tl.misses
		allSteps = append(allSteps, tl.steps...)
	}
	stats, err := c.ShardStats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("remote traffic: %d sessions x %d steps against %s\n", sessions, steps, base)
	fmt.Printf("  elapsed          %v (%.1f recalcs/s, %d recalcs)\n",
		elapsed.Round(time.Millisecond), float64(recalcs)/elapsed.Seconds(), recalcs)
	fmt.Printf("  step latency     p50 %.2fms, p99 %.2fms (%d applied steps, round trips included)\n",
		percentileMS(allSteps, 50), percentileMS(allSteps, 99), len(allSteps))
	fmt.Printf("  leaf lookups     %d hits (%d via shared tier), %d recomputed\n", hits, sharedHits, misses)
	for _, st := range stats {
		if len(st.Catalogs) == 0 && st.Sessions == 0 && st.SessionsCreated == 0 {
			continue
		}
		fmt.Printf("  shard %d          %v: %d sessions created, %d recalcs; shared %d hits / %d misses (%d waits, %d rejects), %d entries, %.1f MiB\n",
			st.Shard, st.Catalogs, st.SessionsCreated, st.Recalcs,
			st.Shared.Hits, st.Shared.Misses, st.Shared.Waits, st.Shared.Rejects,
			st.Shared.Entries, float64(st.Shared.Bytes)/(1<<20))
	}
	if sharedHits == 0 && sessions > 1 {
		return fmt.Errorf("no cross-session sharing happened over the wire")
	}
	return nil
}

// numPreds counts a query's top-level predicates for the weight ops.
func numPreds(src string) int {
	q, err := query.Parse(src)
	if err != nil {
		return 1
	}
	return len(query.Predicates(q.Where))
}

// condAttrs lists the attributes a query has conditions on — the
// draggable sliders of the remote script (the in-process mode skips
// absent attributes via FindCond; remotely that would be a 400 round
// trip per miss).
func condAttrs(src string) []string {
	q, err := query.Parse(src)
	if err != nil {
		return nil
	}
	seen := make(map[string]bool)
	var attrs []string
	query.Walk(q.Where, func(e query.Expr) {
		if c, ok := e.(*query.Cond); ok && !seen[c.Attr] {
			seen[c.Attr] = true
			attrs = append(attrs, c.Attr)
		}
	})
	return attrs
}
