package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltinDatasets(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		data string
		sql  string
	}{
		{"env", `SELECT Temperature FROM Weather WHERE Temperature > 20`},
		{"cad", `SELECT PartID FROM Parts WHERE P1 > 50`},
		{"multidb", `SELECT Name FROM PersonsA WHERE Born > 1960`},
	}
	for _, tc := range cases {
		if err := run(tc.data, "", tc.sql, "", dir, 16, 16, 1, 2, true, false, true, 48, 1); err != nil {
			t.Fatalf("%s: %v", tc.data, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "visdb.png")); err != nil {
		t.Fatalf("missing output image: %v", err)
	}
}

func TestRunCSVInput(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(csvPath, []byte("x,y\n1,2\n3,4\n5,6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(csvPath, "", `SELECT x FROM data WHERE x > 2`, "", dir, 8, 8, 1, 1, false, true, false, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Explicit table name.
	if err := run(csvPath, "D", `SELECT x FROM D WHERE x > 2`, "", "", 8, 8, 1, 1, false, false, false, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunQueryFile(t *testing.T) {
	dir := t.TempDir()
	qPath := filepath.Join(dir, "q.sql")
	if err := os.WriteFile(qPath, []byte(`SELECT Temperature FROM Weather WHERE Temperature > 25`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("env", "", "", qPath, dir, 8, 8, 1, 1, false, false, false, 48, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("env", "", "", "", "", 8, 8, 1, 1, false, false, false, 48, 1); err == nil {
		t.Error("missing query should fail")
	}
	if err := run("env", "", "garbage query", "", "", 8, 8, 1, 1, false, false, false, 48, 1); err == nil {
		t.Error("parse error should fail")
	}
	if err := run("/nonexistent.csv", "", `SELECT x FROM T`, "", "", 8, 8, 1, 1, false, false, false, 48, 1); err == nil {
		t.Error("missing CSV should fail")
	}
	if err := run("env", "", "", "/nonexistent.sql", "", 8, 8, 1, 1, false, false, false, 48, 1); err == nil {
		t.Error("missing query file should fail")
	}
}
