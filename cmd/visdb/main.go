// Command visdb runs a visual feedback query against a built-in or CSV
// dataset and renders the visualization windows.
//
// Usage:
//
//	visdb -data env -query "SELECT Temperature FROM Weather WHERE Temperature > 20" -out out/
//	visdb -data cad -query-file q.sql -ascii
//	visdb -data mytable.csv -table T -query "SELECT x FROM T WHERE x > 1"
//
// Built-in datasets: env (weather + air pollution), cad (27-parameter
// parts), multidb (two person databases). CSV schemas are inferred
// column-by-column (float, then RFC 3339 time, else string).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/csvutil"
	"repro/visdb"
)

func main() {
	var (
		data      = flag.String("data", "env", "dataset: env, cad, multidb, or a CSV path")
		table     = flag.String("table", "", "table name for CSV input (default: file base name)")
		sql       = flag.String("query", "", "query in the VisDB dialect")
		queryFile = flag.String("query-file", "", "file holding the query")
		out       = flag.String("out", "out", "output directory for PNGs")
		gridW     = flag.Int("grid-w", 128, "item grid width per window")
		gridH     = flag.Int("grid-h", 128, "item grid height per window")
		px        = flag.Int("px", 1, "pixels per item (1, 4 or 16)")
		cols      = flag.Int("cols", 2, "window columns in the composed image")
		ascii     = flag.Bool("ascii", false, "print an ASCII preview")
		ansi      = flag.Bool("ansi", false, "print a 256-color ANSI preview")
		gradi     = flag.Bool("gradi", true, "print the GRADI query representation")
		hours     = flag.Int("hours", 720, "env dataset: hours of weather data")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(*data, *table, *sql, *queryFile, *out, *gridW, *gridH, *px, *cols, *ascii, *ansi, *gradi, *hours, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "visdb:", err)
		os.Exit(1)
	}
}

func run(data, table, sql, queryFile, out string, gridW, gridH, px, cols int, ascii, ansi, gradi bool, hours int, seed int64) error {
	if sql == "" && queryFile != "" {
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		sql = string(b)
	}
	if strings.TrimSpace(sql) == "" {
		return fmt.Errorf("no query given (use -query or -query-file)")
	}
	cat, err := loadData(data, table, hours, seed)
	if err != nil {
		return err
	}
	q, err := visdb.Parse(sql)
	if err != nil {
		return err
	}
	if gradi {
		fmt.Println(visdb.Gradi(q))
	}
	s, err := visdb.NewSessionQuery(cat, visdb.Options{GridW: gridW, GridH: gridH, PixelsPerItem: px}, q)
	if err != nil {
		return err
	}
	start := time.Now()
	fmt.Println(s.PanelText())
	fmt.Printf("(query executed in %v)\n", time.Since(start).Round(time.Millisecond))
	img, err := s.Image(cols)
	if err != nil {
		return err
	}
	if out != "" {
		path := filepath.Join(out, "visdb.png")
		if err := img.SavePNG(path); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	if ascii {
		fmt.Println(img.ASCII(120, 40))
	}
	if ansi {
		fmt.Println(img.ANSI(120, 40))
	}
	return nil
}

func loadData(data, table string, hours int, seed int64) (*visdb.Catalog, error) {
	switch data {
	case "env":
		cat, _, err := visdb.Environmental(visdb.EnvConfig{Hours: hours, Seed: seed})
		return cat, err
	case "cad":
		tbl, _, err := visdb.CADParts(visdb.CADConfig{Seed: seed})
		if err != nil {
			return nil, err
		}
		cat := visdb.NewCatalog()
		return cat, cat.AddTable(tbl)
	case "multidb":
		cat, _, err := visdb.MultiDB(visdb.MultiDBConfig{Seed: seed})
		return cat, err
	default:
		if table == "" {
			table = strings.TrimSuffix(filepath.Base(data), filepath.Ext(data))
		}
		tbl, err := csvutil.LoadInferred(data, table)
		if err != nil {
			return nil, err
		}
		cat := visdb.NewCatalog()
		return cat, cat.AddTable(tbl)
	}
}
