// Command visdbgen generates the synthetic datasets of the
// reproduction and writes them as CSV files or as a single on-disk
// segment catalog (-format seg) that visdbd and visdbbench can serve
// directly from the file with bounded resident memory.
//
// Usage:
//
//	visdbgen -kind env -hours 720 -out data/
//	visdbgen -kind cad -parts 5000 -out data/
//	visdbgen -kind multidb -people 400 -out data/
//	visdbgen -kind traffic -rows 1000000 -format seg -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/visdb"
)

func main() {
	var (
		kind   = flag.String("kind", "env", "dataset kind: env, cad, multidb, traffic")
		out    = flag.String("out", "data", "output directory")
		format = flag.String("format", "csv", "output format: csv (one file per table) or seg (one segment catalog <kind>.visdb)")
		seed   = flag.Int64("seed", 1, "generator seed")
		hours  = flag.Int("hours", 720, "env: hours of weather data")
		every  = flag.Int("every", 1, "env: pollution sampled every N hours")
		offset = flag.Int("offset", 30, "env: pollution timestamp offset (minutes)")
		hot    = flag.Int("hotspots", 5, "env: planted exceptional ozone values")
		parts  = flag.Int("parts", 1000, "cad: number of parts")
		people = flag.Int("people", 300, "multidb: entities in database A")
		rows   = flag.Int("rows", 200000, "traffic: row count")
		segVer = flag.Int("seg-version", 3, "seg: segment-catalog format version (3, 2 or 1)")
	)
	flag.Parse()
	if err := run(*kind, *out, *format, *seed, *hours, *every, *offset, *hot, *parts, *people, *rows, *segVer); err != nil {
		fmt.Fprintln(os.Stderr, "visdbgen:", err)
		os.Exit(1)
	}
}

func run(kind, out, format string, seed int64, hours, every, offset, hot, parts, people, rows, segVer int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var cat *visdb.Catalog
	switch kind {
	case "env":
		c, truth, err := visdb.Environmental(visdb.EnvConfig{
			Hours: hours, PollutionEvery: every, OffsetMinutes: offset,
			HotSpots: hot, Seed: seed,
		})
		if err != nil {
			return err
		}
		cat = c
		fmt.Printf("planted: ozone lag %dh, %d hot spots\n", truth.LagHours, len(truth.HotSpotRows))
	case "cad":
		tbl, truth, err := visdb.CADParts(visdb.CADConfig{Parts: parts, Seed: seed})
		if err != nil {
			return err
		}
		cat = visdb.NewCatalog()
		if err := cat.AddTable(tbl); err != nil {
			return err
		}
		fmt.Printf("planted: %d exact matches, near-miss row %d\n", len(truth.ExactRows), truth.NearMissRow)
		sqlPath := filepath.Join(out, "cad_query.sql")
		if err := os.WriteFile(sqlPath, []byte(visdb.CADQuerySQL(truth, 0)+"\n"), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", sqlPath)
	case "multidb":
		c, truth, err := visdb.MultiDB(visdb.MultiDBConfig{People: people, Seed: seed})
		if err != nil {
			return err
		}
		cat = c
		fmt.Printf("planted: %d true correspondences\n", len(truth.Matches))
	case "traffic":
		c, err := datagen.Traffic(rows, seed)
		if err != nil {
			return err
		}
		cat = c
		fmt.Printf("generated: %d uniform traffic rows (seed %d)\n", rows, seed)
	default:
		return fmt.Errorf("unknown kind %q (env, cad, multidb, traffic)", kind)
	}
	switch format {
	case "csv":
		for _, name := range cat.TableNames() {
			t, err := cat.Table(name)
			if err != nil {
				return err
			}
			path := filepath.Join(out, t.Name()+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d rows)\n", path, t.NumRows())
		}
	case "seg":
		path := filepath.Join(out, kind+".visdb")
		write := visdb.WriteCatalogFile
		switch segVer {
		case 3:
		case 2:
			write = visdb.WriteCatalogFileV2
		case 1:
			write = visdb.WriteCatalogFileV1
		default:
			return fmt.Errorf("unknown -seg-version %d (3, 2 or 1)", segVer)
		}
		epoch, err := write(path, cat)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (format v%d, epoch %x)\n", path, segVer, epoch)
	default:
		return fmt.Errorf("unknown format %q (csv, seg)", format)
	}
	return nil
}
