// Command visdbgen generates the synthetic datasets of the
// reproduction and writes them as CSV files.
//
// Usage:
//
//	visdbgen -kind env -hours 720 -out data/
//	visdbgen -kind cad -parts 5000 -out data/
//	visdbgen -kind multidb -people 400 -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/visdb"
)

func main() {
	var (
		kind   = flag.String("kind", "env", "dataset kind: env, cad, multidb")
		out    = flag.String("out", "data", "output directory")
		seed   = flag.Int64("seed", 1, "generator seed")
		hours  = flag.Int("hours", 720, "env: hours of weather data")
		every  = flag.Int("every", 1, "env: pollution sampled every N hours")
		offset = flag.Int("offset", 30, "env: pollution timestamp offset (minutes)")
		hot    = flag.Int("hotspots", 5, "env: planted exceptional ozone values")
		parts  = flag.Int("parts", 1000, "cad: number of parts")
		people = flag.Int("people", 300, "multidb: entities in database A")
	)
	flag.Parse()
	if err := run(*kind, *out, *seed, *hours, *every, *offset, *hot, *parts, *people); err != nil {
		fmt.Fprintln(os.Stderr, "visdbgen:", err)
		os.Exit(1)
	}
}

func run(kind, out string, seed int64, hours, every, offset, hot, parts, people int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var tables []*visdb.Table
	switch kind {
	case "env":
		cat, truth, err := visdb.Environmental(visdb.EnvConfig{
			Hours: hours, PollutionEvery: every, OffsetMinutes: offset,
			HotSpots: hot, Seed: seed,
		})
		if err != nil {
			return err
		}
		for _, name := range cat.TableNames() {
			t, err := cat.Table(name)
			if err != nil {
				return err
			}
			tables = append(tables, t)
		}
		fmt.Printf("planted: ozone lag %dh, %d hot spots\n", truth.LagHours, len(truth.HotSpotRows))
	case "cad":
		tbl, truth, err := visdb.CADParts(visdb.CADConfig{Parts: parts, Seed: seed})
		if err != nil {
			return err
		}
		tables = append(tables, tbl)
		fmt.Printf("planted: %d exact matches, near-miss row %d\n", len(truth.ExactRows), truth.NearMissRow)
		sqlPath := filepath.Join(out, "cad_query.sql")
		if err := os.WriteFile(sqlPath, []byte(visdb.CADQuerySQL(truth, 0)+"\n"), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", sqlPath)
	case "multidb":
		cat, truth, err := visdb.MultiDB(visdb.MultiDBConfig{People: people, Seed: seed})
		if err != nil {
			return err
		}
		for _, name := range cat.TableNames() {
			t, err := cat.Table(name)
			if err != nil {
				return err
			}
			tables = append(tables, t)
		}
		fmt.Printf("planted: %d true correspondences\n", len(truth.Matches))
	default:
		return fmt.Errorf("unknown kind %q (env, cad, multidb)", kind)
	}
	for _, t := range tables {
		path := filepath.Join(out, t.Name()+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", path, t.NumRows())
	}
	return nil
}
