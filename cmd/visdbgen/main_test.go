package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	if err := run("env", dir, 1, 48, 2, 30, 2, 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"Weather.csv", "Air-Pollution.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("env: missing %s", f)
		}
	}
	if err := run("cad", dir, 1, 0, 0, 0, 0, 50, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"Parts.csv", "cad_query.sql"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("cad: missing %s", f)
		}
	}
	if err := run("multidb", dir, 1, 0, 0, 0, 0, 0, 40); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"PersonsA.csv", "PersonsB.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("multidb: missing %s", f)
		}
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if err := run("nope", t.TempDir(), 1, 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("unknown kind should fail")
	}
}
