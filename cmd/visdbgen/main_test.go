package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/visdb"
)

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	if err := run("env", dir, "csv", 1, 48, 2, 30, 2, 0, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"Weather.csv", "Air-Pollution.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("env: missing %s", f)
		}
	}
	if err := run("cad", dir, "csv", 1, 0, 0, 0, 0, 50, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"Parts.csv", "cad_query.sql"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("cad: missing %s", f)
		}
	}
	if err := run("multidb", dir, "csv", 1, 0, 0, 0, 0, 0, 40, 0, 3); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"PersonsA.csv", "PersonsB.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("multidb: missing %s", f)
		}
	}
}

// TestGenerateSegmentCatalog: -format seg must write one openable
// segment catalog carrying every table of the kind.
func TestGenerateSegmentCatalog(t *testing.T) {
	dir := t.TempDir()
	if err := run("traffic", dir, "seg", 7, 0, 0, 0, 0, 0, 0, 5000, 3); err != nil {
		t.Fatal(err)
	}
	cat, err := visdb.OpenCatalogFile(filepath.Join(dir, "traffic.visdb"), visdb.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if cat.Epoch() == 0 {
		t.Error("segment catalog carries no content epoch")
	}
	tbl, err := cat.Table("S")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 5000 {
		t.Errorf("rows = %d, want 5000", tbl.NumRows())
	}

	if err := run("env", dir, "seg", 1, 48, 2, 30, 2, 0, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	env, err := visdb.OpenCatalogFile(filepath.Join(dir, "env.visdb"), visdb.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if got := len(env.TableNames()); got != 2 {
		t.Errorf("env segment catalog has %d tables, want 2", got)
	}

	// Older format versions must still be writable and openable.
	for _, ver := range []int{2, 1} {
		vdir := t.TempDir()
		if err := run("traffic", vdir, "seg", 7, 0, 0, 0, 0, 0, 0, 500, ver); err != nil {
			t.Fatalf("seg-version %d: %v", ver, err)
		}
		old, err := visdb.OpenCatalogFile(filepath.Join(vdir, "traffic.visdb"), visdb.OpenOptions{})
		if err != nil {
			t.Fatalf("seg-version %d: %v", ver, err)
		}
		old.Close()
	}
	if err := run("traffic", t.TempDir(), "seg", 7, 0, 0, 0, 0, 0, 0, 10, 9); err == nil {
		t.Error("unknown seg version should fail")
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if err := run("nope", t.TempDir(), "csv", 1, 0, 0, 0, 0, 0, 0, 0, 3); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := run("traffic", t.TempDir(), "nope", 1, 0, 0, 0, 0, 0, 0, 10, 3); err == nil {
		t.Error("unknown format should fail")
	}
}
