// Command visdbrouter is the fleet front end: it owns the shard
// placement map over a set of visdbd member nodes, health-checks
// them, and proxies the whole serving protocol — clients address the
// fleet through it as if it were one visdbd.
//
// Usage:
//
//	visdbrouter -addr :8490 -shards 8 \
//	    -members "a=http://10.0.0.7:8491,b=http://10.0.0.8:8491,c=http://10.0.0.9:8491" \
//	    -kv http://10.0.0.5:8499
//
// Every member must run visdbd with the same -shards value and the
// same catalog set; placement (rendezvous hashing over the healthy
// members) decides which member serves which shard. A member missing
// -fail-after consecutive health probes is failed over immediately;
// shards moving between healthy members drain (bounded by
// -drain-timeout). See internal/router for the full semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/server"
)

type config struct {
	addr           string
	shards         int
	members        string
	kv             string
	healthInterval time.Duration
	probeTimeout   time.Duration
	probeJitter    float64
	failAfter      int
	drainTimeout   time.Duration
}

// validate rejects flag values that would configure the router into a
// degenerate state, with startup errors naming the flag — a typo'd
// unit suffix ("2" instead of "2s") must fail loudly, not probe the
// fleet every two nanoseconds. Zero values mean "flag not set" in
// tests that build the struct directly and skip the floors.
func (cfg *config) validate() error {
	if cfg.healthInterval != 0 && cfg.healthInterval < 10*time.Millisecond {
		return fmt.Errorf("-health-interval %v is below the 10ms floor (probes would saturate the members)", cfg.healthInterval)
	}
	if cfg.probeTimeout != 0 && cfg.probeTimeout < 10*time.Millisecond {
		return fmt.Errorf("-probe-timeout %v is below the 10ms floor (healthy members would look dead)", cfg.probeTimeout)
	}
	if cfg.probeTimeout != 0 && cfg.healthInterval != 0 && cfg.probeTimeout > cfg.healthInterval {
		return fmt.Errorf("-probe-timeout %v exceeds -health-interval %v (probe rounds would overlap)", cfg.probeTimeout, cfg.healthInterval)
	}
	if cfg.probeJitter > 1 {
		return fmt.Errorf("-probe-jitter %v exceeds 1 (a full health interval)", cfg.probeJitter)
	}
	if cfg.failAfter < 0 {
		return fmt.Errorf("-fail-after must be >= 0, got %d", cfg.failAfter)
	}
	if cfg.drainTimeout != 0 && cfg.drainTimeout < time.Second {
		return fmt.Errorf("-drain-timeout %v is below the 1s floor (in-flight recalculations need time to finish)", cfg.drainTimeout)
	}
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8490", "listen address")
	flag.IntVar(&cfg.shards, "shards", server.DefaultShards, "fleet-wide shard count (must match every member's -shards)")
	flag.StringVar(&cfg.members, "members", "", "fleet members, comma-separated name=url")
	flag.StringVar(&cfg.kv, "kv", "", "shared kv store base URL (stats only; members attach via visdbd -shared-kv)")
	flag.DurationVar(&cfg.healthInterval, "health-interval", router.DefaultHealthInterval, "health probe period")
	flag.DurationVar(&cfg.probeTimeout, "probe-timeout", router.DefaultProbeTimeout, "bound on one health probe")
	flag.Float64Var(&cfg.probeJitter, "probe-jitter", router.DefaultProbeJitter, "random fraction of -health-interval added to each probe tick so redundant routers drift apart (negative disables)")
	flag.IntVar(&cfg.failAfter, "fail-after", router.DefaultFailAfter, "consecutive failed probes before failover; a rejoining member needs the same number of clean probes")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", router.DefaultDrainTimeout, "bound on draining a moved shard off a healthy owner")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "visdbrouter:", err)
		os.Exit(1)
	}
}

// parseMembers parses the -members spec ("a=http://x,b=http://y"),
// rejecting duplicate names and duplicate URLs — two entries sharing a
// name would silently halve the fleet (rendezvous keys on names), and
// two names sharing a URL would double-count one process as two
// members.
func parseMembers(spec string) ([]router.Member, error) {
	var out []router.Member
	seenName := make(map[string]bool)
	seenURL := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad member spec %q (want name=url)", part)
		}
		if seenName[name] {
			return nil, fmt.Errorf("duplicate member name %q in -members", name)
		}
		seenName[name] = true
		if prev, dup := seenURL[url]; dup {
			return nil, fmt.Errorf("members %q and %q share URL %s in -members", prev, name, url)
		}
		seenURL[url] = name
		out = append(out, router.Member{Name: name, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no members configured (-members)")
	}
	return out, nil
}

// run builds the router, serves until ctx is canceled, then shuts
// down. ready (may be nil) is called with the bound address once
// listening.
func run(ctx context.Context, cfg config, ready func(addr string)) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	members, err := parseMembers(cfg.members)
	if err != nil {
		return err
	}
	rt, err := router.New(router.Config{
		Shards:         cfg.shards,
		Members:        members,
		HealthInterval: cfg.healthInterval,
		ProbeTimeout:   cfg.probeTimeout,
		ProbeJitter:    cfg.probeJitter,
		FailAfter:      cfg.failAfter,
		DrainTimeout:   cfg.drainTimeout,
		KV:             cfg.kv,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// Settle membership before taking traffic: a member that is
	// already down should not receive the first requests.
	rt.CheckNow(ctx)
	go rt.Run(ctx)
	for i, owner := range rt.Placement() {
		log.Printf("visdbrouter: shard %d -> %s", i, owner)
	}
	log.Printf("visdbrouter: listening on %s (%d shards, %d members)", l.Addr(), cfg.shards, len(members))
	if ready != nil {
		ready(l.Addr().String())
	}
	hs := &http.Server{Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("visdbrouter: exiting")
	return nil
}
