// Command visdbrouter is the fleet front end: it owns the shard
// placement map over a set of visdbd member nodes, health-checks
// them, and proxies the whole serving protocol — clients address the
// fleet through it as if it were one visdbd.
//
// Usage:
//
//	visdbrouter -addr :8490 -shards 8 \
//	    -members "a=http://10.0.0.7:8491,b=http://10.0.0.8:8491,c=http://10.0.0.9:8491" \
//	    -kv http://10.0.0.5:8499
//
// Every member must run visdbd with the same -shards value and the
// same catalog set; placement (rendezvous hashing over the healthy
// members) decides which member serves which shard. A member missing
// -fail-after consecutive health probes is failed over immediately;
// shards moving between healthy members drain (bounded by
// -drain-timeout). See internal/router for the full semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/server"
)

type config struct {
	addr           string
	shards         int
	members        string
	kv             string
	healthInterval time.Duration
	failAfter      int
	drainTimeout   time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8490", "listen address")
	flag.IntVar(&cfg.shards, "shards", server.DefaultShards, "fleet-wide shard count (must match every member's -shards)")
	flag.StringVar(&cfg.members, "members", "", "fleet members, comma-separated name=url")
	flag.StringVar(&cfg.kv, "kv", "", "shared kv store base URL (stats only; members attach via visdbd -shared-kv)")
	flag.DurationVar(&cfg.healthInterval, "health-interval", router.DefaultHealthInterval, "health probe period")
	flag.IntVar(&cfg.failAfter, "fail-after", router.DefaultFailAfter, "consecutive failed probes before failover")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", router.DefaultDrainTimeout, "bound on draining a moved shard off a healthy owner")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "visdbrouter:", err)
		os.Exit(1)
	}
}

// parseMembers parses the -members spec ("a=http://x,b=http://y").
func parseMembers(spec string) ([]router.Member, error) {
	var out []router.Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad member spec %q (want name=url)", part)
		}
		out = append(out, router.Member{Name: name, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no members configured (-members)")
	}
	return out, nil
}

// run builds the router, serves until ctx is canceled, then shuts
// down. ready (may be nil) is called with the bound address once
// listening.
func run(ctx context.Context, cfg config, ready func(addr string)) error {
	members, err := parseMembers(cfg.members)
	if err != nil {
		return err
	}
	rt, err := router.New(router.Config{
		Shards:         cfg.shards,
		Members:        members,
		HealthInterval: cfg.healthInterval,
		FailAfter:      cfg.failAfter,
		DrainTimeout:   cfg.drainTimeout,
		KV:             cfg.kv,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// Settle membership before taking traffic: a member that is
	// already down should not receive the first requests.
	rt.CheckNow(ctx)
	go rt.Run(ctx)
	for i, owner := range rt.Placement() {
		log.Printf("visdbrouter: shard %d -> %s", i, owner)
	}
	log.Printf("visdbrouter: listening on %s (%d shards, %d members)", l.Addr(), cfg.shards, len(members))
	if ready != nil {
		ready(l.Addr().String())
	}
	hs := &http.Server{Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("visdbrouter: exiting")
	return nil
}
