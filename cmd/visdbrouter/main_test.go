package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/server"
	"repro/visdb/client"
)

// newLocalServer serves h on an ephemeral port for the test's
// lifetime and returns its base URL.
func newLocalServer(t *testing.T, h http.Handler) string {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRouterDaemonSmoke stands up a miniature fleet — two visdbd-
// equivalent members plus the router daemon — and drives a session
// through the router end to end: create routes by catalog shard,
// edits route by session ID, /v1/fleet aggregates, and the SIGTERM
// path exits cleanly. (The full 3-node fleet with kv tier, replay
// identity and node kills lives in internal/router's harness tests;
// this is the daemon lifecycle.)
func TestRouterDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Two members serving the identical catalog set (the fleet
	// invariant), as in-process HTTP servers.
	const shards = 4
	memberURLs := make([]string, 2)
	for i := range memberURLs {
		cat, err := datagen.Traffic(800, 7)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Shards: shards,
			Catalogs: []server.CatalogConfig{
				{Name: "traffic", Catalog: cat, Shared: core.SharedOptions{AdmitMinCost: -1}},
			},
			DefaultOptions: core.Options{GridW: 16, GridH: 16},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := newLocalServer(t, srv)
		memberURLs[i] = ts
	}

	cfg := config{
		addr:           "127.0.0.1:0",
		shards:         shards,
		members:        fmt.Sprintf("a=%s,b=%s", memberURLs[0], memberURLs[1]),
		healthInterval: 100 * time.Millisecond,
		failAfter:      1,
		drainTimeout:   time.Second,
	}
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, func(addr string) { addrc <- addr }) }()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c := client.New("http://" + addr)
	rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer rcancel()
	s, sum, err := c.NewSession(rctx, "traffic", `SELECT a FROM S WHERE a > 50 AND b < 40`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 800 || s.Shard != server.ShardOf("traffic", shards) {
		t.Fatalf("created: n=%d shard=%d", sum.N, s.Shard)
	}
	if _, err := s.SetWeight(rctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	res, err := s.Results(rctx, 3)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("results: %d rows, err %v", len(res.Rows), err)
	}
	fleet, err := c.Fleet(rctx)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Shards != shards || len(fleet.Members) != 2 {
		t.Fatalf("fleet: %+v", fleet)
	}
	covered := 0
	for _, m := range fleet.Members {
		if !m.Healthy {
			t.Fatalf("member %q unhealthy: %+v", m.Name, fleet)
		}
		covered += len(m.Shards)
	}
	if covered != shards {
		t.Fatalf("placement covers %d/%d shards", covered, shards)
	}
	if fleet.Sessions != 1 {
		t.Fatalf("fleet sessions: %d", fleet.Sessions)
	}
	if err := s.Close(rctx); err != nil {
		t.Fatal(err)
	}

	// Bad member specs fail startup loudly.
	if err := run(context.Background(), config{addr: "127.0.0.1:0", members: "nonsense"}, nil); err == nil {
		t.Fatal("bad -members did not fail startup")
	}

	cancel() // SIGTERM path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit")
	}
}

// TestConfigValidation pins the startup floors and the member-spec
// hardening: degenerate flag values and ambiguous fleets must fail
// before the router takes traffic.
func TestConfigValidation(t *testing.T) {
	bad := []config{
		{healthInterval: 2 * time.Millisecond},                              // probe storm
		{probeTimeout: time.Millisecond},                                    // probes can't finish
		{healthInterval: 100 * time.Millisecond, probeTimeout: time.Second}, // overlapping rounds
		{probeJitter: 1.5},                                                  // more than a full interval
		{failAfter: -1},                                                     // nonsensical hysteresis
		{drainTimeout: 100 * time.Millisecond},                              // drains can't finish
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	good := []config{
		{}, // zero = flags not set; run() applies library defaults
		{healthInterval: time.Second, probeTimeout: 500 * time.Millisecond, probeJitter: -1, drainTimeout: 30 * time.Second},
	}
	for i, cfg := range good {
		if err := cfg.validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}

	specs := []string{
		"a=http://n1,a=http://n2", // duplicate name
		"a=http://n1,b=http://n1", // duplicate URL
		"a=,b=http://n2",          // empty URL
		"=http://n1",              // empty name
		" , ,",                    // nothing at all
	}
	for _, spec := range specs {
		if _, err := parseMembers(spec); err == nil {
			t.Errorf("member spec %q accepted", spec)
		}
	}
	if ms, err := parseMembers(" a=http://n1, b=http://n2 "); err != nil || len(ms) != 2 {
		t.Errorf("valid spec rejected: %v %v", ms, err)
	}
}
