package main

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/kv"
)

// TestKVDaemonSmoke drives one full lifecycle: start on an ephemeral
// port, put and get through the kv client, fetch server stats over
// HTTP, then cancel the context (the SIGTERM path) and assert a clean
// exit.
func TestKVDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := config{addr: "127.0.0.1:0", maxEntries: 128, maxBytesMB: 1}
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, func(addr string) { addrc <- addr }) }()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c := kv.NewClient("http://" + addr)
	c.Put("C|k", []byte{1, 2, 3})
	v, ok := c.Get("C|k")
	if !ok || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("round trip through daemon: %v %v", v, ok)
	}
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("daemon stats: %+v", st)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit")
	}

	// Degenerate flags fail startup loudly.
	if err := run(context.Background(), config{addr: "127.0.0.1:0", maxEntries: -1}, nil); err == nil {
		t.Fatal("negative entry cap did not fail startup")
	}
}
