// Command visdbkv is the fleet's shared-distance store: one small
// process holding the immutable byte vectors of internal/kv so leaf
// distance vectors, promoted quantile indexes, and interior entries
// computed on one visdbd node warm every node.
//
// Usage:
//
//	visdbkv -addr :8499 -max-bytes-mb 256 -max-entries 65536
//
// The store is a cache, not a database: nothing persists, eviction is
// LRU under the entry cap and byte budget, and a restart merely costs
// the fleet a warm-up. On SIGINT/SIGTERM the daemon shuts down
// gracefully (in-flight requests finish).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/kv"
)

type config struct {
	addr       string
	maxEntries int
	maxBytesMB int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8499", "listen address")
	flag.IntVar(&cfg.maxEntries, "max-entries", kv.DefaultMaxEntries, "resident entry cap")
	flag.IntVar(&cfg.maxBytesMB, "max-bytes-mb", int(kv.DefaultMaxBytes>>20), "value byte budget in MiB")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "visdbkv:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled. ready (may be nil) is called with
// the bound address once listening — the smoke test uses it to discover
// the port of addr ":0".
func run(ctx context.Context, cfg config, ready func(addr string)) error {
	if cfg.maxEntries < 0 || cfg.maxBytesMB < 0 {
		return fmt.Errorf("-max-entries and -max-bytes-mb must be >= 0")
	}
	store := kv.NewServer(cfg.maxEntries, int64(cfg.maxBytesMB)<<20)
	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	log.Printf("visdbkv: listening on %s (budget %d MiB, %d entries)",
		l.Addr(), cfg.maxBytesMB, cfg.maxEntries)
	if ready != nil {
		ready(l.Addr().String())
	}
	hs := &http.Server{Handler: store}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	st := store.Stats()
	log.Printf("visdbkv: exiting (%d entries, %d bytes, %d gets, %d hits)",
		st.Entries, st.Bytes, st.Gets, st.Hits)
	return nil
}
