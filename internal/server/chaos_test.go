package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/session"
	"repro/internal/wire"
	"repro/visdb/client"
)

// chaosPolicy is a retry policy with no real sleeps and no jitter —
// the chaos suite's wall-clock cost is pure compute.
func chaosPolicy(attempts int) *client.RetryPolicy {
	return &client.RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
}

// chaosScript builds a deterministic drop schedule: every 11th
// request dies before reaching the server, every 13th is served but
// its response is dropped (the ambiguous failure idempotency exists
// for). Worst-case consecutive failures stay far below the retry
// budget.
func chaosScript(n int) []faultinject.Outcome {
	script := make([]faultinject.Outcome, n)
	for i := range script {
		switch {
		case i%11 == 10:
			script[i] = faultinject.DropBefore
		case i%13 == 12:
			script[i] = faultinject.DropAfter
		default:
			script[i] = faultinject.Pass
		}
	}
	return script
}

// TestChaosReplayMatchesInProcess is the fault-tolerance acceptance
// property: a randomized interaction script driven through a client
// whose requests are dropped before the server, dropped after being
// applied, and answered 500 by injected handler faults — with
// automatic idempotent retries — stays bitwise identical (rows,
// distances, relevances, order) to a fault-free in-process session,
// and the recalculation counters prove every operation was applied
// exactly once.
func TestChaosReplayMatchesInProcess(t *testing.T) {
	cc := trafficConfig(t, "traffic", 1200, 7)
	cc.Shared.AdmitMinCost = -1
	// Injected handler faults: every 9th request answers 500 before
	// touching any state.
	var hookCalls atomic.Uint64
	srv, err := New(Config{
		Shards:         2,
		Catalogs:       []CatalogConfig{cc},
		DefaultOptions: testGrid,
		FaultHook: func(r *http.Request) *Fault {
			if hookCalls.Add(1)%9 == 5 {
				return &Fault{Status: http.StatusInternalServerError, Code: "injected", Msg: "chaos"}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ft := faultinject.NewTransport(http.DefaultTransport, chaosScript(4096)...)
	c := client.New(ts.URL)
	c.HTTP = &http.Client{Transport: ft}
	c.Retry = chaosPolicy(8)
	ctx := context.Background()

	remote, _, err := c.NewSession(ctx, "traffic", scriptQueries[1], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := session.NewSQL(cc.Catalog, nil, testGrid, scriptQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := compareRemote(ctx, "initial", remote, mirror, cc.Catalog, false); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2026))
	for step := 0; step < 40; step++ {
		label, err := scriptStep(ctx, rng, step, remote, mirror)
		if err != nil {
			t.Fatal(err)
		}
		if err := compareRemote(ctx, label, remote, mirror, cc.Catalog, step%9 == 0); err != nil {
			t.Fatal(err)
		}
		// Exactly-once: the server ran one recalculation per applied
		// operation, never one per attempt — replayed retries must not
		// recompute.
		sum, err := remote.Timings(ctx)
		if err != nil {
			t.Fatalf("%s: timings: %v", label, err)
		}
		if sum.Recalcs != mirror.Recalcs {
			t.Fatalf("%s: remote ran %d recalcs, fault-free mirror %d", label, sum.Recalcs, mirror.Recalcs)
		}
	}
	if ft.Drops() == 0 {
		t.Fatal("chaos script injected no transport drops — the run proved nothing")
	}
	if err := remote.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineRollsBackAndRetryResumes drives deterministic 504s
// through the full stack: injected latency consumes the request
// deadline, the recalculation aborts at a cancellation checkpoint, the
// session rolls back to its pre-request state (proven bitwise against
// the untouched mirror), and an idempotent retry applies the operation
// exactly once.
func TestDeadlineRollsBackAndRetryResumes(t *testing.T) {
	cc := trafficConfig(t, "traffic", 1200, 11)
	cc.Shared.AdmitMinCost = -1
	// The first three /range requests stall past the request deadline.
	var rangeCalls atomic.Uint64
	srv, err := New(Config{
		Shards:         1,
		Catalogs:       []CatalogConfig{cc},
		DefaultOptions: testGrid,
		RequestTimeout: 30 * time.Millisecond,
		FaultHook: func(r *http.Request) *Fault {
			if strings.HasSuffix(r.URL.Path, "/range") && rangeCalls.Add(1) <= 3 {
				return &Fault{Delay: time.Second}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	remote, _, err := c.NewSession(ctx, "traffic", scriptQueries[0], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := session.NewSQL(cc.Catalog, nil, testGrid, scriptQueries[0])
	if err != nil {
		t.Fatal(err)
	}

	// Without retries the deadline surfaces as a typed 504 …
	_, err = remote.SetRange(ctx, "a", 10, 60)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout || ae.Code != wire.CodeDeadline {
		t.Fatalf("want 504/%s, got %v", wire.CodeDeadline, err)
	}
	// … and the session still serves its pre-request state, bitwise.
	if err := compareRemote(ctx, "after 504", remote, mirror, cc.Catalog, false); err != nil {
		t.Fatal(err)
	}
	sum, err := remote.Timings(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Recalcs != mirror.Recalcs {
		t.Fatalf("aborted recalc counted: remote %d, mirror %d", sum.Recalcs, mirror.Recalcs)
	}

	// With retries, the remaining two stalled attempts 504 and the
	// third applies — exactly once.
	c.Retry = chaosPolicy(4)
	if _, err := remote.SetRange(ctx, "a", 10, 60); err != nil {
		t.Fatal(err)
	}
	if err := mirror.SetRangeByAttr("a", 10, 60); err != nil {
		t.Fatal(err)
	}
	if err := compareRemote(ctx, "after retried drag", remote, mirror, cc.Catalog, false); err != nil {
		t.Fatal(err)
	}
	sum, err = remote.Timings(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Recalcs != mirror.Recalcs {
		t.Fatalf("retry recomputed: remote %d recalcs, mirror %d", sum.Recalcs, mirror.Recalcs)
	}
	if got := rangeCalls.Load(); got != 4 {
		t.Fatalf("range attempts %d, want 4 (1 abandoned + 2 stalled + 1 applied)", got)
	}
}

// TestSeqReplayAndConflict exercises the raw sequence protocol: a
// retransmitted Seq replays the stored summary without recomputing,
// and a stale Seq answers 409 CodeSeqConflict.
func TestSeqReplayAndConflict(t *testing.T) {
	cc := trafficConfig(t, "traffic", 800, 3)
	srv, err := New(Config{Shards: 1, Catalogs: []CatalogConfig{cc}, DefaultOptions: testGrid})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL)
	remote, _, err := c.NewSession(ctx, "traffic", scriptQueries[0], client.Options{})
	if err != nil {
		t.Fatal(err)
	}

	post := func(seq uint64, w float64) (wire.Summary, *client.APIError) {
		var sum wire.Summary
		err := doJSON(ts.URL+"/v1/sessions/"+remote.ID+"/weight",
			wire.WeightRequest{Pred: 0, Weight: w, Seq: seq}, &sum)
		var ae *client.APIError
		if errors.As(err, &ae) {
			return sum, ae
		}
		if err != nil {
			t.Fatal(err)
		}
		return sum, nil
	}

	first, ae := post(1, 2.5)
	if ae != nil {
		t.Fatal(ae)
	}
	// Replay: same seq, even a different payload, returns the stored
	// response and runs nothing.
	replay, ae := post(1, 99)
	if ae != nil {
		t.Fatal(ae)
	}
	if replay != first {
		t.Fatalf("replay %+v != original %+v", replay, first)
	}
	// Stale: seq below the applied high-water mark conflicts after a
	// later op advanced it.
	if _, ae = post(2, 3); ae != nil {
		t.Fatal(ae)
	}
	_, ae = post(1, 2.5)
	if ae == nil || ae.Status != http.StatusConflict || ae.Code != wire.CodeSeqConflict {
		t.Fatalf("want 409/%s, got %+v", wire.CodeSeqConflict, ae)
	}
}

// doJSON posts one raw JSON request — the seq-protocol tests need
// hand-picked sequence numbers the typed client would never send.
func doJSON(url string, in, out any) error {
	buf, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e wire.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return &client.APIError{Status: resp.StatusCode, Msg: e.Error, Code: e.Code}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
