package server

import "testing"

// TestShardOfGolden pins the catalog→shard placement to literal hash
// values. ShardOf is a cross-process contract: the router, every
// visdbd node, and any external tooling must compute the identical
// placement from a catalog name alone, so a change to the hash
// function (or its modulus handling) is a breaking protocol change —
// this test makes that change loud instead of silent.
func TestShardOfGolden(t *testing.T) {
	cases := []struct {
		catalog string
		shards  int
		want    int
	}{
		// FNV-1a 32-bit sums, pinned: "traffic"=830603974,
		// "archive"=2566783941, "r0"=223608639, "r1"=206831020,
		// "r2"=257163877, "r7"=173275782, "demo"=2935829814,
		// ""=2166136261 (the FNV offset basis).
		{"traffic", 4, 2},
		{"traffic", 3, 1},
		{"traffic", 8, 6},
		{"archive", 4, 1},
		{"archive", 3, 0},
		{"r0", 4, 3},
		{"r1", 4, 0},
		{"r2", 4, 1},
		{"r7", 4, 2},
		{"demo", 8, 6},
		{"", 4, 1},
		// Non-positive shard counts normalize to DefaultShards (4),
		// matching New.
		{"traffic", 0, 2},
		{"traffic", -3, 2},
	}
	for _, c := range cases {
		if got := ShardOf(c.catalog, c.shards); got != c.want {
			t.Errorf("ShardOf(%q, %d) = %d, want %d", c.catalog, c.shards, got, c.want)
		}
	}
	// Placement is total: every name lands in [0, shards).
	for _, name := range []string{"a", "b", "c", "x-y-z", "catalog-with-a-long-name"} {
		for _, n := range []int{1, 2, 3, 4, 7, 16} {
			if got := ShardOf(name, n); got < 0 || got >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", name, n, got)
			}
		}
	}
}
