package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/visdb/client"
)

// TestHealthEndpoint: /v1/health reports per-shard live session
// counts (the router's drain signal), quarantined catalogs, and a
// monotonically positive uptime.
func TestHealthEndpoint(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv, c := newTestServer(t, 3,
		trafficConfig(t, "alpha", 400, 1),
		trafficConfig(t, "beta", 400, 2),
		CatalogConfig{Name: "broken", Quarantined: errors.New("checksum mismatch")})

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.UptimeNS <= 0 {
		t.Fatalf("health: %+v", h)
	}
	if len(h.Shards) != 3 {
		t.Fatalf("shards: %d", len(h.Shards))
	}
	if h.Sessions != 0 {
		t.Fatalf("idle node reports %d sessions", h.Sessions)
	}
	if len(h.Quarantined) != 1 || h.Quarantined[0] != "broken" {
		t.Fatalf("quarantined: %v", h.Quarantined)
	}

	// Open two sessions; the per-shard counts must localize them on the
	// catalogs' shards.
	s1, _, err := c.NewSession(ctx, "alpha", `SELECT a FROM S WHERE a > 50`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := c.NewSession(ctx, "beta", `SELECT b FROM S WHERE b < 40`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sessions != 2 {
		t.Fatalf("sessions: %d", h.Sessions)
	}
	wantShard := map[string]int{"alpha": ShardOf("alpha", 3), "beta": ShardOf("beta", 3)}
	for name, shard := range wantShard {
		found := false
		for _, cs := range h.Shards[shard].Catalogs {
			found = found || cs == name
		}
		if !found {
			t.Fatalf("catalog %q missing from shard %d: %+v", name, shard, h.Shards)
		}
	}
	total := 0
	for _, sh := range h.Shards {
		total += sh.Sessions
	}
	if total != 2 {
		t.Fatalf("per-shard sessions sum to %d", total)
	}

	// Closing a session is visible on the next report.
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if h, err = c.Health(ctx); err != nil || h.Sessions != 1 {
		t.Fatalf("after close: %+v, %v", h, err)
	}
	if err := s2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	_ = srv
}
