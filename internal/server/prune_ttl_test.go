package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/session"
	"repro/visdb/client"
)

// TestWarmRemoteRerunsReportPruning: once a remote session's leaf
// indexes are promoted (first reuse), warm weight-only reruns on a
// saturated selection must skip root combine chunks — and the pruning
// attribution must travel the wire (Summary.Timings.Pruned) so
// operators can see the rank-before-scale path working. The results
// stay bit-identical to a fresh in-process engine throughout.
func TestWarmRemoteRerunsReportPruning(t *testing.T) {
	ctx := context.Background()
	const rows = 65536
	cfg := trafficConfig(t, "prune", rows, 5)
	_, cl := newTestServer(t, 1, cfg)

	// `a >= 0` holds everywhere, so every combined OR distance is an
	// exact zero: the running threshold collapses immediately and every
	// chunk past the display budget is provably hopeless.
	sql := `SELECT a FROM S WHERE a >= 0 OR b < 40`
	remote, sum, err := cl.NewSession(ctx, "prune", sql, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close(ctx)
	if sum.Timings.Chunks == 0 {
		t.Fatalf("initial run reports no evaluator chunks: %+v", sum.Timings)
	}
	mirror, err := session.NewSQL(cfg.Catalog, nil, testGrid, sql)
	if err != nil {
		t.Fatal(err)
	}
	prunedWarm := 0
	for i := 0; i < 3; i++ {
		w := float64(2 + i%2)
		wsum, err := remote.SetWeight(ctx, 0, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := mirror.SetWeight(query.Predicates(mirror.Query().Where)[0], w); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			// Run 1 promoted the leaf indexes; later reruns must prune.
			prunedWarm += wsum.Timings.Pruned
		}
		if wsum.Timings.Pruned > wsum.Timings.Chunks {
			t.Fatalf("pruned %d of %d chunks?", wsum.Timings.Pruned, wsum.Timings.Chunks)
		}
		if err := compareRemote(ctx, "warm rerun", remote, mirror, cfg.Catalog, false); err != nil {
			t.Fatal(err)
		}
	}
	if prunedWarm == 0 {
		t.Fatal("warm remote reruns never reported pruned chunks")
	}
	// The timings endpoint reports the same counters.
	tm, err := remote.Timings(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Timings.Chunks == 0 {
		t.Fatalf("timings endpoint lost the chunk counters: %+v", tm.Timings)
	}
}

// TestIdleSessionTTLSweep: sessions idle past the TTL are reaped —
// freeing their pooled buffers and their slot under the per-shard
// cap — while recently-touched sessions survive. The sweep cutoff is
// driven explicitly, so the test never sleeps.
func TestIdleSessionTTLSweep(t *testing.T) {
	ctx := context.Background()
	cfg := trafficConfig(t, "ttl", 2000, 6)
	cfg.Shared.AdmitMinCost = -1
	srv, err := New(Config{
		Shards:         1,
		Catalogs:       []CatalogConfig{cfg},
		DefaultOptions: testGrid,
		SessionTTL:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)

	sql := `SELECT a FROM S WHERE a > 50 AND b < 40`
	idle, _, err := cl.NewSession(ctx, "ttl", sql, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	live, _, err := cl.NewSession(ctx, "ttl", sql, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Everything before t0 counts as idle for a sweep at t0+TTL; the
	// live session is touched after t0 and must survive.
	t0 := time.Now()
	if _, err := live.Timings(ctx); err != nil {
		t.Fatal(err)
	}
	if reaped := srv.SweepIdleSessions(t0.Add(time.Hour)); reaped != 1 {
		t.Fatalf("sweep reaped %d sessions, want 1", reaped)
	}
	if _, err := live.Timings(ctx); err != nil {
		t.Fatalf("live session was reaped: %v", err)
	}
	if _, err := idle.Timings(ctx); err == nil {
		t.Fatal("idle session still answers after the sweep")
	}
	st := srv.shards[0].stats()
	if st.SessionsReaped != 1 || st.Sessions != 1 {
		t.Fatalf("shard stats after sweep: %+v", st)
	}
	// A disabled TTL never reaps.
	srvOff, err := New(Config{Shards: 1, Catalogs: []CatalogConfig{trafficConfig(t, "ttl", 2000, 6)}, DefaultOptions: testGrid})
	if err != nil {
		t.Fatal(err)
	}
	if reaped := srvOff.SweepIdleSessions(time.Now().Add(240 * time.Hour)); reaped != 0 {
		t.Fatalf("disabled TTL reaped %d sessions", reaped)
	}
}
