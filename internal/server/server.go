// Package server is the VisDB serving subsystem: it hosts any number
// of catalogs behind an HTTP/JSON protocol so thin clients drive the
// paper's visual feedback loop remotely — the cross-process step of
// the scaling roadmap ("shard catalogs across workers and route
// sessions by catalog").
//
// # Sharding and routing
//
// The server is partitioned into N shards. Every catalog is homed on
// exactly one shard by a deterministic hash of its name (FNV-1a mod
// N), and a session lives on the shard of its catalog: the session ID
// embeds the shard index, so every later request routes straight to
// the owning shard without any global lookup. Shards are the
// concurrency and accounting unit — each owns its catalogs' session
// tables and stats counters, and in a future multi-node deployment the
// same catalog→shard map distributes shards across processes.
//
// Each catalog owns one core.SharedCache: every session on that
// catalog, regardless of which client opened it, resolves leaf
// distance vectors private tier → catalog tier → recompute, so N
// remote users dragging the same slider compute each leaf once. The
// cache is per-catalog rather than per-shard because shared keys
// fingerprint table identities (names and row counts), which are only
// unique within one catalog.
//
// # Concurrency model
//
// A session.Session is a single-user state machine, so the server
// serializes requests to one session with a per-session mutex; distinct
// sessions — on the same shard or not — run fully concurrently and
// share leaf work through their catalog's cache tier. Handlers
// marshal a session's pooled Result under that same mutex (a Result is
// only valid until the session's next recalculation).
//
// # Protocol
//
// See package wire for the message types. Endpoints:
//
//	POST   /v1/sessions                create a session on a catalog
//	POST   /v1/sessions/{id}/query     replace the whole query
//	POST   /v1/sessions/{id}/range     move a condition's range (slider)
//	POST   /v1/sessions/{id}/weight    set a predicate's weighting factor
//	POST   /v1/sessions/{id}/undo      revert the last modification
//	POST   /v1/sessions/{id}/pct       fix the displayed fraction
//	GET    /v1/sessions/{id}/results   top-k ranked rows (?top=k&tuples=1)
//	GET    /v1/sessions/{id}/timings   stage timings of the last recalc
//	DELETE /v1/sessions/{id}           close the session
//	GET    /v1/shards                  per-shard serving + cache stats
//	GET    /v1/shards/{shard}          one shard's stats
//	GET    /v1/catalogs                served catalogs and their shards
//	GET    /healthz                    liveness
//
// Mutating endpoints return the post-recalculation wire.Summary;
// results responses add the top-k rows (item, distance, relevance), so
// response size tracks the display budget, never the catalog size.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/session"
	"repro/internal/wire"
)

// CatalogConfig registers one catalog with the server.
type CatalogConfig struct {
	// Name is the serving name clients address the catalog by.
	Name string
	// Catalog holds the datasets; it must not be mutated while served.
	Catalog *dataset.Catalog
	// Registry supplies distance functions; nil selects the built-ins.
	Registry *distance.Registry
	// Shared configures the catalog's shared cache tier (entry cap,
	// byte budget, admission threshold). The zero value selects the
	// defaults, including cost-aware admission at
	// core.DefaultAdmitMinCost.
	Shared core.SharedOptions
	// Quarantined registers the catalog in quarantine from the start:
	// its segment file failed checksum verification when the daemon
	// loaded it. Catalog may be nil in that case; every request
	// touching the catalog answers 503 with the stored error while the
	// rest of the server serves normally.
	Quarantined error
}

// Config configures a Server.
type Config struct {
	// Shards is the number of serving shards; 0 selects 4. Catalogs
	// are assigned to shards deterministically by name hash.
	Shards int
	// Catalogs are the served catalogs.
	Catalogs []CatalogConfig
	// DefaultOptions seeds every session's engine options; fields a
	// client sets in wire.SessionOptions override it. The zero value
	// selects the engine defaults (128×128 grid).
	DefaultOptions core.Options
	// MaxSessionsPerShard bounds the live sessions a shard will hold;
	// creation beyond it answers 503 until sessions are closed. 0
	// selects DefaultMaxSessionsPerShard, negative is unlimited. Every
	// session pins O(rows) result buffers, so an unbounded table is a
	// slow memory leak under clients that never call DELETE.
	MaxSessionsPerShard int
	// SessionTTL reaps sessions idle longer than this (no request has
	// touched them): crashed or abandoned clients release their pooled
	// result buffers instead of pinning them until the per-shard cap
	// sheds new creations. 0 disables reaping. The sweep runs inside
	// SweepLoop (cmd/visdbd starts one) or on explicit
	// SweepIdleSessions calls; a reaped session answers later requests
	// with 404, exactly like an explicit DELETE.
	SessionTTL time.Duration
	// RequestTimeout bounds every request, recalculation included: the
	// handler context carries a deadline this far from arrival, the
	// engine polls it between evaluation chunks, and an overrun answers
	// 504 with the session rolled back to its pre-request state (still
	// serving the previous result). 0 disables the bound.
	RequestTimeout time.Duration
	// FaultHook, when non-nil, is consulted at the top of every request
	// — before any state changes — and may inject latency or an error
	// response (the fault-injection harness; nil in production). A
	// returned nil Fault passes the request through untouched.
	FaultHook func(r *http.Request) *Fault
}

// Fault is one injected handler fault: sleep Delay (bounded by the
// request context), then, if Status is nonzero, answer it with Code
// and Msg instead of running the real handler. A zero-Status fault is
// pure latency. Faults are injected before any handler state changes,
// so an injected error is always safe to retry.
type Fault struct {
	Delay  time.Duration
	Status int
	Code   string
	Msg    string
}

// DefaultShards is the shard count Config.Shards == 0 selects.
const DefaultShards = 4

// DefaultMaxSessionsPerShard bounds a shard's live sessions when the
// config leaves it zero.
const DefaultMaxSessionsPerShard = 1024

// maxGridSide caps the client-supplied window grid dimensions: the
// engine materializes O(GridW·GridH) cells per window, so an
// unbounded request could make one session allocate terabytes. 1024²
// is 64× the paper's display budget — far past any real display.
const maxGridSide = 1024

// catalogState is one served catalog: its datasets, registry and the
// catalog-level shared cache tier every session on it attaches to.
type catalogState struct {
	name   string
	cat    *dataset.Catalog
	reg    *distance.Registry
	shared *core.SharedCache
	shard  *shard

	// quar holds the catalog's quarantine state: non-nil once segment
	// corruption was detected (at load time or during a recalculation).
	// Quarantine is sticky — the first error wins and the catalog
	// answers 503 until a restart with a repaired file — and
	// per-catalog: other catalogs, on this shard or not, keep serving.
	quar atomic.Pointer[quarantine]
}

// quarantine wraps the first corruption error observed on a catalog.
type quarantine struct{ err error }

// quarantineErr returns the catalog's quarantine error, nil if healthy.
func (cs *catalogState) quarantineErr() error {
	if q := cs.quar.Load(); q != nil {
		return q.err
	}
	return nil
}

// setQuarantined records err as the catalog's quarantine cause; the
// first recorded error is kept.
func (cs *catalogState) setQuarantined(err error) {
	if err == nil {
		return
	}
	cs.quar.CompareAndSwap(nil, &quarantine{err: err})
}

// checkCorrupt polls the catalog's sticky corruption state (fed by
// checksum failures during segment decode) and quarantines on the
// first hit. Called after every recalculation: a result computed from
// a corrupt segment is garbage and must not be served.
func (cs *catalogState) checkCorrupt() error {
	if cs.cat != nil {
		cs.setQuarantined(cs.cat.Corrupt())
	}
	return cs.quarantineErr()
}

// shard is one serving partition: the sessions of the catalogs homed
// on it, plus its accounting. The mutex guards only the session table;
// sessions themselves serialize on their own locks, so the shard never
// blocks one session's recalculation on another's.
type shard struct {
	id       int
	catalogs []*catalogState
	// nonce is the server instance's random ID suffix; see Server.nonce.
	nonce string

	mu       sync.RWMutex
	sessions map[string]*serverSession
	nextSeq  uint64
	// maxSessions bounds the live session table; <= 0 is unlimited.
	maxSessions int

	created atomic.Uint64
	recalcs atomic.Uint64
	reaped  atomic.Uint64
}

// serverSession wraps one interactive session with the mutex that
// serializes its edits (a session.Session is a single-user state
// machine; concurrent requests to the same ID queue here).
type serverSession struct {
	mu    sync.Mutex
	id    string
	sess  *session.Session
	shard *shard
	cat   *catalogState
	// seq is the highest applied idempotency sequence number and reply
	// the stored response of the operation that applied it (2xx and 4xx
	// outcomes only — a 5xx/504 is rolled back server-side and
	// recording it would make a retry replay the failure instead of
	// re-applying the operation). Guarded by mu.
	seq   uint64
	reply *storedReply
	// lastAccess is the UnixNano stamp of the latest request that
	// touched the session (creation included) — the idle-TTL sweep's
	// eviction clock.
	lastAccess atomic.Int64
}

// touch stamps the session as just-accessed.
func (ss *serverSession) touch() { ss.lastAccess.Store(time.Now().UnixNano()) }

// storedReply is the recorded outcome of the last applied idempotent
// operation, replayed verbatim when the client retransmits its Seq.
type storedReply struct {
	status  int
	summary wire.Summary // valid when status is 2xx
	errMsg  string       // valid otherwise
	errCode string
}

// Server routes the serving protocol over a set of shards. It
// implements http.Handler; wrap it in an http.Server (or cmd/visdbd)
// to serve, and use that server's Shutdown for graceful drain — every
// in-flight recalculation is an in-flight request, so draining
// requests drains recalculations. InFlight exposes the live count for
// drain diagnostics.
type Server struct {
	shards    []*shard
	catalogs  map[string]*catalogState
	mux       *http.ServeMux
	opt       core.Options
	ttl       time.Duration
	timeout   time.Duration
	faultHook func(r *http.Request) *Fault
	inflight  atomic.Int64
	started   time.Time
	// nonce is a per-instance random suffix minted into every session
	// ID ("s2.17-a1b2c3"). Shard index and counter alone would let a
	// restarted process resurrect a dead instance's IDs — a stale
	// client (or a fleet router holding an old route) could then apply
	// edits to a stranger's session. The nonce makes a stale ID miss
	// deterministically: the replacement answers 404
	// session_not_found, which is the signal FleetSession recreates on.
	nonce string
}

// New builds a server from the config.
func New(cfg Config) (*Server, error) {
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	maxSessions := cfg.MaxSessionsPerShard
	if maxSessions == 0 {
		maxSessions = DefaultMaxSessionsPerShard
	}
	s := &Server{
		shards:    make([]*shard, n),
		catalogs:  make(map[string]*catalogState),
		opt:       cfg.DefaultOptions,
		ttl:       cfg.SessionTTL,
		timeout:   cfg.RequestTimeout,
		faultHook: cfg.FaultHook,
		started:   time.Now(),
		nonce:     newNonce(),
	}
	for i := range s.shards {
		s.shards[i] = &shard{id: i, nonce: s.nonce, sessions: make(map[string]*serverSession), maxSessions: maxSessions}
	}
	for _, cc := range cfg.Catalogs {
		if cc.Name == "" || (cc.Catalog == nil && cc.Quarantined == nil) {
			return nil, fmt.Errorf("server: catalog config needs a name and a catalog")
		}
		if _, dup := s.catalogs[cc.Name]; dup {
			return nil, fmt.Errorf("server: duplicate catalog %q", cc.Name)
		}
		sh := s.shards[ShardOf(cc.Name, n)]
		cs := &catalogState{
			name:   cc.Name,
			cat:    cc.Catalog,
			reg:    cc.Registry,
			shared: core.NewSharedCacheOpts(cc.Shared),
			shard:  sh,
		}
		cs.setQuarantined(cc.Quarantined)
		s.catalogs[cc.Name] = cs
		sh.catalogs = append(sh.catalogs, cs)
	}
	for _, sh := range s.shards {
		sort.Slice(sh.catalogs, func(i, j int) bool { return sh.catalogs[i].name < sh.catalogs[j].name })
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// ShardOf is the deterministic catalog→shard map: FNV-1a of the
// catalog name modulo the shard count. Exported so external routers
// (a future multi-node front end) compute the same placement.
// Non-positive shard counts normalize to DefaultShards, matching New.
func ShardOf(catalog string, shards int) int {
	if shards <= 0 {
		shards = DefaultShards
	}
	h := fnv.New32a()
	h.Write([]byte(catalog))
	return int(h.Sum32() % uint32(shards))
}

// ServeHTTP implements http.Handler. The request deadline starts
// here, before fault injection: injected latency consumes the request
// budget exactly like real slowness would, which is what lets the
// chaos suite drive deterministic 504s through the full stack.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	if s.faultHook != nil {
		if f := s.faultHook(r); f != nil {
			if f.Delay > 0 {
				t := time.NewTimer(f.Delay)
				select {
				case <-t.C:
				case <-r.Context().Done():
					t.Stop()
				}
			}
			if f.Status != 0 {
				// Injected before any handler state changes: an injected
				// error is indistinguishable from a request that never
				// arrived, so retries stay safe.
				writeErrCode(w, f.Status, f.Code, 0, fmt.Errorf("%s", f.Msg))
				return
			}
		}
	}
	s.mux.ServeHTTP(w, r)
}

// InFlight reports the number of requests currently being served —
// zero once a graceful shutdown has drained.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// routes installs the protocol endpoints.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("POST /v1/sessions/{id}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/sessions/{id}/range", s.handleRange)
	s.mux.HandleFunc("POST /v1/sessions/{id}/weight", s.handleWeight)
	s.mux.HandleFunc("POST /v1/sessions/{id}/undo", s.handleUndo)
	s.mux.HandleFunc("POST /v1/sessions/{id}/pct", s.handlePct)
	s.mux.HandleFunc("GET /v1/sessions/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/sessions/{id}/timings", s.handleTimings)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/shards", s.handleShards)
	s.mux.HandleFunc("GET /v1/shards/{shard}", s.handleShard)
	s.mux.HandleFunc("GET /v1/catalogs", s.handleCatalogs)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

// sessionOptions merges a client's wire options over the server
// defaults, clamping resource-shaped fields (grid dimensions, worker
// count) so no single request can size the server's allocations.
func (s *Server) sessionOptions(o wire.SessionOptions) core.Options {
	opt := s.opt
	if o.GridW > 0 {
		opt.GridW = min(o.GridW, maxGridSide)
	}
	if o.GridH > 0 {
		opt.GridH = min(o.GridH, maxGridSide)
	}
	if o.PercentDisplayed > 0 {
		opt.PercentDisplayed = o.PercentDisplayed
	}
	if o.FullSort {
		opt.FullSort = true
	}
	if o.Workers > 0 {
		opt.Workers = min(o.Workers, runtime.GOMAXPROCS(0))
	}
	return opt
}

// newNonce draws the server instance's session-ID suffix: 3 random
// bytes in hex, regenerated on every New. Falls back to a clock stamp
// if the system entropy source fails (still unique across restarts,
// which is all the suffix needs).
func newNonce() string {
	var b [3]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%06x", time.Now().UnixNano()&0xffffff)
	}
	return hex.EncodeToString(b[:])
}

// register allocates an ID on the catalog's shard and installs the
// session. IDs embed the shard index ("s2.17-a1b2c3"), which is the
// whole routing table: later requests parse the shard straight out of
// the ID; the suffix is the instance nonce (see Server.nonce). A full
// shard (maxSessions live sessions — each pins O(rows) pooled result
// buffers) refuses registration; clients must close sessions or be
// shed.
func (sh *shard) register(sess *session.Session, cs *catalogState) (*serverSession, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.checkCapacityLocked(); err != nil {
		return nil, err
	}
	sh.nextSeq++
	ss := &serverSession{
		id:    fmt.Sprintf("s%d.%d-%s", sh.id, sh.nextSeq, sh.nonce),
		sess:  sess,
		shard: sh,
		cat:   cs,
	}
	ss.touch()
	sh.sessions[ss.id] = ss
	sh.created.Add(1)
	return ss, nil
}

// lookup resolves a session ID to its shard's session table.
func (s *Server) lookup(id string) (*serverSession, error) {
	if !strings.HasPrefix(id, "s") {
		return nil, fmt.Errorf("malformed session id %q", id)
	}
	dot := strings.IndexByte(id, '.')
	if dot < 0 {
		return nil, fmt.Errorf("malformed session id %q", id)
	}
	shardID, err := strconv.Atoi(id[1:dot])
	if err != nil || shardID < 0 || shardID >= len(s.shards) {
		return nil, fmt.Errorf("session id %q names no shard", id)
	}
	sh := s.shards[shardID]
	sh.mu.RLock()
	ss, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no session %q: %w", id, errNoSession)
	}
	ss.touch()
	return ss, nil
}

// errNoSession marks a well-formed session ID with no live session
// behind it — reaped, closed, or minted by a dead instance. Handlers
// translate it to 404 with wire.CodeSessionNotFound so a recovering
// client can tell "recreate and replay" apart from "your request is
// malformed".
var errNoSession = errors.New("session not found")

// checkCapacityLocked reports whether the shard can take another
// session; the caller holds the shard lock.
func (sh *shard) checkCapacityLocked() error {
	if sh.maxSessions > 0 && len(sh.sessions) >= sh.maxSessions {
		return fmt.Errorf("shard %d is at its session limit (%d); close sessions and retry", sh.id, sh.maxSessions)
	}
	return nil
}

// checkCapacity is checkCapacityLocked for callers without the lock —
// an advisory pre-check (register re-checks authoritatively).
func (sh *shard) checkCapacity() error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.checkCapacityLocked()
}

// remove deletes a session from its shard.
func (sh *shard) remove(id string) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.sessions[id]; !ok {
		return false
	}
	delete(sh.sessions, id)
	return true
}

// stats snapshots one shard.
func (sh *shard) stats() wire.ShardStats {
	sh.mu.RLock()
	active := len(sh.sessions)
	sh.mu.RUnlock()
	st := wire.ShardStats{
		Shard:           sh.id,
		Catalogs:        []string{},
		Sessions:        active,
		SessionsCreated: sh.created.Load(),
		SessionsReaped:  sh.reaped.Load(),
		Recalcs:         sh.recalcs.Load(),
	}
	for _, cs := range sh.catalogs {
		st.Catalogs = append(st.Catalogs, cs.name)
		st.Shared.Add(wire.SharedStatsOf(cs.shared.Stats()))
	}
	return st
}

// SweepIdleSessions reaps every session whose last access predates now
// minus the configured SessionTTL and returns how many were removed.
// A no-op (returning 0) when the TTL is disabled. Reaping only unlinks
// the session from its shard table — a request already holding the
// session finishes normally, exactly like a concurrent DELETE — and
// the garbage collector reclaims the pooled result buffers the session
// pinned.
func (s *Server) SweepIdleSessions(now time.Time) int {
	if s.ttl <= 0 {
		return 0
	}
	cutoff := now.Add(-s.ttl).UnixNano()
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, ss := range sh.sessions {
			if ss.lastAccess.Load() < cutoff {
				delete(sh.sessions, id)
				sh.reaped.Add(1)
				total++
			}
		}
		sh.mu.Unlock()
	}
	return total
}

// SweepLoop runs the idle-session sweep periodically (a quarter of the
// TTL, at least once per second) until ctx is canceled. It returns
// immediately when the TTL is disabled. cmd/visdbd runs one for the
// daemon's lifetime.
func (s *Server) SweepLoop(ctx context.Context) {
	if s.ttl <= 0 {
		return
	}
	period := s.ttl / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.SweepIdleSessions(now)
		}
	}
}
