package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/query"
	"repro/internal/relevance"
	"repro/internal/session"
	"repro/internal/wire"
)

// writeJSON encodes v as the response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr encodes a wire.ErrorResponse with no machine-readable code.
func writeErr(w http.ResponseWriter, code int, err error) {
	writeErrCode(w, code, "", 0, err)
}

// writeErrCode encodes a wire.ErrorResponse carrying a machine-
// readable code; a nonzero retryAfter adds the Retry-After header
// (whole seconds, rounded up, at least 1) so clients can pace their
// retries off the server's own hint.
func writeErrCode(w http.ResponseWriter, status int, apiCode string, retryAfter time.Duration, err error) {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, wire.ErrorResponse{Error: err.Error(), Code: apiCode})
}

// Retry-After hints for the two standing 503 classes: a session-cap
// shed clears as soon as the idle sweep or a DELETE frees a slot,
// while a quarantined catalog stays down until an operator intervenes.
const (
	retryAfterSessionCap  = 1 * time.Second
	retryAfterQuarantined = 60 * time.Second
)

// writeLookupErr maps a failed session lookup to its wire form: a
// well-formed ID with no live session behind it answers 404 with
// CodeSessionNotFound (the machine-readable "recreate and replay"
// signal — the session was reaped, closed, or belongs to a dead
// instance), while a malformed ID stays an uncoded 404 (retrying or
// recreating cannot help a garbage ID).
func writeLookupErr(w http.ResponseWriter, err error) {
	if errors.Is(err, errNoSession) {
		writeErrCode(w, http.StatusNotFound, wire.CodeSessionNotFound, 0, err)
		return
	}
	writeErr(w, http.StatusNotFound, err)
}

// writeRecalcErr maps a failed session operation to its wire form:
// deadline overruns and cancellations answer 504 (the edit was rolled
// back; the session still serves its previous result), everything else
// is a client error.
func writeRecalcErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeErrCode(w, http.StatusGatewayTimeout, wire.CodeDeadline, 0, err)
	case errors.Is(err, context.Canceled):
		writeErrCode(w, http.StatusGatewayTimeout, wire.CodeCanceled, 0, err)
	case err == errNothingToUndo:
		writeErrCode(w, http.StatusConflict, wire.CodeNothingToUndo, 0, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

// decodeJSON parses a JSON request body (capped at 1 MiB — every
// protocol request is a few hundred bytes).
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// decodeBody is decodeJSON for handlers that answer the error
// themselves.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := decodeJSON(w, r, v); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// summaryLocked builds the wire summary of a session's current result;
// the caller holds ss.mu.
func summaryLocked(ss *serverSession) wire.Summary {
	res := ss.sess.Result()
	tm := res.Timings
	st := res.Stats()
	return wire.Summary{
		N:          st.NumObjects,
		Displayed:  st.NumDisplayed,
		NumResults: st.NumResults,
		Recalcs:    ss.sess.Recalcs,
		Timings:    wire.TimingsOf(tm),
	}
}

// handleCreate opens a session: route the catalog to its shard, run
// the initial recalculation, register. The shard lock is held only for
// registration — initial runs of distinct sessions proceed
// concurrently and share leaves through the catalog tier.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req wire.CreateSessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	cs, ok := s.catalogs[req.Catalog]
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no catalog %q", req.Catalog))
		return
	}
	if qerr := cs.quarantineErr(); qerr != nil {
		writeErrCode(w, http.StatusServiceUnavailable, wire.CodeCatalogQuarantined, retryAfterQuarantined, qerr)
		return
	}
	// Cheap pre-check so a full shard refuses before paying the
	// initial recalculation; register re-checks authoritatively under
	// the shard lock.
	if err := cs.shard.checkCapacity(); err != nil {
		writeErrCode(w, http.StatusServiceUnavailable, wire.CodeSessionCap, retryAfterSessionCap, err)
		return
	}
	opt := s.sessionOptions(req.Options)
	sess, err := session.NewSQLSharedCtx(r.Context(), cs.cat, cs.reg, opt, req.Query, cs.shared)
	if err != nil {
		if cerr := cs.checkCorrupt(); cerr != nil {
			writeErrCode(w, http.StatusServiceUnavailable, wire.CodeCatalogQuarantined, retryAfterQuarantined, cerr)
			return
		}
		writeRecalcErr(w, err)
		return
	}
	// A run over a corrupt segment file completes (corrupt segments
	// decode as zeroes) but its result is garbage: quarantine and
	// refuse instead of publishing the session.
	if cerr := cs.checkCorrupt(); cerr != nil {
		writeErrCode(w, http.StatusServiceUnavailable, wire.CodeCatalogQuarantined, retryAfterQuarantined, cerr)
		return
	}
	// Capture the initial run's count before the session is published:
	// once register returns, its (predictable) ID is addressable and a
	// concurrent edit could mutate sess.Recalcs under its own mutex.
	initialRecalcs := uint64(sess.Recalcs)
	ss, err := cs.shard.register(sess, cs)
	if err != nil {
		// The discarded session's work stays out of the shard counter,
		// keeping recalcs attributable to sessions that ever existed.
		writeErrCode(w, http.StatusServiceUnavailable, wire.CodeSessionCap, retryAfterSessionCap, err)
		return
	}
	cs.shard.recalcs.Add(initialRecalcs)
	ss.mu.Lock()
	info := wire.SessionInfo{ID: ss.id, Catalog: cs.name, Shard: cs.shard.id, Summary: summaryLocked(ss)}
	ss.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// sessionEdit is the shared tail of every mutating session endpoint:
// resolve the ID to its shard, serialize on the session's mutex,
// settle the idempotency sequence number, run the edit under the
// request's deadline, attribute the recalculations to the shard, and
// answer with the fresh summary. The request body is fully decoded
// BEFORE this runs, so the session mutex is never held across network
// I/O (a client trickling a body must not stall the session's
// readers).
//
// Sequence semantics (seq != 0): a request numbered past the last
// applied operation applies (forward gaps are legal — a client that
// exhausted its retry budget abandons that operation's number); a
// retransmission of the last applied number replays its stored
// response without touching the session; a stale number answers 409
// CodeSeqConflict, so a late duplicate of an abandoned operation can
// never re-apply after later operations. Responses are recorded for
// 2xx and 4xx outcomes only — a 504 was rolled back server-side, so
// the retry must re-apply, which is exactly what not advancing the
// number achieves.
func (s *Server) sessionEdit(w http.ResponseWriter, r *http.Request, seq uint64, edit func(ss *serverSession) error) {
	ss, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeLookupErr(w, err)
		return
	}
	ss.mu.Lock()
	if qerr := ss.cat.quarantineErr(); qerr != nil {
		ss.mu.Unlock()
		writeErrCode(w, http.StatusServiceUnavailable, wire.CodeCatalogQuarantined, retryAfterQuarantined, qerr)
		return
	}
	if seq != 0 {
		switch {
		case seq == ss.seq && ss.reply != nil:
			rep := *ss.reply
			ss.mu.Unlock()
			rep.write(w)
			return
		case seq <= ss.seq:
			cur := ss.seq
			ss.mu.Unlock()
			writeErrCode(w, http.StatusConflict, wire.CodeSeqConflict, 0,
				fmt.Errorf("sequence conflict: request carries stale seq %d, session applied up to %d", seq, cur))
			return
		}
	}
	ss.sess.SetRunContext(r.Context())
	before := ss.sess.Recalcs
	err = edit(ss)
	ss.sess.SetRunContext(nil)
	ss.shard.recalcs.Add(uint64(ss.sess.Recalcs - before))
	// Poll the catalog's sticky corruption state: a recalculation that
	// decoded a corrupt segment "succeeded" over zeroed data, and its
	// result must not be served.
	if cerr := ss.cat.checkCorrupt(); cerr != nil {
		ss.mu.Unlock()
		writeErrCode(w, http.StatusServiceUnavailable, wire.CodeCatalogQuarantined, retryAfterQuarantined, cerr)
		return
	}
	if err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		// Rolled back, not recorded: the client's retry re-applies.
		ss.mu.Unlock()
		writeRecalcErr(w, err)
		return
	}
	var rep storedReply
	switch {
	case err == nil:
		rep = storedReply{status: http.StatusOK, summary: summaryLocked(ss)}
	case err == errNothingToUndo:
		rep = storedReply{status: http.StatusConflict, errMsg: err.Error(), errCode: wire.CodeNothingToUndo}
	default:
		rep = storedReply{status: http.StatusBadRequest, errMsg: err.Error()}
	}
	if seq != 0 {
		ss.seq = seq
		ss.reply = &rep
	}
	ss.mu.Unlock()
	rep.write(w)
}

// write emits a stored reply — the single encoding for both fresh and
// replayed responses, so a replay is byte-identical to the original.
func (rep *storedReply) write(w http.ResponseWriter) {
	if rep.status == http.StatusOK {
		writeJSON(w, rep.status, rep.summary)
		return
	}
	writeErrCode(w, rep.status, rep.errCode, 0, errors.New(rep.errMsg))
}

var errNothingToUndo = fmt.Errorf("nothing to undo")

// handleQuery replaces the whole query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req wire.QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.sessionEdit(w, r, req.Seq, func(ss *serverSession) error {
		return ss.sess.SetQuery(req.Query)
	})
}

// handleRange moves a condition's range; null bounds travel as ±Inf.
func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req wire.RangeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	lo, hi := math.Inf(-1), math.Inf(1)
	if req.Lo != nil {
		lo = *req.Lo
	}
	if req.Hi != nil {
		hi = *req.Hi
	}
	s.sessionEdit(w, r, req.Seq, func(ss *serverSession) error {
		return ss.sess.SetRangeByAttr(req.Attr, lo, hi)
	})
}

// handleWeight sets a top-level predicate's weighting factor by its
// query order index.
func (s *Server) handleWeight(w http.ResponseWriter, r *http.Request) {
	var req wire.WeightRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.sessionEdit(w, r, req.Seq, func(ss *serverSession) error {
		preds := query.Predicates(ss.sess.Query().Where)
		if req.Pred < 0 || req.Pred >= len(preds) {
			return fmt.Errorf("predicate index %d out of range [0,%d)", req.Pred, len(preds))
		}
		return ss.sess.SetWeight(preds[req.Pred], req.Weight)
	})
}

// handleUndo reverts the last modification. The body is optional on
// the wire: pre-idempotency clients POST an empty body, which reads as
// Seq 0.
func (s *Server) handleUndo(w http.ResponseWriter, r *http.Request) {
	var req wire.UndoRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	s.sessionEdit(w, r, req.Seq, func(ss *serverSession) error {
		if !ss.sess.CanUndo() {
			return errNothingToUndo
		}
		return ss.sess.Undo()
	})
}

// handlePct fixes the session's displayed fraction — the paper's
// "percentage of the data displayed" control, now a wire operation.
// Not undoable: SetPercentDisplayed takes no snapshot, so an undo
// after a pct change reverts the latest query/range/weight edit.
func (s *Server) handlePct(w http.ResponseWriter, r *http.Request) {
	var req wire.PctRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.sessionEdit(w, r, req.Seq, func(ss *serverSession) error {
		return ss.sess.SetPercentDisplayed(req.Pct)
	})
}

// handleResults returns the top-k ranked rows. k defaults to (and is
// capped at) the displayed count, so the response size tracks the
// display budget; ?tuples=1 adds the rendered row values. The whole
// marshal runs under the session mutex — a session Result's vectors
// are pooled and valid only until its next recalculation.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	ss, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeLookupErr(w, err)
		return
	}
	if qerr := ss.cat.quarantineErr(); qerr != nil {
		// The last result may predate the corruption, but rows computed
		// from zeroed segments are indistinguishable from good ones —
		// refuse rather than serve data of unknown integrity.
		writeErrCode(w, http.StatusServiceUnavailable, wire.CodeCatalogQuarantined, retryAfterQuarantined, qerr)
		return
	}
	top := -1
	if v := r.URL.Query().Get("top"); v != "" {
		top, err = strconv.Atoi(v)
		if err != nil || top < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad top=%q", v))
			return
		}
	}
	withTuples := r.URL.Query().Get("tuples") == "1"

	// Build the response under the session mutex (the pooled Result is
	// only valid until the next recalculation), but release it before
	// the network write: everything in `out` is a deep copy, and a
	// slow-reading client must not stall the session's edits for
	// transfer time.
	ss.mu.Lock()
	res := ss.sess.Result()
	k := res.Displayed
	if top >= 0 && top < k {
		k = top
	}
	out := wire.ResultsResponse{Summary: summaryLocked(ss), Rows: make([]wire.Row, 0, k)}
	var tupleErr error
	for rank := 0; rank < k; rank++ {
		item := res.Order[rank]
		// Ranked access: the rank-before-scale path only ever scales the
		// display prefix, and the response needs nothing more.
		d := res.DistanceOfRank(rank)
		row := wire.Row{Item: item, Distance: d, Relevance: relevance.RelevanceFactor(d)}
		if withTuples {
			tup, err := res.Tuple(item)
			if err != nil {
				tupleErr = err
				break
			}
			row.Tuple = make([][]string, len(tup.Rows))
			for i, vals := range tup.Rows {
				rendered := make([]string, len(vals))
				for j, v := range vals {
					rendered[j] = v.String()
				}
				row.Tuple[i] = rendered
			}
		}
		out.Rows = append(out.Rows, row)
	}
	ss.mu.Unlock()
	if tupleErr != nil {
		writeErr(w, http.StatusInternalServerError, tupleErr)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTimings returns the stage timings of the last recalculation.
func (s *Server) handleTimings(w http.ResponseWriter, r *http.Request) {
	ss, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeLookupErr(w, err)
		return
	}
	if qerr := ss.cat.quarantineErr(); qerr != nil {
		writeErrCode(w, http.StatusServiceUnavailable, wire.CodeCatalogQuarantined, retryAfterQuarantined, qerr)
		return
	}
	ss.mu.Lock()
	sum := summaryLocked(ss)
	ss.mu.Unlock()
	writeJSON(w, http.StatusOK, sum)
}

// handleDelete closes a session.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ss, err := s.lookup(id)
	if err != nil {
		writeLookupErr(w, err)
		return
	}
	if !ss.shard.remove(id) {
		writeErrCode(w, http.StatusNotFound, wire.CodeSessionNotFound, 0, fmt.Errorf("no session %q: %w", id, errNoSession))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

// handleShards reports every shard's serving and cache stats.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	out := make([]wire.ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.stats()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleShard reports one shard.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	idx, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || idx < 0 || idx >= len(s.shards) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no shard %q", r.PathValue("shard")))
		return
	}
	writeJSON(w, http.StatusOK, s.shards[idx].stats())
}

// handleHealth is a node's self-report for the fleet router: per-shard
// live session counts (the router's drain logic watches these to
// decide when a moved shard has quiesced), quarantined catalogs, and
// uptime. Kept cheap — one lock per shard, no recalculation state —
// because the router polls it on every health interval.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	out := wire.HealthResponse{
		Status:   "ok",
		UptimeNS: time.Since(s.started).Nanoseconds(),
		Shards:   make([]wire.ShardHealth, len(s.shards)),
	}
	for i, sh := range s.shards {
		sh.mu.RLock()
		n := len(sh.sessions)
		sh.mu.RUnlock()
		names := make([]string, 0, len(sh.catalogs))
		for _, cs := range sh.catalogs {
			names = append(names, cs.name)
			if cs.quarantineErr() != nil {
				out.Quarantined = append(out.Quarantined, cs.name)
			}
		}
		out.Shards[i] = wire.ShardHealth{Shard: i, Sessions: n, Catalogs: names}
		out.Sessions += n
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCatalogs lists the served catalogs and their shard homes.
func (s *Server) handleCatalogs(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.catalogs))
	for name := range s.catalogs {
		names = append(names, name)
	}
	// Deterministic order for scripts and tests.
	sort.Strings(names)
	out := make([]wire.CatalogInfo, 0, len(names))
	for _, name := range names {
		cs := s.catalogs[name]
		info := wire.CatalogInfo{Name: name, Shard: cs.shard.id, Quarantined: cs.quarantineErr() != nil}
		if cs.cat != nil {
			info.Tables = cs.cat.TableNames()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}
