package server

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/relevance"
	"repro/internal/session"
	"repro/visdb/client"
)

// testGrid keeps server-side sessions and the in-process mirrors on
// identical engine options.
var testGrid = core.Options{GridW: 16, GridH: 16}

// newTestServer serves the given catalogs (all with admit-everything
// shared tiers, so cross-session reuse is observable at test row
// counts) behind an httptest server and returns a typed client.
func newTestServer(t testing.TB, shards int, catalogs ...CatalogConfig) (*Server, *client.Client) {
	t.Helper()
	for i := range catalogs {
		catalogs[i].Shared.AdmitMinCost = -1
	}
	srv, err := New(Config{Shards: shards, Catalogs: catalogs, DefaultOptions: testGrid})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, client.New(ts.URL)
}

func trafficConfig(t testing.TB, name string, rows int, seed int64) CatalogConfig {
	t.Helper()
	cat, err := datagen.Traffic(rows, seed)
	if err != nil {
		t.Fatal(err)
	}
	return CatalogConfig{Name: name, Catalog: cat}
}

// compareRemote fetches the remote session's full displayed ranking
// and asserts bitwise identity — order, distances, relevances —
// against a FRESH in-process engine run of the mirror's current query
// over the same catalog. Returns an error instead of failing so the
// concurrency test can call it from worker goroutines.
func compareRemote(ctx context.Context, step string, remote *client.Session, mirror *session.Session, cat *dataset.Catalog, withTuples bool) error {
	fresh, err := core.New(cat, nil, testGrid).Run(mirror.Query())
	if err != nil {
		return fmt.Errorf("%s: fresh run: %w", step, err)
	}
	var res client.Results
	if withTuples {
		res, err = remote.ResultsWithTuples(ctx, -1)
	} else {
		res, err = remote.Results(ctx, -1)
	}
	if err != nil {
		return fmt.Errorf("%s: results: %w", step, err)
	}
	if res.Summary.N != fresh.N || res.Summary.Displayed != fresh.Displayed {
		return fmt.Errorf("%s: N %d vs %d, Displayed %d vs %d",
			step, res.Summary.N, fresh.N, res.Summary.Displayed, fresh.Displayed)
	}
	st := fresh.Stats()
	if res.Summary.NumResults != st.NumResults {
		return fmt.Errorf("%s: NumResults %d vs %d", step, res.Summary.NumResults, st.NumResults)
	}
	if len(res.Rows) != fresh.Displayed {
		return fmt.Errorf("%s: %d rows, want %d", step, len(res.Rows), fresh.Displayed)
	}
	for rank, row := range res.Rows {
		item := fresh.Order[rank]
		if row.Item != item {
			return fmt.Errorf("%s: order[%d] item %d vs %d", step, rank, row.Item, item)
		}
		d := fresh.Combined()[item]
		if math.Float64bits(row.Distance) != math.Float64bits(d) {
			return fmt.Errorf("%s: rank %d distance %v vs %v", step, rank, row.Distance, d)
		}
		rel := relevance.RelevanceFactor(d)
		if math.Float64bits(row.Relevance) != math.Float64bits(rel) {
			return fmt.Errorf("%s: rank %d relevance %v vs %v", step, rank, row.Relevance, rel)
		}
		if withTuples {
			tup, err := fresh.Tuple(item)
			if err != nil {
				return fmt.Errorf("%s: tuple(%d): %w", step, item, err)
			}
			if len(row.Tuple) != len(tup.Rows) {
				return fmt.Errorf("%s: tuple tables %d vs %d", step, len(row.Tuple), len(tup.Rows))
			}
			for i, vals := range tup.Rows {
				for j, v := range vals {
					if row.Tuple[i][j] != v.String() {
						return fmt.Errorf("%s: tuple[%d][%d] %q vs %q", step, i, j, row.Tuple[i][j], v.String())
					}
				}
			}
		}
	}
	return nil
}

// scriptQueries are the whole-query replacements the randomized
// scripts rotate through — the same workload the in-process and
// remote traffic modes drive, so the replay-identity suite covers
// exactly what the benches measure.
var scriptQueries = datagen.TrafficQueries()

// scriptStep applies one random interaction to the remote session and
// its in-process mirror, keeping both on identical state. Returns a
// label for failure messages.
func scriptStep(ctx context.Context, rng *rand.Rand, step int, remote *client.Session, mirror *session.Session) (string, error) {
	attrs := []string{"a", "b", "c"}
	switch op := rng.Intn(12); {
	case op < 5: // range drag (sometimes one-sided)
		attr := attrs[rng.Intn(len(attrs))]
		if _, err := mirror.FindCond(attr); err != nil {
			return fmt.Sprintf("step %d: skip drag %s", step, attr), nil
		}
		lo := math.Floor(rng.Float64() * 80)
		hi := lo + math.Floor(rng.Float64()*40)
		switch rng.Intn(3) {
		case 0:
			hi = math.Inf(1)
		case 1:
			lo = math.Inf(-1)
		}
		if _, err := remote.SetRange(ctx, attr, lo, hi); err != nil {
			return "", fmt.Errorf("step %d: remote drag %s: %w", step, attr, err)
		}
		if err := mirror.SetRangeByAttr(attr, lo, hi); err != nil {
			return "", fmt.Errorf("step %d: mirror drag %s: %w", step, attr, err)
		}
		return fmt.Sprintf("step %d: drag %s to [%g,%g]", step, attr, lo, hi), nil
	case op < 8: // weight change (sometimes a no-op)
		preds := query.Predicates(mirror.Query().Where)
		i := rng.Intn(len(preds))
		w := []float64{0.5, 1, 1, 2, 3}[rng.Intn(5)]
		if _, err := remote.SetWeight(ctx, i, w); err != nil {
			return "", fmt.Errorf("step %d: remote weight: %w", step, err)
		}
		if err := mirror.SetWeight(preds[i], w); err != nil {
			return "", fmt.Errorf("step %d: mirror weight: %w", step, err)
		}
		return fmt.Sprintf("step %d: weight pred %d = %g", step, i, w), nil
	case op < 10: // whole-query replacement
		src := scriptQueries[rng.Intn(len(scriptQueries))]
		if _, err := remote.SetQuery(ctx, src); err != nil {
			return "", fmt.Errorf("step %d: remote query: %w", step, err)
		}
		if err := mirror.SetQuery(src); err != nil {
			return "", fmt.Errorf("step %d: mirror query: %w", step, err)
		}
		return fmt.Sprintf("step %d: set query", step), nil
	default: // undo
		if !mirror.CanUndo() {
			return fmt.Sprintf("step %d: skip undo", step), nil
		}
		if _, err := remote.Undo(ctx); err != nil {
			return "", fmt.Errorf("step %d: remote undo: %w", step, err)
		}
		if err := mirror.Undo(); err != nil {
			return "", fmt.Errorf("step %d: mirror undo: %w", step, err)
		}
		return fmt.Sprintf("step %d: undo", step), nil
	}
}

// TestRemoteReplayMatchesInProcess is the end-to-end identity
// property: a remote client session replaying a randomized interaction
// script (drags, weights, query replacement, undo) is bitwise
// identical — rows, relevances, order — to a fresh in-process engine
// at every step.
func TestRemoteReplayMatchesInProcess(t *testing.T) {
	cc := trafficConfig(t, "traffic", 1500, 42)
	_, c := newTestServer(t, 2, cc)
	ctx := context.Background()

	remote, sum, err := c.NewSession(ctx, "traffic", scriptQueries[2], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 1500 {
		t.Fatalf("initial N = %d", sum.N)
	}
	mirror, err := session.NewSQL(cc.Catalog, nil, testGrid, scriptQueries[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := compareRemote(ctx, "initial", remote, mirror, cc.Catalog, true); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1994))
	for step := 0; step < 40; step++ {
		label, err := scriptStep(ctx, rng, step, remote, mirror)
		if err != nil {
			t.Fatal(err)
		}
		if err := compareRemote(ctx, label, remote, mirror, cc.Catalog, step%7 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := remote.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClientsMatchFreshEngines is the acceptance property:
// 8 concurrent HTTP clients on ONE catalog — all sharing the
// catalog's server-side cache tier — each produce results bitwise
// identical to a fresh in-process engine at every step, and a warm
// client created afterwards sees nonzero SharedHits over the wire.
func TestConcurrentClientsMatchFreshEngines(t *testing.T) {
	const clients = 8
	const steps = 10
	cc := trafficConfig(t, "traffic", 1200, 9)
	_, c := newTestServer(t, 3, cc)
	ctx := context.Background()

	errs := make([]error, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + int64(g)))
			src := scriptQueries[g%len(scriptQueries)]
			remote, _, err := c.NewSession(ctx, "traffic", src, client.Options{})
			if err != nil {
				errs[g] = err
				return
			}
			defer remote.Close(ctx)
			// The mirror is fully isolated (private cache only): identity
			// proves the shared serving path never leaks between
			// sessions.
			mirror, err := session.NewSQL(cc.Catalog, nil, testGrid, src)
			if err != nil {
				errs[g] = err
				return
			}
			if err := compareRemote(ctx, fmt.Sprintf("client %d initial", g), remote, mirror, cc.Catalog, false); err != nil {
				errs[g] = err
				return
			}
			for step := 0; step < steps; step++ {
				label, err := scriptStep(ctx, rng, step, remote, mirror)
				if err != nil {
					errs[g] = err
					return
				}
				if err := compareRemote(ctx, fmt.Sprintf("client %d %s", g, label), remote, mirror, cc.Catalog, false); err != nil {
					errs[g] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", g, err)
		}
	}
	// A warm client on the busiest query warm-starts off the shared
	// tier, visible in the wire timings.
	_, sum, err := c.NewSession(ctx, "traffic", scriptQueries[0], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Timings.SharedHits == 0 {
		t.Fatalf("warm client saw no shared hits: %+v", sum.Timings)
	}
	stats, err := c.ShardStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var hits uint64
	for _, st := range stats {
		hits += st.Shared.Hits
	}
	if hits == 0 {
		t.Fatal("shard stats report no shared-tier hits")
	}
}

// TestRoutingDeterministic: catalogs home on ShardOf(name), session
// IDs embed the shard, and both the catalogs listing and session
// creation agree on the placement.
func TestRoutingDeterministic(t *testing.T) {
	const shards = 5
	names := []string{"alpha", "beta", "gamma"}
	var ccs []CatalogConfig
	for i, name := range names {
		ccs = append(ccs, trafficConfig(t, name, 300, int64(i)))
	}
	_, c := newTestServer(t, shards, ccs...)
	ctx := context.Background()

	infos, err := c.Catalogs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(names) {
		t.Fatalf("%d catalogs listed, want %d", len(infos), len(names))
	}
	for _, info := range infos {
		if want := ShardOf(info.Name, shards); info.Shard != want {
			t.Fatalf("catalog %q on shard %d, want %d", info.Name, info.Shard, want)
		}
	}
	for _, name := range names {
		s, _, err := c.NewSession(ctx, name, `SELECT a FROM S WHERE a > 50`, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := ShardOf(name, shards); s.Shard != want {
			t.Fatalf("session on %q routed to shard %d, want %d", name, s.Shard, want)
		}
		if err := s.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestProtocolErrors: the protocol's failure modes map to the right
// status codes and never wedge a session.
func TestProtocolErrors(t *testing.T) {
	cc := trafficConfig(t, "traffic", 200, 3)
	_, c := newTestServer(t, 2, cc)
	ctx := context.Background()

	wantStatus := func(err error, code int, label string) {
		t.Helper()
		var apiErr *client.APIError
		if err == nil {
			t.Fatalf("%s: no error", label)
		}
		var ok bool
		if apiErr, ok = err.(*client.APIError); !ok {
			t.Fatalf("%s: %v is not an APIError", label, err)
		}
		if apiErr.Status != code {
			t.Fatalf("%s: status %d, want %d (%s)", label, apiErr.Status, code, apiErr.Msg)
		}
	}

	_, _, err := c.NewSession(ctx, "nope", `SELECT a FROM S WHERE a > 1`, client.Options{})
	wantStatus(err, 404, "unknown catalog")
	_, _, err = c.NewSession(ctx, "traffic", `SELECT FROM WHERE`, client.Options{})
	wantStatus(err, 400, "parse error")
	_, _, err = c.NewSession(ctx, "traffic", `SELECT z FROM S WHERE z > 1`, client.Options{})
	wantStatus(err, 400, "bind error")

	s, _, err := c.NewSession(ctx, "traffic", `SELECT a FROM S WHERE a > 50 AND b < 40`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SetRange(ctx, "zzz", 1, 2)
	wantStatus(err, 400, "range on unknown attribute")
	_, err = s.SetRange(ctx, "a", 9, 2)
	wantStatus(err, 400, "inverted range")
	_, err = s.SetWeight(ctx, 99, 2)
	wantStatus(err, 400, "weight index out of range")
	_, err = s.SetWeight(ctx, 0, -1)
	wantStatus(err, 400, "negative weight")
	_, err = s.Undo(ctx)
	wantStatus(err, 409, "undo with empty history")
	_, err = s.SetQuery(ctx, `SELECT FROM`)
	wantStatus(err, 400, "bad replacement query")

	// The session still works after every rejected request.
	if _, err := s.SetRange(ctx, "a", 10, 60); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Undo(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	err = s.Close(ctx)
	wantStatus(err, 404, "double close")
	_, err = s.Results(ctx, 5)
	wantStatus(err, 404, "results after close")
}

// TestSessionCapSheds: a shard at its session limit answers 503 on
// creation — before paying the initial recalculation — and frees
// capacity again when a session closes.
func TestSessionCapSheds(t *testing.T) {
	cc := trafficConfig(t, "traffic", 200, 5)
	srv, err := New(Config{
		Shards:              1,
		Catalogs:            []CatalogConfig{cc},
		DefaultOptions:      testGrid,
		MaxSessionsPerShard: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	ctx := context.Background()

	var open []*client.Session
	for i := 0; i < 2; i++ {
		s, _, err := c.NewSession(ctx, "traffic", scriptQueries[0], client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		open = append(open, s)
	}
	_, _, err = c.NewSession(ctx, "traffic", scriptQueries[0], client.Options{})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != 503 {
		t.Fatalf("over-cap creation: got %v, want 503", err)
	}
	// Existing sessions keep working at the cap.
	if _, err := open[0].SetWeight(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	// Closing one frees a slot.
	if err := open[1].Close(ctx); err != nil {
		t.Fatal(err)
	}
	s, _, err := c.NewSession(ctx, "traffic", scriptQueries[0], client.Options{})
	if err != nil {
		t.Fatalf("creation after close: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := open[0].Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestGridClamp: client-supplied grid dimensions are clamped so one
// request cannot size the server's allocations arbitrarily.
func TestGridClamp(t *testing.T) {
	cc := trafficConfig(t, "traffic", 100, 6)
	_, c := newTestServer(t, 1, cc)
	ctx := context.Background()
	s, sum, err := c.NewSession(ctx, "traffic", scriptQueries[0],
		client.Options{GridW: 1 << 30, GridH: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(ctx)
	// 100 rows all fit any clamped grid; the point is that the request
	// succeeded without a grid^2 allocation (the clamp kept it at
	// maxGridSide per side).
	if sum.Displayed > 100 {
		t.Fatalf("displayed %d from 100 rows", sum.Displayed)
	}
}

// TestDiskCatalogReplayMatchesInMemory is the file-backed serving
// property: a server hosting the traffic catalog from an on-disk
// segment file — under a decoded-segment cache squeezed far below the
// catalog size, on both read backends — replays a randomized
// interaction script bitwise identically to fresh in-process engines
// over the same data in memory.
func TestDiskCatalogReplayMatchesInMemory(t *testing.T) {
	mem, err := datagen.Traffic(1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(t.TempDir(), "traffic.visdb")
	if _, err := dataset.WriteCatalogFile(segPath, mem); err != nil {
		t.Fatal(err)
	}
	for _, backend := range []struct {
		name  string
		force bool
	}{{"mmap", false}, {"readat", true}} {
		t.Run(backend.name, func(t *testing.T) {
			disk, err := dataset.OpenCatalogFile(segPath, dataset.OpenOptions{
				ForceReadAt: backend.force,
				CacheBytes:  1, // one resident segment: every read pages
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { disk.Close() })
			_, c := newTestServer(t, 2, CatalogConfig{Name: "traffic", Catalog: disk})
			ctx := context.Background()
			remote, sum, err := c.NewSession(ctx, "traffic", scriptQueries[2], client.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if sum.N != 1500 {
				t.Fatalf("initial N = %d", sum.N)
			}
			// The mirror runs on the in-memory catalog: every comparison
			// crosses the memory/disk boundary.
			mirror, err := session.NewSQL(mem, nil, testGrid, scriptQueries[2])
			if err != nil {
				t.Fatal(err)
			}
			if err := compareRemote(ctx, "initial", remote, mirror, mem, true); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1994))
			for step := 0; step < 25; step++ {
				label, err := scriptStep(ctx, rng, step, remote, mirror)
				if err != nil {
					t.Fatal(err)
				}
				if err := compareRemote(ctx, label, remote, mirror, mem, step%7 == 0); err != nil {
					t.Fatal(err)
				}
			}
			if err := remote.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}
