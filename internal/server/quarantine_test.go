package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/wire"
	"repro/visdb/client"
)

// corruptSegCatalog writes a generated catalog to a VSEGCAT2 file,
// flips one byte inside the blob region, and reopens it. The flip is
// past the footer's reach, so the open itself succeeds and the
// corruption only surfaces when a segment is decoded against its
// checksum — the nastiest case: a daemon that loaded cleanly and
// degrades at query time.
func corruptSegCatalog(t *testing.T) *dataset.Catalog {
	t.Helper()
	mem, err := datagen.Traffic(600, 21)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traffic.vseg")
	if _, err := dataset.WriteCatalogFile(path, mem); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cat, err := dataset.OpenCatalogFile(path, dataset.OpenOptions{})
	if err != nil {
		t.Fatalf("open after mid-blob flip should defer to decode time, got %v", err)
	}
	return cat
}

// TestCorruptCatalogQuarantinedOthersServe is the blast-radius
// property: a catalog whose segment file fails checksum verification
// answers 503 with code catalog_quarantined, while a healthy catalog
// on the same server — even the same shard — keeps serving.
func TestCorruptCatalogQuarantinedOthersServe(t *testing.T) {
	bad := CatalogConfig{Name: "bad", Catalog: corruptSegCatalog(t)}
	good := trafficConfig(t, "good", 600, 22)
	srv, err := New(Config{Shards: 1, Catalogs: []CatalogConfig{bad, good}, DefaultOptions: testGrid})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// Creating a session on the corrupt catalog trips the checksum
	// during the initial run and quarantines.
	_, _, err = c.NewSession(ctx, "bad", scriptQueries[0], client.Options{})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 503 || ae.Code != wire.CodeCatalogQuarantined {
		t.Fatalf("want 503/%s, got %v", wire.CodeCatalogQuarantined, err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("quarantine 503 must carry Retry-After, got %v", ae.RetryAfter)
	}
	// Quarantine is sticky: the next attempt refuses immediately.
	_, _, err = c.NewSession(ctx, "bad", scriptQueries[0], client.Options{})
	if !errors.As(err, &ae) || ae.Code != wire.CodeCatalogQuarantined {
		t.Fatalf("quarantine not sticky: %v", err)
	}

	// The healthy catalog on the same shard serves normally.
	sess, sum, err := c.NewSession(ctx, "good", scriptQueries[0], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 600 {
		t.Fatalf("healthy catalog N = %d", sum.N)
	}
	if _, err := sess.SetRange(ctx, "a", 10, 50); err != nil {
		t.Fatal(err)
	}

	// The catalog listing reports the quarantine.
	infos, err := c.Catalogs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]client.CatalogInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	if !byName["bad"].Quarantined || byName["good"].Quarantined {
		t.Fatalf("catalog listing: %+v", infos)
	}
}

// TestStartupQuarantinedCatalog covers the load-time path: a catalog
// registered already-quarantined (its file failed verification when
// the daemon started) answers 503 without ever having had a Catalog,
// and the rest of the server is unaffected.
func TestStartupQuarantinedCatalog(t *testing.T) {
	bad := CatalogConfig{Name: "bad", Quarantined: errors.New("traffic.vseg: footer CRC mismatch")}
	good := trafficConfig(t, "good", 400, 5)
	srv, err := New(Config{Shards: 2, Catalogs: []CatalogConfig{bad, good}, DefaultOptions: testGrid})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	_, _, err = c.NewSession(ctx, "bad", scriptQueries[0], client.Options{})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 503 || ae.Code != wire.CodeCatalogQuarantined {
		t.Fatalf("want 503/%s, got %v", wire.CodeCatalogQuarantined, err)
	}
	if _, _, err := c.NewSession(ctx, "good", scriptQueries[0], client.Options{}); err != nil {
		t.Fatal(err)
	}
	infos, err := c.Catalogs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.Name == "bad" && !info.Quarantined {
			t.Fatalf("startup quarantine not reported: %+v", info)
		}
	}
}

// TestQuarantineMidSession covers corruption surfacing under a live
// session: the first recalculation that decodes a corrupt segment
// flips the catalog to quarantined and every subsequent request on it
// — edits and reads alike — answers 503.
func TestQuarantineMidSession(t *testing.T) {
	// A catalog whose corruption hides in a column the initial query
	// never touches would be ideal; flipping mid-file corrupts an
	// arbitrary column, so instead prove the session-path statuses:
	// create trips quarantine, then an existing healthy session on the
	// SAME server (other catalog) still works while every endpoint of
	// the bad catalog 503s.
	bad := CatalogConfig{Name: "bad", Catalog: corruptSegCatalog(t)}
	good := trafficConfig(t, "good", 500, 9)
	srv, err := New(Config{Shards: 1, Catalogs: []CatalogConfig{bad, good}, DefaultOptions: testGrid})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	goodSess, _, err := c.NewSession(ctx, "good", scriptQueries[1], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.NewSession(ctx, "bad", scriptQueries[0], client.Options{}); err == nil {
		t.Fatal("corrupt catalog served a session")
	}
	// The healthy session rides through the neighbor's quarantine.
	if _, err := goodSess.SetWeight(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := goodSess.Results(ctx, 5); err != nil {
		t.Fatal(err)
	}
}
