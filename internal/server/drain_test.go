package server

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/visdb/client"
)

// TestAdmissionOverWire: a server with default cost-aware admission
// rejects the cheap numeric leaves of a tiny catalog (warm clients see
// zero SharedHits but the shard stats account the rejects), while an
// admit-everything server shares them. Correctness is identical either
// way — only residency differs.
func TestAdmissionOverWire(t *testing.T) {
	ctx := context.Background()
	mk := func(admit time.Duration) (*Server, *client.Client) {
		cc := trafficConfig(t, "traffic", 500, 11)
		cc.Shared.AdmitMinCost = admit
		srv, err := New(Config{Shards: 2, Catalogs: []CatalogConfig{cc}, DefaultOptions: testGrid})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return srv, client.New(ts.URL)
	}
	warmHits := func(c *client.Client) (int, []client.ShardStats) {
		t.Helper()
		for i := 0; i < 2; i++ {
			s, _, err := c.NewSession(ctx, "traffic", `SELECT a FROM S WHERE a > 50 AND b < 40`, client.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				if err := s.Close(ctx); err != nil {
					t.Fatal(err)
				}
				continue
			}
			sum, err := s.Timings(ctx)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := c.ShardStats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			return sum.Timings.SharedHits, stats
		}
		panic("unreachable")
	}

	// Cost-aware admission: 500-row numeric leaves stay out of the
	// tier. The threshold is set far above any plausible compute-plus-
	// stall time so the assertion cannot flake on a loaded machine; the
	// zero-value-selects-1ms default is covered (timing-free) by
	// TestSharedCacheAdmissionDefaults in internal/core.
	_, c := mk(time.Minute)
	hits, stats := warmHits(c)
	if hits != 0 {
		t.Fatalf("admission shared cheap leaves: SharedHits=%d", hits)
	}
	var rejects uint64
	for _, st := range stats {
		rejects += st.Shared.Rejects
	}
	if rejects == 0 {
		t.Fatal("admission recorded no rejects")
	}

	// Admit-everything: the same warm client is served by the tier.
	_, c = mk(-1)
	hits, _ = warmHits(c)
	if hits == 0 {
		t.Fatal("admit-all server shared nothing")
	}
}

// drainCatalog builds a catalog whose edit-distance leaves make a
// recalculation take real wall-clock time, so shutdown observably
// overlaps an in-flight recalculation.
func drainCatalog(t testing.TB, n int) *dataset.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tbl, err := dataset.NewTable("P", dataset.Schema{
		{Name: "name", Kind: dataset.KindString},
		{Name: "age", Kind: dataset.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"miller", "smith", "meier", "schmidt", "maier", "mueller", "smythe", "schmitt"}
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(
			dataset.Str(names[rng.Intn(len(names))]),
			dataset.Int(int64(18+rng.Intn(60))),
		); err != nil {
			t.Fatal(err)
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestShutdownDrainsInFlight: http.Server.Shutdown must wait for an
// in-flight recalculation (an edit request mid-recompute) to complete
// and answer before the server exits — the daemon's graceful-drain
// contract.
func TestShutdownDrainsInFlight(t *testing.T) {
	srv, err := New(Config{
		Shards: 1,
		Catalogs: []CatalogConfig{{
			Name:    "people",
			Catalog: drainCatalog(t, 120_000),
			Shared:  core.SharedOptions{AdmitMinCost: -1},
		}},
		DefaultOptions: testGrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(l) }()

	ctx := context.Background()
	c := client.New("http://" + l.Addr().String())
	s, _, err := c.NewSession(ctx, "people", `SELECT name FROM P WHERE name = 'meyer' USING edit AND age BETWEEN 30 AND 40`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Fire a query replacement whose recalculation computes a FRESH
	// edit-distance leaf over the whole table (the 'smith' predicate
	// was never run, so nothing serves it from a cache) — a recompute
	// long enough that shutdown reliably overlaps it.
	editDone := make(chan error, 1)
	go func() {
		_, err := s.SetQuery(ctx, `SELECT name FROM P WHERE name = 'smith' USING edit AND age BETWEEN 20 AND 50`)
		editDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	overlapped := true
	for srv.InFlight() == 0 && time.Now().Before(deadline) {
		select {
		case err := <-editDone:
			// The edit outran the poll (a very fast machine): the drain
			// assertion below is then vacuous but the contract holds.
			if err != nil {
				t.Fatalf("edit failed: %v", err)
			}
			editDone <- nil
			overlapped = false
		default:
		}
		if !overlapped {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if overlapped && srv.InFlight() == 0 {
		t.Fatal("edit request never became visible in flight")
	}

	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	if !overlapped {
		t.Log("edit completed before shutdown began; drain overlap not exercised this run")
	}
	// The in-flight edit was not cut off: it completes successfully
	// (the server finished the recalculation and wrote the response
	// before draining; only the client-side decode may still be
	// running when Shutdown returns).
	select {
	case err := <-editDone:
		if err != nil {
			t.Fatalf("in-flight edit failed during drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight edit never completed after drain")
	}
	if n := srv.InFlight(); n != 0 {
		t.Fatalf("%d requests in flight after drain", n)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("serve loop: %v", err)
	}
}

// BenchmarkServerThroughput measures the serving overhead of the HTTP
// layer: one warm remote session per client goroutine dragging a
// weight slider in a tight loop (the cheapest full recalculation),
// against an in-memory listener. Compare with BenchmarkReweight/warm
// for the in-process cost of the same interaction.
func BenchmarkServerThroughput(b *testing.B) {
	cc := trafficConfig(b, "traffic", 50_000, 1994)
	_, c := newTestServer(b, 2, cc)
	ctx := context.Background()
	s, _, err := c.NewSession(ctx, "traffic", `SELECT a FROM S WHERE a > 50 AND b < 40`, client.Options{GridW: 64, GridH: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close(ctx)
	weights := []float64{0.5, 1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SetWeight(ctx, 0, weights[i%len(weights)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sum, err := s.Timings(ctx)
	if err != nil {
		b.Fatal(err)
	}
	if sum.Recalcs == 0 {
		b.Fatal("no recalculations happened")
	}
	_ = fmt.Sprintf("%d", sum.Recalcs)
}
