package kv

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// breakerEnv is a store frontend whose health flips on demand, plus a
// client on a manual clock — the breaker's whole state machine is
// driven without a single real sleep.
type breakerEnv struct {
	ts    *httptest.Server
	store *Server
	down  atomic.Bool
	calls atomic.Uint64
	c     *Client
	now   time.Time
}

func newBreakerEnv(t *testing.T, threshold int) *breakerEnv {
	t.Helper()
	env := &breakerEnv{store: NewServer(64, 1<<20), now: time.Unix(1000, 0)}
	env.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		env.calls.Add(1)
		if env.down.Load() {
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		env.store.ServeHTTP(w, r)
	}))
	t.Cleanup(env.ts.Close)
	env.c = NewClient(env.ts.URL)
	env.c.BreakerThreshold = threshold
	env.c.BreakerCooldown = time.Minute
	env.c.Now = func() time.Time { return env.now }
	return env
}

func (env *breakerEnv) state(t *testing.T) string {
	t.Helper()
	st, _, _ := env.c.BreakerState()
	return st
}

func TestBreakerTripsShortCircuitsAndRecloses(t *testing.T) {
	env := newBreakerEnv(t, 3)
	c := env.c

	// Healthy store: misses and hits are "ok" outcomes, breaker closed.
	if _, ok := c.Get("k"); ok {
		t.Fatal("get of empty store hit")
	}
	c.Put("k", []byte{1})
	if _, ok := c.Get("k"); !ok {
		t.Fatal("get after put missed")
	}
	if st := env.state(t); st != "closed" {
		t.Fatalf("healthy breaker state %q", st)
	}

	// Outage: threshold consecutive failures trip the breaker.
	env.down.Store(true)
	for i := 0; i < 3; i++ {
		if st := env.state(t); st != "closed" {
			t.Fatalf("tripped after only %d failures: %q", i, st)
		}
		c.Get("k")
	}
	st, trips, _ := c.BreakerState()
	if st != "open" || trips != 1 {
		t.Fatalf("after threshold failures: state %q trips %d", st, trips)
	}

	// Open: operations short-circuit without touching the network.
	before := env.calls.Load()
	for i := 0; i < 5; i++ {
		if _, ok := c.Get("k"); ok {
			t.Fatal("short-circuited get reported a hit")
		}
		c.Put("x", []byte{2})
	}
	if got := env.calls.Load(); got != before {
		t.Fatalf("open breaker still made %d network calls", got-before)
	}
	if sc := c.Stats().ShortCircuits; sc != 10 {
		t.Fatalf("short circuits: %d", sc)
	}

	// Cooldown elapses but the store is still down: exactly one probe
	// goes out, fails, and re-opens the breaker for another window.
	env.now = env.now.Add(2 * time.Minute)
	c.Get("k")
	st, trips, _ = c.BreakerState()
	if st != "open" || trips != 2 {
		t.Fatalf("failed probe: state %q trips %d", st, trips)
	}
	if got := env.calls.Load(); got != before+1 {
		t.Fatalf("probe made %d calls, want 1", got-before)
	}

	// Store heals, cooldown elapses: the probe succeeds and the breaker
	// re-closes; traffic flows normally again.
	env.down.Store(false)
	env.now = env.now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("probe get after heal missed")
	}
	if st := env.state(t); st != "closed" {
		t.Fatalf("after heal: state %q", st)
	}
	before = env.calls.Load()
	c.Get("k")
	if env.calls.Load() != before+1 {
		t.Fatal("closed breaker not passing traffic")
	}
}

func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	env := newBreakerEnv(t, 1)
	env.down.Store(true)
	env.c.Get("k") // trips immediately (threshold 1)
	if st := env.state(t); st != "open" {
		t.Fatalf("state %q", st)
	}
	env.now = env.now.Add(2 * time.Minute)
	// First allow is the half-open probe; while it is notionally in
	// flight, every other caller short-circuits.
	if !env.c.allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if st := env.state(t); st != "half-open" {
		t.Fatalf("state %q", st)
	}
	before := env.calls.Load()
	if _, ok := env.c.Get("k"); ok || env.calls.Load() != before {
		t.Fatal("second caller got past a probing half-open breaker")
	}
	// The probe's success re-closes.
	env.c.record(true)
	if st := env.state(t); st != "closed" {
		t.Fatalf("state after probe success %q", st)
	}
}

func TestBreakerDisabled(t *testing.T) {
	env := newBreakerEnv(t, -1)
	env.down.Store(true)
	for i := 0; i < 10; i++ {
		env.c.Get("k")
	}
	st, trips, _ := env.c.BreakerState()
	if st != "" || trips != 0 {
		t.Fatalf("disabled breaker reported state %q trips %d", st, trips)
	}
	// Every call still hits the network: nothing short-circuits.
	if sc := env.c.Stats().ShortCircuits; sc != 0 {
		t.Fatalf("disabled breaker short-circuited %d ops", sc)
	}
	if got := env.calls.Load(); got != 10 {
		t.Fatalf("network calls: %d", got)
	}
}

func TestBreakerPutFailuresTrip(t *testing.T) {
	env := newBreakerEnv(t, 2)
	env.down.Store(true)
	env.c.Put("a", []byte{1})
	env.c.Put("b", []byte{2})
	st, trips, _ := env.c.BreakerState()
	if st != "open" || trips != 1 {
		t.Fatalf("put failures: state %q trips %d", st, trips)
	}
	// Puts while open are dropped without network traffic but still
	// counted as attempts.
	before := env.calls.Load()
	env.c.Put("c", []byte{3})
	if env.calls.Load() != before {
		t.Fatal("open breaker let a put through")
	}
	if puts := env.c.Stats().Puts; puts != 3 {
		t.Fatalf("puts attempted: %d", puts)
	}
}
