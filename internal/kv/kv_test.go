package kv

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestServerGetPutEvict(t *testing.T) {
	s := NewServer(3, 100)
	if _, ok := s.Get("missing"); ok {
		t.Fatal("get of empty store hit")
	}
	if !s.Put("a", bytes.Repeat([]byte{1}, 40)) {
		t.Fatal("put a rejected")
	}
	if !s.Put("b", bytes.Repeat([]byte{2}, 40)) {
		t.Fatal("put b rejected")
	}
	// Immutability: a re-put never replaces the bytes.
	s.Put("a", bytes.Repeat([]byte{9}, 10))
	if v, ok := s.Get("a"); !ok || v[0] != 1 || len(v) != 40 {
		t.Fatalf("re-put replaced value: %v", v)
	}
	// "a" is now most recent; a third put must evict "b" (byte budget).
	if !s.Put("c", bytes.Repeat([]byte{3}, 40)) {
		t.Fatal("put c rejected")
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU kept the stale key")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("LRU evicted the refreshed key")
	}
	// Oversized value: rejected outright.
	if s.Put("huge", make([]byte, 101)) {
		t.Fatal("oversized value accepted")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Rejects != 1 || st.Entries != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Bytes != 80 {
		t.Fatalf("byte accounting: %d", st.Bytes)
	}
}

func TestServerEntryCap(t *testing.T) {
	s := NewServer(2, 1<<20)
	s.Put("a", []byte{1})
	s.Put("b", []byte{2})
	s.Put("c", []byte{3})
	if s.Len() != 2 {
		t.Fatalf("entry cap: %d resident", s.Len())
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("oldest survived the cap")
	}
}

func TestClientAgainstServer(t *testing.T) {
	srv := NewServer(0, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	if _, ok := c.Get("C|nope"); ok {
		t.Fatal("missing key hit")
	}
	c.Put("C|k1", []byte("hello"))
	v, ok := c.Get("C|k1")
	if !ok || string(v) != "hello" {
		t.Fatalf("round trip: %q %v", v, ok)
	}
	// Keys with every character the structural keys use must survive
	// URL escaping.
	awkward := `C|T:S:200:e1f|S.a|a BETWEEN 0x1.8p+4 AND 30 ?&%= |w0.5`
	c.Put(awkward, []byte{0xff, 0x00})
	if v, ok := c.Get(awkward); !ok || !bytes.Equal(v, []byte{0xff, 0x00}) {
		t.Fatalf("awkward key mangled: %v %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 2 || st.Errors != 0 {
		t.Fatalf("client stats: %+v", st)
	}
	ss, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if ss.Entries != 2 || ss.Hits != 2 {
		t.Fatalf("server stats over HTTP: %+v", ss)
	}
}

func TestClientSingleflight(t *testing.T) {
	var calls atomic.Int32
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-block
		w.Write([]byte("v"))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)

	const n = 8
	var wg sync.WaitGroup
	results := make([][]byte, n)
	get := func(i int) {
		defer wg.Done()
		v, ok := c.Get("same-key")
		if !ok {
			t.Errorf("get %d failed", i)
		}
		results[i] = v
	}
	// Lead with one Get, wait until its request is on the wire, then
	// pile on followers and wait until every one is parked on the
	// leader's call before releasing the response — fully deterministic:
	// all collapse, exactly one request.
	wg.Add(1)
	go get(0)
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < n; i++ {
		wg.Add(1)
		go get(i)
	}
	for c.Stats().Shared != n-1 {
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d requests for one key under concurrency", got)
	}
	for i, v := range results {
		if string(v) != "v" {
			t.Fatalf("follower %d got %q", i, v)
		}
	}
	if st := c.Stats(); st.Shared != n-1 {
		t.Fatalf("shared count: %+v", st)
	}
}

func TestClientDegradesOnDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens on port 1
	if _, ok := c.Get("k"); ok {
		t.Fatal("dead server hit")
	}
	c.Put("k", []byte("v"))
	if st := c.Stats(); st.Errors != 2 {
		t.Fatalf("errors not counted: %+v", st)
	}
}

func TestServerRejectsBadKeys(t *testing.T) {
	ts := httptest.NewServer(NewServer(0, 0))
	defer ts.Close()
	for _, u := range []string{
		ts.URL + "/v1/kv",
		fmt.Sprintf("%s/v1/kv?key=%s", ts.URL, string(bytes.Repeat([]byte{'x'}, MaxKeyLen+1))),
	} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", u, resp.StatusCode)
		}
	}
}
