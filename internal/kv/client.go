package kv

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTimeout bounds every client request. The backend sits on the
// leaf-fill path — a slow store must degrade to a local compute, not
// stall a session — so the timeout is short relative to the work a Get
// saves (leaves worth sharing cost >= the admission threshold to
// compute, and typically far more).
const DefaultTimeout = 2 * time.Second

// ClientStats snapshots a client's cumulative traffic.
type ClientStats struct {
	Hits   uint64 // Gets answered 200
	Misses uint64 // Gets answered 404
	Puts   uint64 // Puts attempted
	Errors uint64 // transport failures and unexpected statuses
	Shared uint64 // Gets collapsed onto another caller's in-flight fetch
}

// Client speaks the kv protocol and implements core.SharedBackend: Get
// and Put never fail loudly — a network error is a miss (counted in
// Stats), because the store is an optimization, not a dependency.
//
// Concurrent Gets of the same key collapse onto one request
// (singleflight): the follower waits for the leader's response and
// shares the bytes, so a thundering herd inside one process costs one
// round trip — mirroring the SharedCache's own fill semantics one layer
// down.
type Client struct {
	base string
	// HTTP is the underlying client; replaceable before first use for
	// tests and fault injection. The default carries DefaultTimeout.
	HTTP *http.Client

	mu       sync.Mutex
	inflight map[string]*getCall

	hits, misses, puts, errs, shared atomic.Uint64
}

// getCall is one in-flight Get shared by its followers.
type getCall struct {
	done chan struct{}
	val  []byte
	ok   bool
}

// NewClient creates a client for the store at base (e.g.
// "http://127.0.0.1:7701").
func NewClient(base string) *Client {
	return &Client{
		base:     base,
		HTTP:     &http.Client{Timeout: DefaultTimeout},
		inflight: make(map[string]*getCall),
	}
}

// Stats returns the cumulative counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Puts:   c.puts.Load(),
		Errors: c.errs.Load(),
		Shared: c.shared.Load(),
	}
}

func (c *Client) keyURL(key string) string {
	return c.base + "/v1/kv?key=" + url.QueryEscape(key)
}

// Get fetches the value under key; ok is false on a miss OR any
// failure.
func (c *Client) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		// Counted before the wait so observers (tests, dashboards) see
		// the collapse while it is happening.
		c.shared.Add(1)
		<-call.done
		return call.val, call.ok
	}
	call := &getCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	call.val, call.ok = c.getOnce(key)

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(call.done)
	return call.val, call.ok
}

func (c *Client) getOnce(key string) ([]byte, bool) {
	resp, err := c.HTTP.Get(c.keyURL(key))
	if err != nil {
		c.errs.Add(1)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		val, err := io.ReadAll(resp.Body)
		if err != nil {
			c.errs.Add(1)
			return nil, false
		}
		c.hits.Add(1)
		return val, true
	case http.StatusNotFound:
		c.misses.Add(1)
		return nil, false
	default:
		c.errs.Add(1)
		return nil, false
	}
}

// Put offers a value to the store, best-effort.
func (c *Client) Put(key string, val []byte) {
	c.puts.Add(1)
	req, err := http.NewRequest(http.MethodPut, c.keyURL(key), bytes.NewReader(val))
	if err != nil {
		c.errs.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		c.errs.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		c.errs.Add(1)
	}
}

// ServerStats fetches the store's own counters (the fleet-stats
// aggregation surfaces them).
func (c *Client) ServerStats() (Stats, error) {
	resp, err := c.HTTP.Get(c.base + "/v1/kv/stats")
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
