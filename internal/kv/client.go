package kv

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTimeout bounds every client request. The backend sits on the
// leaf-fill path — a slow store must degrade to a local compute, not
// stall a session — so the timeout is short relative to the work a Get
// saves (leaves worth sharing cost >= the admission threshold to
// compute, and typically far more).
const DefaultTimeout = 2 * time.Second

// DefaultBreakerThreshold is the consecutive-failure count that trips
// the circuit breaker open when Client.BreakerThreshold is zero. Three
// strikes: one failure may be a blip, three in a row with zero
// successes in between is an outage.
const DefaultBreakerThreshold = 3

// DefaultBreakerCooldown is how long an open breaker rejects traffic
// before letting one half-open probe through (Client.BreakerCooldown
// zero value). Long relative to DefaultTimeout so a dead store costs
// one timeout per cooldown window instead of one per request.
const DefaultBreakerCooldown = 5 * time.Second

// ClientStats snapshots a client's cumulative traffic.
type ClientStats struct {
	Hits   uint64 // Gets answered 200
	Misses uint64 // Gets answered 404
	Puts   uint64 // Puts attempted
	Errors uint64 // transport failures and unexpected statuses
	Shared uint64 // Gets collapsed onto another caller's in-flight fetch
	// ShortCircuits counts operations answered instantly (Get: miss,
	// Put: dropped) because the breaker was open — each one is a
	// network timeout the caller did not pay.
	ShortCircuits uint64
	// Breaker is the breaker's current state: "closed", "open",
	// "half-open", or "" when disabled. Trips counts closed→open
	// transitions.
	Breaker string
	Trips   uint64
}

// Client speaks the kv protocol and implements core.SharedBackend: Get
// and Put never fail loudly — a network error is a miss (counted in
// Stats), because the store is an optimization, not a dependency.
//
// Concurrent Gets of the same key collapse onto one request
// (singleflight): the follower waits for the leader's response and
// shares the bytes, so a thundering herd inside one process costs one
// round trip — mirroring the SharedCache's own fill semantics one layer
// down.
// A circuit breaker guards every network call: after
// BreakerThreshold consecutive failures the breaker opens and
// operations short-circuit (Get answers an instant miss, Put drops)
// without touching the network, so a partitioned store costs ~0
// instead of a timeout per leaf fill. After BreakerCooldown one probe
// is let through half-open; its success re-closes the breaker, its
// failure re-opens it for another cooldown.
type Client struct {
	base string
	// HTTP is the underlying client; replaceable before first use for
	// tests and fault injection. The default carries DefaultTimeout.
	HTTP *http.Client
	// BreakerThreshold is the consecutive-failure count that opens the
	// breaker: 0 selects DefaultBreakerThreshold, negative disables the
	// breaker entirely. Set before first use.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open wait; 0 selects
	// DefaultBreakerCooldown. Set before first use.
	BreakerCooldown time.Duration
	// Now is the breaker's clock, replaceable for tests; nil means
	// time.Now. Set before first use.
	Now func() time.Time

	mu       sync.Mutex
	inflight map[string]*getCall

	// brMu guards the breaker's state machine — separate from mu so a
	// leader blocked in getOnce never delays another caller's breaker
	// check.
	brMu      sync.Mutex
	brState   breakerState
	brFails   int  // consecutive failures while closed
	brProbing bool // a half-open probe is in flight
	brOpened  time.Time
	brTrips   uint64

	hits, misses, puts, errs, shared, short atomic.Uint64
}

// breakerState enumerates the circuit breaker's three states.
type breakerState int

const (
	brClosed breakerState = iota
	brOpen
	brHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// getCall is one in-flight Get shared by its followers.
type getCall struct {
	done chan struct{}
	val  []byte
	ok   bool
}

// NewClient creates a client for the store at base (e.g.
// "http://127.0.0.1:7701").
func NewClient(base string) *Client {
	return &Client{
		base:     base,
		HTTP:     &http.Client{Timeout: DefaultTimeout},
		inflight: make(map[string]*getCall),
	}
}

// Stats returns the cumulative counters.
func (c *Client) Stats() ClientStats {
	st := ClientStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Puts:          c.puts.Load(),
		Errors:        c.errs.Load(),
		Shared:        c.shared.Load(),
		ShortCircuits: c.short.Load(),
	}
	st.Breaker, st.Trips, _ = c.BreakerState()
	return st
}

func (c *Client) threshold() int {
	if c.BreakerThreshold == 0 {
		return DefaultBreakerThreshold
	}
	return c.BreakerThreshold
}

func (c *Client) cooldown() time.Duration {
	if c.BreakerCooldown <= 0 {
		return DefaultBreakerCooldown
	}
	return c.BreakerCooldown
}

func (c *Client) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// BreakerState implements core.BreakerReporter: the current state
// ("closed", "open", "half-open"; "" when the breaker is disabled),
// cumulative closed→open trips, and short-circuited operations.
func (c *Client) BreakerState() (state string, trips, shortCircuits uint64) {
	if c.BreakerThreshold < 0 {
		return "", 0, c.short.Load()
	}
	c.brMu.Lock()
	state, trips = c.brState.String(), c.brTrips
	c.brMu.Unlock()
	return state, trips, c.short.Load()
}

// allow reports whether a network call may proceed, advancing the
// open→half-open transition when the cooldown has elapsed. A false
// return means the caller must short-circuit (already counted).
func (c *Client) allow() bool {
	if c.BreakerThreshold < 0 {
		return true
	}
	c.brMu.Lock()
	defer c.brMu.Unlock()
	switch c.brState {
	case brClosed:
		return true
	case brOpen:
		if c.now().Sub(c.brOpened) < c.cooldown() {
			c.short.Add(1)
			return false
		}
		c.brState = brHalfOpen
		c.brProbing = true
		return true
	default: // half-open: exactly one probe at a time
		if c.brProbing {
			c.short.Add(1)
			return false
		}
		c.brProbing = true
		return true
	}
}

// record feeds a call's outcome into the state machine. ok means the
// store answered with an expected status (hit, miss, or over-budget
// rejection — the store is reachable and sane), not that the operation
// "succeeded": a 404 is a healthy answer.
func (c *Client) record(ok bool) {
	if c.BreakerThreshold < 0 {
		return
	}
	c.brMu.Lock()
	defer c.brMu.Unlock()
	wasHalfOpen := c.brState == brHalfOpen
	if wasHalfOpen {
		c.brProbing = false
	}
	if ok {
		c.brState = brClosed
		c.brFails = 0
		return
	}
	switch {
	case wasHalfOpen:
		c.tripLocked()
	case c.brState == brClosed:
		c.brFails++
		if c.brFails >= c.threshold() {
			c.tripLocked()
		}
	default:
		// Already open: a straggler that started before the trip.
	}
}

// tripLocked opens the breaker; the caller holds brMu.
func (c *Client) tripLocked() {
	c.brState = brOpen
	c.brOpened = c.now()
	c.brFails = 0
	c.brTrips++
}

func (c *Client) keyURL(key string) string {
	return c.base + "/v1/kv?key=" + url.QueryEscape(key)
}

// Get fetches the value under key; ok is false on a miss OR any
// failure — including an instant short-circuit miss while the breaker
// is open.
func (c *Client) Get(key string) ([]byte, bool) {
	if !c.allow() {
		return nil, false
	}
	c.mu.Lock()
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		// Counted before the wait so observers (tests, dashboards) see
		// the collapse while it is happening.
		c.shared.Add(1)
		<-call.done
		return call.val, call.ok
	}
	call := &getCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	call.val, call.ok = c.getOnce(key)

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(call.done)
	return call.val, call.ok
}

func (c *Client) getOnce(key string) ([]byte, bool) {
	resp, err := c.HTTP.Get(c.keyURL(key))
	if err != nil {
		c.errs.Add(1)
		c.record(false)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		val, err := io.ReadAll(resp.Body)
		if err != nil {
			c.errs.Add(1)
			c.record(false)
			return nil, false
		}
		c.hits.Add(1)
		c.record(true)
		return val, true
	case http.StatusNotFound:
		// A miss is a healthy answer: the store is reachable.
		c.misses.Add(1)
		c.record(true)
		return nil, false
	default:
		c.errs.Add(1)
		c.record(false)
		return nil, false
	}
}

// Put offers a value to the store, best-effort; dropped instantly
// while the breaker is open.
func (c *Client) Put(key string, val []byte) {
	c.puts.Add(1)
	if !c.allow() {
		return
	}
	req, err := http.NewRequest(http.MethodPut, c.keyURL(key), bytes.NewReader(val))
	if err != nil {
		c.errs.Add(1)
		c.record(false)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		c.errs.Add(1)
		c.record(false)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		c.record(true)
	case http.StatusRequestEntityTooLarge:
		// The store rejected an oversized value — a healthy, expected
		// refusal, not an outage signal.
		c.errs.Add(1)
		c.record(true)
	default:
		c.errs.Add(1)
		c.record(false)
	}
}

// ServerStats fetches the store's own counters (the fleet-stats
// aggregation surfaces them).
func (c *Client) ServerStats() (Stats, error) {
	resp, err := c.HTTP.Get(c.base + "/v1/kv/stats")
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
