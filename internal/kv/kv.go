// Package kv is the fleet's shared-distance store: a small HTTP
// key-value daemon holding immutable byte vectors under the structural
// cache keys of internal/core, so leaf distance vectors, promoted
// quantile indexes, and interior-normalization entries computed on one
// visdbd node warm every node.
//
// The protocol is three endpoints of plain HTTP — no framing beyond
// what net/http provides, so any stdlib client (or curl) speaks it:
//
//	GET  /v1/kv?key=K   -> 200 with the value bytes, or 404
//	PUT  /v1/kv?key=K   -> 204 (body is the value)
//	GET  /v1/kv/stats   -> 200 JSON Stats
//	GET  /healthz       -> 200 "ok"
//
// Semantics are deliberately weaker than a database and exactly as
// strong as the cache needs: values are immutable (a re-PUT of an
// existing key refreshes its recency but never replaces the bytes —
// every writer derives the value deterministically from the key, so
// first-wins and last-wins are byte-identical), GET of a missing or
// evicted key is a plain miss, and the server may evict anything at any
// time under its entry cap and byte budget (LRU). Nothing is persisted:
// the store is a cache of recomputable work, and a restart merely costs
// the fleet a warm-up.
package kv

import (
	"container/list"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// Defaults for NewServer bounds.
const (
	DefaultMaxEntries = 65536
	DefaultMaxBytes   = 256 << 20

	// MaxKeyLen bounds request keys; structural cache keys are far
	// shorter, so anything longer is a caller bug answered with 400.
	MaxKeyLen = 4096
)

// Stats is the server's point-in-time snapshot, served as JSON by
// /v1/kv/stats.
type Stats struct {
	Gets      uint64 `json:"gets"`
	Hits      uint64 `json:"hits"`
	Puts      uint64 `json:"puts"`
	Rejects   uint64 `json:"rejects"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// entry is one resident value; list elements order recency.
type entry struct {
	key string
	val []byte
}

// Server is the store plus its HTTP surface. The zero value is not
// usable; construct with NewServer. Safe for concurrent use.
type Server struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64

	maxEntries int
	maxBytes   int64

	gets, hits, puts, rejects, evictions uint64

	mux *http.ServeMux
}

// NewServer creates a store bounded by maxEntries values and maxBytes
// total value bytes; zero or negative selects the defaults.
func NewServer(maxEntries int, maxBytes int64) *Server {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	s := &Server{
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/kv", s.handleGet)
	mux.HandleFunc("PUT /v1/kv", s.handlePut)
	mux.HandleFunc("GET /v1/kv/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Get returns the value under key, refreshing its recency.
func (s *Server) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key. Values are immutable: if the key is
// resident the stored bytes are kept (recency refreshed) — writers
// derive values deterministically from keys, so the bytes are the same
// either way. A value larger than the byte budget is rejected outright
// (it could never stay resident).
func (s *Server) Put(key string, val []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if int64(len(val)) > s.maxBytes {
		s.rejects++
		return false
	}
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		return true
	}
	el := s.lru.PushFront(&entry{key: key, val: val})
	s.entries[key] = el
	s.bytes += int64(len(val))
	for len(s.entries) > s.maxEntries || s.bytes > s.maxBytes {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		s.lru.Remove(oldest)
		delete(s.entries, e.key)
		s.bytes -= int64(len(e.val))
		s.evictions++
	}
	return true
}

// Stats snapshots the counters and resident set.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Gets: s.gets, Hits: s.hits, Puts: s.puts,
		Rejects: s.rejects, Evictions: s.evictions,
		Entries: len(s.entries), Bytes: s.bytes, MaxBytes: s.maxBytes,
	}
}

// Len returns the resident entry count.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

func reqKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.URL.Query().Get("key")
	if key == "" || len(key) > MaxKeyLen {
		http.Error(w, "kv: missing or oversized key", http.StatusBadRequest)
		return "", false
	}
	return key, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key, ok := reqKey(w, r)
	if !ok {
		return
	}
	val, ok := s.Get(key)
	if !ok {
		http.Error(w, "kv: not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(val)))
	w.Write(val)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key, ok := reqKey(w, r)
	if !ok {
		return
	}
	// Cap the read at the byte budget: anything bigger is rejected
	// anyway, and an unbounded read would let one request balloon the
	// process.
	val, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBytes+1))
	if err != nil {
		http.Error(w, "kv: value exceeds byte budget", http.StatusRequestEntityTooLarge)
		return
	}
	if !s.Put(key, val) {
		http.Error(w, "kv: value exceeds byte budget", http.StatusRequestEntityTooLarge)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}
