// Package wire defines the JSON message types of the visdbd serving
// protocol — the shared vocabulary of internal/server (which marshals
// them) and visdb/client (which consumes them). Everything is plain
// encoding/json over HTTP; the types deliberately carry only what a
// thin interaction client needs, so the wire cost of a response stays
// proportional to the display budget (top-k rows), never to the
// catalog size n.
//
// Float64 values round-trip exactly: encoding/json emits the shortest
// decimal representation that parses back to the same bits, which is
// what lets the end-to-end suite assert bitwise identity between a
// remote session and an in-process one. The only caveat is NaN/Inf
// (unrepresentable in JSON): displayed rows never carry them (NaN
// distances are uncolorable and excluded from display), and open range
// bounds travel as null instead of ±Inf.
package wire

import "repro/internal/core"

// SessionOptions carries the engine options a client may set at
// session creation. Zero fields select the server's defaults.
type SessionOptions struct {
	// GridW and GridH are the per-window item grid dimensions.
	GridW int `json:"grid_w,omitempty"`
	GridH int `json:"grid_h,omitempty"`
	// PercentDisplayed, when > 0, fixes the displayed fraction.
	PercentDisplayed float64 `json:"percent_displayed,omitempty"`
	// FullSort ranks with the exact full sort instead of top-k
	// selection.
	FullSort bool `json:"full_sort,omitempty"`
	// Workers bounds the per-session worker pool (0 = server default).
	Workers int `json:"workers,omitempty"`
}

// CreateSessionRequest opens a session: POST /v1/sessions.
type CreateSessionRequest struct {
	Catalog string         `json:"catalog"`
	Query   string         `json:"query"`
	Options SessionOptions `json:"options"`
}

// QueryRequest replaces the session's whole query:
// POST /v1/sessions/{id}/query.
type QueryRequest struct {
	Query string `json:"query"`
	// Seq is the idempotency sequence number; see RangeRequest.Seq.
	Seq uint64 `json:"seq,omitempty"`
}

// RangeRequest moves a condition's range (the remote slider drag):
// POST /v1/sessions/{id}/range. The condition is addressed by
// attribute name; a null bound leaves that side open (the condition
// becomes >= or <=).
//
// Seq, when nonzero, makes the operation idempotent: the client
// numbers its mutating operations 1, 2, 3, … per session, and the
// server applies a request only when its Seq is past the last applied
// number (forward gaps are legal — an abandoned operation's number is
// simply skipped). Retransmitting the last applied Seq replays the
// stored response without re-running anything; a stale Seq answers
// 409 with code CodeSeqConflict, so a late duplicate can never
// re-apply after later operations. Seq 0 is the legacy non-idempotent
// mode: always applied.
type RangeRequest struct {
	Attr string   `json:"attr"`
	Lo   *float64 `json:"lo"`
	Hi   *float64 `json:"hi"`
	Seq  uint64   `json:"seq,omitempty"`
}

// WeightRequest updates a top-level predicate's weighting factor:
// POST /v1/sessions/{id}/weight. Pred indexes the query's top-level
// selection predicates in query order (the same order Results windows
// and PredicateInfos use).
type WeightRequest struct {
	Pred   int     `json:"pred"`
	Weight float64 `json:"weight"`
	// Seq is the idempotency sequence number; see RangeRequest.Seq.
	Seq uint64 `json:"seq,omitempty"`
}

// PctRequest fixes the session's displayed fraction:
// POST /v1/sessions/{id}/pct. Pct must be in [0, 1]; 0 restores the
// automatic display budget (the window grid decides). Changing the
// fraction re-normalizes distances (the paper scales relevance to the
// displayed population), so the operation triggers a recalculation
// like any other edit — but it takes no snapshot: undo skips over it.
type PctRequest struct {
	Pct float64 `json:"pct"`
	// Seq is the idempotency sequence number; see RangeRequest.Seq.
	Seq uint64 `json:"seq,omitempty"`
}

// UndoRequest reverts the last modification:
// POST /v1/sessions/{id}/undo. The body is optional on the wire (an
// empty body means Seq 0, the legacy non-idempotent form).
type UndoRequest struct {
	// Seq is the idempotency sequence number; see RangeRequest.Seq.
	Seq uint64 `json:"seq,omitempty"`
}

// Timings mirrors core.StageTimings in nanoseconds plus the cache and
// pruning attribution counters. ScaleNS is the rank-before-scale
// stage applying the final monotonic transforms to the top-k
// survivors; Pruned/Chunks count the evaluator chunks whose root
// combine work was skipped by block pruning, out of the total (warm
// reruns on saturated selections prune most chunks; cold runs report
// zero).
type Timings struct {
	BindNS      int64 `json:"bind_ns"`
	DistancesNS int64 `json:"distances_ns"`
	EvaluateNS  int64 `json:"evaluate_ns"`
	SortNS      int64 `json:"sort_ns"`
	SelectNS    int64 `json:"select_ns"`
	ScaleNS     int64 `json:"scale_ns"`
	ReduceNS    int64 `json:"reduce_ns"`
	TotalNS     int64 `json:"total_ns"`
	CacheHits   int   `json:"cache_hits"`
	CacheMisses int   `json:"cache_misses"`
	SharedHits  int   `json:"shared_hits"`
	Pruned      int   `json:"pruned"`
	Chunks      int   `json:"chunks"`
	// SketchHits/SketchRescans attribute the incremental interior
	// normalization: interior nodes served from their cached raw
	// combined vector, and how many evaluator chunks their quantile
	// sketches re-scanned for the exact normalization ranges (warm
	// weight drags show hits > 0 with rescans ≪ chunks — the killed
	// full-array pass, measured).
	SketchHits    int `json:"sketch_hits"`
	SketchRescans int `json:"sketch_rescans"`
	// SegsSkipped/Segs attribute the segment-stats pushdown of cold
	// file-backed scans: storage segments whose decode was skipped
	// because the catalog footer proved every row in range, out of the
	// segments the run's cold computes considered (zero on warm runs
	// and for pre-v3 catalogs).
	SegsSkipped int `json:"segs_skipped"`
	Segs        int `json:"segs"`
}

// TimingsOf converts the engine's stage timings — the single place the
// timing schema is mapped, shared by the serving handlers and the
// benchmark reports.
func TimingsOf(tm core.StageTimings) Timings {
	return Timings{
		BindNS:        tm.Bind.Nanoseconds(),
		DistancesNS:   tm.Distances.Nanoseconds(),
		EvaluateNS:    tm.Evaluate.Nanoseconds(),
		SortNS:        tm.Sort.Nanoseconds(),
		SelectNS:      tm.Select.Nanoseconds(),
		ScaleNS:       tm.Scale.Nanoseconds(),
		ReduceNS:      tm.Reduce.Nanoseconds(),
		TotalNS:       tm.Total.Nanoseconds(),
		CacheHits:     tm.CacheHits,
		CacheMisses:   tm.CacheMisses,
		SharedHits:    tm.SharedHits,
		Pruned:        tm.Pruned,
		Chunks:        tm.Chunks,
		SketchHits:    tm.SketchHits,
		SketchRescans: tm.SketchRescans,
		SegsSkipped:   tm.SegsSkipped,
		Segs:          tm.Segs,
	}
}

// Summary is the scalar state of a session after its latest
// recalculation — every mutating endpoint returns one, so a thin
// client can show the stats panel without fetching any rows.
type Summary struct {
	N          int     `json:"n"`
	Displayed  int     `json:"displayed"`
	NumResults int     `json:"num_results"`
	Recalcs    int     `json:"recalcs"`
	Timings    Timings `json:"timings"`
}

// SessionInfo is the response to session creation.
type SessionInfo struct {
	ID      string  `json:"id"`
	Catalog string  `json:"catalog"`
	Shard   int     `json:"shard"`
	Summary Summary `json:"summary"`
}

// Row is one ranked display item: GET /v1/sessions/{id}/results.
// Distance and Relevance are finite (displayed items are colorable by
// construction). Tuple, present only when ?tuples=1, renders the
// underlying row values per table (two entries for join pairs).
type Row struct {
	Item      int        `json:"item"`
	Distance  float64    `json:"distance"`
	Relevance float64    `json:"relevance"`
	Tuple     [][]string `json:"tuple,omitempty"`
}

// ResultsResponse carries the top-k ranked rows of the current result.
type ResultsResponse struct {
	Summary Summary `json:"summary"`
	Rows    []Row   `json:"rows"`
}

// SharedStats mirrors core.SharedStats. The interior_* counters cover
// the shared cache's separate interior-entry tier (cached interior
// combine vectors plus their normalization sketches), which rides at a
// quarter of the leaf tier's bounds.
type SharedStats struct {
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Fills           uint64 `json:"fills"`
	Waits           uint64 `json:"waits"`
	Rejects         uint64 `json:"rejects"`
	Entries         int    `json:"entries"`
	Bytes           int64  `json:"bytes"`
	InteriorHits    uint64 `json:"interior_hits"`
	InteriorMisses  uint64 `json:"interior_misses"`
	InteriorEntries int    `json:"interior_entries"`
	InteriorBytes   int64  `json:"interior_bytes"`
	// Remote* attribute the fleet KV tier: shared-tier fills answered
	// by the networked store (hits), fills that fell through to local
	// compute after asking it (misses), and entries this process
	// offered to the fleet (puts). All zero when no backend is
	// attached.
	RemoteHits   uint64 `json:"remote_hits"`
	RemoteMisses uint64 `json:"remote_misses"`
	RemotePuts   uint64 `json:"remote_puts"`
	// RemoteBreaker is the KV client's circuit-breaker state ("closed",
	// "open", "half-open"; empty when no backend is attached or the
	// breaker is disabled). RemoteTrips counts closed→open transitions;
	// RemoteShortCircuits counts requests answered instantly as misses
	// while the breaker was open — each one is a KV timeout that was
	// not paid.
	RemoteBreaker       string `json:"remote_breaker,omitempty"`
	RemoteTrips         uint64 `json:"remote_trips,omitempty"`
	RemoteShortCircuits uint64 `json:"remote_short_circuits,omitempty"`
}

// SharedStatsOf converts the engine's shared-cache counters — the
// single conversion point, shared by the serving /v1/shards handler
// (which aggregates one per catalog) and the benchmark reports.
func SharedStatsOf(st core.SharedStats) SharedStats {
	return SharedStats{
		Hits:                st.Hits,
		Misses:              st.Misses,
		Fills:               st.Fills,
		Waits:               st.Waits,
		Rejects:             st.Rejects,
		Entries:             st.Entries,
		Bytes:               st.Bytes,
		InteriorHits:        st.InteriorHits,
		InteriorMisses:      st.InteriorMisses,
		InteriorEntries:     st.InteriorEntries,
		InteriorBytes:       st.InteriorBytes,
		RemoteHits:          st.RemoteHits,
		RemoteMisses:        st.RemoteMisses,
		RemotePuts:          st.RemotePuts,
		RemoteBreaker:       st.RemoteBreaker,
		RemoteTrips:         st.RemoteTrips,
		RemoteShortCircuits: st.RemoteShortCircuits,
	}
}

// breakerRank orders breaker states by badness so an aggregate over
// many catalogs/shards reports the worst one (an "open" anywhere is
// the signal an operator needs to see).
func breakerRank(state string) int {
	switch state {
	case "open":
		return 3
	case "half-open":
		return 2
	case "closed":
		return 1
	default: // "" — no backend / breaker disabled
		return 0
	}
}

// Add accumulates another snapshot into s (shard-level aggregation over
// the catalogs homed on a shard).
func (s *SharedStats) Add(o SharedStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Fills += o.Fills
	s.Waits += o.Waits
	s.Rejects += o.Rejects
	s.Entries += o.Entries
	s.Bytes += o.Bytes
	s.InteriorHits += o.InteriorHits
	s.InteriorMisses += o.InteriorMisses
	s.InteriorEntries += o.InteriorEntries
	s.InteriorBytes += o.InteriorBytes
	s.RemoteHits += o.RemoteHits
	s.RemoteMisses += o.RemoteMisses
	s.RemotePuts += o.RemotePuts
	if breakerRank(o.RemoteBreaker) > breakerRank(s.RemoteBreaker) {
		s.RemoteBreaker = o.RemoteBreaker
	}
	s.RemoteTrips += o.RemoteTrips
	s.RemoteShortCircuits += o.RemoteShortCircuits
}

// ShardStats describes one shard: GET /v1/shards. Shared aggregates
// the per-catalog shared-cache counters of every catalog homed on the
// shard.
type ShardStats struct {
	Shard           int      `json:"shard"`
	Catalogs        []string `json:"catalogs"`
	Sessions        int      `json:"sessions"`
	SessionsCreated uint64   `json:"sessions_created"`
	// SessionsReaped counts sessions removed by the idle-TTL sweep
	// (abandoned clients whose pooled buffers were reclaimed).
	SessionsReaped uint64      `json:"sessions_reaped"`
	Recalcs        uint64      `json:"recalcs"`
	Shared         SharedStats `json:"shared"`
}

// CatalogInfo describes one served catalog: GET /v1/catalogs.
type CatalogInfo struct {
	Name  string `json:"name"`
	Shard int    `json:"shard"`
	// Tables is empty when the catalog is quarantined (its data never
	// loaded cleanly).
	Tables []string `json:"tables"`
	// Quarantined marks a catalog whose segment file failed checksum
	// verification; sessions on it answer 503 until the daemon restarts
	// with a repaired file.
	Quarantined bool `json:"quarantined,omitempty"`
}

// ShardHealth is one shard's live load in a HealthResponse — the
// router's drain logic watches Sessions to decide when a moved shard
// has quiesced on its old owner.
type ShardHealth struct {
	Shard    int      `json:"shard"`
	Sessions int      `json:"sessions"`
	Catalogs []string `json:"catalogs"`
}

// HealthResponse is a node's self-report: GET /v1/health on visdbd.
// The router's health checker polls it; anything other than a timely
// 200 marks the node down.
type HealthResponse struct {
	Status   string `json:"status"` // always "ok" when the node answers
	UptimeNS int64  `json:"uptime_ns"`
	Sessions int    `json:"sessions"` // total live sessions
	// Shards carries every serving shard's session count and homed
	// catalogs, in shard order.
	Shards []ShardHealth `json:"shards"`
	// Quarantined names catalogs refusing service over corrupt data.
	Quarantined []string `json:"quarantined,omitempty"`
	// PlacementEpoch/PlacementHash are set only when the responder is a
	// router (GET /v1/health on visdbrouter). The hash is a digest of
	// the shard→owner map; because placement is a pure function of the
	// healthy member set, any two routers probing the same fleet
	// converge to the same hash once their health views agree. The
	// epoch is router-local (incremented on every placement change) and
	// is NOT comparable across routers — compare hashes.
	PlacementEpoch uint64 `json:"placement_epoch,omitempty"`
	PlacementHash  string `json:"placement_hash,omitempty"`
	// HealthyMembers counts members currently passing health checks
	// (router responses only).
	HealthyMembers int `json:"healthy_members,omitempty"`
}

// FleetMember is one visdbd node as the router sees it:
// GET /v1/fleet.
type FleetMember struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Shards lists the shard indexes currently routed to this member.
	Shards []int `json:"shards"`
	// Sessions is the node's live session count from its last health
	// report (stale while the node is down).
	Sessions int `json:"sessions"`
}

// KVStats mirrors the shared store's own counters inside a fleet
// report (zero-valued when the fleet runs without a KV tier).
type KVStats struct {
	Gets    uint64 `json:"gets"`
	Hits    uint64 `json:"hits"`
	Puts    uint64 `json:"puts"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// FleetStats aggregates the whole fleet: GET /v1/fleet on the router.
// Shared sums every member's per-shard shared-cache counters, so
// SharedHitRate = Shared.Hits / (Shared.Hits + Shared.Misses) is the
// fleet-wide probability that a leaf fill was answered without
// recomputation.
type FleetStats struct {
	Shards        int           `json:"shards"`
	Members       []FleetMember `json:"members"`
	Sessions      int           `json:"sessions"`
	Recalcs       uint64        `json:"recalcs"`
	Shared        SharedStats   `json:"shared"`
	SharedHitRate float64       `json:"shared_hit_rate"`
	KV            KVStats       `json:"kv"`
	// PlacementEpoch/PlacementHash mirror HealthResponse: the hash
	// identifies the current shard→owner map (equal across converged
	// routers), the epoch is this router's local change counter.
	PlacementEpoch uint64 `json:"placement_epoch"`
	PlacementHash  string `json:"placement_hash"`
}

// Machine-readable error codes carried in ErrorResponse.Code. Clients
// branch on these, never on the human-readable message.
const (
	// CodeDeadline: the operation exceeded the server's request
	// deadline and was rolled back; the session still serves its
	// previous result. Retrying (same Seq) is safe and resumes from
	// whatever leaf vectors the aborted run finished.
	CodeDeadline = "deadline"
	// CodeCanceled: the request's context was canceled before the
	// recalculation finished (client disconnect); rolled back like
	// CodeDeadline.
	CodeCanceled = "canceled"
	// CodeSeqConflict: the request's Seq is neither the last applied
	// number (replay) nor the next one (apply) — a lost or reordered
	// operation. The client must resynchronize its view.
	CodeSeqConflict = "seq_conflict"
	// CodeSessionCap: the catalog's shard is at its session limit;
	// retry after closing sessions or after the idle sweep.
	CodeSessionCap = "session_cap"
	// CodeCatalogQuarantined: the catalog's segment file failed
	// checksum verification; everything on this catalog answers 503
	// while other catalogs keep serving.
	CodeCatalogQuarantined = "catalog_quarantined"
	// CodeNothingToUndo: the session has no earlier state to revert
	// to.
	CodeNothingToUndo = "nothing_to_undo"
	// CodeNodeDown: the fleet router owns this request's shard on a
	// node that stopped answering health checks; the shard is being
	// replaced onto a healthy node. The session's state died with the
	// node — the client recreates the session (replaying its operation
	// log) after the Retry-After hint, and the new creation lands on
	// the shard's new owner.
	CodeNodeDown = "node_down"
	// CodeNoHealthyMembers: the fleet router has no healthy member to
	// place the request's shard on — every node is failing health
	// checks. Retryable after the Retry-After hint; the first member to
	// recover re-owns the whole shard map.
	CodeNoHealthyMembers = "no_healthy_members"
	// CodeSessionNotFound: the session ID names a serving shard but no
	// live session — it was reaped by the idle sweep, closed, or died
	// with its node (a replacement node serves the shard but never knew
	// the session). Retrying the same request cannot succeed; the
	// client must recreate the session and replay its operation log
	// (client.FleetSession automates exactly this).
	CodeSessionNotFound = "session_not_found"
)

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a machine-readable error class (one of the Code*
	// constants), empty for generic validation failures.
	Code string `json:"code,omitempty"`
}
