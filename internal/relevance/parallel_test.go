package relevance

import (
	"math"
	"math/rand"
	"testing"
)

// buildRandomTree makes a random tree with nLeaves leaves over n items.
func buildRandomTree(rng *rand.Rand, n, depth int) *Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		d := make([]float64, n)
		for i := range d {
			switch rng.Intn(10) {
			case 0:
				d[i] = math.NaN()
			case 1:
				d[i] = 0
			default:
				d[i] = rng.Float64() * 100
			}
		}
		return &Node{Op: Leaf, Weight: rng.Float64()*2 + 0.1, Dists: d}
	}
	op := NodeAnd
	if rng.Intn(2) == 0 {
		op = NodeOr
	}
	node := &Node{Op: op, Weight: rng.Float64() + 0.5}
	k := 2 + rng.Intn(3)
	for i := 0; i < k; i++ {
		node.Children = append(node.Children, buildRandomTree(rng, n, depth-1))
	}
	return node
}

// TestParallelMatchesSequential: concurrent evaluation must produce
// bit-identical results to the sequential evaluation.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 50 + rng.Intn(500)
		tree := buildRandomTree(rng, n, 3)
		seq, err := Evaluate(tree, n, EvalOptions{Budget: n / 2})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Evaluate(tree, n, EvalOptions{Budget: n / 2, Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Combined) != len(par.Combined) {
			t.Fatal("length mismatch")
		}
		for i := range seq.Combined {
			a, b := seq.Combined[i], par.Combined[i]
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				t.Fatalf("trial %d item %d: %v vs %v", trial, i, a, b)
			}
		}
		if len(seq.ByNode) != len(par.ByNode) {
			t.Fatalf("ByNode sizes: %d vs %d", len(seq.ByNode), len(par.ByNode))
		}
		for node, sv := range seq.ByNode {
			pv, ok := par.ByNode[node]
			if !ok {
				t.Fatal("missing node in parallel ByNode")
			}
			for i := range sv {
				if math.IsNaN(sv[i]) != math.IsNaN(pv[i]) || (!math.IsNaN(sv[i]) && sv[i] != pv[i]) {
					t.Fatalf("node vec diverged at %d", i)
				}
			}
		}
	}
}

// TestParallelErrorPropagates: a broken leaf surfaces from concurrent
// branches too.
func TestParallelErrorPropagates(t *testing.T) {
	bad := &Node{Op: NodeAnd, Children: []*Node{
		{Op: Leaf, Dists: make([]float64, 10)},
		{Op: Leaf, Dists: make([]float64, 3)}, // wrong length
	}}
	if _, err := Evaluate(bad, 10, EvalOptions{Parallel: true}); err == nil {
		t.Fatal("expected error from parallel evaluation")
	}
}
