package relevance

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the chunk-fused evaluator behind Evaluate. The
// node-at-a-time pipeline made ~7 O(n) passes per node — normalize the
// leaves (scan + selection + write), combine (read + write), scan the
// combined vector, re-normalize it (write) — each allocating an n-sized
// vector per node per run. The fused evaluator restructures the same
// arithmetic:
//
//  1. Leaf normalization ranges are computed first (a scan plus a
//     selection per leaf; nothing is written).
//  2. Each interior node runs ONE chunked pass that scales its leaf
//     children into their output buffers, finalizes interior children
//     in place, combines the scaled chunk, and folds the combined
//     chunk into the node's range statistics — all while the chunk is
//     cache-hot.
//  3. Output buffers come from EvalOptions.Alloc, so an interactive
//     session reruns with zero n-sized allocations.
//
// Every per-element transform and combination kernel is shared with
// Normalize/CombineAnd/CombineOr/CombineLp, so fused results are
// bit-identical to the reference pipeline (asserted by property tests).

// evalChunk is the fused pass chunk length: large enough to amortize
// the per-chunk bookkeeping, small enough that a chunk of every child
// vector fits in cache together.
const evalChunk = 4096

// EvalChunk exports the evaluator chunk length — the granularity of
// LeafChunkStats and of the deferred-root block pruning. Callers that
// synthesize per-chunk masks from external statistics (the dataset
// layer's per-segment footer stats) must check their unit matches.
const EvalChunk = evalChunk

// evaluateFused is the Evaluate implementation.
func evaluateFused(root *Node, n int, opts EvalOptions) (*Result, error) {
	if root == nil {
		return nil, fmt.Errorf("relevance: nil tree")
	}
	workers := 1
	if opts.Parallel {
		workers = opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	ctx := &fusedCtx{opts: opts, n: n, workers: workers,
		res: &Result{ByNode: make(map[*Node][]float64), n: n, alloc: opts.Alloc}}
	if opts.LazyLeaves {
		ctx.res.lazy = make(map[*Node]NormParams)
	}
	if opts.DeferRoot && deferralSafe(root, opts) {
		// Rank-before-scale: children evaluate fully (their passes are
		// needed for the root's normalization inputs), the root itself
		// stays raw and chunk-lazy — see rootrank.go. Unsafe transforms
		// (deferralSafe false) fall through to the eager root below.
		ctx.nodeScans = make(map[*Node][]rangeScan)
		if err := ctx.buildDeferredRoot(root); err != nil {
			return nil, err
		}
		return ctx.res, nil
	}
	vec, params, err := ctx.eval(root)
	if err != nil {
		return nil, err
	}
	if err := ctx.checkpoint(); err != nil {
		return nil, err
	}
	// Finalize the root: its combined vector scales in place (the
	// buffer is ctx-owned); a leaf root scales into a fresh buffer,
	// since node.Dists belongs to the caller, and so does a borrowed
	// root (an interior cache hit's read-only vector). The root always
	// materializes — Combined is the interface's primary output.
	out := vec
	if root.Op == Leaf || ctx.res.borrowed[root] {
		out = ctx.alloc()
	}
	ctx.forChunks(func(_, _, lo, hi int) {
		applyRange(out[lo:hi], vec[lo:hi], params)
	})
	if err := ctx.checkpoint(); err != nil {
		return nil, err
	}
	ctx.res.ByNode[root] = out
	ctx.res.Combined = out
	return ctx.res, nil
}

// fusedCtx carries one evaluation's state. Unlike the old recursive
// evaluator, nodes are processed strictly bottom-up on the calling
// goroutine — concurrency lives inside the chunk passes — so ByNode
// needs no locking.
type fusedCtx struct {
	opts    EvalOptions
	n       int
	workers int
	res     *Result
	// nodeScans retains each interior node's per-chunk range scans when
	// the root is deferred: the block-pruning bounds of the root fold
	// the chunk minima (and NaN counts) of its interior children.
	nodeScans map[*Node][]rangeScan
	// sigs/optsSig memoize the interior cache signatures (interior.go);
	// populated only when the Interior hooks are set.
	sigs    map[*Node]string
	optsSig string
}

// alloc returns an n-sized output buffer, from the caller's pool when
// one is provided. Buffers are fully overwritten before being read, so
// recycled (dirty) buffers are fine.
func (c *fusedCtx) alloc() []float64 {
	if c.opts.Alloc != nil {
		if b := c.opts.Alloc(c.n); len(b) == c.n {
			return b
		}
	}
	return make([]float64, c.n)
}

// keepOf is the per-node reduction count of the reduction-first
// normalization (0 = keep everything, the A1 ablation).
func (c *fusedCtx) keepOf(node *Node) int {
	if c.opts.NaiveNormalize {
		return 0
	}
	return KeepCount(c.opts.Budget, c.n, node.EffWeight())
}

// checkpoint polls the caller's cancellation hook (always nil-safe).
func (c *fusedCtx) checkpoint() error {
	if c.opts.Checkpoint == nil {
		return nil
	}
	return c.opts.Checkpoint()
}

// eval processes one subtree and returns the node's UNSCALED vector
// together with the params that scale it: for leaves the raw Dists, for
// interior nodes the combined-but-not-yet-renormalized vector (already
// stored in ByNode; the parent — or the root finalizer — scales it in
// place to its final form).
func (c *fusedCtx) eval(node *Node) ([]float64, NormParams, error) {
	if err := c.checkpoint(); err != nil {
		return nil, NormParams{}, err
	}
	switch node.Op {
	case Leaf:
		if len(node.Dists) != c.n {
			return nil, NormParams{}, fmt.Errorf("relevance: leaf %q has %d distances, want %d", node.Label, len(node.Dists), c.n)
		}
		if node.Quantiles != nil {
			return node.Dists, node.Quantiles.Range(c.keepOf(node)), nil
		}
		return node.Dists, NormRange(node.Dists, c.keepOf(node)), nil
	case NodeAnd, NodeOr:
		if len(node.Children) == 0 {
			return nil, NormParams{}, fmt.Errorf("relevance: %q has no children", node.Label)
		}
		if node.Op == NodeAnd && c.opts.And == ANDLp && (c.opts.LpP < 1 || c.opts.LpP != c.opts.LpP) {
			// Match CombineLp's validation (NaN compares unequal to itself).
			return nil, NormParams{}, fmt.Errorf("relevance: Lp needs p >= 1, got %v", c.opts.LpP)
		}
		var sig string
		if c.opts.InteriorFetch != nil || c.opts.InteriorStore != nil {
			sig = c.sig(node)
		}
		if c.opts.InteriorFetch != nil {
			if e := c.opts.InteriorFetch(sig); c.entryFits(e) {
				// The subtree's raw combined vector is cached: skip the
				// whole subtree's fused passes, borrow the vectors
				// read-only, and take the normalization ranges from the
				// entries' sketches — provided every skipped descendant
				// stays materializable from its own entry.
				if entries, ok := c.collectSubtreeEntries(node); ok {
					return c.useInteriorEntry(node, e, entries)
				}
			}
		}
		k := len(node.Children)
		raw := make([][]float64, k)    // child vectors, unscaled
		scaled := make([][]float64, k) // materialized destination, nil for lazy leaves
		cparams := make([]NormParams, k)
		weights := make([]float64, k)
		for j, child := range node.Children {
			v, p, err := c.eval(child)
			if err != nil {
				return nil, NormParams{}, err
			}
			raw[j], cparams[j] = v, p
			w := child.EffWeight()
			if w < 0 || w != w {
				return nil, NormParams{}, fmt.Errorf("relevance: invalid weight %v at %d", w, j)
			}
			weights[j] = w
			switch {
			case child.Op != Leaf && c.res.borrowed[child]:
				// A borrowed interior child (cache hit) is read-only:
				// scale into a fresh buffer and re-point ByNode at it —
				// the same final state the in-place path reaches.
				scaled[j] = c.alloc()
				c.res.ByNode[child] = scaled[j]
			case child.Op != Leaf:
				// Interior children finalize in place: their ByNode
				// buffer holds the raw combined vector until this pass
				// scales it.
				scaled[j] = v
			case c.opts.LazyLeaves:
				// Lazy leaves scale into chunk-local scratch for the
				// combination and materialize later via Result.Vec.
				c.res.lazy[child] = p
			default:
				// Eager leaves scale into their own output buffer
				// during the fused pass below.
				scaled[j] = c.alloc()
				c.res.ByNode[child] = scaled[j]
			}
		}
		ws, effSum := resolveWeights(weights, k)
		out := c.alloc()
		// The fused pass: scale every child's chunk (into its buffer, in
		// place, or into worker-local scratch that stays L1-resident),
		// combine the chunk, and fold it into the node's range scan —
		// one cache-hot sweep instead of 2k+3 vector-length passes.
		scratch := make([][][]float64, c.workers)
		views := make([][][]float64, c.workers)
		for w := range scratch {
			scratch[w] = make([][]float64, k)
			views[w] = make([][]float64, k)
			for j, child := range node.Children {
				if child.Op == Leaf && c.opts.LazyLeaves {
					scratch[w][j] = make([]float64, evalChunk)
				}
			}
		}
		chunkStats := make([]rangeScan, c.chunkCount())
		c.forChunks(func(wid, ci, lo, hi int) {
			vs := views[wid]
			for j := range node.Children {
				src, p := raw[j], cparams[j]
				if buf := scratch[wid][j]; buf != nil {
					dst := buf[:hi-lo]
					applyRange(dst, src[lo:hi], p)
					vs[j] = dst
					continue
				}
				dst := scaled[j][lo:hi]
				applyRange(dst, src[lo:hi], p)
				vs[j] = dst
			}
			dst := out[lo:hi]
			if node.Op == NodeAnd {
				switch c.opts.And {
				case ANDEuclidean:
					combineLpRange(dst, vs, ws, 2, 0, hi-lo)
				case ANDLp:
					combineLpRange(dst, vs, ws, c.opts.LpP, 0, hi-lo)
				default:
					combineAndRange(dst, vs, ws, effSum, c.opts.Mode, 0, hi-lo)
				}
			} else {
				combineOrRange(dst, vs, ws, effSum, c.opts.Mode, 0, hi-lo)
			}
			chunkStats[ci] = scanRange(out, lo, hi)
		})
		if err := c.checkpoint(); err != nil {
			// A canceled pass may have skipped chunks: nothing below
			// (stats, caches, ByNode) may see the partial buffers.
			return nil, NormParams{}, err
		}
		if c.nodeScans != nil {
			c.nodeScans[node] = chunkStats
		}
		// Merge per-chunk scans in chunk order: min/max/count merging is
		// exact and order-independent, so parallel chunk execution stays
		// bit-identical to the serial sweep.
		stats := newRangeScan()
		for _, st := range chunkStats {
			stats.merge(st)
		}
		if c.opts.InteriorStore != nil {
			// Cache the RAW vector (out is scaled in place by the parent
			// later; the entry copies it) with its per-chunk scans and
			// sketch, so the next structurally identical rerun skips this
			// whole pass.
			c.opts.InteriorStore(sig, newInteriorEntry(out, chunkStats, stats))
		}
		c.res.ByNode[node] = out
		return out, rangeOf(stats, out, c.keepOf(node)), nil
	default:
		return nil, NormParams{}, fmt.Errorf("relevance: unknown node op %d", node.Op)
	}
}

// chunkCount is how many evalChunk-sized chunks cover [0, n).
func (c *fusedCtx) chunkCount() int {
	return (c.n + evalChunk - 1) / evalChunk
}

// forChunks runs fn over [0, n) in evalChunk-sized chunks, concurrently
// when the evaluation is parallel. Chunks are disjoint and every index
// is covered exactly once, so fn may write per-index slots of shared
// slices without synchronization; a shared atomic cursor hands chunks
// to whichever worker is free. wid identifies the executing worker
// (0 ≤ wid < c.workers) for worker-local scratch.
func (c *fusedCtx) forChunks(fn func(wid, ci, lo, hi int)) {
	n := c.n
	nchunks := c.chunkCount()
	run := func(wid, ci int) {
		// Per-chunk cancellation: once the caller's checkpoint trips,
		// remaining chunks are skipped — the caller re-polls after the
		// pass and discards the partial result.
		if c.opts.Checkpoint != nil && c.opts.Checkpoint() != nil {
			return
		}
		lo := ci * evalChunk
		hi := lo + evalChunk
		if hi > n {
			hi = n
		}
		fn(wid, ci, lo, hi)
	}
	if c.workers <= 1 || nchunks <= 1 {
		for ci := 0; ci < nchunks; ci++ {
			run(0, ci)
		}
		return
	}
	workers := c.workers
	if workers > nchunks {
		workers = nchunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func(wid int) {
		for {
			ci := int(next.Add(1)) - 1
			if ci >= nchunks {
				return
			}
			run(wid, ci)
		}
	}
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			work(wid)
		}(w)
	}
	work(0)
	wg.Wait()
}
