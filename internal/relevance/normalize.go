// Package relevance implements the mathematical core of VisDB
// (section 5.2 of the paper): normalization of per-predicate distances
// to a fixed [0, 255] range with the reduction-first fix for outlier
// distortion, weighted combination of distances over the query's
// AND/OR structure (weighted arithmetic mean for AND, weighted geometric
// mean for OR), alternative Lp/Euclidean/Mahalanobis combiners, and the
// relevance factor as the inverse of the combined distance.
package relevance

import (
	"math"

	"repro/internal/topk"
)

// Scale is the fixed normalization range upper bound; distances map to
// [0, Scale] (the paper's [0, 255], one value per colormap level).
const Scale = 255.0

// Normalized is the result of normalizing a distance vector.
type Normalized struct {
	// Scaled holds the normalized distances in [0, Scale]; NaN entries
	// mark uncolorable items, values beyond DMax clamp to Scale.
	Scaled []float64
	// DMin and DMax are the source range that mapped to [0, Scale].
	DMin, DMax float64
	// Kept is the number of items that determined the range.
	Kept int
}

// KeepCount returns how many items determine the normalization range of
// a selection predicate with weight w given a display budget of r items:
// the paper reduces each predicate's considered items "to a number that
// is proportional to r/(n·wⱼ)" — inverse in the weight, because "the
// less a selection predicate is weighted, the higher is the probability
// that data with a greater distance for this selection predicate are
// needed". The count is clamped to [1, n]; weights below 0.05 are
// floored so a near-zero weight keeps everything rather than dividing by
// zero.
func KeepCount(r, n int, w float64) int {
	if n <= 0 {
		return 0
	}
	if r <= 0 {
		r = n
	}
	if w < 0.05 || math.IsNaN(w) {
		w = 0.05
	}
	c := int(math.Ceil(float64(r) / w))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// Normalize linearly maps dists onto [0, Scale], with the range
// [dmin, dmax] determined only by the keep smallest finite values —
// the reduction-first normalization of section 5.2. Without it, "a
// single data item with an exceptionally high or low value may cause a
// completely different transformation" that erases the predicate's
// influence on the overall answer. Values beyond dmax clamp to Scale;
// NaNs pass through (uncolorable); keep <= 0 means use every finite
// value (the naive normalization, kept for the A1 ablation).
func Normalize(dists []float64, keep int) Normalized {
	// One scan finds the finite range and counts without materializing a
	// filtered copy (the previous implementation built and fully sorted
	// a copy of every finite value — the O(n log n) cost the paper calls
	// the dominating one, plus an n-sized allocation per predicate).
	nFinite, nNegInf := 0, 0
	minFinite, maxFinite := math.Inf(1), math.Inf(-1)
	for _, d := range dists {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			if math.IsInf(d, -1) {
				nNegInf++
			}
			continue
		}
		nFinite++
		if d < minFinite {
			minFinite = d
		}
		if d > maxFinite {
			maxFinite = d
		}
	}
	out := Normalized{Scaled: make([]float64, len(dists))}
	if nFinite == 0 {
		for i, d := range dists {
			if math.IsNaN(d) {
				out.Scaled[i] = math.NaN()
			} else if math.IsInf(d, 1) {
				out.Scaled[i] = Scale
			} else {
				out.Scaled[i] = 0
			}
		}
		return out
	}
	if keep <= 0 || keep > nFinite {
		keep = nFinite
	}
	out.Kept = keep
	out.DMin = minFinite
	// Distances are non-negative with 0 meaning "exactly fulfilled";
	// anchor the range at 0 so the yellow end of the colormap stays
	// reserved for correct answers. Without this, a predicate nobody
	// fulfills would paint its best approximate answer yellow —
	// contradicting the paper's observation that windows may be "almost
	// black in cases where all the data are completely wrong results".
	// Signed inputs (negative minimum) keep their own minimum.
	if out.DMin > 0 {
		out.DMin = 0
	}
	// The normalization range only needs the keep-th smallest finite
	// value, not a full sort of the vector. Three strategies, all
	// returning the same order statistic: everything kept → the max from
	// the scan; a small keep (the display-budget case) → a bounded
	// max-heap streaming the vector in O(k) space; otherwise → an
	// expected-O(n) quickselect over a scratch copy.
	switch {
	case keep >= nFinite:
		out.DMax = maxFinite
	case keep <= nFinite/8:
		sel := topk.NewBounded(keep)
		for _, d := range dists {
			if !math.IsInf(d, 0) { // NaNs are ignored by Offer
				sel.Offer(d)
			}
		}
		out.DMax = sel.Threshold()
	default:
		// Threshold orders -Inf first and NaN/+Inf past the finite
		// values, so the keep-th smallest finite value sits at rank
		// keep + #(-Inf) of the unfiltered copy.
		scratch := append([]float64(nil), dists...)
		out.DMax = topk.Threshold(scratch, keep+nNegInf)
	}
	span := out.DMax - out.DMin
	for i, d := range dists {
		switch {
		case math.IsNaN(d):
			out.Scaled[i] = math.NaN()
		case math.IsInf(d, 1):
			out.Scaled[i] = Scale
		case math.IsInf(d, -1):
			out.Scaled[i] = 0
		case span == 0:
			if d > out.DMax {
				out.Scaled[i] = Scale
			} else {
				out.Scaled[i] = 0
			}
		default:
			s := (d - out.DMin) / span * Scale
			if s < 0 {
				s = 0
			}
			if s > Scale {
				s = Scale
			}
			out.Scaled[i] = s
		}
	}
	return out
}

// RelevanceFactor converts a combined distance into the relevance
// factor: "the relevance factor is determined as the inverse of that
// distance value". Any strictly decreasing function yields the same
// ranking; 1/(1+D) keeps factors in (0, 1] with exact answers at 1.
// NaN distances give relevance 0 (uncolorable items rank last).
func RelevanceFactor(combined float64) float64 {
	if math.IsNaN(combined) {
		return 0
	}
	if combined < 0 {
		combined = -combined
	}
	return 1 / (1 + combined)
}

// RelevanceFactors applies RelevanceFactor elementwise.
func RelevanceFactors(combined []float64) []float64 {
	out := make([]float64, len(combined))
	for i, d := range combined {
		out[i] = RelevanceFactor(d)
	}
	return out
}
