// Package relevance implements the mathematical core of VisDB
// (section 5.2 of the paper): normalization of per-predicate distances
// to a fixed [0, 255] range with the reduction-first fix for outlier
// distortion, weighted combination of distances over the query's
// AND/OR structure (weighted arithmetic mean for AND, weighted geometric
// mean for OR), alternative Lp/Euclidean/Mahalanobis combiners, and the
// relevance factor as the inverse of the combined distance.
package relevance

import (
	"math"
	"sort"

	"repro/internal/topk"
)

// Scale is the fixed normalization range upper bound; distances map to
// [0, Scale] (the paper's [0, 255], one value per colormap level).
const Scale = 255.0

// Normalized is the result of normalizing a distance vector.
type Normalized struct {
	// Scaled holds the normalized distances in [0, Scale]; NaN entries
	// mark uncolorable items, values beyond DMax clamp to Scale.
	Scaled []float64
	// DMin and DMax are the source range that mapped to [0, Scale].
	DMin, DMax float64
	// Kept is the number of items that determined the range.
	Kept int
}

// KeepCount returns how many items determine the normalization range of
// a selection predicate with weight w given a display budget of r items:
// the paper reduces each predicate's considered items "to a number that
// is proportional to r/(n·wⱼ)" — inverse in the weight, because "the
// less a selection predicate is weighted, the higher is the probability
// that data with a greater distance for this selection predicate are
// needed". The count is clamped to [1, n]; weights below 0.05 are
// floored so a near-zero weight keeps everything rather than dividing by
// zero.
func KeepCount(r, n int, w float64) int {
	if n <= 0 {
		return 0
	}
	if r <= 0 {
		r = n
	}
	if w < 0.05 || math.IsNaN(w) {
		w = 0.05
	}
	c := int(math.Ceil(float64(r) / w))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// NormParams captures a normalization transform without materializing
// the scaled vector: the source range [DMin, DMax] that maps onto
// [0, Scale] and the number of items that determined it. The fused
// evaluator computes every node's params first (cheap scans and
// selections) and applies them element-by-element inside its chunked
// combination passes.
type NormParams struct {
	DMin, DMax float64
	Kept       int
	// NoFinite marks a vector with no finite values: everything maps to
	// 0 except NaN (passes through) and +Inf (maps to Scale).
	NoFinite bool
}

// Apply scales one distance by the params, replicating Normalize's
// per-element mapping exactly: NaNs pass through (uncolorable), +Inf
// clamps to Scale, -Inf to 0, and a degenerate range maps everything at
// or below DMax to 0.
func (p NormParams) Apply(d float64) float64 {
	switch {
	case math.IsNaN(d):
		return math.NaN()
	case math.IsInf(d, 1):
		return Scale
	case p.NoFinite || math.IsInf(d, -1):
		return 0
	}
	span := p.DMax - p.DMin
	if span == 0 {
		if d > p.DMax {
			return Scale
		}
		return 0
	}
	s := (d - p.DMin) / span * Scale
	if s < 0 {
		s = 0
	}
	if s > Scale {
		s = Scale
	}
	return s
}

// applyRange scales src into dst by p — the vectorized form of Apply
// with the parameter tests hoisted out of the loop (Apply itself is too
// branchy for the inliner, and the fused passes call it millions of
// times per interactive rerun). dst and src may alias (in-place
// finalization of interior nodes). Bit-identical to Apply per element.
func applyRange(dst, src []float64, p NormParams) {
	if p.NoFinite {
		for i, d := range src {
			switch {
			case math.IsNaN(d):
				dst[i] = math.NaN()
			case math.IsInf(d, 1):
				dst[i] = Scale
			default:
				dst[i] = 0
			}
		}
		return
	}
	span := p.DMax - p.DMin
	if span == 0 {
		for i, d := range src {
			switch {
			case math.IsNaN(d):
				dst[i] = math.NaN()
			case math.IsInf(d, 1):
				dst[i] = Scale
			case math.IsInf(d, -1):
				dst[i] = 0
			case d > p.DMax:
				dst[i] = Scale
			default:
				dst[i] = 0
			}
		}
		return
	}
	for i, d := range src {
		switch {
		case math.IsNaN(d):
			dst[i] = math.NaN()
		case math.IsInf(d, 1):
			dst[i] = Scale
		case math.IsInf(d, -1):
			dst[i] = 0
		default:
			s := (d - p.DMin) / span * Scale
			if s < 0 {
				s = 0
			}
			if s > Scale {
				s = Scale
			}
			dst[i] = s
		}
	}
}

// rangeScan accumulates the single-pass statistics NormRange needs:
// finite count and extremes plus the -Inf count the quickselect rank
// correction uses, and the NaN count the rank-before-scale path uses
// to attribute uncolorable items without materializing the scaled
// vector. Chunked scans merge exactly (sums, min, max are
// order-independent), so fused parallel passes stay bit-identical to
// the serial scan.
type rangeScan struct {
	nFinite, nNegInf, nNaN int
	minFinite, maxFinite   float64
}

func newRangeScan() rangeScan {
	return rangeScan{minFinite: math.Inf(1), maxFinite: math.Inf(-1)}
}

// add folds one distance into the scan.
func (s *rangeScan) add(d float64) {
	if math.IsNaN(d) || math.IsInf(d, 0) {
		if math.IsInf(d, -1) {
			s.nNegInf++
		} else if !math.IsInf(d, 1) {
			s.nNaN++
		}
		return
	}
	s.nFinite++
	if d < s.minFinite {
		s.minFinite = d
	}
	if d > s.maxFinite {
		s.maxFinite = d
	}
}

// merge folds another (disjoint) scan into s.
func (s *rangeScan) merge(o rangeScan) {
	s.nFinite += o.nFinite
	s.nNegInf += o.nNegInf
	s.nNaN += o.nNaN
	if o.minFinite < s.minFinite {
		s.minFinite = o.minFinite
	}
	if o.maxFinite > s.maxFinite {
		s.maxFinite = o.maxFinite
	}
}

// scanRange scans dists[lo:hi].
func scanRange(dists []float64, lo, hi int) rangeScan {
	s := newRangeScan()
	for _, d := range dists[lo:hi] {
		s.add(d)
	}
	return s
}

// NormRange computes the normalization params of dists with the
// reduction-first range estimation (keep smallest finite values; see
// Normalize).
func NormRange(dists []float64, keep int) NormParams {
	return rangeOf(scanRange(dists, 0, len(dists)), dists, keep)
}

// LeafQuantiles is a sorted index over one leaf's finite distances: a
// one-time O(n log n) investment that answers NormRange for ANY keep in
// O(1). Weighting-factor changes move each leaf's keep count
// (KeepCount is inverse in the weight), so an interactive session
// builds this for its hot leaves and reruns without any per-leaf scan
// or selection. The derived params are bit-identical to NormRange: the
// keep-th smallest finite value is the same order statistic whichever
// way it is found.
type LeafQuantiles struct {
	sorted    []float64 // finite values, ascending
	minFinite float64
	nNegInf   int
	nNaN      int
}

// BuildLeafQuantiles sorts the finite values of dists. The input is
// not retained.
func BuildLeafQuantiles(dists []float64) *LeafQuantiles {
	q := &LeafQuantiles{minFinite: math.Inf(1)}
	q.sorted = make([]float64, 0, len(dists))
	for _, d := range dists {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			if math.IsInf(d, -1) {
				q.nNegInf++
			} else if !math.IsInf(d, 1) {
				q.nNaN++
			}
			continue
		}
		q.sorted = append(q.sorted, d)
	}
	sort.Float64s(q.sorted)
	if len(q.sorted) > 0 {
		q.minFinite = q.sorted[0]
	}
	return q
}

// NaNs reports how many of the indexed vector's entries were NaN — the
// uncolorable count of a leaf root, answered in O(1).
func (q *LeafQuantiles) NaNs() int { return q.nNaN }

// Size returns the number of float64 values the index retains — the
// memory accounting handle for caches that keep promoted indexes
// resident.
func (q *LeafQuantiles) Size() int { return len(q.sorted) }

// Range answers NormRange(dists, keep) for the indexed vector.
func (q *LeafQuantiles) Range(keep int) NormParams {
	nFinite := len(q.sorted)
	if nFinite == 0 {
		return NormParams{NoFinite: true}
	}
	if keep <= 0 || keep > nFinite {
		keep = nFinite
	}
	p := NormParams{Kept: keep, DMin: q.minFinite}
	if p.DMin > 0 {
		p.DMin = 0
	}
	p.DMax = q.sorted[keep-1]
	return p
}

// LeafChunkStats summarizes one leaf's raw distances per evaluator
// chunk: the minimum (over non-NaN values, -Inf included) and the NaN
// count of every evalChunk-sized block. The block-pruning pass of the
// rank-before-scale pipeline folds these into per-chunk lower bounds
// on the root's raw combined value — because the scaling transform is
// monotone, Apply(chunk raw minimum) IS the chunk minimum of the
// scaled child values — and the NaN counts gate which chunks are
// provably NaN-free (a chunk is only skippable when no child can make
// a combined value uncolorable there).
//
// Like LeafQuantiles, a LeafChunkStats is a per-leaf index the session
// cache builds once for a hot leaf and reuses across every
// recalculation; it must index exactly the vector it was built from.
type LeafChunkStats struct {
	mins []float64
	nans []int32
}

// BuildLeafChunkStats scans dists once. The input is not retained.
func BuildLeafChunkStats(dists []float64) *LeafChunkStats {
	return BuildLeafChunkStatsMasked(dists, nil)
}

// BuildLeafChunkStatsMasked is BuildLeafChunkStats with a per-chunk
// shortcut: a chunk whose zero entry is true is known to hold only
// exact zeros (the segment-stats pushdown proved its range distance 0
// without decoding), so its stats — min 0, no NaNs — are synthesized
// without scanning. This is how cold file-backed scans hand the
// deferred-root block pruning its bounds: the skipped chunks' entries
// come straight from the catalog footer's per-segment statistics. zero
// may be nil or shorter than the chunk count (missing entries scan
// normally); callers must size its chunks by EvalChunk.
func BuildLeafChunkStatsMasked(dists []float64, zero []bool) *LeafChunkStats {
	nchunks := (len(dists) + evalChunk - 1) / evalChunk
	s := &LeafChunkStats{mins: make([]float64, nchunks), nans: make([]int32, nchunks)}
	for ci := 0; ci < nchunks; ci++ {
		if ci < len(zero) && zero[ci] {
			s.mins[ci], s.nans[ci] = 0, 0
			continue
		}
		lo := ci * evalChunk
		hi := lo + evalChunk
		if hi > len(dists) {
			hi = len(dists)
		}
		min := math.Inf(1)
		nan := int32(0)
		for _, d := range dists[lo:hi] {
			if math.IsNaN(d) {
				nan++
				continue
			}
			if d < min {
				min = d
			}
		}
		s.mins[ci], s.nans[ci] = min, nan
	}
	return s
}

// Chunks returns the number of indexed chunks.
func (s *LeafChunkStats) Chunks() int { return len(s.mins) }

// Size returns the number of 8-byte words the index retains — the
// memory-accounting handle for caches keeping it resident.
func (s *LeafChunkStats) Size() int { return len(s.mins) + (len(s.nans)+1)/2 }

// rangeOf derives NormParams from a completed scan of dists. The
// selection strategies must see the same full vector the scan covered.
func rangeOf(st rangeScan, dists []float64, keep int) NormParams {
	if st.nFinite == 0 {
		return NormParams{NoFinite: true}
	}
	if keep <= 0 || keep > st.nFinite {
		keep = st.nFinite
	}
	p := NormParams{Kept: keep, DMin: st.minFinite}
	// Distances are non-negative with 0 meaning "exactly fulfilled";
	// anchor the range at 0 so the yellow end of the colormap stays
	// reserved for correct answers. Without this, a predicate nobody
	// fulfills would paint its best approximate answer yellow —
	// contradicting the paper's observation that windows may be "almost
	// black in cases where all the data are completely wrong results".
	// Signed inputs (negative minimum) keep their own minimum.
	if p.DMin > 0 {
		p.DMin = 0
	}
	// The normalization range only needs the keep-th smallest finite
	// value, not a full sort of the vector. Three strategies, all
	// returning the same order statistic: everything kept → the max from
	// the scan; a small keep (the display-budget case) → a bounded
	// max-heap streaming the vector in O(k) space; otherwise → an
	// expected-O(n) quickselect over a scratch copy.
	switch {
	case keep >= st.nFinite:
		p.DMax = st.maxFinite
	case keep <= st.nFinite/8:
		sel := topk.NewBounded(keep)
		for _, d := range dists {
			if !math.IsInf(d, 0) { // NaNs are ignored by Offer
				sel.Offer(d)
			}
		}
		p.DMax = sel.Threshold()
	default:
		// Threshold orders -Inf first and NaN/+Inf past the finite
		// values, so the keep-th smallest finite value sits at rank
		// keep + #(-Inf) of the unfiltered copy.
		scratch := append([]float64(nil), dists...)
		p.DMax = topk.Threshold(scratch, keep+st.nNegInf)
	}
	return p
}

// Normalize linearly maps dists onto [0, Scale], with the range
// [dmin, dmax] determined only by the keep smallest finite values —
// the reduction-first normalization of section 5.2. Without it, "a
// single data item with an exceptionally high or low value may cause a
// completely different transformation" that erases the predicate's
// influence on the overall answer. Values beyond dmax clamp to Scale;
// NaNs pass through (uncolorable); keep <= 0 means use every finite
// value (the naive normalization, kept for the A1 ablation).
func Normalize(dists []float64, keep int) Normalized {
	// One scan finds the finite range and counts without materializing a
	// filtered copy (the previous implementation built and fully sorted
	// a copy of every finite value — the O(n log n) cost the paper calls
	// the dominating one, plus an n-sized allocation per predicate).
	p := NormRange(dists, keep)
	out := Normalized{Scaled: make([]float64, len(dists))}
	if !p.NoFinite {
		out.DMin, out.DMax, out.Kept = p.DMin, p.DMax, p.Kept
	}
	for i, d := range dists {
		out.Scaled[i] = p.Apply(d)
	}
	return out
}

// RelevanceFactor converts a combined distance into the relevance
// factor: "the relevance factor is determined as the inverse of that
// distance value". Any strictly decreasing function yields the same
// ranking; 1/(1+D) keeps factors in (0, 1] with exact answers at 1.
// NaN distances give relevance 0 (uncolorable items rank last).
func RelevanceFactor(combined float64) float64 {
	if math.IsNaN(combined) {
		return 0
	}
	if combined < 0 {
		combined = -combined
	}
	return 1 / (1 + combined)
}

// RelevanceFactors applies RelevanceFactor elementwise.
func RelevanceFactors(combined []float64) []float64 {
	out := make([]float64, len(combined))
	for i, d := range combined {
		out[i] = RelevanceFactor(d)
	}
	return out
}
