package relevance

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/topk"
)

// eagerRanking runs the eager pipeline and selects the top-k on the
// scaled combined vector — the reference the deferred ranking must
// match bit for bit (Order, Sorted prefix, NaN attribution).
func eagerRanking(t *testing.T, tree *Node, n, k int, opts EvalOptions) (*Result, []float64, []int) {
	t.Helper()
	opts.DeferRoot = false
	res, err := Evaluate(tree, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	sorted, order := topk.SelectKWithIndex(res.Combined, k)
	return res, sorted, order
}

// attachLeafStats gives every leaf of the tree its chunk-stats (and
// optionally quantile) index — what the session cache does for hot
// leaves, and what arms block pruning.
func attachLeafStats(root *Node, quantiles bool) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Op == Leaf {
			n.ChunkStats = BuildLeafChunkStats(n.Dists)
			if quantiles {
				n.Quantiles = BuildLeafQuantiles(n.Dists)
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
}

// clearLeafStats drops the indexes again (trees are shared between
// eager and deferred runs; the eager reference must not be affected —
// it is not, but symmetric state keeps the comparison honest).
func clearLeafStats(root *Node) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Op == Leaf {
			n.ChunkStats, n.Quantiles = nil, nil
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
}

// adversarialTree builds trees whose root selection is dominated by
// the failure modes rank-before-scale must resolve exactly: masses of
// exact zeros (OR saturation → a zero threshold and an index-tie
// battle), duplicated values (scaled collisions), NaN stretches
// (uncolorable fills), and heavy clamp ties (keep ≪ n pushes most of
// the vector to Scale).
func adversarialTree(rng *rand.Rand, n int) *Node {
	leaf := func() *Node {
		d := make([]float64, n)
		mode := rng.Intn(4)
		for i := range d {
			switch {
			case rng.Intn(3) == 0:
				d[i] = 0 // exact answers in bulk
			case mode == 1 && rng.Intn(2) == 0:
				d[i] = float64(rng.Intn(4)) // heavy duplicates
			case mode == 2 && rng.Intn(10) == 0:
				d[i] = math.NaN()
			case mode == 3 && rng.Intn(50) == 0:
				d[i] = math.Inf(1)
			default:
				d[i] = rng.Float64() * 100
			}
		}
		return &Node{Op: Leaf, Weight: []float64{0.5, 1, 1, 2, 3}[rng.Intn(5)], Dists: d}
	}
	if rng.Intn(5) == 0 {
		return leaf() // leaf root
	}
	op := NodeAnd
	if rng.Intn(2) == 0 {
		op = NodeOr
	}
	root := &Node{Op: op, Weight: 1}
	k := 2 + rng.Intn(3)
	for i := 0; i < k; i++ {
		if rng.Intn(4) == 0 {
			inner := &Node{Op: NodeOr, Weight: rng.Float64() + 0.5}
			inner.Children = []*Node{leaf(), leaf()}
			root.Children = append(root.Children, inner)
		} else {
			root.Children = append(root.Children, leaf())
		}
	}
	return root
}

func deferredOptVariants() []EvalOptions {
	return []EvalOptions{
		{},
		{Mode: PaperRaw},
		{And: ANDEuclidean},
		{And: ANDLp, LpP: 2},
		{And: ANDLp, LpP: 3.5},
		{NaiveNormalize: true},
		{LazyLeaves: true},
	}
}

// TestDeferredRankMatchesEagerSelection is the tentpole identity: the
// deferred (rank-before-scale, block-pruned) ranking must be
// bit-identical — order, scaled values, NaN counts, and the lazily
// materialized Combined vector — to the eager pipeline followed by a
// plain top-k selection, across combiner modes, adversarial tie
// distributions, stats-armed and stats-less leaves, and seeds.
func TestDeferredRankMatchesEagerSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	variants := deferredOptVariants()
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(3*evalChunk)
		tree := adversarialTree(rng, n)
		opts := variants[trial%len(variants)]
		opts.Budget = []int{0, 8, 64, n / 2, n}[rng.Intn(5)]
		k := []int{1, 8, 1 + rng.Intn(n), n}[rng.Intn(4)]

		eager, wantSorted, wantOrder := eagerRanking(t, tree, n, k, opts)

		withStats := trial%2 == 0
		if withStats {
			attachLeafStats(tree, rng.Intn(2) == 0)
		}
		opts.DeferRoot = true
		got, err := Evaluate(tree, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Deferred() {
			t.Fatalf("trial %d: evaluation did not defer", trial)
		}
		seed := math.NaN()
		switch rng.Intn(4) {
		case 1:
			seed = 0 // maximally tight stale seed
		case 2:
			seed = rng.Float64() * 50 // arbitrary stale seed
		case 3:
			seed = math.Inf(1) // maximally loose seed
		}
		rk, err := got.RankRoot(k, seed, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < k; r++ {
			if rk.Order[r] != wantOrder[r] {
				t.Fatalf("trial %d (k=%d seed=%v stats=%v): order[%d] = %d, want %d",
					trial, k, seed, withStats, r, rk.Order[r], wantOrder[r])
			}
			a, b := rk.Sorted[r], wantSorted[r]
			if math.Float64bits(a) != math.Float64bits(b) && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("trial %d: sorted[%d] = %v, want %v", trial, r, a, b)
			}
		}
		// Permutation completeness of Order.
		seen := make([]bool, n)
		for _, i := range rk.Order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("trial %d: Order is not a permutation", trial)
			}
			seen[i] = true
		}
		if want := CountNaN(eager.Combined); rk.NaNs != want {
			t.Fatalf("trial %d: NaNs = %d, want %d", trial, rk.NaNs, want)
		}
		// Lazy materialization must reproduce the eager vector bitwise.
		sameVec(t, "combined", eager.Combined, got.MaterializeCombined())
		// And every node's vector through Vec (pending interior children
		// finalize on demand).
		for node, ev := range eager.ByNode {
			gv := got.Vec(node)
			if gv == nil {
				t.Fatalf("trial %d: Vec(%q) = nil", trial, node.Label)
			}
			sameVec(t, "node "+node.Label, ev, gv)
		}
		clearLeafStats(tree)
	}
}

// TestDeferredPruningFiresAndStaysExact: an OR query saturated with
// exact zeros (more zeros than k) lets the running threshold collapse
// to 0 after the first chunks, so block pruning must skip most of the
// combine work — while remaining bit-identical to the eager reference.
func TestDeferredPruningFiresAndStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 8 * evalChunk
	mkLeaf := func(zeroEvery int) *Node {
		d := make([]float64, n)
		for i := range d {
			if i%zeroEvery == 0 {
				d[i] = 0
			} else {
				d[i] = 1 + rng.Float64()*100
			}
		}
		return &Node{Op: Leaf, Weight: 1, Dists: d}
	}
	tree := &Node{Op: NodeOr, Weight: 1, Children: []*Node{mkLeaf(3), mkLeaf(4)}}
	opts := EvalOptions{Budget: 64}
	k := 256

	_, wantSorted, wantOrder := eagerRanking(t, tree, n, k, opts)

	attachLeafStats(tree, true)
	opts.DeferRoot = true
	got, err := Evaluate(tree, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := got.RankRoot(k, math.NaN(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rk.Pruned == 0 {
		t.Fatalf("expected pruned chunks on a zero-saturated selection, got %+v", rk)
	}
	for r := 0; r < k; r++ {
		if rk.Order[r] != wantOrder[r] || math.Float64bits(rk.Sorted[r]) != math.Float64bits(wantSorted[r]) {
			t.Fatalf("rank %d diverged under pruning: (%v,%d) vs (%v,%d)",
				r, rk.Sorted[r], rk.Order[r], wantSorted[r], wantOrder[r])
		}
	}
	// The raw threshold of a zero-saturated selection is 0 — the seed
	// the next rerun starts from.
	if rk.Threshold != 0 {
		t.Fatalf("threshold = %v, want 0", rk.Threshold)
	}
}

// TestDeferredSeedSelfHeals: a seed from a differently-scaled previous
// run (weights changed → raw domain shifted) may starve the seeded
// pass; the selection must detect it and re-run, never returning a
// wrong ranking.
func TestDeferredSeedSelfHeals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 4 * evalChunk
	d := make([]float64, n)
	for i := range d {
		d[i] = 10 + rng.Float64()*100 // nothing below 10: a seed of 1 starves
	}
	tree := &Node{Op: NodeAnd, Weight: 1, Children: []*Node{
		{Op: Leaf, Weight: 1, Dists: d},
		{Op: Leaf, Weight: 2, Dists: append([]float64(nil), d...)},
	}}
	opts := EvalOptions{Budget: 32}
	k := 64
	_, wantSorted, wantOrder := eagerRanking(t, tree, n, k, opts)
	attachLeafStats(tree, true)
	opts.DeferRoot = true
	got, err := Evaluate(tree, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := got.RankRoot(k, 1e-9, nil, nil) // absurdly tight stale seed
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < k; r++ {
		if rk.Order[r] != wantOrder[r] || math.Float64bits(rk.Sorted[r]) != math.Float64bits(wantSorted[r]) {
			t.Fatalf("rank %d diverged after seed self-heal", r)
		}
	}
}

// TestStreamSelectorMatchesSort: the streaming lex selection equals a
// full sort's first k pairs, seeded or not.
func TestStreamSelectorMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5000)
		k := 1 + rng.Intn(n)
		vals := make([]float64, n)
		for i := range vals {
			switch rng.Intn(6) {
			case 0:
				vals[i] = 0
			case 1:
				vals[i] = float64(rng.Intn(3))
			case 2:
				vals[i] = math.NaN()
			default:
				vals[i] = rng.Float64() * 10
			}
		}
		wantSorted, wantIdx := topk.SelectKWithIndex(vals, k)
		comparable := 0
		for _, v := range vals {
			if !math.IsNaN(v) {
				comparable++
			}
		}
		seed := math.NaN()
		if trial%3 == 0 {
			seed = rng.Float64() * 12
		}
		sel := topk.NewStreamSelector(k, seed)
		sel.OfferSlice(vals, 0)
		cands, kth, complete := sel.Finish()
		if !complete && !math.IsNaN(seed) {
			// Seed starvation: the caller's contract is to re-run
			// unseeded.
			sel = topk.NewStreamSelector(k, math.NaN())
			sel.OfferSlice(vals, 0)
			cands, kth, complete = sel.Finish()
		}
		if comparable < k {
			if complete {
				t.Fatalf("trial %d: complete with only %d comparable of k=%d", trial, comparable, k)
			}
			if len(cands) != comparable {
				t.Fatalf("trial %d: %d cands, want all %d comparables", trial, len(cands), comparable)
			}
			continue
		}
		if !complete {
			t.Fatalf("trial %d: incomplete with %d comparable ≥ k=%d", trial, comparable, k)
		}
		if kth.V != wantSorted[k-1] || kth.I != wantIdx[k-1] {
			t.Fatalf("trial %d: kth = (%v,%d), want (%v,%d)", trial, kth.V, kth.I, wantSorted[k-1], wantIdx[k-1])
		}
		got := make(map[int]bool, len(cands))
		for _, c := range cands {
			got[c.I] = true
		}
		for r := 0; r < k; r++ {
			if !got[wantIdx[r]] {
				t.Fatalf("trial %d: rank-%d index %d missing from candidates", trial, r, wantIdx[r])
			}
		}
	}
}

// TestSupWhere: the bisection finds exact boundaries of monotone
// predicates over the full float range.
func TestSupWhere(t *testing.T) {
	// Simple threshold predicate: largest x with x ≤ c is c itself.
	for _, c := range []float64{0, 1, -3.5, 255, math.Inf(1)} {
		got := topk.SupWhere(func(x float64) bool { return x <= c }, math.Inf(-1), math.Inf(1))
		if got != c {
			t.Fatalf("sup{x ≤ %v} = %v", c, got)
		}
	}
	// Strict threshold: largest x with x < c is the predecessor of c.
	got := topk.SupWhere(func(x float64) bool { return x < 1 }, math.Inf(-1), math.Inf(1))
	if got != math.Nextafter(1, math.Inf(-1)) {
		t.Fatalf("sup{x < 1} = %v", got)
	}
	// Predicate false everywhere → NaN.
	if v := topk.SupWhere(func(x float64) bool { return false }, 0, math.Inf(1)); !math.IsNaN(v) {
		t.Fatalf("empty preimage should be NaN, got %v", v)
	}
	// A clamp-shaped transform: preimage of the upper clamp extends to
	// +Inf, preimage of the interior value is a tight interval.
	p := NormParams{DMin: 0, DMax: 100}
	key := func(x float64) float64 { return p.Apply(x) }
	s := key(50.0)
	hi := topk.SupWhere(func(x float64) bool { return key(x) <= s }, math.Inf(-1), math.Inf(1))
	loEx := topk.SupWhere(func(x float64) bool { return key(x) < s }, math.Inf(-1), math.Inf(1))
	if !(loEx < 50 && 50 <= hi) {
		t.Fatalf("interior preimage (%v, %v] must contain 50", loEx, hi)
	}
	if key(hi) != s || key(math.Nextafter(hi, math.Inf(1))) <= s {
		t.Fatalf("hi boundary inexact")
	}
	clamp := topk.SupWhere(func(x float64) bool { return key(x) <= Scale }, math.Inf(-1), math.Inf(1))
	if !math.IsInf(clamp, 1) {
		t.Fatalf("clamp preimage should reach +Inf, got %v", clamp)
	}
}
