package relevance

import (
	"fmt"

	"repro/internal/binenc"
)

// This file is the wire codec for the package's immutable index types —
// LeafQuantiles, LeafChunkStats, and InteriorEntry — so a networked
// shared tier can move them between processes. Two properties matter:
//
//   - Bit-exactness. Every float travels as its IEEE bits (binenc.F64),
//     so the decoded index answers Range/NormParams queries with the
//     same float64s the original produced — the fleet-wide bitwise-
//     identity guarantee rests on this.
//
//   - Derived state is rebuilt, not shipped. An InteriorEntry's
//     histogram sketch and memo are deterministic functions of the raw
//     vector and scans; re-deriving them locally keeps the envelope at
//     roughly the raw vector's size and makes it impossible for a
//     stale sketch to disagree with its vector.
//
// Each envelope starts with a one-byte version so formats can evolve
// independently of the KV layer, which sees only opaque bytes.

const (
	leafQuantilesVersion  = 1
	leafChunkStatsVersion = 1
	interiorEntryVersion  = 1
)

// AppendLeafQuantiles appends q's envelope to b.
func AppendLeafQuantiles(b []byte, q *LeafQuantiles) []byte {
	b = append(b, leafQuantilesVersion)
	b = binenc.F64(b, q.minFinite)
	b = binenc.U32(b, uint32(q.nNegInf))
	b = binenc.U32(b, uint32(q.nNaN))
	return binenc.F64s(b, q.sorted)
}

// DecodeLeafQuantiles decodes an envelope produced by
// AppendLeafQuantiles, consuming it from r.
func DecodeLeafQuantiles(r *binenc.Reader) (*LeafQuantiles, error) {
	if ver := r.Byte(); ver != leafQuantilesVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("relevance: leaf-quantiles codec version %d", ver)
	}
	q := &LeafQuantiles{}
	q.minFinite = r.F64()
	q.nNegInf = r.Int()
	q.nNaN = r.Int()
	q.sorted = r.F64s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return q, nil
}

// AppendLeafChunkStats appends s's envelope to b.
func AppendLeafChunkStats(b []byte, s *LeafChunkStats) []byte {
	b = append(b, leafChunkStatsVersion)
	b = binenc.F64s(b, s.mins)
	return binenc.I32s(b, s.nans)
}

// DecodeLeafChunkStats decodes an envelope produced by
// AppendLeafChunkStats, consuming it from r.
func DecodeLeafChunkStats(r *binenc.Reader) (*LeafChunkStats, error) {
	if ver := r.Byte(); ver != leafChunkStatsVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("relevance: leaf-chunk-stats codec version %d", ver)
	}
	s := &LeafChunkStats{}
	s.mins = r.F64s()
	s.nans = r.I32s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(s.nans) != len(s.mins) {
		return nil, fmt.Errorf("relevance: leaf-chunk-stats mins/nans length mismatch")
	}
	return s, nil
}

func appendRangeScan(b []byte, s rangeScan) []byte {
	b = binenc.U32(b, uint32(s.nFinite))
	b = binenc.U32(b, uint32(s.nNegInf))
	b = binenc.U32(b, uint32(s.nNaN))
	b = binenc.F64(b, s.minFinite)
	return binenc.F64(b, s.maxFinite)
}

func readRangeScan(r *binenc.Reader) rangeScan {
	var s rangeScan
	s.nFinite = r.Int()
	s.nNegInf = r.Int()
	s.nNaN = r.Int()
	s.minFinite = r.F64()
	s.maxFinite = r.F64()
	return s
}

// AppendInteriorEntry appends e's envelope to b: the raw combined
// vector and the per-chunk scans, from which the decoder rebuilds the
// sketch. Safe on live entries — all encoded fields are immutable
// after construction.
func AppendInteriorEntry(b []byte, e *InteriorEntry) []byte {
	b = append(b, interiorEntryVersion)
	b = binenc.F64s(b, e.raw)
	b = binenc.U32(b, uint32(len(e.scans)))
	for _, s := range e.scans {
		b = appendRangeScan(b, s)
	}
	return appendRangeScan(b, e.total)
}

// DecodeInteriorEntry decodes an envelope produced by
// AppendInteriorEntry and rebuilds the histogram sketch locally. The
// envelope must be the entire remaining input.
func DecodeInteriorEntry(data []byte) (*InteriorEntry, error) {
	r := binenc.NewReader(data)
	if ver := r.Byte(); ver != interiorEntryVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("relevance: interior-entry codec version %d", ver)
	}
	raw := r.F64s()
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	want := (len(raw) + evalChunk - 1) / evalChunk
	if n != want {
		return nil, fmt.Errorf("relevance: interior entry has %d chunk scans for %d rows (want %d)", n, len(raw), want)
	}
	scans := make([]rangeScan, n)
	for i := range scans {
		scans[i] = readRangeScan(r)
	}
	total := readRangeScan(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if !r.Done() {
		return nil, binenc.ErrTruncated
	}
	return buildInteriorEntry(raw, scans, total), nil
}
