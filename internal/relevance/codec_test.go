package relevance

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/binenc"
)

// awkwardFloats returns a vector exercising every special value the
// bit-exact codec must preserve: NaN, ±Inf, signed zero, denormals, and
// ordinary values.
func awkwardFloats(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		switch rng.Intn(10) {
		case 0:
			v[i] = math.NaN()
		case 1:
			v[i] = math.Inf(1)
		case 2:
			v[i] = math.Inf(-1)
		case 3:
			v[i] = math.Copysign(0, -1)
		case 4:
			v[i] = 5e-324 // smallest denormal
		default:
			v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)))
		}
	}
	return v
}

// eqBits compares float slices by IEEE bits (NaN == NaN, -0 != +0).
func eqBits(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s[%d]: %x != %x", what, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
		}
	}
}

func TestLeafQuantilesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 7, 4096, 9000} {
		q := BuildLeafQuantiles(awkwardFloats(rng, n))
		r := binenc.NewReader(AppendLeafQuantiles(nil, q))
		got, err := DecodeLeafQuantiles(r)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !r.Done() {
			t.Fatalf("n=%d: trailing bytes", n)
		}
		eqBits(t, "sorted", q.sorted, got.sorted)
		if math.Float64bits(q.minFinite) != math.Float64bits(got.minFinite) ||
			q.nNegInf != got.nNegInf || q.nNaN != got.nNaN {
			t.Fatalf("n=%d: scalar fields differ: %+v vs %+v", n, q, got)
		}
		// The decoded index must answer Range identically for any keep.
		for _, keep := range []int{0, 1, n / 2, n} {
			a, b := q.Range(keep), got.Range(keep)
			if a != b && !(math.IsNaN(a.DMax) && math.IsNaN(b.DMax)) {
				t.Fatalf("n=%d keep=%d: Range %+v != %+v", n, keep, a, b)
			}
		}
	}
}

func TestLeafChunkStatsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 4096, 12289} {
		s := BuildLeafChunkStats(awkwardFloats(rng, n))
		r := binenc.NewReader(AppendLeafChunkStats(nil, s))
		got, err := DecodeLeafChunkStats(r)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !r.Done() {
			t.Fatalf("n=%d: trailing bytes", n)
		}
		eqBits(t, "mins", s.mins, got.mins)
		if len(s.nans) != len(got.nans) {
			t.Fatalf("n=%d: nans length %d != %d", n, len(s.nans), len(got.nans))
		}
		for i := range s.nans {
			if s.nans[i] != got.nans[i] {
				t.Fatalf("n=%d: nans[%d] differ", n, i)
			}
		}
	}
}

func TestInteriorEntryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{0, 1, 4096, 10000} {
		raw := awkwardFloats(rng, n)
		nchunks := (n + evalChunk - 1) / evalChunk
		scans := make([]rangeScan, nchunks)
		total := newRangeScan()
		for ci := 0; ci < nchunks; ci++ {
			lo, hi := ci*evalChunk, (ci+1)*evalChunk
			if hi > n {
				hi = n
			}
			scans[ci] = scanRange(raw, lo, hi)
			total.merge(scans[ci])
		}
		e := newInteriorEntry(raw, scans, total)
		got, err := DecodeInteriorEntry(AppendInteriorEntry(nil, e))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		eqBits(t, "raw", e.raw, got.raw)
		if !reflect.DeepEqual(e.scans, got.scans) || e.total != got.total {
			t.Fatalf("n=%d: scans/total differ", n)
		}
		// The rebuilt sketch must answer Range bit-identically (and with
		// the same rescan attribution) for any keep.
		for _, keep := range []int{1, 16, n / 3, n} {
			a, ra := e.Range(keep)
			b, rb := got.Range(keep)
			if a != b || ra != rb {
				t.Fatalf("n=%d keep=%d: Range (%+v,%d) != (%+v,%d)", n, keep, a, ra, b, rb)
			}
		}
	}
}

func TestInteriorEntryDecodeRejectsCorrupt(t *testing.T) {
	raw := []float64{1, 2, 3}
	scans := []rangeScan{scanRange(raw, 0, 3)}
	total := scans[0]
	good := AppendInteriorEntry(nil, newInteriorEntry(raw, scans, total))
	if _, err := DecodeInteriorEntry(good[:len(good)-3]); err == nil {
		t.Fatalf("truncated envelope decoded")
	}
	if _, err := DecodeInteriorEntry(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatalf("padded envelope decoded")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, err := DecodeInteriorEntry(bad); err == nil {
		t.Fatalf("wrong version decoded")
	}
}
