package relevance

import (
	"fmt"
	"math"
	"sync"
)

// NodeOp is the role of a Node in the distance-combination tree.
type NodeOp int

const (
	// Leaf holds a raw per-item distance vector from one selection
	// predicate (or approximate join, or subquery).
	Leaf NodeOp = iota
	// NodeAnd combines children with the weighted arithmetic mean.
	NodeAnd
	// NodeOr combines children with the weighted geometric mean.
	NodeOr
)

// Node mirrors the boolean structure of a query's condition as a
// distance-combination tree. The engine computes raw leaf distances and
// hands the tree to Evaluate; labels let results map back to predicate
// windows.
type Node struct {
	Op       NodeOp
	Label    string
	Weight   float64 // weighting factor; 0 reads as 1
	Dists    []float64
	Children []*Node
}

// EffWeight returns the node's weight with the default of 1.
func (n *Node) EffWeight() float64 {
	if n.Weight == 0 {
		return 1
	}
	return n.Weight
}

// ANDCombiner selects how AND nodes fold their children. The paper's
// default is the weighted arithmetic mean; section 5.2 notes that "for
// special applications other specific distance functions such as the
// Euclidean, Lp or the Mahalanobis distance in n-dimensional space may
// be used to combine the values of multiple attributes".
type ANDCombiner int

const (
	// ANDArithmetic is the weighted arithmetic mean (default).
	ANDArithmetic ANDCombiner = iota
	// ANDEuclidean is the weighted Euclidean (L2) norm.
	ANDEuclidean
	// ANDLp is the weighted Lp norm with exponent LpP.
	ANDLp
)

// EvalOptions configures Evaluate.
type EvalOptions struct {
	// Budget is the display budget in items (r); it drives the
	// reduction-first normalization via KeepCount. Zero means normalize
	// over everything.
	Budget int
	// Mode selects the combination formulas (see CombineMode).
	Mode CombineMode
	// NaiveNormalize disables the reduction-first range estimation
	// (the A1 ablation).
	NaiveNormalize bool
	// And selects the AND-node combiner (arithmetic mean by default).
	And ANDCombiner
	// LpP is the exponent for ANDLp (values < 1 error).
	LpP float64
	// Parallel evaluates sibling subtrees concurrently. Results are
	// identical to the sequential evaluation; only wall-clock changes.
	Parallel bool
}

// Result carries the evaluated tree: the per-node normalized distance
// vectors in [0, Scale] (keyed by node), and the root's combined,
// re-normalized distances.
type Result struct {
	Combined []float64
	ByNode   map[*Node][]float64
}

// Evaluate computes the combined normalized distance of every item per
// section 5.2: leaf distances are normalized to [0, Scale] (range from
// the KeepCount(budget, n, weight) smallest values), interior nodes
// combine their children with the weighted arithmetic (AND) or geometric
// (OR) mean, and every combined vector is itself normalized "before a
// calculated combined distance is used as a parameter for combining
// other distances".
func Evaluate(root *Node, n int, opts EvalOptions) (*Result, error) {
	if root == nil {
		return nil, fmt.Errorf("relevance: nil tree")
	}
	ctx := &evalCtx{opts: opts, n: n, res: &Result{ByNode: make(map[*Node][]float64)}}
	combined, err := ctx.evalNode(root)
	if err != nil {
		return nil, err
	}
	ctx.res.Combined = combined
	return ctx.res, nil
}

// evalCtx carries the evaluation state; the mutex guards ByNode when
// sibling subtrees evaluate concurrently.
type evalCtx struct {
	opts EvalOptions
	n    int
	res  *Result
	mu   sync.Mutex
}

func (c *evalCtx) store(node *Node, vec []float64) {
	c.mu.Lock()
	c.res.ByNode[node] = vec
	c.mu.Unlock()
}

func (c *evalCtx) evalNode(node *Node) ([]float64, error) {
	opts, n := c.opts, c.n
	switch node.Op {
	case Leaf:
		if len(node.Dists) != n {
			return nil, fmt.Errorf("relevance: leaf %q has %d distances, want %d", node.Label, len(node.Dists), n)
		}
		keep := 0
		if !opts.NaiveNormalize {
			keep = KeepCount(opts.Budget, n, node.EffWeight())
		}
		norm := Normalize(node.Dists, keep)
		c.store(node, norm.Scaled)
		return norm.Scaled, nil
	case NodeAnd, NodeOr:
		if len(node.Children) == 0 {
			return nil, fmt.Errorf("relevance: %q has no children", node.Label)
		}
		dists := make([][]float64, len(node.Children))
		weights := make([]float64, len(node.Children))
		if opts.Parallel && len(node.Children) > 1 {
			var wg sync.WaitGroup
			errs := make([]error, len(node.Children))
			for i, child := range node.Children {
				wg.Add(1)
				go func(i int, child *Node) {
					defer wg.Done()
					dists[i], errs[i] = c.evalNode(child)
				}(i, child)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			for i, child := range node.Children {
				weights[i] = child.EffWeight()
			}
		} else {
			for i, child := range node.Children {
				d, err := c.evalNode(child)
				if err != nil {
					return nil, err
				}
				dists[i] = d
				weights[i] = child.EffWeight()
			}
		}
		var combined []float64
		var err error
		if node.Op == NodeAnd {
			switch opts.And {
			case ANDEuclidean:
				combined, err = CombineEuclidean(dists, weights)
			case ANDLp:
				combined, err = CombineLp(dists, weights, opts.LpP)
			default:
				combined, err = CombineAnd(dists, weights, opts.Mode)
			}
		} else {
			combined, err = CombineOr(dists, weights, opts.Mode)
		}
		if err != nil {
			return nil, err
		}
		// Re-normalize so the combined values are a valid input for the
		// parent level (and for the colormap at the root).
		keep := 0
		if !opts.NaiveNormalize {
			keep = KeepCount(opts.Budget, n, node.EffWeight())
		}
		norm := Normalize(combined, keep)
		c.store(node, norm.Scaled)
		return norm.Scaled, nil
	default:
		return nil, fmt.Errorf("relevance: unknown node op %d", node.Op)
	}
}

// ZeroPreserved reports whether item i is an exact answer (distance 0)
// in vec — a helper for tests and invariant checks.
func ZeroPreserved(vec []float64, i int) bool {
	return i >= 0 && i < len(vec) && vec[i] == 0
}

// CountNaN returns how many entries of vec are NaN (uncolorable).
func CountNaN(vec []float64) int {
	c := 0
	for _, v := range vec {
		if math.IsNaN(v) {
			c++
		}
	}
	return c
}
