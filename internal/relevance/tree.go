package relevance

import (
	"math"
	"sync"
)

// NodeOp is the role of a Node in the distance-combination tree.
type NodeOp int

const (
	// Leaf holds a raw per-item distance vector from one selection
	// predicate (or approximate join, or subquery).
	Leaf NodeOp = iota
	// NodeAnd combines children with the weighted arithmetic mean.
	NodeAnd
	// NodeOr combines children with the weighted geometric mean.
	NodeOr
)

// Node mirrors the boolean structure of a query's condition as a
// distance-combination tree. The engine computes raw leaf distances and
// hands the tree to Evaluate; labels let results map back to predicate
// windows.
type Node struct {
	Op       NodeOp
	Label    string
	Weight   float64 // weighting factor; 0 reads as 1
	Dists    []float64
	Children []*Node
	// Quantiles, when set on a leaf, answers the normalization range
	// for any keep count in O(1) instead of a scan plus a selection —
	// the session cache attaches it to leaves that recur across reruns.
	// It must index exactly Dists.
	Quantiles *LeafQuantiles
	// ChunkStats, when set on a leaf, carries the per-chunk minima and
	// NaN counts of Dists that the block-pruning pass folds into
	// per-chunk bounds on the root's raw combined value. The session
	// cache attaches it alongside Quantiles; it must index exactly
	// Dists. Pruning degrades gracefully without it (chunks whose
	// children lack stats are never skipped).
	ChunkStats *LeafChunkStats
}

// EffWeight returns the node's weight with the default of 1.
func (n *Node) EffWeight() float64 {
	if n.Weight == 0 {
		return 1
	}
	return n.Weight
}

// ANDCombiner selects how AND nodes fold their children. The paper's
// default is the weighted arithmetic mean; section 5.2 notes that "for
// special applications other specific distance functions such as the
// Euclidean, Lp or the Mahalanobis distance in n-dimensional space may
// be used to combine the values of multiple attributes".
type ANDCombiner int

const (
	// ANDArithmetic is the weighted arithmetic mean (default).
	ANDArithmetic ANDCombiner = iota
	// ANDEuclidean is the weighted Euclidean (L2) norm.
	ANDEuclidean
	// ANDLp is the weighted Lp norm with exponent LpP.
	ANDLp
)

// EvalOptions configures Evaluate.
type EvalOptions struct {
	// Budget is the display budget in items (r); it drives the
	// reduction-first normalization via KeepCount. Zero means normalize
	// over everything.
	Budget int
	// Mode selects the combination formulas (see CombineMode).
	Mode CombineMode
	// NaiveNormalize disables the reduction-first range estimation
	// (the A1 ablation).
	NaiveNormalize bool
	// And selects the AND-node combiner (arithmetic mean by default).
	And ANDCombiner
	// LpP is the exponent for ANDLp (values < 1 error).
	LpP float64
	// Parallel runs the fused chunk passes concurrently (bounded by
	// Workers). Results are identical to the sequential evaluation;
	// only wall-clock changes.
	Parallel bool
	// Workers bounds the chunk-pass concurrency when Parallel is set;
	// 0 selects GOMAXPROCS.
	Workers int
	// Alloc, when non-nil, provides the n-sized output buffers for the
	// per-node scaled vectors (ByNode and Combined). It enables buffer
	// pooling across reruns: the caller may hand back buffers of
	// superseded Results, which this evaluation will overwrite in
	// full. nil (or a wrong-sized return) falls back to fresh
	// allocation.
	Alloc func(n int) []float64
	// LazyLeaves skips materializing the scaled vectors of leaf nodes:
	// their values are computed inline (in chunk-local scratch) for the
	// combination passes, and Result.Vec materializes a leaf's full
	// vector only when someone asks for it — windows read a few
	// thousand displayed items, so interactive reruns avoid one n-sized
	// write per leaf per run. Under DeferRoot even Combined (the root)
	// materializes lazily.
	LazyLeaves bool
	// DeferRoot enables the rank-before-scale pipeline: the root's
	// combine pass stops at the RAW combined value (before the final
	// monotonic transforms — the geometric root, the Lp root, the
	// weight-normalized division — and before the [0, Scale]
	// re-normalization), and Result.Combined stays nil until someone
	// materializes it. The caller ranks via Result.RankRoot, which
	// selects the top-k on raw values (skipping whole chunks whose
	// bound cannot beat the running threshold) and applies the final
	// transforms only to the survivors — bit-identical, including
	// clamp-induced ties, to ranking the eagerly scaled vector.
	//
	// Deferral silently falls back to the eager root (Deferred()
	// reports false) when the deferred transforms could change the
	// finite/infinite classification of a value (pathological weights
	// overflowing the raw domain).
	DeferRoot bool
	// InteriorFetch, when non-nil, is consulted before every interior
	// node's combine pass with the node's cache signature (structure,
	// leaf labels, child weights, kernel options — see fusedCtx.sig). A
	// matching entry skips the pass entirely: the node's raw combined
	// vector is BORROWED read-only from the entry, its per-chunk scans
	// feed block pruning, and its normalization range comes from the
	// entry's exact quantile sketch. Results are bit-identical to the
	// sketchless evaluation; Result.SketchHits/SketchRescans attribute
	// the reuse. Callers own key scoping: a fetch must only return
	// entries built over the same leaf data (same dataset epoch, same
	// predicate distance vectors).
	InteriorFetch func(sig string) *InteriorEntry
	// InteriorStore, when non-nil, receives a freshly built entry for
	// every interior node this evaluation computed (same signatures as
	// InteriorFetch). The entry holds a private copy of the raw vector
	// and is safe to share across evaluations and sessions.
	InteriorStore func(sig string, e *InteriorEntry)
	// Checkpoint, when non-nil, is polled at every node entry and
	// between evaluator chunks; the first non-nil return aborts the
	// evaluation (and any deferred-root ranking built from it) with
	// that error. The engine wires context cancellation through it, so
	// a request deadline interrupts a run mid-pass instead of holding
	// its goroutine until the full sweep completes. Checkpoint must be
	// cheap (it is called O(n/chunk) times) and safe for concurrent
	// use — ctx.Err is both.
	Checkpoint func() error
	// LeafID, when non-nil, supplies the leaf identity the interior
	// signatures embed in place of Node.Label (an empty return falls
	// back to the label). Callers whose labels are not injective over
	// leaf CONTENT — e.g. a negated predicate keeps the un-negated
	// label while its vector differs — must provide it; the engine
	// passes each leaf's full cache key, which pins the item space,
	// catalog epoch, literals, negation and distance function.
	LeafID func(n *Node) string
}

// Result carries the evaluated tree: the per-node normalized distance
// vectors in [0, Scale] (keyed by node), and the root's combined,
// re-normalized distances. Under EvalOptions.LazyLeaves, leaf vectors
// are absent from ByNode until Vec materializes them; read through Vec
// rather than the map when lazy evaluation may be in play. Under
// EvalOptions.DeferRoot, Combined (and the root's ByNode entry, and
// the raw interior children of the root) also stay unmaterialized
// until Vec or MaterializeCombined asks for them.
type Result struct {
	Combined []float64
	ByNode   map[*Node][]float64

	// SketchHits counts interior nodes whose combine pass was skipped
	// via EvalOptions.InteriorFetch; SketchRescans counts the chunks
	// the entries' quantile sketches re-scanned to answer the
	// normalization ranges exactly (0 when every answer was memoized
	// or O(1), the full chunk count when a guard fell back to the
	// reference selection).
	SketchHits    int
	SketchRescans int

	mu   sync.Mutex
	lazy map[*Node]NormParams // un-materialized leaves: params over node.Dists
	// lazyInt holds skipped interior descendants of a cache hit: their
	// borrowed raw vectors and params, materialized by Vec on demand.
	lazyInt map[*Node]lazyInterior
	alloc   func(n int) []float64
	n       int
	// borrowed marks nodes whose ByNode vector is a cache entry's
	// read-only raw vector (an InteriorFetch hit): finalization must
	// scale into a fresh buffer, never in place.
	borrowed map[*Node]bool
	// root is the deferred rank-before-scale state (nil when the root
	// was finalized eagerly).
	root *rootDefer
}

// markBorrowed records that node's ByNode vector is borrowed read-only.
func (r *Result) markBorrowed(node *Node) {
	if r.borrowed == nil {
		r.borrowed = make(map[*Node]bool)
	}
	r.borrowed[node] = true
}

// Deferred reports whether the root is evaluated rank-before-scale:
// Combined is nil until materialized, and the caller should rank via
// RankRoot instead of selecting on Combined.
func (r *Result) Deferred() bool { return r.root != nil }

// Vec returns the node's normalized vector, materializing a lazy leaf
// (or, under DeferRoot, the root and its raw interior children) on
// first use — bit-identical to eager evaluation: same params, same
// per-element transforms. nil when the node was not part of the
// evaluation. Safe for concurrent use.
func (r *Result) Vec(node *Node) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.root != nil {
		if node == r.root.node {
			return r.materializeCombinedLocked()
		}
		if p, pending := r.root.pending[node]; pending {
			// A raw interior child of the deferred root: the root's raw
			// chunks need this child's raw values, so they materialize
			// first; then the child finalizes in place exactly like the
			// eager root pass would have. A borrowed vector (interior
			// cache hit) is read-only — scale into a fresh buffer.
			r.root.ensureAllRaw()
			v := r.ByNode[node]
			if r.borrowed[node] {
				out := r.allocVec()
				applyRange(out, v, p)
				r.ByNode[node] = out
				v = out
			} else {
				applyRange(v, v, p)
			}
			delete(r.root.pending, node)
			return v
		}
	}
	if v, ok := r.ByNode[node]; ok {
		return v
	}
	if li, ok := r.lazyInt[node]; ok {
		// A skipped interior descendant of a cache hit: scale its
		// borrowed raw vector (read-only) into a fresh buffer — the same
		// values the eager pass would have produced in place.
		out := r.allocVec()
		applyRange(out, li.raw, li.p)
		r.ByNode[node] = out
		delete(r.lazyInt, node)
		return out
	}
	p, ok := r.lazy[node]
	if !ok {
		return nil
	}
	out := r.allocVec()
	applyRange(out, node.Dists, p)
	r.ByNode[node] = out
	delete(r.lazy, node)
	return out
}

// lazyInterior is a skipped interior node awaiting materialization: a
// borrowed (read-only) raw vector and the params that scale it.
type lazyInterior struct {
	raw []float64
	p   NormParams
}

// allocVec returns an n-sized buffer from the caller's pool (or fresh).
func (r *Result) allocVec() []float64 {
	if r.alloc != nil {
		if b := r.alloc(r.n); len(b) == r.n {
			return b
		}
	}
	return make([]float64, r.n)
}

// MaterializeCombined materializes (and memoizes) the root's scaled
// combined vector of a deferred evaluation; for eager evaluations it
// just returns Combined. The result is bit-identical to the eager
// pipeline. Safe for concurrent use; like every vector of a pooled
// Result, it is valid until the evaluation's buffers are recycled.
func (r *Result) MaterializeCombined() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.root != nil {
		return r.materializeCombinedLocked()
	}
	return r.Combined
}

// Evaluate computes the combined normalized distance of every item per
// section 5.2: leaf distances are normalized to [0, Scale] (range from
// the KeepCount(budget, n, weight) smallest values), interior nodes
// combine their children with the weighted arithmetic (AND) or geometric
// (OR) mean, and every combined vector is itself normalized "before a
// calculated combined distance is used as a parameter for combining
// other distances".
//
// The implementation is the chunk-fused evaluator of fused.go: all
// normalization ranges are derived from cheap scans and selections, and
// the scaling, combination and range tracking of each level happen in
// one chunked pass writing into caller-pooled buffers. The results are
// bit-identical to the straightforward node-at-a-time pipeline (see the
// reference evaluator in the tests).
func Evaluate(root *Node, n int, opts EvalOptions) (*Result, error) {
	return evaluateFused(root, n, opts)
}

// ZeroPreserved reports whether item i is an exact answer (distance 0)
// in vec — a helper for tests and invariant checks.
func ZeroPreserved(vec []float64, i int) bool {
	return i >= 0 && i < len(vec) && vec[i] == 0
}

// CountNaN returns how many entries of vec are NaN (uncolorable).
func CountNaN(vec []float64) int {
	c := 0
	for _, v := range vec {
		if math.IsNaN(v) {
			c++
		}
	}
	return c
}
