package relevance

import (
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/topk"
)

// This file implements the incremental interior-normalization cache
// behind EvalOptions.InteriorFetch/InteriorStore.
//
// An interior node's RAW combined vector depends only on its subtree —
// the children's raw vectors, their weights (which fix both the
// combination coefficients and each child's keep count), the combiner
// kind, and the evaluation options feeding the kernels. It does NOT
// depend on the node's own weight: that enters only through the keep
// count of the node's own normalization range. An interactive weight
// drag therefore leaves every subtree that does not contain the dragged
// leaf bit-identical — yet the eager evaluator still re-runs each such
// node's fused pass (scale children, combine, scan) and re-selects its
// normalization range with an O(n) pass.
//
// InteriorEntry kills that last full-array pass. On a miss the
// evaluator stores the node's raw combined vector (a private copy),
// its per-chunk range scans, and an equal-width per-chunk histogram
// sketch of the finite values. On a hit the fused pass is skipped
// outright — the cached vector is borrowed read-only — and the
// normalization range for ANY keep count is answered from the sketch:
//
//   1. the cumulative histogram locates the bucket containing the
//      keep-th smallest finite value (the range maximum);
//   2. only chunks whose count in that bucket is non-zero are
//      re-scanned to gather the bucket's values;
//   3. a selection over the gathered candidates yields the exact order
//      statistic — the same float64 rangeOf would have found, because
//      the bucketing function is monotone (values in lower buckets are
//      strictly smaller than values in higher buckets).
//
// Exactness guard: when the crossing bucket touches more than half the
// chunks (adversarially flat distributions put every bucket in every
// chunk), the gather would approach a full pass — the entry falls back
// to the reference rangeOf over its cached vector instead. Either way
// the returned params are bit-identical to the sketchless path; the
// guard only decides how much work the answer costs, never its value.
// Repeated keeps (the common warm-rerun case) memoize to O(1).

// interiorBuckets is the sketch resolution: wide enough that a
// display-budget keep usually isolates a handful of chunks, small
// enough that the per-chunk counts stay a fraction of the raw vector
// (2 bytes x 128 buckets per 4096-value chunk = 1/128 of the data).
const interiorBuckets = 128

// InteriorEntry caches one interior node's raw combined vector together
// with the per-chunk statistics and the quantile sketch that answer its
// normalization range for any keep count without a full-vector pass.
// Entries are built by the evaluator (via EvalOptions.InteriorStore) and
// shared read-only across evaluations and sessions; Range is safe for
// concurrent use.
type InteriorEntry struct {
	raw   []float64   // private copy of the node's raw combined vector
	scans []rangeScan // per evalChunk, aligned with the fused pass
	total rangeScan   // merged scans

	histLo   float64
	histSpan float64
	spanZero bool     // all finite values equal total.minFinite
	hist     []uint16 // chunk-major finite-value counts [ci*interiorBuckets+b]
	global   []int    // per-bucket totals across chunks

	mu   sync.Mutex
	memo map[int]NormParams // keep -> params
}

// newInteriorEntry builds an entry from a just-computed raw combined
// vector. The vector is copied (the fused pass scales it in place
// afterwards); scans is retained as-is and must never be mutated.
func newInteriorEntry(out []float64, scans []rangeScan, total rangeScan) *InteriorEntry {
	return buildInteriorEntry(append([]float64(nil), out...), scans, total)
}

// buildInteriorEntry is newInteriorEntry taking ownership of raw
// instead of copying it — the decode path already holds a private
// vector.
func buildInteriorEntry(raw []float64, scans []rangeScan, total rangeScan) *InteriorEntry {
	e := &InteriorEntry{
		raw:   raw,
		scans: scans,
		total: total,
		memo:  make(map[int]NormParams),
	}
	if total.nFinite == 0 {
		return e
	}
	span := total.maxFinite - total.minFinite
	if span == 0 {
		e.spanZero = true
		return e
	}
	if math.IsInf(span, 0) || math.IsNaN(span) {
		// Range overflow (e.g. extremes near ±MaxFloat64): no usable
		// bucketing; Range falls back to the exact full selection.
		return e
	}
	e.histLo, e.histSpan = total.minFinite, span
	nchunks := len(scans)
	e.hist = make([]uint16, nchunks*interiorBuckets)
	e.global = make([]int, interiorBuckets)
	for ci := 0; ci < nchunks; ci++ {
		lo := ci * evalChunk
		hi := lo + evalChunk
		if hi > len(e.raw) {
			hi = len(e.raw)
		}
		row := e.hist[ci*interiorBuckets : (ci+1)*interiorBuckets]
		for _, v := range e.raw[lo:hi] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			b := e.bucket(v)
			row[b]++
			e.global[b]++
		}
	}
	return e
}

// bucket maps a finite value onto its histogram bucket. The function
// is monotone non-decreasing (every IEEE operation here rounds
// monotonically and truncation preserves order), which is what makes
// the sketch exact: any value in a lower bucket is strictly smaller
// than any value in a higher bucket, and equal values always share a
// bucket — so an order statistic localizes to exactly one bucket.
func (e *InteriorEntry) bucket(v float64) int {
	b := int((v - e.histLo) / e.histSpan * interiorBuckets)
	if b < 0 {
		b = 0
	}
	if b >= interiorBuckets {
		b = interiorBuckets - 1
	}
	return b
}

// Chunks returns the number of evaluator chunks the entry indexes.
func (e *InteriorEntry) Chunks() int { return len(e.scans) }

// Rows returns the length of the cached raw vector.
func (e *InteriorEntry) Rows() int { return len(e.raw) }

// Size returns the entry's approximate resident bytes — the
// memory-accounting handle for caches keeping entries resident.
func (e *InteriorEntry) Size() int {
	return 8*len(e.raw) + 48*len(e.scans) + 2*len(e.hist) + 8*len(e.global) + 64
}

// Range answers rangeOf(merged scan, raw, keep) for the cached vector:
// bit-identical params, answered from the memo, the sketch, or (guard)
// the reference selection. The second return is the number of chunks
// re-scanned to produce the answer — the attribution surfaced as
// SketchRescans (0 for memoized or O(1) answers, the full chunk count
// when the guard fell back).
func (e *InteriorEntry) Range(keep int) (NormParams, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.memo[keep]; ok {
		return p, 0
	}
	p, rescans := e.rangeLocked(keep)
	e.memo[keep] = p
	return p, rescans
}

func (e *InteriorEntry) rangeLocked(keep int) (NormParams, int) {
	st := e.total
	if st.nFinite == 0 {
		return NormParams{NoFinite: true}, 0
	}
	if keep <= 0 || keep > st.nFinite {
		keep = st.nFinite
	}
	p := NormParams{Kept: keep, DMin: st.minFinite}
	if p.DMin > 0 {
		p.DMin = 0
	}
	switch {
	case keep >= st.nFinite:
		p.DMax = st.maxFinite
		return p, 0
	case e.spanZero:
		// Every finite value equals the minimum; any order statistic is it.
		p.DMax = st.minFinite
		return p, 0
	case e.hist == nil:
		// Degenerate bounds: exact reference selection over the cache.
		return rangeOf(st, e.raw, keep), e.Chunks()
	}
	// Walk the cumulative histogram to the bucket holding the keep-th
	// smallest finite value; rank is its order within that bucket.
	beta, rank := interiorBuckets-1, keep
	for b := 0; b < interiorBuckets; b++ {
		if rank <= e.global[b] {
			beta = b
			break
		}
		rank -= e.global[b]
	}
	nchunks := e.Chunks()
	touched := 0
	for ci := 0; ci < nchunks; ci++ {
		if e.hist[ci*interiorBuckets+beta] > 0 {
			touched++
		}
	}
	if 2*touched > nchunks {
		// Guard: the crossing bucket spans most chunks, so the gather
		// would approach a full pass — take the reference path (same
		// value, honest attribution).
		return rangeOf(st, e.raw, keep), nchunks
	}
	cands := make([]float64, 0, e.global[beta])
	for ci := 0; ci < nchunks; ci++ {
		if e.hist[ci*interiorBuckets+beta] == 0 {
			continue
		}
		lo := ci * evalChunk
		hi := lo + evalChunk
		if hi > len(e.raw) {
			hi = len(e.raw)
		}
		for _, v := range e.raw[lo:hi] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if e.bucket(v) == beta {
				cands = append(cands, v)
			}
		}
	}
	// Values in buckets below beta are strictly smaller than every
	// candidate, so the keep-th smallest overall is the rank-th smallest
	// candidate — the exact order statistic rangeOf selects.
	p.DMax = topk.Threshold(cands, rank)
	return p, touched
}

// sig returns the cache signature of node's raw combined vector: the
// structural identity of the subtree (ops, leaf labels, per-child
// weights in hex-float — children's weights fix their keep counts and
// combination coefficients) prefixed with every evaluation option that
// feeds the kernels. The node's OWN weight is deliberately excluded:
// the raw vector does not depend on it, which is exactly what lets a
// weight drag on the node itself (or on its siblings) reuse the entry.
// Callers compose this with their data identity (dataset epoch,
// predicate cache version) to form the full cache key.
func (c *fusedCtx) sig(node *Node) string {
	if c.optsSig == "" {
		c.optsSig = "m" + strconv.Itoa(int(c.opts.Mode)) +
			"|a" + strconv.Itoa(int(c.opts.And)) +
			"|p" + hexFloat(c.opts.LpP) +
			"|b" + strconv.Itoa(c.opts.Budget) +
			"|nn" + strconv.FormatBool(c.opts.NaiveNormalize) +
			"|n" + strconv.Itoa(c.n) + "|"
	}
	return c.optsSig + c.structSig(node)
}

// structSig is the memoized structural part of sig.
func (c *fusedCtx) structSig(node *Node) string {
	if c.sigs == nil {
		c.sigs = make(map[*Node]string)
	}
	if s, ok := c.sigs[node]; ok {
		return s
	}
	var s string
	if node.Op == Leaf {
		s = "L:" + node.Label
		if c.opts.LeafID != nil {
			if id := c.opts.LeafID(node); id != "" {
				s = "L:" + id
			}
		}
	} else {
		var b strings.Builder
		if node.Op == NodeAnd {
			b.WriteByte('A')
		} else {
			b.WriteByte('O')
		}
		b.WriteByte('(')
		for j, ch := range node.Children {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.structSig(ch))
			b.WriteString("|w")
			b.WriteString(hexFloat(ch.EffWeight()))
		}
		b.WriteByte(')')
		s = b.String()
	}
	c.sigs[node] = s
	return s
}

// hexFloat formats v losslessly (hex mantissa), so signatures
// distinguish weights that decimal formatting would collapse.
func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// entryFits reports whether a fetched entry matches this evaluation's
// shape (vector length and chunking).
func (c *fusedCtx) entryFits(e *InteriorEntry) bool {
	return e != nil && e.Rows() == c.n && e.Chunks() == c.chunkCount()
}

// collectSubtreeEntries fetches the cache entries of every interior
// DESCENDANT of node (node's own entry is the caller's). The hit is
// only taken when all of them are present: Result.Vec may be asked for
// any descendant's window (drill-down), so every skipped node must
// remain materializable from its own entry. A partial cache (an
// eviction split the subtree) degrades to a miss, never to a missing
// window.
func (c *fusedCtx) collectSubtreeEntries(node *Node) (map[*Node]*InteriorEntry, bool) {
	entries := map[*Node]*InteriorEntry{}
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		for _, ch := range n.Children {
			if ch.Op == Leaf {
				continue
			}
			e := c.opts.InteriorFetch(c.sig(ch))
			if !c.entryFits(e) {
				return false
			}
			entries[ch] = e
			if !walk(ch) {
				return false
			}
		}
		return true
	}
	return entries, walk(node)
}

// useInteriorEntry is the fused evaluator's cache-hit path for an
// interior node: the combine passes of the whole subtree are skipped,
// the cached raw vector is borrowed READ-ONLY, and the normalization
// ranges come from the entries' sketches. Descendant leaves still
// contribute their display params (lazily materialized via Result.Vec
// — their vectors were never inputs to the cached combines, only their
// params were); descendant interior nodes register their own entries
// for lazy materialization.
func (c *fusedCtx) useInteriorEntry(node *Node, e *InteriorEntry, entries map[*Node]*InteriorEntry) ([]float64, NormParams, error) {
	var regLeaves func(n *Node) error
	regLeaves = func(n *Node) error {
		for _, child := range n.Children {
			if child.Op != Leaf {
				if err := regLeaves(child); err != nil {
					return err
				}
				continue
			}
			_, p, err := c.eval(child)
			if err != nil {
				return err
			}
			if c.res.lazy == nil {
				c.res.lazy = make(map[*Node]NormParams)
			}
			c.res.lazy[child] = p
		}
		return nil
	}
	if err := regLeaves(node); err != nil {
		return nil, NormParams{}, err
	}
	for d, de := range entries {
		p, rescans := de.Range(c.keepOf(d))
		if c.res.lazyInt == nil {
			c.res.lazyInt = make(map[*Node]lazyInterior)
		}
		c.res.lazyInt[d] = lazyInterior{raw: de.raw, p: p}
		c.res.SketchHits++
		c.res.SketchRescans += rescans
	}
	if c.nodeScans != nil {
		c.nodeScans[node] = e.scans
	}
	c.res.markBorrowed(node)
	c.res.ByNode[node] = e.raw
	p, rescans := e.Range(c.keepOf(node))
	c.res.SketchHits++
	c.res.SketchRescans += rescans
	return e.raw, p, nil
}
