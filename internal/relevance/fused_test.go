package relevance

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// evaluateReference is the straightforward node-at-a-time pipeline the
// fused evaluator replaced: normalize each leaf, combine children,
// re-normalize every combined vector — one full vector pass (and one
// n-sized allocation) per step. It is kept here as the semantic
// reference the fused implementation must match bit for bit.
func evaluateReference(root *Node, n int, opts EvalOptions) (*Result, error) {
	if root == nil {
		return nil, fmt.Errorf("relevance: nil tree")
	}
	res := &Result{ByNode: make(map[*Node][]float64)}
	var eval func(node *Node) ([]float64, error)
	eval = func(node *Node) ([]float64, error) {
		switch node.Op {
		case Leaf:
			if len(node.Dists) != n {
				return nil, fmt.Errorf("relevance: leaf %q has %d distances, want %d", node.Label, len(node.Dists), n)
			}
			keep := 0
			if !opts.NaiveNormalize {
				keep = KeepCount(opts.Budget, n, node.EffWeight())
			}
			norm := Normalize(node.Dists, keep)
			res.ByNode[node] = norm.Scaled
			return norm.Scaled, nil
		case NodeAnd, NodeOr:
			if len(node.Children) == 0 {
				return nil, fmt.Errorf("relevance: %q has no children", node.Label)
			}
			dists := make([][]float64, len(node.Children))
			weights := make([]float64, len(node.Children))
			for i, child := range node.Children {
				d, err := eval(child)
				if err != nil {
					return nil, err
				}
				dists[i] = d
				weights[i] = child.EffWeight()
			}
			var combined []float64
			var err error
			if node.Op == NodeAnd {
				switch opts.And {
				case ANDEuclidean:
					combined, err = CombineEuclidean(dists, weights)
				case ANDLp:
					combined, err = CombineLp(dists, weights, opts.LpP)
				default:
					combined, err = CombineAnd(dists, weights, opts.Mode)
				}
			} else {
				combined, err = CombineOr(dists, weights, opts.Mode)
			}
			if err != nil {
				return nil, err
			}
			keep := 0
			if !opts.NaiveNormalize {
				keep = KeepCount(opts.Budget, n, node.EffWeight())
			}
			norm := Normalize(combined, keep)
			res.ByNode[node] = norm.Scaled
			return norm.Scaled, nil
		default:
			return nil, fmt.Errorf("relevance: unknown node op %d", node.Op)
		}
	}
	combined, err := eval(root)
	if err != nil {
		return nil, err
	}
	res.Combined = combined
	return res, nil
}

// sameVec compares vectors bit-for-bit, treating NaN as equal to NaN.
func sameVec(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) &&
			!(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			t.Fatalf("%s: item %d: %v vs %v", label, i, a[i], b[i])
		}
	}
}

// TestFusedMatchesReference: the chunk-fused evaluator must be
// bit-identical to the node-at-a-time reference pipeline across random
// trees and every option combination — combine modes, AND combiners,
// naive and reduction-first normalization, serial and parallel chunk
// execution.
func TestFusedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	optVariants := []EvalOptions{
		{},
		{Mode: PaperRaw},
		{NaiveNormalize: true},
		{And: ANDEuclidean},
		{And: ANDLp, LpP: 2},
		{And: ANDLp, LpP: 3.5},
		{Parallel: true, Workers: 4},
	}
	for trial := 0; trial < 40; trial++ {
		// Cross the evalChunk boundary regularly so the chunked passes
		// and the per-chunk range-scan merge are both exercised.
		n := 50 + rng.Intn(2*evalChunk)
		tree := buildRandomTree(rng, n, 3)
		opts := optVariants[trial%len(optVariants)]
		opts.Budget = n / (1 + rng.Intn(4))
		ref, err := evaluateReference(tree, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Evaluate(tree, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameVec(t, "combined", ref.Combined, got.Combined)
		if len(ref.ByNode) != len(got.ByNode) {
			t.Fatalf("ByNode sizes: %d vs %d", len(ref.ByNode), len(got.ByNode))
		}
		for node, rv := range ref.ByNode {
			gv, ok := got.ByNode[node]
			if !ok {
				t.Fatal("missing node in fused ByNode")
			}
			sameVec(t, "node "+node.Label, rv, gv)
		}
	}
}

// TestFusedErrorsMatchReference: validation failures surface with the
// reference pipeline's messages.
func TestFusedErrorsMatchReference(t *testing.T) {
	cases := []struct {
		name string
		root *Node
		opts EvalOptions
		want string
	}{
		{"leaf length", &Node{Op: NodeAnd, Children: []*Node{
			{Op: Leaf, Dists: make([]float64, 10)},
			{Op: Leaf, Label: "short", Dists: make([]float64, 3)},
		}}, EvalOptions{}, "has 3 distances"},
		{"no children", &Node{Op: NodeOr, Label: "empty"}, EvalOptions{}, "no children"},
		{"bad op", &Node{Op: NodeOp(42)}, EvalOptions{}, "unknown node op"},
		{"bad Lp", &Node{Op: NodeAnd, Children: []*Node{
			{Op: Leaf, Dists: make([]float64, 10)},
			{Op: Leaf, Dists: make([]float64, 10)},
		}}, EvalOptions{And: ANDLp, LpP: 0.5}, "Lp needs p >= 1"},
		{"bad weight", &Node{Op: NodeAnd, Children: []*Node{
			{Op: Leaf, Dists: make([]float64, 10), Weight: -2},
			{Op: Leaf, Dists: make([]float64, 10)},
		}}, EvalOptions{}, "invalid weight"},
	}
	for _, tc := range cases {
		refErr := func() string {
			_, err := evaluateReference(tc.root, 10, tc.opts)
			if err == nil {
				return ""
			}
			return err.Error()
		}()
		_, err := Evaluate(tc.root, 10, tc.opts)
		if err == nil {
			t.Fatalf("%s: fused evaluator accepted invalid input", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q missing %q", tc.name, err, tc.want)
		}
		if refErr != "" && err.Error() != refErr {
			t.Fatalf("%s: fused error %q, reference %q", tc.name, err, refErr)
		}
	}
}

// TestEvaluateAllocHook: a caller-provided allocator supplies every
// per-node output buffer, and dirty recycled buffers are harmless
// because the evaluator overwrites them in full.
func TestEvaluateAllocHook(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	tree := buildRandomTree(rng, n, 3)
	want, err := Evaluate(tree, n, EvalOptions{Budget: n / 2})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	handed := make(map[*float64]bool)
	alloc := func(sz int) []float64 {
		calls++
		b := make([]float64, sz)
		for i := range b {
			b[i] = math.NaN() // poison: must be fully overwritten
		}
		handed[&b[0]] = true
		return b
	}
	got, err := Evaluate(tree, n, EvalOptions{Budget: n / 2, Alloc: alloc})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("allocator never called")
	}
	sameVec(t, "combined", want.Combined, got.Combined)
	// Every materialized output vector must be an allocator buffer.
	for node, vec := range got.ByNode {
		if !handed[&vec[0]] {
			t.Fatalf("node %q vector bypassed the allocator", node.Label)
		}
	}
	// A misbehaving allocator (wrong size, nil) falls back to make.
	bad := func(sz int) []float64 { return make([]float64, sz-1) }
	got2, err := Evaluate(tree, n, EvalOptions{Budget: n / 2, Alloc: bad})
	if err != nil {
		t.Fatal(err)
	}
	sameVec(t, "combined fallback", want.Combined, got2.Combined)
}

// TestLeafQuantilesMatchNormRange: the sorted quantile index must
// answer exactly what the scan-plus-selection path answers, for every
// keep count, across NaN/±Inf-laced vectors.
func TestLeafQuantilesMatchNormRange(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(3000)
		dists := make([]float64, n)
		for i := range dists {
			switch rng.Intn(20) {
			case 0:
				dists[i] = math.NaN()
			case 1:
				dists[i] = math.Inf(1)
			case 2:
				dists[i] = math.Inf(-1)
			case 3:
				dists[i] = 0
			default:
				dists[i] = rng.Float64()*200 - 20
			}
		}
		q := BuildLeafQuantiles(dists)
		for _, keep := range []int{0, 1, 2, n / 8, n / 3, n - 1, n, n + 5} {
			want := NormRange(dists, keep)
			got := q.Range(keep)
			if want != got {
				t.Fatalf("trial %d keep %d: %+v vs %+v", trial, keep, want, got)
			}
		}
	}
	// An all-NaN/Inf vector has no finite range either way.
	deg := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	if got := BuildLeafQuantiles(deg).Range(2); !got.NoFinite {
		t.Fatalf("degenerate vector: %+v", got)
	}
}

// TestLazyLeavesMatchEager: under LazyLeaves, Combined is identical,
// leaf vectors are absent from ByNode until Vec materializes them, and
// materialization is bit-identical to the eager evaluation.
func TestLazyLeavesMatchEager(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 50 + rng.Intn(2*evalChunk)
		tree := buildRandomTree(rng, n, 3)
		opts := EvalOptions{Budget: n / 2}
		eager, err := Evaluate(tree, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.LazyLeaves = true
		lazy, err := Evaluate(tree, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameVec(t, "combined", eager.Combined, lazy.Combined)
		if len(lazy.ByNode) >= len(eager.ByNode) && len(eager.ByNode) > 1 {
			t.Fatalf("lazy ByNode has %d entries, eager %d — leaves were materialized eagerly",
				len(lazy.ByNode), len(eager.ByNode))
		}
		for node, ev := range eager.ByNode {
			lv := lazy.Vec(node)
			if lv == nil {
				t.Fatalf("Vec(%q) = nil", node.Label)
			}
			sameVec(t, "node "+node.Label, ev, lv)
			if &lazy.Vec(node)[0] != &lv[0] {
				t.Fatal("Vec rematerialized on second call")
			}
		}
		// After full materialization both maps agree.
		if len(lazy.ByNode) != len(eager.ByNode) {
			t.Fatalf("materialized ByNode %d vs eager %d", len(lazy.ByNode), len(eager.ByNode))
		}
	}
}

// TestCombineOrFastPathEquivalence: the unit-weight fast path must
// agree with the generic math.Pow formulation.
func TestCombineOrFastPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 4000
	k := 3
	dists := make([][]float64, k)
	for j := range dists {
		dists[j] = make([]float64, n)
		for i := range dists[j] {
			switch rng.Intn(12) {
			case 0:
				dists[j][i] = 0
			case 1:
				dists[j][i] = math.NaN()
			default:
				dists[j][i] = rng.Float64() * Scale
			}
		}
	}
	for _, weights := range [][]float64{
		{1, 1, 1},          // all unit weights
		{1, 2, 0.5},        // mixed: w==1 and w==2 lanes take fast paths
		{3, 2, 1},          // the small-integer slider weights
		{1, 0, 1},          // zero weight skip
		nil,                // nil weights → equal (unit) weighting
		{0.25, 0.5, 0.25},  // effSum == 1: root fast path
		{1, 1e-12, 0.9999}, // near-degenerate
	} {
		got, err := CombineOr(dists, weights, WeightNormalized)
		if err != nil {
			t.Fatal(err)
		}
		want := slowCombineOr(dists, weights, WeightNormalized)
		sameVec(t, fmt.Sprintf("or weights %v", weights), want, got)
	}
}

// slowCombineOr is the pre-fast-path formulation: every factor through
// math.Pow. Pow(x, 1) is specified to return x, so the fast path must
// be bit-identical.
func slowCombineOr(dists [][]float64, weights []float64, mode CombineMode) []float64 {
	n := len(dists[0])
	wsum := weightSum(weights)
	effSum := wsum
	if effSum == 0 {
		effSum = float64(len(dists))
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		prod := 1.0
		nan := false
		zero := false
		for j := range dists {
			d := dists[j][i]
			w := effWeight(weights, j, wsum)
			if d == 0 && w > 0 {
				zero = true
				break
			}
			if math.IsNaN(d) {
				nan = true
				continue
			}
			if w == 0 {
				continue
			}
			prod *= math.Pow(d, w)
		}
		switch {
		case zero:
			out[i] = 0
		case nan:
			out[i] = math.NaN()
		case mode == WeightNormalized && prod > 0:
			out[i] = math.Pow(prod, 1/effSum)
		default:
			out[i] = prod
		}
	}
	return out
}

// TestCombineLpFastPathEquivalence: the p == 2 square-and-sqrt fast
// path must agree with the generic Pow formulation on normal-range
// inputs (Pow(|d|, 2) and d*d round the exact product once each, and
// Go's Pow(x, 0.5) is defined as Sqrt(x)).
func TestCombineLpFastPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 4000
	dists := make([][]float64, 3)
	for j := range dists {
		dists[j] = make([]float64, n)
		for i := range dists[j] {
			dists[j][i] = rng.Float64() * Scale
		}
	}
	weights := []float64{1, 2, 0.5}
	got, err := CombineLp(dists, weights, 2)
	if err != nil {
		t.Fatal(err)
	}
	wsum := weightSum(weights)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := range dists {
			acc += effWeight(weights, j, wsum) * math.Pow(math.Abs(dists[j][i]), 2)
		}
		want[i] = math.Pow(acc, 0.5)
	}
	sameVec(t, "lp p=2", want, got)
	// CombineEuclidean routes through the same fast path.
	eu, err := CombineEuclidean(dists, weights)
	if err != nil {
		t.Fatal(err)
	}
	sameVec(t, "euclidean", want, eu)
}
