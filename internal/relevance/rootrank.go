package relevance

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/topk"
)

// This file implements the rank-before-scale pipeline behind
// EvalOptions.DeferRoot.
//
// The eager evaluator finishes a run with two n-wide passes that exist
// only to feed the ranking: the root combine kernel applies its final
// monotonic scalar transform (the geometric root (·)^(1/Σw), the Lp
// root, the weight-normalized division) to every element, and the root
// finalize pass re-normalizes all n combined values onto [0, Scale] —
// after which the engine selects the k ≪ n it will ever display. Both
// transforms are monotone non-decreasing, so the ORDER of the scaled
// values is already determined by the raw combined values; the only
// thing the transforms add to the ranking is ties (values clamped to
// Scale, degenerate ranges collapsing to 0, rounding collisions), and
// ties are resolved by item index.
//
// The deferred root therefore:
//
//  1. combines chunks into RAW values only (raw kernels in combine.go),
//     on demand, chunk by chunk;
//  2. streams raw values through a threshold-seeded lexicographic
//     (value, index) selector — topk.StreamSelector — skipping whole
//     chunks whose precomputed raw lower bound cannot beat the running
//     k-th candidate (block pruning; the bounds fold the per-leaf chunk
//     range stats through the monotone child scalings);
//  3. applies the deferred transforms only to the selected survivors,
//     and resolves the clamp-induced tie class at the cut EXACTLY: the
//     raw-domain preimage [loTie, hiTie] of the k-th scaled value is
//     found by monotone bisection (topk.SupWhere), every processed
//     element inside it is a tie ordered by index, and a skipped chunk
//     either provably sits inside the tie class (preimage unbounded —
//     the Scale clamp), provably outside it (bound > hiTie), or is
//     materialized after all.
//
// The result — Order, Sorted, NaN attribution, and the lazily
// materialized Combined vector — is bit-identical to the eager
// pipeline followed by topk.SelectKWithIndex, which the property tests
// in rootrank_test.go and internal/core assert against Options.FullSort.

// Combiner kinds of a deferred root.
const (
	cmbLeaf = iota // root is a single leaf: raw = Dists, t = identity
	cmbAnd
	cmbOr
	cmbLp
)

// RootRanking is the outcome of Result.RankRoot: the top-K of the
// scaled combined distances plus the attribution the engine surfaces.
type RootRanking struct {
	// Order is a permutation of [0, n); the first K entries are the
	// exact head of the scaled ranking (ascending distance, NaN last,
	// ties by index), the remainder is in unspecified order. Sorted
	// holds the scaled distances aligned with Order's first K entries.
	Order  []int
	Sorted []float64
	K      int
	// NaNs is the exact number of uncolorable (NaN) combined values.
	NaNs int
	// Threshold is the raw-domain k-th value — the seed for the next
	// recalculation's pruning. NaN when the selection had fewer than K
	// comparable values.
	Threshold float64
	// Pruned and Chunks attribute the block pruning: chunks whose
	// combine work was skipped outright, out of the total.
	Pruned, Chunks int
	// ScaleTime is the portion of the ranking spent scaling survivors
	// and resolving the tie cut (the engine's Scale stage).
	ScaleTime time.Duration
}

// rootDefer carries the deferred root of one evaluation. All access is
// serialized by the owning Result's mutex.
type rootDefer struct {
	res  *Result
	node *Node
	n    int

	// Children of a combiner root (empty for cmbLeaf).
	children []*Node
	raw      [][]float64  // child raw vectors (leaf Dists, interior raw combined)
	cparams  []NormParams // child scaling params
	scaled   [][]float64  // pre-materialized scaled child (eager leaves); nil → scale per chunk
	ws       []float64
	effSum   float64
	lpP      float64
	combiner int
	t        rootTransform
	keep     int // KeepCount of the root (0 under NaiveNormalize)

	// pending maps the root's raw interior children to their params;
	// Result.Vec finalizes them in place on demand.
	pending map[*Node]NormParams

	out     []float64 // raw combined values (cmbLeaf: aliases node.Dists)
	state   []byte    // per chunk: 0 = unmaterialized, 1 = raw in out
	scans   []rangeScan
	scratch [][]float64 // per-child chunk scratch (nil where scaled[j] serves)

	// Block-pruning inputs, valid when haveBounds: per-chunk raw lower
	// bound and NaN-freedom proof.
	bounds     []float64
	nanFree    []bool
	haveBounds bool

	// leafNaNs is the exact NaN count of a leaf root, known at build.
	leafNaNs int

	params      NormParams // root normalization params
	paramsKnown bool
	ranking     *RootRanking

	// checkpoint is EvalOptions.Checkpoint captured at build: RankRoot
	// polls it per chunk so a request deadline interrupts the ranking
	// sweep, not just the evaluation that produced it.
	checkpoint func() error
}

// poll reports the captured checkpoint's verdict (nil-safe).
func (rd *rootDefer) poll() error {
	if rd.checkpoint == nil {
		return nil
	}
	return rd.checkpoint()
}

func (rd *rootDefer) chunkCount() int { return (rd.n + evalChunk - 1) / evalChunk }

func (rd *rootDefer) chunkSpan(ci int) (lo, hi int) {
	lo = ci * evalChunk
	hi = lo + evalChunk
	if hi > rd.n {
		hi = rd.n
	}
	return lo, hi
}

// ensureRaw materializes chunk ci's raw combined values into out.
func (rd *rootDefer) ensureRaw(ci int) {
	if rd.state[ci] != 0 {
		return
	}
	if rd.combiner == cmbLeaf {
		// A leaf root's raw values ARE node.Dists; "materializing" just
		// marks the chunk as available to the tie walk.
		rd.state[ci] = 1
		return
	}
	lo, hi := rd.chunkSpan(ci)
	vs := make([][]float64, len(rd.children))
	for j := range rd.children {
		if rd.scaled[j] != nil {
			vs[j] = rd.scaled[j][lo:hi]
			continue
		}
		dst := rd.scratch[j][:hi-lo]
		applyRange(dst, rd.raw[j][lo:hi], rd.cparams[j])
		vs[j] = dst
	}
	dst := rd.out[lo:hi]
	switch rd.combiner {
	case cmbAnd:
		combineAndRawRange(dst, vs, rd.ws, 0, hi-lo)
	case cmbOr:
		combineOrRawRange(dst, vs, rd.ws, 0, hi-lo)
	case cmbLp:
		combineLpRawRange(dst, vs, rd.ws, rd.lpP, 0, hi-lo)
	}
	rd.scans[ci] = scanRange(rd.out, lo, hi)
	rd.state[ci] = 1
}

// ensureAllRaw materializes every chunk.
func (rd *rootDefer) ensureAllRaw() {
	for ci := 0; ci < rd.chunkCount(); ci++ {
		rd.ensureRaw(ci)
	}
}

// key is the full monotone raw→display transform: the deferred scalar
// step composed with the root normalization. Bit-identical to what the
// eager pipeline computes per element.
func (rd *rootDefer) key(x float64) float64 {
	return rd.params.Apply(rd.t.apply(x))
}

// domainLo is the lower end of the raw domain for preimage bisection:
// combiner outputs are non-negative by construction, a leaf root's raw
// distances are arbitrary.
func (rd *rootDefer) domainLo() float64 {
	if rd.combiner == cmbLeaf {
		return math.Inf(-1)
	}
	return 0
}

// deriveParams computes the root NormParams after a completed
// selection. cands are the collected candidates (the k lex-smallest
// raw values), pruned reports whether any chunk was skipped. The
// derived params are value-identical to the eager rangeOf over the
// scaled vector: order statistics commute with the monotone deferred
// transform.
func (rd *rootDefer) deriveParams(cands []topk.Cand, pruned bool) NormParams {
	st := newRangeScan()
	for ci := 0; ci < rd.chunkCount(); ci++ {
		if rd.state[ci] != 0 {
			st.merge(rd.scans[ci])
		}
	}
	if pruned {
		// Skipped chunks are provably NaN-free (the gate) and the
		// defer-safety check excludes infinities from the raw domain, so
		// the finite count is exact without touching them. Their minima
		// cannot undercut the candidates' (every skipped element is
		// lex-beyond the running k-th), so the merged minimum stands.
		st.nFinite = rd.n - st.nNaN
	}
	if st.nFinite == 0 {
		return NormParams{NoFinite: true}
	}
	keep := rd.keep
	if keep <= 0 || keep > st.nFinite {
		keep = st.nFinite
	}
	p := NormParams{Kept: keep, DMin: rd.t.apply(st.minFinite)}
	if p.DMin > 0 {
		p.DMin = 0
	}
	switch {
	case keep >= st.nFinite:
		// Everything kept: the maximum decides. Unreachable when chunks
		// were skipped (the pruning gate bounds keep by the candidate
		// count), so the merged maximum is the global one.
		p.DMax = rd.t.apply(st.maxFinite)
	case keep <= len(cands):
		// The keep smallest values all live in the candidate set (they
		// are the k lex-smallest, keep ≤ k).
		scratch := make([]float64, len(cands))
		for i, c := range cands {
			scratch[i] = c.V
		}
		p.DMax = rd.t.apply(topk.Threshold(scratch, keep))
	default:
		// keep exceeds the selection depth (a low root weight keeps more
		// of the vector than the display budget selects). Pruning is
		// gated off in this regime, so the full raw vector is
		// materialized; select on it directly.
		scratch := append([]float64(nil), rd.out...)
		p.DMax = rd.t.apply(topk.Threshold(scratch, keep+st.nNegInf))
	}
	return p
}

// paramsFromFull derives the root params with every chunk
// materialized — the no-selection path (lazy Combined before any
// ranking, defensive fallbacks). With no candidates and nothing
// pruned, deriveParams takes exactly the full-vector branches.
func (rd *rootDefer) paramsFromFull() NormParams {
	rd.ensureAllRaw()
	return rd.deriveParams(nil, false)
}

// nanTotal is the exact count of NaN combined values after a selection
// pass: processed chunks report theirs, skipped chunks are NaN-free by
// the pruning gate.
func (rd *rootDefer) nanTotal() int {
	if rd.combiner == cmbLeaf {
		return rd.leafNaNs
	}
	total := 0
	for ci := 0; ci < rd.chunkCount(); ci++ {
		if rd.state[ci] != 0 {
			total += rd.scans[ci].nNaN
		}
	}
	return total
}

// boundBeats reports whether a chunk (raw lower bound b, first index
// first) provably cannot contribute anything lexicographically below
// the selector bound (bv, bi): every element of the chunk has value
// ≥ b and index ≥ first.
func boundBeats(b float64, first int, bv float64, bi int) bool {
	return b > bv || (b == bv && first > bi)
}

// RankRoot ranks a deferred root: it selects the K smallest scaled
// combined distances — bit-identically, ties included, to selecting on
// the eagerly scaled vector — while skipping the combine work of every
// chunk whose raw lower bound cannot beat the running selection
// threshold. seed carries the previous recalculation's raw k-th value
// (NaN for none): a stale seed can only cost a re-run, never
// correctness. vals and idx, when n-sized, back the returned
// Sorted/Order slices (buffer pooling); wrong-sized buffers are
// replaced. RankRoot is idempotent: a second call returns the first
// ranking. The only possible error is a tripped evaluation checkpoint
// (request deadline); a canceled call leaves no partial ranking
// memoized and the caller discards the run.
func (r *Result) RankRoot(k int, seed float64, vals []float64, idx []int) (*RootRanking, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rd := r.root
	if rd == nil {
		return nil, nil
	}
	if rd.ranking != nil {
		return rd.ranking, nil
	}
	if err := rd.poll(); err != nil {
		return nil, err
	}
	n := rd.n
	if len(vals) != n {
		vals = make([]float64, n)
	}
	if len(idx) != n {
		idx = make([]int, n)
	}
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	if r.Combined != nil {
		// Someone materialized Combined before ranking: the raw buffer
		// now holds scaled values, so select on those directly.
		sorted, order := topk.SelectKWithIndexInto(r.Combined, k, vals, idx)
		rd.ranking = &RootRanking{Order: order, Sorted: sorted, K: k,
			NaNs: CountNaN(r.Combined), Threshold: math.NaN(), Chunks: rd.chunkCount()}
		return rd.ranking, nil
	}
	rk := &RootRanking{Order: idx, Sorted: vals, K: k, Chunks: rd.chunkCount(), Threshold: math.NaN()}
	if n == 0 || k == 0 {
		rd.ensureAllRaw()
		if !rd.paramsKnown {
			rd.params, rd.paramsKnown = rd.paramsFromFull(), true
		}
		rk.NaNs = rd.nanTotal()
		for i := range idx {
			idx[i] = i
		}
		rd.ranking = rk
		return rk, nil
	}

	// Phase 1: stream raw values chunk by chunk through the selector,
	// skipping chunks the bound rules out. The checkpoint is polled per
	// chunk, so a deadline interrupts the sweep mid-selection.
	prunable := rd.haveBounds && (rd.combiner == cmbLeaf || (rd.keep >= 1 && rd.keep <= k))
	pass := func(sel *topk.StreamSelector) (pruned int, err error) {
		for ci := 0; ci < rd.chunkCount(); ci++ {
			if err := rd.poll(); err != nil {
				return 0, err
			}
			lo, hi := rd.chunkSpan(ci)
			if prunable && rd.state[ci] == 0 && rd.nanFree[ci] {
				if bv, bi, ok := sel.Bound(); ok && boundBeats(rd.bounds[ci], lo, bv, bi) {
					pruned++
					continue
				}
			}
			rd.ensureRaw(ci)
			sel.OfferSlice(rd.out[lo:hi], lo)
		}
		return pruned, nil
	}
	sel := topk.NewStreamSelector(k, seed)
	pruned, err := pass(sel)
	if err != nil {
		return nil, err
	}
	cands, kth, complete := sel.Finish()
	if !complete && (pruned > 0 || !math.IsNaN(seed)) {
		// The carried-over threshold was too tight for the perturbed
		// distribution (weights moved the raw domain): re-run unseeded.
		// Materialized chunks are memoized, so this costs at most one
		// extra sweep.
		sel = topk.NewStreamSelector(k, math.NaN())
		pruned, err = pass(sel)
		if err != nil {
			return nil, err
		}
		cands, kth, complete = sel.Finish()
	}
	if pruned > 0 && rd.combiner != cmbLeaf {
		// Defensive: the stats shortcut in deriveParams needs the keep
		// clamp to be a no-op; the gate guarantees keep ≤ k ≤ collected
		// candidates ≤ finite count, so reaching here with keep out of
		// range means a bound was wrong — materialize and fall back.
		if !complete || rd.keep < 1 || rd.keep > len(cands) {
			rd.ensureAllRaw()
			pruned = 0
		}
	}
	scaleStart := time.Now()

	// Phase 2: derive the root params (raw-domain order statistics
	// mapped through the monotone transform).
	if rd.combiner == cmbLeaf {
		// params precomputed at build (quantile index or full scan).
	} else if pruned > 0 {
		rd.params = rd.deriveParams(cands, true)
	} else {
		rd.params = rd.deriveParams(cands, false)
	}
	rd.paramsKnown = true
	rk.NaNs = rd.nanTotal()

	// Phase 3: scale the survivors and resolve the tie class at the cut.
	used := make([]uint64, (n+63)/64)
	mark := func(i int) { used[i/64] |= 1 << (uint(i) % 64) }
	rank := 0
	emit := func(s float64, i int) {
		vals[rank], idx[rank] = s, i
		mark(i)
		rank++
	}
	if complete {
		rk.Threshold = kth.V
		sK := rd.key(kth.V)
		domLo := rd.domainLo()
		// Raw-domain preimage of sK: (loTieEx, hiTie]. loTieEx is the
		// largest raw value scaling strictly below sK (NaN when none),
		// hiTie the largest scaling to ≤ sK. Monotonicity makes both
		// exact: raw > loTieEx ⇔ key(raw) ≥ sK, raw ≤ hiTie ⇔ key(raw) ≤ sK.
		hiTie := topk.SupWhere(func(x float64) bool { return rd.key(x) <= sK }, domLo, math.Inf(1))
		loTieEx := topk.SupWhere(func(x float64) bool { return rd.key(x) < sK }, domLo, math.Inf(1))
		// Strictly-below-the-cut candidates, in scaled order with index
		// tiebreaks (distinct raw values may collide in scaled space).
		below := make([]rankedCand, 0, k)
		for _, c := range cands {
			if !math.IsNaN(loTieEx) && c.V <= loTieEx {
				below = append(below, rankedCand{s: rd.key(c.V), i: c.I})
			}
		}
		sortRanked(below)
		for _, b := range below {
			emit(b.s, b.i)
		}
		// Tie fill: walk indices ascending. A skipped chunk is wholly
		// inside the tie class when the preimage is unbounded (the Scale
		// clamp), wholly outside when its bound exceeds hiTie, and
		// materialized otherwise.
		for i := 0; rank < k && i < n; {
			ci := i / evalChunk
			if rd.state[ci] == 0 {
				_, hi := rd.chunkSpan(ci)
				if !(rd.bounds[ci] <= hiTie) {
					i = hi
					continue
				}
				if math.IsInf(hiTie, 1) {
					for ; i < hi && rank < k; i++ {
						emit(sK, i)
					}
					continue
				}
				rd.ensureRaw(ci)
			}
			v := rd.out[i]
			if v <= hiTie && (math.IsNaN(loTieEx) || v > loTieEx) {
				emit(sK, i)
			}
			i++
		}
	} else {
		// Fewer than k comparable values: every comparable ranks (in
		// scaled order), NaNs fill the remainder by index. Nothing was
		// skipped on this path, so out is fully materialized.
		below := make([]rankedCand, 0, len(cands))
		for _, c := range cands {
			below = append(below, rankedCand{s: rd.key(c.V), i: c.I})
		}
		sortRanked(below)
		for _, b := range below {
			emit(b.s, b.i)
		}
		for i := 0; rank < k && i < n; i++ {
			if math.IsNaN(rd.out[i]) {
				emit(math.NaN(), i)
			}
		}
	}
	// Complete the permutation with the unranked indices.
	pos := rank
	for i := 0; i < n && pos < n; i++ {
		if used[i/64]&(1<<(uint(i)%64)) == 0 {
			idx[pos] = i
			pos++
		}
	}
	rk.Pruned = pruned
	rk.ScaleTime = time.Since(scaleStart)
	rd.ranking = rk
	return rk, nil
}

// rankedCand is a survivor of the cut: its scaled value and index.
type rankedCand struct {
	s float64
	i int
}

// sortRanked sorts by (scaled value, index) — the exact display order.
// NaNs cannot occur (candidates are comparable by construction).
func sortRanked(rs []rankedCand) {
	sort.Slice(rs, func(a, b int) bool {
		return rs[a].s < rs[b].s || (rs[a].s == rs[b].s && rs[a].i < rs[b].i)
	})
}

// materializeCombinedLocked produces the root's scaled combined vector
// from the deferred state — bit-identical to the eager pipeline — and
// memoizes it. Caller holds r.mu.
func (r *Result) materializeCombinedLocked() []float64 {
	rd := r.root
	if r.Combined != nil {
		return r.Combined
	}
	if !rd.paramsKnown {
		rd.params, rd.paramsKnown = rd.paramsFromFull(), true
	}
	rd.ensureAllRaw()
	dst := rd.out
	if rd.combiner == cmbLeaf {
		// A leaf root's raw vector is the caller's Dists; scale into a
		// fresh (pooled) buffer like the eager path does.
		dst = r.allocVec()
	}
	finalizeRange(dst, rd.out, rd.t, rd.params)
	r.ByNode[rd.node] = dst
	r.Combined = dst
	return dst
}

// finalizeRange applies the deferred scalar transform and the root
// normalization in one pass: dst[i] = p.Apply(t.apply(src[i])). dst
// and src may alias. Per element this is exactly the eager kernel tail
// followed by applyRange.
func finalizeRange(dst, src []float64, t rootTransform, p NormParams) {
	for i, d := range src {
		dst[i] = p.Apply(t.apply(d))
	}
}

// rootKernelFor maps the root node and options onto the raw combiner
// kind, the deferred transform, and the Lp exponent. Must mirror the
// kernel dispatch of the eager fused pass exactly.
func rootKernelFor(root *Node, opts EvalOptions, effSum float64) (combiner int, t rootTransform, lpP float64) {
	if root.Op == NodeAnd {
		switch opts.And {
		case ANDEuclidean:
			return cmbLp, rootTransform{kind: xformSqrt}, 2
		case ANDLp:
			if opts.LpP == 2 {
				return cmbLp, rootTransform{kind: xformSqrt}, 2
			}
			return cmbLp, rootTransform{kind: xformPowInv, invP: 1 / opts.LpP}, opts.LpP
		default:
			if opts.Mode == WeightNormalized {
				return cmbAnd, rootTransform{kind: xformDivide, c: effSum}, 0
			}
			return cmbAnd, rootTransform{kind: xformIdentity}, 0
		}
	}
	// NodeOr: the geometric root is deferred only when it exists (the
	// eager kernel short-circuits Σw == 1 to the identity).
	if opts.Mode == WeightNormalized && effSum != 1 {
		return cmbOr, rootTransform{kind: xformGeoRoot, c: effSum}, 0
	}
	return cmbOr, rootTransform{kind: xformIdentity}, 0
}

// deferralSafe reports whether the root's deferred transform can be
// applied after ranking without changing any value's finite/NaN
// classification: the raw domain is bounded by U (every child value is
// in [0, Scale]) and t(U) must stay finite. Pathological weights (sums
// overflowing, Σw near zero turning the geometric root into an
// overflowing power) fail the check and fall back to the eager root.
// Invalid inputs (negative/NaN weights, bad Lp exponents) also return
// false so the eager path can raise its canonical error.
func deferralSafe(root *Node, opts EvalOptions) bool {
	if root.Op == Leaf {
		return true
	}
	if root.Op != NodeAnd && root.Op != NodeOr {
		return false
	}
	k := len(root.Children)
	if k == 0 {
		return false
	}
	weights := make([]float64, k)
	for j, child := range root.Children {
		w := child.EffWeight()
		if w < 0 || w != w {
			return false
		}
		weights[j] = w
	}
	if root.Op == NodeAnd && opts.And == ANDLp && (opts.LpP < 1 || opts.LpP != opts.LpP) {
		return false
	}
	ws, effSum := resolveWeights(weights, k)
	combiner, t, lpP := rootKernelFor(root, opts, effSum)
	var u float64
	switch combiner {
	case cmbAnd:
		for j := range ws {
			u += ws[j] * Scale
		}
	case cmbLp:
		if lpP == 2 {
			for j := range ws {
				u += ws[j] * (Scale * Scale)
			}
		} else {
			for j := range ws {
				u += ws[j] * math.Pow(Scale, lpP)
			}
		}
	case cmbOr:
		u = 1
		for j := range ws {
			u *= math.Pow(Scale, ws[j])
		}
	}
	u *= 1 + 1e-6 // headroom over kernel rounding differences
	if math.IsNaN(u) || math.IsInf(u, 0) {
		return false
	}
	v := t.apply(u)
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// buildDeferredRoot evaluates the root's children (subtrees fully, via
// the fused passes) and assembles the deferred root state instead of
// running the root combine pass. Caller has checked deferralSafe.
func (c *fusedCtx) buildDeferredRoot(root *Node) error {
	res := c.res
	n := c.n
	rd := &rootDefer{res: res, node: root, n: n, keep: c.keepOf(root), pending: make(map[*Node]NormParams),
		checkpoint: c.opts.Checkpoint}
	nchunks := rd.chunkCount()
	if root.Op == Leaf {
		if len(root.Dists) != n {
			return fmt.Errorf("relevance: leaf %q has %d distances, want %d", root.Label, len(root.Dists), n)
		}
		rd.combiner = cmbLeaf
		rd.t = rootTransform{kind: xformIdentity}
		rd.out = root.Dists
		rd.state = make([]byte, nchunks)
		rd.scans = make([]rangeScan, nchunks)
		if root.Quantiles != nil {
			rd.params = root.Quantiles.Range(rd.keep)
			rd.leafNaNs = root.Quantiles.NaNs()
		} else {
			rd.params = NormRange(root.Dists, rd.keep)
			if root.ChunkStats != nil && root.ChunkStats.Chunks() == nchunks {
				for _, c := range root.ChunkStats.nans {
					rd.leafNaNs += int(c)
				}
			} else {
				rd.leafNaNs = CountNaN(root.Dists)
			}
		}
		rd.paramsKnown = true
		if st := root.ChunkStats; st != nil && st.Chunks() == nchunks {
			rd.bounds = st.mins
			rd.nanFree = make([]bool, nchunks)
			for ci := range rd.nanFree {
				rd.nanFree[ci] = st.nans[ci] == 0
			}
			rd.haveBounds = true
		}
		res.root = rd
		return nil
	}
	if len(root.Children) == 0 {
		return fmt.Errorf("relevance: %q has no children", root.Label)
	}
	if root.Op == NodeAnd && c.opts.And == ANDLp && (c.opts.LpP < 1 || c.opts.LpP != c.opts.LpP) {
		return fmt.Errorf("relevance: Lp needs p >= 1, got %v", c.opts.LpP)
	}
	k := len(root.Children)
	rd.children = root.Children
	rd.raw = make([][]float64, k)
	rd.cparams = make([]NormParams, k)
	rd.scaled = make([][]float64, k)
	weights := make([]float64, k)
	for j, child := range root.Children {
		v, p, err := c.eval(child)
		if err != nil {
			return err
		}
		rd.raw[j], rd.cparams[j] = v, p
		w := child.EffWeight()
		if w < 0 || w != w {
			return fmt.Errorf("relevance: invalid weight %v at %d", w, j)
		}
		weights[j] = w
		switch {
		case child.Op != Leaf:
			// The interior child's ByNode buffer stays RAW; it finalizes
			// in place — after the root's raw chunks no longer need it —
			// on the first Vec.
			rd.pending[child] = p
		case c.opts.LazyLeaves:
			res.lazy[child] = p
		default:
			// Eager leaves materialize their scaled vector now (the
			// ByNode contract of non-lazy evaluation), and the raw
			// chunks combine straight from it.
			buf := c.alloc()
			c.forChunks(func(_, _, lo, hi int) {
				applyRange(buf[lo:hi], v[lo:hi], p)
			})
			res.ByNode[child] = buf
			rd.scaled[j] = buf
		}
	}
	rd.ws, rd.effSum = resolveWeights(weights, k)
	rd.combiner, rd.t, rd.lpP = rootKernelFor(root, c.opts, rd.effSum)
	rd.out = c.alloc()
	rd.state = make([]byte, nchunks)
	rd.scans = make([]rangeScan, nchunks)
	rd.scratch = make([][]float64, k)
	for j := range rd.scratch {
		if rd.scaled[j] == nil {
			rd.scratch[j] = make([]float64, evalChunk)
		}
	}
	rd.buildBounds(c)
	res.root = rd
	return nil
}

// buildBounds folds the children's per-chunk range stats into raw
// lower bounds on the root's combined value, chunk by chunk. Leaf
// children contribute their cached LeafChunkStats (missing stats
// disable pruning for the whole run — correctness never depends on
// bounds); interior children contribute the per-chunk scans their own
// fused pass just computed. The scaled chunk minimum of child j is
// Apply(raw chunk minimum) exactly, because Apply is monotone; the
// kernels then fold those minima with the same operations (and the
// same order) as the per-element combine, which makes the bound exact
// for the monotone fast paths. Only math.Pow factors get a downward
// safety margin (Pow is not guaranteed monotone to the last ulp).
func (rd *rootDefer) buildBounds(c *fusedCtx) {
	nchunks := rd.chunkCount()
	mins := make([][]float64, len(rd.children))
	nans := make([][]int32, len(rd.children))
	for j, child := range rd.children {
		if child.Op == Leaf {
			st := child.ChunkStats
			if st == nil || st.Chunks() != nchunks {
				return
			}
			mins[j], nans[j] = st.mins, st.nans
			continue
		}
		scans := c.nodeScans[child]
		if len(scans) != nchunks {
			return
		}
		m := make([]float64, nchunks)
		nn := make([]int32, nchunks)
		for ci, s := range scans {
			if s.nNegInf > 0 {
				m[ci] = math.Inf(-1)
			} else {
				m[ci] = s.minFinite // +Inf for all-NaN chunks; gated by nans
			}
			nn[ci] = int32(s.nNaN)
		}
		mins[j], nans[j] = m, nn
	}
	rd.bounds = make([]float64, nchunks)
	rd.nanFree = make([]bool, nchunks)
	for ci := 0; ci < nchunks; ci++ {
		free := true
		for j := range nans {
			if nans[j][ci] != 0 {
				free = false
				break
			}
		}
		rd.nanFree[ci] = free
		if !free {
			rd.bounds[ci] = math.NaN() // never consulted
			continue
		}
		rd.bounds[ci] = rd.chunkBound(mins, ci)
	}
	rd.haveBounds = true
}

// chunkBound combines the children's scaled chunk minima with the raw
// kernel's arithmetic.
func (rd *rootDefer) chunkBound(mins [][]float64, ci int) float64 {
	powUsed := false
	var b float64
	switch rd.combiner {
	case cmbAnd:
		for j := range rd.children {
			m := rd.cparams[j].Apply(mins[j][ci])
			b += rd.ws[j] * m
		}
	case cmbLp:
		if rd.lpP == 2 {
			for j := range rd.children {
				m := rd.cparams[j].Apply(mins[j][ci])
				b += rd.ws[j] * (m * m)
			}
		} else {
			powUsed = true
			for j := range rd.children {
				m := rd.cparams[j].Apply(mins[j][ci])
				b += rd.ws[j] * math.Pow(math.Abs(m), rd.lpP)
			}
		}
	case cmbOr:
		prod := 1.0
		for j := range rd.children {
			m := rd.cparams[j].Apply(mins[j][ci])
			w := rd.ws[j]
			if m == 0 && w > 0 {
				return 0
			}
			switch w {
			case 0:
			case 1:
				prod *= m
			case 2:
				prod *= m * m
			case 3:
				prod *= m * m * m
			default:
				prod *= math.Pow(m, w)
				powUsed = true
			}
		}
		b = prod
	}
	if powUsed && b > 0 {
		b = math.Nextafter(b*(1-1e-9), math.Inf(-1))
	}
	return b
}
