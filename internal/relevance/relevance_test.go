package relevance

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeepCount(t *testing.T) {
	if KeepCount(100, 1000, 1) != 100 {
		t.Errorf("w=1: %d", KeepCount(100, 1000, 1))
	}
	if KeepCount(100, 1000, 0.5) != 200 {
		t.Errorf("w=0.5: %d", KeepCount(100, 1000, 0.5))
	}
	if KeepCount(100, 150, 0.5) != 150 {
		t.Errorf("cap at n: %d", KeepCount(100, 150, 0.5))
	}
	if KeepCount(100, 1000, 0) != 1000 {
		t.Errorf("tiny weight floors: %d", KeepCount(100, 1000, 0))
	}
	if KeepCount(0, 50, 1) != 50 {
		t.Errorf("zero budget keeps all: %d", KeepCount(0, 50, 1))
	}
	if KeepCount(100, 0, 1) != 0 {
		t.Errorf("empty data: %d", KeepCount(100, 0, 1))
	}
}

func TestNormalizeBasic(t *testing.T) {
	n := Normalize([]float64{0, 5, 10}, 0)
	if n.DMin != 0 || n.DMax != 10 {
		t.Fatalf("range: %+v", n)
	}
	if n.Scaled[0] != 0 || n.Scaled[2] != Scale {
		t.Fatalf("endpoints: %v", n.Scaled)
	}
	if math.Abs(n.Scaled[1]-Scale/2) > 1e-9 {
		t.Fatalf("midpoint: %v", n.Scaled[1])
	}
}

func TestNormalizeOutlierClamps(t *testing.T) {
	// One extreme value: with reduction-first (keep=4) the outlier
	// clamps to Scale instead of compressing everyone else near zero.
	dists := []float64{1, 2, 3, 4, 1e9}
	robust := Normalize(dists, 4)
	if robust.DMax != 4 {
		t.Fatalf("robust range: %+v", robust)
	}
	if robust.Scaled[4] != Scale {
		t.Fatalf("outlier should clamp: %v", robust.Scaled[4])
	}
	if robust.Scaled[1] < 50 {
		t.Fatalf("inliers should spread over the range: %v", robust.Scaled)
	}
	naive := Normalize(dists, 0)
	if naive.Scaled[1] > 1 {
		t.Fatalf("naive normalization should compress inliers: %v", naive.Scaled)
	}
}

func TestNormalizeSpecials(t *testing.T) {
	n := Normalize([]float64{math.NaN(), math.Inf(1), math.Inf(-1), 5}, 0)
	if !math.IsNaN(n.Scaled[0]) {
		t.Error("NaN passes through")
	}
	if n.Scaled[1] != Scale {
		t.Error("+Inf clamps to Scale")
	}
	if n.Scaled[2] != 0 {
		t.Error("-Inf clamps to 0")
	}
	// Constant nonzero distance: nothing fulfills, everything maps to
	// the dark end (the paper's "almost black in cases where all the
	// data are completely wrong results").
	c := Normalize([]float64{7, 7, 7}, 0)
	for _, v := range c.Scaled {
		if v != Scale {
			t.Errorf("constant: %v", c.Scaled)
		}
	}
	// Constant zero distance: everything is a correct answer (yellow).
	z := Normalize([]float64{0, 0}, 0)
	for _, v := range z.Scaled {
		if v != 0 {
			t.Errorf("all-zero: %v", z.Scaled)
		}
	}
	// All-NaN/empty.
	e := Normalize([]float64{math.NaN()}, 0)
	if !math.IsNaN(e.Scaled[0]) {
		t.Error("all-NaN")
	}
	if got := Normalize(nil, 0); len(got.Scaled) != 0 {
		t.Error("empty")
	}
}

// Property: Normalize maps finite inputs into [0, Scale] and preserves
// order among values within the kept range.
func TestNormalizeProperty(t *testing.T) {
	f := func(raw []float64, keepRaw uint8) bool {
		dists := make([]float64, 0, len(raw))
		for _, d := range raw {
			if !math.IsNaN(d) && !math.IsInf(d, 0) {
				dists = append(dists, math.Abs(d))
			}
		}
		if len(dists) == 0 {
			return true
		}
		keep := int(keepRaw)%len(dists) + 1
		n := Normalize(dists, keep)
		for i, v := range n.Scaled {
			if v < 0 || v > Scale {
				return false
			}
			for j := range n.Scaled[:i] {
				a, b := dists[j], dists[i]
				if a < b && n.Scaled[j] > n.Scaled[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRelevanceFactor(t *testing.T) {
	if RelevanceFactor(0) != 1 {
		t.Error("exact answers have relevance 1")
	}
	if RelevanceFactor(math.NaN()) != 0 {
		t.Error("uncolorable items have relevance 0")
	}
	if !(RelevanceFactor(1) > RelevanceFactor(2)) {
		t.Error("relevance must decrease with distance")
	}
	rf := RelevanceFactors([]float64{0, 1, math.NaN()})
	if rf[0] != 1 || rf[2] != 0 {
		t.Errorf("factors: %v", rf)
	}
}

func TestCombineAnd(t *testing.T) {
	dists := [][]float64{{0, 100, 200}, {100, 100, 0}}
	got, err := CombineAnd(dists, []float64{1, 1}, WeightNormalized)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{50, 100, 100}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Weighted: first predicate 3x as important.
	got, _ = CombineAnd(dists, []float64{3, 1}, WeightNormalized)
	if math.Abs(got[0]-25) > 1e-9 { // (3·0 + 1·100)/4
		t.Fatalf("weighted: %v", got)
	}
	// Paper-raw mode: plain Σ w·d.
	got, _ = CombineAnd(dists, []float64{3, 1}, PaperRaw)
	if got[0] != 100 {
		t.Fatalf("raw: %v", got)
	}
	// NaN propagates.
	got, _ = CombineAnd([][]float64{{math.NaN()}, {1}}, nil, WeightNormalized)
	if !math.IsNaN(got[0]) {
		t.Fatal("NaN should propagate through AND")
	}
}

func TestCombineOr(t *testing.T) {
	// One fulfilled predicate (d=0) makes the item a correct answer.
	dists := [][]float64{{0, 100}, {255, 100}}
	got, err := CombineOr(dists, []float64{1, 1}, WeightNormalized)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("zero component must zero the OR: %v", got)
	}
	if math.Abs(got[1]-100) > 1e-9 { // geometric mean of equal values
		t.Fatalf("geometric mean: %v", got)
	}
	// Weighted geometric mean: (4^1 · 16^1)^(1/2) = 8.
	got, _ = CombineOr([][]float64{{4}, {16}}, []float64{1, 1}, WeightNormalized)
	if math.Abs(got[0]-8) > 1e-9 {
		t.Fatalf("got %v", got)
	}
	// PaperRaw: plain product with weight exponents: 4·16 = 64.
	got, _ = CombineOr([][]float64{{4}, {16}}, []float64{1, 1}, PaperRaw)
	if math.Abs(got[0]-64) > 1e-9 {
		t.Fatalf("raw: %v", got)
	}
	// A fulfilled branch wins over an unknown one (SQL: true OR unknown
	// = true).
	got, _ = CombineOr([][]float64{{math.NaN()}, {0}}, nil, WeightNormalized)
	if got[0] != 0 {
		t.Fatalf("zero branch should beat NaN in OR: %v", got)
	}
	// Without a fulfilled branch, NaN makes the item uncolorable.
	got, _ = CombineOr([][]float64{{math.NaN()}, {5}}, nil, WeightNormalized)
	if !math.IsNaN(got[0]) {
		t.Fatal("NaN without a zero branch should propagate through OR")
	}
	// Zero weight ignores a predicate.
	got, _ = CombineOr([][]float64{{100}, {4}}, []float64{0, 1}, WeightNormalized)
	if math.Abs(got[0]-4) > 1e-9 {
		t.Fatalf("zero-weight predicate should vanish: %v", got)
	}
}

func TestCombineShapeErrors(t *testing.T) {
	if _, err := CombineAnd(nil, nil, WeightNormalized); err == nil {
		t.Error("no vectors")
	}
	if _, err := CombineAnd([][]float64{{1}, {1, 2}}, nil, WeightNormalized); err == nil {
		t.Error("ragged vectors")
	}
	if _, err := CombineAnd([][]float64{{1}}, []float64{1, 2}, WeightNormalized); err == nil {
		t.Error("weight count mismatch")
	}
	if _, err := CombineAnd([][]float64{{1}}, []float64{-1}, WeightNormalized); err == nil {
		t.Error("negative weight")
	}
	if _, err := CombineOr([][]float64{{1}}, []float64{math.NaN()}, WeightNormalized); err == nil {
		t.Error("NaN weight")
	}
}

// Property: AND result is bounded by child min/max; OR result never
// exceeds the max child (for values in [0, Scale]).
func TestCombineBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(4)
		n := 1 + rng.Intn(50)
		dists := make([][]float64, m)
		weights := make([]float64, m)
		for j := range dists {
			weights[j] = rng.Float64()*2 + 0.01
			dists[j] = make([]float64, n)
			for i := range dists[j] {
				dists[j][i] = rng.Float64() * Scale
			}
		}
		and, err := CombineAnd(dists, weights, WeightNormalized)
		if err != nil {
			t.Fatal(err)
		}
		or, err := CombineOr(dists, weights, WeightNormalized)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for j := 0; j < m; j++ {
				lo = math.Min(lo, dists[j][i])
				hi = math.Max(hi, dists[j][i])
			}
			if and[i] < lo-1e-9 || and[i] > hi+1e-9 {
				t.Fatalf("AND out of bounds: %v not in [%v,%v]", and[i], lo, hi)
			}
			if or[i] < 0 || or[i] > hi+1e-9 {
				t.Fatalf("OR out of bounds: %v > %v", or[i], hi)
			}
		}
	}
}

func TestCombineLpAndEuclidean(t *testing.T) {
	dists := [][]float64{{3}, {4}}
	got, err := CombineEuclidean(dists, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-5) > 1e-9 {
		t.Fatalf("3-4-5: %v", got)
	}
	if _, err := CombineLp(dists, nil, 0.5); err == nil {
		t.Error("p < 1 should fail")
	}
	got, err = CombineLp([][]float64{{1}, {1}}, nil, 1)
	if err != nil || math.Abs(got[0]-2) > 1e-9 {
		t.Fatalf("L1: %v %v", got, err)
	}
}

func TestMahalanobis(t *testing.T) {
	// Identity covariance reduces to Euclidean.
	dists := [][]float64{{3, 0}, {4, 0}}
	cov := [][]float64{{1, 0}, {0, 1}}
	got, err := Mahalanobis(dists, cov)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-5) > 1e-9 || got[1] != 0 {
		t.Fatalf("identity: %v", got)
	}
	// Scaling covariance: var 4 in first dim halves its contribution.
	cov = [][]float64{{4, 0}, {0, 1}}
	got, err = Mahalanobis([][]float64{{4}, {0}}, cov)
	if err != nil || math.Abs(got[0]-2) > 1e-9 {
		t.Fatalf("scaled: %v %v", got, err)
	}
	// Singular covariance fails.
	if _, err := Mahalanobis(dists, [][]float64{{1, 1}, {1, 1}}); err == nil {
		t.Error("singular should fail")
	}
	// Shape errors.
	if _, err := Mahalanobis(nil, cov); err == nil {
		t.Error("no vectors")
	}
	if _, err := Mahalanobis([][]float64{{1}, {1, 2}}, cov); err == nil {
		t.Error("ragged")
	}
	if _, err := Mahalanobis([][]float64{{1}, {2}}, [][]float64{{1}}); err == nil {
		t.Error("bad covariance shape")
	}
}

func TestEvaluateTree(t *testing.T) {
	// (p1 OR p2) AND p3 over 4 items.
	p1 := &Node{Op: Leaf, Label: "p1", Dists: []float64{0, 10, 20, 30}}
	p2 := &Node{Op: Leaf, Label: "p2", Dists: []float64{30, 0, 20, 10}}
	p3 := &Node{Op: Leaf, Label: "p3", Dists: []float64{0, 0, 5, 40}}
	or := &Node{Op: NodeOr, Label: "or", Children: []*Node{p1, p2}}
	root := &Node{Op: NodeAnd, Label: "root", Children: []*Node{or, p3}}
	res, err := Evaluate(root, 4, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Combined) != 4 {
		t.Fatalf("combined: %v", res.Combined)
	}
	// Items 0 and 1 fulfill one OR branch and p3 exactly → combined 0.
	if res.Combined[0] != 0 || res.Combined[1] != 0 {
		t.Fatalf("exact answers should stay 0: %v", res.Combined)
	}
	// Item 3 is the worst on both sides → Scale after normalization.
	if res.Combined[3] != Scale {
		t.Fatalf("worst item should hit Scale: %v", res.Combined)
	}
	// Every node has a normalized vector.
	for _, n := range []*Node{p1, p2, p3, or, root} {
		vec, ok := res.ByNode[n]
		if !ok || len(vec) != 4 {
			t.Fatalf("missing per-node vector for %s", n.Label)
		}
		for _, v := range vec {
			if v < 0 || v > Scale {
				t.Fatalf("node %s out of range: %v", n.Label, vec)
			}
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, 3, EvalOptions{}); err == nil {
		t.Error("nil tree")
	}
	bad := &Node{Op: Leaf, Dists: []float64{1}}
	if _, err := Evaluate(bad, 3, EvalOptions{}); err == nil {
		t.Error("length mismatch")
	}
	empty := &Node{Op: NodeAnd}
	if _, err := Evaluate(empty, 3, EvalOptions{}); err == nil {
		t.Error("childless interior node")
	}
	unknown := &Node{Op: NodeOp(99)}
	if _, err := Evaluate(unknown, 3, EvalOptions{}); err == nil {
		t.Error("unknown op")
	}
}

func TestEvaluateWeightInfluence(t *testing.T) {
	// Item A is good on p1, bad on p2; item B the reverse. Raising p1's
	// weight must rank A above B.
	mk := func(w1, w2 float64) []float64 {
		p1 := &Node{Op: Leaf, Label: "p1", Weight: w1, Dists: []float64{0, 100, 50}}
		p2 := &Node{Op: Leaf, Label: "p2", Weight: w2, Dists: []float64{100, 0, 50}}
		root := &Node{Op: NodeAnd, Children: []*Node{p1, p2}}
		res, err := Evaluate(root, 3, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Combined
	}
	heavy1 := mk(5, 1)
	if !(heavy1[0] < heavy1[1]) {
		t.Fatalf("w1=5: item A should beat B: %v", heavy1)
	}
	heavy2 := mk(1, 5)
	if !(heavy2[1] < heavy2[0]) {
		t.Fatalf("w2=5: item B should beat A: %v", heavy2)
	}
}

func TestEvaluateNaiveVsRobust(t *testing.T) {
	// The A1 ablation scenario: an outlier in p1 distorts naive
	// normalization so p1 loses its influence; reduction-first keeps
	// item ordering driven by both predicates.
	n := 100
	p1d := make([]float64, n)
	p2d := make([]float64, n)
	for i := 0; i < n; i++ {
		p1d[i] = float64(i)
		p2d[i] = float64(n - i)
	}
	p1d[n-1] = 1e12 // single exceptional value
	build := func() *Node {
		return &Node{Op: NodeAnd, Children: []*Node{
			{Op: Leaf, Label: "p1", Dists: append([]float64(nil), p1d...)},
			{Op: Leaf, Label: "p2", Dists: append([]float64(nil), p2d...)},
		}}
	}
	robust, err := Evaluate(build(), n, EvalOptions{Budget: 50})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Evaluate(build(), n, EvalOptions{Budget: 50, NaiveNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Under naive normalization p1's inlier values all collapse to ≈0,
	// so the combined ordering is dominated by p2 alone: item 0 (p2=100)
	// ranks worst. Under robust normalization item 0 is middling.
	spreadOf := func(vec []float64) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vec[:n/2] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return hi - lo
	}
	// p1's normalized inlier spread should be much larger with robust
	// normalization.
	var p1Robust, p1Naive []float64
	for node, vec := range robust.ByNode {
		if node.Label == "p1" {
			p1Robust = vec
		}
	}
	for node, vec := range naive.ByNode {
		if node.Label == "p1" {
			p1Naive = vec
		}
	}
	if spreadOf(p1Robust) < 10*spreadOf(p1Naive) {
		t.Fatalf("robust spread %v should dwarf naive %v", spreadOf(p1Robust), spreadOf(p1Naive))
	}
}

// Property: evaluated distances are always within [0, Scale] or NaN, and
// sorting by combined distance equals sorting by relevance factor in
// reverse.
func TestEvaluateRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		mkLeaf := func() *Node {
			d := make([]float64, n)
			for i := range d {
				d[i] = rng.Float64() * 100
			}
			return &Node{Op: Leaf, Weight: rng.Float64()*2 + 0.1, Dists: d}
		}
		root := &Node{Op: NodeOr, Children: []*Node{
			mkLeaf(),
			{Op: NodeAnd, Children: []*Node{mkLeaf(), mkLeaf()}},
		}}
		res, err := Evaluate(root, n, EvalOptions{Budget: n / 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Combined {
			if !math.IsNaN(v) && (v < 0 || v > Scale) {
				t.Fatalf("out of range: %v", v)
			}
		}
		rf := RelevanceFactors(res.Combined)
		byDist := make([]int, n)
		byRel := make([]int, n)
		for i := range byDist {
			byDist[i], byRel[i] = i, i
		}
		sort.SliceStable(byDist, func(a, b int) bool { return res.Combined[byDist[a]] < res.Combined[byDist[b]] })
		sort.SliceStable(byRel, func(a, b int) bool { return rf[byRel[a]] > rf[byRel[b]] })
		for i := range byDist {
			if res.Combined[byDist[i]] != res.Combined[byRel[i]] {
				t.Fatal("distance and relevance orderings disagree")
			}
		}
	}
}

func TestHelpers(t *testing.T) {
	vec := []float64{0, 1, math.NaN()}
	if !ZeroPreserved(vec, 0) || ZeroPreserved(vec, 1) || ZeroPreserved(vec, -1) || ZeroPreserved(vec, 5) {
		t.Error("ZeroPreserved")
	}
	if CountNaN(vec) != 1 {
		t.Error("CountNaN")
	}
}
