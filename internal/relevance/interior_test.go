package relevance

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// entryOf builds an InteriorEntry over dists exactly as the fused pass
// would: per-chunk scans, merged total, copied vector.
func entryOf(dists []float64) *InteriorEntry {
	nchunks := (len(dists) + evalChunk - 1) / evalChunk
	scans := make([]rangeScan, nchunks)
	total := newRangeScan()
	for ci := 0; ci < nchunks; ci++ {
		lo := ci * evalChunk
		hi := lo + evalChunk
		if hi > len(dists) {
			hi = len(dists)
		}
		scans[ci] = scanRange(dists, lo, hi)
		total.merge(scans[ci])
	}
	return newInteriorEntry(dists, scans, total)
}

// TestInteriorEntryRangeMatchesNormRange: for every distribution shape
// (flat — the guard path; clustered — the sketch path; non-finite
// mixes; degenerate) and a sweep of keep counts, the entry's Range must
// return bit-identical params to the reference NormRange over the same
// vector.
func TestInteriorEntryRangeMatchesNormRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gens := map[string]func(n int) []float64{
		"uniform": func(n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = rng.Float64() * 100
			}
			return d
		},
		"clustered": func(n int) []float64 {
			// Most mass far from the low tail: the crossing bucket for
			// small keeps touches few chunks.
			d := make([]float64, n)
			for i := range d {
				if i%977 == 0 {
					d[i] = rng.Float64()
				} else {
					d[i] = 90 + rng.Float64()*10
				}
			}
			return d
		},
		"specials": func(n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				switch i % 13 {
				case 0:
					d[i] = math.NaN()
				case 1:
					d[i] = math.Inf(1)
				case 2:
					d[i] = math.Inf(-1)
				default:
					d[i] = rng.NormFloat64() * 50
				}
			}
			return d
		},
		"constant": func(n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = 42.5
			}
			return d
		},
		"allnan": func(n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = math.NaN()
			}
			return d
		},
		"extremes": func(n int) []float64 {
			// Span overflows float64: the histogram is declined and every
			// query takes the exact fallback.
			d := make([]float64, n)
			for i := range d {
				d[i] = (rng.Float64()*2 - 1) * math.MaxFloat64
			}
			return d
		},
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 100, evalChunk, 3*evalChunk + 17} {
				dists := gen(n)
				e := entryOf(dists)
				keeps := []int{0, 1, 2, n / 100, n / 8, n / 2, n - 1, n, n + 5}
				for _, keep := range keeps {
					want := NormRange(dists, keep)
					got, rescans := e.Range(keep)
					if want.NoFinite != got.NoFinite || want.Kept != got.Kept ||
						math.Float64bits(want.DMin) != math.Float64bits(got.DMin) ||
						math.Float64bits(want.DMax) != math.Float64bits(got.DMax) {
						t.Fatalf("n=%d keep=%d: sketch %+v, reference %+v", n, keep, got, want)
					}
					if rescans < 0 || rescans > e.Chunks() {
						t.Fatalf("n=%d keep=%d: rescans %d out of [0,%d]", n, keep, rescans, e.Chunks())
					}
					// Memoized repeat: same params, zero rescans.
					again, r2 := e.Range(keep)
					if again != got || r2 != 0 {
						t.Fatalf("n=%d keep=%d: memo returned %+v/%d", n, keep, again, r2)
					}
				}
			}
		})
	}
}

// TestInteriorSketchLocalizesRescans: on a clustered distribution with
// a display-budget keep, the sketch must answer from a small fraction
// of the chunks — the incremental claim, not just the exactness one.
func TestInteriorSketchLocalizesRescans(t *testing.T) {
	n := 64 * evalChunk
	dists := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range dists {
		if i/evalChunk == 5 { // low tail lives in one chunk
			dists[i] = rng.Float64()
		} else {
			dists[i] = 50 + rng.Float64()*50
		}
	}
	e := entryOf(dists)
	_, rescans := e.Range(100)
	if rescans == 0 || rescans > e.Chunks()/4 {
		t.Fatalf("rescanned %d of %d chunks, want small non-zero", rescans, e.Chunks())
	}
}

// labelLeaves assigns unique labels (the signature's leaf identity).
func labelLeaves(root *Node) {
	i := 0
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Op == Leaf {
			n.Label = fmt.Sprintf("leaf%d", i)
			i++
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(root)
}

// collectLeaves returns the tree's leaves in walk order.
func collectLeaves(root *Node) []*Node {
	var leaves []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Op == Leaf {
			leaves = append(leaves, n)
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(root)
	return leaves
}

// TestInteriorCacheHitBitIdentical: evaluating with a warm interior
// cache must reproduce the hookless evaluation bit for bit — combined
// vector and every leaf window — across option variants, weight drags,
// and the deferred root; and the cached entries themselves must come
// back byte-identical (the evaluation may only borrow them).
func TestInteriorCacheHitBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	variants := []EvalOptions{
		{},
		{Mode: PaperRaw},
		{And: ANDLp, LpP: 3},
		{LazyLeaves: true},
		{LazyLeaves: true, DeferRoot: true},
		{Parallel: true, Workers: 3},
	}
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(2*evalChunk)
		tree := buildRandomTree(rng, n, 3)
		labelLeaves(tree)
		opts := variants[trial%len(variants)]
		opts.Budget = 1 + n/(1+rng.Intn(6))

		// Cold run fills the store.
		store := map[string]*InteriorEntry{}
		cold := opts
		cold.InteriorStore = func(sig string, e *InteriorEntry) { store[sig] = e }
		if _, err := Evaluate(tree, n, cold); err != nil {
			t.Fatal(err)
		}
		if tree.Op != Leaf && len(store) == 0 {
			t.Fatal("cold run stored no interior entries")
		}
		// Snapshot entry payloads to prove the warm run only borrows.
		snap := map[string][]float64{}
		for sig, e := range store {
			snap[sig] = append([]float64(nil), e.raw...)
		}

		// A weight drag that leaves subtrees reusable: perturb one leaf's
		// weight on half the trials (subtrees not containing it still hit).
		if trial%2 == 1 {
			leaves := collectLeaves(tree)
			leaves[rng.Intn(len(leaves))].Weight += 0.25
		}

		warm := opts
		fetches, hits := 0, 0
		warm.InteriorFetch = func(sig string) *InteriorEntry {
			fetches++
			if e := store[sig]; e != nil {
				hits++
				return e
			}
			return nil
		}
		got, err := Evaluate(tree, n, warm)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Evaluate(tree, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Op != Leaf {
			if fetches == 0 {
				t.Fatal("warm run never consulted the cache")
			}
			if trial%2 == 0 && hits == 0 {
				t.Fatal("undisturbed rerun missed the cache")
			}
			if got.SketchHits != hits {
				t.Fatalf("SketchHits %d, fetch hits %d", got.SketchHits, hits)
			}
		}
		sameVec(t, "combined", ref.MaterializeCombined(), got.MaterializeCombined())
		for i, leaf := range collectLeaves(tree) {
			sameVec(t, fmt.Sprintf("leaf %d", i), ref.Vec(leaf), got.Vec(leaf))
		}
		// Direct interior children of the root materialize through Vec on
		// both paths (exercises the borrowed-pending copy under DeferRoot
		// and the borrowed-root/child scaling when eager).
		if tree.Op != Leaf {
			for i, ch := range tree.Children {
				if ch.Op == Leaf {
					continue
				}
				sameVec(t, fmt.Sprintf("interior child %d", i), ref.Vec(ch), got.Vec(ch))
			}
		}
		for sig, want := range snap {
			sameVec(t, "cached entry "+sig, want, store[sig].raw)
		}
	}
}

// TestInteriorSigExcludesOwnWeight: dragging a node's own weight must
// not change its signature (the raw vector is weight-of-self
// independent), while dragging a child's weight must.
func TestInteriorSigExcludesOwnWeight(t *testing.T) {
	n := 100
	mk := func() *Node {
		a := &Node{Op: Leaf, Label: "a", Weight: 1, Dists: make([]float64, n)}
		b := &Node{Op: Leaf, Label: "b", Weight: 2, Dists: make([]float64, n)}
		return &Node{Op: NodeAnd, Weight: 1, Children: []*Node{a, b}}
	}
	sigOf := func(root *Node) string {
		c := &fusedCtx{opts: EvalOptions{Budget: 10}, n: n}
		return c.sig(root)
	}
	base := mk()
	self := mk()
	self.Weight = 5
	if sigOf(base) != sigOf(self) {
		t.Fatal("own-weight drag changed the signature")
	}
	child := mk()
	child.Children[0].Weight = 5
	if sigOf(base) == sigOf(child) {
		t.Fatal("child-weight drag did not change the signature")
	}
	budget := &fusedCtx{opts: EvalOptions{Budget: 20}, n: n}
	if budget.sig(mk()) == sigOf(mk()) {
		t.Fatal("budget change did not change the signature")
	}
}
