package relevance

import (
	"fmt"
	"math"
)

// CombineMode selects between the paper's exact unnormalized formulas
// and weight-normalized means. With normalized weights the combined
// value stays within [0, Scale] so it can feed further combination
// levels without re-scaling surprises; the unnormalized forms are the
// literal formulas of section 5.2 and remain available for the ablation.
type CombineMode int

const (
	// WeightNormalized divides by the weight sum: AND is the weighted
	// arithmetic mean Σwd/Σw, OR the weighted geometric mean
	// (Πd^w)^(1/Σw).
	WeightNormalized CombineMode = iota
	// PaperRaw uses the paper's literal Σwⱼ·dᵢⱼ and Πdᵢⱼ^wⱼ.
	PaperRaw
)

// CombineAnd combines per-predicate distance vectors with the weighted
// arithmetic mean — the paper's rule for 'AND'-connected condition
// parts. dists[j][i] is predicate j's distance for item i; all vectors
// must share a length. A NaN component makes the item's combined
// distance NaN (uncolorable). A zero weight sum falls back to equal
// weights.
func CombineAnd(dists [][]float64, weights []float64, mode CombineMode) ([]float64, error) {
	n, err := checkShape(dists, weights)
	if err != nil {
		return nil, err
	}
	wsum := weightSum(weights)
	effSum := wsum
	if effSum == 0 {
		effSum = float64(len(dists)) // nil or all-zero weights → equal weighting
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := range dists {
			acc += effWeight(weights, j, wsum) * dists[j][i]
		}
		if mode == WeightNormalized {
			acc /= effSum
		}
		out[i] = acc
	}
	return out, nil
}

// CombineOr combines per-predicate distance vectors with the weighted
// geometric mean — the paper's rule for 'OR'-connected condition parts.
// A single zero component zeroes the combined distance, matching OR
// semantics (one fulfilled predicate makes the item a correct answer) —
// including when other components are NaN, mirroring SQL's
// "true OR unknown = true". A NaN component with no zero component
// makes the item uncolorable: the unknown branch could be arbitrarily
// close, so no distance can be quantified.
func CombineOr(dists [][]float64, weights []float64, mode CombineMode) ([]float64, error) {
	n, err := checkShape(dists, weights)
	if err != nil {
		return nil, err
	}
	wsum := weightSum(weights)
	effSum := wsum
	if effSum == 0 {
		effSum = float64(len(dists)) // nil or all-zero weights → equal weighting
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		prod := 1.0
		nan := false
		zero := false
		for j := range dists {
			d := dists[j][i]
			w := effWeight(weights, j, wsum)
			if d == 0 && w > 0 {
				zero = true
				break
			}
			if math.IsNaN(d) {
				nan = true
				continue
			}
			if w == 0 {
				continue
			}
			prod *= math.Pow(d, w)
		}
		switch {
		case zero:
			out[i] = 0
		case nan:
			out[i] = math.NaN()
		case mode == WeightNormalized && prod > 0:
			out[i] = math.Pow(prod, 1/effSum)
		default:
			out[i] = prod
		}
	}
	return out, nil
}

// CombineLp combines per-predicate distances with the weighted Lp norm
// (p >= 1): (Σ w·d^p)^(1/p). Section 5.2 notes that "for special
// applications other specific distance functions such as the Euclidean,
// Lp or the Mahalanobis distance in n-dimensional space may be used".
func CombineLp(dists [][]float64, weights []float64, p float64) ([]float64, error) {
	if p < 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("relevance: Lp needs p >= 1, got %v", p)
	}
	n, err := checkShape(dists, weights)
	if err != nil {
		return nil, err
	}
	wsum := weightSum(weights)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := range dists {
			d := dists[j][i]
			acc += effWeight(weights, j, wsum) * math.Pow(math.Abs(d), p)
		}
		out[i] = math.Pow(acc, 1/p)
	}
	return out, nil
}

// CombineEuclidean is CombineLp with p = 2.
func CombineEuclidean(dists [][]float64, weights []float64) ([]float64, error) {
	return CombineLp(dists, weights, 2)
}

// Mahalanobis combines per-predicate distances with the Mahalanobis
// form sqrt(dᵀ·Σ⁻¹·d) given the covariance matrix cov of the predicate
// distances. cov must be square with side len(dists) and invertible.
func Mahalanobis(dists [][]float64, cov [][]float64) ([]float64, error) {
	m := len(dists)
	if m == 0 {
		return nil, fmt.Errorf("relevance: no distance vectors")
	}
	n := len(dists[0])
	for j, d := range dists {
		if len(d) != n {
			return nil, fmt.Errorf("relevance: vector %d has length %d, want %d", j, len(d), n)
		}
	}
	inv, err := invert(cov, m)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	row := make([]float64, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			row[j] = dists[j][i]
		}
		var acc float64
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				acc += row[a] * inv[a][b] * row[b]
			}
		}
		if acc < 0 {
			acc = 0 // numerical noise on near-singular covariance
		}
		out[i] = math.Sqrt(acc)
	}
	return out, nil
}

// invert computes the inverse of an m×m matrix by Gauss-Jordan
// elimination with partial pivoting.
func invert(mat [][]float64, m int) ([][]float64, error) {
	if len(mat) != m {
		return nil, fmt.Errorf("relevance: covariance has %d rows, want %d", len(mat), m)
	}
	a := make([][]float64, m)
	inv := make([][]float64, m)
	for i := range a {
		if len(mat[i]) != m {
			return nil, fmt.Errorf("relevance: covariance row %d has %d entries, want %d", i, len(mat[i]), m)
		}
		a[i] = append([]float64(nil), mat[i]...)
		inv[i] = make([]float64, m)
		inv[i][i] = 1
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("relevance: covariance matrix is singular at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		p := a[col][col]
		for c := 0; c < m; c++ {
			a[col][c] /= p
			inv[col][c] /= p
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for c := 0; c < m; c++ {
				a[r][c] -= f * a[col][c]
				inv[r][c] -= f * inv[col][c]
			}
		}
	}
	return inv, nil
}

func checkShape(dists [][]float64, weights []float64) (int, error) {
	if len(dists) == 0 {
		return 0, fmt.Errorf("relevance: no distance vectors")
	}
	if weights != nil && len(weights) != len(dists) {
		return 0, fmt.Errorf("relevance: %d weights for %d vectors", len(weights), len(dists))
	}
	n := len(dists[0])
	for j, d := range dists {
		if len(d) != n {
			return 0, fmt.Errorf("relevance: vector %d has length %d, want %d", j, len(d), n)
		}
	}
	for j, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return 0, fmt.Errorf("relevance: invalid weight %v at %d", w, j)
		}
	}
	return n, nil
}

func weightSum(weights []float64) float64 {
	var s float64
	for _, w := range weights {
		s += w
	}
	return s
}

// effWeight returns weight j, defaulting to 1 when weights are nil or
// all-zero (equal weighting).
func effWeight(weights []float64, j int, wsum float64) float64 {
	if weights == nil || wsum == 0 {
		return 1
	}
	return weights[j]
}
