package relevance

import (
	"fmt"
	"math"
)

// CombineMode selects between the paper's exact unnormalized formulas
// and weight-normalized means. With normalized weights the combined
// value stays within [0, Scale] so it can feed further combination
// levels without re-scaling surprises; the unnormalized forms are the
// literal formulas of section 5.2 and remain available for the ablation.
type CombineMode int

const (
	// WeightNormalized divides by the weight sum: AND is the weighted
	// arithmetic mean Σwd/Σw, OR the weighted geometric mean
	// (Πd^w)^(1/Σw).
	WeightNormalized CombineMode = iota
	// PaperRaw uses the paper's literal Σwⱼ·dᵢⱼ and Πdᵢⱼ^wⱼ.
	PaperRaw
)

// resolveWeights materializes the effective per-vector weights and
// their effective sum: nil or all-zero weights fall back to equal
// weighting, mirroring effWeight/weightSum.
func resolveWeights(weights []float64, k int) (ws []float64, effSum float64) {
	wsum := weightSum(weights)
	ws = make([]float64, k)
	for j := range ws {
		ws[j] = effWeight(weights, j, wsum)
	}
	effSum = wsum
	if effSum == 0 {
		effSum = float64(k)
	}
	return ws, effSum
}

// CombineAnd combines per-predicate distance vectors with the weighted
// arithmetic mean — the paper's rule for 'AND'-connected condition
// parts. dists[j][i] is predicate j's distance for item i; all vectors
// must share a length. A NaN component makes the item's combined
// distance NaN (uncolorable). A zero weight sum falls back to equal
// weights.
func CombineAnd(dists [][]float64, weights []float64, mode CombineMode) ([]float64, error) {
	n, err := checkShape(dists, weights)
	if err != nil {
		return nil, err
	}
	ws, effSum := resolveWeights(weights, len(dists))
	out := make([]float64, n)
	combineAndRange(out, dists, ws, effSum, mode, 0, n)
	return out, nil
}

// combineAndRange is the chunk kernel of CombineAnd: it fills
// dst[lo:hi] from dists[...][lo:hi]. ws/effSum come from
// resolveWeights; the fused evaluator calls it per chunk.
func combineAndRange(dst []float64, dists [][]float64, ws []float64, effSum float64, mode CombineMode, lo, hi int) {
	for i := lo; i < hi; i++ {
		var acc float64
		for j := range dists {
			acc += ws[j] * dists[j][i]
		}
		if mode == WeightNormalized {
			acc /= effSum
		}
		dst[i] = acc
	}
}

// CombineOr combines per-predicate distance vectors with the weighted
// geometric mean — the paper's rule for 'OR'-connected condition parts.
// A single zero component zeroes the combined distance, matching OR
// semantics (one fulfilled predicate makes the item a correct answer) —
// including when other components are NaN, mirroring SQL's
// "true OR unknown = true". A NaN component with no zero component
// makes the item uncolorable: the unknown branch could be arbitrarily
// close, so no distance can be quantified.
func CombineOr(dists [][]float64, weights []float64, mode CombineMode) ([]float64, error) {
	n, err := checkShape(dists, weights)
	if err != nil {
		return nil, err
	}
	ws, effSum := resolveWeights(weights, len(dists))
	out := make([]float64, n)
	combineOrRange(out, dists, ws, effSum, mode, 0, n)
	return out, nil
}

// combineOrRange is the chunk kernel of CombineOr. Small integer
// weights take fast paths past math.Pow — exact ones: Pow(x, 1) is
// specified to return x, and for y in {2, 3} Pow's
// exponentiation-by-squaring performs the same rounding sequence as
// x*x and (x*x)*x in the normal range. This matters in the hot
// interactive loop, where weights overwhelmingly are 1 or small slider
// integers.
func combineOrRange(dst []float64, dists [][]float64, ws []float64, effSum float64, mode CombineMode, lo, hi int) {
	for i := lo; i < hi; i++ {
		prod := 1.0
		nan := false
		zero := false
		for j := range dists {
			d := dists[j][i]
			w := ws[j]
			if d == 0 && w > 0 {
				zero = true
				break
			}
			if math.IsNaN(d) {
				nan = true
				continue
			}
			switch w {
			case 0:
			case 1:
				prod *= d
			case 2:
				prod *= d * d
			case 3:
				prod *= d * d * d
			default:
				prod *= math.Pow(d, w)
			}
		}
		switch {
		case zero:
			dst[i] = 0
		case nan:
			dst[i] = math.NaN()
		case mode == WeightNormalized && prod > 0:
			if effSum == 1 {
				dst[i] = prod // Pow(prod, 1) == prod exactly
			} else {
				dst[i] = math.Pow(prod, 1/effSum)
			}
		default:
			dst[i] = prod
		}
	}
}

// --- Raw kernels (rank-before-scale) ----------------------------------
//
// The rank-before-scale pipeline ranks the root's combined values
// before the final monotonic per-element transform is applied, so each
// combine kernel has a "raw" variant that stops right before that
// transform: the weighted sum without the /Σw normalization, the
// product of powers without the (·)^(1/Σw) geometric root, the Lp sum
// without the (·)^(1/p) root. rootTransform captures the deferred step
// and replicates the eager kernel's tail bit for bit, so
// transform(raw) == eager for every element — the property the
// deferred ranking and the lazy Combined materialization both rely on.

// rootTransform kinds. Every kind is monotone non-decreasing over the
// raw domain the kernels produce (non-negative values; NaN passes
// through), which is what lets order statistics and tie classes be
// resolved in the raw domain.
const (
	xformIdentity = iota // PaperRaw modes, Σw == 1 geometric root
	xformDivide          // AND arithmetic, WeightNormalized: x/Σw
	xformGeoRoot         // OR geometric, WeightNormalized: x>0 ? x^(1/Σw) : x
	xformSqrt            // Lp with p == 2 (and Euclidean): √x
	xformPowInv          // Lp with p != 2: x^(1/p)
)

// rootTransform is the deferred final scalar step of a root combine
// kernel. apply is bit-identical to the tail of the corresponding
// eager kernel.
type rootTransform struct {
	kind int
	// c is Σw for xformDivide/xformGeoRoot; invP is 1/p for
	// xformPowInv.
	c    float64
	invP float64
}

func (t rootTransform) apply(x float64) float64 {
	switch t.kind {
	case xformDivide:
		return x / t.c
	case xformGeoRoot:
		if x > 0 {
			return math.Pow(x, 1/t.c)
		}
		return x
	case xformSqrt:
		return math.Sqrt(x)
	case xformPowInv:
		return math.Pow(x, t.invP)
	}
	return x
}

// combineAndRawRange is combineAndRange without the weight-normalized
// division — the raw kernel of the deferred root.
func combineAndRawRange(dst []float64, dists [][]float64, ws []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var acc float64
		for j := range dists {
			acc += ws[j] * dists[j][i]
		}
		dst[i] = acc
	}
}

// combineOrRawRange is combineOrRange without the geometric root: the
// zero/NaN semantics are identical (they are per-element, not part of
// the deferred transform), only the (·)^(1/Σw) step is left out.
func combineOrRawRange(dst []float64, dists [][]float64, ws []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		prod := 1.0
		nan := false
		zero := false
		for j := range dists {
			d := dists[j][i]
			w := ws[j]
			if d == 0 && w > 0 {
				zero = true
				break
			}
			if math.IsNaN(d) {
				nan = true
				continue
			}
			switch w {
			case 0:
			case 1:
				prod *= d
			case 2:
				prod *= d * d
			case 3:
				prod *= d * d * d
			default:
				prod *= math.Pow(d, w)
			}
		}
		switch {
		case zero:
			dst[i] = 0
		case nan:
			dst[i] = math.NaN()
		default:
			dst[i] = prod
		}
	}
}

// combineLpRawRange is combineLpRange without the final (·)^(1/p) root.
func combineLpRawRange(dst []float64, dists [][]float64, ws []float64, p float64, lo, hi int) {
	if p == 2 {
		for i := lo; i < hi; i++ {
			var acc float64
			for j := range dists {
				d := dists[j][i]
				acc += ws[j] * (d * d)
			}
			dst[i] = acc
		}
		return
	}
	for i := lo; i < hi; i++ {
		var acc float64
		for j := range dists {
			d := dists[j][i]
			acc += ws[j] * math.Pow(math.Abs(d), p)
		}
		dst[i] = acc
	}
}

// CombineLp combines per-predicate distances with the weighted Lp norm
// (p >= 1): (Σ w·d^p)^(1/p). Section 5.2 notes that "for special
// applications other specific distance functions such as the Euclidean,
// Lp or the Mahalanobis distance in n-dimensional space may be used".
func CombineLp(dists [][]float64, weights []float64, p float64) ([]float64, error) {
	if p < 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("relevance: Lp needs p >= 1, got %v", p)
	}
	n, err := checkShape(dists, weights)
	if err != nil {
		return nil, err
	}
	ws, _ := resolveWeights(weights, len(dists))
	out := make([]float64, n)
	combineLpRange(out, dists, ws, p, 0, n)
	return out, nil
}

// combineLpRange is the chunk kernel of CombineLp. The Euclidean case
// (p == 2) squares directly and takes a single square root instead of
// two math.Pow calls per term: Pow(|d|, 2) rounds to the same double
// as d*d (one rounding of the exact product in the normal range), and
// Go's Pow(acc, 0.5) is defined as Sqrt(acc).
func combineLpRange(dst []float64, dists [][]float64, ws []float64, p float64, lo, hi int) {
	if p == 2 {
		for i := lo; i < hi; i++ {
			var acc float64
			for j := range dists {
				d := dists[j][i]
				acc += ws[j] * (d * d)
			}
			dst[i] = math.Sqrt(acc)
		}
		return
	}
	for i := lo; i < hi; i++ {
		var acc float64
		for j := range dists {
			d := dists[j][i]
			acc += ws[j] * math.Pow(math.Abs(d), p)
		}
		dst[i] = math.Pow(acc, 1/p)
	}
}

// CombineEuclidean is CombineLp with p = 2.
func CombineEuclidean(dists [][]float64, weights []float64) ([]float64, error) {
	return CombineLp(dists, weights, 2)
}

// Mahalanobis combines per-predicate distances with the Mahalanobis
// form sqrt(dᵀ·Σ⁻¹·d) given the covariance matrix cov of the predicate
// distances. cov must be square with side len(dists) and invertible.
func Mahalanobis(dists [][]float64, cov [][]float64) ([]float64, error) {
	m := len(dists)
	if m == 0 {
		return nil, fmt.Errorf("relevance: no distance vectors")
	}
	n := len(dists[0])
	for j, d := range dists {
		if len(d) != n {
			return nil, fmt.Errorf("relevance: vector %d has length %d, want %d", j, len(d), n)
		}
	}
	inv, err := invert(cov, m)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	row := make([]float64, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			row[j] = dists[j][i]
		}
		var acc float64
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				acc += row[a] * inv[a][b] * row[b]
			}
		}
		if acc < 0 {
			acc = 0 // numerical noise on near-singular covariance
		}
		out[i] = math.Sqrt(acc)
	}
	return out, nil
}

// invert computes the inverse of an m×m matrix by Gauss-Jordan
// elimination with partial pivoting.
func invert(mat [][]float64, m int) ([][]float64, error) {
	if len(mat) != m {
		return nil, fmt.Errorf("relevance: covariance has %d rows, want %d", len(mat), m)
	}
	a := make([][]float64, m)
	inv := make([][]float64, m)
	for i := range a {
		if len(mat[i]) != m {
			return nil, fmt.Errorf("relevance: covariance row %d has %d entries, want %d", i, len(mat[i]), m)
		}
		a[i] = append([]float64(nil), mat[i]...)
		inv[i] = make([]float64, m)
		inv[i][i] = 1
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("relevance: covariance matrix is singular at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		p := a[col][col]
		for c := 0; c < m; c++ {
			a[col][c] /= p
			inv[col][c] /= p
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for c := 0; c < m; c++ {
				a[r][c] -= f * a[col][c]
				inv[r][c] -= f * inv[col][c]
			}
		}
	}
	return inv, nil
}

func checkShape(dists [][]float64, weights []float64) (int, error) {
	if len(dists) == 0 {
		return 0, fmt.Errorf("relevance: no distance vectors")
	}
	if weights != nil && len(weights) != len(dists) {
		return 0, fmt.Errorf("relevance: %d weights for %d vectors", len(weights), len(dists))
	}
	n := len(dists[0])
	for j, d := range dists {
		if len(d) != n {
			return 0, fmt.Errorf("relevance: vector %d has length %d, want %d", j, len(d), n)
		}
	}
	for j, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return 0, fmt.Errorf("relevance: invalid weight %v at %d", w, j)
		}
	}
	return n, nil
}

func weightSum(weights []float64) float64 {
	var s float64
	for _, w := range weights {
		s += w
	}
	return s
}

// effWeight returns weight j, defaulting to 1 when weights are nil or
// all-zero (equal weighting).
func effWeight(weights []float64, j int, wsum float64) float64 {
	if weights == nil || wsum == 0 {
		return 1
	}
	return weights[j]
}
