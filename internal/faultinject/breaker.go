package faultinject

import (
	"net/http"
	"sync/atomic"
)

// Breaker wraps an http.Handler to simulate a node dying (and coming
// back) mid-run: while killed, every request aborts its connection —
// via panic(http.ErrAbortHandler), which net/http treats as a silent
// connection teardown — so callers observe exactly what a crashed
// process produces: a transport error, never an HTTP response. Kill
// and Revive are instant and safe from any goroutine, which is what
// lets the node-kill chaos suite script a death at a precise point in
// a run.
type Breaker struct {
	h    http.Handler
	dead atomic.Bool
}

// NewBreaker wraps h; the breaker starts alive.
func NewBreaker(h http.Handler) *Breaker { return &Breaker{h: h} }

// Kill makes every subsequent request abort its connection.
func (b *Breaker) Kill() { b.dead.Store(true) }

// Revive restores normal serving.
func (b *Breaker) Revive() { b.dead.Store(false) }

// Dead reports whether the breaker is currently killing requests.
func (b *Breaker) Dead() bool { return b.dead.Load() }

// ServeHTTP implements http.Handler.
func (b *Breaker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if b.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	b.h.ServeHTTP(w, r)
}
