package faultinject

import (
	"reflect"
	"testing"
	"time"
)

func TestChaosScriptDeterministic(t *testing.T) {
	a := GenerateChaosScript(42, 40, 3, 2)
	b := GenerateChaosScript(42, 40, 3, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scripts")
	}
	c := GenerateChaosScript(43, 40, 3, 2)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical scripts")
	}
}

// replay walks a script's events, re-deriving fleet state and failing
// on any invariant the generator promises to hold.
func replay(t *testing.T, s *ChaosScript) {
	t.Helper()
	memberUp := make([]bool, s.Members)
	routerUp := make([]bool, s.Routers)
	for i := range memberUp {
		memberUp[i] = true
	}
	for i := range routerUp {
		routerUp[i] = true
	}
	kvUp, latency := true, false
	alive := func(up []bool) int {
		n := 0
		for _, ok := range up {
			if ok {
				n++
			}
		}
		return n
	}
	lastStep := -1
	for _, e := range s.Events {
		if e.Step < lastStep {
			t.Fatalf("events out of step order at %v", e)
		}
		lastStep = e.Step
		if e.Step >= s.Steps-healTail {
			t.Fatalf("event inside the heal tail: %v", e)
		}
		switch e.Action {
		case KillMember:
			if !memberUp[e.Target] {
				t.Fatalf("killed a dead member: %v", e)
			}
			memberUp[e.Target] = false
		case RestartMember:
			if memberUp[e.Target] {
				t.Fatalf("restarted a live member: %v", e)
			}
			memberUp[e.Target] = true
		case PartitionKV:
			if !kvUp {
				t.Fatalf("double partition: %v", e)
			}
			kvUp = false
		case HealKV:
			if kvUp {
				t.Fatalf("healed a healthy kv: %v", e)
			}
			kvUp = true
		case KillRouter:
			if !routerUp[e.Target] {
				t.Fatalf("killed a dead router: %v", e)
			}
			routerUp[e.Target] = false
		case ReviveRouter:
			if routerUp[e.Target] {
				t.Fatalf("revived a live router: %v", e)
			}
			routerUp[e.Target] = true
		case AddLatency:
			if latency || e.Latency <= 0 {
				t.Fatalf("bad latency event: %v", e)
			}
			latency = true
		case ClearLatency:
			if !latency {
				t.Fatalf("cleared absent latency: %v", e)
			}
			latency = false
		default:
			t.Fatalf("unknown action: %v", e)
		}
		if alive(memberUp) == 0 {
			t.Fatalf("no member alive after %v", e)
		}
		if alive(routerUp) == 0 {
			t.Fatalf("no router alive after %v", e)
		}
	}
	// A script always ends with the world restored.
	if alive(memberUp) != s.Members || alive(routerUp) != s.Routers || !kvUp || latency {
		t.Fatalf("script ends unhealed: members %d/%d routers %d/%d kv %v latency %v",
			alive(memberUp), s.Members, alive(routerUp), s.Routers, kvUp, latency)
	}
}

func TestChaosScriptInvariants(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		s := GenerateChaosScript(seed, 30, 3, 2)
		replay(t, s)
	}
	// Degenerate fleets: a single member or router must simply never
	// be killed.
	for seed := int64(0); seed < 50; seed++ {
		replay(t, GenerateChaosScript(seed, 20, 1, 1))
	}
}

func TestChaosScriptAt(t *testing.T) {
	s := GenerateChaosScript(7, 40, 4, 2)
	var n int
	for step := 0; step < s.Steps; step++ {
		for _, e := range s.At(step) {
			if e.Step != step {
				t.Fatalf("At(%d) returned %v", step, e)
			}
			n++
		}
	}
	if n != len(s.Events) {
		t.Fatalf("At() covered %d of %d events", n, len(s.Events))
	}
	if len(s.Events) == 0 {
		t.Fatal("40-step script scheduled no faults")
	}
}

func TestLatencyGate(t *testing.T) {
	var g LatencyGate
	if g.Delay() != 0 {
		t.Fatal("fresh gate injects latency")
	}
	g.Set(3 * time.Millisecond)
	if g.Delay() != 3*time.Millisecond {
		t.Fatalf("delay %v", g.Delay())
	}
	g.Set(0)
	if g.Delay() != 0 {
		t.Fatal("cleared gate still injects")
	}
}
