// Package faultinject provides deterministic fault injection for the
// serving stack's failure-semantics tests: a scripted flaky
// http.RoundTripper (dropped requests, dropped responses), and
// corrupting / truncating / slowing io.ReaderAt wrappers that plug
// into dataset.OpenOptions.WrapReaderAt.
//
// Everything here is scripted, never probabilistic: a test declares
// the exact fault sequence, so chaos suites replay identically on
// every run and a failure always reproduces. Handler-side latency and
// error injection lives in internal/server's Config.FaultHook, which
// consumes the same Fault vocabulary.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Outcome is one scripted transport round trip.
type Outcome int

const (
	// Pass forwards the request unchanged.
	Pass Outcome = iota
	// DropBefore fails the round trip without sending the request —
	// the server never sees it (connection refused, DNS failure).
	DropBefore
	// DropAfter sends the request, lets the server process it fully,
	// then discards the response and fails — the classic "did my
	// write land?" ambiguity that idempotent sequence numbers exist
	// to resolve.
	DropAfter
)

// ErrInjected is wrapped by every transport error this package
// fabricates, so tests can tell injected faults from real ones.
var ErrInjected = errors.New("faultinject: injected transport fault")

// Transport is a scripted flaky http.RoundTripper: each round trip
// consumes the next Outcome of the script; an exhausted script passes
// everything through. Safe for concurrent use.
type Transport struct {
	// Base performs the real round trips (http.DefaultTransport when
	// nil).
	Base http.RoundTripper

	mu     sync.Mutex
	script []Outcome
	next   int
	calls  int
	drops  int
}

// NewTransport returns a Transport over base executing script in
// order.
func NewTransport(base http.RoundTripper, script ...Outcome) *Transport {
	return &Transport{Base: base, script: script}
}

// Extend appends more outcomes to the script.
func (t *Transport) Extend(script ...Outcome) {
	t.mu.Lock()
	t.script = append(t.script, script...)
	t.mu.Unlock()
}

// Calls reports how many round trips were attempted; Drops how many
// the script failed.
func (t *Transport) Calls() int { t.mu.Lock(); defer t.mu.Unlock(); return t.calls }

// Drops reports how many round trips the script failed.
func (t *Transport) Drops() int { t.mu.Lock(); defer t.mu.Unlock(); return t.drops }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	out := Pass
	if t.next < len(t.script) {
		out = t.script[t.next]
		t.next++
	}
	t.calls++
	if out != Pass {
		t.drops++
	}
	t.mu.Unlock()

	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	switch out {
	case DropBefore:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("request dropped before send: %w", ErrInjected)
	case DropAfter:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server handled the request; lose its answer.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("response dropped after server handled request: %w", ErrInjected)
	default:
		return base.RoundTrip(req)
	}
}

// --- io.ReaderAt wrappers --------------------------------------------

// TruncateReaderAt returns an io.ReaderAt over r that behaves as if
// the underlying medium ended at limit bytes: reads fully below the
// limit succeed, anything touching bytes at or past it fails with
// io.ErrUnexpectedEOF.
func TruncateReaderAt(r io.ReaderAt, limit int64) io.ReaderAt {
	return &truncateReaderAt{r: r, limit: limit}
}

type truncateReaderAt struct {
	r     io.ReaderAt
	limit int64
}

func (t *truncateReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= t.limit {
		return 0, io.ErrUnexpectedEOF
	}
	if off+int64(len(p)) > t.limit {
		n, err := t.r.ReadAt(p[:t.limit-off], off)
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return n, err
	}
	return t.r.ReadAt(p, off)
}

// CorruptReaderAt returns an io.ReaderAt over r that flips the bits
// of mask in the byte at file offset off — a deterministic single-byte
// medium error beneath an otherwise healthy file.
func CorruptReaderAt(r io.ReaderAt, off int64, mask byte) io.ReaderAt {
	return &corruptReaderAt{r: r, off: off, mask: mask}
}

type corruptReaderAt struct {
	r    io.ReaderAt
	off  int64
	mask byte
}

func (c *corruptReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	if c.off >= off && c.off < off+int64(n) {
		p[c.off-off] ^= c.mask
	}
	return n, err
}

// SlowReaderAt returns an io.ReaderAt over r that sleeps d before
// every read — enough to push a run past a request deadline without
// touching the data.
func SlowReaderAt(r io.ReaderAt, d time.Duration) io.ReaderAt {
	return &slowReaderAt{r: r, d: d}
}

type slowReaderAt struct {
	r io.ReaderAt
	d time.Duration
}

func (s *slowReaderAt) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(s.d)
	return s.r.ReadAt(p, off)
}
