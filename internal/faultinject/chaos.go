package faultinject

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// ChaosAction is one kind of fleet fault a chaos script can inject.
type ChaosAction int

const (
	// KillMember aborts every connection to one fleet member.
	KillMember ChaosAction = iota
	// RestartMember brings a killed member back as a FRESH process:
	// new session nonce, empty session table — stale session IDs
	// deterministically answer session_not_found.
	RestartMember
	// PartitionKV cuts the fleet off from the shared kv store.
	PartitionKV
	// HealKV restores kv connectivity.
	HealKV
	// KillRouter takes one router out of the control plane.
	KillRouter
	// ReviveRouter brings a killed router back.
	ReviveRouter
	// AddLatency injects Event.Latency ahead of every member handler.
	AddLatency
	// ClearLatency removes injected handler latency.
	ClearLatency
)

var chaosActionNames = [...]string{
	KillMember:    "kill-member",
	RestartMember: "restart-member",
	PartitionKV:   "partition-kv",
	HealKV:        "heal-kv",
	KillRouter:    "kill-router",
	ReviveRouter:  "revive-router",
	AddLatency:    "add-latency",
	ClearLatency:  "clear-latency",
}

func (a ChaosAction) String() string {
	if int(a) < len(chaosActionNames) {
		return chaosActionNames[a]
	}
	return fmt.Sprintf("ChaosAction(%d)", int(a))
}

// ChaosEvent is one scheduled fault: at the start of step Step, apply
// Action to Target (a member or router index; unused for kv and
// latency actions, where it is -1).
type ChaosEvent struct {
	Step    int
	Action  ChaosAction
	Target  int
	Latency time.Duration // only for AddLatency
}

func (e ChaosEvent) String() string {
	if e.Target >= 0 {
		return fmt.Sprintf("step %d: %s %d", e.Step, e.Action, e.Target)
	}
	return fmt.Sprintf("step %d: %s", e.Step, e.Action)
}

// ChaosScript is a deterministic schedule of fleet faults. The same
// (seed, steps, members, routers) always yields the same script, so a
// chaos-soak failure replays identically from its logged seed.
type ChaosScript struct {
	Seed    int64
	Steps   int
	Members int
	Routers int
	Events  []ChaosEvent
}

// At returns the events scheduled for step, in order.
func (s *ChaosScript) At(step int) []ChaosEvent {
	var out []ChaosEvent
	for _, e := range s.Events {
		if e.Step == step {
			out = append(out, e)
		}
	}
	return out
}

// healTail is how many trailing steps of a script stay fault-free
// after everything has been restored, giving breakers and health
// probes room to converge before the soak's final assertions.
const healTail = 3

// GenerateChaosScript walks a seeded random state machine for steps
// steps over a fleet of members data nodes and routers routers,
// emitting kill/restart/partition/latency events under two
// invariants the serving stack cannot absorb if broken:
//
//   - at least one member and one router stay alive at every step
//     (a fully dead fleet has no correct behaviour to assert), and
//   - the last healTail steps are quiet, preceded by events restoring
//     every member and router, healing the kv partition, and clearing
//     latency — scripts always end with a converged fleet.
func GenerateChaosScript(seed int64, steps, members, routers int) *ChaosScript {
	if steps < healTail+2 {
		steps = healTail + 2
	}
	if members < 1 {
		members = 1
	}
	if routers < 1 {
		routers = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := &ChaosScript{Seed: seed, Steps: steps, Members: members, Routers: routers}

	memberUp := make([]bool, members)
	routerUp := make([]bool, routers)
	for i := range memberUp {
		memberUp[i] = true
	}
	for i := range routerUp {
		routerUp[i] = true
	}
	kvUp, latency := true, false
	alive := func(up []bool) int {
		n := 0
		for _, ok := range up {
			if ok {
				n++
			}
		}
		return n
	}
	pick := func(up []bool, want bool) int {
		idx := make([]int, 0, len(up))
		for i, ok := range up {
			if ok == want {
				idx = append(idx, i)
			}
		}
		return idx[rng.Intn(len(idx))]
	}

	chaosEnd := steps - healTail - 1
	for step := 0; step < chaosEnd; step++ {
		// Zero to two faults per step; most steps perturb something.
		for n := rng.Intn(3); n > 0; n-- {
			switch rng.Intn(8) {
			case 0: // kill a member, never the last one standing
				if alive(memberUp) > 1 {
					t := pick(memberUp, true)
					memberUp[t] = false
					s.Events = append(s.Events, ChaosEvent{Step: step, Action: KillMember, Target: t})
				}
			case 1: // restart a dead member
				if alive(memberUp) < members {
					t := pick(memberUp, false)
					memberUp[t] = true
					s.Events = append(s.Events, ChaosEvent{Step: step, Action: RestartMember, Target: t})
				}
			case 2:
				if kvUp {
					kvUp = false
					s.Events = append(s.Events, ChaosEvent{Step: step, Action: PartitionKV, Target: -1})
				}
			case 3:
				if !kvUp {
					kvUp = true
					s.Events = append(s.Events, ChaosEvent{Step: step, Action: HealKV, Target: -1})
				}
			case 4: // flap a router, never the last one standing
				if alive(routerUp) > 1 {
					t := pick(routerUp, true)
					routerUp[t] = false
					s.Events = append(s.Events, ChaosEvent{Step: step, Action: KillRouter, Target: t})
				}
			case 5:
				if alive(routerUp) < routers {
					t := pick(routerUp, false)
					routerUp[t] = true
					s.Events = append(s.Events, ChaosEvent{Step: step, Action: ReviveRouter, Target: t})
				}
			case 6:
				if !latency {
					latency = true
					d := time.Duration(1+rng.Intn(5)) * time.Millisecond
					s.Events = append(s.Events, ChaosEvent{Step: step, Action: AddLatency, Target: -1, Latency: d})
				}
			case 7:
				if latency {
					latency = false
					s.Events = append(s.Events, ChaosEvent{Step: step, Action: ClearLatency, Target: -1})
				}
			}
		}
	}

	// Restore the world at chaosEnd; the healTail steps after it are
	// deliberately quiet.
	for i, ok := range memberUp {
		if !ok {
			s.Events = append(s.Events, ChaosEvent{Step: chaosEnd, Action: RestartMember, Target: i})
		}
	}
	for i, ok := range routerUp {
		if !ok {
			s.Events = append(s.Events, ChaosEvent{Step: chaosEnd, Action: ReviveRouter, Target: i})
		}
	}
	if !kvUp {
		s.Events = append(s.Events, ChaosEvent{Step: chaosEnd, Action: HealKV, Target: -1})
	}
	if latency {
		s.Events = append(s.Events, ChaosEvent{Step: chaosEnd, Action: ClearLatency, Target: -1})
	}
	return s
}

// LatencyGate is a dial-a-delay latency source for server FaultHook
// closures: a hook reads Delay() per request and injects a
// pure-latency fault when it is nonzero. One gate can front many
// members; Set is safe from any goroutine mid-soak.
type LatencyGate struct {
	ns atomic.Int64
}

// Set changes the injected per-request latency (0 disables).
func (g *LatencyGate) Set(d time.Duration) { g.ns.Store(int64(d)) }

// Delay reports the currently injected per-request latency.
func (g *LatencyGate) Delay() time.Duration { return time.Duration(g.ns.Load()) }
