package render

import (
	"fmt"
	"strings"

	"repro/internal/colormap"
)

// ANSI renders a downsampled 256-color terminal preview of the image
// using half-block characters (▀) so each character cell carries two
// vertical pixels. maxW/maxH bound the character grid. It is the
// closest a terminal gets to the paper's color display.
func (im *Image) ANSI(maxW, maxH int) string {
	if im.W == 0 || im.H == 0 || maxW < 1 || maxH < 1 {
		return ""
	}
	stepX := (im.W + maxW - 1) / maxW
	stepY := (im.H + 2*maxH - 1) / (2 * maxH)
	if stepX < 1 {
		stepX = 1
	}
	if stepY < 1 {
		stepY = 1
	}
	var b strings.Builder
	for y := 0; y+stepY < im.H || y == 0; y += 2 * stepY {
		for x := 0; x < im.W; x += stepX {
			top := im.avgCell(x, y, stepX, stepY)
			bottom := im.avgCell(x, y+stepY, stepX, stepY)
			fmt.Fprintf(&b, "\x1b[38;5;%dm\x1b[48;5;%dm▀", ansi256(top), ansi256(bottom))
		}
		b.WriteString("\x1b[0m\n")
	}
	return b.String()
}

// avgCell averages the colors of a stepX×stepY cell.
func (im *Image) avgCell(x0, y0, stepX, stepY int) colormap.RGB {
	var r, g, bl, cnt int
	for y := y0; y < y0+stepY && y < im.H; y++ {
		for x := x0; x < x0+stepX && x < im.W; x++ {
			p := im.Pix[y*im.W+x]
			r += int(p.R)
			g += int(p.G)
			bl += int(p.B)
			cnt++
		}
	}
	if cnt == 0 {
		return colormap.RGB{}
	}
	return colormap.C(uint8(r/cnt), uint8(g/cnt), uint8(bl/cnt))
}

// ansi256 maps an RGB color to the xterm 256-color cube (16..231) or
// the grayscale ramp (232..255) when the color is near-achromatic.
func ansi256(c colormap.RGB) int {
	maxC := maxU8(c.R, maxU8(c.G, c.B))
	minC := minU8(c.R, minU8(c.G, c.B))
	if int(maxC)-int(minC) < 10 {
		// Grayscale ramp: 24 steps from 8 to 238.
		gray := (int(c.R) + int(c.G) + int(c.B)) / 3
		if gray < 8 {
			return 16 // cube black
		}
		if gray > 238 {
			return 231 // cube white
		}
		return 232 + (gray-8)*24/231
	}
	q := func(v uint8) int {
		// The cube levels are 0, 95, 135, 175, 215, 255.
		if v < 48 {
			return 0
		}
		if v < 115 {
			return 1
		}
		return int(v-35) / 40
	}
	return 16 + 36*q(c.R) + 6*q(c.G) + q(c.B)
}

func maxU8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

func minU8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}
