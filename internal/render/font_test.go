package render

import "testing"

// TestFontGlyphsDistinct guards against copy-paste errors in the glyph
// table: visually distinct characters must have distinct bitmaps.
// (O/0 share a bitmap by design in a 3×5 font.)
func TestFontGlyphsDistinct(t *testing.T) {
	identical := map[rune]rune{'O': '0'} // accepted aliases
	seen := make(map[[glyphH]uint8]rune)
	for r, g := range font {
		if prev, dup := seen[g]; dup {
			if identical[prev] == r || identical[r] == prev {
				continue
			}
			t.Errorf("glyphs %q and %q share a bitmap", prev, r)
		}
		seen[g] = r
	}
}

// TestFontGlyphsFitWidth: no glyph sets bits outside its 3-pixel width.
func TestFontGlyphsFitWidth(t *testing.T) {
	for r, g := range font {
		for row, bits := range g {
			if bits >= 1<<glyphW {
				t.Errorf("glyph %q row %d overflows width: %03b", r, row, bits)
			}
		}
	}
}

// TestFontCoversPanelAlphabet: every character the panels and titles
// emit has a glyph.
func TestFontCoversPanelAlphabet(t *testing.T) {
	const needed = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,:-_%#()><=/+'?"
	for _, r := range needed {
		if _, ok := font[r]; !ok {
			t.Errorf("missing glyph %q", r)
		}
	}
}
