package render

import (
	"repro/internal/arrange"
	"repro/internal/colormap"
)

// Window is one visualization window: a grid of item cells, each cell
// occupying a block of Block×Block pixels (the 1/4/16 pixels per data
// item of section 4.2). The zero cell color is the background.
type Window struct {
	Title string
	GridW int
	GridH int
	Block int
	cells []colormap.RGB
	set   []bool
	// highlights marks cells to overlay with the highlight color ring
	// (tuple selection, section 4.3).
	highlights map[arrange.Point]bool
}

// NewWindow creates an empty window with a gridW×gridH item grid and the
// given pixel-block side (1, 2 or 4).
func NewWindow(title string, gridW, gridH, block int) *Window {
	if gridW < 0 {
		gridW = 0
	}
	if gridH < 0 {
		gridH = 0
	}
	if block < 1 {
		block = 1
	}
	return &Window{
		Title:      title,
		GridW:      gridW,
		GridH:      gridH,
		Block:      block,
		cells:      make([]colormap.RGB, gridW*gridH),
		set:        make([]bool, gridW*gridH),
		highlights: make(map[arrange.Point]bool),
	}
}

// Capacity returns the number of item cells.
func (w *Window) Capacity() int { return w.GridW * w.GridH }

// SetCell colors the item cell at p; out-of-grid cells are ignored, as
// is the Unplaced sentinel.
func (w *Window) SetCell(p arrange.Point, c colormap.RGB) {
	if p.X < 0 || p.X >= w.GridW || p.Y < 0 || p.Y >= w.GridH {
		return
	}
	w.cells[p.Y*w.GridW+p.X] = c
	w.set[p.Y*w.GridW+p.X] = true
}

// CellAt returns the color of cell p and whether it was explicitly set.
func (w *Window) CellAt(p arrange.Point) (colormap.RGB, bool) {
	if p.X < 0 || p.X >= w.GridW || p.Y < 0 || p.Y >= w.GridH {
		return colormap.RGB{}, false
	}
	return w.cells[p.Y*w.GridW+p.X], w.set[p.Y*w.GridW+p.X]
}

// Highlight marks cell p for highlight overlay; Unhighlight removes it.
func (w *Window) Highlight(p arrange.Point)   { w.highlights[p] = true }
func (w *Window) Unhighlight(p arrange.Point) { delete(w.highlights, p) }

// ClearHighlights removes all highlight marks.
func (w *Window) ClearHighlights() {
	w.highlights = make(map[arrange.Point]bool)
}

// PixelSize returns the window's pixel dimensions (excluding title bar).
func (w *Window) PixelSize() (pw, ph int) {
	return w.GridW * w.Block, w.GridH * w.Block
}

// Image renders the window body (no title) to pixels, expanding each
// cell to its block and overlaying highlights as white blocks.
func (w *Window) Image() *Image {
	pw, ph := w.PixelSize()
	im := NewImage(pw, ph)
	for y := 0; y < w.GridH; y++ {
		for x := 0; x < w.GridW; x++ {
			i := y*w.GridW + x
			if !w.set[i] {
				continue
			}
			im.FillRect(x*w.Block, y*w.Block, w.Block, w.Block, w.cells[i])
		}
	}
	for p := range w.highlights {
		im.FillRect(p.X*w.Block, p.Y*w.Block, w.Block, w.Block, colormap.HighlightColor)
	}
	return im
}

// frameColor is the border drawn around composed windows.
var frameColor = colormap.C(90, 90, 90)

// titleColor is the color of window titles and labels.
var titleColor = colormap.C(220, 220, 220)

// Compose lays windows out in a grid with cols columns and pad pixels of
// spacing, each window topped by a title bar, and returns the combined
// image — the "Visualization part" of the query visualization and
// modification window (figures 4 and 5).
func Compose(windows []*Window, cols, pad int) *Image {
	if len(windows) == 0 {
		return NewImage(0, 0)
	}
	if cols < 1 {
		cols = 1
	}
	if pad < 0 {
		pad = 0
	}
	rows := (len(windows) + cols - 1) / cols
	// Column widths and row heights accommodate the largest member.
	colW := make([]int, cols)
	rowH := make([]int, rows)
	const titleBar = TextHeight + 3
	for i, w := range windows {
		pw, ph := w.PixelSize()
		if tw := TextWidth(w.Title); tw > pw {
			pw = tw
		}
		c, r := i%cols, i/cols
		if pw+2 > colW[c] {
			colW[c] = pw + 2
		}
		if ph+titleBar+2 > rowH[r] {
			rowH[r] = ph + titleBar + 2
		}
	}
	totalW := pad
	for _, cw := range colW {
		totalW += cw + pad
	}
	totalH := pad
	for _, rh := range rowH {
		totalH += rh + pad
	}
	out := NewImage(totalW, totalH)
	y := pad
	for r := 0; r < rows; r++ {
		x := pad
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if i >= len(windows) {
				break
			}
			w := windows[i]
			out.DrawText(x+1, y+1, w.Title, titleColor)
			body := w.Image()
			out.Rect(x, y+titleBar, body.W+2, body.H+2, frameColor)
			out.Blit(body, x+1, y+titleBar+1)
			x += colW[c] + pad
		}
		y += rowH[r] + pad
	}
	return out
}

// SliderKind selects the slider variant of section 4.3: "Different
// types of sliders are provided for different datatypes and different
// distance functions."
type SliderKind int

const (
	// SliderContinuous is the default numeric range slider.
	SliderContinuous SliderKind = iota
	// SliderDiscrete reflects "the discrete nature of the data by
	// allowing only discrete movements of the slider" — tick marks.
	SliderDiscrete
	// SliderEnumeration is the non-metric variant: "enumerations of the
	// possible values with the possibility to select each of the
	// values".
	SliderEnumeration
	// SliderMedianDeviation is the numeric variant "where the medium
	// value and some allowed deviation can be manipulated graphically"
	// (the rightmost slider of figure 4).
	SliderMedianDeviation
)

// SliderSpec describes one query-modification slider: the color spectrum
// of an attribute's distance distribution with the current query range
// marked by black lines (section 4.3).
type SliderSpec struct {
	Title    string
	Spectrum []colormap.RGB
	// MarkLo and MarkHi are positions in [0,1] for the query-range
	// marker lines; negative values omit the mark.
	MarkLo float64
	MarkHi float64
	// Caption is an optional second line (e.g. "15.0 .. max").
	Caption string
	// Kind selects the slider variant; the fields below apply to
	// specific kinds.
	Kind SliderKind
	// Ticks is the number of discrete positions (SliderDiscrete).
	Ticks int
	// Labels and Selected describe an enumeration slider's categories
	// and their selection state (SliderEnumeration).
	Labels   []string
	Selected []bool
	// Median and Deviation are positions in [0,1]
	// (SliderMedianDeviation).
	Median    float64
	Deviation float64
}

// Sliders renders a vertical stack of sliders, each barW×barH pixels.
func Sliders(specs []SliderSpec, barW, barH int) *Image {
	if barW < 1 {
		barW = 1
	}
	if barH < 1 {
		barH = 1
	}
	const gap = 4
	lineH := TextHeight + 2 + barH + TextHeight + 2 + gap
	out := NewImage(barW+2, lineH*len(specs)+gap)
	y := gap
	markCol := colormap.C(0, 0, 0)
	for _, s := range specs {
		out.DrawText(1, y, s.Title, titleColor)
		y += TextHeight + 2
		switch s.Kind {
		case SliderEnumeration:
			drawEnumeration(out, s, 1, y, barW, barH)
		default:
			drawSpectrum(out, s.Spectrum, 1, y, barW, barH)
			if s.Kind == SliderDiscrete && s.Ticks > 1 {
				for t := 0; t <= s.Ticks; t++ {
					x := 1 + t*(barW-1)/s.Ticks
					out.Set(x, y, markCol)
					out.Set(x, y+barH-1, markCol)
				}
			}
			if s.Kind == SliderMedianDeviation {
				drawMedianDeviation(out, s, 1, y, barW, barH, markCol)
			} else {
				for _, m := range []float64{s.MarkLo, s.MarkHi} {
					if m < 0 || m > 1 {
						continue
					}
					x := int(m*float64(barW-1)) + 1
					for yy := -1; yy <= barH; yy++ {
						out.Set(x, y+yy, markCol)
					}
				}
			}
		}
		y += barH + 2
		if s.Caption != "" {
			out.DrawText(1, y, s.Caption, titleColor)
		}
		y += TextHeight + gap
	}
	return out
}

// drawSpectrum paints the color bar.
func drawSpectrum(out *Image, spectrum []colormap.RGB, x0, y0, barW, barH int) {
	for x := 0; x < barW; x++ {
		var c colormap.RGB
		if len(spectrum) > 0 {
			idx := x * len(spectrum) / barW
			if idx >= len(spectrum) {
				idx = len(spectrum) - 1
			}
			c = spectrum[idx]
		}
		for yy := 0; yy < barH; yy++ {
			out.Set(x0+x, y0+yy, c)
		}
	}
}

// drawEnumeration paints one cell per category, selected cells bright
// with a white outline.
func drawEnumeration(out *Image, s SliderSpec, x0, y0, barW, barH int) {
	n := len(s.Labels)
	if n == 0 {
		return
	}
	cellW := barW / n
	if cellW < 2 {
		cellW = 2
	}
	for i := range s.Labels {
		x := x0 + i*cellW
		sel := i < len(s.Selected) && s.Selected[i]
		fill := colormap.C(60, 60, 80)
		if sel {
			fill = colormap.C(230, 210, 40)
		}
		out.FillRect(x, y0, cellW-1, barH, fill)
		if sel {
			out.Rect(x, y0, cellW-1, barH, colormap.HighlightColor)
		}
	}
}

// drawMedianDeviation marks the median with a full-height line and the
// ±deviation bounds with half-height brackets.
func drawMedianDeviation(out *Image, s SliderSpec, x0, y0, barW, barH int, markCol colormap.RGB) {
	if s.Median >= 0 && s.Median <= 1 {
		x := x0 + int(s.Median*float64(barW-1))
		for yy := -1; yy <= barH; yy++ {
			out.Set(x, y0+yy, markCol)
		}
	}
	for _, side := range []float64{s.Median - s.Deviation, s.Median + s.Deviation} {
		if side < 0 || side > 1 {
			continue
		}
		x := x0 + int(side*float64(barW-1))
		for yy := 0; yy < barH/2; yy++ {
			out.Set(x, y0+yy, markCol)
		}
	}
}

// SideBySide joins two images horizontally with pad pixels between,
// aligning their tops — used to place the visualization part next to
// the query-modification part.
func SideBySide(a, b *Image, pad int) *Image {
	if pad < 0 {
		pad = 0
	}
	h := a.H
	if b.H > h {
		h = b.H
	}
	out := NewImage(a.W+pad+b.W, h)
	out.Blit(a, 0, 0)
	out.Blit(b, a.W+pad, 0)
	return out
}
