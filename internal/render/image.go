// Package render is the output substrate of the VisDB reproduction. The
// original system painted X11 windows on a 19″ 1,024×1,280 display; Go
// has no GUI in the standard library, so this package renders the same
// pixel content into an off-screen framebuffer and encodes it as PNG or
// PPM, with an ASCII preview for terminals. All the visual-feedback
// semantics (window geometry, pixel blocks, color levels, highlighting)
// are preserved; only the output device differs.
package render

import (
	"bufio"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"
	"path/filepath"

	"repro/internal/colormap"
)

// Image is an RGB framebuffer with image-convention coordinates
// (x right, y down).
type Image struct {
	W, H int
	Pix  []colormap.RGB
}

// NewImage allocates a w×h framebuffer filled with the background color.
func NewImage(w, h int) *Image {
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	im := &Image{W: w, H: h, Pix: make([]colormap.RGB, w*h)}
	im.Fill(colormap.BackgroundColor)
	return im
}

// In reports whether (x, y) lies inside the image.
func (im *Image) In(x, y int) bool {
	return x >= 0 && x < im.W && y >= 0 && y < im.H
}

// Set writes pixel (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, c colormap.RGB) {
	if im.In(x, y) {
		im.Pix[y*im.W+x] = c
	}
}

// At reads pixel (x, y); out-of-bounds reads return the zero color.
func (im *Image) At(x, y int) colormap.RGB {
	if !im.In(x, y) {
		return colormap.RGB{}
	}
	return im.Pix[y*im.W+x]
}

// Fill paints the whole image with c.
func (im *Image) Fill(c colormap.RGB) {
	for i := range im.Pix {
		im.Pix[i] = c
	}
}

// FillRect paints the axis-aligned rectangle with top-left (x, y), width
// w and height h, clipped to the image.
func (im *Image) FillRect(x, y, w, h int, c colormap.RGB) {
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			im.Set(xx, yy, c)
		}
	}
}

// Rect draws a 1-pixel rectangle outline.
func (im *Image) Rect(x, y, w, h int, c colormap.RGB) {
	for xx := x; xx < x+w; xx++ {
		im.Set(xx, y, c)
		im.Set(xx, y+h-1, c)
	}
	for yy := y; yy < y+h; yy++ {
		im.Set(x, yy, c)
		im.Set(x+w-1, yy, c)
	}
}

// Blit copies src into im with its top-left at (x, y), clipping.
func (im *Image) Blit(src *Image, x, y int) {
	for sy := 0; sy < src.H; sy++ {
		for sx := 0; sx < src.W; sx++ {
			im.Set(x+sx, y+sy, src.Pix[sy*src.W+sx])
		}
	}
}

// EncodePNG writes the image as PNG.
func (im *Image) EncodePNG(w io.Writer) error {
	out := image.NewNRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			p := im.Pix[y*im.W+x]
			out.SetNRGBA(x, y, color.NRGBA{R: p.R, G: p.G, B: p.B, A: 255})
		}
	}
	return png.Encode(w, out)
}

// EncodePPM writes the image as a binary PPM (P6), a no-dependency
// fallback format.
func (im *Image) EncodePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	buf := make([]byte, 0, im.W*3)
	for y := 0; y < im.H; y++ {
		buf = buf[:0]
		for x := 0; x < im.W; x++ {
			p := im.Pix[y*im.W+x]
			buf = append(buf, p.R, p.G, p.B)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SavePNG writes the image to path, creating parent directories.
func (im *Image) SavePNG(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("render: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: create %s: %w", path, err)
	}
	defer f.Close()
	if err := im.EncodePNG(f); err != nil {
		return fmt.Errorf("render: encode %s: %w", path, err)
	}
	return f.Close()
}

// asciiRamp maps luminance to characters, dark to bright.
const asciiRamp = " .:-=+*#%@"

// ASCII renders a downsampled text preview at most maxW×maxH characters,
// using a luminance ramp. It is the terminal stand-in for eyeballing a
// window.
func (im *Image) ASCII(maxW, maxH int) string {
	if im.W == 0 || im.H == 0 || maxW < 1 || maxH < 1 {
		return ""
	}
	stepX := (im.W + maxW - 1) / maxW
	stepY := (im.H + maxH - 1) / maxH
	if stepX < 1 {
		stepX = 1
	}
	if stepY < 1 {
		stepY = 1
	}
	var b []byte
	for y := 0; y < im.H; y += stepY {
		for x := 0; x < im.W; x += stepX {
			// Average the cell's luminance.
			var sum float64
			var cnt int
			for yy := y; yy < y+stepY && yy < im.H; yy++ {
				for xx := x; xx < x+stepX && xx < im.W; xx++ {
					sum += colormap.Luminance(im.Pix[yy*im.W+xx])
					cnt++
				}
			}
			l := sum / float64(cnt)
			idx := int(l * float64(len(asciiRamp)))
			if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			b = append(b, asciiRamp[idx])
		}
		b = append(b, '\n')
	}
	return string(b)
}
