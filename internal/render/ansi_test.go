package render

import (
	"strings"
	"testing"

	"repro/internal/colormap"
)

func TestANSIBasics(t *testing.T) {
	im := NewImage(8, 8)
	im.FillRect(0, 0, 4, 8, colormap.C(255, 0, 0))
	out := im.ANSI(8, 4)
	if !strings.Contains(out, "\x1b[38;5;") || !strings.Contains(out, "▀") {
		t.Fatalf("no ANSI escapes: %q", out)
	}
	if !strings.HasSuffix(out, "\x1b[0m\n") {
		t.Fatal("should reset colors at line end")
	}
	lines := strings.Count(out, "\n")
	if lines < 1 || lines > 4 {
		t.Fatalf("lines: %d", lines)
	}
	if NewImage(0, 0).ANSI(4, 4) != "" {
		t.Error("empty image")
	}
}

func TestAnsi256Mapping(t *testing.T) {
	cases := []struct {
		c    colormap.RGB
		want int
	}{
		{colormap.C(0, 0, 0), 16},        // cube black
		{colormap.C(255, 255, 255), 231}, // cube white
		{colormap.C(255, 0, 0), 196},     // pure red = 16+36·5
		{colormap.C(0, 255, 0), 46},      // pure green
		{colormap.C(0, 0, 255), 21},      // pure blue
	}
	for _, tc := range cases {
		if got := ansi256(tc.c); got != tc.want {
			t.Errorf("ansi256(%+v) = %d, want %d", tc.c, got, tc.want)
		}
	}
	// Mid-grays use the grayscale ramp.
	g := ansi256(colormap.C(128, 128, 128))
	if g < 232 || g > 255 {
		t.Errorf("gray should use the ramp: %d", g)
	}
}

func TestSliderKindsRender(t *testing.T) {
	specs := []SliderSpec{
		{
			Title: "discrete", Kind: SliderDiscrete, Ticks: 5,
			Spectrum: colormap.VisDB(32).Spectrum(32), MarkLo: -1, MarkHi: -1,
		},
		{
			Title: "enum", Kind: SliderEnumeration,
			Labels:   []string{"low", "mid", "high"},
			Selected: []bool{false, true, true},
			MarkLo:   -1, MarkHi: -1,
		},
		{
			Title: "meddev", Kind: SliderMedianDeviation,
			Spectrum: colormap.VisDB(32).Spectrum(32),
			Median:   0.5, Deviation: 0.2, MarkLo: -1, MarkHi: -1,
		},
	}
	im := Sliders(specs, 120, 10)
	if im.W != 122 || im.H <= 0 {
		t.Fatalf("dims: %dx%d", im.W, im.H)
	}
	// Enumeration: selected cells carry the bright fill.
	bright := colormap.C(230, 210, 40)
	found := false
	for i := range im.Pix {
		if im.Pix[i] == bright {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("selected enumeration cell not rendered")
	}
	// Median/deviation: a black median line exists.
	black := colormap.C(0, 0, 0)
	foundBlack := false
	for i := range im.Pix {
		if im.Pix[i] == black {
			foundBlack = true
			break
		}
	}
	if !foundBlack {
		t.Fatal("median mark not rendered")
	}
	// Empty enumeration doesn't panic.
	_ = Sliders([]SliderSpec{{Title: "e", Kind: SliderEnumeration}}, 60, 8)
}
