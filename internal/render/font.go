package render

import (
	"strings"

	"repro/internal/colormap"
)

// glyphW and glyphH are the dimensions of the built-in 3×5 pixel font
// used for window titles and panel labels (the stdlib has no font
// rendering).
const (
	glyphW = 3
	glyphH = 5
)

// font maps characters to 15-bit glyph bitmaps, row-major, MSB first
// within each 3-bit row. Lowercase input is upper-cased before lookup.
var font = map[rune][glyphH]uint8{
	'A':  {0b010, 0b101, 0b111, 0b101, 0b101},
	'B':  {0b110, 0b101, 0b110, 0b101, 0b110},
	'C':  {0b011, 0b100, 0b100, 0b100, 0b011},
	'D':  {0b110, 0b101, 0b101, 0b101, 0b110},
	'E':  {0b111, 0b100, 0b110, 0b100, 0b111},
	'F':  {0b111, 0b100, 0b110, 0b100, 0b100},
	'G':  {0b011, 0b100, 0b101, 0b101, 0b011},
	'H':  {0b101, 0b101, 0b111, 0b101, 0b101},
	'I':  {0b111, 0b010, 0b010, 0b010, 0b111},
	'J':  {0b001, 0b001, 0b001, 0b101, 0b010},
	'K':  {0b101, 0b110, 0b100, 0b110, 0b101},
	'L':  {0b100, 0b100, 0b100, 0b100, 0b111},
	'M':  {0b101, 0b111, 0b111, 0b101, 0b101},
	'N':  {0b101, 0b111, 0b111, 0b111, 0b101},
	'O':  {0b010, 0b101, 0b101, 0b101, 0b010},
	'P':  {0b110, 0b101, 0b110, 0b100, 0b100},
	'Q':  {0b010, 0b101, 0b101, 0b011, 0b001},
	'R':  {0b110, 0b101, 0b110, 0b110, 0b101},
	'S':  {0b011, 0b100, 0b010, 0b001, 0b110},
	'T':  {0b111, 0b010, 0b010, 0b010, 0b010},
	'U':  {0b101, 0b101, 0b101, 0b101, 0b011},
	'V':  {0b101, 0b101, 0b101, 0b010, 0b010},
	'W':  {0b101, 0b101, 0b111, 0b111, 0b101},
	'X':  {0b101, 0b101, 0b010, 0b101, 0b101},
	'Y':  {0b101, 0b101, 0b010, 0b010, 0b010},
	'Z':  {0b111, 0b001, 0b010, 0b100, 0b111},
	'0':  {0b010, 0b101, 0b101, 0b101, 0b010},
	'1':  {0b010, 0b110, 0b010, 0b010, 0b111},
	'2':  {0b110, 0b001, 0b010, 0b100, 0b111},
	'3':  {0b110, 0b001, 0b010, 0b001, 0b110},
	'4':  {0b101, 0b101, 0b111, 0b001, 0b001},
	'5':  {0b111, 0b100, 0b110, 0b001, 0b110},
	'6':  {0b011, 0b100, 0b110, 0b101, 0b010},
	'7':  {0b111, 0b001, 0b010, 0b010, 0b010},
	'8':  {0b010, 0b101, 0b010, 0b101, 0b010},
	'9':  {0b010, 0b101, 0b011, 0b001, 0b110},
	' ':  {0, 0, 0, 0, 0},
	'.':  {0, 0, 0, 0, 0b010},
	',':  {0, 0, 0, 0b010, 0b100},
	':':  {0, 0b010, 0, 0b010, 0},
	'-':  {0, 0, 0b111, 0, 0},
	'_':  {0, 0, 0, 0, 0b111},
	'%':  {0b101, 0b001, 0b010, 0b100, 0b101},
	'#':  {0b101, 0b111, 0b101, 0b111, 0b101},
	'(':  {0b001, 0b010, 0b010, 0b010, 0b001},
	')':  {0b100, 0b010, 0b010, 0b010, 0b100},
	'>':  {0b100, 0b010, 0b001, 0b010, 0b100},
	'<':  {0b001, 0b010, 0b100, 0b010, 0b001},
	'=':  {0, 0b111, 0, 0b111, 0},
	'/':  {0b001, 0b001, 0b010, 0b100, 0b100},
	'+':  {0, 0b010, 0b111, 0b010, 0},
	'\'': {0b010, 0b010, 0, 0, 0},
	'?':  {0b110, 0b001, 0b010, 0, 0b010},
}

// TextWidth returns the pixel width of s in the built-in font.
func TextWidth(s string) int {
	n := len([]rune(s))
	if n == 0 {
		return 0
	}
	return n*(glyphW+1) - 1
}

// TextHeight is the pixel height of one line in the built-in font.
const TextHeight = glyphH

// DrawText paints s at (x, y) (top-left) in color c. Unknown runes
// render as '?'. Returns the x coordinate after the last glyph.
func (im *Image) DrawText(x, y int, s string, c colormap.RGB) int {
	for _, r := range strings.ToUpper(s) {
		g, ok := font[r]
		if !ok {
			g = font['?']
		}
		for row := 0; row < glyphH; row++ {
			bits := g[row]
			for col := 0; col < glyphW; col++ {
				if bits&(1<<(glyphW-1-col)) != 0 {
					im.Set(x+col, y+row, c)
				}
			}
		}
		x += glyphW + 1
	}
	return x
}
