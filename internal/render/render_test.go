package render

import (
	"bytes"
	"image/png"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arrange"
	"repro/internal/colormap"
)

func TestImageSetAtBounds(t *testing.T) {
	im := NewImage(4, 3)
	red := colormap.C(255, 0, 0)
	im.Set(2, 1, red)
	if im.At(2, 1) != red {
		t.Fatal("Set/At")
	}
	// Out-of-bounds are silent no-ops / zero reads.
	im.Set(-1, 0, red)
	im.Set(0, -1, red)
	im.Set(4, 0, red)
	im.Set(0, 3, red)
	if im.At(-1, 0) != (colormap.RGB{}) || im.At(9, 9) != (colormap.RGB{}) {
		t.Fatal("out-of-bounds reads")
	}
	neg := NewImage(-3, -2)
	if neg.W != 0 || neg.H != 0 {
		t.Fatal("negative dims clamp to zero")
	}
}

func TestFillAndRect(t *testing.T) {
	im := NewImage(10, 10)
	c := colormap.C(1, 2, 3)
	im.FillRect(2, 2, 3, 3, c)
	if im.At(2, 2) != c || im.At(4, 4) != c {
		t.Fatal("FillRect interior")
	}
	if im.At(5, 5) == c {
		t.Fatal("FillRect leaked")
	}
	o := colormap.C(9, 9, 9)
	im.Rect(0, 0, 10, 10, o)
	if im.At(0, 0) != o || im.At(9, 9) != o || im.At(5, 0) != o {
		t.Fatal("Rect outline")
	}
	if im.At(5, 5) == o {
		t.Fatal("Rect filled interior")
	}
}

func TestBlitClips(t *testing.T) {
	dst := NewImage(4, 4)
	src := NewImage(3, 3)
	c := colormap.C(7, 7, 7)
	src.Fill(c)
	dst.Blit(src, 2, 2) // bottom-right corner, partially off-image
	if dst.At(2, 2) != c || dst.At(3, 3) != c {
		t.Fatal("Blit visible part")
	}
	if dst.At(1, 1) == c {
		t.Fatal("Blit leaked")
	}
}

func TestEncodePNGRoundTrip(t *testing.T) {
	im := NewImage(5, 4)
	im.Set(1, 2, colormap.C(10, 20, 30))
	var buf bytes.Buffer
	if err := im.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := decoded.Bounds()
	if b.Dx() != 5 || b.Dy() != 4 {
		t.Fatalf("bounds: %v", b)
	}
	r, g, bb, a := decoded.At(1, 2).RGBA()
	if r>>8 != 10 || g>>8 != 20 || bb>>8 != 30 || a>>8 != 255 {
		t.Fatalf("pixel: %d %d %d %d", r>>8, g>>8, bb>>8, a>>8)
	}
}

func TestEncodePPM(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, colormap.C(255, 0, 0))
	var buf bytes.Buffer
	if err := im.EncodePPM(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P6\n2 2\n255\n") {
		t.Fatalf("header: %q", s[:20])
	}
	body := buf.Bytes()[len("P6\n2 2\n255\n"):]
	if len(body) != 12 || body[0] != 255 || body[1] != 0 {
		t.Fatalf("body: %v", body)
	}
}

func TestSavePNG(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "img.png")
	im := NewImage(3, 3)
	if err := im.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := png.Decode(f); err != nil {
		t.Fatal(err)
	}
}

func TestASCII(t *testing.T) {
	im := NewImage(20, 10)
	im.FillRect(0, 0, 10, 10, colormap.C(255, 255, 255))
	art := im.ASCII(10, 5)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rows: %d", len(lines))
	}
	// Left half bright, right half dark.
	if lines[0][0] != '@' {
		t.Errorf("bright cell: %q", lines[0])
	}
	if lines[0][len(lines[0])-1] == '@' {
		t.Errorf("dark cell should not be @: %q", lines[0])
	}
	if NewImage(0, 0).ASCII(5, 5) != "" {
		t.Error("empty image ASCII")
	}
}

func TestDrawText(t *testing.T) {
	im := NewImage(100, 10)
	white := colormap.C(255, 255, 255)
	end := im.DrawText(0, 0, "ABC 123", white)
	if end != TextWidth("ABC 123")+1 {
		t.Errorf("advance = %d, want %d", end, TextWidth("ABC 123")+1)
	}
	lit := 0
	for _, p := range im.Pix {
		if p == white {
			lit++
		}
	}
	if lit < 20 {
		t.Errorf("text barely rendered: %d lit pixels", lit)
	}
	// Unknown runes fall back to '?' rather than panicking.
	im.DrawText(0, 0, "日本", white)
	if TextWidth("") != 0 {
		t.Error("empty width")
	}
}

func TestWindowCells(t *testing.T) {
	w := NewWindow("test", 4, 3, 2)
	if w.Capacity() != 12 {
		t.Fatalf("capacity: %d", w.Capacity())
	}
	c := colormap.C(200, 100, 0)
	w.SetCell(arrange.Pt(1, 1), c)
	got, ok := w.CellAt(arrange.Pt(1, 1))
	if !ok || got != c {
		t.Fatal("CellAt")
	}
	if _, ok := w.CellAt(arrange.Pt(0, 0)); ok {
		t.Fatal("unset cell should report !ok")
	}
	// Out-of-grid and Unplaced are ignored.
	w.SetCell(arrange.Unplaced, c)
	w.SetCell(arrange.Pt(9, 9), c)
	if _, ok := w.CellAt(arrange.Pt(9, 9)); ok {
		t.Fatal("out-of-grid cell set")
	}
	im := w.Image()
	pw, ph := w.PixelSize()
	if im.W != pw || im.H != ph || pw != 8 || ph != 6 {
		t.Fatalf("image dims: %dx%d", im.W, im.H)
	}
	// Block expansion: all 4 pixels of cell (1,1) colored.
	for _, p := range []struct{ x, y int }{{2, 2}, {3, 2}, {2, 3}, {3, 3}} {
		if im.At(p.x, p.y) != c {
			t.Fatalf("block pixel (%d,%d) = %+v", p.x, p.y, im.At(p.x, p.y))
		}
	}
}

func TestWindowHighlights(t *testing.T) {
	w := NewWindow("hl", 3, 3, 1)
	p := arrange.Pt(1, 1)
	w.SetCell(p, colormap.C(10, 10, 10))
	w.Highlight(p)
	im := w.Image()
	if im.At(1, 1) != colormap.HighlightColor {
		t.Fatal("highlight overlay")
	}
	w.Unhighlight(p)
	if w.Image().At(1, 1) == colormap.HighlightColor {
		t.Fatal("unhighlight")
	}
	w.Highlight(p)
	w.ClearHighlights()
	if w.Image().At(1, 1) == colormap.HighlightColor {
		t.Fatal("clear highlights")
	}
}

func TestCompose(t *testing.T) {
	mk := func(title string) *Window {
		w := NewWindow(title, 8, 8, 1)
		w.SetCell(arrange.Pt(4, 4), colormap.C(255, 255, 0))
		return w
	}
	out := Compose([]*Window{mk("overall result"), mk("cond 1"), mk("cond 2"), mk("cond 3")}, 2, 4)
	if out.W <= 0 || out.H <= 0 {
		t.Fatal("empty composition")
	}
	// Expect 2 columns × 2 rows: width ≈ 2 windows + 3 pads.
	if out.W < 2*8 || out.H < 2*(8+TextHeight) {
		t.Fatalf("implausible dims %dx%d", out.W, out.H)
	}
	// Degenerates.
	if e := Compose(nil, 2, 2); e.W != 0 {
		t.Fatal("nil windows")
	}
	one := Compose([]*Window{mk("x")}, 0, -3) // cols/pad clamp
	if one.W <= 0 {
		t.Fatal("clamped compose")
	}
}

func TestSliders(t *testing.T) {
	spec := SliderSpec{
		Title:    "Temperature",
		Spectrum: colormap.VisDB(64).Spectrum(64),
		MarkLo:   0.2,
		MarkHi:   0.8,
		Caption:  "15.0 .. 35.0",
	}
	im := Sliders([]SliderSpec{spec, {Title: "empty", MarkLo: -1, MarkHi: -1}}, 100, 8)
	if im.W != 102 {
		t.Fatalf("width: %d", im.W)
	}
	// The spectrum row should contain the colormap's yellow at the left.
	yellow := colormap.VisDB(64).At(0)
	found := false
	for y := 0; y < im.H && !found; y++ {
		if im.At(1, y) == yellow {
			found = true
		}
	}
	if !found {
		t.Fatal("spectrum start color missing")
	}
	// Marker line: a black column near x = 0.2*99+1.
	black := colormap.C(0, 0, 0)
	frac := 0.2
	markX := int(frac*99) + 1
	foundMark := false
	for y := 0; y < im.H && !foundMark; y++ {
		if im.At(markX, y) == black {
			foundMark = true
		}
	}
	if !foundMark {
		t.Fatal("query-range marker missing")
	}
}

func TestSideBySide(t *testing.T) {
	a := NewImage(5, 3)
	b := NewImage(4, 7)
	c := colormap.C(123, 45, 67)
	b.Set(0, 6, c)
	out := SideBySide(a, b, 2)
	if out.W != 11 || out.H != 7 {
		t.Fatalf("dims: %dx%d", out.W, out.H)
	}
	if out.At(7, 6) != c {
		t.Fatal("b content displaced")
	}
}
