package experiments

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/join"
	"repro/internal/reduce"
)

// ClaimScaling verifies the section 3/6 complexity claim: "for simple
// queries and standard distance functions the complexity is O(n log n)
// ... query processing time is dominated by the time needed for
// sorting". We time the full pipeline across a size sweep, fit the
// log-log slope, and separately time the sort to report its share.
func ClaimScaling(outDir string) (*Report, error) {
	r := &Report{
		ID:    "C1",
		Title: "claim — O(n log n) query processing, sorting dominates",
		Expectation: "total time scales ≈ n log n (log-log slope ≈ 1); the sort is " +
			"the dominating stage",
	}
	sizes := []int{10000, 30000, 100000, 300000}
	var logs [][2]float64
	var lastSortShare float64
	for _, n := range sizes {
		cat, tbl := scalingTable(n)
		eng := core.New(cat, nil, core.Options{GridW: 128, GridH: 128})
		res, err := eng.RunSQL(`SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30`)
		if err != nil {
			return nil, err
		}
		tm := res.Timings
		// Sort-like work = the final ranking (the full sort, or its
		// rank-before-scale selection plus survivor scaling on the
		// default path) plus Evaluate, whose reduction-first
		// normalization selects each node's range.
		rank := tm.Sort + tm.Select + tm.Scale
		sortLike := rank + tm.Evaluate
		lastSortShare = float64(sortLike) / float64(tm.Total)
		r.addf("n=%7d  total %8.2fms  stages: dist %6.2f  eval %6.2f  rank %6.2f  reduce %6.2f  (sort-like %.0f%%)",
			n, ms(tm.Total), ms(tm.Distances), ms(tm.Evaluate), ms(rank), ms(tm.Reduce), lastSortShare*100)
		logs = append(logs, [2]float64{math.Log(float64(n)), math.Log(float64(tm.Total))})
		_ = tbl
	}
	slope := fitSlope(logs)
	r.addf("log-log slope of total time: %.2f (1.0 = linear, n log n ≈ 1.05-1.15)", slope)
	// Selection-based ranking replaced the O(n log n) sort, so the
	// engine now scales at or slightly below linear (timer noise at the
	// small sizes can pull the fitted slope under 1); the floor only
	// guards against a degenerate non-scaling measurement.
	r.Pass = slope < 1.45 && slope > 0.35 && lastSortShare > 0.25
	return r, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func scalingTable(n int) (*dataset.Catalog, *dataset.Table) {
	rng := rand.New(rand.NewSource(int64(n)))
	tbl, _ := dataset.NewTable("S", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
		{Name: "b", Kind: dataset.KindFloat},
		{Name: "c", Kind: dataset.KindFloat},
	})
	for i := 0; i < n; i++ {
		_ = tbl.AppendRow(
			dataset.Float(rng.Float64()*100),
			dataset.Float(rng.Float64()*100),
			dataset.Float(rng.Float64()*100),
		)
	}
	cat := dataset.NewCatalog()
	_ = cat.AddTable(tbl)
	return cat, tbl
}

func fitSlope(pts [][2]float64) float64 {
	var sx, sy, sxx, sxy float64
	n := float64(len(pts))
	for _, p := range pts {
		sx += p[0]
		sy += p[1]
		sxx += p[0] * p[0]
		sxy += p[0] * p[1]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// ClaimCapacity verifies the section 3 display-capacity claim: on a
// 19-inch 1,024×1,280 display (≈1.3 million pixels) VisDB represents
// orders of magnitude more data items than the 100–1,000 of prior
// visualization approaches.
func ClaimCapacity(outDir string) (*Report, error) {
	r := &Report{
		ID:    "C2",
		Title: "claim — maximal data on current display technology",
		Expectation: "1,024×1,280 ≈ 1.3M pixels; one window per predicate divides the " +
			"budget; 1/4/16 pixels per item divide it further; still ≫ the 100–1,000 " +
			"items of prior approaches",
	}
	displays := []struct {
		name string
		w, h int
	}{
		{"640x480", 640, 480},
		{"1024x1280 (paper)", 1024, 1280},
		{"1600x1200", 1600, 1200},
	}
	bestItems := 0
	for _, d := range displays {
		for _, px := range []int{1, 4, 16} {
			for _, windows := range []int{1, 4} {
				items := reduce.PixelBudget(d.w*d.h, px) / windows
				if items > bestItems && d.name == "1024x1280 (paper)" {
					bestItems = items
				}
				r.addf("display %-18s  %2d px/item  %d windows → %8d items",
					d.name, px, windows, items)
			}
		}
	}
	r.addf("paper display best case: %d items (prior art: 100-1,000 → ×%d)",
		bestItems, bestItems/1000)
	r.Pass = bestItems >= 1_300_000 && bestItems/1000 >= 1000
	return r, nil
}

// ClaimHotSpotRecall quantifies the sections 1/4.5 motivation: boolean
// allowance queries either return NULL results or lose near-miss parts,
// while the relevance ranking recovers them. CAD workload with a
// planted near-miss part, sweeping the allowance width.
func ClaimHotSpotRecall(outDir string) (*Report, error) {
	r := &Report{
		ID:    "C3",
		Title: "claim — boolean queries lose near-misses; VisDB recovers them",
		Expectation: "a part missing one allowance is absent from every boolean " +
			"result; VisDB ranks it directly after the exact matches",
	}
	tbl, truth, err := datagen.CADParts(datagen.CADConfig{Parts: 2000, Seed: 7})
	if err != nil {
		return nil, err
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		return nil, err
	}
	eng := core.New(cat, nil, core.Options{GridW: 48, GridH: 48})
	nullResults := 0
	lostNearMiss := 0
	sweeps := []float64{0.2, 0.5, 1.0, 1.5}
	for _, allowance := range sweeps {
		sql := datagen.CADQuerySQL(truth, allowance)
		rows, err := baseline.MatchesSQL(cat, sql)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			nullResults++
		}
		foundNM := false
		for _, row := range rows {
			if row == truth.NearMissRow {
				foundNM = true
			}
		}
		if !foundNM && allowance <= 1.0 {
			lostNearMiss++
		}
		res, err := eng.RunSQL(sql)
		if err != nil {
			return nil, err
		}
		rank := rankOf(res, truth.NearMissRow)
		r.addf("allowance %.1f: boolean %4d rows (near-miss found: %v); VisDB near-miss rank %d of %d",
			allowance, len(rows), foundNM, rank, res.N)
	}
	// VisDB at the paper allowance: near-miss within the top
	// (exact + 1) ranks.
	sql := datagen.CADQuerySQL(truth, 0)
	res, err := eng.RunSQL(sql)
	if err != nil {
		return nil, err
	}
	rank := rankOf(res, truth.NearMissRow)
	topBudget := len(truth.ExactRows) + 2
	r.addf("at allowance %.1f: near-miss rank %d (budget %d); boolean NULL results %d/%d sweeps",
		truth.Allowance, rank, topBudget, nullResults, len(sweeps))
	r.Pass = lostNearMiss >= 2 && rank >= 0 && rank < topBudget
	return r, nil
}

func rankOf(res *core.Result, item int) int {
	for rank, it := range res.Order {
		if it == item {
			return rank
		}
	}
	return -1
}

// ClaimApproxJoin quantifies section 4.4: "join conditions requiring
// time or location equality would provide only very few or even no
// results" when measurement intervals differ, while approximate joins
// surface the near pairs.
func ClaimApproxJoin(outDir string) (*Report, error) {
	r := &Report{
		ID:    "C4",
		Title: "claim — approximate joins where equality joins return nothing",
		Expectation: "offset measurement intervals empty the equi-join; the " +
			"approximate join's top pairs are the 30-minute neighbours",
	}
	cat, _, err := datagen.Environmental(datagen.EnvConfig{
		Hours: 480, OffsetMinutes: 30, Seed: 11,
	})
	if err != nil {
		return nil, err
	}
	w, err := cat.Table("Weather")
	if err != nil {
		return nil, err
	}
	p, err := cat.Table("Air-Pollution")
	if err != nil {
		return nil, err
	}
	equi, err := join.Equi(w, p, "DateTime", "DateTime")
	if err != nil {
		return nil, err
	}
	eng := core.New(cat, nil, core.Options{GridW: 64, GridH: 64})
	res, err := eng.RunSQL(`SELECT Temperature FROM Weather, Air-Pollution WHERE CONNECT with-time-diff(0)`)
	if err != nil {
		return nil, err
	}
	top := res.TopK(100)
	within := 0
	for _, item := range top {
		left, right, ok := res.Pair(item)
		if !ok {
			continue
		}
		lt, _ := w.Value(left, "DateTime")
		rt, _ := p.Value(right, "DateTime")
		if math.Abs(rt.T.Sub(lt.T).Minutes()) <= 30.5 {
			within++
		}
	}
	r.addf("equi-join on DateTime: %d pairs (of %d considered)", len(equi), res.N)
	r.addf("approximate join: %d/%d top-100 pairs within 30 minutes", within, len(top))
	r.Pass = len(equi) == 0 && within == len(top)
	return r, nil
}
