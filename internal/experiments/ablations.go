package experiments

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/colormap"
	"repro/internal/reduce"
	"repro/internal/relevance"
)

// AblationNormalize isolates the section 5.2 design choice of
// reduction-first normalization: "a single data item with an
// exceptionally high or low value may cause a completely different
// transformation ... the corresponding selection predicate may have
// little or no impact on the overall answer". One outlier is injected
// into one of two balanced predicates; the experiment measures how much
// normalized spread the contaminated predicate retains.
func AblationNormalize(outDir string) (*Report, error) {
	r := &Report{
		ID:    "A1",
		Title: "ablation — reduction-first vs naive normalization",
		Expectation: "with naive normalization the outlier predicate collapses to " +
			"≈0 influence; reduction-first preserves its spread",
	}
	n := 2000
	p1 := make([]float64, n)
	p2 := make([]float64, n)
	for i := 0; i < n; i++ {
		p1[i] = float64(i % 100)
		p2[i] = float64((n - i) % 100)
	}
	p1[n-1] = 1e12 // the single exceptional value
	build := func() *relevance.Node {
		return &relevance.Node{Op: relevance.NodeAnd, Children: []*relevance.Node{
			{Op: relevance.Leaf, Label: "p1", Dists: append([]float64(nil), p1...)},
			{Op: relevance.Leaf, Label: "p2", Dists: append([]float64(nil), p2...)},
		}}
	}
	spread := func(res *relevance.Result, label string) float64 {
		for node, vec := range res.ByNode {
			if node.Label != label {
				continue
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range vec[:n-1] { // inliers only
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			return hi - lo
		}
		return math.NaN()
	}
	robust, err := relevance.Evaluate(build(), n, relevance.EvalOptions{Budget: n / 2})
	if err != nil {
		return nil, err
	}
	naive, err := relevance.Evaluate(build(), n, relevance.EvalOptions{Budget: n / 2, NaiveNormalize: true})
	if err != nil {
		return nil, err
	}
	sr, sn := spread(robust, "p1"), spread(naive, "p1")
	r.addf("p1 normalized inlier spread: reduction-first %.1f, naive %.5f (of %g)", sr, sn, relevance.Scale)
	ratio := math.Inf(1)
	if sn > 0 {
		ratio = sr / sn
	}
	r.addf("influence ratio: %.0fx", ratio)
	r.Pass = sr > 100 && (sn < 1 || ratio > 100)
	return r, nil
}

// AblationORMean isolates the section 5.2 choice of the weighted
// geometric mean for OR (vs the arithmetic mean used for AND): with the
// geometric mean, an item fulfilling any single OR predicate combines
// to distance 0, matching boolean OR semantics.
func AblationORMean(outDir string) (*Report, error) {
	r := &Report{
		ID:    "A2",
		Title: "ablation — geometric vs arithmetic mean for OR",
		Expectation: "geometric mean ranks every item fulfilling ≥1 predicate " +
			"above all items fulfilling none; the arithmetic mean does not",
	}
	rng := rand.New(rand.NewSource(17))
	n := 3000
	dists := make([][]float64, 3)
	fulfills := make([]bool, n)
	for j := range dists {
		dists[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := range dists {
			dists[j][i] = 20 + 200*rng.Float64()
		}
		if i%4 == 0 { // fulfills exactly one predicate, badly misses others
			dists[i%3][i] = 0
			fulfills[i] = true
		}
	}
	weights := []float64{1, 1, 1}
	geo, err := relevance.CombineOr(dists, weights, relevance.WeightNormalized)
	if err != nil {
		return nil, err
	}
	arith, err := relevance.CombineAnd(dists, weights, relevance.WeightNormalized) // arithmetic stand-in for OR
	if err != nil {
		return nil, err
	}
	frac := func(combined []float64) float64 {
		worstFulfilling := math.Inf(-1)
		bestNot := math.Inf(1)
		for i, f := range fulfills {
			if f {
				worstFulfilling = math.Max(worstFulfilling, combined[i])
			} else {
				bestNot = math.Min(bestNot, combined[i])
			}
		}
		// Fraction of fulfilling items ranked above every non-fulfilling
		// item.
		count := 0
		total := 0
		for i, f := range fulfills {
			if !f {
				continue
			}
			total++
			if combined[i] < bestNot {
				count++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(count) / float64(total)
	}
	fg, fa := frac(geo), frac(arith)
	r.addf("fulfilling items ranked above all non-fulfilling: geometric %.2f, arithmetic %.2f", fg, fa)
	r.Pass = fg == 1 && fa < 0.9
	return r, nil
}

// AblationReduce isolates the section 5.1 choice of the gap heuristic
// over the plain α-quantile for multi-peak distance densities: cutting
// at the gap devotes the whole colormap to the interesting lower group,
// so more distinct color levels separate its items.
func AblationReduce(outDir string) (*Report, error) {
	r := &Report{
		ID:    "A3",
		Title: "ablation — α-quantile vs gap heuristic on bimodal distances",
		Expectation: "the gap cut spends all color levels on the lower group; the " +
			"quantile cut wastes most levels bridging the gap",
	}
	rng := rand.New(rand.NewSource(18))
	var dists []float64
	const lower = 1200
	for i := 0; i < lower; i++ {
		dists = append(dists, 1+0.4*rng.NormFloat64())
	}
	for i := 0; i < 3800; i++ {
		dists = append(dists, 120+2*rng.NormFloat64())
	}
	sort.Float64s(dists)
	budget := 1500
	p := reduce.DisplayFraction(budget, len(dists), 0)
	quantCut := reduce.QuantileCut(len(dists), p)
	gapCut := reduce.Cut(dists, budget, 0)
	cm := colormap.VisDB(colormap.DefaultLevels)
	levelsUsed := func(cut, focus int) int {
		if cut <= 0 {
			return 0
		}
		norm := relevance.Normalize(dists[:cut], 0)
		used := map[int]bool{}
		for i := 0; i < focus && i < len(norm.Scaled); i++ {
			used[cm.LevelOfNorm(norm.Scaled[i]/relevance.Scale)] = true
		}
		return len(used)
	}
	lq := levelsUsed(quantCut, lower)
	lg := levelsUsed(gapCut, lower)
	r.addf("cut: quantile %d items, gap %d items (lower group: %d)", quantCut, gapCut, lower)
	r.addf("distinct color levels across the lower group: quantile %d, gap %d", lq, lg)
	r.Pass = gapCut <= lower+60 && lg > 4*lq
	return r, nil
}

// AblationANDCombiner exercises the section 5.2 remark that "for
// special applications other specific distance functions such as the
// Euclidean, Lp or the Mahalanobis distance in n-dimensional space may
// be used": it compares the default weighted arithmetic mean against
// the Euclidean combiner on a workload where one predicate is far off —
// the Euclidean norm penalizes a single large deviation more than the
// mean does, changing which near miss ranks first.
func AblationANDCombiner(outDir string) (*Report, error) {
	r := &Report{
		ID:    "A4",
		Title: "extension — Euclidean vs arithmetic AND combination (§5.2 remark)",
		Expectation: "the Euclidean norm ranks balanced near-misses above " +
			"single-large-deviation ones; the arithmetic mean treats them equally",
	}
	// Two synthetic items: A misses two predicates by 100 each;
	// B misses one predicate by 200 and fulfills the other. Equal mean
	// (100), different Euclidean (100·√2 ≈ 141 vs 141.4... vs 200/√2).
	dists := [][]float64{
		{100, 200, 0},
		{100, 0, 0},
	}
	mean, err := relevance.CombineAnd(dists, nil, relevance.WeightNormalized)
	if err != nil {
		return nil, err
	}
	euc, err := relevance.CombineEuclidean(dists, nil)
	if err != nil {
		return nil, err
	}
	r.addf("item A (100,100): mean %.1f, euclidean %.1f", mean[0], euc[0])
	r.addf("item B (200,0):   mean %.1f, euclidean %.1f", mean[1], euc[1])
	meanTies := mean[0] == mean[1]
	eucPrefersBalanced := euc[0] < euc[1]
	r.addf("arithmetic mean ties: %v; euclidean prefers the balanced near-miss: %v",
		meanTies, eucPrefersBalanced)
	r.Pass = meanTies && eucPrefersBalanced
	return r, nil
}
