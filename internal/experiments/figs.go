package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/arrange"
	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relevance"
	"repro/internal/render"
	"repro/internal/session"
	"repro/internal/stats"
)

// paperQuery is the example query of section 4.1.
const paperQuery = `
SELECT Temperature, Solar_Radiation, Humidity, Ozone
FROM Weather, Air-Pollution
WHERE (Temperature > 15.0 OR Solar_Radiation > 600 OR Humidity < 60)
  AND CONNECT with-time-diff(120)`

// fig4Options sizes the engine so the display budget matches figure 4:
// a 165×165 item grid holds 27,225 items ≈ the paper's 27,224 displayed
// (≈40% of the 68,376 objects).
func fig4Options() core.Options {
	return core.Options{GridW: 165, GridH: 165}
}

// fig4Data generates the environmental catalog whose cross product is
// exactly 68,376 items: 2,849 hourly weather rows × 24 air-pollution
// rows (pollution sampled every 119 hours, on the hour, so the
// 120-minute time-difference connection has exact matches; the
// offset-interval scenario is exercised separately in C4).
func fig4Data() (*core.Engine, error) {
	cat, _, err := datagen.Environmental(datagen.EnvConfig{
		Hours: 2849, PollutionEvery: 119, OffsetMinutes: 0, Seed: 1994,
	})
	if err != nil {
		return nil, err
	}
	return core.New(cat, nil, fig4Options()), nil
}

// Fig1a regenerates figure 1a: the normal (spiral) arrangement. 65,536
// synthetic relevance factors on a 256×256 window, yellow center,
// approximate answers spiraling outward.
func Fig1a(outDir string) (*Report, error) {
	r := &Report{
		ID:    "F1a",
		Title: "figure 1a — rectangular-spiral arrangement",
		Expectation: "correct answers yellow in the middle, approximate answers " +
			"spiral-shaped around them, colors darkening outward",
	}
	const w, h = 256, 256
	rng := rand.New(rand.NewSource(41))
	dists := make([]float64, w*h)
	exact := w * h / 50 // 2% exact answers
	for i := range dists {
		if i < exact {
			dists[i] = 0
		} else {
			dists[i] = math.Abs(rng.NormFloat64())
		}
	}
	norm := relevance.Normalize(dists, 0)
	sorted, _ := reduce.SortWithIndex(norm.Scaled)
	cm := colormap.VisDB(colormap.DefaultLevels)
	win := render.NewWindow("figure 1a", w, h, 1)
	cells := arrange.Spiral(w, h)
	for k, cell := range cells {
		win.SetCell(cell, cm.AtNorm(sorted[k]/relevance.Scale))
	}
	im := win.Image()
	if err := r.saveImage(outDir, "fig1a.png", im); err != nil {
		return nil, err
	}
	// Invariants: the center is yellow, rings are monotone in distance,
	// the outermost ring is darker than the center.
	center := arrange.Center(w, h)
	centerLum := colormap.Luminance(im.At(center.X, center.Y))
	cornerLum := colormap.Luminance(im.At(0, 0))
	monotone := true
	prevRing := 0
	for k, cell := range cells {
		ring := arrange.Ring(w, h, cell)
		if ring < prevRing {
			monotone = false
		}
		prevRing = ring
		if k > 0 && sorted[k] < sorted[k-1] {
			monotone = false
		}
	}
	r.addf("%d items on a %dx%d window; center luminance %.2f, corner %.2f; spiral monotone: %v",
		w*h, w, h, centerLum, cornerLum, monotone)
	r.Pass = monotone && centerLum > 0.5 && cornerLum < centerLum
	return r, nil
}

// Fig1b regenerates figure 1b: the 2D arrangement for signed distances
// with two attributes assigned to the axes.
func Fig1b(outDir string) (*Report, error) {
	r := &Report{
		ID:    "F1b",
		Title: "figure 1b — 2D arrangement with signed distances",
		Expectation: "direction of the distance encoded by location (negative left/" +
			"bottom, positive right/top), absolute value by color, yellow region centered",
	}
	const w, h = 128, 128
	rng := rand.New(rand.NewSource(42))
	n := w * h * 3 / 4
	type item struct {
		sx, sy int
		d      float64
	}
	items := make([]item, n)
	for i := range items {
		dx := rng.NormFloat64()
		dy := rng.NormFloat64()
		items[i] = item{sx: sign(dx), sy: sign(dy), d: math.Hypot(dx, dy)}
		if i < n/40 {
			items[i] = item{0, 0, 0} // exact answers
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].d < items[b].d })
	quadItems := make([]arrange.QuadItem, n)
	dists := make([]float64, n)
	for i, it := range items {
		quadItems[i] = arrange.QuadItem{SignX: it.sx, SignY: it.sy}
		dists[i] = it.d
	}
	norm := relevance.Normalize(dists, 0)
	cm := colormap.VisDB(colormap.DefaultLevels)
	cells := arrange.Quad2D(w, h, quadItems)
	win := render.NewWindow("figure 1b", w, h, 1)
	placed := 0
	misplaced := 0
	c := arrange.Center(w, h)
	for i, cell := range cells {
		if cell == arrange.Unplaced {
			continue
		}
		placed++
		win.SetCell(cell, cm.AtNorm(norm.Scaled[i]/relevance.Scale))
		if quadItems[i].SignX > 0 && cell.X < c.X {
			misplaced++
		}
		if quadItems[i].SignX < 0 && cell.X >= c.X {
			misplaced++
		}
	}
	if err := r.saveImage(outDir, "fig1b.png", win.Image()); err != nil {
		return nil, err
	}
	r.addf("%d/%d items placed, %d direction violations; exact answers at center rings", placed, n, misplaced)
	r.Pass = placed > n*9/10 && misplaced == 0
	return r, nil
}

func sign(v float64) int {
	switch {
	case v < -0.05:
		return -1
	case v > 0.05:
		return 1
	default:
		return 0
	}
}

// Fig2 regenerates figure 2: two density functions of distance values
// and the display-reduction heuristics of section 5.1 — the α-quantile
// for the unimodal density (a), the gap heuristic cutting between the
// groups for the bimodal density (b).
func Fig2(outDir string) (*Report, error) {
	r := &Report{
		ID:    "F2",
		Title: "figure 2 — distance densities and display reduction",
		Expectation: "for multi-peak densities present only the lower group so " +
			"graduate differences are enhanced; plain α-quantile otherwise",
	}
	rng := rand.New(rand.NewSource(43))
	uni := stats.SampleN(stats.Exponential{Rate: 1}, rng, 4000)
	sort.Float64s(uni)
	var bi []float64
	for i := 0; i < 600; i++ {
		bi = append(bi, 1+0.1*rng.NormFloat64())
	}
	for i := 0; i < 3400; i++ {
		bi = append(bi, 60+3*rng.NormFloat64())
	}
	sort.Float64s(bi)
	budget := 1200
	uniCut := reduce.Cut(uni, budget, 0)
	uniQuant := reduce.QuantileCut(len(uni), reduce.DisplayFraction(budget, len(uni), 0))
	biCut := reduce.Cut(bi, budget, 0)
	r.addf("(a) unimodal: cut %d of %d (quantile %d)", uniCut, len(uni), uniQuant)
	r.addf("(b) bimodal: cut %d of %d (lower group holds 600)", biCut, len(bi))
	hu := stats.NewHistogram(uni, 60)
	hb := stats.NewHistogram(bi, 60)
	r.addf("density (a):\n%s", strings.TrimRight(hu.ASCII(6), "\n"))
	r.addf("density (b):\n%s", strings.TrimRight(hb.ASCII(6), "\n"))
	r.Pass = uniCut == uniQuant && biCut <= 620 && biCut >= 550
	return r, nil
}

// Fig3 regenerates figure 3: the query-specification window for the
// paper's environmental example, rendered as the GRADI query
// representation.
func Fig3(outDir string) (*Report, error) {
	r := &Report{
		ID:    "F3",
		Title: "figure 3 — query specification window",
		Expectation: "three OR-connected conditions AND the with-time-diff(120) " +
			"connection; single boxes for conditions, labeled connection",
	}
	q, err := query.Parse(paperQuery)
	if err != nil {
		return nil, err
	}
	art := query.Gradi(q)
	r.Measured = append(r.Measured, strings.Split(strings.TrimRight(art, "\n"), "\n")...)
	r.Pass = strings.Contains(art, "AND") &&
		strings.Contains(art, "OR") &&
		strings.Contains(art, "[Temperature > 15]") &&
		strings.Contains(art, "[Solar_Radiation > 600]") &&
		strings.Contains(art, "[Humidity < 60]") &&
		strings.Contains(art, "with-time-diff(120)")
	return r, nil
}

// Fig4 regenerates figure 4: the query visualization and modification
// window over 68,376 objects with ≈27,224 (≈40%) displayed.
func Fig4(outDir string) (*Report, error) {
	r := &Report{
		ID:    "F4",
		Title: "figure 4 — query visualization and modification window",
		Expectation: "# objects 68,376; # displayed 27,224 (≈40%); overall window " +
			"plus one window per top-level predicate, positionally aligned",
	}
	eng, err := fig4Data()
	if err != nil {
		return nil, err
	}
	s, err := session.NewSQL(eng.Catalog(), nil, eng.Options(), paperQuery)
	if err != nil {
		return nil, err
	}
	res := s.Result()
	st := res.Stats()
	im, err := s.Image(2)
	if err != nil {
		return nil, err
	}
	if err := r.saveImage(outDir, "fig4.png", im); err != nil {
		return nil, err
	}
	ws, err := res.Windows()
	if err != nil {
		return nil, err
	}
	r.addf("# objects %d, # displayed %d (%.1f%%), # results %d, windows %d",
		st.NumObjects, st.NumDisplayed, st.PctDisplayed*100, st.NumResults, len(ws))
	for _, info := range res.PredicateInfos() {
		r.addf("slider [%s]: db %.4g..%.4g query %.4g..%.4g results %d",
			info.Label, info.MinDB, info.MaxDB, info.QueryLo, info.QueryHi, info.NumResults)
	}
	pctOK := math.Abs(st.PctDisplayed-0.40) < 0.03
	r.Pass = st.NumObjects == 68376 && pctOK && len(ws) == 3 && st.NumResults > 0
	return r, nil
}

// Fig5 regenerates figure 5: drilling into the OR part of the figure-4
// query, keeping the overall arrangement.
func Fig5(outDir string) (*Report, error) {
	r := &Report{
		ID:    "F5",
		Title: "figure 5 — visualization of the OR part",
		Expectation: "double-clicking the OR box yields a window for the OR result " +
			"plus one per OR predicate, with the same arrangement as figure 4",
	}
	eng, err := fig4Data()
	if err != nil {
		return nil, err
	}
	res, err := eng.RunSQL(paperQuery)
	if err != nil {
		return nil, err
	}
	root, ok := res.Query.Where.(*query.BoolExpr)
	if !ok {
		return nil, fmt.Errorf("unexpected root %T", res.Query.Where)
	}
	orPart := root.Children[0]
	ws, err := res.DrillDownWindows(orPart, false)
	if err != nil {
		return nil, err
	}
	im := render.Compose(ws, 2, 6)
	if err := r.saveImage(outDir, "fig5.png", im); err != nil {
		return nil, err
	}
	// Alignment check: a displayed item occupies the same cell in the
	// figure-4 overall window and in every figure-5 window.
	aligned := true
	for rank := 0; rank < res.Displayed && rank < 500; rank++ {
		cell := res.CellOfRank(rank)
		for _, w := range ws {
			if _, ok := w.CellAt(cell); !ok {
				aligned = false
			}
		}
	}
	r.addf("OR drill-down windows: %d (overall-OR + %d predicates); alignment with fig4: %v",
		len(ws), len(ws)-1, aligned)
	indep, err := res.DrillDownWindows(orPart, true)
	if err != nil {
		return nil, err
	}
	if err := r.saveImage(outDir, "fig5_independent.png", render.Compose(indep, 2, 6)); err != nil {
		return nil, err
	}
	r.addf("independent re-arrangement variant: %d windows", len(indep))
	r.Pass = len(ws) == 4 && aligned
	return r, nil
}
