package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllExperimentsPass runs the full harness (with images into a temp
// dir) and requires every paper-shape check to hold. This is the
// integration test of the reproduction.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	dir := t.TempDir()
	reports, err := All(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Registry()) {
		t.Fatalf("reports: %d, want %d", len(reports), len(Registry()))
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("experiment %s failed:\n%s", r.ID, r.Format())
		}
		if len(r.Measured) == 0 {
			t.Errorf("experiment %s measured nothing", r.ID)
		}
		if !strings.Contains(r.Format(), r.ID) {
			t.Errorf("format should include id %s", r.ID)
		}
	}
	// The figure experiments wrote their PNGs.
	for _, img := range []string{"fig1a.png", "fig1b.png", "fig4.png", "fig5.png", "fig5_independent.png"} {
		if _, err := os.Stat(filepath.Join(dir, img)); err != nil {
			t.Errorf("missing image %s: %v", img, err)
		}
	}
}

// TestExperimentsNoImages checks the no-output mode used by benchmarks.
func TestExperimentsNoImages(t *testing.T) {
	r, err := Fig1a("")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Images) != 0 {
		t.Fatalf("images written without outDir: %v", r.Images)
	}
	if !r.Pass {
		t.Fatalf("fig1a failed:\n%s", r.Format())
	}
}

func TestReportFormatFail(t *testing.T) {
	r := &Report{ID: "X", Title: "t", Expectation: "e", Pass: false}
	r.addf("m %d", 1)
	s := r.Format()
	if !strings.Contains(s, "FAIL") || !strings.Contains(s, "m 1") {
		t.Fatalf("format: %s", s)
	}
}
