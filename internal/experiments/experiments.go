// Package experiments regenerates every figure and quantitative claim
// of the paper's evaluation (there are no numbered tables; figures 1–5
// plus in-text claims define the experimental surface). Each experiment
// returns a Report pairing the paper's expectation with the measured
// outcome and a pass/fail judgement of whether the qualitative shape
// holds. The cmd/visdbbench binary prints these reports and
// EXPERIMENTS.md records them.
package experiments

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/render"
)

// Report is the outcome of one experiment.
type Report struct {
	ID          string
	Title       string
	Expectation string   // what the paper shows or claims
	Measured    []string // measured lines
	Pass        bool     // the qualitative shape holds
	Images      []string // files written (when outDir was non-empty)
}

// Format renders the report for terminals and logs.
func (r *Report) Format() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "=== %s [%s] %s\n", r.ID, status, r.Title)
	fmt.Fprintf(&b, "  paper:    %s\n", r.Expectation)
	for _, m := range r.Measured {
		fmt.Fprintf(&b, "  measured: %s\n", m)
	}
	for _, img := range r.Images {
		fmt.Fprintf(&b, "  image:    %s\n", img)
	}
	return b.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Measured = append(r.Measured, fmt.Sprintf(format, args...))
}

// saveImage writes im under outDir (no-op when outDir is empty) and
// records the path.
func (r *Report) saveImage(outDir, name string, im *render.Image) error {
	if outDir == "" {
		return nil
	}
	path := filepath.Join(outDir, name)
	if err := im.SavePNG(path); err != nil {
		return err
	}
	r.Images = append(r.Images, path)
	return nil
}

// Runner is an experiment entry point.
type Runner func(outDir string) (*Report, error)

// Registry maps experiment ids to runners, in presentation order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"f1a", Fig1a},
		{"f1b", Fig1b},
		{"f2", Fig2},
		{"f3", Fig3},
		{"f4", Fig4},
		{"f5", Fig5},
		{"c1", ClaimScaling},
		{"c2", ClaimCapacity},
		{"c3", ClaimHotSpotRecall},
		{"c4", ClaimApproxJoin},
		{"a1", AblationNormalize},
		{"a2", AblationORMean},
		{"a3", AblationReduce},
		{"a4", AblationANDCombiner},
	}
}

// All runs every experiment, returning the reports (and the first error
// encountered, with partial results).
func All(outDir string) ([]*Report, error) {
	var out []*Report
	for _, e := range Registry() {
		r, err := e.Run(outDir)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
