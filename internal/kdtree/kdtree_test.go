package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func linearRange(points [][]float64, lo, hi []float64) []int {
	var out []int
	for id, p := range points {
		inside := true
		for d := range p {
			if p[d] < lo[d] || p[d] > hi[d] {
				inside = false
				break
			}
		}
		if inside {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

func randPoints(rng *rand.Rand, n, k int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, k)
		for d := range pts[i] {
			pts[i][d] = rng.Float64() * 100
		}
	}
	return pts
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([][]float64{{}}); err == nil {
		t.Error("zero-dim should fail")
	}
	if _, err := Build([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged should fail")
	}
	if _, err := Build([][]float64{{1, math.NaN()}}); err == nil {
		t.Error("NaN should fail")
	}
	empty, err := Build(nil)
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty build: %v %d", err, empty.Len())
	}
	ids, err := empty.Range([]float64{0}, []float64{1})
	if err != nil || ids != nil {
		t.Errorf("empty range: %v %v", ids, err)
	}
}

func TestRangeKnown(t *testing.T) {
	pts := [][]float64{
		{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5},
	}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := tr.Range([]float64{1.5, 0}, []float64{4.5, 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(ids) != len(want) {
		t.Fatalf("ids: %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids: %v, want %v", ids, want)
		}
	}
	// Inclusive bounds.
	ids, _ = tr.Range([]float64{1, 1}, []float64{1, 1})
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("point query: %v", ids)
	}
	// Half-open via ±Inf.
	ids, _ = tr.Range([]float64{3, math.Inf(-1)}, []float64{math.Inf(1), math.Inf(1)})
	if len(ids) != 3 {
		t.Fatalf("open range: %v", ids)
	}
}

func TestRangeErrors(t *testing.T) {
	tr, _ := Build([][]float64{{1, 2}})
	if _, err := tr.Range([]float64{0}, []float64{1}); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := tr.Range([]float64{2, 0}, []float64{1, 5}); err == nil {
		t.Error("reversed bounds should fail")
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, k := range []int{1, 2, 3, 5} {
		pts := randPoints(rng, 300, k)
		tr, err := Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 30; q++ {
			lo := make([]float64, k)
			hi := make([]float64, k)
			for d := 0; d < k; d++ {
				a, b := rng.Float64()*100, rng.Float64()*100
				if a > b {
					a, b = b, a
				}
				lo[d], hi[d] = a, b
			}
			got, err := tr.Range(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			want := linearRange(pts, lo, hi)
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d ids, want %d", k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d: got %v, want %v", k, got, want)
				}
			}
		}
	}
}

// Property: tree range query is always identical to a linear scan.
func TestRangeProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%100) + 1
		k := int(kRaw%4) + 1
		pts := randPoints(rng, n, k)
		tr, err := Build(pts)
		if err != nil {
			return false
		}
		lo := make([]float64, k)
		hi := make([]float64, k)
		for d := 0; d < k; d++ {
			a, b := rng.Float64()*100, rng.Float64()*100
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		got, err := tr.Range(lo, hi)
		if err != nil {
			return false
		}
		want := linearRange(pts, lo, hi)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCount(t *testing.T) {
	tr, _ := Build([][]float64{{1}, {2}, {3}})
	n, err := tr.Count([]float64{1.5}, []float64{5})
	if err != nil || n != 2 {
		t.Fatalf("count: %d %v", n, err)
	}
}

func TestCacheHitsAndCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randPoints(rng, 500, 2)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(tr, 0.3)
	// First query: miss, over-fetch.
	lo, hi := []float64{20, 20}, []float64{60, 60}
	got, err := cache.Range(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if want := linearRange(pts, lo, hi); len(got) != len(want) {
		t.Fatalf("first query: %d vs %d", len(got), len(want))
	}
	if cache.Misses != 1 || cache.Hits != 0 {
		t.Fatalf("counters: %d/%d", cache.Hits, cache.Misses)
	}
	// Slightly modified query (the paper's incremental scenario):
	// shrinking or nudging the box inside the expanded region hits the
	// cache.
	lo2, hi2 := []float64{22, 19}, []float64{62, 58}
	got2, err := cache.Range(lo2, hi2)
	if err != nil {
		t.Fatal(err)
	}
	want2 := linearRange(pts, lo2, hi2)
	if len(got2) != len(want2) {
		t.Fatalf("cached query wrong: %d vs %d", len(got2), len(want2))
	}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatal("cached ids differ from scan")
		}
	}
	if cache.Hits != 1 {
		t.Fatalf("expected cache hit, counters: %d/%d", cache.Hits, cache.Misses)
	}
	// A big jump falls outside the cached box: miss.
	if _, err := cache.Range([]float64{0, 0}, []float64{99, 99}); err != nil {
		t.Fatal(err)
	}
	if cache.Misses != 2 {
		t.Fatalf("expected second miss, counters: %d/%d", cache.Hits, cache.Misses)
	}
	// Invalidate forces a tree query.
	cache.Invalidate()
	if _, err := cache.Range(lo, hi); err != nil {
		t.Fatal(err)
	}
	if cache.Misses != 3 {
		t.Fatal("invalidate should force a miss")
	}
}

func TestCacheDegenerateBoxes(t *testing.T) {
	tr, _ := Build([][]float64{{1}, {2}, {3}})
	cache := NewCache(tr, 0)
	if cache.Expand != 0.25 {
		t.Fatalf("default expand: %v", cache.Expand)
	}
	// Zero-span and infinite boxes must not produce NaN margins.
	got, err := cache.Range([]float64{2}, []float64{2})
	if err != nil || len(got) != 1 {
		t.Fatalf("zero-span: %v %v", got, err)
	}
	got, err = cache.Range([]float64{math.Inf(-1)}, []float64{math.Inf(1)})
	if err != nil || len(got) != 3 {
		t.Fatalf("infinite: %v %v", got, err)
	}
}
