// Package kdtree implements the multidimensional index named in the
// paper's conclusions as the missing substrate for VisDB:
// "multidimensional data structures that support range queries on
// multiple attributes will be essential to improve query performance"
// (section 6). It provides a static k-d tree over float vectors with
// multi-attribute range queries, plus the incremental requery cache the
// paper sketches ("to retrieve more data than necessary in the beginning
// and to retrieve only the additional portion of the data that is needed
// for a slightly modified query later on").
package kdtree

import (
	"fmt"
	"math"
	"sort"
)

// Tree is an immutable k-d tree over k-dimensional points.
type Tree struct {
	k      int
	points [][]float64 // original points, indexed by id
	// Flattened tree: ids in build order, each node splitting on
	// depth % k.
	ids []int
}

// Build constructs a tree over points, all of which must share the same
// non-zero dimensionality and be NaN-free.
func Build(points [][]float64) (*Tree, error) {
	if len(points) == 0 {
		return &Tree{}, nil
	}
	k := len(points[0])
	if k == 0 {
		return nil, fmt.Errorf("kdtree: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != k {
			return nil, fmt.Errorf("kdtree: point %d has dim %d, want %d", i, len(p), k)
		}
		for d, v := range p {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("kdtree: point %d has NaN in dim %d", i, d)
			}
		}
	}
	t := &Tree{k: k, points: points, ids: make([]int, len(points))}
	for i := range t.ids {
		t.ids[i] = i
	}
	t.build(0, len(t.ids), 0)
	return t, nil
}

// build recursively median-splits ids[lo:hi] on axis depth%k. The median
// element stays at the middle position, forming an implicit balanced
// tree in the slice.
func (t *Tree) build(lo, hi, depth int) {
	if hi-lo <= 1 {
		return
	}
	axis := depth % t.k
	mid := (lo + hi) / 2
	// nth_element via full sort of the subrange: O(n log² n) build,
	// fine for the static index sizes here.
	sub := t.ids[lo:hi]
	sort.Slice(sub, func(a, b int) bool {
		return t.points[sub[a]][axis] < t.points[sub[b]][axis]
	})
	t.build(lo, mid, depth+1)
	t.build(mid+1, hi, depth+1)
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.ids) }

// K returns the dimensionality.
func (t *Tree) K() int { return t.k }

// Range visits the ids of all points inside the axis-aligned box
// [lo[d], hi[d]] for every dimension d. Bounds may use ±Inf for
// half-open ranges. It returns the matching ids in ascending order.
func (t *Tree) Range(lo, hi []float64) ([]int, error) {
	if t.Len() == 0 {
		return nil, nil
	}
	if len(lo) != t.k || len(hi) != t.k {
		return nil, fmt.Errorf("kdtree: bounds dim %d/%d, want %d", len(lo), len(hi), t.k)
	}
	for d := range lo {
		if lo[d] > hi[d] {
			return nil, fmt.Errorf("kdtree: reversed bounds in dim %d", d)
		}
	}
	var out []int
	t.rangeSearch(0, len(t.ids), 0, lo, hi, &out)
	sort.Ints(out)
	return out, nil
}

func (t *Tree) rangeSearch(loIdx, hiIdx, depth int, lo, hi []float64, out *[]int) {
	if hiIdx <= loIdx {
		return
	}
	mid := (loIdx + hiIdx) / 2
	id := t.ids[mid]
	p := t.points[id]
	inside := true
	for d := 0; d < t.k; d++ {
		if p[d] < lo[d] || p[d] > hi[d] {
			inside = false
			break
		}
	}
	if inside {
		*out = append(*out, id)
	}
	axis := depth % t.k
	if p[axis] >= lo[axis] {
		t.rangeSearch(loIdx, mid, depth+1, lo, hi, out)
	}
	if p[axis] <= hi[axis] {
		t.rangeSearch(mid+1, hiIdx, depth+1, lo, hi, out)
	}
}

// Count returns the number of points inside the box without
// materializing ids.
func (t *Tree) Count(lo, hi []float64) (int, error) {
	ids, err := t.Range(lo, hi)
	return len(ids), err
}

// Cache implements the incremental-requery strategy of section 6: the
// first query over-fetches by expanding the requested box by Expand
// (relative margin per dimension); subsequent queries whose boxes still
// fit inside the cached expanded box are answered by filtering the
// cached ids instead of traversing the tree.
type Cache struct {
	Tree   *Tree
	Expand float64 // relative margin, e.g. 0.2 for 20%
	lo, hi []float64
	ids    []int
	valid  bool
	// Hits and Misses count cache-answered vs tree-answered queries.
	Hits, Misses int
}

// NewCache wraps t with an incremental cache; expand <= 0 defaults
// to 0.25.
func NewCache(t *Tree, expand float64) *Cache {
	if expand <= 0 {
		expand = 0.25
	}
	return &Cache{Tree: t, Expand: expand}
}

// Range answers a range query, from cache when the requested box lies
// within the previously over-fetched box.
func (c *Cache) Range(lo, hi []float64) ([]int, error) {
	if c.valid && c.contains(lo, hi) {
		c.Hits++
		var out []int
		for _, id := range c.ids {
			p := c.Tree.points[id]
			inside := true
			for d := range p {
				if p[d] < lo[d] || p[d] > hi[d] {
					inside = false
					break
				}
			}
			if inside {
				out = append(out, id)
			}
		}
		return out, nil
	}
	c.Misses++
	elo := make([]float64, len(lo))
	ehi := make([]float64, len(hi))
	for d := range lo {
		span := hi[d] - lo[d]
		margin := c.Expand * span
		if span == 0 || math.IsInf(span, 0) {
			margin = 0
		}
		elo[d] = lo[d] - margin
		ehi[d] = hi[d] + margin
	}
	ids, err := c.Tree.Range(elo, ehi)
	if err != nil {
		return nil, err
	}
	c.lo, c.hi, c.ids, c.valid = elo, ehi, ids, true
	// Filter the over-fetched set down to the requested box.
	var out []int
	for _, id := range ids {
		p := c.Tree.points[id]
		inside := true
		for d := range p {
			if p[d] < lo[d] || p[d] > hi[d] {
				inside = false
				break
			}
		}
		if inside {
			out = append(out, id)
		}
	}
	return out, nil
}

func (c *Cache) contains(lo, hi []float64) bool {
	if len(lo) != len(c.lo) || len(hi) != len(c.hi) {
		return false
	}
	for d := range lo {
		if lo[d] < c.lo[d] || hi[d] > c.hi[d] {
			return false
		}
	}
	return true
}

// Invalidate drops the cached box (e.g. after the underlying data
// changes).
func (c *Cache) Invalidate() { c.valid = false }
