// Package csvutil loads CSV files into dataset tables with schema
// inference, for the command-line tools: each column is typed float64
// if every non-empty cell parses as a number, time if every cell parses
// as RFC 3339, bool if every cell parses as a boolean, and string
// otherwise.
//
// Inference and loading are both streaming: a first pass over the
// rows narrows the per-column kind flags without retaining any row,
// and a second pass appends rows chunk-by-chunk into segmented
// columns. File-based entry points (LoadInferred, ConvertFile) reopen
// the file for the second pass, so their peak memory is O(segment) —
// not O(rows) — which is what lets a CSV larger than RAM convert into
// an on-disk segment catalog.
package csvutil

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/dataset"
)

// LoadInferred reads path and returns a table with an inferred schema.
// The file is streamed twice (infer, then load); no pass retains rows.
func LoadInferred(path, name string) (*dataset.Table, error) {
	schema, err := InferSchemaFile(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tbl, err := dataset.NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	if err := streamRows(f, schema, tbl.AppendRow); err != nil {
		return nil, err
	}
	return tbl, nil
}

// ReadInferred is LoadInferred over a reader. A generic reader cannot
// rewind, so the raw bytes are buffered once and streamed twice; use
// LoadInferred or ConvertFile for O(segment) memory.
func ReadInferred(r io.Reader, name string) (*dataset.Table, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("csvutil: %w", err)
	}
	schema, err := InferSchema(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	tbl, err := dataset.NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	if err := streamRows(bytes.NewReader(raw), schema, tbl.AppendRow); err != nil {
		return nil, err
	}
	return tbl, nil
}

// ConvertFile streams the CSV at path into an open segment-catalog
// writer as one table with an inferred schema. Rows flow straight into
// the writer's segment buffer, so peak memory stays O(segment)
// regardless of the file size.
func ConvertFile(path, name string, w *dataset.SegmentWriter) error {
	schema, err := InferSchemaFile(path)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := w.AddTable(name, schema)
	if err != nil {
		return err
	}
	return streamRows(f, schema, tw.AppendRow)
}

// InferSchemaFile streams path once and returns the inferred schema.
func InferSchemaFile(path string) (dataset.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return InferSchema(f)
}

// InferSchema streams the CSV once, narrowing each column's candidate
// kinds cell by cell without retaining rows.
func InferSchema(r io.Reader) (dataset.Schema, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("csvutil: empty file")
		}
		return nil, fmt.Errorf("csvutil: %w", err)
	}
	names := append([]string(nil), header...)
	flags := make([]kindFlags, len(names))
	for i := range flags {
		flags[i] = kindFlags{isFloat: true, isTime: true, isBool: true}
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvutil: %w", err)
		}
		for c := range names {
			if c >= len(rec) || rec[c] == "" {
				continue
			}
			flags[c].narrow(rec[c])
		}
	}
	schema := make(dataset.Schema, len(names))
	for c, h := range names {
		schema[c] = dataset.Field{Name: h, Kind: flags[c].kind()}
	}
	return schema, nil
}

// streamRows parses r's data rows per schema and hands each to append.
func streamRows(r io.Reader, schema dataset.Schema, append func(...dataset.Value) error) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	if _, err := cr.Read(); err != nil { // header
		return fmt.Errorf("csvutil: %w", err)
	}
	vals := make([]dataset.Value, len(schema))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("csvutil: %w", err)
		}
		if len(rec) != len(schema) {
			return fmt.Errorf("csvutil: row %d has %d cells, want %d", line, len(rec), len(schema))
		}
		for c, cell := range rec {
			v, err := dataset.ParseValue(schema[c].Kind, cell)
			if err != nil {
				return fmt.Errorf("csvutil: row %d column %q: %w", line, schema[c].Name, err)
			}
			vals[c] = v
		}
		if err := append(vals...); err != nil {
			return err
		}
	}
}

// kindFlags tracks which kinds every non-empty cell of a column has
// supported so far.
type kindFlags struct {
	isFloat, isTime, isBool, any bool
}

func (k *kindFlags) narrow(cell string) {
	k.any = true
	if k.isFloat {
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			k.isFloat = false
		}
	}
	if k.isTime {
		if _, err := time.Parse(time.RFC3339, cell); err != nil {
			k.isTime = false
		}
	}
	if k.isBool {
		if _, err := strconv.ParseBool(cell); err != nil {
			k.isBool = false
		}
	}
}

// kind picks the most specific kind the column's cells all support.
func (k *kindFlags) kind() dataset.Kind {
	switch {
	case !k.any:
		return dataset.KindString
	case k.isTime:
		return dataset.KindTime
	case k.isBool:
		return dataset.KindBool
	case k.isFloat:
		return dataset.KindFloat
	default:
		return dataset.KindString
	}
}
