// Package csvutil loads CSV files into dataset tables with schema
// inference, for the command-line tools: each column is typed float64
// if every non-empty cell parses as a number, time if every cell parses
// as RFC 3339, bool if every cell parses as a boolean, and string
// otherwise.
package csvutil

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/dataset"
)

// LoadInferred reads path and returns a table with an inferred schema.
func LoadInferred(path, name string) (*dataset.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadInferred(f, name)
}

// ReadInferred is LoadInferred over a reader.
func ReadInferred(r io.Reader, name string) (*dataset.Table, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvutil: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvutil: empty file")
	}
	header := records[0]
	rows := records[1:]
	schema := make(dataset.Schema, len(header))
	for c, h := range header {
		schema[c] = dataset.Field{Name: h, Kind: inferKind(rows, c)}
	}
	tbl, err := dataset.NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	vals := make([]dataset.Value, len(schema))
	for i, rec := range rows {
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("csvutil: row %d has %d cells, want %d", i+2, len(rec), len(schema))
		}
		for c, cell := range rec {
			v, err := dataset.ParseValue(schema[c].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("csvutil: row %d column %q: %w", i+2, header[c], err)
			}
			vals[c] = v
		}
		if err := tbl.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// inferKind picks the most specific kind every non-empty cell of column
// c supports.
func inferKind(rows [][]string, c int) dataset.Kind {
	isFloat, isTime, isBool := true, true, true
	any := false
	for _, rec := range rows {
		if c >= len(rec) || rec[c] == "" {
			continue
		}
		any = true
		cell := rec[c]
		if isFloat {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				isFloat = false
			}
		}
		if isTime {
			if _, err := time.Parse(time.RFC3339, cell); err != nil {
				isTime = false
			}
		}
		if isBool {
			if _, err := strconv.ParseBool(cell); err != nil {
				isBool = false
			}
		}
		if !isFloat && !isTime && !isBool {
			break
		}
	}
	switch {
	case !any:
		return dataset.KindString
	case isTime:
		return dataset.KindTime
	case isBool:
		return dataset.KindBool
	case isFloat:
		return dataset.KindFloat
	default:
		return dataset.KindString
	}
}
