package csvutil

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
)

// TestConvertFileStreamsInChunks converts a CSV far larger than any
// segment into an on-disk segment catalog and asserts the peak live
// heap during conversion stays O(segment), not O(rows): the
// materialized table would hold tens of megabytes, the streaming path
// must stay well under that while producing identical data.
func TestConvertFileStreamsInChunks(t *testing.T) {
	if testing.Short() {
		t.Skip("large streaming test")
	}
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "big.csv")
	const rows = 1_000_000
	writeBigCSV(t, csvPath, rows)

	// Aggressive GC keeps transient parse garbage from inflating the
	// peak-heap measurement; the signal we care about is retained rows.
	old := debug.SetGCPercent(10)
	defer debug.SetGCPercent(old)

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var peak atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()

	segPath := filepath.Join(dir, "big.vseg")
	w, err := dataset.CreateSegmentCatalog(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ConvertFile(csvPath, "big", w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// A materialized 3-column float table of this size holds >= 24 MB
	// of value segments alone (plus null segments and the retained CSV
	// records the old ReadAll path kept). O(segment) streaming stays an
	// order of magnitude under it.
	const bound = 8 << 20
	growth := int64(peak.Load()) - int64(base.HeapAlloc)
	if growth > bound {
		t.Fatalf("peak heap growth %d bytes during streaming conversion, want <= %d (O(segment))", growth, bound)
	}

	// The streamed file round-trips: spot-check rows against the
	// generator formula.
	cat, err := dataset.OpenCatalogFile(segPath, dataset.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	tbl, err := cat.Table("big")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != rows {
		t.Fatalf("converted table has %d rows, want %d", tbl.NumRows(), rows)
	}
	for _, r := range []int{0, 1, 4095, 4096, 777777, rows - 1} {
		v, err := tbl.Value(r, "a")
		if err != nil {
			t.Fatal(err)
		}
		f, _ := v.AsFloat()
		if want := rowValue(r, 0); f != want {
			t.Fatalf("row %d: a = %v, want %v", r, f, want)
		}
	}
}

// rowValue is the deterministic cell formula of writeBigCSV.
func rowValue(r, c int) float64 {
	return math.Trunc((float64(r)*1.25+float64(c)*0.5)*100) / 100
}

func writeBigCSV(t *testing.T, path string, rows int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	fmt.Fprintln(bw, "a,b,c")
	for r := 0; r < rows; r++ {
		fmt.Fprintf(bw, "%g,%g,%g\n", rowValue(r, 0), rowValue(r, 1), rowValue(r, 2))
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
