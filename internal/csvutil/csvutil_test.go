package csvutil

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestReadInferredKinds(t *testing.T) {
	csv := strings.Join([]string{
		"ts,price,ok,name,empty",
		"1994-02-14T08:00:00Z,2.5,true,ann,",
		"1994-02-14T09:00:00Z,3,false,bob,",
		",4.5,true,,",
	}, "\n")
	tbl, err := ReadInferred(strings.NewReader(csv), "T")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []dataset.Kind{
		dataset.KindTime, dataset.KindFloat, dataset.KindBool,
		dataset.KindString, dataset.KindString,
	}
	for i, f := range tbl.Schema() {
		if f.Kind != wantKinds[i] {
			t.Errorf("column %q: kind %v, want %v", f.Name, f.Kind, wantKinds[i])
		}
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows: %d", tbl.NumRows())
	}
	v, _ := tbl.Value(2, "ts")
	if !v.Null {
		t.Error("empty time cell should be null")
	}
	v, _ = tbl.Value(0, "price")
	if v.F != 2.5 {
		t.Errorf("price: %v", v)
	}
}

func TestReadInferredNumbersStayFloat(t *testing.T) {
	tbl, err := ReadInferred(strings.NewReader("x\n1\n2\n"), "T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema()[0].Kind != dataset.KindFloat {
		t.Errorf("kind: %v", tbl.Schema()[0].Kind)
	}
}

func TestReadInferredErrors(t *testing.T) {
	if _, err := ReadInferred(strings.NewReader(""), "T"); err == nil {
		t.Error("empty input should fail")
	}
	// Ragged rows fail inside encoding/csv already.
	if _, err := ReadInferred(strings.NewReader("a,b\n1\n"), "T"); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestLoadInferredMissingFile(t *testing.T) {
	if _, err := LoadInferred("/nonexistent/file.csv", "T"); err == nil {
		t.Error("missing file should fail")
	}
}
