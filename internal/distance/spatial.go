package distance

import (
	"math"
	"time"
)

// TimeDiff is the absolute difference between two instants in seconds;
// it scores the paper's `with-time-diff(min)` approximate-join
// connection.
func TimeDiff(a, b time.Time) float64 {
	d := a.Sub(b).Seconds()
	return math.Abs(d)
}

// TimeDiffSigned is the directed difference a−b in seconds.
func TimeDiffSigned(a, b time.Time) float64 {
	return a.Sub(b).Seconds()
}

// EarthRadiusMeters is the mean Earth radius used by Haversine.
const EarthRadiusMeters = 6371000.0

// Haversine is the great-circle distance in meters between two
// (latitude, longitude) points in degrees; it scores the
// `at-same-location` / `with-distance(m)` connections of figure 3.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const rad = math.Pi / 180
	phi1, phi2 := lat1*rad, lat2*rad
	dPhi := (lat2 - lat1) * rad
	dLambda := (lon2 - lon1) * rad
	s1 := math.Sin(dPhi / 2)
	s2 := math.Sin(dLambda / 2)
	a := s1*s1 + math.Cos(phi1)*math.Cos(phi2)*s2*s2
	if a > 1 {
		a = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(a))
}

// Euclid2D is the planar Euclidean distance, for location attributes
// already in projected coordinates.
func Euclid2D(x1, y1, x2, y2 float64) float64 {
	dx, dy := x2-x1, y2-y1
	return math.Hypot(dx, dy)
}
