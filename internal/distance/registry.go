package distance

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps names to distance functions so that queries can select
// application-supplied distances per predicate ("the distance functions
// are datatype and application dependent and must be provided by the
// application", section 3). A Registry is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	numeric map[string]NumericFunc
	str     map[string]StringFunc
}

// NewRegistry returns a registry pre-populated with the built-in
// functions under their canonical names:
//
//	numeric: "abs", "signed", "relative"
//	string:  "lexicographic", "characterwise", "substring", "edit",
//	         "editnorm", "phonetic"
func NewRegistry() *Registry {
	r := &Registry{
		numeric: make(map[string]NumericFunc),
		str:     make(map[string]StringFunc),
	}
	r.RegisterNumeric("abs", Abs)
	r.RegisterNumeric("signed", Signed)
	r.RegisterNumeric("relative", Relative)
	r.RegisterString("lexicographic", Lexicographic)
	r.RegisterString("characterwise", CharacterWise)
	r.RegisterString("substring", Substring)
	r.RegisterString("edit", Edit)
	r.RegisterString("editnorm", EditNormalized)
	r.RegisterString("phonetic", Phonetic)
	return r
}

// RegisterNumeric installs (or replaces) a numeric distance under name.
func (r *Registry) RegisterNumeric(name string, f NumericFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.numeric[name] = f
}

// RegisterString installs (or replaces) a string distance under name.
func (r *Registry) RegisterString(name string, f StringFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.str[name] = f
}

// Numeric looks up a numeric distance by name.
func (r *Registry) Numeric(name string) (NumericFunc, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if f, ok := r.numeric[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("distance: unknown numeric function %q (have %v)", name, keysOf(r.numeric))
}

// String looks up a string distance by name.
func (r *Registry) String(name string) (StringFunc, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if f, ok := r.str[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("distance: unknown string function %q (have %v)", name, keysOf(r.str))
}

func keysOf[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
