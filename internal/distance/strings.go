package distance

import (
	"strings"
	"unicode"
)

// StringFunc is a distance between two strings.
type StringFunc func(a, b string) float64

// Lexicographic maps each string to a fraction in [0,1) by treating its
// first eight bytes as a base-256 expansion and returns the absolute
// difference, so strings that would sort close together are close. This
// is the "lexicographical difference" of section 3.
func Lexicographic(a, b string) float64 {
	d := lexFrac(a) - lexFrac(b)
	if d < 0 {
		return -d
	}
	return d
}

func lexFrac(s string) float64 {
	var f, scale float64
	scale = 1.0 / 256.0
	for i := 0; i < len(s) && i < 8; i++ {
		f += float64(s[i]) * scale
		scale /= 256
	}
	return f
}

// CharacterWise is the extended Hamming distance: the count of positions
// at which the strings differ, plus the length difference. The paper's
// "character-wise difference".
func CharacterWise(a, b string) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	diff := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			diff++
		}
	}
	diff += len(a) - n + len(b) - n
	return float64(diff)
}

// Substring measures dissimilarity as 1 − 2·LCS/(|a|+|b|) where LCS is
// the length of the longest common substring (contiguous). Two equal
// strings have distance 0; strings sharing nothing have distance 1. Two
// empty strings are identical (0). The paper's "substring difference".
func Substring(a, b string) float64 {
	if a == b {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	lcs := longestCommonSubstring(a, b)
	return 1 - 2*float64(lcs)/float64(len(a)+len(b))
}

func longestCommonSubstring(a, b string) int {
	// Rolling single-row DP, O(|a|·|b|) time, O(|b|) space.
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// Edit is the Levenshtein edit distance (unit costs).
func Edit(a, b string) float64 {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la == 0 {
		return float64(lb)
	}
	if lb == 0 {
		return float64(la)
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return float64(prev[lb])
}

// EditNormalized is Edit scaled by the longer length, mapping to [0,1].
func EditNormalized(a, b string) float64 {
	l := len(a)
	if len(b) > l {
		l = len(b)
	}
	if l == 0 {
		return 0
	}
	return Edit(a, b) / float64(l)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Soundex returns the classic four-character Soundex code of s
// (letter + three digits). Non-ASCII-letter characters are ignored; an
// empty input yields "0000".
func Soundex(s string) string {
	code := make([]byte, 0, 4)
	var lastDigit byte
	for _, r := range strings.ToUpper(s) {
		if r < 'A' || r > 'Z' {
			continue
		}
		d := soundexDigit(byte(r))
		if len(code) == 0 {
			code = append(code, byte(r))
			lastDigit = d
			continue
		}
		// H and W are transparent: they do not reset the run of equal
		// digits. Vowels reset it.
		if r == 'H' || r == 'W' {
			continue
		}
		if d == 0 {
			lastDigit = 0
			continue
		}
		if d != lastDigit {
			code = append(code, '0'+d)
			lastDigit = d
			if len(code) == 4 {
				break
			}
		}
	}
	if len(code) == 0 {
		return "0000"
	}
	for len(code) < 4 {
		code = append(code, '0')
	}
	return string(code)
}

func soundexDigit(c byte) byte {
	switch c {
	case 'B', 'F', 'P', 'V':
		return 1
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return 2
	case 'D', 'T':
		return 3
	case 'L':
		return 4
	case 'M', 'N':
		return 5
	case 'R':
		return 6
	default:
		return 0 // vowels, H, W, Y
	}
}

// Phonetic is the paper's "phonetic difference": the character-wise
// distance between the Soundex codes of the two strings, so homophones
// ("Smith"/"Smyth") have distance 0.
func Phonetic(a, b string) float64 {
	return CharacterWise(Soundex(a), Soundex(b))
}

// Fold lower-cases and strips non-alphanumeric runes; useful as a
// preprocessing step for the multi-database correspondence example.
func Fold(s string) string {
	var b strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return b.String()
}
