package distance

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestAbsSignedRelative(t *testing.T) {
	if Abs(3, 5) != 2 || Abs(5, 3) != 2 {
		t.Error("Abs")
	}
	if Signed(3, 5) != -2 || Signed(5, 3) != 2 {
		t.Error("Signed")
	}
	if Relative(0, 0) != 0 {
		t.Error("Relative(0,0)")
	}
	if got := Relative(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Relative(90,100) = %v", got)
	}
	if Relative(-5, 5) != 2 { // |a−b|/max(|a|,|b|) = 10/5, the [0,2] extreme
		t.Errorf("Relative(-5,5) = %v", Relative(-5, 5))
	}
}

func TestToRange(t *testing.T) {
	cases := []struct {
		v, lo, hi float64
		want      float64
	}{
		{5, 0, 10, 0},
		{0, 0, 10, 0},
		{10, 0, 10, 0},
		{-3, 0, 10, 3},
		{14, 0, 10, 4},
		{5, 15, math.Inf(1), 10},   // Temperature > 15 predicate, v=5
		{20, 15, math.Inf(1), 0},   // fulfilled
		{70, math.Inf(-1), 60, 10}, // Humidity < 60, v=70
	}
	for _, c := range cases {
		if got := ToRange(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("ToRange(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
	if !math.IsNaN(ToRange(math.NaN(), 0, 1)) {
		t.Error("NaN should propagate")
	}
}

func TestToRangeSigned(t *testing.T) {
	if got := ToRangeSigned(-3, 0, 10); got != -3 {
		t.Errorf("below: %v", got)
	}
	if got := ToRangeSigned(14, 0, 10); got != 4 {
		t.Errorf("above: %v", got)
	}
	if got := ToRangeSigned(5, 0, 10); got != 0 {
		t.Errorf("inside: %v", got)
	}
	if !math.IsNaN(ToRangeSigned(math.NaN(), 0, 1)) {
		t.Error("NaN should propagate")
	}
}

// Property: |ToRangeSigned| == ToRange for finite values.
func TestToRangeSignedMagnitude(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) || math.IsInf(v, 0) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return math.Abs(ToRangeSigned(v, lo, hi)) == ToRange(v, lo, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInverseCount(t *testing.T) {
	if InverseCount(4) != 0.25 {
		t.Error("InverseCount(4)")
	}
	if !math.IsInf(InverseCount(0), 1) || !math.IsInf(InverseCount(-2), 1) {
		t.Error("no partners should be infinitely distant")
	}
}

func TestMatrixValidation(t *testing.T) {
	_, err := NewMatrix(nil, nil)
	if err == nil {
		t.Error("empty labels should fail")
	}
	_, err = NewMatrix([]string{"a", "a"}, [][]float64{{0, 1}, {1, 0}})
	if err == nil {
		t.Error("duplicate labels should fail")
	}
	_, err = NewMatrix([]string{"a", "b"}, [][]float64{{0, 1}})
	if err == nil {
		t.Error("wrong row count should fail")
	}
	_, err = NewMatrix([]string{"a", "b"}, [][]float64{{0, 1}, {2, 0}})
	if err == nil {
		t.Error("asymmetry should fail")
	}
	_, err = NewMatrix([]string{"a", "b"}, [][]float64{{1, 1}, {1, 0}})
	if err == nil {
		t.Error("nonzero diagonal should fail")
	}
	_, err = NewMatrix([]string{"a", "b"}, [][]float64{{0, -1}, {-1, 0}})
	if err == nil {
		t.Error("negative entry should fail")
	}
	_, err = NewMatrix([]string{"a", "b"}, [][]float64{{0, math.NaN()}, {math.NaN(), 0}})
	if err == nil {
		t.Error("NaN entry should fail")
	}
}

func TestMatrixDist(t *testing.T) {
	m, err := NewMatrix([]string{"low", "mid", "high"}, [][]float64{
		{0, 1, 4},
		{1, 0, 1},
		{4, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := m.Dist("low", "high"); !ok || d != 4 {
		t.Errorf("low-high: %v %v", d, ok)
	}
	if d, ok := m.Dist("mid", "mid"); !ok || d != 0 {
		t.Errorf("mid-mid: %v %v", d, ok)
	}
	if d, ok := m.Dist("low", "unknown"); ok || !math.IsInf(d, 1) {
		t.Errorf("unknown label: %v %v", d, ok)
	}
	if m.Rank("mid") != 1 || m.Rank("nope") != -1 {
		t.Error("Rank")
	}
	labels := m.Labels()
	labels[0] = "mutated"
	if m.Rank("low") != 0 {
		t.Error("Labels must return a copy")
	}
}

func TestOrdinalAndDiscrete(t *testing.T) {
	o, err := Ordinal([]string{"cold", "mild", "warm", "hot"})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := o.Dist("cold", "hot"); d != 3 {
		t.Errorf("ordinal cold-hot = %v", d)
	}
	if d, _ := o.Dist("mild", "warm"); d != 1 {
		t.Errorf("ordinal mild-warm = %v", d)
	}
	n, err := Discrete([]string{"red", "green", "blue"})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := n.Dist("red", "blue"); d != 1 {
		t.Errorf("discrete red-blue = %v", d)
	}
	if d, _ := n.Dist("red", "red"); d != 0 {
		t.Errorf("discrete red-red = %v", d)
	}
}

func TestLexicographic(t *testing.T) {
	if Lexicographic("abc", "abc") != 0 {
		t.Error("equal strings")
	}
	// "abd" sorts closer to "abc" than "xyz" does.
	if Lexicographic("abc", "abd") >= Lexicographic("abc", "xyz") {
		t.Error("ordering not respected")
	}
	if Lexicographic("", "") != 0 {
		t.Error("empty strings")
	}
}

func TestCharacterWise(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "xyz", 3},
		{"abc", "ab", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3}, // k/s, e/i + 1 extra char
	}
	for _, c := range cases {
		if got := CharacterWise(c.a, c.b); got != c.want {
			t.Errorf("CharacterWise(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSubstring(t *testing.T) {
	if Substring("hello", "hello") != 0 {
		t.Error("equal")
	}
	if Substring("", "") != 0 {
		t.Error("both empty are equal")
	}
	if Substring("abc", "") != 1 {
		t.Error("one empty is maximal")
	}
	if Substring("abcdef", "zzabcdzz") >= Substring("abcdef", "xyxyxy") {
		t.Error("shared substring should reduce distance")
	}
	got := Substring("aab", "ab") // LCS "ab" = 2, 1 - 4/5 = 0.2
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Substring(aab, ab) = %v, want 0.2", got)
	}
}

func TestEdit(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Edit(c.a, c.b); got != c.want {
			t.Errorf("Edit(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if EditNormalized("", "") != 0 {
		t.Error("EditNormalized empty")
	}
	if got := EditNormalized("kitten", "sitting"); math.Abs(got-3.0/7.0) > 1e-12 {
		t.Errorf("EditNormalized = %v", got)
	}
}

// Property: Edit is a metric — symmetric, zero iff equal, triangle
// inequality (spot-checked on short random strings).
func TestEditMetricProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		if len(c) > 12 {
			c = c[:12]
		}
		ab, ba := Edit(a, b), Edit(b, a)
		if ab != ba {
			return false
		}
		if (ab == 0) != (a == b) {
			return false
		}
		return Edit(a, c) <= ab+Edit(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSoundex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"}, // H transparent between S and C
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", "0000"},
		{"123", "0000"},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPhonetic(t *testing.T) {
	if Phonetic("Smith", "Smyth") != 0 {
		t.Error("homophones should have distance 0")
	}
	if Phonetic("Smith", "Jones") == 0 {
		t.Error("distinct names should differ")
	}
}

func TestFold(t *testing.T) {
	if Fold("Hello, World! 42") != "helloworld42" {
		t.Errorf("Fold = %q", Fold("Hello, World! 42"))
	}
}

func TestTimeDiff(t *testing.T) {
	t0 := time.Date(1994, 2, 14, 10, 0, 0, 0, time.UTC)
	t1 := t0.Add(2 * time.Hour)
	if TimeDiff(t0, t1) != 7200 || TimeDiff(t1, t0) != 7200 {
		t.Error("TimeDiff")
	}
	if TimeDiffSigned(t1, t0) != 7200 || TimeDiffSigned(t0, t1) != -7200 {
		t.Error("TimeDiffSigned")
	}
}

func TestHaversine(t *testing.T) {
	// Munich (48.137, 11.575) to Augsburg (48.371, 10.898): ~57.6 km.
	d := Haversine(48.137, 11.575, 48.371, 10.898)
	if d < 50000 || d > 65000 {
		t.Errorf("Munich-Augsburg = %v m", d)
	}
	if Haversine(10, 20, 10, 20) != 0 {
		t.Error("zero distance")
	}
	// Antipodal points ≈ π·R.
	d = Haversine(0, 0, 0, 180)
	if math.Abs(d-math.Pi*EarthRadiusMeters) > 1000 {
		t.Errorf("antipodal = %v", d)
	}
}

func TestEuclid2D(t *testing.T) {
	if Euclid2D(0, 0, 3, 4) != 5 {
		t.Error("3-4-5 triangle")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	f, err := r.Numeric("abs")
	if err != nil || f(1, 4) != 3 {
		t.Fatalf("builtin abs: %v", err)
	}
	if _, err := r.Numeric("nope"); err == nil {
		t.Error("unknown numeric should error")
	}
	s, err := r.String("phonetic")
	if err != nil || s("Smith", "Smyth") != 0 {
		t.Fatalf("builtin phonetic: %v", err)
	}
	if _, err := r.String("nope"); err == nil {
		t.Error("unknown string should error")
	}
	r.RegisterNumeric("half", func(a, b float64) float64 { return math.Abs(a-b) / 2 })
	h, err := r.Numeric("half")
	if err != nil || h(0, 8) != 4 {
		t.Fatalf("custom: %v", err)
	}
}
