// Package distance implements the application-dependent distance
// functions of VisDB (section 3 of the paper): numerical differences for
// metric types, distance matrices for ordinal and nominal types,
// lexicographical / character-wise / substring / edit / phonetic
// differences for strings, time differences and geographic distances for
// the approximate joins, plus a registry so applications can plug in
// their own functions by name.
//
// Conventions: a distance of 0 means the predicate (or match) is exactly
// fulfilled; larger values mean "farther from fulfilling". Signed
// variants return negative values below the target and positive above,
// feeding the 2D arrangement of figure 1b.
package distance

import "math"

// NumericFunc is a distance between two float64 values.
type NumericFunc func(a, b float64) float64

// Abs is the plain numerical difference |a-b|, the default metric-type
// distance (used by the paper's environmental database).
func Abs(a, b float64) float64 { return math.Abs(a - b) }

// Signed is the directed numerical difference a-b; negative when a < b.
func Signed(a, b float64) float64 { return a - b }

// Relative is |a-b| scaled by the larger magnitude, mapping to [0, 2];
// useful when attributes span orders of magnitude.
func Relative(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// ToRange is the distance from value v to the closed interval [lo, hi]:
// 0 inside, the distance to the nearest bound outside. One-sided
// predicates pass ±Inf for the open bound (e.g. "Temperature > 15" is
// the interval (15, +Inf) → lo = 15, hi = +Inf). NaN input yields NaN,
// which the engine treats as uncolorable.
func ToRange(v, lo, hi float64) float64 {
	if math.IsNaN(v) {
		return math.NaN()
	}
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// ToRangeSigned is ToRange with direction: negative below lo, positive
// above hi, 0 inside. It drives the 2D arrangement of figure 1b where
// "for one attribute negative distances are arranged to the left,
// positive ones to the right".
func ToRangeSigned(v, lo, hi float64) float64 {
	if math.IsNaN(v) {
		return math.NaN()
	}
	switch {
	case v < lo:
		return v - lo // negative
	case v > hi:
		return v - hi // positive
	default:
		return 0
	}
}

// InverseCount converts a count of join partners into a distance: a data
// item with many partners is "close" (distance → 0), one with none is
// maximally distant. Section 4.4: "the user might use the inverse of
// that number as the distance".
func InverseCount(n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return 1 / float64(n)
}
