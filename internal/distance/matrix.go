package distance

import (
	"fmt"
	"math"
)

// Matrix is a distance matrix over a finite label set, the paper's
// distance representation for ordinal and nominal datatypes. It is
// symmetric with a zero diagonal and non-negative entries.
type Matrix struct {
	index  map[string]int
	labels []string
	d      [][]float64
}

// NewMatrix validates and builds a distance matrix. d must be square
// with side len(labels), symmetric, zero on the diagonal and free of
// negative or NaN entries.
func NewMatrix(labels []string, d [][]float64) (*Matrix, error) {
	n := len(labels)
	if n == 0 {
		return nil, fmt.Errorf("distance: matrix needs at least one label")
	}
	if len(d) != n {
		return nil, fmt.Errorf("distance: matrix has %d rows, want %d", len(d), n)
	}
	index := make(map[string]int, n)
	for i, l := range labels {
		if _, dup := index[l]; dup {
			return nil, fmt.Errorf("distance: duplicate label %q", l)
		}
		index[l] = i
	}
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("distance: row %d has %d entries, want %d", i, len(d[i]), n)
		}
		for j := range d[i] {
			v := d[i][j]
			if math.IsNaN(v) || v < 0 {
				return nil, fmt.Errorf("distance: invalid entry d[%d][%d] = %v", i, j, v)
			}
			if i == j && v != 0 {
				return nil, fmt.Errorf("distance: nonzero diagonal d[%d][%d] = %v", i, j, v)
			}
			if d[j][i] != v {
				return nil, fmt.Errorf("distance: asymmetric at (%d,%d): %v vs %v", i, j, v, d[j][i])
			}
		}
	}
	cp := make([][]float64, n)
	for i := range cp {
		cp[i] = append([]float64(nil), d[i]...)
	}
	return &Matrix{index: index, labels: append([]string(nil), labels...), d: cp}, nil
}

// Ordinal builds the canonical ordinal-type matrix over labels in rank
// order: d(i,j) = |i-j|.
func Ordinal(labels []string) (*Matrix, error) {
	n := len(labels)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(float64(i - j))
		}
	}
	return NewMatrix(labels, d)
}

// Discrete builds the nominal-type matrix: d = 0 for equal labels,
// 1 otherwise.
func Discrete(labels []string) (*Matrix, error) {
	n := len(labels)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = 1
			}
		}
	}
	return NewMatrix(labels, d)
}

// Labels returns the label set in declaration (rank) order.
func (m *Matrix) Labels() []string { return append([]string(nil), m.labels...) }

// Dist returns the distance between two labels. Unknown labels yield
// +Inf (maximally distant) and ok = false rather than an error, so a
// stray category in the data degrades gracefully to "completely wrong".
func (m *Matrix) Dist(a, b string) (d float64, ok bool) {
	i, iok := m.index[a]
	j, jok := m.index[b]
	if !iok || !jok {
		return math.Inf(1), false
	}
	return m.d[i][j], true
}

// Rank returns the rank of a label (its index in declaration order), or
// -1 if unknown. Sliders for ordinal types move over these ranks.
func (m *Matrix) Rank(label string) int {
	if i, ok := m.index[label]; ok {
		return i
	}
	return -1
}
