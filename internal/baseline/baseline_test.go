package baseline

import (
	"testing"

	"repro/internal/dataset"
)

func cat(t *testing.T) *dataset.Catalog {
	t.Helper()
	c := dataset.NewCatalog()
	tbl, err := dataset.NewTable("T", dataset.Schema{
		{Name: "x", Kind: dataset.KindFloat},
		{Name: "name", Kind: dataset.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ann", "bob", "cat", "dan", "eve"}
	for i := 0; i < 5; i++ {
		if err := tbl.AppendRow(dataset.Float(float64(i)), dataset.Str(names[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.AppendRow(dataset.Null(dataset.KindFloat), dataset.Null(dataset.KindString)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	other, err := dataset.NewTable("O", dataset.Schema{{Name: "y", Kind: dataset.KindFloat}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{2, 3} {
		if err := other.AppendRow(dataset.Float(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddTable(other); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMatchesOperators(t *testing.T) {
	c := cat(t)
	cases := []struct {
		src  string
		want []int
	}{
		{`SELECT x FROM T WHERE x > 2`, []int{3, 4}},
		{`SELECT x FROM T WHERE x >= 2`, []int{2, 3, 4}},
		{`SELECT x FROM T WHERE x < 1`, []int{0}},
		{`SELECT x FROM T WHERE x <= 1`, []int{0, 1}},
		{`SELECT x FROM T WHERE x = 3`, []int{3}},
		{`SELECT x FROM T WHERE x <> 3`, []int{0, 1, 2, 4}},
		{`SELECT x FROM T WHERE x BETWEEN 1 AND 3`, []int{1, 2, 3}},
		{`SELECT x FROM T WHERE x IN (0, 4)`, []int{0, 4}},
		{`SELECT x FROM T WHERE name = 'cat'`, []int{2}},
		{`SELECT x FROM T WHERE name BETWEEN 'b' AND 'd'`, []int{1, 2}},
		{`SELECT x FROM T WHERE name IN ('ann', 'eve')`, []int{0, 4}},
		{`SELECT x FROM T WHERE x > 1 AND x < 4`, []int{2, 3}},
		{`SELECT x FROM T WHERE x < 1 OR x > 3`, []int{0, 4}},
		{`SELECT x FROM T WHERE NOT (x > 2)`, []int{0, 1, 2, 5}}, // NULL: NOT(false)=true in 2VL
		{`SELECT x FROM T`, []int{0, 1, 2, 3, 4, 5}},
	}
	for _, tc := range cases {
		got, err := MatchesSQL(c, tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.src, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.src, got, tc.want)
				break
			}
		}
	}
}

func TestMatchesSubqueries(t *testing.T) {
	c := cat(t)
	got, err := MatchesSQL(c, `SELECT x FROM T WHERE x IN (SELECT y FROM O WHERE y > 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("IN subquery: %v", got)
	}
	got, err = MatchesSQL(c, `SELECT x FROM T WHERE x NOT IN (SELECT y FROM O)`)
	if err != nil {
		t.Fatal(err)
	}
	// x=0,1,4 (not 2,3); NULL row: false.
	if len(got) != 3 || got[0] != 0 || got[2] != 4 {
		t.Fatalf("NOT IN: %v", got)
	}
	got, err = MatchesSQL(c, `SELECT x FROM T WHERE EXISTS (SELECT y FROM O WHERE y > 10)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty EXISTS: %v", got)
	}
	got, err = MatchesSQL(c, `SELECT x FROM T WHERE NOT EXISTS (SELECT y FROM O WHERE y > 10)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("NOT EXISTS: %v", got)
	}
}

func TestCountAndErrors(t *testing.T) {
	c := cat(t)
	n, err := Count(c, `SELECT x FROM T WHERE x > 2`)
	if err != nil || n != 2 {
		t.Fatalf("count: %d %v", n, err)
	}
	if _, err := MatchesSQL(c, `SELECT x FROM T, O WHERE x > 1`); err == nil {
		t.Error("multi-table should fail")
	}
	if _, err := MatchesSQL(c, `garbage`); err == nil {
		t.Error("parse error should propagate")
	}
	if _, err := MatchesSQL(c, `SELECT zz FROM T`); err == nil {
		t.Error("bind error should propagate")
	}
}

func TestNullSemantics(t *testing.T) {
	c := cat(t)
	// The NULL row never satisfies positive predicates.
	for _, src := range []string{
		`SELECT x FROM T WHERE x > -100`,
		`SELECT x FROM T WHERE name <> 'zzz'`,
		`SELECT x FROM T WHERE x IN (0,1,2,3,4)`,
	} {
		got, err := MatchesSQL(c, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			if r == 5 {
				t.Errorf("%s: NULL row matched", src)
			}
		}
	}
}
