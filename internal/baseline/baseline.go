// Package baseline implements the comparison system of the experiments:
// a traditional boolean query evaluator with exact SQL semantics. The
// paper's motivation (section 1) is that with such interfaces "the
// result for most queries will contain either less data than expected,
// sometimes even no answers, so-called 'NULL' results, or more data
// than expected"; the experiment harness quantifies that against the
// VisDB engine's relevance ranking.
package baseline

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/query"
)

// Matches evaluates q exactly over its single FROM table and returns
// the indices of rows satisfying the condition. Multi-table queries are
// out of scope for the baseline (the experiments compare equi-joins via
// the join package instead).
func Matches(cat *dataset.Catalog, q *query.Query) ([]int, error) {
	b, err := query.Bind(q, cat)
	if err != nil {
		return nil, err
	}
	if len(q.From) != 1 {
		return nil, fmt.Errorf("baseline: only single-table queries supported, got %d tables", len(q.From))
	}
	t, err := cat.Table(q.From[0])
	if err != nil {
		return nil, err
	}
	var out []int
	for row := 0; row < t.NumRows(); row++ {
		ok, err := evalExpr(q.Where, b, cat, t, row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, row)
		}
	}
	return out, nil
}

// MatchesSQL is Matches over a dialect string.
func MatchesSQL(cat *dataset.Catalog, src string) ([]int, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return Matches(cat, q)
}

// Count returns the number of matching rows.
func Count(cat *dataset.Catalog, src string) (int, error) {
	rows, err := MatchesSQL(cat, src)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

func evalExpr(e query.Expr, b *query.Binding, cat *dataset.Catalog, t *dataset.Table, row int) (bool, error) {
	if e == nil {
		return true, nil
	}
	switch n := e.(type) {
	case *query.Cond:
		return evalCond(n, b, t, row)
	case *query.BoolExpr:
		if n.Op == query.And {
			for _, c := range n.Children {
				ok, err := evalExpr(c, b, cat, t, row)
				if err != nil || !ok {
					return false, err
				}
			}
			return true, nil
		}
		for _, c := range n.Children {
			ok, err := evalExpr(c, b, cat, t, row)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case *query.Not:
		ok, err := evalExpr(n.Child, b, cat, t, row)
		return !ok, err
	case *query.SubqueryExpr:
		return evalSubquery(n, b, cat, t, row)
	case *query.JoinExpr:
		return false, fmt.Errorf("baseline: connections unsupported in single-table evaluation")
	default:
		return false, fmt.Errorf("baseline: unsupported expression %T", e)
	}
}

func evalCond(c *query.Cond, b *query.Binding, t *dataset.Table, row int) (bool, error) {
	attr, ok := b.Attrs[c]
	if !ok {
		return false, fmt.Errorf("baseline: condition %q not bound", c.Label())
	}
	v, err := t.Value(row, attr.Attr)
	if err != nil {
		return false, err
	}
	// SQL three-valued logic collapses to false for NULLs.
	if v.Null {
		return false, nil
	}
	if attr.Kind.IsNumeric() {
		f, _ := v.AsFloat()
		cmpF := func(target dataset.Value) (float64, bool) {
			tf, ok := target.AsFloat()
			return tf, ok
		}
		switch c.Op {
		case query.OpEq:
			tf, ok := cmpF(c.Value)
			return ok && f == tf, nil
		case query.OpNe:
			tf, ok := cmpF(c.Value)
			return ok && f != tf, nil
		case query.OpGt:
			tf, ok := cmpF(c.Value)
			return ok && f > tf, nil
		case query.OpGe:
			tf, ok := cmpF(c.Value)
			return ok && f >= tf, nil
		case query.OpLt:
			tf, ok := cmpF(c.Value)
			return ok && f < tf, nil
		case query.OpLe:
			tf, ok := cmpF(c.Value)
			return ok && f <= tf, nil
		case query.OpBetween:
			lo, lok := cmpF(c.Lo)
			hi, hok := cmpF(c.Hi)
			return lok && hok && f >= lo && f <= hi, nil
		case query.OpIn:
			for _, lv := range c.List {
				if tf, ok := lv.AsFloat(); ok && f == tf {
					return true, nil
				}
			}
			return false, nil
		}
	}
	s, _ := v.AsString()
	switch c.Op {
	case query.OpEq:
		return s == c.Value.S, nil
	case query.OpNe:
		return s != c.Value.S, nil
	case query.OpGt:
		return s > c.Value.S, nil
	case query.OpGe:
		return s >= c.Value.S, nil
	case query.OpLt:
		return s < c.Value.S, nil
	case query.OpLe:
		return s <= c.Value.S, nil
	case query.OpBetween:
		return s >= c.Lo.S && s <= c.Hi.S, nil
	case query.OpIn:
		for _, lv := range c.List {
			if s == lv.S {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("baseline: unsupported operator %s", c.Op)
}

func evalSubquery(sq *query.SubqueryExpr, b *query.Binding, cat *dataset.Catalog, t *dataset.Table, row int) (bool, error) {
	subB, ok := b.Subs[sq]
	if !ok {
		return false, fmt.Errorf("baseline: subquery not bound")
	}
	inner, err := cat.Table(sq.Sub.From[0])
	if err != nil {
		return false, err
	}
	switch sq.Mode {
	case query.Exists, query.NotExists:
		any := false
		for r := 0; r < inner.NumRows(); r++ {
			ok, err := evalExpr(sq.Sub.Where, subB, cat, inner, r)
			if err != nil {
				return false, err
			}
			if ok {
				any = true
				break
			}
		}
		if sq.Mode == query.Exists {
			return any, nil
		}
		return !any, nil
	case query.InQuery, query.NotInQuery:
		attr := b.InAttrs[sq]
		v, err := t.Value(row, attr.Attr)
		if err != nil {
			return false, err
		}
		if v.Null {
			return false, nil
		}
		innerAttr := subB.Selects[0]
		member := false
		for r := 0; r < inner.NumRows(); r++ {
			ok, err := evalExpr(sq.Sub.Where, subB, cat, inner, r)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			iv, err := inner.Value(r, innerAttr.Attr)
			if err != nil {
				return false, err
			}
			if !iv.Null && iv.String() == v.String() {
				member = true
				break
			}
		}
		if sq.Mode == query.InQuery {
			return member, nil
		}
		return !member, nil
	}
	return false, fmt.Errorf("baseline: unknown subquery mode")
}
