package baseline

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

func TestConnectionsUnsupported(t *testing.T) {
	c := dataset.NewCatalog()
	a, _ := dataset.NewTable("A", dataset.Schema{{Name: "x", Kind: dataset.KindFloat}})
	b, _ := dataset.NewTable("B", dataset.Schema{{Name: "y", Kind: dataset.KindFloat}})
	_ = a.AppendRow(dataset.Float(1))
	_ = b.AppendRow(dataset.Float(1))
	_ = c.AddTable(a)
	_ = c.AddTable(b)
	if err := c.AddConnection(dataset.Connection{
		Name: "conn", Left: "A", Right: "B", LeftAttr: "x", RightAttr: "y",
		Metric: dataset.MetricNumeric, Mode: dataset.ModeEqual,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := MatchesSQL(c, `SELECT x FROM A WHERE CONNECT conn`)
	if err == nil || !strings.Contains(err.Error(), "connections unsupported") {
		t.Fatalf("expected connections-unsupported error, got %v", err)
	}
}

func TestEmptyConditionMatchesEverything(t *testing.T) {
	c := cat(t)
	rows, err := MatchesSQL(c, `SELECT x FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: %v", rows)
	}
}

func TestWeightsDoNotChangeBooleanSemantics(t *testing.T) {
	c := cat(t)
	a, err := MatchesSQL(c, `SELECT x FROM T WHERE x > 2`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MatchesSQL(c, `SELECT x FROM T WHERE x > 2 WEIGHT 9`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("weights changed boolean results: %v vs %v", a, b)
	}
}

func TestUnboundConditionError(t *testing.T) {
	c := cat(t)
	// A hand-built condition that was never bound trips the
	// defensive error path.
	q, err := query.Parse(`SELECT x FROM T WHERE x > 1`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := c.Table("T")
	_, evalErr := evalCond(&query.Cond{Attr: "x", Op: query.OpGt}, &query.Binding{Attrs: map[*query.Cond]query.BoundAttr{}}, tbl, 0)
	if evalErr == nil {
		t.Error("unbound condition should error")
	}
	_ = q
}
