// Package join implements the approximate joins of section 4.4 of the
// paper: multi-table queries score every pair of the cross product by
// how closely it fulfills the join condition, so pairs that miss exact
// equality by a small time offset or a short distance still surface as
// approximate answers. It also provides the exact equi-join baseline,
// join-partner counting, and the minimum-distance semantics used for
// EXISTS/IN subqueries.
package join

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/distance"
)

// Pair identifies one element of a two-table cross product by row
// indices.
type Pair struct {
	Left  int
	Right int
}

// Pairs enumerates the cross product of nLeft×nRight rows. When the
// product exceeds maxPairs (> 0), pairs are subsampled with a
// deterministic stride so the totality stays tractable — the paper
// acknowledges that with cross products "the totality of data items
// that are considered is much larger and the percentage that can be
// displayed is correspondingly lower"; the stride keeps the sample
// spread uniformly over the product.
func Pairs(nLeft, nRight, maxPairs int) []Pair {
	if nLeft <= 0 || nRight <= 0 {
		return nil
	}
	total := nLeft * nRight
	if maxPairs <= 0 || total <= maxPairs {
		out := make([]Pair, 0, total)
		for l := 0; l < nLeft; l++ {
			for r := 0; r < nRight; r++ {
				out = append(out, Pair{Left: l, Right: r})
			}
		}
		return out
	}
	stride := (total + maxPairs - 1) / maxPairs
	out := make([]Pair, 0, maxPairs)
	for k := 0; k < total; k += stride {
		out = append(out, Pair{Left: k / nRight, Right: k % nRight})
	}
	return out
}

// ConnDistances scores each pair with the connection's distance. Null
// join attributes yield NaN entries.
func ConnDistances(conn dataset.Connection, lt, rt *dataset.Table, pairs []Pair, reg *distance.Registry) ([]float64, error) {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		d, err := conn.Distance(lt, rt, p.Left, p.Right, reg)
		if err != nil {
			return nil, fmt.Errorf("join: pair (%d,%d): %w", p.Left, p.Right, err)
		}
		out[i] = d
	}
	return out, nil
}

// Equi computes the exact equality join on one attribute pair using a
// hash join — the traditional-join baseline the paper contrasts with
// approximate joins ("join conditions requiring time or location
// equality would provide only very few or even no results").
func Equi(lt, rt *dataset.Table, lAttr, rAttr string) ([]Pair, error) {
	lc, err := lt.Column(lAttr)
	if err != nil {
		return nil, err
	}
	rc, err := rt.Column(rAttr)
	if err != nil {
		return nil, err
	}
	// Build the hash side on the smaller relation.
	index := make(map[string][]int)
	for i := 0; i < rc.Len(); i++ {
		if rc.IsNull(i) {
			continue
		}
		index[rc.Value(i).String()] = append(index[rc.Value(i).String()], i)
	}
	var out []Pair
	for i := 0; i < lc.Len(); i++ {
		if lc.IsNull(i) {
			continue
		}
		for _, r := range index[lc.Value(i).String()] {
			out = append(out, Pair{Left: i, Right: r})
		}
	}
	return out, nil
}

// PartnerCounts returns, for every left row, the number of right rows
// whose connection distance is at most eps — its inverse is the
// join-partner distance of section 4.4 ("the user might use the inverse
// of that number as the distance").
func PartnerCounts(conn dataset.Connection, lt, rt *dataset.Table, eps float64, reg *distance.Registry) ([]int, error) {
	nl, nr := lt.NumRows(), rt.NumRows()
	out := make([]int, nl)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			d, err := conn.Distance(lt, rt, l, r, reg)
			if err != nil {
				return nil, err
			}
			if !math.IsNaN(d) && d <= eps {
				out[l]++
			}
		}
	}
	return out, nil
}

// PartnerDistances maps PartnerCounts through distance.InverseCount.
func PartnerDistances(counts []int) []float64 {
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = distance.InverseCount(c)
	}
	return out
}

// MinDistancePerLeft returns, for every left row, the minimum connection
// distance over all right rows, optionally blended (arithmetic mean)
// with a per-right-row condition distance innerDist. This implements the
// subquery semantics of section 4.4: "the data item most closely
// fulfilling the subquery condition can be determined by the minimum
// distance in performing an approximate join of the inner and the outer
// relation(s)". innerDist may be nil (pure join distance); NaN inner
// distances disqualify their right row.
func MinDistancePerLeft(conn dataset.Connection, lt, rt *dataset.Table, innerDist []float64, reg *distance.Registry) ([]float64, error) {
	nl, nr := lt.NumRows(), rt.NumRows()
	if innerDist != nil && len(innerDist) != nr {
		return nil, fmt.Errorf("join: innerDist has %d entries for %d right rows", len(innerDist), nr)
	}
	out := make([]float64, nl)
	for l := 0; l < nl; l++ {
		best := math.NaN()
		for r := 0; r < nr; r++ {
			d, err := conn.Distance(lt, rt, l, r, reg)
			if err != nil {
				return nil, err
			}
			if math.IsNaN(d) {
				continue
			}
			if innerDist != nil {
				if math.IsNaN(innerDist[r]) {
					continue
				}
				d = (d + innerDist[r]) / 2
			}
			if math.IsNaN(best) || d < best {
				best = d
			}
		}
		out[l] = best
	}
	return out, nil
}
