// Package join implements the approximate joins of section 4.4 of the
// paper: multi-table queries score every pair of the cross product by
// how closely it fulfills the join condition, so pairs that miss exact
// equality by a small time offset or a short distance still surface as
// approximate answers. It also provides the exact equi-join baseline,
// join-partner counting, and the minimum-distance semantics used for
// EXISTS/IN subqueries.
package join

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/dataset"
	"repro/internal/distance"
)

// Pair identifies one element of a two-table cross product by row
// indices.
type Pair struct {
	Left  int
	Right int
}

// Pairs enumerates the cross product of nLeft×nRight rows. When the
// product exceeds maxPairs (> 0), pairs are subsampled with a
// deterministic stride so the totality stays tractable — the paper
// acknowledges that with cross products "the totality of data items
// that are considered is much larger and the percentage that can be
// displayed is correspondingly lower"; the stride keeps the sample
// spread uniformly over the product.
//
// The product is computed in 128-bit arithmetic: nLeft×nRight can
// overflow int for large tables, which previously wrapped negative and
// made the "materialize everything" branch attempt a negative-capacity
// allocation before the maxPairs cap could apply.
func Pairs(nLeft, nRight, maxPairs int) []Pair {
	if nLeft <= 0 || nRight <= 0 {
		return nil
	}
	hi, lo := bits.Mul64(uint64(nLeft), uint64(nRight))
	if maxPairs <= 0 && hi == 0 && lo <= uint64(math.MaxInt) {
		// No cap and the product is representable: materialize it all.
		return allPairs(nLeft, nRight, int(lo))
	}
	if maxPairs <= 0 {
		// No cap but the product overflows int: no slice could hold it
		// anyway; fall back to the package default cap.
		maxPairs = 1 << 20
	}
	if hi == 0 && lo <= uint64(maxPairs) {
		return allPairs(nLeft, nRight, int(lo))
	}
	// Subsample with stride = ceil(total / maxPairs), using the 128-bit
	// quotient so the overflow regime subsamples correctly instead of
	// wrapping. bits.Div64 requires hi < divisor; when even the stride
	// would overflow 64 bits (total ≥ maxPairs·2⁶⁴ — unreachable for
	// in-memory tables) it degrades to one pair.
	var stride uint64
	if hi >= uint64(maxPairs) {
		stride = math.MaxUint64
	} else {
		q, rem := bits.Div64(hi, lo, uint64(maxPairs))
		stride = q
		if rem != 0 {
			stride++
		}
	}
	out := make([]Pair, 0, maxPairs)
	nr := uint64(nRight)
	for l, r := uint64(0), uint64(0); l < uint64(nLeft); {
		out = append(out, Pair{Left: int(l), Right: int(r)})
		// Advance the linear index l·nRight + r by stride without ever
		// materializing it.
		r += stride % nr
		l += stride / nr
		if r >= nr {
			r -= nr
			l++
		}
	}
	return out
}

// allPairs materializes the full cross product of total pairs.
func allPairs(nLeft, nRight, total int) []Pair {
	out := make([]Pair, 0, total)
	for l := 0; l < nLeft; l++ {
		for r := 0; r < nRight; r++ {
			out = append(out, Pair{Left: l, Right: r})
		}
	}
	return out
}

// ConnDistances scores each pair with the connection's distance. Null
// join attributes yield NaN entries.
func ConnDistances(conn dataset.Connection, lt, rt *dataset.Table, pairs []Pair, reg *distance.Registry) ([]float64, error) {
	out := make([]float64, len(pairs))
	if err := ConnDistancesRange(conn, lt, rt, pairs, out, 0, len(pairs), reg); err != nil {
		return nil, err
	}
	return out, nil
}

// ConnDistancesRange scores pairs[from:to] into out[from:to] — the
// chunk form of ConnDistances used by the engine's worker pool; callers
// on disjoint ranges may run concurrently.
func ConnDistancesRange(conn dataset.Connection, lt, rt *dataset.Table, pairs []Pair, out []float64, from, to int, reg *distance.Registry) error {
	for i := from; i < to; i++ {
		p := pairs[i]
		d, err := conn.Distance(lt, rt, p.Left, p.Right, reg)
		if err != nil {
			return fmt.Errorf("join: pair (%d,%d): %w", p.Left, p.Right, err)
		}
		out[i] = d
	}
	return nil
}

// Equi computes the exact equality join on one attribute pair using a
// hash join — the traditional-join baseline the paper contrasts with
// approximate joins ("join conditions requiring time or location
// equality would provide only very few or even no results").
func Equi(lt, rt *dataset.Table, lAttr, rAttr string) ([]Pair, error) {
	lc, err := lt.Column(lAttr)
	if err != nil {
		return nil, err
	}
	rc, err := rt.Column(rAttr)
	if err != nil {
		return nil, err
	}
	// Build the hash side on the smaller relation.
	index := make(map[string][]int)
	for i := 0; i < rc.Len(); i++ {
		if rc.IsNull(i) {
			continue
		}
		index[rc.Value(i).String()] = append(index[rc.Value(i).String()], i)
	}
	var out []Pair
	for i := 0; i < lc.Len(); i++ {
		if lc.IsNull(i) {
			continue
		}
		for _, r := range index[lc.Value(i).String()] {
			out = append(out, Pair{Left: i, Right: r})
		}
	}
	return out, nil
}

// PartnerCounts returns, for every left row, the number of right rows
// whose connection distance is at most eps — its inverse is the
// join-partner distance of section 4.4 ("the user might use the inverse
// of that number as the distance").
func PartnerCounts(conn dataset.Connection, lt, rt *dataset.Table, eps float64, reg *distance.Registry) ([]int, error) {
	out := make([]int, lt.NumRows())
	if err := PartnerCountsRange(conn, lt, rt, eps, out, 0, len(out), reg); err != nil {
		return nil, err
	}
	return out, nil
}

// PartnerCountsRange counts partners for left rows [from, to) into
// out[from:to] — the chunk form of PartnerCounts used by the engine's
// worker pool; callers on disjoint ranges may run concurrently.
func PartnerCountsRange(conn dataset.Connection, lt, rt *dataset.Table, eps float64, out []int, from, to int, reg *distance.Registry) error {
	nr := rt.NumRows()
	for l := from; l < to; l++ {
		for r := 0; r < nr; r++ {
			d, err := conn.Distance(lt, rt, l, r, reg)
			if err != nil {
				return err
			}
			if !math.IsNaN(d) && d <= eps {
				out[l]++
			}
		}
	}
	return nil
}

// PartnerDistances maps PartnerCounts through distance.InverseCount.
func PartnerDistances(counts []int) []float64 {
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = distance.InverseCount(c)
	}
	return out
}

// MinDistancePerLeft returns, for every left row, the minimum connection
// distance over all right rows, optionally blended (arithmetic mean)
// with a per-right-row condition distance innerDist. This implements the
// subquery semantics of section 4.4: "the data item most closely
// fulfilling the subquery condition can be determined by the minimum
// distance in performing an approximate join of the inner and the outer
// relation(s)". innerDist may be nil (pure join distance); NaN inner
// distances disqualify their right row.
func MinDistancePerLeft(conn dataset.Connection, lt, rt *dataset.Table, innerDist []float64, reg *distance.Registry) ([]float64, error) {
	nl, nr := lt.NumRows(), rt.NumRows()
	if innerDist != nil && len(innerDist) != nr {
		return nil, fmt.Errorf("join: innerDist has %d entries for %d right rows", len(innerDist), nr)
	}
	out := make([]float64, nl)
	for l := 0; l < nl; l++ {
		best := math.NaN()
		for r := 0; r < nr; r++ {
			d, err := conn.Distance(lt, rt, l, r, reg)
			if err != nil {
				return nil, err
			}
			if math.IsNaN(d) {
				continue
			}
			if innerDist != nil {
				if math.IsNaN(innerDist[r]) {
					continue
				}
				d = (d + innerDist[r]) / 2
			}
			if math.IsNaN(best) || d < best {
				best = d
			}
		}
		out[l] = best
	}
	return out, nil
}
