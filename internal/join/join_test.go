package join

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataset"
)

func mkTables(t *testing.T) (*dataset.Table, *dataset.Table) {
	t.Helper()
	lt, err := dataset.NewTable("L", dataset.Schema{
		{Name: "ts", Kind: dataset.KindTime},
		{Name: "v", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := dataset.NewTable("R", dataset.Schema{
		{Name: "ts", Kind: dataset.KindTime},
		{Name: "v", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(1994, 2, 14, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		if err := lt.AppendRow(dataset.Time(t0.Add(time.Duration(i)*time.Hour)), dataset.Float(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		// Right rows offset by 30 minutes: equality join finds nothing.
		if err := rt.AppendRow(dataset.Time(t0.Add(time.Duration(i)*time.Hour+30*time.Minute)), dataset.Float(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return lt, rt
}

func timeConn() dataset.Connection {
	return dataset.Connection{
		Name: "same-time", Left: "L", Right: "R",
		LeftAttr: "ts", RightAttr: "ts",
		Metric: dataset.MetricTime, Mode: dataset.ModeEqual,
	}
}

func TestPairsFull(t *testing.T) {
	ps := Pairs(3, 2, 0)
	if len(ps) != 6 {
		t.Fatalf("pairs: %d", len(ps))
	}
	if ps[0] != (Pair{0, 0}) || ps[5] != (Pair{2, 1}) {
		t.Fatalf("order: %v", ps)
	}
	if Pairs(0, 5, 0) != nil || Pairs(5, 0, 0) != nil {
		t.Error("degenerate dims")
	}
}

func TestPairsCapped(t *testing.T) {
	ps := Pairs(100, 100, 1000)
	if len(ps) > 1000 || len(ps) < 900 {
		t.Fatalf("capped size: %d", len(ps))
	}
	seen := make(map[Pair]bool)
	for _, p := range ps {
		if p.Left < 0 || p.Left >= 100 || p.Right < 0 || p.Right >= 100 {
			t.Fatalf("out of range: %+v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate: %+v", p)
		}
		seen[p] = true
	}
	// Deterministic.
	ps2 := Pairs(100, 100, 1000)
	for i := range ps {
		if ps[i] != ps2[i] {
			t.Fatal("sampling must be deterministic")
		}
	}
	// Spread: both low and high left indices sampled.
	if ps[0].Left != 0 || ps[len(ps)-1].Left < 90 {
		t.Fatalf("sampling not spread: first %+v last %+v", ps[0], ps[len(ps)-1])
	}
}

func TestConnDistances(t *testing.T) {
	lt, rt := mkTables(t)
	pairs := Pairs(lt.NumRows(), rt.NumRows(), 0)
	ds, err := ConnDistances(timeConn(), lt, rt, pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 12 {
		t.Fatalf("len: %d", len(ds))
	}
	// Pair (0,0): 30 minutes apart = 1800 s.
	if ds[0] != 1800 {
		t.Fatalf("pair(0,0): %v", ds[0])
	}
	// Pair (1,0): 30 minutes as well (1h vs 0h30).
	if ds[rt.NumRows()] != 1800 {
		t.Fatalf("pair(1,0): %v", ds[rt.NumRows()])
	}
}

func TestEquiFindsNothingOnOffsetData(t *testing.T) {
	// The paper's motivating scenario: measurement intervals differ, so
	// the exact time-equality join is empty while the approximate join
	// has near matches.
	lt, rt := mkTables(t)
	pairs, err := Equi(lt, rt, "ts", "ts")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("equi join on offset timestamps should be empty: %v", pairs)
	}
	// Value columns do match exactly.
	pairs, err = Equi(lt, rt, "v", "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("v equi join: %v", pairs)
	}
	if _, err := Equi(lt, rt, "nope", "v"); err == nil {
		t.Error("missing column should fail")
	}
}

func TestEquiSkipsNulls(t *testing.T) {
	lt, _ := dataset.NewTable("L", dataset.Schema{{Name: "x", Kind: dataset.KindFloat}})
	rt, _ := dataset.NewTable("R", dataset.Schema{{Name: "x", Kind: dataset.KindFloat}})
	_ = lt.AppendRow(dataset.Null(dataset.KindFloat))
	_ = lt.AppendRow(dataset.Float(1))
	_ = rt.AppendRow(dataset.Null(dataset.KindFloat))
	_ = rt.AppendRow(dataset.Float(1))
	pairs, err := Equi(lt, rt, "x", "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != (Pair{1, 1}) {
		t.Fatalf("null handling: %v", pairs)
	}
}

func TestPartnerCounts(t *testing.T) {
	lt, rt := mkTables(t)
	counts, err := PartnerCounts(timeConn(), lt, rt, 3600, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Left row 0 (00:00): right rows at 00:30 (1800s) and 01:30 (5400s)
	// → 1 partner within 3600s. Left row 1 (01:00): 00:30 and 01:30 both
	// 1800s → 2 partners.
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("counts: %v", counts)
	}
	ds := PartnerDistances(counts)
	if ds[1] != 0.5 {
		t.Fatalf("partner distances: %v", ds)
	}
	// A left row with no partners is infinitely distant.
	if counts[3] != 1 { // 03:00 vs 02:30 → 1800s
		t.Fatalf("counts[3]: %v", counts)
	}
	zero, _ := PartnerCounts(timeConn(), lt, rt, 60, nil)
	dz := PartnerDistances(zero)
	if !math.IsInf(dz[0], 1) {
		t.Fatalf("no partners: %v", dz[0])
	}
}

func TestMinDistancePerLeft(t *testing.T) {
	lt, rt := mkTables(t)
	ds, err := MinDistancePerLeft(timeConn(), lt, rt, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every left row is 30 min from its nearest right row.
	for i, d := range ds {
		if d != 1800 {
			t.Fatalf("row %d: %v", i, d)
		}
	}
	// Inner condition distances blend in (arithmetic mean) and can
	// redirect the minimum.
	inner := []float64{1e9, 0, 0}
	ds, err = MinDistancePerLeft(timeConn(), lt, rt, inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Left row 0: right 0 blended (1800+1e9)/2 huge; right 1 at 5400s
	// blended (5400+0)/2 = 2700 → min 2700.
	if ds[0] != 2700 {
		t.Fatalf("blended min: %v", ds[0])
	}
	// NaN inner distances disqualify rows.
	inner = []float64{math.NaN(), math.NaN(), math.NaN()}
	ds, _ = MinDistancePerLeft(timeConn(), lt, rt, inner, nil)
	if !math.IsNaN(ds[0]) {
		t.Fatalf("all disqualified: %v", ds[0])
	}
	// Shape check.
	if _, err := MinDistancePerLeft(timeConn(), lt, rt, []float64{1}, nil); err == nil {
		t.Error("wrong innerDist length should fail")
	}
}

// TestPairsOverflow: nLeft·nRight beyond the int range used to wrap
// negative and attempt a negative-capacity allocation before the
// maxPairs cap applied; the 128-bit product must subsample instead.
func TestPairsOverflow(t *testing.T) {
	const big = 3_100_000_000 // untyped: the pairwise product ≈ 9.6e18 > MaxInt64
	if math.MaxInt < big {
		t.Skip("overflow regime requires 64-bit int")
	}
	big64 := int64(big)
	nl, nr := int(big64), int(big64)
	ps := Pairs(nl, nr, 100)
	if len(ps) == 0 || len(ps) > 100 {
		t.Fatalf("overflow regime sample size: %d", len(ps))
	}
	for i, p := range ps {
		if p.Left < 0 || p.Left >= nl || p.Right < 0 || p.Right >= nr {
			t.Fatalf("pair %d out of range: %+v", i, p)
		}
	}
	// The stride walks the linear index monotonically.
	for i := 1; i < len(ps); i++ {
		if ps[i].Left < ps[i-1].Left ||
			(ps[i].Left == ps[i-1].Left && ps[i].Right <= ps[i-1].Right) {
			t.Fatalf("sample not strictly increasing at %d: %+v -> %+v", i, ps[i-1], ps[i])
		}
	}
	// Spread across the left relation, not clustered at the start.
	if ps[len(ps)-1].Left < nl/2 {
		t.Fatalf("sample not spread: last %+v", ps[len(ps)-1])
	}
	// An uncapped call on an overflowing product must still bound the
	// result rather than attempting an impossible allocation.
	if got := Pairs(nl, nr, 0); len(got) == 0 || len(got) > 1<<20 {
		t.Fatalf("uncapped overflow size: %d", len(got))
	}
}

// TestPairsCapEqualsTotal: the boundary where the product exactly equals
// the cap materializes everything.
func TestPairsCapEqualsTotal(t *testing.T) {
	ps := Pairs(4, 25, 100)
	if len(ps) != 100 {
		t.Fatalf("len = %d, want full 100", len(ps))
	}
}
