package dataset

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// tinyCatalog builds a deliberately small two-column catalog so the
// every-byte corruption sweep stays cheap (the whole file is a few
// hundred bytes).
func tinyCatalog(t *testing.T, rows int) *Catalog {
	t.Helper()
	tbl, err := NewTable("t", Schema{
		{Name: "f", Kind: KindFloat},
		{Name: "s", Kind: KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		f := Float(float64(r) * 0.25)
		if r%7 == 3 {
			f = Null(KindFloat)
		}
		if err := tbl.AppendRow(f, Str(string(rune('a'+r%5)))); err != nil {
			t.Fatal(err)
		}
	}
	cat := NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

// scanAll touches every cell of every table, forcing every segment of
// every column through the decoder.
func scanAll(t *testing.T, cat *Catalog) {
	t.Helper()
	for _, name := range cat.TableNames() {
		tbl, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < tbl.NumRows(); r++ {
			tbl.Row(r)
		}
	}
}

// TestLegacyV1StillReadable pins backward compatibility: a catalog
// written in the checksum-free VSEGCAT1 layout opens and reads cell
// for cell identically to the in-memory original, with no corruption
// reported.
func TestLegacyV1StillReadable(t *testing.T) {
	const rows = SegmentSize + 57
	mem := mixedCatalog(t, rows)
	path := filepath.Join(t.TempDir(), "legacy.vseg")
	epoch, err := WriteCatalogFileV1(path, mem)
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("v1 writer stamped zero epoch")
	}
	for _, force := range []bool{false, true} {
		disk, err := OpenCatalogFile(path, OpenOptions{ForceReadAt: force})
		if err != nil {
			t.Fatalf("open v1 (forceReadAt=%v): %v", force, err)
		}
		mt, _ := mem.Table("m")
		dt, err := disk.Table("m")
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < mt.NumRows(); r++ {
			want, got := mt.Row(r), dt.Row(r)
			for i := range want {
				if !valueEqualNaN(want[i], got[i]) {
					t.Fatalf("row %d col %d: %v != %v", r, i, got[i], want[i])
				}
			}
		}
		if err := disk.Corrupt(); err != nil {
			t.Fatalf("healthy v1 catalog reports corruption: %v", err)
		}
		disk.Close()
	}
}

// TestEveryByteFlipDetected is the format's integrity contract: flip
// any single byte of a current-format file and either the open fails or a
// full scan trips the sticky corruption error — in both cases a typed
// ErrCorruptSegment, never silently wrong data.
func TestEveryByteFlipDetected(t *testing.T) {
	mem := tinyCatalog(t, 23)
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.vseg")
	if _, err := WriteCatalogFile(orig, mem); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sweeping %d byte positions", len(data))
	work := filepath.Join(dir, "flip.vseg")
	for off := range data {
		data[off] ^= 0x41
		if err := os.WriteFile(work, data, 0o644); err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0x41

		cat, err := OpenCatalogFile(work, OpenOptions{ForceReadAt: true})
		if err != nil {
			if !errors.Is(err, ErrCorruptSegment) {
				t.Fatalf("flip at %d: open error is not ErrCorruptSegment: %v", off, err)
			}
			continue
		}
		scanAll(t, cat)
		cerr := cat.Corrupt()
		cat.Close()
		if cerr == nil {
			t.Fatalf("flip at %d: opened and scanned clean — corruption undetected", off)
		}
		if !errors.Is(cerr, ErrCorruptSegment) {
			t.Fatalf("flip at %d: sticky error is not ErrCorruptSegment: %v", off, cerr)
		}
	}
}

// TestCorruptionServedAsZeroes pins the no-panic contract: a CRC
// mismatch mid-read must not crash the reading goroutine; the column
// serves structurally valid zero values and the catalog turns sticky
// corrupt.
func TestCorruptionServedAsZeroes(t *testing.T) {
	mem := tinyCatalog(t, 23)
	path := filepath.Join(t.TempDir(), "c.vseg")
	if _, err := WriteCatalogFile(path, mem); err != nil {
		t.Fatal(err)
	}
	// Flip one bit of the first blob byte (just past the head magic)
	// beneath an otherwise healthy open — open succeeds (footer is
	// fine), the first decode fails its CRC.
	cat, err := OpenCatalogFile(path, OpenOptions{
		WrapReaderAt: func(r io.ReaderAt) io.ReaderAt {
			return faultinject.CorruptReaderAt(r, int64(len(segMagic2)), 0x10)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	tbl, err := cat.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tbl.NumRows(); r++ {
		tbl.Row(r) // must not panic
	}
	if cerr := cat.Corrupt(); !errors.Is(cerr, ErrCorruptSegment) {
		t.Fatalf("corrupt = %v, want ErrCorruptSegment", cerr)
	}
}

// TestTruncationDetected pins the I/O-failure path: a medium that
// ends mid-blob surfaces as sticky corruption, not a panic.
func TestTruncationDetected(t *testing.T) {
	mem := tinyCatalog(t, 23)
	path := filepath.Join(t.TempDir(), "t.vseg")
	if _, err := WriteCatalogFile(path, mem); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenCatalogFile(path, OpenOptions{
		WrapReaderAt: func(r io.ReaderAt) io.ReaderAt {
			return faultinject.TruncateReaderAt(r, int64(len(segMagic2))+10)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	scanAll(t, cat)
	if cerr := cat.Corrupt(); !errors.Is(cerr, ErrCorruptSegment) {
		t.Fatalf("corrupt = %v, want ErrCorruptSegment", cerr)
	}
}
