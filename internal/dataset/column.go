package dataset

import (
	"fmt"
	"math"
	"time"
)

// SegmentSize is the row count of one column segment — 4096, matching
// the fused evaluator's chunk size so a segment decoded from disk is
// consumed by exactly one evaluator chunk. All columnar storage (both
// the in-memory columns below and the file-backed columns of
// segfile.go) is aligned to it.
const SegmentSize = 1 << segShift

const (
	segShift = 12
	segMask  = SegmentSize - 1
)

// segs is chunk-aligned segmented storage: values live in fixed-size
// segments instead of one flat slice, so growth never reallocates or
// copies existing data and the layout matches the on-disk segment
// format one-to-one.
type segs[T any] struct {
	chunks [][]T
	n      int
}

func (s *segs[T]) append(v T) {
	if s.n&segMask == 0 {
		s.chunks = append(s.chunks, make([]T, 0, SegmentSize))
	}
	last := len(s.chunks) - 1
	s.chunks[last] = append(s.chunks[last], v)
	s.n++
}

func (s *segs[T]) at(i int) T { return s.chunks[i>>segShift][i&segMask] }

// seg returns segment si as a read-only slice.
func (s *segs[T]) seg(si int) []T { return s.chunks[si] }

func (s *segs[T]) numSegs() int { return len(s.chunks) }

// Column is a typed, nullable vector of values — one attribute of a
// table, stored column-oriented so the distance pipeline can stream an
// attribute without touching the rest of the row.
type Column interface {
	// Kind returns the column's datatype.
	Kind() Kind
	// Len returns the number of entries.
	Len() int
	// Value returns entry i as a Value.
	Value(i int) Value
	// IsNull reports whether entry i is null.
	IsNull(i int) bool
	// Append adds v, which must match the column kind (or be null).
	Append(v Value) error
}

// FloatReader is implemented by columns that can bulk-decode a row
// range into float64s with the Value.AsFloat coercion (ints exactly,
// times as Unix seconds, bools as 0/1) and NaN for nulls. It is the
// fast path of Table.FloatsOf and the streaming distance pipeline:
// dst may cover an arbitrary [from, from+len(dst)) row range, which
// need not be segment-aligned (the engine's parallel chunking differs
// from the storage segmentation).
type FloatReader interface {
	ReadFloats(dst []float64, from int)
}

// MinMaxer is implemented by columns that know their numeric extremes
// without a scan — file-backed columns carry them in the catalog
// footer. ok is false when the column has no non-null numeric values.
type MinMaxer interface {
	MinMax() (min, max float64, ok bool)
}

// SegmentStatser is implemented by columns that know per-segment
// statistics without decoding — file-backed columns opened from a
// format-v3 catalog carry them in the footer. For segment si (rows
// [si*SegmentSize, min((si+1)*SegmentSize, Len()))), min and max bound
// every usable value the segment decodes to under the ReadFloats
// coercion, and nulls counts the rows with no usable value (null rows,
// plus NaN entries of float columns). ok is false when the segment has
// no stats (older formats, all-null segments, string columns) — a
// caller may then decode, never assume.
//
// The contract is what makes predicate pushdown sound: ok with
// nulls == 0 and [min, max] strictly inside a query range proves every
// row of the segment scores range distance exactly 0, so the scan may
// skip the decode and leave a zero-filled distance range in place.
type SegmentStatser interface {
	SegmentStats(si int) (min, max float64, nulls int, ok bool)
}

// readOnly marks columns that reject Append (file-backed columns).
type readOnly interface {
	readOnlyColumn()
}

// NewColumn returns an empty column of the given kind.
func NewColumn(k Kind) Column {
	switch k {
	case KindFloat:
		return &FloatColumn{}
	case KindInt:
		return &IntColumn{}
	case KindTime:
		return &TimeColumn{}
	case KindBool:
		return &BoolColumn{}
	default:
		return &StringColumn{kind: k}
	}
}

func kindMismatch(want, got Kind) error {
	return fmt.Errorf("dataset: column kind %v cannot hold %v value", want, got)
}

// readSegmented streams rows [from, from+len(dst)) through a
// per-segment kernel: fn decodes segment si's rows [lo, hi) into
// dst[at:]. It factors the segment-boundary arithmetic out of every
// ReadFloats implementation.
func readSegmented(dst []float64, from int, fn func(dst []float64, si, lo, hi int)) {
	at := 0
	for at < len(dst) {
		row := from + at
		si, off := row>>segShift, row&segMask
		hi := off + (len(dst) - at)
		if hi > SegmentSize {
			hi = SegmentSize
		}
		fn(dst[at:], si, off, hi)
		at += hi - off
	}
}

// FloatColumn stores float64 values.
type FloatColumn struct {
	vals  segs[float64]
	nulls segs[bool]
}

// Kind implements Column.
func (c *FloatColumn) Kind() Kind { return KindFloat }

// Len implements Column.
func (c *FloatColumn) Len() int { return c.vals.n }

// IsNull implements Column.
func (c *FloatColumn) IsNull(i int) bool { return c.nulls.at(i) }

// Value implements Column.
func (c *FloatColumn) Value(i int) Value {
	if c.nulls.at(i) {
		return Null(KindFloat)
	}
	return Float(c.vals.at(i))
}

// Append implements Column. Non-null int values are accepted and
// widened, since numeric literals flow through the parser as either.
func (c *FloatColumn) Append(v Value) error {
	if v.Null {
		c.vals.append(math.NaN())
		c.nulls.append(true)
		return nil
	}
	switch v.Kind {
	case KindFloat:
		c.vals.append(v.F)
	case KindInt:
		c.vals.append(float64(v.I))
	default:
		return kindMismatch(KindFloat, v.Kind)
	}
	c.nulls.append(false)
	return nil
}

// Float returns entry i and whether it is non-null, without boxing.
func (c *FloatColumn) Float(i int) (float64, bool) {
	if c.nulls.at(i) {
		return math.NaN(), false
	}
	return c.vals.at(i), true
}

// ReadFloats implements FloatReader. Null entries already hold NaN in
// the value segments, so this is a straight per-segment copy.
func (c *FloatColumn) ReadFloats(dst []float64, from int) {
	readSegmented(dst, from, func(dst []float64, si, lo, hi int) {
		copy(dst, c.vals.seg(si)[lo:hi])
	})
}

// IntColumn stores int64 values.
type IntColumn struct {
	vals  segs[int64]
	nulls segs[bool]
}

// Kind implements Column.
func (c *IntColumn) Kind() Kind { return KindInt }

// Len implements Column.
func (c *IntColumn) Len() int { return c.vals.n }

// IsNull implements Column.
func (c *IntColumn) IsNull(i int) bool { return c.nulls.at(i) }

// Value implements Column.
func (c *IntColumn) Value(i int) Value {
	if c.nulls.at(i) {
		return Null(KindInt)
	}
	return Int(c.vals.at(i))
}

// Append implements Column.
func (c *IntColumn) Append(v Value) error {
	if v.Null {
		c.vals.append(0)
		c.nulls.append(true)
		return nil
	}
	if v.Kind != KindInt {
		return kindMismatch(KindInt, v.Kind)
	}
	c.vals.append(v.I)
	c.nulls.append(false)
	return nil
}

// ReadFloats implements FloatReader.
func (c *IntColumn) ReadFloats(dst []float64, from int) {
	readSegmented(dst, from, func(dst []float64, si, lo, hi int) {
		vals, nulls := c.vals.seg(si), c.nulls.seg(si)
		for i := lo; i < hi; i++ {
			if nulls[i] {
				dst[i-lo] = math.NaN()
			} else {
				dst[i-lo] = float64(vals[i])
			}
		}
	})
}

// StringColumn stores string values; it backs the string, ordinal and
// nominal kinds.
type StringColumn struct {
	kind  Kind
	vals  segs[string]
	nulls segs[bool]
}

// Kind implements Column. A zero-value StringColumn is a plain string
// column.
func (c *StringColumn) Kind() Kind {
	if !c.kind.IsStringy() {
		return KindString
	}
	return c.kind
}

// Len implements Column.
func (c *StringColumn) Len() int { return c.vals.n }

// IsNull implements Column.
func (c *StringColumn) IsNull(i int) bool { return c.nulls.at(i) }

// Value implements Column.
func (c *StringColumn) Value(i int) Value {
	if c.nulls.at(i) {
		return Null(c.Kind())
	}
	return Value{Kind: c.Kind(), S: c.vals.at(i)}
}

// Append implements Column.
func (c *StringColumn) Append(v Value) error {
	if v.Null {
		c.vals.append("")
		c.nulls.append(true)
		return nil
	}
	if !v.Kind.IsStringy() {
		return kindMismatch(c.Kind(), v.Kind)
	}
	c.vals.append(v.S)
	c.nulls.append(false)
	return nil
}

// Str returns entry i and whether it is non-null.
func (c *StringColumn) Str(i int) (string, bool) {
	if c.nulls.at(i) {
		return "", false
	}
	return c.vals.at(i), true
}

// TimeColumn stores instants.
type TimeColumn struct {
	vals  segs[time.Time]
	nulls segs[bool]
}

// Kind implements Column.
func (c *TimeColumn) Kind() Kind { return KindTime }

// Len implements Column.
func (c *TimeColumn) Len() int { return c.vals.n }

// IsNull implements Column.
func (c *TimeColumn) IsNull(i int) bool { return c.nulls.at(i) }

// Value implements Column.
func (c *TimeColumn) Value(i int) Value {
	if c.nulls.at(i) {
		return Null(KindTime)
	}
	return Time(c.vals.at(i))
}

// Append implements Column.
func (c *TimeColumn) Append(v Value) error {
	if v.Null {
		c.vals.append(time.Time{})
		c.nulls.append(true)
		return nil
	}
	if v.Kind != KindTime {
		return kindMismatch(KindTime, v.Kind)
	}
	c.vals.append(v.T)
	c.nulls.append(false)
	return nil
}

// TimeAt returns entry i and whether it is non-null.
func (c *TimeColumn) TimeAt(i int) (time.Time, bool) {
	if c.nulls.at(i) {
		return time.Time{}, false
	}
	return c.vals.at(i), true
}

// ReadFloats implements FloatReader (Unix seconds, per AsFloat).
func (c *TimeColumn) ReadFloats(dst []float64, from int) {
	readSegmented(dst, from, func(dst []float64, si, lo, hi int) {
		vals, nulls := c.vals.seg(si), c.nulls.seg(si)
		for i := lo; i < hi; i++ {
			if nulls[i] {
				dst[i-lo] = math.NaN()
			} else {
				dst[i-lo] = float64(vals[i].Unix())
			}
		}
	})
}

// BoolColumn stores booleans.
type BoolColumn struct {
	vals  segs[bool]
	nulls segs[bool]
}

// Kind implements Column.
func (c *BoolColumn) Kind() Kind { return KindBool }

// Len implements Column.
func (c *BoolColumn) Len() int { return c.vals.n }

// IsNull implements Column.
func (c *BoolColumn) IsNull(i int) bool { return c.nulls.at(i) }

// Value implements Column.
func (c *BoolColumn) Value(i int) Value {
	if c.nulls.at(i) {
		return Null(KindBool)
	}
	return Bool(c.vals.at(i))
}

// Append implements Column.
func (c *BoolColumn) Append(v Value) error {
	if v.Null {
		c.vals.append(false)
		c.nulls.append(true)
		return nil
	}
	if v.Kind != KindBool {
		return kindMismatch(KindBool, v.Kind)
	}
	c.vals.append(v.B)
	c.nulls.append(false)
	return nil
}

// ReadFloats implements FloatReader (0/1, per AsFloat).
func (c *BoolColumn) ReadFloats(dst []float64, from int) {
	readSegmented(dst, from, func(dst []float64, si, lo, hi int) {
		vals, nulls := c.vals.seg(si), c.nulls.seg(si)
		for i := lo; i < hi; i++ {
			switch {
			case nulls[i]:
				dst[i-lo] = math.NaN()
			case vals[i]:
				dst[i-lo] = 1
			default:
				dst[i-lo] = 0
			}
		}
	})
}
