package dataset

import (
	"fmt"
	"math"
	"time"
)

// Column is a typed, nullable vector of values — one attribute of a
// table, stored column-oriented so the distance pipeline can stream an
// attribute without touching the rest of the row.
type Column interface {
	// Kind returns the column's datatype.
	Kind() Kind
	// Len returns the number of entries.
	Len() int
	// Value returns entry i as a Value.
	Value(i int) Value
	// IsNull reports whether entry i is null.
	IsNull(i int) bool
	// Append adds v, which must match the column kind (or be null).
	Append(v Value) error
}

// NewColumn returns an empty column of the given kind.
func NewColumn(k Kind) Column {
	switch k {
	case KindFloat:
		return &FloatColumn{}
	case KindInt:
		return &IntColumn{}
	case KindTime:
		return &TimeColumn{}
	case KindBool:
		return &BoolColumn{}
	default:
		return &StringColumn{kind: k}
	}
}

func kindMismatch(want, got Kind) error {
	return fmt.Errorf("dataset: column kind %v cannot hold %v value", want, got)
}

// FloatColumn stores float64 values.
type FloatColumn struct {
	vals  []float64
	nulls []bool
}

// Kind implements Column.
func (c *FloatColumn) Kind() Kind { return KindFloat }

// Len implements Column.
func (c *FloatColumn) Len() int { return len(c.vals) }

// IsNull implements Column.
func (c *FloatColumn) IsNull(i int) bool { return c.nulls[i] }

// Value implements Column.
func (c *FloatColumn) Value(i int) Value {
	if c.nulls[i] {
		return Null(KindFloat)
	}
	return Float(c.vals[i])
}

// Append implements Column. Non-null int values are accepted and
// widened, since numeric literals flow through the parser as either.
func (c *FloatColumn) Append(v Value) error {
	if v.Null {
		c.vals = append(c.vals, math.NaN())
		c.nulls = append(c.nulls, true)
		return nil
	}
	switch v.Kind {
	case KindFloat:
		c.vals = append(c.vals, v.F)
	case KindInt:
		c.vals = append(c.vals, float64(v.I))
	default:
		return kindMismatch(KindFloat, v.Kind)
	}
	c.nulls = append(c.nulls, false)
	return nil
}

// Float returns entry i and whether it is non-null, without boxing.
func (c *FloatColumn) Float(i int) (float64, bool) {
	if c.nulls[i] {
		return math.NaN(), false
	}
	return c.vals[i], true
}

// Floats exposes the backing slice for read-only streaming; nulls carry
// NaN. Callers must not mutate it.
func (c *FloatColumn) Floats() []float64 { return c.vals }

// IntColumn stores int64 values.
type IntColumn struct {
	vals  []int64
	nulls []bool
}

// Kind implements Column.
func (c *IntColumn) Kind() Kind { return KindInt }

// Len implements Column.
func (c *IntColumn) Len() int { return len(c.vals) }

// IsNull implements Column.
func (c *IntColumn) IsNull(i int) bool { return c.nulls[i] }

// Value implements Column.
func (c *IntColumn) Value(i int) Value {
	if c.nulls[i] {
		return Null(KindInt)
	}
	return Int(c.vals[i])
}

// Append implements Column.
func (c *IntColumn) Append(v Value) error {
	if v.Null {
		c.vals = append(c.vals, 0)
		c.nulls = append(c.nulls, true)
		return nil
	}
	if v.Kind != KindInt {
		return kindMismatch(KindInt, v.Kind)
	}
	c.vals = append(c.vals, v.I)
	c.nulls = append(c.nulls, false)
	return nil
}

// StringColumn stores string values; it backs the string, ordinal and
// nominal kinds.
type StringColumn struct {
	kind  Kind
	vals  []string
	nulls []bool
}

// Kind implements Column. A zero-value StringColumn is a plain string
// column.
func (c *StringColumn) Kind() Kind {
	if !c.kind.IsStringy() {
		return KindString
	}
	return c.kind
}

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.vals) }

// IsNull implements Column.
func (c *StringColumn) IsNull(i int) bool { return c.nulls[i] }

// Value implements Column.
func (c *StringColumn) Value(i int) Value {
	if c.nulls[i] {
		return Null(c.Kind())
	}
	return Value{Kind: c.Kind(), S: c.vals[i]}
}

// Append implements Column.
func (c *StringColumn) Append(v Value) error {
	if v.Null {
		c.vals = append(c.vals, "")
		c.nulls = append(c.nulls, true)
		return nil
	}
	if !v.Kind.IsStringy() {
		return kindMismatch(c.Kind(), v.Kind)
	}
	c.vals = append(c.vals, v.S)
	c.nulls = append(c.nulls, false)
	return nil
}

// Str returns entry i and whether it is non-null.
func (c *StringColumn) Str(i int) (string, bool) {
	if c.nulls[i] {
		return "", false
	}
	return c.vals[i], true
}

// TimeColumn stores instants.
type TimeColumn struct {
	vals  []time.Time
	nulls []bool
}

// Kind implements Column.
func (c *TimeColumn) Kind() Kind { return KindTime }

// Len implements Column.
func (c *TimeColumn) Len() int { return len(c.vals) }

// IsNull implements Column.
func (c *TimeColumn) IsNull(i int) bool { return c.nulls[i] }

// Value implements Column.
func (c *TimeColumn) Value(i int) Value {
	if c.nulls[i] {
		return Null(KindTime)
	}
	return Time(c.vals[i])
}

// Append implements Column.
func (c *TimeColumn) Append(v Value) error {
	if v.Null {
		c.vals = append(c.vals, time.Time{})
		c.nulls = append(c.nulls, true)
		return nil
	}
	if v.Kind != KindTime {
		return kindMismatch(KindTime, v.Kind)
	}
	c.vals = append(c.vals, v.T)
	c.nulls = append(c.nulls, false)
	return nil
}

// TimeAt returns entry i and whether it is non-null.
func (c *TimeColumn) TimeAt(i int) (time.Time, bool) {
	if c.nulls[i] {
		return time.Time{}, false
	}
	return c.vals[i], true
}

// BoolColumn stores booleans.
type BoolColumn struct {
	vals  []bool
	nulls []bool
}

// Kind implements Column.
func (c *BoolColumn) Kind() Kind { return KindBool }

// Len implements Column.
func (c *BoolColumn) Len() int { return len(c.vals) }

// IsNull implements Column.
func (c *BoolColumn) IsNull(i int) bool { return c.nulls[i] }

// Value implements Column.
func (c *BoolColumn) Value(i int) Value {
	if c.nulls[i] {
		return Null(KindBool)
	}
	return Bool(c.vals[i])
}

// Append implements Column.
func (c *BoolColumn) Append(v Value) error {
	if v.Null {
		c.vals = append(c.vals, false)
		c.nulls = append(c.nulls, true)
		return nil
	}
	if v.Kind != KindBool {
		return kindMismatch(KindBool, v.Kind)
	}
	c.vals = append(c.vals, v.B)
	c.nulls = append(c.nulls, false)
	return nil
}
