package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestCSVRoundTripProperty: random tables of every kind survive a
// CSV write/read cycle value-for-value.
func TestCSVRoundTripProperty(t *testing.T) {
	schema := Schema{
		{Name: "f", Kind: KindFloat},
		{Name: "i", Kind: KindInt},
		{Name: "s", Kind: KindString},
		{Name: "ts", Kind: KindTime},
		{Name: "b", Kind: KindBool},
		{Name: "n", Kind: KindNominal, Categories: []string{"a", "b", "c"}},
	}
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 50)
		tbl, err := NewTable("P", schema)
		if err != nil {
			return false
		}
		base := time.Date(1994, 1, 1, 0, 0, 0, 0, time.UTC)
		for r := 0; r < n; r++ {
			row := make([]Value, len(schema))
			for c, fl := range schema {
				if rng.Intn(5) == 0 {
					row[c] = Null(fl.Kind)
					continue
				}
				switch fl.Kind {
				case KindFloat:
					// Finite, round-trippable floats (strconv 'g' -1 is
					// exact for any finite float64).
					row[c] = Float(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3)))
				case KindInt:
					row[c] = Int(rng.Int63n(1e12) - 5e11)
				case KindString:
					row[c] = Str(randASCII(rng))
				case KindTime:
					row[c] = Time(base.Add(time.Duration(rng.Int63n(1e6)) * time.Second))
				case KindBool:
					row[c] = Bool(rng.Intn(2) == 0)
				default:
					row[c] = Nominal([]string{"a", "b", "c"}[rng.Intn(3)])
				}
			}
			if err := tbl.AppendRow(row...); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf, "P", schema)
		if err != nil {
			return false
		}
		if back.NumRows() != tbl.NumRows() {
			return false
		}
		for r := 0; r < tbl.NumRows(); r++ {
			for c := 0; c < tbl.NumCols(); c++ {
				if !tbl.ColumnAt(c).Value(r).Equal(back.ColumnAt(c).Value(r)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randASCII emits printable non-empty strings including CSV-hostile
// characters. Empty strings are excluded: the CSV format serializes
// NULL as the empty cell, so "" does not round-trip (see
// TestCSVEmptyStringIsNull).
func randASCII(rng *rand.Rand) string {
	hostile := []string{",", "\"", "'", "\n", " ", "ünïcode", "a,b\"c"}
	if rng.Intn(3) == 0 {
		return hostile[rng.Intn(len(hostile))]
	}
	n := 1 + rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(32 + rng.Intn(95))
	}
	return string(b)
}

// TestCSVEmptyStringIsNull pins the documented format limitations: an
// empty string cell deserializes as NULL, and a single-column all-null
// row is dropped entirely (encoding/csv skips empty lines).
func TestCSVEmptyStringIsNull(t *testing.T) {
	schema := Schema{
		{Name: "s", Kind: KindString},
		{Name: "i", Kind: KindInt},
	}
	tbl, _ := NewTable("E", schema)
	if err := tbl.AppendRow(Str(""), Int(1)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "E", schema)
	if err != nil {
		t.Fatal(err)
	}
	if v := back.ColumnAt(0).Value(0); !v.Null {
		t.Fatalf("empty string should read back as NULL, got %+v", v)
	}
	// Single-column all-null rows vanish: encoding/csv treats the bare
	// empty line as no record.
	one, _ := NewTable("O", Schema{{Name: "s", Kind: KindString}})
	_ = one.AppendRow(Null(KindString))
	buf.Reset()
	if err := one.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err = ReadCSV(&buf, "O", Schema{{Name: "s", Kind: KindString}})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 0 {
		t.Fatalf("single-column null row should be dropped by the CSV layer, got %d rows", back.NumRows())
	}
}
