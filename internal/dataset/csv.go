package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV writes the table as CSV with a header row of field names.
// Null cells serialize as empty strings; times as RFC 3339. Two format
// limitations follow from the CSV convention: an empty string is
// indistinguishable from NULL on read, and a single-column table's
// all-null rows vanish (encoding/csv skips bare empty lines).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.schema))
	for i, f := range t.schema {
		header[i] = f.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	row := make([]string, len(t.cols))
	for r := 0; r < t.NumRows(); r++ {
		for c, col := range t.cols {
			row[c] = col.Value(r).String()
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table from CSV. The header must match the schema's
// field names in order; cells parse per the schema kinds, empty cells
// becoming nulls.
func ReadCSV(r io.Reader, name string, schema Schema) (*Table, error) {
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	if len(header) != len(schema) {
		return nil, fmt.Errorf("dataset: csv has %d columns, schema has %d", len(header), len(schema))
	}
	for i, h := range header {
		if h != schema[i].Name {
			return nil, fmt.Errorf("dataset: csv column %d is %q, schema says %q", i, h, schema[i].Name)
		}
	}
	vals := make([]Value, len(schema))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv line %d: %w", line, err)
		}
		for i, cell := range rec {
			v, err := ParseValue(schema[i].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d column %q: %w", line, schema[i].Name, err)
			}
			vals[i] = v
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line, err)
		}
	}
	return t, nil
}
