// Package dataset is the storage substrate of the VisDB reproduction: a
// typed, in-memory, column-oriented table store with a catalog of named
// "connections" (the predefined, parameterizable joins of the GRADI query
// interface, section 4.1), plus CSV import/export.
package dataset

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the datatypes the engine understands. Ordinal and
// Nominal are string-valued but carry category semantics so that
// distance matrices and discrete sliders (section 4.3) apply.
type Kind int

const (
	KindFloat Kind = iota
	KindInt
	KindString
	KindTime
	KindBool
	KindOrdinal
	KindNominal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	case KindBool:
		return "bool"
	case KindOrdinal:
		return "ordinal"
	case KindNominal:
		return "nominal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsStringy reports whether values of the kind are stored as strings.
func (k Kind) IsStringy() bool {
	return k == KindString || k == KindOrdinal || k == KindNominal
}

// IsNumeric reports whether values of the kind coerce naturally to
// float64 (metric types in the paper's terminology).
func (k Kind) IsNumeric() bool {
	return k == KindFloat || k == KindInt || k == KindTime || k == KindBool
}

// Value is a tagged union holding one cell of a table.
type Value struct {
	Kind Kind
	Null bool
	F    float64
	I    int64
	S    string
	T    time.Time
	B    bool
}

// Float wraps a float64.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Int wraps an int64.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// String wraps a string.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Ordinal wraps a category label with ordinal semantics.
func Ordinal(s string) Value { return Value{Kind: KindOrdinal, S: s} }

// Nominal wraps a category label with nominal semantics.
func Nominal(s string) Value { return Value{Kind: KindNominal, S: s} }

// Time wraps an instant.
func Time(t time.Time) Value { return Value{Kind: KindTime, T: t} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Null returns the null value of the given kind.
func Null(k Kind) Value { return Value{Kind: k, Null: true} }

// AsFloat coerces the value to float64: floats directly, ints exactly,
// times as Unix seconds, bools as 0/1. ok is false for nulls and
// string-typed values.
func (v Value) AsFloat() (f float64, ok bool) {
	if v.Null {
		return math.NaN(), false
	}
	switch v.Kind {
	case KindFloat:
		return v.F, true
	case KindInt:
		return float64(v.I), true
	case KindTime:
		return float64(v.T.Unix()), true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	default:
		return math.NaN(), false
	}
}

// AsString coerces the value to a string: stringy kinds directly, others
// via formatting. ok is false for nulls.
func (v Value) AsString() (s string, ok bool) {
	if v.Null {
		return "", false
	}
	if v.Kind.IsStringy() {
		return v.S, true
	}
	return v.String(), true
}

// String renders the value for display and CSV export. Nulls render as
// the empty string; times as RFC 3339.
func (v Value) String() string {
	if v.Null {
		return ""
	}
	switch v.Kind {
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindTime:
		return v.T.Format(time.RFC3339)
	case KindBool:
		return strconv.FormatBool(v.B)
	default:
		return v.S
	}
}

// Equal reports deep equality of two values (same kind, both null or
// same payload).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind || v.Null != o.Null {
		return false
	}
	if v.Null {
		return true
	}
	switch v.Kind {
	case KindFloat:
		return v.F == o.F
	case KindInt:
		return v.I == o.I
	case KindTime:
		return v.T.Equal(o.T)
	case KindBool:
		return v.B == o.B
	default:
		return v.S == o.S
	}
}

// ParseValue parses s into a Value of kind k. The empty string parses as
// null. Times accept RFC 3339; bools accept strconv.ParseBool forms.
func ParseValue(k Kind, s string) (Value, error) {
	if s == "" {
		return Null(k), nil
	}
	switch k {
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("dataset: parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("dataset: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindTime:
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return Value{}, fmt.Errorf("dataset: parse time %q: %w", s, err)
		}
		return Time(t), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("dataset: parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	case KindOrdinal:
		return Ordinal(s), nil
	case KindNominal:
		return Nominal(s), nil
	default:
		return Str(s), nil
	}
}
