package dataset

import (
	"math"
	"path/filepath"
	"testing"
	"time"
)

// mixedCatalog builds a catalog exercising every column kind, nulls,
// non-finite floats, and a connection, with enough rows to span
// multiple segments.
func mixedCatalog(t *testing.T, rows int) *Catalog {
	t.Helper()
	tbl, err := NewTable("m", Schema{
		{Name: "f", Kind: KindFloat},
		{Name: "i", Kind: KindInt},
		{Name: "s", Kind: KindString},
		{Name: "ts", Kind: KindTime},
		{Name: "b", Kind: KindBool},
		{Name: "o", Kind: KindOrdinal, Categories: []string{"low", "mid", "high"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"low", "mid", "high"}
	base := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	for r := 0; r < rows; r++ {
		f := Float(float64(r) * 1.5)
		switch r % 97 {
		case 3:
			f = Null(KindFloat)
		case 5:
			f = Float(math.Inf(1))
		case 7:
			f = Float(math.NaN())
		}
		i := Int(int64(r * 3))
		if r%31 == 1 {
			i = Null(KindInt)
		}
		s := Str(string(rune('a'+r%26)) + "x")
		if r%13 == 2 {
			s = Null(KindString)
		}
		ts := Time(base.Add(time.Duration(r) * time.Minute))
		if r%17 == 4 {
			ts = Null(KindTime)
		}
		b := Bool(r%2 == 0)
		if r%23 == 6 {
			b = Null(KindBool)
		}
		o := Ordinal(cats[r%3])
		if err := tbl.AppendRow(f, i, s, ts, b, o); err != nil {
			t.Fatal(err)
		}
	}
	cat := NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	small, err := NewTable("n", Schema{{Name: "v", Kind: KindFloat}})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if err := small.AppendRow(Float(float64(r))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(small); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddConnection(Connection{
		Name: "near", Left: "m", Right: "n",
		LeftAttr: "f", RightAttr: "v", Metric: MetricNumeric, Mode: ModeWithin, Param: 2,
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestSegmentFileRoundTrip writes a mixed catalog and checks that both
// read backends reproduce every cell, the stats, and the connections
// exactly.
func TestSegmentFileRoundTrip(t *testing.T) {
	const rows = 2*SegmentSize + 137 // three segments, last partial
	mem := mixedCatalog(t, rows)
	path := filepath.Join(t.TempDir(), "cat.vseg")
	epoch, err := WriteCatalogFile(path, mem)
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("writer stamped zero epoch")
	}
	for _, backend := range []struct {
		name string
		opts OpenOptions
	}{
		{"auto", OpenOptions{}},
		{"readat", OpenOptions{ForceReadAt: true}},
		{"tiny-cache", OpenOptions{CacheBytes: 1}}, // degrades to re-decoding, never fails
	} {
		t.Run(backend.name, func(t *testing.T) {
			disk, err := OpenCatalogFile(path, backend.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer disk.Close()
			if disk.Epoch() != epoch {
				t.Fatalf("epoch %d, want %d", disk.Epoch(), epoch)
			}
			if got, want := disk.TableNames(), mem.TableNames(); len(got) != len(want) {
				t.Fatalf("tables %v, want %v", got, want)
			}
			for _, name := range mem.TableNames() {
				mt, _ := mem.Table(name)
				dt, err := disk.Table(name)
				if err != nil {
					t.Fatal(err)
				}
				if dt.NumRows() != mt.NumRows() {
					t.Fatalf("table %s: %d rows, want %d", name, dt.NumRows(), mt.NumRows())
				}
				for _, f := range mt.Schema() {
					// Cell-level identity, including null flags.
					for r := 0; r < mt.NumRows(); r += 619 {
						mv, _ := mt.Value(r, f.Name)
						dv, _ := dt.Value(r, f.Name)
						if !valueEqualNaN(mv, dv) {
							t.Fatalf("table %s row %d col %s: %v != %v", name, r, f.Name, dv, mv)
						}
					}
					// Bulk reader identity, bit for bit.
					mf, err := mt.FloatsOf(f.Name)
					if err != nil {
						t.Fatal(err)
					}
					df, err := dt.FloatsOf(f.Name)
					if err != nil {
						t.Fatal(err)
					}
					for r := range mf {
						if math.Float64bits(mf[r]) != math.Float64bits(df[r]) {
							t.Fatalf("table %s col %s row %d: bits %x != %x", name, f.Name, r, math.Float64bits(df[r]), math.Float64bits(mf[r]))
						}
					}
					// Unaligned range reads cross segment boundaries.
					dr, err := dt.FloatReaderOf(f.Name)
					if err != nil {
						t.Fatal(err)
					}
					if dr != nil && mt.NumRows() > SegmentSize+1500 {
						span := make([]float64, 3000)
						from := SegmentSize - 1500
						dr.ReadFloats(span, from)
						for k := range span {
							if math.Float64bits(span[k]) != math.Float64bits(mf[from+k]) {
								t.Fatalf("table %s col %s: unaligned read differs at %d", name, f.Name, from+k)
							}
						}
					}
					// Footer stats equal the in-memory scan.
					mmin, mmax, mok, _ := mt.MinMaxOf(f.Name)
					dmin, dmax, dok, _ := dt.MinMaxOf(f.Name)
					if mok != dok || (mok && (mmin != dmin || mmax != dmax)) {
						t.Fatalf("table %s col %s: minmax (%v,%v,%v) want (%v,%v,%v)", name, f.Name, dmin, dmax, dok, mmin, mmax, mok)
					}
				}
			}
			if got, want := disk.ConnectionNames(), mem.ConnectionNames(); len(got) != 1 || got[0] != want[0] {
				t.Fatalf("connections %v, want %v", got, want)
			}
		})
	}
}

// valueEqualNaN is Value.Equal extended to treat NaN floats as equal.
func valueEqualNaN(a, b Value) bool {
	if a.Kind == KindFloat && b.Kind == KindFloat && !a.Null && !b.Null {
		return math.Float64bits(a.F) == math.Float64bits(b.F) ||
			(math.IsNaN(a.F) && math.IsNaN(b.F))
	}
	return a.Equal(b)
}

// TestSegmentFileBoundedCache pins the decoded-segment cache to a
// budget far below the catalog size and checks occupancy stays under
// it while serving random reads.
func TestSegmentFileBoundedCache(t *testing.T) {
	mem := mixedCatalog(t, 4*SegmentSize)
	path := filepath.Join(t.TempDir(), "cat.vseg")
	if _, err := WriteCatalogFile(path, mem); err != nil {
		t.Fatal(err)
	}
	const budget = 128 << 10 // a few segments
	disk, err := OpenCatalogFile(path, OpenOptions{CacheBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	dt, err := disk.Table("m")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 1024)
	for pass := 0; pass < 3; pass++ {
		for _, col := range []string{"f", "i", "ts", "b"} {
			fr, err := dt.FloatReaderOf(col)
			if err != nil {
				t.Fatal(err)
			}
			for from := 0; from+len(buf) <= dt.NumRows(); from += 3777 {
				fr.ReadFloats(buf, from)
			}
			segs, bytes := disk.CacheStats()
			if bytes > budget && segs > 1 {
				t.Fatalf("cache holds %d bytes across %d segments, budget %d", bytes, segs, budget)
			}
		}
	}
}

// TestFileTableReadOnly checks that appends to a file-backed table are
// rejected cleanly.
func TestFileTableReadOnly(t *testing.T) {
	mem := mixedCatalog(t, 64)
	path := filepath.Join(t.TempDir(), "cat.vseg")
	if _, err := WriteCatalogFile(path, mem); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenCatalogFile(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	dt, err := disk.Table("n")
	if err != nil {
		t.Fatal(err)
	}
	if err := dt.AppendRow(Float(1)); err == nil {
		t.Fatal("append to file-backed table succeeded")
	}
}

// TestSegmentEpochTracksContent checks that regenerating a file with
// different data (same shape) changes the epoch, and that identical
// content reproduces it.
func TestSegmentEpochTracksContent(t *testing.T) {
	dir := t.TempDir()
	build := func(v float64) *Catalog {
		tbl, err := NewTable("t", Schema{{Name: "x", Kind: KindFloat}})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 100; r++ {
			if err := tbl.AppendRow(Float(v + float64(r))); err != nil {
				t.Fatal(err)
			}
		}
		cat := NewCatalog()
		if err := cat.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
		return cat
	}
	e1, err := WriteCatalogFile(filepath.Join(dir, "a.vseg"), build(0))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := WriteCatalogFile(filepath.Join(dir, "b.vseg"), build(1000))
	if err != nil {
		t.Fatal(err)
	}
	e3, err := WriteCatalogFile(filepath.Join(dir, "c.vseg"), build(0))
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Fatal("different contents produced the same epoch")
	}
	if e1 != e3 {
		t.Fatal("identical contents produced different epochs")
	}
}
