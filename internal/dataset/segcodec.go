package dataset

import (
	"encoding/binary"
	"fmt"
)

// Segment payload encodings (segBlob.Enc). Format v3 writers compress
// the 8-byte-word payloads of int, time and float segments when the
// encoded form is strictly smaller than the raw one; the null bitmap at
// the front of the blob always stays raw. Decoding expands back to the
// exact raw word payload before the per-kind decode switch runs, so the
// decoded values are bit-identical to an uncompressed blob's.
const (
	// encRaw marks an uncompressed payload (the only encoding v1/v2
	// files carry; their footers have no enc field and decode as 0).
	encRaw = 0
	// encDelta is delta + zigzag + uvarint over int64 words — int and
	// time segments, whose sorted or clustered values yield tiny deltas.
	encDelta = 1
	// encXor is xor-with-previous + uvarint over the raw float64 bits —
	// slowly varying float series zero the high bits of the xor, and
	// uvarint drops exactly those leading zero bytes.
	encXor = 2
)

// compressWords encodes an 8-byte-word payload (len(payload) must be a
// multiple of 8) with the given encoding. The caller compares sizes and
// keeps the raw payload when compression does not pay.
func compressWords(enc int, payload []byte) []byte {
	rows := len(payload) / 8
	out := make([]byte, 0, len(payload))
	var buf [binary.MaxVarintLen64]byte
	var prevI int64
	var prevU uint64
	for i := 0; i < rows; i++ {
		w := binary.LittleEndian.Uint64(payload[i*8:])
		var u uint64
		switch enc {
		case encDelta:
			v := int64(w)
			d := v - prevI // wrapping: the decoder adds it back modulo 2^64
			prevI = v
			u = uint64(d<<1) ^ uint64(d>>63)
		case encXor:
			u = w ^ prevU
			prevU = w
		}
		out = append(out, buf[:binary.PutUvarint(buf[:], u)]...)
	}
	return out
}

// expandWords decodes a compressed payload back into the raw
// 8-byte-word form (rows*8 bytes). Any way the bytes can disagree with
// compressWords' output — a truncated varint, too few words, trailing
// garbage — returns an error the caller wraps as ErrCorruptSegment.
func expandWords(enc int, comp []byte, rows int) ([]byte, error) {
	out := make([]byte, rows*8)
	var prevI int64
	var prevU uint64
	pos := 0
	for i := 0; i < rows; i++ {
		u, n := binary.Uvarint(comp[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("compressed payload truncated at word %d", i)
		}
		pos += n
		var w uint64
		switch enc {
		case encDelta:
			d := int64(u>>1) ^ -int64(u&1)
			v := prevI + d
			prevI = v
			w = uint64(v)
		case encXor:
			w = prevU ^ u
			prevU = w
		default:
			return nil, fmt.Errorf("unknown segment encoding %d", enc)
		}
		binary.LittleEndian.PutUint64(out[i*8:], w)
	}
	if pos != len(comp) {
		return nil, fmt.Errorf("compressed payload has %d trailing bytes", len(comp)-pos)
	}
	return out, nil
}
