package dataset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/distance"
)

// ConnMetric selects how a connection measures the difference between
// its left and right join attributes.
type ConnMetric int

const (
	// MetricNumeric compares the attributes as numbers.
	MetricNumeric ConnMetric = iota
	// MetricTime compares time attributes in seconds.
	MetricTime
	// MetricGeo compares (lat, lon) attribute pairs in meters.
	MetricGeo
	// MetricString compares string attributes with a registered string
	// distance (connection Param selects nothing; StringFunc applies).
	MetricString
)

// ConnMode selects how the raw attribute difference Δ turns into a join
// distance.
type ConnMode int

const (
	// ModeEqual targets Δ = 0: distance = |Δ| (the `at-same-location`
	// and `at-same-time-as` connections of figure 3).
	ModeEqual ConnMode = iota
	// ModeTarget targets Δ = Param: distance = ||Δ| − Param| (the
	// `with-time-diff(min)` connection: the example query wants a time
	// difference of exactly two hours).
	ModeTarget
	// ModeWithin targets Δ ≤ Param: distance = max(0, |Δ| − Param)
	// (the `with-distance(m)` connection).
	ModeWithin
)

// Connection is a named, parameterizable join defined in the catalog by
// the database designer prior to use (section 4.1). Its Distance method
// scores how closely a (left row, right row) pair fulfills the join —
// the heart of the approximate joins of section 4.4.
type Connection struct {
	Name  string
	Left  string // left table name
	Right string // right table name
	// Attribute names; LeftAttr2/RightAttr2 are only used by MetricGeo
	// (longitude companions to the latitude attributes).
	LeftAttr   string
	RightAttr  string
	LeftAttr2  string
	RightAttr2 string
	Metric     ConnMetric
	Mode       ConnMode
	// Param is interpreted per Mode. For MetricTime it is in minutes,
	// matching the paper's `with-time-diff(min)`; for MetricGeo meters.
	Param float64
	// StringDist names a registered string distance for MetricString.
	StringDist string
}

// Validate checks structural completeness of the connection.
func (c Connection) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("dataset: connection needs a name")
	}
	if c.Left == "" || c.Right == "" {
		return fmt.Errorf("dataset: connection %s needs two tables", c.Name)
	}
	if c.LeftAttr == "" || c.RightAttr == "" {
		return fmt.Errorf("dataset: connection %s needs join attributes", c.Name)
	}
	if c.Metric == MetricGeo && (c.LeftAttr2 == "" || c.RightAttr2 == "") {
		return fmt.Errorf("dataset: geo connection %s needs longitude attributes", c.Name)
	}
	if c.Param < 0 {
		return fmt.Errorf("dataset: connection %s has negative parameter", c.Name)
	}
	return nil
}

// modeApply turns a raw absolute difference into the connection's
// distance according to Mode and Param.
func (c Connection) modeApply(absDelta float64) float64 {
	switch c.Mode {
	case ModeTarget:
		return math.Abs(absDelta - c.paramBase())
	case ModeWithin:
		d := absDelta - c.paramBase()
		if d < 0 {
			return 0
		}
		return d
	default:
		return absDelta
	}
}

// paramBase converts Param to base units (seconds for time, meters for
// geo, raw otherwise).
func (c Connection) paramBase() float64 {
	if c.Metric == MetricTime {
		return c.Param * 60 // minutes → seconds
	}
	return c.Param
}

// Distance scores rows li of lt against ri of rt. Null join attributes
// yield NaN (uncolorable). reg resolves string distances and may be nil
// for non-string metrics.
func (c Connection) Distance(lt, rt *Table, li, ri int, reg *distance.Registry) (float64, error) {
	switch c.Metric {
	case MetricGeo:
		lat1, err := tableFloat(lt, li, c.LeftAttr)
		if err != nil {
			return 0, err
		}
		lon1, err := tableFloat(lt, li, c.LeftAttr2)
		if err != nil {
			return 0, err
		}
		lat2, err := tableFloat(rt, ri, c.RightAttr)
		if err != nil {
			return 0, err
		}
		lon2, err := tableFloat(rt, ri, c.RightAttr2)
		if err != nil {
			return 0, err
		}
		if anyNaN(lat1, lon1, lat2, lon2) {
			return math.NaN(), nil
		}
		return c.modeApply(distance.Haversine(lat1, lon1, lat2, lon2)), nil
	case MetricString:
		lv, err := lt.Value(li, c.LeftAttr)
		if err != nil {
			return 0, err
		}
		rv, err := rt.Value(ri, c.RightAttr)
		if err != nil {
			return 0, err
		}
		ls, lok := lv.AsString()
		rs, rok := rv.AsString()
		if !lok || !rok {
			return math.NaN(), nil
		}
		name := c.StringDist
		if name == "" {
			name = "edit"
		}
		if reg == nil {
			reg = distance.NewRegistry()
		}
		f, err := reg.String(name)
		if err != nil {
			return 0, err
		}
		return c.modeApply(f(ls, rs)), nil
	default: // MetricNumeric, MetricTime
		a, err := tableFloat(lt, li, c.LeftAttr)
		if err != nil {
			return 0, err
		}
		b, err := tableFloat(rt, ri, c.RightAttr)
		if err != nil {
			return 0, err
		}
		if anyNaN(a, b) {
			return math.NaN(), nil
		}
		return c.modeApply(math.Abs(a - b)), nil
	}
}

func tableFloat(t *Table, row int, attr string) (float64, error) {
	v, err := t.Value(row, attr)
	if err != nil {
		return 0, err
	}
	f, ok := v.AsFloat()
	if !ok {
		return math.NaN(), nil
	}
	return f, nil
}

func anyNaN(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// Catalog holds the database: named tables and named connections. It is
// what the user selects from when starting the VisDB system
// (section 4.1).
type Catalog struct {
	tables      map[string]*Table
	connections map[string]Connection
	// epoch fingerprints the catalog contents for structural cache
	// keys: two catalogs with the same table names and row counts but
	// different data (a regenerated segment file, say) must not share
	// cached predicate vectors. File-backed catalogs carry the
	// content hash their writer stamped into the footer; in-memory
	// catalogs default to 0 (their identity is the process lifetime).
	epoch uint64
	// closer releases the backing resources of a file-backed catalog
	// (mmap, file handle); nil for in-memory catalogs.
	closer func() error
	// corrupt reports the sticky corruption state of a file-backed
	// catalog's segment source; nil for in-memory catalogs.
	corrupt func() error
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:      make(map[string]*Table),
		connections: make(map[string]Connection),
	}
}

// Epoch returns the catalog's content fingerprint (0 for in-memory
// catalogs unless set).
func (c *Catalog) Epoch() uint64 { return c.epoch }

// SetEpoch overrides the catalog's content fingerprint.
func (c *Catalog) SetEpoch(e uint64) { c.epoch = e }

// Corrupt reports the sticky corruption error of a file-backed
// catalog: non-nil once any segment read failed its checksum, decode
// validation, or the underlying I/O (the error wraps
// ErrCorruptSegment). A failed segment reads as zeroes, so any result
// computed since the error was set is untrustworthy — callers must
// check after runs and quarantine the catalog on non-nil. Always nil
// for in-memory catalogs. Safe for concurrent use.
func (c *Catalog) Corrupt() error {
	if c.corrupt == nil {
		return nil
	}
	return c.corrupt()
}

// Close releases the backing resources of a file-backed catalog. It is
// a no-op for in-memory catalogs. The catalog must not be used after
// Close.
func (c *Catalog) Close() error {
	if c.closer == nil {
		return nil
	}
	f := c.closer
	c.closer = nil
	return f()
}

// AddTable registers a table; the name must be unused.
func (c *Catalog) AddTable(t *Table) error {
	if _, dup := c.tables[t.Name()]; dup {
		return fmt.Errorf("dataset: table %q already in catalog", t.Name())
	}
	c.tables[t.Name()] = t
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("dataset: no table %q (have %v)", name, c.TableNames())
	}
	return t, nil
}

// TableNames lists registered table names, sorted.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddConnection registers a connection after validating it and checking
// that its tables and attributes exist.
func (c *Catalog) AddConnection(conn Connection) error {
	if err := conn.Validate(); err != nil {
		return err
	}
	if _, dup := c.connections[conn.Name]; dup {
		return fmt.Errorf("dataset: connection %q already in catalog", conn.Name)
	}
	lt, err := c.Table(conn.Left)
	if err != nil {
		return fmt.Errorf("dataset: connection %q: %w", conn.Name, err)
	}
	rt, err := c.Table(conn.Right)
	if err != nil {
		return fmt.Errorf("dataset: connection %q: %w", conn.Name, err)
	}
	for _, pair := range []struct {
		t    *Table
		attr string
	}{
		{lt, conn.LeftAttr}, {rt, conn.RightAttr},
	} {
		if pair.t.Schema().Index(pair.attr) < 0 {
			return fmt.Errorf("dataset: connection %q: table %s has no attribute %q", conn.Name, pair.t.Name(), pair.attr)
		}
	}
	if conn.Metric == MetricGeo {
		if lt.Schema().Index(conn.LeftAttr2) < 0 || rt.Schema().Index(conn.RightAttr2) < 0 {
			return fmt.Errorf("dataset: geo connection %q: missing longitude attribute", conn.Name)
		}
	}
	c.connections[conn.Name] = conn
	return nil
}

// Connection looks up a connection by name.
func (c *Catalog) Connection(name string) (Connection, error) {
	conn, ok := c.connections[name]
	if !ok {
		return Connection{}, fmt.Errorf("dataset: no connection %q (have %v)", name, c.ConnectionNames())
	}
	return conn, nil
}

// ConnectionNames lists registered connection names, sorted.
func (c *Catalog) ConnectionNames() []string {
	names := make([]string, 0, len(c.connections))
	for n := range c.connections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ConnectionsInvolving lists connections touching any of the given
// tables — the Connections window of the query-specification interface
// shows "all 'connections' involving at least one of the selected
// tables" (section 4.1).
func (c *Catalog) ConnectionsInvolving(tables ...string) []Connection {
	want := make(map[string]bool, len(tables))
	for _, t := range tables {
		want[t] = true
	}
	var out []Connection
	for _, name := range c.ConnectionNames() {
		conn := c.connections[name]
		if want[conn.Left] || want[conn.Right] {
			out = append(out, conn)
		}
	}
	return out
}
