//go:build linux

package dataset

import (
	"fmt"
	"os"
	"syscall"
)

// mmapReader is the linux blob backend: the whole catalog file is
// mapped read-only and blob reads are zero-copy subslices of the
// mapping (the decoder copies values out, so the borrowed bytes never
// outlive a call).
type mmapReader struct {
	f    *os.File
	data []byte
}

// openMmapReader maps f read-only. ok is false when the mapping is
// unavailable (empty file, exotic filesystem) — the caller falls back
// to the pread backend.
func openMmapReader(f *os.File, size int64) (blobReader, bool) {
	if size <= 0 || size != int64(int(size)) {
		return nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return &mmapReader{f: f, data: data}, true
}

func (r *mmapReader) slice(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(r.data)) {
		return nil, fmt.Errorf("dataset: mmap read (%d,%d) out of bounds (%d)", off, n, len(r.data))
	}
	return r.data[off : off+n], nil
}

func (r *mmapReader) close() error {
	err := syscall.Munmap(r.data)
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}
