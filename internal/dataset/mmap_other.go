//go:build !linux

package dataset

import "os"

// openMmapReader reports no mmap support off linux; OpenCatalogFile
// falls back to the portable pread backend.
func openMmapReader(*os.File, int64) (blobReader, bool) { return nil, false }
