package dataset

import (
	"fmt"
	"math"
)

// Field describes one attribute of a schema: its name, kind and, for
// ordinal/nominal kinds, the category labels in rank order.
type Field struct {
	Name       string
	Kind       Kind
	Categories []string
}

// Schema is an ordered list of fields.
type Schema []Field

// Validate checks that field names are non-empty and unique and that
// categorical fields declare their categories.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("dataset: schema has no fields")
	}
	seen := make(map[string]bool, len(s))
	for i, f := range s {
		if f.Name == "" {
			return fmt.Errorf("dataset: field %d has empty name", i)
		}
		if seen[f.Name] {
			return fmt.Errorf("dataset: duplicate field name %q", f.Name)
		}
		seen[f.Name] = true
		if (f.Kind == KindOrdinal || f.Kind == KindNominal) && len(f.Categories) == 0 {
			return fmt.Errorf("dataset: categorical field %q declares no categories", f.Name)
		}
	}
	return nil
}

// Index returns the position of the named field, or -1.
func (s Schema) Index(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Table is an in-memory, column-oriented relation.
type Table struct {
	name   string
	schema Schema
	cols   []Column
}

// NewTable creates an empty table with the given name and schema.
func NewTable(name string, schema Schema) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("dataset: table needs a name")
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{name: name, schema: append(Schema(nil), schema...)}
	t.cols = make([]Column, len(schema))
	for i, f := range schema {
		t.cols[i] = NewColumn(f.Kind)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema (shared; callers must not mutate).
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// AppendRow appends one row; vals must match the schema in count and
// kinds. On a kind mismatch the row is not partially applied.
// File-backed tables are immutable and reject appends.
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("dataset: table %s: row has %d values, want %d", t.name, len(vals), len(t.cols))
	}
	if len(t.cols) > 0 {
		if _, ro := t.cols[0].(readOnly); ro {
			return fmt.Errorf("dataset: table %s is file-backed and read-only", t.name)
		}
	}
	for i, v := range vals {
		if v.Null {
			continue
		}
		k := t.schema[i].Kind
		ok := v.Kind == k ||
			(k == KindFloat && v.Kind == KindInt) ||
			(k.IsStringy() && v.Kind.IsStringy())
		if !ok {
			return fmt.Errorf("dataset: table %s: column %q holds %v, got %v", t.name, t.schema[i].Name, k, v.Kind)
		}
	}
	for i, v := range vals {
		if v.Null {
			v = Null(t.schema[i].Kind)
		} else if t.schema[i].Kind.IsStringy() {
			v.Kind = t.schema[i].Kind
		}
		if err := t.cols[i].Append(v); err != nil {
			// Unreachable after the pre-validation above, but keep the
			// invariant that columns never go ragged.
			panic(fmt.Sprintf("dataset: ragged append after validation: %v", err))
		}
	}
	return nil
}

// Column returns the column with the given field name.
func (t *Table) Column(name string) (Column, error) {
	i := t.schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("dataset: table %s has no column %q", t.name, name)
	}
	return t.cols[i], nil
}

// ColumnAt returns column i.
func (t *Table) ColumnAt(i int) Column { return t.cols[i] }

// Value returns the cell at (row, field name).
func (t *Table) Value(row int, name string) (Value, error) {
	c, err := t.Column(name)
	if err != nil {
		return Value{}, err
	}
	if row < 0 || row >= c.Len() {
		return Value{}, fmt.Errorf("dataset: row %d out of range [0,%d)", row, c.Len())
	}
	return c.Value(row), nil
}

// Row materializes row i as a value slice in schema order.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for j, c := range t.cols {
		out[j] = c.Value(i)
	}
	return out
}

// FloatsOf streams the named column as float64s (NaN for nulls and
// non-coercible kinds). It is the bulk materializing accessor; callers
// that can consume a row range at a time should use FloatReaderOf
// instead, which keeps file-backed columns at O(segment) resident.
func (t *Table) FloatsOf(name string) ([]float64, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, c.Len())
	if fr, ok := c.(FloatReader); ok {
		fr.ReadFloats(out, 0)
		return out, nil
	}
	for i := range out {
		f, ok := c.Value(i).AsFloat()
		if !ok {
			f = math.NaN()
		}
		out[i] = f
	}
	return out, nil
}

// FloatReaderOf returns the named column's bulk float reader, or nil
// for kinds without a numeric coercion (strings). The returned reader
// coerces exactly like FloatsOf; reading range by range is what lets
// the predicate pipeline evaluate a file-backed catalog without ever
// materializing an n-sized column copy.
func (t *Table) FloatReaderOf(name string) (FloatReader, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	fr, _ := c.(FloatReader)
	return fr, nil
}

// MinMaxOf returns the minimum and maximum non-null coerced value of a
// numeric column; ok is false when the column has no non-null values.
// The query-modification sliders display these bounds "to give the user
// a feeling for useful query values" (section 4.3). File-backed columns
// answer from their footer stats without touching data; in-memory
// columns stream with O(segment) scratch.
func (t *Table) MinMaxOf(name string) (min, max float64, ok bool, err error) {
	c, err := t.Column(name)
	if err != nil {
		return 0, 0, false, err
	}
	if mm, isMM := c.(MinMaxer); isMM {
		min, max, ok = mm.MinMax()
		return min, max, ok, nil
	}
	min, max = math.Inf(1), math.Inf(-1)
	scan := func(fs []float64) {
		for _, f := range fs {
			if math.IsNaN(f) {
				continue
			}
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
			ok = true
		}
	}
	if fr, isFR := c.(FloatReader); isFR {
		var buf [SegmentSize]float64
		for from, n := 0, c.Len(); from < n; from += SegmentSize {
			m := n - from
			if m > SegmentSize {
				m = SegmentSize
			}
			fr.ReadFloats(buf[:m], from)
			scan(buf[:m])
		}
	} else {
		for i, n := 0, c.Len(); i < n; i++ {
			f, fok := c.Value(i).AsFloat()
			if !fok {
				continue
			}
			scan([]float64{f})
		}
	}
	if !ok {
		return 0, 0, false, nil
	}
	return min, max, true, nil
}
