package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func weatherSchema() Schema {
	return Schema{
		{Name: "DateTime", Kind: KindTime},
		{Name: "Temperature", Kind: KindFloat},
		{Name: "Station", Kind: KindString},
		{Name: "Count", Kind: KindInt},
		{Name: "Windy", Kind: KindBool},
		{Name: "Level", Kind: KindOrdinal, Categories: []string{"low", "mid", "high"}},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := (Schema{}).Validate(); err == nil {
		t.Error("empty schema should fail")
	}
	if err := (Schema{{Name: "", Kind: KindFloat}}).Validate(); err == nil {
		t.Error("empty name should fail")
	}
	if err := (Schema{{Name: "a", Kind: KindFloat}, {Name: "a", Kind: KindInt}}).Validate(); err == nil {
		t.Error("duplicate name should fail")
	}
	if err := (Schema{{Name: "a", Kind: KindOrdinal}}).Validate(); err == nil {
		t.Error("ordinal without categories should fail")
	}
	if err := weatherSchema().Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindFloat, KindInt, KindString, KindTime, KindBool, KindOrdinal, KindNominal}
	for _, k := range kinds {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind formatting")
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tbl, err := NewTable("Weather", weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(1994, 2, 14, 8, 0, 0, 0, time.UTC)
	err = tbl.AppendRow(Time(ts), Float(15.5), Str("Munich"), Int(3), Bool(true), Ordinal("mid"))
	if err != nil {
		t.Fatal(err)
	}
	err = tbl.AppendRow(Null(KindTime), Null(KindFloat), Null(KindString), Null(KindInt), Null(KindBool), Null(KindOrdinal))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 || tbl.NumCols() != 6 {
		t.Fatalf("dims: %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	v, err := tbl.Value(0, "Temperature")
	if err != nil || v.F != 15.5 {
		t.Fatalf("Value: %v %v", v, err)
	}
	v, err = tbl.Value(1, "Temperature")
	if err != nil || !v.Null {
		t.Fatalf("null Value: %v %v", v, err)
	}
	if _, err := tbl.Value(0, "Missing"); err == nil {
		t.Error("missing column should error")
	}
	if _, err := tbl.Value(5, "Temperature"); err == nil {
		t.Error("out-of-range row should error")
	}
	row := tbl.Row(0)
	if len(row) != 6 || !row[0].Equal(Time(ts)) || row[5].S != "mid" {
		t.Fatalf("Row: %+v", row)
	}
}

func TestTableAppendValidation(t *testing.T) {
	tbl, _ := NewTable("T", Schema{{Name: "x", Kind: KindFloat}, {Name: "s", Kind: KindString}})
	if err := tbl.AppendRow(Float(1)); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := tbl.AppendRow(Str("no"), Str("s")); err == nil {
		t.Error("kind mismatch should fail")
	}
	if tbl.NumRows() != 0 {
		t.Error("failed append must not leave partial rows")
	}
	// Int widens into float columns.
	if err := tbl.AppendRow(Int(7), Str("ok")); err != nil {
		t.Errorf("int into float column: %v", err)
	}
	v, _ := tbl.Value(0, "x")
	if v.F != 7 {
		t.Errorf("widened value: %v", v)
	}
}

func TestFloatsOfAndMinMax(t *testing.T) {
	tbl, _ := NewTable("T", Schema{{Name: "x", Kind: KindFloat}})
	for _, f := range []float64{3, 1, 4} {
		if err := tbl.AppendRow(Float(f)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.AppendRow(Null(KindFloat)); err != nil {
		t.Fatal(err)
	}
	fs, err := tbl.FloatsOf("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 4 || fs[0] != 3 || !math.IsNaN(fs[3]) {
		t.Fatalf("FloatsOf: %v", fs)
	}
	fs[0] = 99 // must not alias internal storage
	fs2, _ := tbl.FloatsOf("x")
	if fs2[0] != 3 {
		t.Error("FloatsOf aliases internal storage")
	}
	min, max, ok, err := tbl.MinMaxOf("x")
	if err != nil || !ok || min != 1 || max != 4 {
		t.Fatalf("MinMaxOf: %v %v %v %v", min, max, ok, err)
	}
	empty, _ := NewTable("E", Schema{{Name: "x", Kind: KindFloat}})
	if _, _, ok, _ := empty.MinMaxOf("x"); ok {
		t.Error("empty column should report !ok")
	}
	if _, err := tbl.FloatsOf("nope"); err == nil {
		t.Error("missing column should error")
	}
}

func TestValueCoercions(t *testing.T) {
	ts := time.Unix(1000, 0).UTC()
	cases := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{Float(2.5), 2.5, true},
		{Int(7), 7, true},
		{Time(ts), 1000, true},
		{Bool(true), 1, true},
		{Bool(false), 0, true},
		{Str("x"), math.NaN(), false},
		{Null(KindFloat), math.NaN(), false},
	}
	for _, c := range cases {
		got, ok := c.v.AsFloat()
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("AsFloat(%v) = %v,%v", c.v, got, ok)
		}
	}
	if s, ok := Str("hi").AsString(); !ok || s != "hi" {
		t.Error("AsString stringy")
	}
	if s, ok := Int(5).AsString(); !ok || s != "5" {
		t.Error("AsString numeric")
	}
	if _, ok := Null(KindString).AsString(); ok {
		t.Error("AsString null")
	}
}

func TestValueStringAndEqual(t *testing.T) {
	ts := time.Date(1994, 2, 14, 8, 0, 0, 0, time.UTC)
	if Time(ts).String() != "1994-02-14T08:00:00Z" {
		t.Errorf("time format: %s", Time(ts).String())
	}
	if Null(KindFloat).String() != "" {
		t.Error("null renders empty")
	}
	if Float(1.5).String() != "1.5" || Int(-2).String() != "-2" || Bool(true).String() != "true" {
		t.Error("scalar formats")
	}
	if !Float(1).Equal(Float(1)) || Float(1).Equal(Float(2)) {
		t.Error("float equal")
	}
	if Float(1).Equal(Int(1)) {
		t.Error("kind-mismatched values are unequal")
	}
	if !Null(KindInt).Equal(Null(KindInt)) || Null(KindInt).Equal(Int(0)) {
		t.Error("null equality")
	}
	if !Time(ts).Equal(Time(ts.In(time.FixedZone("X", 3600)))) {
		t.Error("times compare by instant")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(KindFloat, "2.5")
	if err != nil || v.F != 2.5 {
		t.Errorf("float: %v %v", v, err)
	}
	v, err = ParseValue(KindInt, "-3")
	if err != nil || v.I != -3 {
		t.Errorf("int: %v %v", v, err)
	}
	v, err = ParseValue(KindTime, "1994-02-14T08:00:00Z")
	if err != nil || v.T.Hour() != 8 {
		t.Errorf("time: %v %v", v, err)
	}
	v, err = ParseValue(KindBool, "true")
	if err != nil || !v.B {
		t.Errorf("bool: %v %v", v, err)
	}
	v, err = ParseValue(KindNominal, "red")
	if err != nil || v.S != "red" || v.Kind != KindNominal {
		t.Errorf("nominal: %v %v", v, err)
	}
	v, err = ParseValue(KindFloat, "")
	if err != nil || !v.Null {
		t.Errorf("empty → null: %v %v", v, err)
	}
	if _, err := ParseValue(KindFloat, "abc"); err == nil {
		t.Error("bad float should error")
	}
	if _, err := ParseValue(KindInt, "1.5"); err == nil {
		t.Error("bad int should error")
	}
	if _, err := ParseValue(KindTime, "yesterday"); err == nil {
		t.Error("bad time should error")
	}
	if _, err := ParseValue(KindBool, "maybe"); err == nil {
		t.Error("bad bool should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl, _ := NewTable("Weather", weatherSchema())
	ts := time.Date(1994, 2, 14, 8, 0, 0, 0, time.UTC)
	if err := tbl.AppendRow(Time(ts), Float(15.5), Str("Munich"), Int(3), Bool(true), Ordinal("mid")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(Null(KindTime), Null(KindFloat), Null(KindString), Null(KindInt), Null(KindBool), Null(KindOrdinal)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "Weather", weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 {
		t.Fatalf("rows: %d", back.NumRows())
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < tbl.NumCols(); c++ {
			a := tbl.ColumnAt(c).Value(r)
			b := back.ColumnAt(c).Value(r)
			if !a.Equal(b) {
				t.Errorf("cell (%d,%d): %v vs %v", r, c, a, b)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	schema := Schema{{Name: "x", Kind: KindFloat}}
	if _, err := ReadCSV(strings.NewReader("y\n1\n"), "T", schema); err == nil {
		t.Error("header mismatch should fail")
	}
	if _, err := ReadCSV(strings.NewReader("x,y\n1,2\n"), "T", schema); err == nil {
		t.Error("column count mismatch should fail")
	}
	if _, err := ReadCSV(strings.NewReader("x\nabc\n"), "T", schema); err == nil {
		t.Error("bad cell should fail")
	}
	if _, err := ReadCSV(strings.NewReader(""), "T", schema); err == nil {
		t.Error("missing header should fail")
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	w, _ := NewTable("Weather", Schema{
		{Name: "DateTime", Kind: KindTime},
		{Name: "Lat", Kind: KindFloat},
		{Name: "Lon", Kind: KindFloat},
	})
	a, _ := NewTable("AirPollution", Schema{
		{Name: "DateTime", Kind: KindTime},
		{Name: "Lat", Kind: KindFloat},
		{Name: "Lon", Kind: KindFloat},
		{Name: "Ozone", Kind: KindFloat},
	})
	if err := cat.AddTable(w); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(a); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(w); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := cat.Table("Nope"); err == nil {
		t.Error("missing table should fail")
	}
	conn := Connection{
		Name: "with-time-diff", Left: "Weather", Right: "AirPollution",
		LeftAttr: "DateTime", RightAttr: "DateTime",
		Metric: MetricTime, Mode: ModeTarget, Param: 120,
	}
	if err := cat.AddConnection(conn); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddConnection(conn); err == nil {
		t.Error("duplicate connection should fail")
	}
	bad := conn
	bad.Name = "bad"
	bad.Left = "Nope"
	if err := cat.AddConnection(bad); err == nil {
		t.Error("unknown table should fail")
	}
	bad = conn
	bad.Name = "bad2"
	bad.LeftAttr = "Nope"
	if err := cat.AddConnection(bad); err == nil {
		t.Error("unknown attribute should fail")
	}
	got, err := cat.Connection("with-time-diff")
	if err != nil || got.Param != 120 {
		t.Fatalf("Connection: %+v %v", got, err)
	}
	if _, err := cat.Connection("nope"); err == nil {
		t.Error("missing connection should fail")
	}
	inv := cat.ConnectionsInvolving("Weather")
	if len(inv) != 1 || inv[0].Name != "with-time-diff" {
		t.Fatalf("ConnectionsInvolving: %+v", inv)
	}
	if len(cat.ConnectionsInvolving("Other")) != 0 {
		t.Error("unrelated table should list nothing")
	}
	names := cat.TableNames()
	if len(names) != 2 || names[0] != "AirPollution" {
		t.Errorf("TableNames: %v", names)
	}
}

func TestConnectionValidate(t *testing.T) {
	good := Connection{Name: "c", Left: "A", Right: "B", LeftAttr: "x", RightAttr: "y"}
	if err := good.Validate(); err != nil {
		t.Errorf("good rejected: %v", err)
	}
	cases := []Connection{
		{},
		{Name: "c"},
		{Name: "c", Left: "A", Right: "B"},
		{Name: "c", Left: "A", Right: "B", LeftAttr: "x", RightAttr: "y", Param: -1},
		{Name: "c", Left: "A", Right: "B", LeftAttr: "x", RightAttr: "y", Metric: MetricGeo},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
}

func TestConnectionDistances(t *testing.T) {
	w, _ := NewTable("W", Schema{
		{Name: "DateTime", Kind: KindTime},
		{Name: "Lat", Kind: KindFloat},
		{Name: "Lon", Kind: KindFloat},
		{Name: "Station", Kind: KindString},
	})
	p, _ := NewTable("P", Schema{
		{Name: "DateTime", Kind: KindTime},
		{Name: "Lat", Kind: KindFloat},
		{Name: "Lon", Kind: KindFloat},
		{Name: "Station", Kind: KindString},
	})
	t0 := time.Date(1994, 2, 14, 8, 0, 0, 0, time.UTC)
	if err := w.AppendRow(Time(t0), Float(48.0), Float(11.0), Str("Munich-North")); err != nil {
		t.Fatal(err)
	}
	if err := p.AppendRow(Time(t0.Add(2*time.Hour)), Float(48.0), Float(11.0), Str("Munich-Nord")); err != nil {
		t.Fatal(err)
	}
	if err := p.AppendRow(Time(t0.Add(3*time.Hour)), Null(KindFloat), Float(11.0), Str("Augsburg")); err != nil {
		t.Fatal(err)
	}

	timeConn := Connection{
		Name: "tdiff", Left: "W", Right: "P", LeftAttr: "DateTime", RightAttr: "DateTime",
		Metric: MetricTime, Mode: ModeTarget, Param: 120,
	}
	d, err := timeConn.Distance(w, p, 0, 0, nil)
	if err != nil || d != 0 {
		t.Fatalf("exact 2h lag should score 0: %v %v", d, err)
	}
	d, _ = timeConn.Distance(w, p, 0, 1, nil)
	if d != 3600 {
		t.Fatalf("3h lag vs 2h target = %v, want 3600", d)
	}

	geoConn := Connection{
		Name: "loc", Left: "W", Right: "P",
		LeftAttr: "Lat", LeftAttr2: "Lon", RightAttr: "Lat", RightAttr2: "Lon",
		Metric: MetricGeo, Mode: ModeEqual,
	}
	d, err = geoConn.Distance(w, p, 0, 0, nil)
	if err != nil || d != 0 {
		t.Fatalf("same location: %v %v", d, err)
	}
	d, _ = geoConn.Distance(w, p, 0, 1, nil)
	if !math.IsNaN(d) {
		t.Fatalf("null latitude should be NaN, got %v", d)
	}

	strConn := Connection{
		Name: "st", Left: "W", Right: "P", LeftAttr: "Station", RightAttr: "Station",
		Metric: MetricString, StringDist: "edit",
	}
	d, err = strConn.Distance(w, p, 0, 0, nil)
	if err != nil || d != 2 { // North → Nord: substitute t→d is 2 edits? "North" vs "Nord": o-r-t-h vs o-r-d → edit 2
		t.Fatalf("string distance = %v %v", d, err)
	}

	within := Connection{
		Name: "within", Left: "W", Right: "P", LeftAttr: "Lat", RightAttr: "Lat",
		Metric: MetricNumeric, Mode: ModeWithin, Param: 5,
	}
	d, _ = within.Distance(w, p, 0, 0, nil)
	if d != 0 {
		t.Fatalf("within tolerance should be 0, got %v", d)
	}
}
