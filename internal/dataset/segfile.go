package dataset

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"time"
)

// This file implements the on-disk segment catalog format and its two
// read backends. The layout is write-once, footer-based, so the writer
// streams segments with O(segment) memory and never seeks:
//
//	"VSEGCAT3"                              8-byte head magic
//	blob ...                                segment blobs, any order
//	footer                                  JSON (segFooter)
//	footer CRC32C                           uint32 LE (v2+)
//	footer length                           uint64 LE
//	"VSEGEND3"                              8-byte end magic
//
// Format v2 added end-to-end integrity: every blob's CRC32C rides in
// its footer entry and is verified on every decode, and the footer
// itself is covered by the CRC in the tail — flipping any single byte
// of a v2+ file surfaces as a typed ErrCorruptSegment error, either at
// open (magic/tail/footer damage) or on the first read that touches
// the damaged blob. Format v3 ("VSEGCAT3", same tail shape) adds
// per-SEGMENT statistics and compression: every numeric column's blob
// entry carries the segment's min/max (hex floats) and its count of
// rows without a usable numeric value (SQL nulls plus NaN floats —
// exactly the rows whose Value.AsFloat yields no finite ordering key),
// and word payloads may be compressed (segBlob.Enc: delta+zigzag+
// uvarint for ints and times, xor-with-previous+uvarint for floats;
// kept only when strictly smaller). Blob CRCs cover the on-disk,
// possibly compressed bytes. The legacy layouts — checksum-free
// "VSEGCAT1" (16-byte tail) and "VSEGCAT2" — are still readable;
// their reads behave exactly as before (no per-segment stats, no
// compression, v1 unverified).
//
// The per-segment stats carry a soundness contract: min/max bound
// every usable value of the segment and nulls counts every unusable
// row, so a reader may prove "every row of this segment lies inside
// [lo, hi]" — and therefore has range distance exactly 0 — without
// decoding the blob. The cold scan path of internal/core skips the
// decode of such segments entirely (see SegmentStatser).
//
// A blob holds one column segment (SegmentSize rows, the final segment
// of a table possibly fewer): a null bitmap of ceil(rows/8) bytes
// (bit set = null) followed by the kind's payload — float64 bits,
// int64, or unix nanoseconds as 8-byte little-endian words (possibly
// compressed under v3); bools as one byte each; string kinds as
// (rows+1) uint32 cumulative offsets followed by the concatenated
// bytes. The footer maps every table, field and segment to its blob
// (offset, length) and carries the per-field min/max stats and the
// catalog epoch (FNV-1a over all blob bytes unless overridden), so
// opening a catalog reads the footer and nothing else.
//
// Two format consequences are deliberate: times are stored as unix
// nanoseconds and decode in UTC (instants outside the int64-nanosecond
// range, roughly years 1678–2262, do not round-trip; original zone
// offsets are normalized away), and Append on a file-backed table is
// rejected — the format is immutable once written.

const (
	segMagic    = "VSEGCAT1"
	segEndMagic = "VSEGEND1"

	segMagic2    = "VSEGCAT2"
	segEndMagic2 = "VSEGEND2"

	segMagic3    = "VSEGCAT3"
	segEndMagic3 = "VSEGEND3"
)

// ErrCorruptSegment is wrapped by every error that means a segment
// catalog file's bytes do not match what its writer produced — bad
// magics, a footer that fails its CRC or does not parse, blob geometry
// out of bounds, or (v2) a blob whose CRC32C does not match on decode.
// Callers distinguish it from I/O and usage errors with errors.Is and
// quarantine the catalog instead of trusting its data.
var ErrCorruptSegment = errors.New("corrupt segment catalog")

// castagnoli is the CRC32C polynomial table shared by the writer and
// the verifying reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segBlob locates one segment blob in the file. CRC is the CRC32C of
// the blob's on-disk bytes (compressed form when Enc is set); format
// v2+ writers always set it and readers verify it on every decode
// (absent from legacy v1 footers, where it decodes as zero and is
// ignored).
//
// Format v3 adds the per-segment fields: Enc selects the payload
// encoding (encRaw/encDelta/encXor), and Min/Max/Nulls are the
// segment's statistics — extremes over the usable values as hex float
// strings (exact bits, infinities survive JSON) plus the count of rows
// with no usable numeric value (null, or NaN for float columns).
// Min/Max present with Nulls == 0 is the precondition for the skip
// proof of SegmentStatser; absent stats (v1/v2 footers, string
// columns, all-null segments) disable skipping, never correctness.
type segBlob struct {
	Off   int64  `json:"off"`
	Len   int64  `json:"len"`
	CRC   uint32 `json:"crc,omitempty"`
	Enc   int    `json:"enc,omitempty"`
	Min   string `json:"min,omitempty"`
	Max   string `json:"max,omitempty"`
	Nulls int    `json:"nulls,omitempty"`
}

// segField is the footer metadata of one column.
type segField struct {
	Name       string   `json:"name"`
	Kind       int      `json:"kind"`
	Categories []string `json:"categories,omitempty"`
	// Min/Max are the column's numeric extremes (hex float strings, so
	// infinities and exact bits survive JSON); empty when the column
	// has no non-null, non-NaN numeric values.
	Min  string    `json:"min,omitempty"`
	Max  string    `json:"max,omitempty"`
	Segs []segBlob `json:"segs"`
}

// segTable is the footer metadata of one table.
type segTable struct {
	Name   string     `json:"name"`
	Rows   int        `json:"rows"`
	Fields []segField `json:"fields"`
}

// segFooter is the JSON footer of a segment catalog file.
type segFooter struct {
	Epoch       uint64       `json:"epoch"`
	Tables      []segTable   `json:"tables"`
	Connections []Connection `json:"connections,omitempty"`
}

// --- Writer -----------------------------------------------------------

// SegmentWriter streams a catalog into the on-disk segment format with
// O(segment) memory: rows buffer per table until a full segment
// accumulates, then its column blobs flush to the file.
type SegmentWriter struct {
	f       *os.File
	w       *bufio.Writer
	off     int64
	hash    interface{ Write([]byte) (int, error) }
	sum     func() uint64
	footer  segFooter
	open    []*TableWriter
	names   map[string]bool
	epoch   *uint64
	version int
	closed  bool
}

// CreateSegmentCatalog creates path and returns a writer for it,
// producing the current "VSEGCAT3" layout (per-segment stats and
// compression on top of the v2 checksums).
func CreateSegmentCatalog(path string) (*SegmentWriter, error) {
	return createSegmentCatalog(path, 3)
}

// CreateSegmentCatalogV2 creates path and returns a writer producing
// the checksummed but stats-free "VSEGCAT2" layout — kept for
// compatibility tests and for generating fixtures old readers accept.
func CreateSegmentCatalogV2(path string) (*SegmentWriter, error) {
	return createSegmentCatalog(path, 2)
}

// CreateSegmentCatalogV1 creates path and returns a writer producing
// the legacy checksum-free "VSEGCAT1" layout — kept for compatibility
// tests and for generating fixtures old readers accept.
func CreateSegmentCatalogV1(path string) (*SegmentWriter, error) {
	return createSegmentCatalog(path, 1)
}

func createSegmentCatalog(path string, version int) (*SegmentWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	w := &SegmentWriter{
		f:       f,
		w:       bufio.NewWriterSize(f, 1<<16),
		hash:    h,
		sum:     h.Sum64,
		names:   make(map[string]bool),
		version: version,
	}
	magic := segMagic3
	switch version {
	case 1:
		magic = segMagic
	case 2:
		magic = segMagic2
	}
	if _, err := w.w.WriteString(magic); err != nil {
		f.Close()
		return nil, err
	}
	w.off = int64(len(magic))
	return w, nil
}

// SetEpoch overrides the content-hash epoch the footer would otherwise
// carry.
func (w *SegmentWriter) SetEpoch(e uint64) { w.epoch = &e }

// AddConnection records a connection in the footer. Validation against
// tables happens on open (tables may not be written yet).
func (w *SegmentWriter) AddConnection(conn Connection) error {
	if err := conn.Validate(); err != nil {
		return err
	}
	w.footer.Connections = append(w.footer.Connections, conn)
	return nil
}

// AddTable starts a new table; append its rows through the returned
// TableWriter. Tables may be written concurrently only from one
// goroutine (the writer is not synchronized).
func (w *SegmentWriter) AddTable(name string, schema Schema) (*TableWriter, error) {
	if w.names[name] {
		return nil, fmt.Errorf("dataset: table %q already written", name)
	}
	buf, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	w.names[name] = true
	tw := &TableWriter{
		w:    w,
		buf:  buf,
		meta: segTable{Name: name},
		mins: make([]float64, len(schema)),
		maxs: make([]float64, len(schema)),
		any:  make([]bool, len(schema)),
	}
	for i, f := range schema {
		tw.meta.Fields = append(tw.meta.Fields, segField{
			Name:       f.Name,
			Kind:       int(f.Kind),
			Categories: append([]string(nil), f.Categories...),
		})
		tw.mins[i], tw.maxs[i] = math.Inf(1), math.Inf(-1)
	}
	w.open = append(w.open, tw)
	return tw, nil
}

// writeBlob appends raw blob bytes and returns their location (with
// the blob's CRC32C under format v2).
func (w *SegmentWriter) writeBlob(b []byte) (segBlob, error) {
	if _, err := w.w.Write(b); err != nil {
		return segBlob{}, err
	}
	w.hash.Write(b)
	loc := segBlob{Off: w.off, Len: int64(len(b))}
	if w.version >= 2 {
		loc.CRC = crc32.Checksum(b, castagnoli)
	}
	w.off += int64(len(b))
	return loc, nil
}

// Close flushes every table's partial segment, writes the footer and
// closes the file.
func (w *SegmentWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	for _, tw := range w.open {
		if err := tw.flush(); err != nil {
			w.f.Close()
			return err
		}
		tw.finishStats()
		w.footer.Tables = append(w.footer.Tables, tw.meta)
	}
	w.footer.Epoch = w.sum()
	if w.epoch != nil {
		w.footer.Epoch = *w.epoch
	}
	ft, err := json.Marshal(w.footer)
	if err != nil {
		w.f.Close()
		return err
	}
	if _, err := w.w.Write(ft); err != nil {
		w.f.Close()
		return err
	}
	var tail []byte
	if w.version >= 2 {
		tail = make([]byte, 20)
		binary.LittleEndian.PutUint32(tail[:4], crc32.Checksum(ft, castagnoli))
		binary.LittleEndian.PutUint64(tail[4:12], uint64(len(ft)))
		end := segEndMagic3
		if w.version == 2 {
			end = segEndMagic2
		}
		copy(tail[12:], end)
	} else {
		tail = make([]byte, 16)
		binary.LittleEndian.PutUint64(tail[:8], uint64(len(ft)))
		copy(tail[8:], segEndMagic)
	}
	if _, err := w.w.Write(tail); err != nil {
		w.f.Close()
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// TableWriter appends rows of one table to a SegmentWriter.
type TableWriter struct {
	w    *SegmentWriter
	buf  *Table // holds at most one segment of rows
	meta segTable
	mins []float64
	maxs []float64
	any  []bool
}

// AppendRow validates and buffers one row, flushing a blob per column
// whenever a full segment accumulates. Column statistics fold at flush
// time from the buffered segment (never from the raw argument values),
// so null rows and NaN floats — whose Value.AsFloat yields no usable
// ordering key — can never leak into the footer's min/max.
func (tw *TableWriter) AppendRow(vals ...Value) error {
	if err := tw.buf.AppendRow(vals...); err != nil {
		return err
	}
	tw.meta.Rows++
	if tw.buf.NumRows() == SegmentSize {
		return tw.flush()
	}
	return nil
}

// flush encodes and writes the buffered segment of every column,
// computing the segment's statistics (v3 footers carry them per blob)
// and folding them into the running column extremes.
func (tw *TableWriter) flush() error {
	rows := tw.buf.NumRows()
	if rows == 0 {
		return nil
	}
	for i := range tw.meta.Fields {
		c := tw.buf.ColumnAt(i)
		blob, enc := encodeSegmentV(c, rows, tw.w.version)
		loc, err := tw.w.writeBlob(blob)
		if err != nil {
			return err
		}
		loc.Enc = enc
		smin, smax, unusable, any := segmentStats(c, rows)
		if any {
			if smin < tw.mins[i] {
				tw.mins[i] = smin
			}
			if smax > tw.maxs[i] {
				tw.maxs[i] = smax
			}
			tw.any[i] = true
			if tw.w.version >= 3 {
				loc.Min = strconv.FormatFloat(smin, 'x', -1, 64)
				loc.Max = strconv.FormatFloat(smax, 'x', -1, 64)
				loc.Nulls = unusable
			}
		}
		tw.meta.Fields[i].Segs = append(tw.meta.Fields[i].Segs, loc)
	}
	fresh, err := NewTable(tw.buf.Name(), tw.buf.Schema())
	if err != nil {
		return err
	}
	tw.buf = fresh
	return nil
}

// segmentStats scans one buffered segment for its footer statistics:
// min/max over the usable values (rows whose Value.AsFloat is a
// non-NaN float — matching exactly the coercion ReadFloats serves) and
// the count of unusable rows. any is false when no row is usable
// (all-null segments, string columns).
func segmentStats(c Column, rows int) (smin, smax float64, unusable int, any bool) {
	smin, smax = math.Inf(1), math.Inf(-1)
	for r := 0; r < rows; r++ {
		f, ok := c.Value(r).AsFloat()
		if !ok || math.IsNaN(f) {
			unusable++
			continue
		}
		any = true
		if f < smin {
			smin = f
		}
		if f > smax {
			smax = f
		}
	}
	return smin, smax, unusable, any
}

// finishStats folds the accumulated extremes into the footer metadata —
// called exactly once, at Close (a per-flush fold would rewrite the
// same strings once per segment for nothing).
func (tw *TableWriter) finishStats() {
	for i := range tw.meta.Fields {
		if tw.any[i] {
			tw.meta.Fields[i].Min = strconv.FormatFloat(tw.mins[i], 'x', -1, 64)
			tw.meta.Fields[i].Max = strconv.FormatFloat(tw.maxs[i], 'x', -1, 64)
		}
	}
}

// WriteCatalogFile streams an in-memory catalog into a segment file at
// path (current format, "VSEGCAT3") and returns the epoch stamped into
// its footer.
func WriteCatalogFile(path string, cat *Catalog) (uint64, error) {
	return writeCatalogFile(path, cat, 3)
}

// WriteCatalogFileV2 is WriteCatalogFile for the checksummed but
// stats-free "VSEGCAT2" layout.
func WriteCatalogFileV2(path string, cat *Catalog) (uint64, error) {
	return writeCatalogFile(path, cat, 2)
}

// WriteCatalogFileV1 is WriteCatalogFile for the legacy checksum-free
// "VSEGCAT1" layout.
func WriteCatalogFileV1(path string, cat *Catalog) (uint64, error) {
	return writeCatalogFile(path, cat, 1)
}

func writeCatalogFile(path string, cat *Catalog, version int) (uint64, error) {
	w, err := createSegmentCatalog(path, version)
	if err != nil {
		return 0, err
	}
	for _, name := range cat.TableNames() {
		t, err := cat.Table(name)
		if err != nil {
			w.Close()
			return 0, err
		}
		tw, err := w.AddTable(name, t.Schema())
		if err != nil {
			w.Close()
			return 0, err
		}
		for r := 0; r < t.NumRows(); r++ {
			if err := tw.AppendRow(t.Row(r)...); err != nil {
				w.Close()
				return 0, err
			}
		}
	}
	for _, name := range cat.ConnectionNames() {
		conn, err := cat.Connection(name)
		if err != nil {
			w.Close()
			return 0, err
		}
		if err := w.AddConnection(conn); err != nil {
			w.Close()
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	epoch, err := peekEpoch(path)
	if err != nil {
		return 0, err
	}
	return epoch, nil
}

// peekEpoch reads only the footer of a segment file and returns its
// epoch.
func peekEpoch(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	ft, _, err := readFooter(f)
	if err != nil {
		return 0, err
	}
	return ft.Epoch, nil
}

// encodeSegment serializes the first (only) buffered segment of an
// in-memory column as a blob.
func encodeSegment(c Column, rows int) []byte {
	bm := make([]byte, (rows+7)/8)
	for i := 0; i < rows; i++ {
		if c.IsNull(i) {
			bm[i>>3] |= 1 << (i & 7)
		}
	}
	out := bm
	var word [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(word[:], u)
		out = append(out, word[:]...)
	}
	switch col := c.(type) {
	case *FloatColumn:
		vals := col.vals.seg(0)
		for i := 0; i < rows; i++ {
			put(math.Float64bits(vals[i]))
		}
	case *IntColumn:
		vals := col.vals.seg(0)
		for i := 0; i < rows; i++ {
			put(uint64(vals[i]))
		}
	case *TimeColumn:
		vals := col.vals.seg(0)
		for i := 0; i < rows; i++ {
			if col.nulls.seg(0)[i] {
				put(0)
			} else {
				put(uint64(vals[i].UnixNano()))
			}
		}
	case *BoolColumn:
		vals := col.vals.seg(0)
		for i := 0; i < rows; i++ {
			if vals[i] {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
	case *StringColumn:
		vals := col.vals.seg(0)
		var off [4]byte
		total := uint32(0)
		binary.LittleEndian.PutUint32(off[:], 0)
		out = append(out, off[:]...)
		for i := 0; i < rows; i++ {
			total += uint32(len(vals[i]))
			binary.LittleEndian.PutUint32(off[:], total)
			out = append(out, off[:]...)
		}
		for i := 0; i < rows; i++ {
			out = append(out, vals[i]...)
		}
	default:
		panic(fmt.Sprintf("dataset: cannot encode column type %T", c))
	}
	return out
}

// encodeSegmentV encodes one segment for the given format version:
// the raw blob under v1/v2, and under v3 the compressed word payload
// when the kind has one and compression strictly shrinks it (the null
// bitmap always stays raw at the front). Returns the blob bytes and
// the encoding stamped into the footer entry.
func encodeSegmentV(c Column, rows, version int) ([]byte, int) {
	raw := encodeSegment(c, rows)
	if version < 3 {
		return raw, encRaw
	}
	var enc int
	switch c.(type) {
	case *IntColumn, *TimeColumn:
		enc = encDelta
	case *FloatColumn:
		enc = encXor
	default:
		return raw, encRaw
	}
	bm := (rows + 7) / 8
	comp := compressWords(enc, raw[bm:])
	if len(comp) >= len(raw)-bm {
		return raw, encRaw
	}
	out := make([]byte, 0, bm+len(comp))
	out = append(out, raw[:bm]...)
	out = append(out, comp...)
	return out, enc
}

// --- Reader -----------------------------------------------------------

// OpenOptions configures OpenCatalogFile.
type OpenOptions struct {
	// ForceReadAt disables the mmap backend even where available, so
	// reads go through os.File.ReadAt (the portable fallback).
	ForceReadAt bool
	// CacheBytes bounds the decoded-segment cache shared by all
	// columns of the catalog; 0 selects the 64 MiB default. The cache
	// always retains at least one segment, so arbitrarily small
	// budgets degrade to re-decoding, never to failure.
	CacheBytes int64
	// WrapReaderAt, when non-nil, wraps the file before segment blob
	// reads — the fault-injection seam (internal/faultinject's
	// corrupting/truncating/slow ReaderAt wrappers plug in here).
	// Setting it forces the ReadAt backend, since mmap would bypass
	// the wrapper. The footer is read directly from the file at open,
	// before wrapping.
	WrapReaderAt func(io.ReaderAt) io.ReaderAt
}

// OpenCatalogFile opens a segment catalog written by SegmentWriter.
// The returned catalog serves reads directly from the file through a
// bounded decoded-segment cache — resident memory is O(cache budget),
// not O(catalog). Close the catalog to release the backing file.
func OpenCatalogFile(path string, opts OpenOptions) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ft, version, err := readFooter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var br blobReader
	if !opts.ForceReadAt && opts.WrapReaderAt == nil {
		br, _ = openMmapReader(f, fi.Size())
	}
	if br == nil {
		var ra io.ReaderAt = f
		if opts.WrapReaderAt != nil {
			ra = opts.WrapReaderAt(f)
		}
		br = &readAtReader{r: ra, c: f}
	}
	budget := opts.CacheBytes
	if budget <= 0 {
		budget = 64 << 20
	}
	src := &fileSource{
		br:       br,
		cache:    make(map[segKey]*list.Element),
		lru:      list.New(),
		maxBytes: budget,
		verify:   version >= 2,
	}
	cat := NewCatalog()
	cat.epoch = ft.Epoch
	cat.closer = src.close
	cat.corrupt = src.corruptErr
	colID := 0
	for _, tm := range ft.Tables {
		schema := make(Schema, len(tm.Fields))
		cols := make([]Column, len(tm.Fields))
		for i, fm := range tm.Fields {
			schema[i] = Field{Name: fm.Name, Kind: Kind(fm.Kind), Categories: fm.Categories}
			fc := &fileColumn{
				src:  src,
				id:   colID,
				kind: Kind(fm.Kind),
				rows: tm.Rows,
				segs: fm.Segs,
			}
			colID++
			// A stats string that does not parse back means the footer
			// disagrees with its writer: surface the typed corruption
			// error instead of silently dropping the stats (which would
			// silently disable every pruning path on this column).
			if fm.Min != "" || fm.Max != "" {
				min, err1 := strconv.ParseFloat(fm.Min, 64)
				max, err2 := strconv.ParseFloat(fm.Max, 64)
				if err1 != nil || err2 != nil {
					src.close()
					return nil, fmt.Errorf("dataset: %s: table %q field %q: corrupt column stats (%q, %q): %w",
						path, tm.Name, fm.Name, fm.Min, fm.Max, ErrCorruptSegment)
				}
				fc.min, fc.max, fc.stats = min, max, true
			}
			for si, loc := range fm.Segs {
				if loc.Min == "" && loc.Max == "" {
					continue
				}
				min, err1 := strconv.ParseFloat(loc.Min, 64)
				max, err2 := strconv.ParseFloat(loc.Max, 64)
				if err1 != nil || err2 != nil {
					src.close()
					return nil, fmt.Errorf("dataset: %s: table %q field %q segment %d: corrupt segment stats (%q, %q): %w",
						path, tm.Name, fm.Name, si, loc.Min, loc.Max, ErrCorruptSegment)
				}
				if fc.sstats == nil {
					fc.sstats = make([]segStat, len(fm.Segs))
				}
				fc.sstats[si] = segStat{min: min, max: max, nulls: loc.Nulls, ok: true}
			}
			if err := fc.validate(tm.Name, fm.Name, fi.Size()); err != nil {
				src.close()
				return nil, err
			}
			cols[i] = fc
		}
		if err := schema.Validate(); err != nil {
			src.close()
			return nil, fmt.Errorf("dataset: %s: table %q: %w", path, tm.Name, err)
		}
		t := &Table{name: tm.Name, schema: schema, cols: cols}
		if err := cat.AddTable(t); err != nil {
			src.close()
			return nil, err
		}
	}
	for _, conn := range ft.Connections {
		if err := cat.AddConnection(conn); err != nil {
			src.close()
			return nil, err
		}
	}
	return cat, nil
}

// readFooter locates and parses the footer of a segment file,
// reporting the format version it detected from the head magic. Every
// way the file can disagree with its writer's layout — bad magics, a
// tail that does not frame a footer, a v2 footer failing its CRC —
// wraps ErrCorruptSegment.
func readFooter(f *os.File) (*segFooter, int, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := fi.Size()
	if size < int64(len(segMagic)) {
		return nil, 0, fmt.Errorf("dataset: %s: too short for a segment catalog: %w", f.Name(), ErrCorruptSegment)
	}
	head := make([]byte, len(segMagic))
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, 0, err
	}
	version := 0
	tailLen := int64(0)
	switch string(head) {
	case segMagic:
		version, tailLen = 1, 16
	case segMagic2:
		version, tailLen = 2, 20
	case segMagic3:
		version, tailLen = 3, 20
	default:
		return nil, 0, fmt.Errorf("dataset: %s: not a segment catalog (bad magic): %w", f.Name(), ErrCorruptSegment)
	}
	if size < int64(len(segMagic))+tailLen {
		return nil, 0, fmt.Errorf("dataset: %s: too short for a segment catalog: %w", f.Name(), ErrCorruptSegment)
	}
	tail := make([]byte, tailLen)
	if _, err := f.ReadAt(tail, size-tailLen); err != nil {
		return nil, 0, err
	}
	var ftLen int64
	var ftCRC uint32
	if version == 1 {
		if string(tail[8:]) != segEndMagic {
			return nil, 0, fmt.Errorf("dataset: %s: truncated segment catalog (bad end magic): %w", f.Name(), ErrCorruptSegment)
		}
		ftLen = int64(binary.LittleEndian.Uint64(tail[:8]))
	} else {
		end := segEndMagic3
		if version == 2 {
			end = segEndMagic2
		}
		if string(tail[12:]) != end {
			return nil, 0, fmt.Errorf("dataset: %s: truncated segment catalog (bad end magic): %w", f.Name(), ErrCorruptSegment)
		}
		ftCRC = binary.LittleEndian.Uint32(tail[:4])
		ftLen = int64(binary.LittleEndian.Uint64(tail[4:12]))
	}
	if ftLen <= 0 || ftLen > size-tailLen-int64(len(segMagic)) {
		return nil, 0, fmt.Errorf("dataset: %s: corrupt footer length %d: %w", f.Name(), ftLen, ErrCorruptSegment)
	}
	buf := make([]byte, ftLen)
	if _, err := f.ReadAt(buf, size-tailLen-ftLen); err != nil {
		return nil, 0, err
	}
	if version >= 2 {
		if got := crc32.Checksum(buf, castagnoli); got != ftCRC {
			return nil, 0, fmt.Errorf("dataset: %s: footer CRC mismatch (%08x != %08x): %w", f.Name(), got, ftCRC, ErrCorruptSegment)
		}
	}
	var ft segFooter
	if err := json.Unmarshal(buf, &ft); err != nil {
		return nil, 0, fmt.Errorf("dataset: %s: corrupt footer (%v): %w", f.Name(), err, ErrCorruptSegment)
	}
	return &ft, version, nil
}

// blobReader reads a byte range of the catalog file. slice may return
// memory borrowed from an mmap window — callers must copy out before
// the source closes and must not mutate it.
type blobReader interface {
	slice(off, n int64) ([]byte, error)
	close() error
}

// readAtReader is the portable backend: plain pread into fresh
// buffers. r is usually the file itself, but OpenOptions.WrapReaderAt
// may interpose a fault-injecting wrapper.
type readAtReader struct {
	r io.ReaderAt
	c io.Closer
}

func (r *readAtReader) slice(off, n int64) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := r.r.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (r *readAtReader) close() error { return r.c.Close() }

// segKey identifies one decoded segment in the cache.
type segKey struct {
	col int
	seg int
}

// decodedSeg is one column segment decoded into native slices. Exactly
// one of the payload slices is set, per the column kind.
type decodedSeg struct {
	nulls  []bool
	floats []float64
	ints   []int64
	times  []time.Time
	bools  []bool
	strs   []string
	bytes  int64
}

type cacheSlot struct {
	key segKey
	seg *decodedSeg
}

// fileSource is the shared read state of one open catalog file: the
// backend and the bounded decoded-segment LRU. Concurrent sessions
// share it; the mutex guards only the cache bookkeeping — decoding
// happens outside it (a rare race decodes a segment twice, which is
// benign).
type fileSource struct {
	br       blobReader
	verify   bool // format v2: check each blob's CRC32C on decode
	mu       sync.Mutex
	cache    map[segKey]*list.Element
	lru      *list.List
	bytes    int64
	maxBytes int64
	// corrupt is the sticky first decode/read failure. Once set, data
	// served from this source is untrustworthy (failed segments read
	// as zeroes) and the owner must quarantine the catalog; it never
	// clears while the file is open.
	corrupt error
}

func (s *fileSource) close() error { return s.br.close() }

// corruptErr returns the sticky corruption error (nil while healthy).
func (s *fileSource) corruptErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// fail records the first corruption error.
func (s *fileSource) fail(err error) {
	s.mu.Lock()
	if s.corrupt == nil {
		s.corrupt = err
	}
	s.mu.Unlock()
}

// segment returns the decoded segment si of column c, from cache or
// disk. A decode failure (I/O error, CRC mismatch, malformed payload)
// must not panic — reads run on evaluator worker goroutines — and has
// no error channel through the Column interface, so it records the
// sticky corruption error and serves a zeroed segment: callers that
// check corruptErr (the serving layer does after every run) discard
// the tainted results instead of trusting them.
func (s *fileSource) segment(c *fileColumn, si int) *decodedSeg {
	key := segKey{c.id, si}
	s.mu.Lock()
	if el, ok := s.cache[key]; ok {
		s.lru.MoveToFront(el)
		seg := el.Value.(*cacheSlot).seg
		s.mu.Unlock()
		return seg
	}
	s.mu.Unlock()

	seg, err := s.decode(c, si)
	if err != nil {
		s.fail(fmt.Errorf("dataset: segment %d of column %d: %v: %w", si, c.id, err, ErrCorruptSegment))
		return zeroSeg(c.kind, c.segRows(si))
	}

	s.mu.Lock()
	if el, ok := s.cache[key]; ok {
		s.lru.MoveToFront(el)
		seg = el.Value.(*cacheSlot).seg
		s.mu.Unlock()
		return seg
	}
	el := s.lru.PushFront(&cacheSlot{key: key, seg: seg})
	s.cache[key] = el
	s.bytes += seg.bytes
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		slot := back.Value.(*cacheSlot)
		s.lru.Remove(back)
		delete(s.cache, slot.key)
		s.bytes -= slot.seg.bytes
	}
	s.mu.Unlock()
	return seg
}

// decode reads and decodes one segment blob.
func (s *fileSource) decode(c *fileColumn, si int) (*decodedSeg, error) {
	rows := c.segRows(si)
	loc := c.segs[si]
	raw, err := s.br.slice(loc.Off, loc.Len)
	if err != nil {
		return nil, err
	}
	if s.verify {
		if got := crc32.Checksum(raw, castagnoli); got != loc.CRC {
			return nil, fmt.Errorf("blob (%d,%d) CRC mismatch (%08x != %08x)", loc.Off, loc.Len, got, loc.CRC)
		}
	}
	bm := (rows + 7) / 8
	if len(raw) < bm {
		return nil, fmt.Errorf("blob shorter than its null bitmap")
	}
	seg := &decodedSeg{nulls: make([]bool, rows)}
	for i := 0; i < rows; i++ {
		seg.nulls[i] = raw[i>>3]&(1<<(i&7)) != 0
	}
	seg.bytes = int64(rows)
	payload := raw[bm:]
	if loc.Enc != encRaw {
		payload, err = expandWords(loc.Enc, payload, rows)
		if err != nil {
			return nil, err
		}
	}
	word := func(i int) uint64 {
		return binary.LittleEndian.Uint64(payload[i*8:])
	}
	switch c.kind {
	case KindFloat:
		if len(payload) != rows*8 {
			return nil, fmt.Errorf("float payload is %d bytes, want %d", len(payload), rows*8)
		}
		seg.floats = make([]float64, rows)
		for i := range seg.floats {
			seg.floats[i] = math.Float64frombits(word(i))
		}
		seg.bytes += int64(rows * 8)
	case KindInt:
		if len(payload) != rows*8 {
			return nil, fmt.Errorf("int payload is %d bytes, want %d", len(payload), rows*8)
		}
		seg.ints = make([]int64, rows)
		for i := range seg.ints {
			seg.ints[i] = int64(word(i))
		}
		seg.bytes += int64(rows * 8)
	case KindTime:
		if len(payload) != rows*8 {
			return nil, fmt.Errorf("time payload is %d bytes, want %d", len(payload), rows*8)
		}
		seg.times = make([]time.Time, rows)
		for i := range seg.times {
			if !seg.nulls[i] {
				seg.times[i] = time.Unix(0, int64(word(i))).UTC()
			}
		}
		seg.bytes += int64(rows * 24)
	case KindBool:
		if len(payload) != rows {
			return nil, fmt.Errorf("bool payload is %d bytes, want %d", len(payload), rows)
		}
		seg.bools = make([]bool, rows)
		for i := range seg.bools {
			seg.bools[i] = payload[i] != 0
		}
		seg.bytes += int64(rows)
	default: // string kinds
		offBytes := (rows + 1) * 4
		if len(payload) < offBytes {
			return nil, fmt.Errorf("string payload is %d bytes, want at least %d", len(payload), offBytes)
		}
		data := payload[offBytes:]
		seg.strs = make([]string, rows)
		prev := binary.LittleEndian.Uint32(payload)
		if prev != 0 {
			return nil, fmt.Errorf("string offsets do not start at 0")
		}
		for i := 0; i < rows; i++ {
			next := binary.LittleEndian.Uint32(payload[(i+1)*4:])
			if next < prev || int64(next) > int64(len(data)) {
				return nil, fmt.Errorf("string offsets corrupt at row %d", i)
			}
			seg.strs[i] = string(data[prev:next])
			seg.bytes += int64(next - prev)
			prev = next
		}
		seg.bytes += int64(rows * 16)
	}
	return seg, nil
}

// zeroSeg is the all-null, all-zero segment served in place of one
// that failed to decode — structurally valid for every accessor, with
// the sticky corruption error guaranteeing it is never believed.
func zeroSeg(kind Kind, rows int) *decodedSeg {
	seg := &decodedSeg{nulls: make([]bool, rows)}
	switch kind {
	case KindFloat:
		seg.floats = make([]float64, rows)
	case KindInt:
		seg.ints = make([]int64, rows)
	case KindTime:
		seg.times = make([]time.Time, rows)
	case KindBool:
		seg.bools = make([]bool, rows)
	default:
		seg.strs = make([]string, rows)
	}
	return seg
}

// segStat is one segment's parsed footer statistics.
type segStat struct {
	min, max float64
	nulls    int
	ok       bool
}

// fileColumn is a read-only column served from a segment catalog file.
type fileColumn struct {
	src      *fileSource
	id       int
	kind     Kind
	rows     int
	segs     []segBlob
	sstats   []segStat // per-segment stats (nil before format v3)
	min, max float64
	stats    bool
}

func (c *fileColumn) readOnlyColumn() {}

// validate checks the column's blob geometry against the file size, so
// serving never reads out of bounds.
func (c *fileColumn) validate(table, field string, fileSize int64) error {
	wantSegs := (c.rows + SegmentSize - 1) / SegmentSize
	if len(c.segs) != wantSegs {
		return fmt.Errorf("dataset: table %q field %q: %d segments for %d rows, want %d: %w",
			table, field, len(c.segs), c.rows, wantSegs, ErrCorruptSegment)
	}
	for si, loc := range c.segs {
		rows := c.segRows(si)
		minLen := int64((rows+7)/8) + payloadSize(c.kind, rows)
		if loc.Enc != encRaw {
			// Compressed payloads exist only for the word kinds, and a
			// varint per word is at least one byte.
			wordKind := c.kind == KindFloat || c.kind == KindInt || c.kind == KindTime
			if loc.Enc < encRaw || loc.Enc > encXor || !wordKind {
				return fmt.Errorf("dataset: table %q field %q segment %d: invalid encoding %d: %w",
					table, field, si, loc.Enc, ErrCorruptSegment)
			}
			minLen = int64((rows+7)/8 + rows)
		}
		if loc.Off < int64(len(segMagic)) || loc.Len < minLen || loc.Off+loc.Len > fileSize {
			return fmt.Errorf("dataset: table %q field %q segment %d: blob (%d,%d) out of bounds: %w",
				table, field, si, loc.Off, loc.Len, ErrCorruptSegment)
		}
	}
	return nil
}

// payloadSize is the minimum payload size of a kind (exact for
// fixed-width kinds, the offset table alone for strings).
func payloadSize(k Kind, rows int) int64 {
	switch k {
	case KindFloat, KindInt, KindTime:
		return int64(rows * 8)
	case KindBool:
		return int64(rows)
	default:
		return int64((rows + 1) * 4)
	}
}

// segRows returns the row count of segment si.
func (c *fileColumn) segRows(si int) int {
	if si < len(c.segs)-1 {
		return SegmentSize
	}
	r := c.rows - si*SegmentSize
	return r
}

// Kind implements Column.
func (c *fileColumn) Kind() Kind { return c.kind }

// Len implements Column.
func (c *fileColumn) Len() int { return c.rows }

// Append implements Column; file-backed columns are immutable.
func (c *fileColumn) Append(Value) error {
	return fmt.Errorf("dataset: file-backed column is read-only")
}

// IsNull implements Column.
func (c *fileColumn) IsNull(i int) bool {
	return c.src.segment(c, i>>segShift).nulls[i&segMask]
}

// Value implements Column.
func (c *fileColumn) Value(i int) Value {
	seg := c.src.segment(c, i>>segShift)
	off := i & segMask
	if seg.nulls[off] {
		return Null(c.kind)
	}
	switch c.kind {
	case KindFloat:
		return Float(seg.floats[off])
	case KindInt:
		return Int(seg.ints[off])
	case KindTime:
		return Time(seg.times[off])
	case KindBool:
		return Bool(seg.bools[off])
	default:
		return Value{Kind: c.kind, S: seg.strs[off]}
	}
}

// MinMax implements MinMaxer from the footer stats.
func (c *fileColumn) MinMax() (min, max float64, ok bool) {
	return c.min, c.max, c.stats
}

// SegmentStats implements SegmentStatser from the footer's per-segment
// stats (format v3); earlier formats answer ok == false for every
// segment.
func (c *fileColumn) SegmentStats(si int) (min, max float64, nulls int, ok bool) {
	if si < 0 || si >= len(c.sstats) {
		return 0, 0, 0, false
	}
	st := c.sstats[si]
	return st.min, st.max, st.nulls, st.ok
}

// ReadFloats implements FloatReader. Each covered segment decodes (or
// comes from the cache) once; the coercions match Value.AsFloat bit
// for bit, which is what makes file-backed replay identical to
// in-memory.
func (c *fileColumn) ReadFloats(dst []float64, from int) {
	readSegmented(dst, from, func(dst []float64, si, lo, hi int) {
		seg := c.src.segment(c, si)
		switch c.kind {
		case KindFloat:
			copy(dst, seg.floats[lo:hi])
		case KindInt:
			for i := lo; i < hi; i++ {
				if seg.nulls[i] {
					dst[i-lo] = math.NaN()
				} else {
					dst[i-lo] = float64(seg.ints[i])
				}
			}
		case KindTime:
			for i := lo; i < hi; i++ {
				if seg.nulls[i] {
					dst[i-lo] = math.NaN()
				} else {
					dst[i-lo] = float64(seg.times[i].Unix())
				}
			}
		case KindBool:
			for i := lo; i < hi; i++ {
				switch {
				case seg.nulls[i]:
					dst[i-lo] = math.NaN()
				case seg.bools[i]:
					dst[i-lo] = 1
				default:
					dst[i-lo] = 0
				}
			}
		default:
			for i := lo; i < hi; i++ {
				dst[i-lo] = math.NaN()
			}
		}
	})
}

// CacheStats reports the decoded-segment cache occupancy of a
// file-backed catalog (zeros for in-memory catalogs) — the observable
// that lets tests pin "resident memory stays bounded".
func (c *Catalog) CacheStats() (segments int, bytes int64) {
	for _, name := range c.TableNames() {
		t := c.tables[name]
		for _, col := range t.cols {
			if fc, ok := col.(*fileColumn); ok {
				fc.src.mu.Lock()
				segments = fc.src.lru.Len()
				bytes = fc.src.bytes
				fc.src.mu.Unlock()
				return segments, bytes
			}
		}
	}
	return 0, 0
}
