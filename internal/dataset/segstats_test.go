package dataset

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// statsCatalog builds a single-table catalog whose columns hit every
// edge of the per-segment stats contract: an all-null segment, an
// all-NaN segment, mixed nulls, negative zero against positive zero,
// and both infinities — across float, int and time kinds.
func statsCatalog(t *testing.T, rows int) *Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	tbl, err := NewTable("p", Schema{
		{Name: "f", Kind: KindFloat},
		{Name: "i", Kind: KindInt},
		{Name: "ts", Kind: KindTime},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	for r := 0; r < rows; r++ {
		seg := r / SegmentSize
		var f Value
		switch {
		case seg == 1: // all-null segment: stats must be absent
			f = Null(KindFloat)
		case seg == 2: // all-NaN segment: unusable, stats absent
			f = Float(math.NaN())
		case r%257 == 0:
			f = Float(math.Inf(1))
		case r%263 == 0:
			f = Float(math.Inf(-1))
		case r%31 == 0:
			f = Float(math.Copysign(0, -1)) // -0 vs +0 tie-breaking
		case r%37 == 0:
			f = Float(0)
		case r%11 == 0:
			f = Null(KindFloat)
		default:
			f = Float((rng.Float64() - 0.5) * 1e6)
		}
		i := Int(rng.Int63n(1 << 40))
		if r%13 == 5 {
			i = Null(KindInt)
		}
		ts := Time(base.Add(time.Duration(r) * 17 * time.Second))
		if r%19 == 7 {
			ts = Null(KindTime)
		}
		if err := tbl.AppendRow(f, i, ts); err != nil {
			t.Fatal(err)
		}
	}
	cat := NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

// refSegStats is the reference per-segment fold the footer stats must
// reproduce exactly: same coercion (Value.AsFloat), same usability
// rule (null or NaN), same row-order </> comparisons (so -0/+0 ties
// resolve identically).
func refSegStats(c Column, si int) (smin, smax float64, nulls int, any bool) {
	lo := si * SegmentSize
	hi := lo + SegmentSize
	if hi > c.Len() {
		hi = c.Len()
	}
	for r := lo; r < hi; r++ {
		f, ok := c.Value(r).AsFloat()
		if !ok || math.IsNaN(f) {
			nulls++
			continue
		}
		if !any {
			smin, smax, any = f, f, true
			continue
		}
		if f < smin {
			smin = f
		}
		if f > smax {
			smax = f
		}
	}
	return smin, smax, nulls, any
}

// TestSegmentStatsMatchScan is the stats-soundness property test: for
// every column and every segment of a v3 file, the footer's stats must
// equal a post-hoc scan of the decoded values bit for bit — including
// all-null segments, all-NaN segments, -0 and ±Inf.
func TestSegmentStatsMatchScan(t *testing.T) {
	const rows = 4*SegmentSize + 233 // five segments, last partial
	mem := statsCatalog(t, rows)
	path := filepath.Join(t.TempDir(), "p.vseg")
	if _, err := WriteCatalogFile(path, mem); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenCatalogFile(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	mt, _ := mem.Table("p")
	dt, err := disk.Table("p")
	if err != nil {
		t.Fatal(err)
	}
	nSegs := (rows + SegmentSize - 1) / SegmentSize
	for _, field := range mt.Schema() {
		mc, err := mt.Column(field.Name)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := dt.FloatReaderOf(field.Name)
		if err != nil {
			t.Fatal(err)
		}
		ss, ok := fr.(SegmentStatser)
		if !ok {
			t.Fatalf("col %s: file column is no SegmentStatser", field.Name)
		}
		for si := 0; si < nSegs; si++ {
			wmin, wmax, wnulls, wany := refSegStats(mc, si)
			gmin, gmax, gnulls, gok := ss.SegmentStats(si)
			if gok != wany {
				t.Fatalf("col %s seg %d: ok=%v, want %v", field.Name, si, gok, wany)
			}
			if !wany {
				continue
			}
			if math.Float64bits(gmin) != math.Float64bits(wmin) ||
				math.Float64bits(gmax) != math.Float64bits(wmax) || gnulls != wnulls {
				t.Fatalf("col %s seg %d: stats (%v,%v,%d), want (%v,%v,%d)",
					field.Name, si, gmin, gmax, gnulls, wmin, wmax, wnulls)
			}
		}
		// Out-of-range queries must read as "no stats", not panic.
		if _, _, _, ok := ss.SegmentStats(nSegs + 3); ok {
			t.Fatalf("col %s: stats for nonexistent segment", field.Name)
		}
		// Column-level footer stats equal the reference fold over all
		// segments (the satellite audit of the min/max accumulation).
		var cmin, cmax float64
		var cany bool
		for si := 0; si < nSegs; si++ {
			smin, smax, _, any := refSegStats(mc, si)
			if !any {
				continue
			}
			if !cany {
				cmin, cmax, cany = smin, smax, true
				continue
			}
			if smin < cmin {
				cmin = smin
			}
			if smax > cmax {
				cmax = smax
			}
		}
		gmin, gmax, gok, err := dt.MinMaxOf(field.Name)
		if err != nil {
			t.Fatal(err)
		}
		if gok != cany {
			t.Fatalf("col %s: column stats ok=%v, want %v", field.Name, gok, cany)
		}
		if cany && (math.Float64bits(gmin) != math.Float64bits(cmin) ||
			math.Float64bits(gmax) != math.Float64bits(cmax)) {
			t.Fatalf("col %s: column stats (%v,%v), want (%v,%v)", field.Name, gmin, gmax, cmin, cmax)
		}
	}
}

// TestFormatVersionMatrixRoundTrip pins the compatibility contract:
// the same catalog written in formats v1, v2 and v3 reads back
// bit-identically through both the mmap and the ReadAt backends.
func TestFormatVersionMatrixRoundTrip(t *testing.T) {
	const rows = SegmentSize + 421
	mem := mixedCatalog(t, rows)
	writers := []struct {
		name  string
		write func(string, *Catalog) (uint64, error)
	}{
		{"v3", WriteCatalogFile},
		{"v2", WriteCatalogFileV2},
		{"v1", WriteCatalogFileV1},
	}
	mt, _ := mem.Table("m")
	for _, w := range writers {
		path := filepath.Join(t.TempDir(), w.name+".vseg")
		if _, err := w.write(path, mem); err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		for _, force := range []bool{false, true} {
			disk, err := OpenCatalogFile(path, OpenOptions{ForceReadAt: force})
			if err != nil {
				t.Fatalf("%s (readat=%v): %v", w.name, force, err)
			}
			dt, err := disk.Table("m")
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < rows; r++ {
				want, got := mt.Row(r), dt.Row(r)
				for i := range want {
					if !valueEqualNaN(want[i], got[i]) {
						t.Fatalf("%s (readat=%v) row %d col %d: %v != %v", w.name, force, r, i, got[i], want[i])
					}
				}
			}
			for _, field := range mt.Schema() {
				mf, err := mt.FloatsOf(field.Name)
				if err != nil {
					t.Fatal(err)
				}
				df, err := dt.FloatsOf(field.Name)
				if err != nil {
					t.Fatal(err)
				}
				for r := range mf {
					if math.Float64bits(mf[r]) != math.Float64bits(df[r]) {
						t.Fatalf("%s (readat=%v) col %s row %d: floats differ", w.name, force, field.Name, r)
					}
				}
			}
			if cerr := disk.Corrupt(); cerr != nil {
				t.Fatalf("%s: healthy catalog reports corruption: %v", w.name, cerr)
			}
			disk.Close()
		}
	}
}

// TestCompressionShrinksClusteredFile: the v3 codecs (delta for
// ints/times, xor for floats) must beat the raw v2 layout on clustered
// data, where adjacent words share most of their bits.
func TestCompressionShrinksClusteredFile(t *testing.T) {
	tbl, err := NewTable("c", Schema{
		{Name: "seq", Kind: KindInt},
		{Name: "ts", Kind: KindTime},
		{Name: "v", Kind: KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(5))
	const rows = 3 * SegmentSize
	for r := 0; r < rows; r++ {
		if err := tbl.AppendRow(
			Int(int64(1_000_000+r*3)),
			Time(base.Add(time.Duration(r)*time.Minute)),
			Float(float64(r)/rows*100+rng.Float64()),
		); err != nil {
			t.Fatal(err)
		}
	}
	mem := NewCatalog()
	if err := mem.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p3 := filepath.Join(dir, "c3.vseg")
	p2 := filepath.Join(dir, "c2.vseg")
	if _, err := WriteCatalogFile(p3, mem); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCatalogFileV2(p2, mem); err != nil {
		t.Fatal(err)
	}
	s3, err := os.Stat(p3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := os.Stat(p2)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Size() >= s2.Size() {
		t.Fatalf("v3 file %d bytes, not smaller than v2 %d bytes", s3.Size(), s2.Size())
	}
	// And the compressed file still reads back exactly.
	disk, err := OpenCatalogFile(p3, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	dt, err := disk.Table("c")
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"seq", "ts", "v"} {
		mf, err := tbl.FloatsOf(col)
		if err != nil {
			t.Fatal(err)
		}
		df, err := dt.FloatsOf(col)
		if err != nil {
			t.Fatal(err)
		}
		for r := range mf {
			if math.Float64bits(mf[r]) != math.Float64bits(df[r]) {
				t.Fatalf("col %s row %d: compressed round trip differs", col, r)
			}
		}
	}
}

// rewriteFooter loads a v3 file, lets mutate edit its parsed footer,
// and writes the file back with a correct CRC and tail — so the test
// reaches the footer-parsing paths behind the integrity check.
func rewriteFooter(t *testing.T, path string, mutate func(*segFooter)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	size := len(data)
	ftLen := int(binary.LittleEndian.Uint64(data[size-16 : size-8]))
	start := size - 20 - ftLen
	var ft segFooter
	if err := json.Unmarshal(data[start:start+ftLen], &ft); err != nil {
		t.Fatal(err)
	}
	mutate(&ft)
	nf, err := json.Marshal(&ft)
	if err != nil {
		t.Fatal(err)
	}
	out := append(append([]byte{}, data[:start]...), nf...)
	tail := make([]byte, 20)
	binary.LittleEndian.PutUint32(tail[:4], crc32.Checksum(nf, castagnoli))
	binary.LittleEndian.PutUint64(tail[4:12], uint64(len(nf)))
	copy(tail[12:], segEndMagic3)
	out = append(out, tail...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptStatsRejectedTyped: a stats string that fails to parse
// means the footer disagrees with its writer — the open must fail with
// the typed ErrCorruptSegment, not silently drop the pruning stats.
func TestCorruptStatsRejectedTyped(t *testing.T) {
	mem := statsCatalog(t, SegmentSize+50)
	mutations := []struct {
		name   string
		mutate func(*segFooter)
	}{
		{"column min garbled", func(ft *segFooter) {
			ft.Tables[0].Fields[0].Min = "not-a-float"
		}},
		{"segment max garbled", func(ft *segFooter) {
			segs := ft.Tables[0].Fields[0].Segs
			for i := range segs {
				if segs[i].Max != "" {
					segs[i].Max = "zz"
					return
				}
			}
			t.Fatal("no segment carries stats")
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "x.vseg")
			if _, err := WriteCatalogFile(path, mem); err != nil {
				t.Fatal(err)
			}
			rewriteFooter(t, path, m.mutate)
			cat, err := OpenCatalogFile(path, OpenOptions{})
			if err == nil {
				cat.Close()
				t.Fatal("open succeeded on corrupt stats")
			}
			if !errors.Is(err, ErrCorruptSegment) {
				t.Fatalf("error is not ErrCorruptSegment: %v", err)
			}
		})
	}
	// A crafted encoding on a non-word kind must be rejected too: the
	// codecs are defined only for float/int/time payloads.
	t.Run("enc on string column", func(t *testing.T) {
		tbl, err := NewTable("s", Schema{{Name: "name", Kind: KindString}})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 10; r++ {
			if err := tbl.AppendRow(Str("x")); err != nil {
				t.Fatal(err)
			}
		}
		cat := NewCatalog()
		if err := cat.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "s.vseg")
		if _, err := WriteCatalogFile(path, cat); err != nil {
			t.Fatal(err)
		}
		rewriteFooter(t, path, func(ft *segFooter) {
			ft.Tables[0].Fields[0].Segs[0].Enc = encDelta
		})
		opened, err := OpenCatalogFile(path, OpenOptions{})
		if err == nil {
			opened.Close()
			t.Fatal("open accepted a delta-coded string column")
		}
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("error is not ErrCorruptSegment: %v", err)
		}
	})
}

// TestCodecRoundTrip is the codec property test: random word payloads
// survive compress→expand bit-identically under both codecs, and
// malformed compressed payloads error instead of producing garbage.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	payloads := [][]uint64{
		{},
		{0},
		{math.MaxUint64},
		{0, math.MaxUint64, 0, math.MaxUint64},
	}
	ramp := make([]uint64, 300)
	for i := range ramp {
		ramp[i] = uint64(i * 1000)
	}
	payloads = append(payloads, ramp)
	randw := make([]uint64, 500)
	for i := range randw {
		randw[i] = rng.Uint64()
	}
	payloads = append(payloads, randw)
	floats := make([]uint64, 400)
	for i := range floats {
		floats[i] = math.Float64bits(float64(i)/400 + rng.Float64()*1e-3)
	}
	payloads = append(payloads, floats)

	for pi, words := range payloads {
		raw := make([]byte, 8*len(words))
		for i, w := range words {
			binary.LittleEndian.PutUint64(raw[8*i:], w)
		}
		for _, enc := range []int{encDelta, encXor} {
			comp := compressWords(enc, raw)
			back, err := expandWords(enc, comp, len(words))
			if err != nil {
				t.Fatalf("payload %d enc %d: %v", pi, enc, err)
			}
			if len(back) != len(raw) {
				t.Fatalf("payload %d enc %d: %d bytes back, want %d", pi, enc, len(back), len(raw))
			}
			for i := range raw {
				if back[i] != raw[i] {
					t.Fatalf("payload %d enc %d: byte %d differs", pi, enc, i)
				}
			}
			// Truncation mid-stream must error, never fabricate rows.
			if len(comp) > 1 {
				if _, err := expandWords(enc, comp[:len(comp)/2], len(words)); err == nil {
					t.Fatalf("payload %d enc %d: truncated payload expanded cleanly", pi, enc)
				}
			}
			// Trailing garbage must error too.
			if _, err := expandWords(enc, append(append([]byte{}, comp...), 0x01), len(words)); err == nil {
				t.Fatalf("payload %d enc %d: trailing bytes accepted", pi, enc)
			}
		}
	}
	if _, err := expandWords(99, []byte{1, 2, 3}, 1); err == nil {
		t.Fatal("unknown encoding accepted")
	}
}
