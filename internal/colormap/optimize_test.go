package colormap

import "testing"

func TestOptimizedBeatsFixedPathOnJNDs(t *testing.T) {
	fixed := VisDB(DefaultLevels)
	opt := Optimized(DefaultLevels)
	if opt.Levels() != DefaultLevels {
		t.Fatalf("levels: %d", opt.Levels())
	}
	fj, oj := fixed.JNDs(), opt.JNDs()
	if oj <= fj {
		t.Fatalf("optimized JNDs %.1f should exceed fixed path %.1f", oj, fj)
	}
}

func TestOptimizedKeepsVisDBConstraints(t *testing.T) {
	m := Optimized(128)
	// Starts bright yellow.
	first := m.At(0)
	if first.R < 200 || first.G < 180 || first.B > 80 {
		t.Errorf("start should be yellow: %+v", first)
	}
	// Ends almost black.
	if l := Luminance(m.At(m.Levels() - 1)); l > 0.06 {
		t.Errorf("end luminance %v", l)
	}
	// Value (intensity) never rises: check via HSV of each level.
	prevV := ToHSV(m.At(0)).V
	for i := 1; i < m.Levels(); i++ {
		v := ToHSV(m.At(i)).V
		if v > prevV+0.02 {
			t.Fatalf("intensity rises at level %d: %v -> %v", i, prevV, v)
		}
		prevV = v
	}
	// Hue passes through green and blue on its way to red.
	sawGreen, sawBlue := false, false
	for i := 0; i < m.Levels(); i++ {
		h := ToHSV(m.At(i)).H
		if h > 90 && h < 150 {
			sawGreen = true
		}
		if h > 210 && h < 270 {
			sawBlue = true
		}
	}
	if !sawGreen || !sawBlue {
		t.Errorf("hue path misses green(%v) or blue(%v)", sawGreen, sawBlue)
	}
}

func TestOptimizedTiny(t *testing.T) {
	m := Optimized(1) // clamps to 2
	if m.Levels() != 2 {
		t.Fatalf("levels: %d", m.Levels())
	}
}
