package colormap

import "math"

// Map is a discretized colormap: a path through color space sampled at a
// fixed number of levels. Level 0 is the color of the absolutely correct
// answers (distance 0); the last level is the color of the most distant
// displayed answers.
type Map struct {
	levels []RGB
	name   string
}

// Levels returns the number of discrete levels in the map.
func (m *Map) Levels() int { return len(m.levels) }

// Name returns the colormap's descriptive name.
func (m *Map) Name() string { return m.name }

// At returns the color of level i, clamping i into range.
func (m *Map) At(i int) RGB {
	if len(m.levels) == 0 {
		return RGB{}
	}
	if i < 0 {
		i = 0
	}
	if i >= len(m.levels) {
		i = len(m.levels) - 1
	}
	return m.levels[i]
}

// AtNorm maps a normalized distance t ∈ [0,1] to a color. t = 0 is the
// correct-answer color (yellow for the VisDB map); t = 1 is the far end
// (almost black). NaN maps to the far end, matching the paper's treatment
// of uncolorable values as "completely wrong".
func (m *Map) AtNorm(t float64) RGB {
	if len(m.levels) == 0 {
		return RGB{}
	}
	if math.IsNaN(t) || t >= 1 {
		return m.levels[len(m.levels)-1]
	}
	if t < 0 {
		t = 0
	}
	idx := int(t * float64(len(m.levels)))
	if idx >= len(m.levels) {
		idx = len(m.levels) - 1
	}
	return m.levels[idx]
}

// LevelOfNorm returns the discrete level index used for normalized
// distance t, mirroring AtNorm's quantization.
func (m *Map) LevelOfNorm(t float64) int {
	if len(m.levels) == 0 {
		return 0
	}
	if math.IsNaN(t) || t >= 1 {
		return len(m.levels) - 1
	}
	if t < 0 {
		t = 0
	}
	idx := int(t * float64(len(m.levels)))
	if idx >= len(m.levels) {
		idx = len(m.levels) - 1
	}
	return idx
}

// JNDs estimates how many just-noticeable differences the colormap path
// traverses: the accumulated CIE76 ΔE between consecutive levels divided
// by the JND threshold. The paper (section 4.2) chooses color over gray
// scales because the number of JNDs is much higher.
func (m *Map) JNDs() float64 {
	var total float64
	for i := 1; i < len(m.levels); i++ {
		total += DeltaE76(m.levels[i-1], m.levels[i])
	}
	return total / JNDThreshold
}

// DefaultLevels is the default number of discrete colormap levels. The
// paper normalizes distances to [0, 255], one level per distance value.
const DefaultLevels = 256

// VisDB builds the paper's colormap: quite constant saturation, intensity
// decreasing with distance, hue ranging from yellow over green and blue to
// red and almost black (section 4.2). Level 0 is pure bright yellow so
// the correct-answer region reads unmistakably.
func VisDB(levels int) *Map {
	if levels < 2 {
		levels = 2
	}
	m := &Map{name: "visdb", levels: make([]RGB, levels)}
	for i := range m.levels {
		t := float64(i) / float64(levels-1)
		// Hue: 60° (yellow) → 120° (green) → 240° (blue) → 350° (red).
		h := 60 + 300*t
		// Saturation: roughly constant, slightly rising so the dark end
		// stays chromatic rather than gray.
		s := 0.85 + 0.1*t
		// Intensity: bright yellow fading to almost black. The slight
		// gamma keeps mid-range hues distinguishable.
		v := 1 - 0.92*math.Pow(t, 0.85)
		m.levels[i] = FromHSV(HSV{H: h, S: s, V: v})
	}
	return m
}

// Grayscale builds the gray-scale baseline colormap (white → black) used
// to quantify the paper's JND argument for color.
func Grayscale(levels int) *Map {
	if levels < 2 {
		levels = 2
	}
	m := &Map{name: "grayscale", levels: make([]RGB, levels)}
	for i := range m.levels {
		t := float64(i) / float64(levels-1)
		g := to8(1 - t)
		m.levels[i] = RGB{g, g, g}
	}
	return m
}

// Heat builds a conventional heat map (white→yellow→red→black reversed:
// here bright yellow→red→dark) as an alternative path for the ablation
// comparing JND counts of different paths through color space.
func Heat(levels int) *Map {
	if levels < 2 {
		levels = 2
	}
	m := &Map{name: "heat", levels: make([]RGB, levels)}
	for i := range m.levels {
		t := float64(i) / float64(levels-1)
		h := 60 * (1 - t) // yellow → red
		v := 1 - 0.9*t
		m.levels[i] = FromHSV(HSV{H: h, S: 0.95, V: v})
	}
	return m
}

// Special overlay colors used by the interactive interface.
var (
	// HighlightColor marks the selected tuple across all windows.
	HighlightColor = RGB{255, 255, 255}
	// BackgroundColor fills window cells with no data item.
	BackgroundColor = RGB{16, 16, 16}
	// UncolorableColor marks items whose distance is undefined (e.g.
	// negated subqueries, section 4.4): a neutral dark gray distinct
	// from every colormap level.
	UncolorableColor = RGB{70, 70, 70}
)

// Spectrum returns the colormap resampled to n entries, ordered from
// level 0 to the last level. It paints the query-modification sliders,
// whose color spectrum is "just a different arrangement of the colored
// distances" (section 4.3).
func (m *Map) Spectrum(n int) []RGB {
	if n < 1 {
		n = 1
	}
	out := make([]RGB, n)
	for i := range out {
		t := 0.0
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		out[i] = m.AtNorm(t)
	}
	return out
}
