package colormap

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHSVRoundTripPrimaries(t *testing.T) {
	cases := []struct {
		rgb RGB
		hsv HSV
	}{
		{RGB{255, 0, 0}, HSV{0, 1, 1}},
		{RGB{0, 255, 0}, HSV{120, 1, 1}},
		{RGB{0, 0, 255}, HSV{240, 1, 1}},
		{RGB{255, 255, 0}, HSV{60, 1, 1}},
		{RGB{0, 0, 0}, HSV{0, 0, 0}},
		{RGB{255, 255, 255}, HSV{0, 0, 1}},
	}
	for _, c := range cases {
		got := FromHSV(c.hsv)
		if got != c.rgb {
			t.Errorf("FromHSV(%+v) = %+v, want %+v", c.hsv, got, c.rgb)
		}
		back := ToHSV(c.rgb)
		if math.Abs(back.H-c.hsv.H) > 0.6 || math.Abs(back.S-c.hsv.S) > 0.01 || math.Abs(back.V-c.hsv.V) > 0.01 {
			t.Errorf("ToHSV(%+v) = %+v, want %+v", c.rgb, back, c.hsv)
		}
	}
}

// Property: HSV→RGB→HSV round-trips hue/sat/value within quantization
// error for saturated colors.
func TestHSVRoundTripProperty(t *testing.T) {
	f := func(h, s, v float64) bool {
		hsv := HSV{
			H: math.Mod(math.Abs(h), 360),
			S: 0.2 + 0.8*clamp01(s),
			V: 0.2 + 0.8*clamp01(v),
		}
		back := ToHSV(FromHSV(hsv))
		dh := math.Abs(back.H - hsv.H)
		if dh > 180 {
			dh = 360 - dh
		}
		return dh < 2.5 && math.Abs(back.S-hsv.S) < 0.02 && math.Abs(back.V-hsv.V) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHSVWrapsAndClamps(t *testing.T) {
	a := FromHSV(HSV{H: 420, S: 1, V: 1}) // 420 ≡ 60 (yellow)
	b := FromHSV(HSV{H: 60, S: 1, V: 1})
	if a != b {
		t.Errorf("hue wrap: %+v vs %+v", a, b)
	}
	c := FromHSV(HSV{H: -300, S: 2, V: -1}) // -300 ≡ 60, s→1, v→0
	if c != (RGB{0, 0, 0}) {
		t.Errorf("clamping: %+v", c)
	}
	n := FromHSV(HSV{H: math.NaN(), S: math.NaN(), V: math.NaN()})
	_ = n // must not panic
}

func TestLuminanceOrdering(t *testing.T) {
	white := Luminance(RGB{255, 255, 255})
	gray := Luminance(RGB{128, 128, 128})
	black := Luminance(RGB{0, 0, 0})
	if !(white > gray && gray > black) {
		t.Errorf("luminance ordering broken: %v %v %v", white, gray, black)
	}
	if math.Abs(white-1) > 1e-6 || black != 0 {
		t.Errorf("extremes: white=%v black=%v", white, black)
	}
}

func TestLabKnownValues(t *testing.T) {
	// White should be L*=100, a*≈0, b*≈0.
	lab := ToLab(RGB{255, 255, 255})
	if math.Abs(lab.L-100) > 0.1 || math.Abs(lab.A) > 0.5 || math.Abs(lab.B) > 0.5 {
		t.Errorf("white Lab = %+v", lab)
	}
	black := ToLab(RGB{0, 0, 0})
	if black.L > 0.01 {
		t.Errorf("black L = %v", black.L)
	}
}

func TestDeltaESymmetricAndZero(t *testing.T) {
	a, b := RGB{200, 30, 40}, RGB{10, 220, 70}
	if d := DeltaE76(a, a); d != 0 {
		t.Errorf("ΔE(a,a) = %v", d)
	}
	if DeltaE76(a, b) != DeltaE76(b, a) {
		t.Error("ΔE not symmetric")
	}
	if DeltaE76(a, b) <= 0 {
		t.Error("distinct colors must differ")
	}
}

func TestVisDBMapEndpoints(t *testing.T) {
	m := VisDB(DefaultLevels)
	if m.Levels() != 256 {
		t.Fatalf("levels = %d", m.Levels())
	}
	first := m.At(0)
	// Bright yellow: red and green high, blue low.
	if first.R < 220 || first.G < 200 || first.B > 60 {
		t.Errorf("level 0 should be bright yellow, got %+v", first)
	}
	last := m.At(m.Levels() - 1)
	if Luminance(last) > 0.05 {
		t.Errorf("last level should be almost black, got %+v (lum %v)", last, Luminance(last))
	}
}

func TestVisDBMapLuminanceMonotone(t *testing.T) {
	m := VisDB(DefaultLevels)
	prev := Luminance(m.At(0))
	for i := 1; i < m.Levels(); i++ {
		cur := Luminance(m.At(i))
		if cur > prev+0.02 {
			t.Fatalf("luminance rises at level %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestVisDBHuePath(t *testing.T) {
	m := VisDB(DefaultLevels)
	// The hue must pass through green and blue between yellow and the
	// dark red end (section 4.2).
	sawGreen, sawBlue := false, false
	for i := 0; i < m.Levels(); i++ {
		h := ToHSV(m.At(i)).H
		if h > 90 && h < 150 {
			sawGreen = true
		}
		if h > 210 && h < 270 {
			sawBlue = true
		}
	}
	if !sawGreen || !sawBlue {
		t.Errorf("hue path misses green(%v) or blue(%v)", sawGreen, sawBlue)
	}
}

func TestColorBeatsGrayOnJNDs(t *testing.T) {
	// The paper's core perceptual argument: the color path offers far
	// more just-noticeable differences than a gray scale.
	color := VisDB(DefaultLevels).JNDs()
	gray := Grayscale(DefaultLevels).JNDs()
	if color <= gray {
		t.Fatalf("VisDB JNDs (%v) should exceed grayscale (%v)", color, gray)
	}
	if color < 1.5*gray {
		t.Errorf("expected a clear margin: color=%v gray=%v", color, gray)
	}
	if heat := Heat(DefaultLevels).JNDs(); heat <= 0 {
		t.Errorf("heat JNDs = %v", heat)
	}
}

func TestAtNormMapping(t *testing.T) {
	m := VisDB(64)
	if m.AtNorm(0) != m.At(0) {
		t.Error("t=0 should map to level 0")
	}
	if m.AtNorm(1) != m.At(63) {
		t.Error("t=1 should map to the last level")
	}
	if m.AtNorm(math.NaN()) != m.At(63) {
		t.Error("NaN should map to the far end")
	}
	if m.AtNorm(-3) != m.At(0) {
		t.Error("negative t should clamp to level 0")
	}
	if m.AtNorm(7) != m.At(63) {
		t.Error("t>1 should clamp to the last level")
	}
	if got := m.LevelOfNorm(0.5); got != 32 {
		t.Errorf("LevelOfNorm(0.5) = %d, want 32", got)
	}
}

// Property: AtNorm and LevelOfNorm agree for all t.
func TestAtNormLevelConsistency(t *testing.T) {
	m := VisDB(100)
	f := func(raw float64) bool {
		t := raw
		return m.AtNorm(t) == m.At(m.LevelOfNorm(t))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmptyAndTinyMaps(t *testing.T) {
	var empty Map
	if empty.At(3) != (RGB{}) || empty.AtNorm(0.5) != (RGB{}) {
		t.Error("empty map should return zero color")
	}
	if empty.LevelOfNorm(0.7) != 0 {
		t.Error("empty map level should be 0")
	}
	tiny := VisDB(1) // clamped to 2
	if tiny.Levels() != 2 {
		t.Errorf("tiny map levels = %d, want 2", tiny.Levels())
	}
}

func TestSpectrum(t *testing.T) {
	m := VisDB(DefaultLevels)
	sp := m.Spectrum(10)
	if len(sp) != 10 {
		t.Fatalf("len = %d", len(sp))
	}
	if sp[0] != m.At(0) || sp[9] != m.At(255) {
		t.Error("spectrum endpoints should match map endpoints")
	}
	one := m.Spectrum(0)
	if len(one) != 1 {
		t.Errorf("n=0 clamps to 1, got %d", len(one))
	}
}

func TestSpecialColorsDistinct(t *testing.T) {
	m := VisDB(DefaultLevels)
	for i := 0; i < m.Levels(); i++ {
		c := m.At(i)
		if c == HighlightColor || c == UncolorableColor || c == BackgroundColor {
			t.Fatalf("special color collides with level %d", i)
		}
	}
}
