package colormap

import "math"

// Optimized builds a colormap by greedy search for a path through color
// space that maximizes accumulated perceptual difference — the design
// task section 4.2 describes: "The main task in coloring the relevance
// factors is to find a path through color space that maximizes the
// number of JNDs, but, at the same time, is intuitive for the
// application domain."
//
// The search keeps the VisDB intuition constraints: the path starts at
// bright yellow (hue 60°), ends almost black near red (hue 360°), hue
// only advances, and intensity only falls. Within those constraints it
// chooses, per level, the hue/value step and saturation wiggle with the
// largest CIE76 ΔE from the previous level — saturation oscillation
// adds perceptual path length that a fixed-saturation ramp leaves on
// the table.
func Optimized(levels int) *Map {
	if levels < 2 {
		levels = 2
	}
	m := &Map{name: "visdb-optimized", levels: make([]RGB, levels)}
	const (
		hStart, hEnd = 60.0, 360.0
		vStart, vEnd = 1.0, 0.08
		sLo, sHi     = 0.75, 1.0
	)
	h, v, s := hStart, vStart, 0.9
	m.levels[0] = FromHSV(HSV{H: h, S: s, V: v})
	for i := 1; i < levels; i++ {
		remaining := float64(levels - i)
		minDH := (hEnd - h) / remaining
		minDV := (v - vEnd) / remaining
		bestDE := -1.0
		bestH, bestV, bestS := h+minDH, v-minDV, s
		for _, fh := range []float64{1, 1.5, 2} {
			dh := minDH * fh
			// Never advance so far that the remaining levels cannot
			// still reach the end hue monotonically.
			if h+dh > hEnd {
				dh = hEnd - h
			}
			for _, fv := range []float64{1, 1.5, 2} {
				dv := minDV * fv
				if v-dv < vEnd {
					dv = v - vEnd
				}
				for _, ds := range []float64{-0.1, 0, 0.1} {
					ns := clampRange(s+ds, sLo, sHi)
					cand := FromHSV(HSV{H: h + dh, S: ns, V: v - dv})
					de := DeltaE76(m.levels[i-1], cand)
					if de > bestDE {
						bestDE = de
						bestH, bestV, bestS = h+dh, v-dv, ns
					}
				}
			}
		}
		h, v, s = bestH, bestV, bestS
		m.levels[i] = FromHSV(HSV{H: h, S: s, V: v})
	}
	return m
}

func clampRange(v, lo, hi float64) float64 {
	if math.IsNaN(v) || v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
