// Package colormap implements the color substrate of the VisDB
// reproduction: RGB/HSV/CIELAB conversions, the paper's distance colormap
// (constant saturation, hue running yellow → green → blue → red with
// intensity falling to almost black), a gray-scale baseline, and the
// just-noticeable-difference (JND) accounting the paper uses to argue for
// color over gray scales (section 4.2, [LRR 92]).
package colormap

import "math"

// RGB is an 8-bit-per-channel sRGB color.
type RGB struct{ R, G, B uint8 }

// C is a terse RGB constructor.
func C(r, g, b uint8) RGB { return RGB{R: r, G: g, B: b} }

// HSV describes a color by hue (degrees, [0,360)), saturation and value,
// both in [0,1].
type HSV struct{ H, S, V float64 }

// Lab is a CIE 1976 L*a*b* color (D65 white point).
type Lab struct{ L, A, B float64 }

// FromHSV converts an HSV color to RGB. Hue wraps modulo 360; saturation
// and value are clamped to [0,1].
func FromHSV(c HSV) RGB {
	h := math.Mod(c.H, 360)
	if h < 0 {
		h += 360
	}
	s := clamp01(c.S)
	v := clamp01(c.V)
	hi := h / 60
	i := int(hi) % 6
	f := hi - math.Floor(hi)
	p := v * (1 - s)
	q := v * (1 - f*s)
	t := v * (1 - (1-f)*s)
	var r, g, b float64
	switch i {
	case 0:
		r, g, b = v, t, p
	case 1:
		r, g, b = q, v, p
	case 2:
		r, g, b = p, v, t
	case 3:
		r, g, b = p, q, v
	case 4:
		r, g, b = t, p, v
	default:
		r, g, b = v, p, q
	}
	return RGB{to8(r), to8(g), to8(b)}
}

// ToHSV converts an RGB color to HSV.
func ToHSV(c RGB) HSV {
	r := float64(c.R) / 255
	g := float64(c.G) / 255
	b := float64(c.B) / 255
	max := math.Max(r, math.Max(g, b))
	min := math.Min(r, math.Min(g, b))
	d := max - min
	var h float64
	switch {
	case d == 0:
		h = 0
	case max == r:
		h = 60 * math.Mod((g-b)/d, 6)
	case max == g:
		h = 60 * ((b-r)/d + 2)
	default:
		h = 60 * ((r-g)/d + 4)
	}
	if h < 0 {
		h += 360
	}
	var s float64
	if max > 0 {
		s = d / max
	}
	return HSV{H: h, S: s, V: max}
}

// Luminance returns the relative luminance (Rec. 709 weights) of c in
// [0,1]. The paper's colormap is designed so luminance falls monotonically
// with distance from the correct answers.
func Luminance(c RGB) float64 {
	return 0.2126*srgbToLinear(float64(c.R)/255) +
		0.7152*srgbToLinear(float64(c.G)/255) +
		0.0722*srgbToLinear(float64(c.B)/255)
}

// ToLab converts an sRGB color to CIELAB under a D65 white point.
func ToLab(c RGB) Lab {
	r := srgbToLinear(float64(c.R) / 255)
	g := srgbToLinear(float64(c.G) / 255)
	b := srgbToLinear(float64(c.B) / 255)
	// Linear RGB → XYZ (sRGB matrix, D65).
	x := 0.4124564*r + 0.3575761*g + 0.1804375*b
	y := 0.2126729*r + 0.7151522*g + 0.0721750*b
	z := 0.0193339*r + 0.1191920*g + 0.9503041*b
	// Normalize by the D65 reference white.
	const xn, yn, zn = 0.95047, 1.0, 1.08883
	fx := labF(x / xn)
	fy := labF(y / yn)
	fz := labF(z / zn)
	return Lab{
		L: 116*fy - 16,
		A: 500 * (fx - fy),
		B: 200 * (fy - fz),
	}
}

// DeltaE76 is the CIE 1976 color difference between two colors. A value
// around 2.3 is conventionally one just-noticeable difference.
func DeltaE76(a, b RGB) float64 {
	la, lb := ToLab(a), ToLab(b)
	dl := la.L - lb.L
	da := la.A - lb.A
	db := la.B - lb.B
	return math.Sqrt(dl*dl + da*da + db*db)
}

// JNDThreshold is the conventional CIE76 ΔE for one just-noticeable
// difference.
const JNDThreshold = 2.3

func labF(t float64) float64 {
	const delta = 6.0 / 29.0
	if t > delta*delta*delta {
		return math.Cbrt(t)
	}
	return t/(3*delta*delta) + 4.0/29.0
}

func srgbToLinear(v float64) float64 {
	if v <= 0.04045 {
		return v / 12.92
	}
	return math.Pow((v+0.055)/1.055, 2.4)
}

func clamp01(v float64) float64 {
	if v != v || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func to8(v float64) uint8 {
	u := int(math.Round(clamp01(v) * 255))
	return uint8(u)
}
