package query

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// genExpr builds a random expression tree of bounded depth for the
// generative round-trip property.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		return genCond(rng)
	}
	switch rng.Intn(5) {
	case 0:
		return &Not{Child: genExpr(rng, depth-1)}
	case 1:
		return &JoinExpr{
			Connection: fmt.Sprintf("conn-%d", rng.Intn(5)),
			Param:      float64(rng.Intn(100)),
			HasParam:   rng.Intn(2) == 0,
			W:          genWeight(rng),
		}
	default:
		op := And
		if rng.Intn(2) == 0 {
			op = Or
		}
		n := 2 + rng.Intn(3)
		b := &BoolExpr{Op: op, W: genWeight(rng)}
		for i := 0; i < n; i++ {
			b.Children = append(b.Children, genExpr(rng, depth-1))
		}
		return b
	}
}

func genCond(rng *rand.Rand) *Cond {
	attr := fmt.Sprintf("attr%d", rng.Intn(6))
	c := &Cond{Attr: attr, W: genWeight(rng)}
	switch rng.Intn(4) {
	case 0:
		c.Op = OpBetween
		lo := float64(rng.Intn(50))
		c.Lo = dataset.Float(lo)
		c.Hi = dataset.Float(lo + float64(rng.Intn(50)))
	case 1:
		c.Op = OpIn
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				c.List = append(c.List, dataset.Float(float64(rng.Intn(100))))
			} else {
				c.List = append(c.List, dataset.Str(fmt.Sprintf("v%d", rng.Intn(10))))
			}
		}
	case 2:
		c.Op = []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[rng.Intn(6)]
		c.Value = dataset.Str(fmt.Sprintf("s%d quoted'", rng.Intn(5)))
		if rng.Intn(2) == 0 {
			c.DistFunc = []string{"edit", "phonetic", "substring"}[rng.Intn(3)]
		}
	default:
		c.Op = []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[rng.Intn(6)]
		c.Value = dataset.Float(float64(rng.Intn(1000)) / 10)
	}
	return c
}

func genWeight(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return 0 // default weight
	}
	return float64(1+rng.Intn(8)) / 2
}

// TestGenerativeRoundTrip: for random ASTs, String() parses back to an
// AST with an identical String() — the printer and parser agree on the
// dialect.
func TestGenerativeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 300; trial++ {
		q := &Query{
			Select: []SelectItem{{Attr: "a"}, {Agg: AggCount, Attr: "*"}},
			From:   []string{"T1", "T2"},
			Where:  genExpr(rng, 3),
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, s1, err)
		}
		s2 := q2.String()
		if s1 != s2 {
			t.Fatalf("trial %d: round trip drifted:\n  %s\n  %s", trial, s1, s2)
		}
	}
}

// TestGenerativeGradiTotal: Gradi never panics and always includes every
// leaf label for random trees.
func TestGenerativeGradiTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	for trial := 0; trial < 100; trial++ {
		q := &Query{Select: []SelectItem{{Attr: "x"}}, From: []string{"T"}, Where: genExpr(rng, 3)}
		art := Gradi(q)
		if len(art) == 0 {
			t.Fatal("empty gradi")
		}
		count := 0
		Walk(q.Where, func(Expr) { count++ })
		if count == 0 {
			t.Fatal("walk found nothing")
		}
	}
}
