package query

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// BoundAttr is an attribute reference resolved to a table and kind.
type BoundAttr struct {
	Table string
	Attr  string
	Kind  dataset.Kind
}

// Qualified returns "Table.Attr".
func (b BoundAttr) Qualified() string { return b.Table + "." + b.Attr }

// Binding is the result of resolving a query against a catalog: every
// condition attribute mapped to its table/kind, every CONNECT mapped to
// its catalog connection, and every subquery bound recursively.
type Binding struct {
	Query   *Query
	Catalog *dataset.Catalog
	Attrs   map[*Cond]BoundAttr
	Joins   map[*JoinExpr]dataset.Connection
	Subs    map[*SubqueryExpr]*Binding
	InAttrs map[*SubqueryExpr]BoundAttr
	Selects []BoundAttr // resolved non-star, non-aggregate select items
}

// Bind resolves q against cat, checking that tables, attributes and
// connections exist, that operators fit the attribute kinds, and that
// literals coerce to the attribute kinds. It corresponds to the checks
// the GRADI interface performs during interactive query construction.
func Bind(q *Query, cat *dataset.Catalog) (*Binding, error) {
	b := &Binding{
		Query:   q,
		Catalog: cat,
		Attrs:   make(map[*Cond]BoundAttr),
		Joins:   make(map[*JoinExpr]dataset.Connection),
		Subs:    make(map[*SubqueryExpr]*Binding),
		InAttrs: make(map[*SubqueryExpr]BoundAttr),
	}
	if len(q.From) == 0 {
		return nil, fmt.Errorf("query: no tables in FROM")
	}
	seen := map[string]bool{}
	for _, name := range q.From {
		if seen[name] {
			return nil, fmt.Errorf("query: table %q listed twice in FROM", name)
		}
		seen[name] = true
		if _, err := cat.Table(name); err != nil {
			return nil, err
		}
	}
	for _, item := range q.Select {
		if item.Attr == "*" {
			continue
		}
		attr, err := b.resolveAttr(item.Attr)
		if err != nil {
			return nil, err
		}
		if item.Agg == AggNone {
			b.Selects = append(b.Selects, attr)
		}
	}
	if q.Where != nil {
		if err := b.bindExpr(q.Where); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (b *Binding) bindExpr(e Expr) error {
	if e.Weight() < 0 {
		return fmt.Errorf("query: negative weight on %s", e.Label())
	}
	switch n := e.(type) {
	case *Cond:
		return b.bindCond(n)
	case *BoolExpr:
		if len(n.Children) == 0 {
			return fmt.Errorf("query: empty %s expression", n.Op)
		}
		for _, c := range n.Children {
			if err := b.bindExpr(c); err != nil {
				return err
			}
		}
		return nil
	case *Not:
		return b.bindExpr(n.Child)
	case *JoinExpr:
		conn, err := b.Catalog.Connection(n.Connection)
		if err != nil {
			return err
		}
		// Two-table queries need both sides in FROM (the approximate
		// join over the cross product). A single-table query may also
		// reference a connection touching that table: it then scores
		// each row by its inverse join-partner count (section 4.4).
		if len(b.Query.From) == 1 {
			if t := b.Query.From[0]; t != conn.Left && t != conn.Right {
				return fmt.Errorf("query: connection %q joins %s and %s, neither of which is FROM table %s",
					n.Connection, conn.Left, conn.Right, t)
			}
		} else if !b.hasFrom(conn.Left) || !b.hasFrom(conn.Right) {
			return fmt.Errorf("query: connection %q joins %s and %s, which must both appear in FROM %v",
				n.Connection, conn.Left, conn.Right, b.Query.From)
		}
		if n.HasParam {
			if n.Param < 0 {
				return fmt.Errorf("query: connection %q parameter must be non-negative", n.Connection)
			}
			conn.Param = n.Param
		}
		b.Joins[n] = conn
		return nil
	case *SubqueryExpr:
		sub, err := Bind(n.Sub, b.Catalog)
		if err != nil {
			return fmt.Errorf("query: in subquery: %w", err)
		}
		b.Subs[n] = sub
		if n.Mode == InQuery || n.Mode == NotInQuery {
			attr, err := b.resolveAttr(n.Attr)
			if err != nil {
				return err
			}
			b.InAttrs[n] = attr
			if len(sub.Selects) != 1 {
				return fmt.Errorf("query: IN subquery must select exactly one plain attribute, got %d", len(sub.Selects))
			}
		}
		return nil
	default:
		return fmt.Errorf("query: unknown expression type %T", e)
	}
}

func (b *Binding) hasFrom(table string) bool {
	for _, t := range b.Query.From {
		if t == table {
			return true
		}
	}
	return false
}

// resolveAttr resolves "Attr" or "Table.Attr" against the FROM tables.
// Unqualified names must be unambiguous.
func (b *Binding) resolveAttr(name string) (BoundAttr, error) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		tbl, attr := name[:i], name[i+1:]
		if !b.hasFrom(tbl) {
			return BoundAttr{}, fmt.Errorf("query: table %q of %q not in FROM %v", tbl, name, b.Query.From)
		}
		t, err := b.Catalog.Table(tbl)
		if err != nil {
			return BoundAttr{}, err
		}
		idx := t.Schema().Index(attr)
		if idx < 0 {
			return BoundAttr{}, fmt.Errorf("query: table %s has no attribute %q", tbl, attr)
		}
		return BoundAttr{Table: tbl, Attr: attr, Kind: t.Schema()[idx].Kind}, nil
	}
	var found []BoundAttr
	for _, tbl := range b.Query.From {
		t, err := b.Catalog.Table(tbl)
		if err != nil {
			return BoundAttr{}, err
		}
		if idx := t.Schema().Index(name); idx >= 0 {
			found = append(found, BoundAttr{Table: tbl, Attr: name, Kind: t.Schema()[idx].Kind})
		}
	}
	switch len(found) {
	case 0:
		return BoundAttr{}, fmt.Errorf("query: no table in FROM %v has attribute %q", b.Query.From, name)
	case 1:
		return found[0], nil
	default:
		var opts []string
		for _, f := range found {
			opts = append(opts, f.Qualified())
		}
		return BoundAttr{}, fmt.Errorf("query: attribute %q is ambiguous (%s)", name, strings.Join(opts, ", "))
	}
}

func (b *Binding) bindCond(c *Cond) error {
	attr, err := b.resolveAttr(c.Attr)
	if err != nil {
		return err
	}
	b.Attrs[c] = attr
	// Operator admissibility per kind: ordered comparisons need an
	// ordered kind; nominal attributes only support =, <>, IN.
	ordered := attr.Kind.IsNumeric() || attr.Kind == dataset.KindOrdinal || attr.Kind == dataset.KindString
	switch c.Op {
	case OpLt, OpLe, OpGt, OpGe, OpBetween:
		if !ordered || attr.Kind == dataset.KindBool {
			return fmt.Errorf("query: operator %s needs an ordered attribute, %s is %v", c.Op, attr.Qualified(), attr.Kind)
		}
	}
	check := func(v dataset.Value, what string) error {
		if v.Null {
			return fmt.Errorf("query: NULL literal not allowed in %s of %s (use IS NULL semantics via baseline)", what, attr.Qualified())
		}
		return coercible(attr.Kind, v, attr.Qualified())
	}
	switch c.Op {
	case OpBetween:
		if err := check(c.Lo, "BETWEEN lower bound"); err != nil {
			return err
		}
		if err := check(c.Hi, "BETWEEN upper bound"); err != nil {
			return err
		}
		lo, lok := c.Lo.AsFloat()
		hi, hok := c.Hi.AsFloat()
		if lok && hok && lo > hi {
			return fmt.Errorf("query: BETWEEN bounds reversed on %s (%g > %g)", attr.Qualified(), lo, hi)
		}
	case OpIn:
		if len(c.List) == 0 {
			return fmt.Errorf("query: empty IN list on %s", attr.Qualified())
		}
		for _, v := range c.List {
			if err := check(v, "IN list"); err != nil {
				return err
			}
		}
	default:
		if err := check(c.Value, "comparison"); err != nil {
			return err
		}
	}
	return nil
}

// coercible checks that literal v can serve as a comparison operand for
// a column of kind k.
func coercible(k dataset.Kind, v dataset.Value, attr string) error {
	switch {
	case k == dataset.KindTime:
		if v.Kind != dataset.KindTime {
			return fmt.Errorf("query: %s is a time attribute; literal %s is not a time", attr, v)
		}
	case k.IsNumeric():
		if _, ok := v.AsFloat(); !ok {
			return fmt.Errorf("query: %s is numeric; literal %q is not", attr, v.String())
		}
	case k.IsStringy():
		if !v.Kind.IsStringy() {
			return fmt.Errorf("query: %s is %v; literal %s is not a string", attr, k, v)
		}
	}
	return nil
}
