package query

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/dataset"
)

// Parse parses a query in the VisDB dialect:
//
//	SELECT Temperature, Solar_Radiation, Humidity, Ozone
//	FROM Weather, Air-Pollution
//	WHERE (Temperature > 15.0 OR Solar_Radiation > 600 OR Humidity < 60)
//	  AND CONNECT with-time-diff(120)
//
// Conditions accept `WEIGHT n` suffixes (the paper's weighting factors),
// `USING fn` distance-function selectors, BETWEEN, IN (value list or
// subquery), EXISTS (subquery) and CONNECT for named approximate joins.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		t := p.peek()
		return nil, fmt.Errorf("query: trailing input %q at offset %d", t.text, t.pos)
	}
	return q, nil
}

// ParseExpr parses a bare condition expression (no SELECT/FROM), which
// the interactive session uses for incremental query edits.
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		t := p.peek()
		return nil, fmt.Errorf("query: trailing input %q at offset %d", t.text, t.pos)
	}
	return e, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// at reports whether the current token matches kind (and text, when
// non-empty).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.peek()
	return token{}, fmt.Errorf("query: expected %q, found %q at offset %d", text, t.text, t.pos)
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("query: expected table name, found %q at offset %d", t.text, t.pos)
		}
		q.From = append(q.From, p.next().text)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.text == "*" {
		p.next()
		return SelectItem{Attr: "*"}, nil
	}
	if t.kind == tokKeyword {
		var agg Agg
		switch t.text {
		case "AVG":
			agg = AggAvg
		case "SUM":
			agg = AggSum
		case "MAX":
			agg = AggMax
		case "MIN":
			agg = AggMin
		case "COUNT":
			agg = AggCount
		default:
			return SelectItem{}, fmt.Errorf("query: unexpected keyword %q in result list at offset %d", t.text, t.pos)
		}
		p.next()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return SelectItem{}, err
		}
		var attr string
		if p.accept(tokSymbol, "*") {
			attr = "*"
		} else {
			a, err := p.parseAttr()
			if err != nil {
				return SelectItem{}, err
			}
			attr = a
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Agg: agg, Attr: attr}, nil
	}
	attr, err := p.parseAttr()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Attr: attr}, nil
}

// parseAttr parses `ident` or `ident.ident`.
func (p *parser) parseAttr() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("query: expected attribute, found %q at offset %d", t.text, t.pos)
	}
	name := p.next().text
	if p.accept(tokSymbol, ".") {
		t2 := p.peek()
		if t2.kind != tokIdent {
			return "", fmt.Errorf("query: expected attribute after '.', found %q at offset %d", t2.text, t2.pos)
		}
		name += "." + p.next().text
	}
	return name, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	if !p.at(tokKeyword, "OR") {
		return left, nil
	}
	node := &BoolExpr{Op: Or, Children: []Expr{left}}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, right)
	}
	return node, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if !p.at(tokKeyword, "AND") {
		return left, nil
	}
	node := &BoolExpr{Op: And, Children: []Expr{left}}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, right)
	}
	return node, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		// NOT EXISTS / NOT IN fold into subquery modes during primary
		// parsing, so only general negation lands here.
		if p.at(tokKeyword, "EXISTS") {
			sub, err := p.parseExists()
			if err != nil {
				return nil, err
			}
			sub.Mode = NotExists
			return p.withWeight(sub)
		}
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return p.withWeight(&Not{Child: child})
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return p.withWeight(e)
	case t.kind == tokKeyword && t.text == "EXISTS":
		sub, err := p.parseExists()
		if err != nil {
			return nil, err
		}
		return p.withWeight(sub)
	case t.kind == tokKeyword && t.text == "CONNECT":
		p.next()
		nt := p.peek()
		if nt.kind != tokIdent {
			return nil, fmt.Errorf("query: expected connection name after CONNECT at offset %d", nt.pos)
		}
		j := &JoinExpr{Connection: p.next().text}
		if p.accept(tokSymbol, "(") {
			num, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			j.Param = num
			j.HasParam = true
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		}
		return p.withWeight(j)
	case t.kind == tokIdent:
		return p.parseCondition()
	default:
		return nil, fmt.Errorf("query: unexpected %q at offset %d", t.text, t.pos)
	}
}

func (p *parser) parseExists() (*SubqueryExpr, error) {
	if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	sub, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &SubqueryExpr{Mode: Exists, Sub: sub}, nil
}

func (p *parser) parseCondition() (Expr, error) {
	attr, err := p.parseAttr()
	if err != nil {
		return nil, err
	}
	// attr NOT IN (...)
	if p.accept(tokKeyword, "NOT") {
		if _, err := p.expect(tokKeyword, "IN"); err != nil {
			return nil, err
		}
		return p.parseInTail(attr, true)
	}
	if p.accept(tokKeyword, "IN") {
		return p.parseInTail(attr, false)
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		c := &Cond{Attr: attr, Op: OpBetween, Lo: lo, Hi: hi}
		return p.withSuffixes(c)
	}
	t := p.peek()
	if t.kind != tokSymbol {
		return nil, fmt.Errorf("query: expected comparison operator after %q at offset %d", attr, t.pos)
	}
	var op Op
	switch t.text {
	case "=":
		op = OpEq
	case "<>", "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return nil, fmt.Errorf("query: unexpected operator %q at offset %d", t.text, t.pos)
	}
	p.next()
	v, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	c := &Cond{Attr: attr, Op: op, Value: v}
	return p.withSuffixes(c)
}

// parseInTail parses the remainder of `attr [NOT] IN (` — either a value
// list or a subquery.
func (p *parser) parseInTail(attr string, negated bool) (Expr, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	if p.at(tokKeyword, "SELECT") {
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		mode := InQuery
		if negated {
			mode = NotInQuery
		}
		return p.withWeight(&SubqueryExpr{Mode: mode, Attr: attr, Sub: sub})
	}
	var list []dataset.Value
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		list = append(list, v)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	var e Expr = &Cond{Attr: attr, Op: OpIn, List: list}
	e, err := p.withSuffixes(e.(*Cond))
	if err != nil {
		return nil, err
	}
	if negated {
		return &Not{Child: e}, nil
	}
	return e, nil
}

// withSuffixes consumes optional `USING fn` and `WEIGHT n` after a
// simple condition.
func (p *parser) withSuffixes(c *Cond) (Expr, error) {
	if p.accept(tokKeyword, "USING") {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("query: expected distance function after USING at offset %d", t.pos)
		}
		c.DistFunc = p.next().text
	}
	return p.withWeight(c)
}

// withWeight consumes an optional `WEIGHT n` suffix for any expression.
func (p *parser) withWeight(e Expr) (Expr, error) {
	if p.accept(tokKeyword, "WEIGHT") {
		w, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if w < 0 {
			return nil, fmt.Errorf("query: negative weight %g", w)
		}
		e.SetWeight(w)
	}
	return e, nil
}

func (p *parser) parseNumber() (float64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("query: expected number, found %q at offset %d", t.text, t.pos)
	}
	p.next()
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad number %q at offset %d: %w", t.text, t.pos, err)
	}
	return f, nil
}

// parseLiteral parses a number, quoted string (which may later bind as a
// time), TRUE/FALSE or NULL.
func (p *parser) parseLiteral() (dataset.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return dataset.Value{}, fmt.Errorf("query: bad number %q: %w", t.text, err)
		}
		return dataset.Float(f), nil
	case t.kind == tokString:
		p.next()
		// Strings that look like RFC 3339 instants become time values so
		// time predicates read naturally.
		if ts, err := time.Parse(time.RFC3339, t.text); err == nil {
			return dataset.Time(ts), nil
		}
		return dataset.Str(t.text), nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return dataset.Bool(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return dataset.Bool(false), nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return dataset.Null(dataset.KindFloat), nil
	default:
		return dataset.Value{}, fmt.Errorf("query: expected literal, found %q at offset %d", t.text, t.pos)
	}
}
