package query_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/session"
)

// fuzzQueries are the structurally distinct queries the SetQuery op
// rotates through: plain conjunction, weighted disjunction, and a
// negation plus string predicate (boolean fallback and edit distance).
var fuzzQueries = []string{
	`SELECT a FROM T WHERE a > 5 AND b < 7`,
	`SELECT a FROM T WHERE a BETWEEN 2 AND 6 OR b > 3 WEIGHT 2`,
	`SELECT a FROM T WHERE NOT (a IN (1, 3)) AND name = 'kappa' USING edit`,
}

func fuzzCatalog(t *testing.T) *dataset.Catalog {
	t.Helper()
	tbl, err := dataset.NewTable("T", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
		{Name: "b", Kind: dataset.KindFloat},
		{Name: "name", Kind: dataset.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"kappa", "kappe", "gamma", "delta"}
	for i := 0; i < 64; i++ {
		if err := tbl.AppendRow(
			dataset.Float(float64(i*i%23)),
			dataset.Float(float64((i*7+3)%11)),
			dataset.Str(names[i%len(names)]),
		); err != nil {
			t.Fatal(err)
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

// FuzzInteractionSequence drives arbitrary interaction scripts —
// SetRange (valid and invalid), SetWeight, Undo, SetQuery, the
// auto-recalculate toggle, percent-displayed and median/deviation
// sliders — through a cached session and checks the session-machine
// invariants: no panic, Dirty is exactly "modified and not yet
// recalculated under auto-recalc off", a Result is always served, and
// the cache keys are stable (an unmodified rerun at the end must hit
// the cache on every leaf, whatever state the script left behind).
func FuzzInteractionSequence(f *testing.F) {
	f.Add([]byte{0, 3, 9})
	f.Add([]byte{1, 0, 2, 0, 4, 12, 2, 0, 0})
	f.Add([]byte{3, 1, 0, 4, 0, 0, 3, 2, 0, 2, 0, 0})
	f.Add([]byte{4, 1, 0, 0, 200, 1, 5, 11, 0, 4, 0, 0})
	f.Add([]byte{6, 4, 3, 6, 0, 0, 0, 7, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		cat := fuzzCatalog(t)
		s, err := session.NewSQL(cat, nil, core.Options{GridW: 8, GridH: 8}, fuzzQueries[0])
		if err != nil {
			t.Fatal(err)
		}
		attrs := []string{"a", "b"}
		for i := 0; i+2 < len(script) && i < 3*24; i += 3 {
			op, x, y := script[i], int(script[i+1]), int(script[i+2])
			switch op % 7 {
			case 0: // range drag; hi < lo must be rejected without mutation
				c, err := s.FindCond(attrs[x%2])
				if err != nil {
					continue
				}
				lo := float64(x%20) - 2
				hi := lo + float64(y%10) - 1
				before := c.Label()
				if err := s.SetRange(c, lo, hi); err != nil && c.Label() != before {
					t.Fatalf("rejected SetRange mutated %q -> %q", before, c.Label())
				}
			case 1: // weight; negative must be rejected without mutation
				preds := query.Predicates(s.Query().Where)
				p := preds[x%len(preds)]
				w := float64(y%5) - 1
				before := p.Weight()
				if err := s.SetWeight(p, w); err != nil && p.Weight() != before {
					t.Fatalf("rejected SetWeight mutated weight %v -> %v", before, p.Weight())
				}
			case 2:
				if !s.CanUndo() {
					continue
				}
				if err := s.Undo(); err != nil {
					t.Fatalf("undo: %v", err)
				}
			case 3:
				if err := s.SetQuery(fuzzQueries[x%len(fuzzQueries)]); err != nil {
					t.Fatalf("SetQuery: %v", err)
				}
			case 4:
				if err := s.SetAutoRecalc(x%2 == 0); err != nil {
					t.Fatalf("SetAutoRecalc: %v", err)
				}
			case 5:
				pct := float64(x%12) / 10 // > 1 must be rejected
				if err := s.SetPercentDisplayed(pct); err != nil && pct <= 1 {
					t.Fatalf("SetPercentDisplayed(%v): %v", pct, err)
				}
			case 6:
				c, err := s.FindCond("a")
				if err != nil {
					continue
				}
				if err := s.SetMedianDeviation(c, float64(x%10), float64(y%5)); err != nil {
					t.Fatalf("SetMedianDeviation: %v", err)
				}
			}
			// Dirty consistency: auto-recalc mode never leaves pending
			// modifications behind a served Result.
			if s.AutoRecalc() && s.Dirty() {
				t.Fatal("session dirty with auto-recalculate on")
			}
			if s.Result() == nil {
				t.Fatal("session lost its result")
			}
		}
		// Drain any pending recalculation, then check key stability: a
		// rerun of the unmodified query must serve every leaf from the
		// cache — structural keys survive whatever sequence of drags,
		// undos (reparsed ASTs) and query swaps the script performed.
		if err := s.SetAutoRecalc(true); err != nil {
			t.Fatalf("final SetAutoRecalc: %v", err)
		}
		if s.Dirty() {
			t.Fatal("dirty after SetAutoRecalc(true)")
		}
		if err := s.Recalculate(); err != nil {
			t.Fatalf("settle recalc: %v", err)
		}
		if err := s.Recalculate(); err != nil {
			t.Fatalf("stability recalc: %v", err)
		}
		if tm := s.Result().Timings; tm.CacheMisses != 0 {
			t.Fatalf("cache keys unstable: unmodified rerun missed %d leaves (hits %d)",
				tm.CacheMisses, tm.CacheHits)
		}
	})
}
