package query

import (
	"fmt"
	"strings"
)

// Gradi renders the GRADI query-representation window (figure 3) as
// ASCII art: a tree whose leaves are the selection predicate boxes.
// Simple conditions render in single boxes [..], subqueries in double
// boxes [[..]], matching "simple conditions by a single, subqueries by a
// double box". The representation "is available to the user during the
// whole process of data mining to provide an overview of the actual
// query" (section 4.4).
func Gradi(q *Query) string {
	var b strings.Builder
	b.WriteString("Query Representation\n")
	b.WriteString("====================\n")
	fmt.Fprintf(&b, "Result List: ")
	if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		parts := make([]string, len(q.Select))
		for i, s := range q.Select {
			parts[i] = s.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "From: %s\n", strings.Join(q.From, ", "))
	if q.Where == nil {
		b.WriteString("(no condition)\n")
		return b.String()
	}
	renderNode(&b, q.Where, "", true, true)
	return b.String()
}

// GradiExpr renders just a condition tree, used when the user
// double-clicks a boolean operator box to drill into a query part
// (figures 4 → 5).
func GradiExpr(e Expr) string {
	var b strings.Builder
	renderNode(&b, e, "", true, true)
	return b.String()
}

func renderNode(b *strings.Builder, e Expr, prefix string, isLast, isRoot bool) {
	connector := "├── "
	childPrefix := prefix + "│   "
	if isLast {
		connector = "└── "
		childPrefix = prefix + "    "
	}
	if isRoot {
		connector = ""
		childPrefix = ""
	}
	b.WriteString(prefix)
	b.WriteString(connector)
	b.WriteString(boxLabel(e))
	if w := e.Weight(); w != 1 {
		fmt.Fprintf(b, "  (weight %g)", w)
	}
	b.WriteByte('\n')
	switch n := e.(type) {
	case *BoolExpr:
		for i, c := range n.Children {
			renderNode(b, c, childPrefix, i == len(n.Children)-1, false)
		}
	case *Not:
		renderNode(b, n.Child, childPrefix, true, false)
	case *SubqueryExpr:
		// Show the nested query's own representation indented beneath
		// the double box.
		sub := Gradi(n.Sub)
		for _, line := range strings.Split(strings.TrimRight(sub, "\n"), "\n") {
			b.WriteString(childPrefix)
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
}

func boxLabel(e Expr) string {
	switch n := e.(type) {
	case *Cond:
		return "[" + n.Label() + "]"
	case *SubqueryExpr:
		return "[[" + n.Label() + "]]"
	case *JoinExpr:
		return "[" + n.Label() + "]"
	case *Not:
		return "NOT"
	case *BoolExpr:
		return n.Op.String()
	default:
		return e.Label()
	}
}
