package query

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical token classes of the query dialect.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , . = <> != < <= > >= *
)

// token is one lexical token with its source position for error
// reporting.
type token struct {
	kind tokenKind
	text string // keywords upper-cased; symbols verbatim
	pos  int    // byte offset in the input
}

// keywords of the dialect, upper-case.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true,
	"EXISTS": true, "IN": true, "BETWEEN": true,
	"WEIGHT": true, "USING": true, "CONNECT": true,
	"AVG": true, "SUM": true, "MAX": true, "MIN": true, "COUNT": true,
	"TRUE": true, "FALSE": true, "NULL": true,
}

// lex tokenizes src. Identifiers may contain letters, digits, '_' and
// interior '-' (the paper's connection names look like
// `with-time-diff`); strings are single-quoted with ” escaping.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isLetter(c):
			start := i
			for i < n && (isLetter(src[i]) || isDigit(src[i]) || src[i] == '_' ||
				(src[i] == '-' && i+1 < n && (isLetter(src[i+1]) || isDigit(src[i+1])))) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case isDigit(c) || (c == '-' && i+1 < n && isDigit(src[i+1])) ||
			(c == '.' && i+1 < n && isDigit(src[i+1])):
			start := i
			if c == '-' {
				i++
			}
			for i < n && (isDigit(src[i]) || src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
				((src[i] == '+' || src[i] == '-') && i > start && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("query: unterminated string starting at offset %d", start)
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c == '<':
			if i+1 < n && (src[i+1] == '=' || src[i+1] == '>') {
				toks = append(toks, token{tokSymbol, src[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokSymbol, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokSymbol, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: unexpected '!' at offset %d", i)
			}
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '=' || c == '*':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
