// Package query implements the query substrate of the VisDB
// reproduction: an AST for SQL-like queries with per-predicate weighting
// factors, a text parser for them, a binder that resolves names and
// types against a dataset catalog, and an ASCII renderer of the GRADI
// query-representation window (figure 3 of the paper), where "each part
// of the query is represented by a small box, simple conditions by a
// single, subqueries by a double box".
package query

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Op is a comparison operator of a simple condition.
type Op int

const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween
	OpIn // value list; subquery IN is SubqueryExpr
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "BETWEEN"
	case OpIn:
		return "IN"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Invert returns the negation-inverted operator per section 4.4 of the
// paper: only {<, <=, >, >=} are invertible; ok is false otherwise
// ("in most cases where negations are used ... no distance values may be
// obtained").
func (o Op) Invert() (Op, bool) {
	switch o {
	case OpLt:
		return OpGe, true
	case OpLe:
		return OpGt, true
	case OpGt:
		return OpLe, true
	case OpGe:
		return OpLt, true
	default:
		return o, false
	}
}

// Expr is a node of the query condition tree. The concrete types are
// *Cond, *BoolExpr, *Not, *JoinExpr and *SubqueryExpr.
type Expr interface {
	// Weight returns the node's weighting factor (section 5.2).
	Weight() float64
	// SetWeight updates the weighting factor (interactive modification).
	SetWeight(w float64)
	// String renders the node in the parseable query dialect.
	String() string
	// Label is the short caption used in the GRADI representation.
	Label() string
}

// Cond is a simple selection predicate on one attribute.
type Cond struct {
	Attr  string // "Attr" or "Table.Attr"
	Op    Op
	Value dataset.Value   // operand for scalar ops
	Lo    dataset.Value   // BETWEEN lower bound
	Hi    dataset.Value   // BETWEEN upper bound
	List  []dataset.Value // IN list
	// DistFunc optionally names a registered distance function
	// ("Name = 'Smith' USING phonetic").
	DistFunc string
	W        float64
}

// Weight implements Expr; an unset weight reads as 1.
func (c *Cond) Weight() float64 {
	if c.W == 0 {
		return 1
	}
	return c.W
}

// SetWeight implements Expr.
func (c *Cond) SetWeight(w float64) { c.W = w }

// String implements Expr.
func (c *Cond) String() string {
	var b strings.Builder
	b.WriteString(c.Attr)
	switch c.Op {
	case OpBetween:
		fmt.Fprintf(&b, " BETWEEN %s AND %s", lit(c.Lo), lit(c.Hi))
	case OpIn:
		parts := make([]string, len(c.List))
		for i, v := range c.List {
			parts[i] = lit(v)
		}
		fmt.Fprintf(&b, " IN (%s)", strings.Join(parts, ", "))
	default:
		fmt.Fprintf(&b, " %s %s", c.Op, lit(c.Value))
	}
	if c.DistFunc != "" {
		fmt.Fprintf(&b, " USING %s", c.DistFunc)
	}
	if c.W != 0 && c.W != 1 {
		fmt.Fprintf(&b, " WEIGHT %g", c.W)
	}
	return b.String()
}

// Label implements Expr.
func (c *Cond) Label() string {
	s := c.String()
	if i := strings.Index(s, " WEIGHT "); i >= 0 {
		s = s[:i]
	}
	return s
}

// BoolOp is the connective of a BoolExpr.
type BoolOp int

const (
	// And combines children with the weighted arithmetic mean.
	And BoolOp = iota
	// Or combines children with the weighted geometric mean.
	Or
)

// String implements fmt.Stringer.
func (b BoolOp) String() string {
	if b == Or {
		return "OR"
	}
	return "AND"
}

// BoolExpr combines children with AND or OR.
type BoolExpr struct {
	Op       BoolOp
	Children []Expr
	W        float64
}

// Weight implements Expr.
func (b *BoolExpr) Weight() float64 {
	if b.W == 0 {
		return 1
	}
	return b.W
}

// SetWeight implements Expr.
func (b *BoolExpr) SetWeight(w float64) { b.W = w }

// String implements Expr.
func (b *BoolExpr) String() string {
	parts := make([]string, len(b.Children))
	for i, c := range b.Children {
		s := c.String()
		if child, ok := c.(*BoolExpr); ok && child.Op != b.Op {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	s := strings.Join(parts, " "+b.Op.String()+" ")
	if b.W != 0 && b.W != 1 {
		s = "(" + s + ") WEIGHT " + fmt.Sprintf("%g", b.W)
	}
	return s
}

// Label implements Expr.
func (b *BoolExpr) Label() string { return b.Op.String() }

// Not negates a child expression.
type Not struct {
	Child Expr
	W     float64
}

// Weight implements Expr.
func (n *Not) Weight() float64 {
	if n.W == 0 {
		return 1
	}
	return n.W
}

// SetWeight implements Expr.
func (n *Not) SetWeight(w float64) { n.W = w }

// String implements Expr.
func (n *Not) String() string { return "NOT (" + n.Child.String() + ")" }

// Label implements Expr.
func (n *Not) Label() string { return "NOT" }

// JoinExpr references a catalog connection — an approximate join
// (section 4.4). The optional parameter overrides the connection's
// default (e.g. `with-time-diff(120)`).
type JoinExpr struct {
	Connection string
	Param      float64
	HasParam   bool
	W          float64
}

// Weight implements Expr.
func (j *JoinExpr) Weight() float64 {
	if j.W == 0 {
		return 1
	}
	return j.W
}

// SetWeight implements Expr.
func (j *JoinExpr) SetWeight(w float64) { j.W = w }

// String implements Expr.
func (j *JoinExpr) String() string {
	s := "CONNECT " + j.Connection
	if j.HasParam {
		s += fmt.Sprintf("(%g)", j.Param)
	}
	if j.W != 0 && j.W != 1 {
		s += fmt.Sprintf(" WEIGHT %g", j.W)
	}
	return s
}

// Label implements Expr.
func (j *JoinExpr) Label() string {
	s := "CONNECT " + j.Connection
	if j.HasParam {
		s += fmt.Sprintf("(%g)", j.Param)
	}
	return s
}

// SubqueryMode distinguishes the nesting operators.
type SubqueryMode int

const (
	// Exists scores the minimum distance over the inner relation
	// (section 4.4).
	Exists SubqueryMode = iota
	// NotExists is uncolorable (negation).
	NotExists
	// InQuery is `attr IN (SELECT ...)`.
	InQuery
	// NotInQuery is uncolorable (negation).
	NotInQuery
)

// SubqueryExpr is a nested query connected with EXISTS or IN.
type SubqueryExpr struct {
	Mode SubqueryMode
	Attr string // outer attribute for InQuery modes
	Sub  *Query
	W    float64
}

// Weight implements Expr.
func (s *SubqueryExpr) Weight() float64 {
	if s.W == 0 {
		return 1
	}
	return s.W
}

// SetWeight implements Expr.
func (s *SubqueryExpr) SetWeight(w float64) { s.W = w }

// String implements Expr.
func (s *SubqueryExpr) String() string {
	switch s.Mode {
	case Exists:
		return "EXISTS (" + s.Sub.String() + ")"
	case NotExists:
		return "NOT EXISTS (" + s.Sub.String() + ")"
	case InQuery:
		return s.Attr + " IN (" + s.Sub.String() + ")"
	default:
		return s.Attr + " NOT IN (" + s.Sub.String() + ")"
	}
}

// Label implements Expr.
func (s *SubqueryExpr) Label() string {
	switch s.Mode {
	case Exists:
		return "EXISTS subquery"
	case NotExists:
		return "NOT EXISTS subquery"
	case InQuery:
		return s.Attr + " IN subquery"
	default:
		return s.Attr + " NOT IN subquery"
	}
}

// Agg enumerates the aggregate operators of the result list tool box.
type Agg int

const (
	AggNone Agg = iota
	AggAvg
	AggSum
	AggMax
	AggMin
	AggCount
)

// String implements fmt.Stringer.
func (a Agg) String() string {
	switch a {
	case AggAvg:
		return "AVG"
	case AggSum:
		return "SUM"
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	case AggCount:
		return "COUNT"
	default:
		return ""
	}
}

// SelectItem is one entry of the result list.
type SelectItem struct {
	Agg  Agg
	Attr string // "*" allowed with AggCount or alone
}

// String implements fmt.Stringer.
func (s SelectItem) String() string {
	if s.Agg == AggNone {
		return s.Attr
	}
	return fmt.Sprintf("%s(%s)", s.Agg, s.Attr)
}

// Query is a full query: result list, table list and condition tree.
type Query struct {
	Select []SelectItem
	From   []string
	Where  Expr // nil means no condition
}

// String renders the query in the parseable dialect.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		parts := make([]string, len(q.Select))
		for i, s := range q.Select {
			parts[i] = s.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.From, ", "))
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	return b.String()
}

// lit renders a literal value in the dialect (strings quoted, times as
// quoted RFC 3339).
func lit(v dataset.Value) string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case dataset.KindString, dataset.KindOrdinal, dataset.KindNominal:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case dataset.KindTime:
		return "'" + v.String() + "'"
	default:
		return v.String()
	}
}

// Predicates returns the top-level selection predicates of an
// expression: the children of the root boolean operator, or the node
// itself when the root is a leaf. These are the parts that get their own
// visualization windows ("we generate a separate window for each
// selection predicate of the query", section 3).
func Predicates(e Expr) []Expr {
	if b, ok := e.(*BoolExpr); ok {
		return b.Children
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// Walk visits every node of the expression tree in depth-first preorder,
// including subquery conditions.
func Walk(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *BoolExpr:
		for _, c := range n.Children {
			Walk(c, visit)
		}
	case *Not:
		Walk(n.Child, visit)
	case *SubqueryExpr:
		if n.Sub != nil {
			Walk(n.Sub.Where, visit)
		}
	}
}
