package query

import (
	"testing"
)

// FuzzParse: the parser must never panic, and anything it accepts must
// round-trip through String() to an equivalent query.
func FuzzParse(f *testing.F) {
	seeds := []string{
		paperQuery,
		`SELECT * FROM T`,
		`SELECT a, b FROM T WHERE a > 1 WEIGHT 2`,
		`SELECT x FROM A, B WHERE CONNECT with-time-diff(120) AND x IN (1,2)`,
		`SELECT x FROM T WHERE name = 'O''Brien' USING phonetic`,
		`SELECT AVG(x), COUNT(*) FROM T WHERE (a > 1 OR b < 2) AND NOT (c = 3)`,
		`SELECT x FROM T WHERE EXISTS (SELECT y FROM B WHERE y > 3)`,
		`SELECT x FROM T WHERE ts > '1994-02-14T08:00:00Z'`,
		`SELECT x FROM T WHERE a BETWEEN -1.5e3 AND 2E-2`,
		"SELECT \x00 FROM T",
		`SELECT x FROM T WHERE a > 1 AND`,
		`'''''`,
		`SELECT x FROM T WHERE x NOT IN (SELECT y FROM B)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", src, s1, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Fatalf("unstable rendering:\n  %s\n  %s", s1, s2)
		}
	})
}

// FuzzGradi: the representation renderer is total over parsed queries.
func FuzzGradi(f *testing.F) {
	f.Add(`SELECT x FROM T WHERE a > 1 AND (b < 2 OR c = 3)`)
	f.Add(`SELECT x FROM T`)
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if out := Gradi(q); len(out) == 0 {
			t.Fatal("empty gradi output")
		}
	})
}
