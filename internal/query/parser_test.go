package query

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

// paperQuery is the example query of section 4.1 in the text dialect.
const paperQuery = `
SELECT Temperature, Solar_Radiation, Humidity, Ozone
FROM Weather, Air-Pollution
WHERE (Temperature > 15.0 OR Solar_Radiation > 600 OR Humidity < 60)
  AND CONNECT with-time-diff(120)`

func TestParsePaperQuery(t *testing.T) {
	q, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 4 || q.Select[0].Attr != "Temperature" {
		t.Fatalf("select: %+v", q.Select)
	}
	if len(q.From) != 2 || q.From[1] != "Air-Pollution" {
		t.Fatalf("from: %+v", q.From)
	}
	root, ok := q.Where.(*BoolExpr)
	if !ok || root.Op != And || len(root.Children) != 2 {
		t.Fatalf("root: %#v", q.Where)
	}
	orPart, ok := root.Children[0].(*BoolExpr)
	if !ok || orPart.Op != Or || len(orPart.Children) != 3 {
		t.Fatalf("or part: %#v", root.Children[0])
	}
	c0 := orPart.Children[0].(*Cond)
	if c0.Attr != "Temperature" || c0.Op != OpGt || c0.Value.F != 15.0 {
		t.Fatalf("cond 0: %+v", c0)
	}
	join, ok := root.Children[1].(*JoinExpr)
	if !ok || join.Connection != "with-time-diff" || !join.HasParam || join.Param != 120 {
		t.Fatalf("join: %#v", root.Children[1])
	}
}

func TestParseWeightsAndUsing(t *testing.T) {
	q, err := Parse(`SELECT * FROM T WHERE Name = 'Smith' USING phonetic WEIGHT 2 AND Age > 30 WEIGHT 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	root := q.Where.(*BoolExpr)
	c0 := root.Children[0].(*Cond)
	if c0.DistFunc != "phonetic" || c0.Weight() != 2 {
		t.Fatalf("c0: %+v", c0)
	}
	c1 := root.Children[1].(*Cond)
	if c1.Weight() != 0.5 {
		t.Fatalf("c1 weight: %v", c1.Weight())
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	q, err := Parse(`SELECT * FROM T WHERE x BETWEEN 1 AND 5 AND color IN ('red', 'blue')`)
	if err != nil {
		t.Fatal(err)
	}
	root := q.Where.(*BoolExpr)
	b := root.Children[0].(*Cond)
	if b.Op != OpBetween || b.Lo.F != 1 || b.Hi.F != 5 {
		t.Fatalf("between: %+v", b)
	}
	in := root.Children[1].(*Cond)
	if in.Op != OpIn || len(in.List) != 2 || in.List[0].S != "red" {
		t.Fatalf("in: %+v", in)
	}
}

func TestParseSubqueries(t *testing.T) {
	q, err := Parse(`SELECT * FROM A WHERE EXISTS (SELECT y FROM B WHERE y > 3) WEIGHT 2`)
	if err != nil {
		t.Fatal(err)
	}
	sub := q.Where.(*SubqueryExpr)
	if sub.Mode != Exists || sub.Weight() != 2 || sub.Sub.From[0] != "B" {
		t.Fatalf("exists: %+v", sub)
	}
	q, err = Parse(`SELECT * FROM A WHERE x IN (SELECT y FROM B)`)
	if err != nil {
		t.Fatal(err)
	}
	sub = q.Where.(*SubqueryExpr)
	if sub.Mode != InQuery || sub.Attr != "x" {
		t.Fatalf("in-query: %+v", sub)
	}
	q, err = Parse(`SELECT * FROM A WHERE x NOT IN (SELECT y FROM B)`)
	if err != nil {
		t.Fatal(err)
	}
	sub = q.Where.(*SubqueryExpr)
	if sub.Mode != NotInQuery {
		t.Fatalf("not-in: %+v", sub)
	}
	q, err = Parse(`SELECT * FROM A WHERE NOT EXISTS (SELECT y FROM B)`)
	if err != nil {
		t.Fatal(err)
	}
	sub = q.Where.(*SubqueryExpr)
	if sub.Mode != NotExists {
		t.Fatalf("not-exists: %+v", sub)
	}
}

func TestParseNotAndPrecedence(t *testing.T) {
	q, err := Parse(`SELECT * FROM T WHERE a > 1 OR b > 2 AND c > 3`)
	if err != nil {
		t.Fatal(err)
	}
	// AND binds tighter: OR(a>1, AND(b>2, c>3)).
	root := q.Where.(*BoolExpr)
	if root.Op != Or || len(root.Children) != 2 {
		t.Fatalf("root: %#v", root)
	}
	if inner, ok := root.Children[1].(*BoolExpr); !ok || inner.Op != And {
		t.Fatalf("inner: %#v", root.Children[1])
	}
	q, err = Parse(`SELECT * FROM T WHERE NOT (a > 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Where.(*Not); !ok {
		t.Fatalf("not: %#v", q.Where)
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse(`SELECT AVG(x), COUNT(*), MAX(T.y) FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Agg != AggAvg || q.Select[0].Attr != "x" {
		t.Fatalf("avg: %+v", q.Select[0])
	}
	if q.Select[1].Agg != AggCount || q.Select[1].Attr != "*" {
		t.Fatalf("count: %+v", q.Select[1])
	}
	if q.Select[2].Agg != AggMax || q.Select[2].Attr != "T.y" {
		t.Fatalf("max: %+v", q.Select[2])
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := Parse(`SELECT * FROM T WHERE ts = '1994-02-14T08:00:00Z' AND ok = TRUE AND bad = FALSE`)
	if err != nil {
		t.Fatal(err)
	}
	root := q.Where.(*BoolExpr)
	if root.Children[0].(*Cond).Value.Kind != dataset.KindTime {
		t.Error("RFC3339 string should parse as time")
	}
	if !root.Children[1].(*Cond).Value.B {
		t.Error("TRUE literal")
	}
	if root.Children[2].(*Cond).Value.B {
		t.Error("FALSE literal")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT x`,
		`SELECT x FROM`,
		`SELECT x FROM T WHERE`,
		`SELECT x FROM T WHERE x >`,
		`SELECT x FROM T WHERE x ! 3`,
		`SELECT x FROM T WHERE x = 'unterminated`,
		`SELECT x FROM T WHERE x IN ()`,
		`SELECT x FROM T WHERE x BETWEEN 1`,
		`SELECT x FROM T WHERE CONNECT`,
		`SELECT x FROM T WHERE CONNECT c(`,
		`SELECT x FROM T WHERE x > 1 WEIGHT -2`,
		`SELECT x FROM T WHERE x > 1 trailing`,
		`SELECT x FROM T WHERE x > 1 USING`,
		`SELECT x FROM T WHERE EXISTS x`,
		`SELECT AVG( FROM T`,
		`SELECT x FROM T WHERE ? > 1`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr(`a > 1 AND b < 2`)
	if err != nil {
		t.Fatal(err)
	}
	if be, ok := e.(*BoolExpr); !ok || be.Op != And {
		t.Fatalf("got %#v", e)
	}
	if _, err := ParseExpr(`a > 1 extra`); err == nil {
		t.Error("trailing input should fail")
	}
}

// Round trip: String() output reparses to an identical String().
func TestParseStringRoundTrip(t *testing.T) {
	srcs := []string{
		paperQuery,
		`SELECT * FROM T WHERE a BETWEEN 1 AND 5 WEIGHT 3`,
		`SELECT x FROM T WHERE name = 'O''Brien' USING edit`,
		`SELECT x FROM A, B WHERE EXISTS (SELECT y FROM B WHERE y > 3) WEIGHT 2 AND CONNECT c(5)`,
		`SELECT x FROM T WHERE NOT (a > 1) OR b IN (1, 2, 3)`,
		`SELECT AVG(x), COUNT(*) FROM T WHERE (a > 1 OR b > 2) AND c <= 5 WEIGHT 0.25`,
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		s1 := q1.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse %q: %v", s1, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Errorf("round trip drifted:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestOpInvert(t *testing.T) {
	cases := []struct {
		in   Op
		want Op
		ok   bool
	}{
		{OpLt, OpGe, true},
		{OpLe, OpGt, true},
		{OpGt, OpLe, true},
		{OpGe, OpLt, true},
		{OpEq, OpEq, false},
		{OpIn, OpIn, false},
		{OpBetween, OpBetween, false},
	}
	for _, c := range cases {
		got, ok := c.in.Invert()
		if got != c.want || ok != c.ok {
			t.Errorf("Invert(%s) = %s,%v", c.in, got, ok)
		}
	}
}

func TestPredicatesAndWalk(t *testing.T) {
	q, _ := Parse(paperQuery)
	preds := Predicates(q.Where)
	if len(preds) != 2 {
		t.Fatalf("top-level predicates: %d", len(preds))
	}
	count := 0
	Walk(q.Where, func(Expr) { count++ })
	// AND + OR + 3 conds + join = 6 nodes.
	if count != 6 {
		t.Errorf("walked %d nodes, want 6", count)
	}
	if Predicates(nil) != nil {
		t.Error("nil expr has no predicates")
	}
	single, _ := ParseExpr(`a > 1`)
	if got := Predicates(single); len(got) != 1 {
		t.Errorf("leaf predicates: %d", len(got))
	}
}

func TestWalkSubquery(t *testing.T) {
	q, _ := Parse(`SELECT * FROM A WHERE EXISTS (SELECT y FROM B WHERE y > 3 AND z < 1)`)
	count := 0
	Walk(q.Where, func(Expr) { count++ })
	// subquery node + inner AND + 2 conds = 4.
	if count != 4 {
		t.Errorf("walked %d nodes, want 4", count)
	}
}

func TestGradiRendering(t *testing.T) {
	q, _ := Parse(paperQuery)
	art := Gradi(q)
	for _, want := range []string{
		"Query Representation",
		"Result List: Temperature, Solar_Radiation, Humidity, Ozone",
		"From: Weather, Air-Pollution",
		"AND",
		"OR",
		"[Temperature > 15]",
		"[CONNECT with-time-diff(120)]",
	} {
		if !strings.Contains(art, want) {
			t.Errorf("Gradi output missing %q:\n%s", want, art)
		}
	}
	// Subqueries render as double boxes.
	q2, _ := Parse(`SELECT * FROM A WHERE EXISTS (SELECT y FROM B WHERE y > 3)`)
	art2 := Gradi(q2)
	if !strings.Contains(art2, "[[EXISTS subquery]]") {
		t.Errorf("double box missing:\n%s", art2)
	}
	if !strings.Contains(art2, "[y > 3]") {
		t.Errorf("nested condition missing:\n%s", art2)
	}
	// No condition.
	q3, _ := Parse(`SELECT * FROM A`)
	if !strings.Contains(Gradi(q3), "(no condition)") {
		t.Error("no-condition marker missing")
	}
	// Weight annotation.
	q4, _ := Parse(`SELECT * FROM A WHERE x > 1 WEIGHT 3`)
	if !strings.Contains(Gradi(q4), "(weight 3)") {
		t.Error("weight annotation missing")
	}
	// GradiExpr on a subtree.
	e, _ := ParseExpr(`a > 1 AND NOT (b < 2)`)
	sub := GradiExpr(e)
	if !strings.Contains(sub, "NOT") || !strings.Contains(sub, "[b < 2]") {
		t.Errorf("GradiExpr:\n%s", sub)
	}
}
