package query

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
)

// testCatalog builds the paper's environmental schema: Weather and
// Air-Pollution tables plus the with-time-diff and at-same-location
// connections.
func testCatalog(t *testing.T) *dataset.Catalog {
	t.Helper()
	cat := dataset.NewCatalog()
	weather, err := dataset.NewTable("Weather", dataset.Schema{
		{Name: "DateTime", Kind: dataset.KindTime},
		{Name: "Lat", Kind: dataset.KindFloat},
		{Name: "Lon", Kind: dataset.KindFloat},
		{Name: "Temperature", Kind: dataset.KindFloat},
		{Name: "Solar_Radiation", Kind: dataset.KindFloat},
		{Name: "Humidity", Kind: dataset.KindFloat},
		{Name: "Sky", Kind: dataset.KindNominal, Categories: []string{"clear", "cloudy", "rain"}},
		{Name: "Windy", Kind: dataset.KindBool},
	})
	if err != nil {
		t.Fatal(err)
	}
	pollution, err := dataset.NewTable("Air-Pollution", dataset.Schema{
		{Name: "DateTime", Kind: dataset.KindTime},
		{Name: "Lat", Kind: dataset.KindFloat},
		{Name: "Lon", Kind: dataset.KindFloat},
		{Name: "Ozone", Kind: dataset.KindFloat},
		{Name: "CO", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(weather); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(pollution); err != nil {
		t.Fatal(err)
	}
	limits, err := dataset.NewTable("Limits", dataset.Schema{
		{Name: "Limit", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(limits); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddConnection(dataset.Connection{
		Name: "with-time-diff", Left: "Weather", Right: "Air-Pollution",
		LeftAttr: "DateTime", RightAttr: "DateTime",
		Metric: dataset.MetricTime, Mode: dataset.ModeTarget, Param: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddConnection(dataset.Connection{
		Name: "at-same-location", Left: "Weather", Right: "Air-Pollution",
		LeftAttr: "Lat", LeftAttr2: "Lon", RightAttr: "Lat", RightAttr2: "Lon",
		Metric: dataset.MetricGeo, Mode: dataset.ModeEqual,
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestBindPaperQuery(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Temperature resolves to Weather, Ozone to Air-Pollution.
	root := q.Where.(*BoolExpr)
	orPart := root.Children[0].(*BoolExpr)
	temp := orPart.Children[0].(*Cond)
	if got := b.Attrs[temp]; got.Table != "Weather" || got.Kind != dataset.KindFloat {
		t.Fatalf("temperature binding: %+v", got)
	}
	join := root.Children[1].(*JoinExpr)
	conn := b.Joins[join]
	if conn.Name != "with-time-diff" || conn.Param != 120 {
		t.Fatalf("join binding should carry the 120-min override: %+v", conn)
	}
	if len(b.Selects) != 4 {
		t.Fatalf("selects: %+v", b.Selects)
	}
}

func TestBindAmbiguousAndQualified(t *testing.T) {
	cat := testCatalog(t)
	// DateTime exists in both tables → ambiguous unqualified.
	q, _ := Parse(`SELECT Temperature FROM Weather, Air-Pollution WHERE DateTime > '1994-01-01T00:00:00Z'`)
	if _, err := Bind(q, cat); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguity error, got %v", err)
	}
	q, _ = Parse(`SELECT Temperature FROM Weather, Air-Pollution WHERE Weather.DateTime > '1994-01-01T00:00:00Z'`)
	if _, err := Bind(q, cat); err != nil {
		t.Fatalf("qualified should bind: %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		src  string
		frag string
	}{
		{`SELECT x FROM Nope`, "no table"},
		{`SELECT Nope FROM Weather`, "attribute"},
		{`SELECT Temperature FROM Weather WHERE Nope > 1`, "attribute"},
		{`SELECT Temperature FROM Weather WHERE Other.Temperature > 1`, "not in FROM"},
		{`SELECT Temperature FROM Weather WHERE Sky > 'clear'`, "ordered"},
		{`SELECT Temperature FROM Weather WHERE Windy > TRUE`, "ordered"},
		{`SELECT Temperature FROM Weather WHERE Temperature > 'hot'`, "numeric"},
		{`SELECT Temperature FROM Weather WHERE DateTime > 42`, "time"},
		{`SELECT Temperature FROM Weather WHERE Sky = 42`, "string"},
		{`SELECT Temperature FROM Weather WHERE Temperature BETWEEN 10 AND 5`, "reversed"},
		{`SELECT Temperature FROM Weather WHERE CONNECT nope`, "connection"},
		{`SELECT Limit FROM Limits WHERE CONNECT with-time-diff(5)`, "neither"},
		{`SELECT Temperature FROM Weather, Weather WHERE Temperature > 1`, "twice"},
		{`SELECT Temperature FROM Weather WHERE Humidity IN (SELECT Ozone, CO FROM Air-Pollution)`, "exactly one"},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		_, err = Bind(q, cat)
		if err == nil {
			t.Errorf("Bind(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Bind(%q) error %q should mention %q", c.src, err, c.frag)
		}
	}
}

func TestBindSubquery(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(`SELECT Temperature FROM Weather WHERE Humidity IN (SELECT Ozone FROM Air-Pollution WHERE Ozone > 10)`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	sub := q.Where.(*SubqueryExpr)
	if b.Subs[sub] == nil {
		t.Fatal("subquery not bound")
	}
	if got := b.InAttrs[sub]; got.Attr != "Humidity" || got.Table != "Weather" {
		t.Fatalf("IN attr: %+v", got)
	}
}

func TestBindExistsSubquery(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(`SELECT Temperature FROM Weather WHERE EXISTS (SELECT Ozone FROM Air-Pollution WHERE Ozone > 100)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bind(q, cat); err != nil {
		t.Fatal(err)
	}
}

func TestBindBoolAndNominalOps(t *testing.T) {
	cat := testCatalog(t)
	ok := []string{
		`SELECT Temperature FROM Weather WHERE Windy = TRUE`,
		`SELECT Temperature FROM Weather WHERE Sky = 'clear'`,
		`SELECT Temperature FROM Weather WHERE Sky IN ('clear', 'rain')`,
		`SELECT Temperature FROM Weather WHERE Sky <> 'rain'`,
	}
	for _, src := range ok {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Bind(q, cat); err != nil {
			t.Errorf("Bind(%q): %v", src, err)
		}
	}
}

func TestBindConnectionParamValidation(t *testing.T) {
	cat := testCatalog(t)
	q, _ := Parse(`SELECT Temperature FROM Weather, Air-Pollution WHERE CONNECT with-time-diff(120)`)
	b, err := Bind(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Override must not mutate the catalog's copy.
	orig, _ := cat.Connection("with-time-diff")
	if orig.Param != 0 {
		t.Errorf("catalog connection mutated: %+v", orig)
	}
	for _, conn := range b.Joins {
		if conn.Param != 120 {
			t.Errorf("bound copy should carry override: %+v", conn)
		}
	}
}

func TestBindTimeLiteral(t *testing.T) {
	cat := testCatalog(t)
	q, _ := Parse(`SELECT Temperature FROM Weather WHERE DateTime > '1994-02-14T08:00:00Z'`)
	b, err := Bind(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	cond := q.Where.(*Cond)
	if b.Attrs[cond].Kind != dataset.KindTime {
		t.Error("time attribute kind")
	}
	want := time.Date(1994, 2, 14, 8, 0, 0, 0, time.UTC)
	if !cond.Value.T.Equal(want) {
		t.Errorf("literal: %v", cond.Value.T)
	}
}
