// Package binenc holds the tiny append/read helpers the cache-entry
// codecs share: fixed-width little-endian integers, bit-exact float64s
// (via math.Float64bits, so every NaN payload and signed zero survives
// the round trip), and length-prefixed strings and vectors. The format
// carries no self-description — each codec versions its own envelope —
// but the helpers make truncation and overflow failures explicit
// through Reader.Err instead of panics, which is what a network-facing
// decoder needs: a remote cache value is untrusted input.
package binenc

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated is reported by Reader when a read runs past the buffer
// or a declared length is implausible for the remaining bytes.
var ErrTruncated = errors.New("binenc: truncated or corrupt value")

// U64 appends v little-endian.
func U64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// U32 appends v little-endian.
func U32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// F64 appends the IEEE bits of v — bit-exact, not shortest-decimal.
func F64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// Str appends a u32 length prefix and the bytes of s.
func Str(b []byte, s string) []byte {
	b = U32(b, uint32(len(s)))
	return append(b, s...)
}

// F64s appends a u32 count prefix and the IEEE bits of every element.
// A nil slice encodes as count 0 and decodes as nil.
func F64s(b []byte, v []float64) []byte {
	b = U32(b, uint32(len(v)))
	for _, f := range v {
		b = F64(b, f)
	}
	return b
}

// I32s appends a u32 count prefix and the elements as u32 bit patterns.
func I32s(b []byte, v []int32) []byte {
	b = U32(b, uint32(len(v)))
	for _, x := range v {
		b = U32(b, uint32(x))
	}
	return b
}

// Reader consumes a buffer written with the append helpers. The first
// failed read latches Err; subsequent reads return zero values, so a
// decoder can read a whole envelope and check Err once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps b; the Reader does not copy and must not outlive it.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding failure, or nil.
func (r *Reader) Err() error { return r.err }

// Done reports whether the buffer was consumed exactly, with no error.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.b) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Int reads a u32 and returns it as int.
func (r *Reader) Int() int { return int(r.U32()) }

// F64 reads IEEE float64 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// F64s reads a count-prefixed float64 vector; count 0 returns nil. The
// declared count is validated against the remaining bytes before
// allocating, so a corrupt length cannot force a huge allocation.
func (r *Reader) F64s() []float64 {
	n := int(r.U32())
	if n == 0 || r.err != nil {
		return nil
	}
	if len(r.b)-r.off < 8*n {
		r.err = ErrTruncated
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = r.F64()
	}
	return v
}

// I32s reads a count-prefixed int32 vector; count 0 returns nil.
func (r *Reader) I32s() []int32 {
	n := int(r.U32())
	if n == 0 || r.err != nil {
		return nil
	}
	if len(r.b)-r.off < 4*n {
		r.err = ErrTruncated
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(r.U32())
	}
	return v
}
