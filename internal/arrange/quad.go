package arrange

// QuadItem describes one data item for the 2D arrangement of figure 1b:
// the signs of its distances for the two attributes assigned to the axes.
// SignX < 0 places the item left of center, > 0 right; SignY < 0 places
// it below center (bottom of the window), > 0 above. Items with both
// signs zero are correct answers and cluster at the center.
type QuadItem struct {
	SignX int
	SignY int
}

// Quad2D assigns cells of a w×h window to items, which must be sorted by
// descending relevance. Each (SignX, SignY) combination owns a region of
// the window; inside a region, more relevant items sit closer to the
// window center, so the yellow region forms in the middle and the
// direction of a distance is encoded by location (section 4.2):
// "we denote the absolute value of the distance by its color and the
// direction by its location relative to the correct answers".
//
// Exact answers (0,0) are spread round-robin over the four quadrants'
// innermost cells so the yellow region stays centered. Items that do not
// fit their region get Unplaced. The returned slice has length
// len(items).
func Quad2D(w, h int, items []QuadItem) []Point {
	out := make([]Point, len(items))
	if w < 2 || h < 2 {
		for i := range out {
			out[i] = Unplaced
		}
		return out
	}
	// Quadrant index: 0 = right/top, 1 = left/top, 2 = left/bottom,
	// 3 = right/bottom (math convention, mapped to image coordinates
	// where y grows downward: "top" means smaller Y).
	quadCells := [4][]Point{
		quadrantCells(w, h, +1, -1),
		quadrantCells(w, h, -1, -1),
		quadrantCells(w, h, -1, +1),
		quadrantCells(w, h, +1, +1),
	}
	next := [4]int{}
	rr := 0 // round-robin cursor for exact answers
	place := func(q int) Point {
		if next[q] < len(quadCells[q]) {
			p := quadCells[q][next[q]]
			next[q]++
			return p
		}
		return Unplaced
	}
	for i, it := range items {
		q := -1
		if it.SignX == 0 && it.SignY == 0 {
			// Exact answer: innermost free cell across quadrants.
			best, bestRing := -1, int(^uint(0)>>1)
			for k := 0; k < 4; k++ {
				qi := (rr + k) % 4
				if next[qi] < len(quadCells[qi]) {
					r := Ring(w, h, quadCells[qi][next[qi]])
					if r < bestRing {
						bestRing, best = r, qi
					}
				}
			}
			rr++
			q = best
		} else {
			// Positive SignY means "top" (smaller image Y); items with a
			// zero sign in one dimension sit on that axis' positive side.
			right := it.SignX >= 0
			top := it.SignY >= 0
			switch {
			case right && top:
				q = 0
			case !right && top:
				q = 1
			case !right && !top:
				q = 2
			default:
				q = 3
			}
		}
		if q < 0 {
			out[i] = Unplaced
			continue
		}
		out[i] = place(q)
	}
	return out
}

// quadrantCells enumerates the cells of one quadrant ordered by L∞
// distance from the window center, so consuming them front to back fills
// the quadrant from the middle outward. sx/sy select the quadrant:
// sx=+1 keeps cells right of (and including) center, -1 strictly left;
// sy=+1 keeps cells below (image down), -1 above-or-at center.
func quadrantCells(w, h int, sx, sy int) []Point {
	c := Center(w, h)
	var cells []Point
	for _, p := range Spiral(w, h) {
		inX := (sx > 0 && p.X >= c.X) || (sx < 0 && p.X < c.X)
		inY := (sy > 0 && p.Y > c.Y) || (sy < 0 && p.Y <= c.Y)
		if inX && inY {
			cells = append(cells, p)
		}
	}
	return cells
}

// BlockSide returns the side length of the square pixel block for the
// given pixels-per-item factor (1, 4 or 16 per section 4.2). Unsupported
// factors fall back to 1.
func BlockSide(pixelsPerItem int) int {
	switch pixelsPerItem {
	case 4:
		return 2
	case 16:
		return 4
	default:
		return 1
	}
}

// GridDims returns the item-grid dimensions of a pixel window of size
// pw×ph when each item occupies a block of blockSide×blockSide pixels.
func GridDims(pw, ph, blockSide int) (gw, gh int) {
	if blockSide < 1 {
		blockSide = 1
	}
	return pw / blockSide, ph / blockSide
}
