// Package arrange computes pixel arrangements for the VisDB windows: the
// rectangular spiral of figure 1a (highest relevance factors centered in
// the middle, approximate answers spiraling outward) and the 2D quadrant
// arrangement of figure 1b for signed distances, plus the 1/4/16-pixel
// block scaling of section 4.2.
package arrange

// Point is a cell coordinate inside a window grid. X grows rightward,
// Y grows downward (image convention).
type Point struct{ X, Y int }

// Pt is a terse Point constructor.
func Pt(x, y int) Point { return Point{X: x, Y: y} }

// Unplaced is the sentinel cell for items that do not fit in a window.
var Unplaced = Point{-1, -1}

// Center returns the cell considered the middle of a w×h grid (the
// anchor of the yellow region).
func Center(w, h int) Point { return Point{(w - 1) / 2, (h - 1) / 2} }

// chebyshev is the L∞ distance between two points, i.e. the spiral ring
// number of p around c.
func chebyshev(p, c Point) int {
	dx := p.X - c.X
	if dx < 0 {
		dx = -dx
	}
	dy := p.Y - c.Y
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// Spiral returns all w*h cells of a window in rectangular-spiral order
// from the center outward: ring 0 is the center cell, ring k holds every
// cell at L∞ distance k from the center, enumerated clockwise starting
// just right of the previous ring's end. Sorted relevance factors mapped
// onto this sequence produce figure 1a: absolutely correct answers
// (yellow) in the middle, approximate answers spiral-shaped around them.
//
// For non-square windows, ring cells falling outside the window are
// skipped, so the sequence is still a permutation of all cells and ring
// numbers never decrease along it.
func Spiral(w, h int) []Point {
	if w <= 0 || h <= 0 {
		return nil
	}
	c := Center(w, h)
	cells := make([]Point, 0, w*h)
	cells = append(cells, c)
	// The largest ring needed covers the farthest corner.
	maxRing := chebyshev(Point{0, 0}, c)
	for _, corner := range []Point{{w - 1, 0}, {0, h - 1}, {w - 1, h - 1}} {
		if r := chebyshev(corner, c); r > maxRing {
			maxRing = r
		}
	}
	for k := 1; k <= maxRing; k++ {
		for _, p := range ring(c, k) {
			if p.X >= 0 && p.X < w && p.Y >= 0 && p.Y < h {
				cells = append(cells, p)
			}
		}
	}
	return cells
}

// ring enumerates the cells at L∞ distance k from c in clockwise order:
// across the top edge left→right, down the right edge, across the bottom
// edge right→left, and up the left edge.
func ring(c Point, k int) []Point {
	if k == 0 {
		return []Point{c}
	}
	out := make([]Point, 0, 8*k)
	// Top edge (y = c.Y-k), x from c.X-k to c.X+k.
	for x := c.X - k; x <= c.X+k; x++ {
		out = append(out, Point{x, c.Y - k})
	}
	// Right edge (x = c.X+k), y from c.Y-k+1 to c.Y+k.
	for y := c.Y - k + 1; y <= c.Y+k; y++ {
		out = append(out, Point{c.X + k, y})
	}
	// Bottom edge (y = c.Y+k), x from c.X+k-1 down to c.X-k.
	for x := c.X + k - 1; x >= c.X-k; x-- {
		out = append(out, Point{x, c.Y + k})
	}
	// Left edge (x = c.X-k), y from c.Y+k-1 down to c.Y-k+1.
	for y := c.Y + k - 1; y >= c.Y-k+1; y-- {
		out = append(out, Point{c.X - k, y})
	}
	return out
}

// Ring reports the spiral ring number of cell p in a w×h window.
func Ring(w, h int, p Point) int { return chebyshev(p, Center(w, h)) }

// Place assigns the first min(n, w*h) of n rank-ordered items to spiral
// cells: item 0 (most relevant) gets the center. Items beyond capacity
// get Unplaced. The returned slice has length n.
func Place(w, h, n int) []Point {
	cells := Spiral(w, h)
	out := make([]Point, n)
	for i := range out {
		if i < len(cells) {
			out[i] = cells[i]
		} else {
			out[i] = Unplaced
		}
	}
	return out
}
