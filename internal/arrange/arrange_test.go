package arrange

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpiralIsPermutation(t *testing.T) {
	for _, dim := range []struct{ w, h int }{
		{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 3}, {3, 5}, {7, 2}, {1, 9}, {16, 16}, {31, 17},
	} {
		cells := Spiral(dim.w, dim.h)
		if len(cells) != dim.w*dim.h {
			t.Fatalf("%dx%d: got %d cells", dim.w, dim.h, len(cells))
		}
		seen := make(map[Point]bool, len(cells))
		for _, p := range cells {
			if p.X < 0 || p.X >= dim.w || p.Y < 0 || p.Y >= dim.h {
				t.Fatalf("%dx%d: out-of-window cell %+v", dim.w, dim.h, p)
			}
			if seen[p] {
				t.Fatalf("%dx%d: duplicate cell %+v", dim.w, dim.h, p)
			}
			seen[p] = true
		}
	}
}

func TestSpiralStartsAtCenter(t *testing.T) {
	cells := Spiral(5, 5)
	if cells[0] != (Point{2, 2}) {
		t.Fatalf("first cell = %+v, want center", cells[0])
	}
}

func TestSpiralRingsMonotone(t *testing.T) {
	for _, dim := range []struct{ w, h int }{{5, 5}, {8, 8}, {9, 4}, {4, 9}, {30, 20}} {
		cells := Spiral(dim.w, dim.h)
		prev := 0
		for i, p := range cells {
			r := Ring(dim.w, dim.h, p)
			if r < prev {
				t.Fatalf("%dx%d: ring decreases at %d (%d -> %d)", dim.w, dim.h, i, prev, r)
			}
			prev = r
		}
	}
}

// Property: spirals of random dimensions are complete permutations with
// monotone rings.
func TestSpiralProperty(t *testing.T) {
	f := func(rw, rh uint8) bool {
		w := int(rw%40) + 1
		h := int(rh%40) + 1
		cells := Spiral(w, h)
		if len(cells) != w*h {
			return false
		}
		seen := make(map[Point]bool, len(cells))
		prev := 0
		for _, p := range cells {
			if seen[p] || p.X < 0 || p.X >= w || p.Y < 0 || p.Y >= h {
				return false
			}
			seen[p] = true
			r := Ring(w, h, p)
			if r < prev {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpiralDegenerate(t *testing.T) {
	if Spiral(0, 5) != nil || Spiral(5, 0) != nil || Spiral(-1, -1) != nil {
		t.Error("non-positive dims should yield nil")
	}
	one := Spiral(1, 1)
	if len(one) != 1 || one[0] != (Point{0, 0}) {
		t.Errorf("1x1 spiral = %+v", one)
	}
}

func TestPlaceOverflow(t *testing.T) {
	pts := Place(2, 2, 6)
	if len(pts) != 6 {
		t.Fatalf("len = %d", len(pts))
	}
	for i := 0; i < 4; i++ {
		if pts[i] == Unplaced {
			t.Errorf("item %d should be placed", i)
		}
	}
	for i := 4; i < 6; i++ {
		if pts[i] != Unplaced {
			t.Errorf("item %d should be unplaced, got %+v", i, pts[i])
		}
	}
}

func TestQuad2DSeparatesSigns(t *testing.T) {
	w, h := 10, 10
	c := Center(w, h)
	items := []QuadItem{
		{+1, +1}, {-1, +1}, {-1, -1}, {+1, -1},
	}
	pts := Quad2D(w, h, items)
	// SignX>0 → right half (x >= cx); SignX<0 → left (x < cx).
	// SignY>0 → top (y <= cy in image coords); SignY<0 → bottom (y > cy).
	if !(pts[0].X >= c.X && pts[0].Y <= c.Y) {
		t.Errorf("(+,+) placed at %+v, want right/top of %+v", pts[0], c)
	}
	if !(pts[1].X < c.X && pts[1].Y <= c.Y) {
		t.Errorf("(-,+) placed at %+v", pts[1])
	}
	if !(pts[2].X < c.X && pts[2].Y > c.Y) {
		t.Errorf("(-,-) placed at %+v", pts[2])
	}
	if !(pts[3].X >= c.X && pts[3].Y > c.Y) {
		t.Errorf("(+,-) placed at %+v", pts[3])
	}
}

func TestQuad2DExactAnswersCenter(t *testing.T) {
	w, h := 12, 12
	items := make([]QuadItem, 8) // all exact (0,0)
	pts := Quad2D(w, h, items)
	for i, p := range pts {
		if p == Unplaced {
			t.Fatalf("exact item %d unplaced", i)
		}
		if r := Ring(w, h, p); r > 2 {
			t.Errorf("exact item %d at ring %d (%+v), want near center", i, r, p)
		}
	}
}

func TestQuad2DMoreRelevantCloserToCenter(t *testing.T) {
	w, h := 20, 20
	// 30 items all in the same quadrant, already sorted by relevance.
	items := make([]QuadItem, 30)
	for i := range items {
		items[i] = QuadItem{+1, +1}
	}
	pts := Quad2D(w, h, items)
	prev := -1
	for i, p := range pts {
		r := Ring(w, h, p)
		if r < prev {
			t.Fatalf("item %d (ring %d) closer to center than item %d (ring %d)", i, r, i-1, prev)
		}
		prev = r
	}
}

func TestQuad2DIsInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w, h := 14, 11
	items := make([]QuadItem, w*h)
	for i := range items {
		items[i] = QuadItem{rng.Intn(3) - 1, rng.Intn(3) - 1}
	}
	pts := Quad2D(w, h, items)
	seen := make(map[Point]int)
	for i, p := range pts {
		if p == Unplaced {
			continue
		}
		if j, dup := seen[p]; dup {
			t.Fatalf("items %d and %d share cell %+v", j, i, p)
		}
		seen[p] = i
	}
}

func TestQuad2DOverflow(t *testing.T) {
	// 3x3 window, quadrant capacity is small; flood one quadrant.
	items := make([]QuadItem, 20)
	for i := range items {
		items[i] = QuadItem{+1, +1}
	}
	pts := Quad2D(3, 3, items)
	placed := 0
	for _, p := range pts {
		if p != Unplaced {
			placed++
		}
	}
	if placed == 0 || placed == len(items) {
		t.Fatalf("expected partial placement, placed=%d", placed)
	}
}

func TestQuad2DDegenerateWindow(t *testing.T) {
	pts := Quad2D(1, 1, []QuadItem{{0, 0}, {1, 1}})
	for i, p := range pts {
		if p != Unplaced {
			t.Errorf("item %d should be unplaced in 1x1, got %+v", i, p)
		}
	}
}

// Property: Quad2D never places two items on one cell and never places
// items outside the window.
func TestQuad2DProperty(t *testing.T) {
	f := func(rw, rh uint8, signs []int8) bool {
		w := int(rw%30) + 2
		h := int(rh%30) + 2
		items := make([]QuadItem, len(signs)/2)
		for i := range items {
			items[i] = QuadItem{int(signs[2*i])%2 - 0, int(signs[2*i+1]) % 2}
		}
		pts := Quad2D(w, h, items)
		seen := make(map[Point]bool)
		for _, p := range pts {
			if p == Unplaced {
				continue
			}
			if p.X < 0 || p.X >= w || p.Y < 0 || p.Y >= h || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockSide(t *testing.T) {
	cases := []struct{ px, want int }{{1, 1}, {4, 2}, {16, 4}, {9, 1}, {0, 1}, {-2, 1}}
	for _, c := range cases {
		if got := BlockSide(c.px); got != c.want {
			t.Errorf("BlockSide(%d) = %d, want %d", c.px, got, c.want)
		}
	}
}

func TestGridDims(t *testing.T) {
	gw, gh := GridDims(1024, 1280, 4)
	if gw != 256 || gh != 320 {
		t.Errorf("got %dx%d", gw, gh)
	}
	gw, gh = GridDims(10, 10, 0) // clamped to 1
	if gw != 10 || gh != 10 {
		t.Errorf("got %dx%d", gw, gh)
	}
}
