package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dataset"
)

// MultiDBConfig parameterizes the multi-database correspondence
// generator (section 4.5: "multi-database systems where it is often a
// problem to find corresponding data items in multiple independent
// databases").
type MultiDBConfig struct {
	// People is the number of entities in database A (default 300).
	People int
	// OverlapFrac is the fraction of A's entities that also exist in B,
	// under a misspelled name and possibly shifted birth year
	// (default 0.5).
	OverlapFrac float64
	// ExtraFrac adds this fraction of B-only entities (default 0.3).
	ExtraFrac float64
	Seed      int64
}

func (c MultiDBConfig) withDefaults() MultiDBConfig {
	if c.People <= 0 {
		c.People = 300
	}
	if c.OverlapFrac <= 0 || c.OverlapFrac > 1 {
		c.OverlapFrac = 0.5
	}
	if c.ExtraFrac < 0 {
		c.ExtraFrac = 0.3
	}
	return c
}

// MultiDBTruth records the ground-truth correspondences.
type MultiDBTruth struct {
	// Matches maps PersonsA row → PersonsB row for the true pairs.
	Matches map[int]int
}

var (
	syllables = []string{"ka", "ri", "mo", "ta", "le", "shi", "an", "ber", "gon", "de", "vi", "ra", "nel", "so", "mi", "ul", "tho", "bren"}
	cities    = []string{"Munich", "Augsburg", "Regensburg", "Nuremberg", "Passau", "Ulm", "Landshut", "Ingolstadt"}
)

func randomName(rng *rand.Rand) string {
	n := 2 + rng.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[rng.Intn(len(syllables))])
	}
	name := b.String()
	return strings.ToUpper(name[:1]) + name[1:]
}

// misspell applies 1-2 random character edits.
func misspell(rng *rand.Rand, s string) string {
	b := []byte(s)
	edits := 1 + rng.Intn(2)
	for e := 0; e < edits && len(b) > 2; e++ {
		i := 1 + rng.Intn(len(b)-1)
		switch rng.Intn(3) {
		case 0: // substitute
			b[i] = byte('a' + rng.Intn(26))
		case 1: // delete
			b = append(b[:i], b[i+1:]...)
		default: // transpose
			if i+1 < len(b) {
				b[i], b[i+1] = b[i+1], b[i]
			}
		}
	}
	return string(b)
}

// MultiDB builds a catalog with PersonsA and PersonsB plus a
// "similar-name" string connection for approximate joining.
func MultiDB(cfg MultiDBConfig) (*dataset.Catalog, MultiDBTruth, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schemaA := dataset.Schema{
		{Name: "Name", Kind: dataset.KindString},
		{Name: "City", Kind: dataset.KindString},
		{Name: "Born", Kind: dataset.KindFloat},
	}
	schemaB := dataset.Schema{
		{Name: "FullName", Kind: dataset.KindString},
		{Name: "Town", Kind: dataset.KindString},
		{Name: "YearOfBirth", Kind: dataset.KindFloat},
	}
	a, err := dataset.NewTable("PersonsA", schemaA)
	if err != nil {
		return nil, MultiDBTruth{}, err
	}
	b, err := dataset.NewTable("PersonsB", schemaB)
	if err != nil {
		return nil, MultiDBTruth{}, err
	}
	truth := MultiDBTruth{Matches: make(map[int]int)}
	bRow := 0
	for i := 0; i < cfg.People; i++ {
		name := randomName(rng)
		city := cities[rng.Intn(len(cities))]
		born := float64(1930 + rng.Intn(60))
		if err := a.AppendRow(dataset.Str(name), dataset.Str(city), dataset.Float(born)); err != nil {
			return nil, MultiDBTruth{}, err
		}
		if rng.Float64() < cfg.OverlapFrac {
			year := born
			if rng.Float64() < 0.3 {
				year += float64(rng.Intn(3) - 1) // data-entry slip ±1
			}
			if err := b.AppendRow(dataset.Str(misspell(rng, name)), dataset.Str(city), dataset.Float(year)); err != nil {
				return nil, MultiDBTruth{}, err
			}
			truth.Matches[i] = bRow
			bRow++
		}
	}
	extras := int(float64(cfg.People) * cfg.ExtraFrac)
	for i := 0; i < extras; i++ {
		if err := b.AppendRow(
			dataset.Str(randomName(rng)),
			dataset.Str(cities[rng.Intn(len(cities))]),
			dataset.Float(float64(1930+rng.Intn(60))),
		); err != nil {
			return nil, MultiDBTruth{}, err
		}
		bRow++
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(a); err != nil {
		return nil, MultiDBTruth{}, err
	}
	if err := cat.AddTable(b); err != nil {
		return nil, MultiDBTruth{}, err
	}
	conns := []dataset.Connection{
		{Name: "similar-name", Left: "PersonsA", Right: "PersonsB",
			LeftAttr: "Name", RightAttr: "FullName",
			Metric: dataset.MetricString, StringDist: "edit", Mode: dataset.ModeEqual},
		{Name: "same-birth-year", Left: "PersonsA", Right: "PersonsB",
			LeftAttr: "Born", RightAttr: "YearOfBirth",
			Metric: dataset.MetricNumeric, Mode: dataset.ModeEqual},
	}
	for _, c := range conns {
		if err := cat.AddConnection(c); err != nil {
			return nil, MultiDBTruth{}, fmt.Errorf("datagen: %w", err)
		}
	}
	return cat, truth, nil
}
