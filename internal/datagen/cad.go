package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// CADConfig parameterizes the CAD-parts generator of the section 4.5
// similarity-retrieval scenario: "in a concrete application in
// mechanical engineering we had 27 parameters describing the parts".
type CADConfig struct {
	Parts  int // total parts (default 1000)
	Params int // parameters per part (default 27)
	// Clusters and ClusterSize plant groups of near-identical parts.
	Clusters    int // default 4
	ClusterSize int // default 4
	// Allowance is the per-parameter tolerance a traditional boolean
	// query would use (default 1.0).
	Allowance float64
	// NearMissDelta places the planted near-miss part this fraction
	// beyond the allowance on exactly one parameter (default 0.2, i.e.
	// 1.2×allowance away) — the part the paper warns boolean queries
	// lose: "the user might miss a part that exactly fits in all except
	// one parameter and just misses to fulfill the allowance of that
	// single parameter".
	NearMissDelta float64
	Seed          int64
}

func (c CADConfig) withDefaults() CADConfig {
	if c.Parts <= 0 {
		c.Parts = 1000
	}
	if c.Params <= 0 {
		c.Params = 27
	}
	if c.Clusters < 0 {
		c.Clusters = 0
	}
	if c.Clusters == 0 {
		c.Clusters = 4
	}
	if c.ClusterSize <= 0 {
		c.ClusterSize = 4
	}
	if c.Allowance <= 0 {
		c.Allowance = 1
	}
	if c.NearMissDelta <= 0 {
		c.NearMissDelta = 0.2
	}
	return c
}

// CADTruth records the planted structure.
type CADTruth struct {
	// Query is the reference part's parameter vector.
	Query []float64
	// ExactRows fit the reference within the allowance on all
	// parameters.
	ExactRows []int
	// NearMissRow fits all parameters except one, which misses the
	// allowance by NearMissDelta.
	NearMissRow int
	// ClusterRows lists the planted similar-part groups.
	ClusterRows [][]int
	// Allowance echoes the configured tolerance.
	Allowance float64
}

// CADParts builds a table "Parts" with columns PartID, P1..Pk.
func CADParts(cfg CADConfig) (*dataset.Table, CADTruth, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := dataset.Schema{{Name: "PartID", Kind: dataset.KindInt}}
	for p := 1; p <= cfg.Params; p++ {
		schema = append(schema, dataset.Field{Name: fmt.Sprintf("P%d", p), Kind: dataset.KindFloat})
	}
	tbl, err := dataset.NewTable("Parts", schema)
	if err != nil {
		return nil, CADTruth{}, err
	}
	truth := CADTruth{Allowance: cfg.Allowance}
	truth.Query = make([]float64, cfg.Params)
	for p := range truth.Query {
		truth.Query[p] = 50 + 15*rng.NormFloat64()
	}
	appendPart := func(id int, params []float64) error {
		vals := make([]dataset.Value, 0, cfg.Params+1)
		vals = append(vals, dataset.Int(int64(id)))
		for _, v := range params {
			vals = append(vals, dataset.Float(round2(v)))
		}
		return tbl.AppendRow(vals...)
	}
	id := 0
	// Exact matches: within the allowance on every parameter.
	nExact := 3
	for i := 0; i < nExact; i++ {
		params := make([]float64, cfg.Params)
		for p := range params {
			params[p] = truth.Query[p] + (rng.Float64()-0.5)*cfg.Allowance*0.8
		}
		truth.ExactRows = append(truth.ExactRows, id)
		if err := appendPart(id, params); err != nil {
			return nil, CADTruth{}, err
		}
		id++
	}
	// The near-miss part.
	{
		params := make([]float64, cfg.Params)
		for p := range params {
			params[p] = truth.Query[p] + (rng.Float64()-0.5)*cfg.Allowance*0.3
		}
		victim := rng.Intn(cfg.Params)
		sign := 1.0
		if rng.Intn(2) == 0 {
			sign = -1
		}
		params[victim] = truth.Query[victim] + sign*cfg.Allowance*(1+cfg.NearMissDelta)
		truth.NearMissRow = id
		if err := appendPart(id, params); err != nil {
			return nil, CADTruth{}, err
		}
		id++
	}
	// Planted similarity clusters elsewhere in parameter space.
	for c := 0; c < cfg.Clusters; c++ {
		center := make([]float64, cfg.Params)
		for p := range center {
			center[p] = 50 + 15*rng.NormFloat64()
		}
		var rows []int
		for m := 0; m < cfg.ClusterSize; m++ {
			params := make([]float64, cfg.Params)
			for p := range params {
				params[p] = center[p] + 0.4*rng.NormFloat64()
			}
			rows = append(rows, id)
			if err := appendPart(id, params); err != nil {
				return nil, CADTruth{}, err
			}
			id++
		}
		truth.ClusterRows = append(truth.ClusterRows, rows)
	}
	// Background parts.
	for id < cfg.Parts {
		params := make([]float64, cfg.Params)
		for p := range params {
			params[p] = 50 + 15*rng.NormFloat64()
		}
		if err := appendPart(id, params); err != nil {
			return nil, CADTruth{}, err
		}
		id++
	}
	return tbl, truth, nil
}

// CADQuerySQL builds the similarity query for the reference part: a
// conjunction of BETWEEN allowance windows over every parameter, the
// "fixed allowances" formulation the paper critiques.
func CADQuerySQL(truth CADTruth, allowance float64) string {
	if allowance <= 0 {
		allowance = truth.Allowance
	}
	q := "SELECT PartID FROM Parts WHERE "
	for p, v := range truth.Query {
		if p > 0 {
			q += " AND "
		}
		q += fmt.Sprintf("P%d BETWEEN %.3f AND %.3f", p+1, v-allowance, v+allowance)
	}
	return q
}
