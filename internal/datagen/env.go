// Package datagen generates the synthetic workloads of the
// reproduction. The paper evaluates VisDB on a real environmental
// database (hourly weather and air-pollution measurements, section 3)
// and mentions a 27-parameter CAD database (section 4.5) and
// multi-database correspondence finding; none of those datasets are
// available, so these generators plant the same structure the paper's
// experiments rely on: a positive temperature/solar-radiation
// correlation, an ozone response lagging temperature by a configurable
// number of hours, exceptional hot-spot values, offset measurement
// intervals and close-by (non-identical) station locations, CAD
// near-miss parts, and misspelled entities across two databases.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/dataset"
)

// EnvConfig parameterizes the environmental generator.
type EnvConfig struct {
	// Hours is the number of hourly weather measurements (default 720).
	Hours int
	// PollutionEvery samples one air-pollution row per this many weather
	// hours (default 1 — same rate). The paper motivates approximate
	// joins with differing measurement intervals.
	PollutionEvery int
	// OffsetMinutes shifts pollution timestamps (default 30), so exact
	// time-equality joins find nothing.
	OffsetMinutes int
	// LagHours delays the ozone response to temperature/radiation
	// (default 2), the correlation the paper's example query hunts.
	LagHours int
	// HotSpots plants this many exceptional ozone values (default 5).
	HotSpots int
	// StationOffsetM displaces the pollution station from the weather
	// station by roughly this many meters (default 500), so location
	// equality also fails while at-same-location approximate joins work.
	StationOffsetM float64
	// Seed drives the deterministic RNG.
	Seed int64
}

func (c EnvConfig) withDefaults() EnvConfig {
	if c.Hours <= 0 {
		c.Hours = 720
	}
	if c.PollutionEvery <= 0 {
		c.PollutionEvery = 1
	}
	if c.OffsetMinutes < 0 {
		c.OffsetMinutes = 0
	}
	if c.LagHours < 0 {
		c.LagHours = 0
	}
	if c.LagHours == 0 {
		c.LagHours = 2
	}
	if c.HotSpots < 0 {
		c.HotSpots = 0
	}
	if c.StationOffsetM == 0 {
		c.StationOffsetM = 500
	}
	return c
}

// EnvTruth records the planted structure for verification.
type EnvTruth struct {
	LagHours     int
	HotSpotRows  []int // pollution row indices with exceptional ozone
	WeatherRows  int
	PollutionRow int // number of pollution rows
	// Temperature and Ozone are the hourly series (ozone at weather
	// resolution before downsampling) for correlation checks.
	Temperature []float64
	Ozone       []float64
}

// baseLat/baseLon: Munich, where the authors' institute was.
const (
	baseLat = 48.148
	baseLon = 11.568
)

// Environmental builds a catalog with Weather and Air-Pollution tables
// and the figure-3 connections (at-same-location, at-same-time-as,
// with-time-diff, with-distance).
func Environmental(cfg EnvConfig) (*dataset.Catalog, EnvTruth, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	weather, err := dataset.NewTable("Weather", dataset.Schema{
		{Name: "DateTime", Kind: dataset.KindTime},
		{Name: "Lat", Kind: dataset.KindFloat},
		{Name: "Lon", Kind: dataset.KindFloat},
		{Name: "Temperature", Kind: dataset.KindFloat},
		{Name: "Solar_Radiation", Kind: dataset.KindFloat},
		{Name: "Humidity", Kind: dataset.KindFloat},
		{Name: "Precipitation", Kind: dataset.KindFloat},
	})
	if err != nil {
		return nil, EnvTruth{}, err
	}
	pollution, err := dataset.NewTable("Air-Pollution", dataset.Schema{
		{Name: "DateTime", Kind: dataset.KindTime},
		{Name: "Lat", Kind: dataset.KindFloat},
		{Name: "Lon", Kind: dataset.KindFloat},
		{Name: "Ozone", Kind: dataset.KindFloat},
		{Name: "CO", Kind: dataset.KindFloat},
		{Name: "SO2", Kind: dataset.KindFloat},
		{Name: "NO2", Kind: dataset.KindFloat},
	})
	if err != nil {
		return nil, EnvTruth{}, err
	}
	start := time.Date(1993, 6, 1, 0, 0, 0, 0, time.UTC)
	truth := EnvTruth{LagHours: cfg.LagHours}
	temps := make([]float64, cfg.Hours)
	solars := make([]float64, cfg.Hours)
	ozones := make([]float64, cfg.Hours)
	for h := 0; h < cfg.Hours; h++ {
		hourOfDay := float64(h % 24)
		day := float64(h / 24)
		// Diurnal + slow seasonal drift + noise. Temperature and solar
		// radiation share the diurnal phase → strong positive
		// correlation (the "obvious" one of section 3).
		diurnal := math.Sin(2 * math.Pi * (hourOfDay - 9) / 24)
		seasonal := 4 * math.Sin(2*math.Pi*day/365)
		temps[h] = 15 + 8*diurnal + seasonal + 1.2*rng.NormFloat64()
		solars[h] = math.Max(0, 450+520*diurnal+40*rng.NormFloat64())
		ts := start.Add(time.Duration(h) * time.Hour)
		humidity := clampF(82-1.6*(temps[h]-15)+4*rng.NormFloat64(), 15, 100)
		precip := 0.0
		if rng.Float64() < 0.08 {
			precip = rng.ExpFloat64() * 2
		}
		if err := weather.AppendRow(
			dataset.Time(ts),
			dataset.Float(baseLat+0.0005*rng.NormFloat64()),
			dataset.Float(baseLon+0.0005*rng.NormFloat64()),
			dataset.Float(round2(temps[h])),
			dataset.Float(round2(solars[h])),
			dataset.Float(round2(humidity)),
			dataset.Float(round2(precip)),
		); err != nil {
			return nil, EnvTruth{}, err
		}
	}
	// Ozone responds to temperature and radiation LagHours earlier —
	// the "time-lagged increase of temperature and ozone" that is
	// "difficult to find with traditional analysis methods".
	for h := 0; h < cfg.Hours; h++ {
		src := h - cfg.LagHours
		base := 18.0
		if src >= 0 {
			base = 10 + 2.1*math.Max(0, temps[src]-10) + 0.035*solars[src]
		}
		ozones[h] = math.Max(0, base+2.5*rng.NormFloat64())
	}
	truth.Temperature = temps
	truth.Ozone = ozones

	// Hot spots: single exceptional ozone values, the kind of data
	// "which are difficult — maybe even impossible — to find with
	// traditional cluster analysis" (section 3). Pick the victim
	// pollution rows up front so they can be planted while appending.
	pollTotal := (cfg.Hours + cfg.PollutionEvery - 1) / cfg.PollutionEvery
	hot := make(map[int]bool, cfg.HotSpots)
	for len(hot) < cfg.HotSpots && len(hot) < pollTotal {
		row := rng.Intn(pollTotal)
		if !hot[row] {
			hot[row] = true
			truth.HotSpotRows = append(truth.HotSpotRows, row)
		}
	}
	// Pollution station: displaced ~StationOffsetM meters; one degree of
	// latitude is ~111 km.
	dLat := cfg.StationOffsetM / 111000.0
	offset := time.Duration(cfg.OffsetMinutes) * time.Minute
	pollRow := 0
	for h := 0; h < cfg.Hours; h += cfg.PollutionEvery {
		ts := start.Add(time.Duration(h)*time.Hour + offset)
		hourOfDay := float64(h % 24)
		traffic := math.Exp(-sq(hourOfDay-8)/8) + math.Exp(-sq(hourOfDay-18)/8)
		co := math.Max(0, 0.4+0.8*traffic+0.1*rng.NormFloat64())
		so2 := math.Max(0, 8+4*traffic+2*rng.NormFloat64())
		no2 := math.Max(0, 20+18*traffic+4*rng.NormFloat64())
		ozone := ozones[h]
		if hot[pollRow] {
			ozone = 240 + 40*rng.Float64() // far beyond the ~120 normal peak
		}
		if err := pollution.AppendRow(
			dataset.Time(ts),
			dataset.Float(baseLat+dLat+0.0005*rng.NormFloat64()),
			dataset.Float(baseLon+0.0005*rng.NormFloat64()),
			dataset.Float(round2(ozone)),
			dataset.Float(round2(co)),
			dataset.Float(round2(so2)),
			dataset.Float(round2(no2)),
		); err != nil {
			return nil, EnvTruth{}, err
		}
		pollRow++
	}
	truth.WeatherRows = weather.NumRows()
	truth.PollutionRow = pollution.NumRows()

	cat := dataset.NewCatalog()
	if err := cat.AddTable(weather); err != nil {
		return nil, EnvTruth{}, err
	}
	if err := cat.AddTable(pollution); err != nil {
		return nil, EnvTruth{}, err
	}
	conns := []dataset.Connection{
		{Name: "at-same-location", Left: "Weather", Right: "Air-Pollution",
			LeftAttr: "Lat", LeftAttr2: "Lon", RightAttr: "Lat", RightAttr2: "Lon",
			Metric: dataset.MetricGeo, Mode: dataset.ModeEqual},
		{Name: "with-distance", Left: "Weather", Right: "Air-Pollution",
			LeftAttr: "Lat", LeftAttr2: "Lon", RightAttr: "Lat", RightAttr2: "Lon",
			Metric: dataset.MetricGeo, Mode: dataset.ModeWithin, Param: 1000},
		{Name: "at-same-time-as", Left: "Weather", Right: "Air-Pollution",
			LeftAttr: "DateTime", RightAttr: "DateTime",
			Metric: dataset.MetricTime, Mode: dataset.ModeEqual},
		{Name: "with-time-diff", Left: "Weather", Right: "Air-Pollution",
			LeftAttr: "DateTime", RightAttr: "DateTime",
			Metric: dataset.MetricTime, Mode: dataset.ModeTarget, Param: 0},
	}
	for _, c := range conns {
		if err := cat.AddConnection(c); err != nil {
			return nil, EnvTruth{}, fmt.Errorf("datagen: %w", err)
		}
	}
	return cat, truth, nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sq(v float64) float64 { return v * v }

// round2 keeps two decimals so CSV round trips stay compact.
func round2(v float64) float64 { return math.Round(v*100) / 100 }
