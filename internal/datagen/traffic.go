package datagen

import (
	"math/rand"

	"repro/internal/dataset"
)

// TrafficQueries is the interaction workload that pairs with Traffic:
// the session queries the randomized concurrent scripts rotate
// through. One definition keeps the in-process traffic mode, the
// remote bench driver and the server's replay-identity suite on the
// exact same workload.
func TrafficQueries() []string {
	return []string{
		`SELECT a FROM S WHERE a > 50 AND b < 40`,
		`SELECT a FROM S WHERE a > 50 AND c BETWEEN 20 AND 30`,
		`SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30 WEIGHT 2`,
	}
}

// Traffic generates the uniform three-attribute numeric catalog the
// concurrent-traffic and serving workloads query: one table S with
// float attributes a, b, c drawn uniformly from [0, 100). Unlike the
// paper-scenario generators it plants nothing — the point is cheap,
// deterministic bulk data whose leaf distances do real work at any row
// count, so the same (rows, seed) pair always reproduces the exact
// catalog on both ends of a client/server benchmark.
func Traffic(rows int, seed int64) (*dataset.Catalog, error) {
	rng := rand.New(rand.NewSource(seed))
	tbl, err := dataset.NewTable("S", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
		{Name: "b", Kind: dataset.KindFloat},
		{Name: "c", Kind: dataset.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow(
			dataset.Float(rng.Float64()*100),
			dataset.Float(rng.Float64()*100),
			dataset.Float(rng.Float64()*100),
		); err != nil {
			return nil, err
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		return nil, err
	}
	return cat, nil
}
