package datagen

import (
	"math/rand"

	"repro/internal/dataset"
)

// TrafficQueries is the interaction workload that pairs with Traffic:
// the session queries the randomized concurrent scripts rotate
// through. One definition keeps the in-process traffic mode, the
// remote bench driver and the server's replay-identity suite on the
// exact same workload.
func TrafficQueries() []string {
	return []string{
		`SELECT a FROM S WHERE a > 50 AND b < 40`,
		`SELECT a FROM S WHERE a > 50 AND c BETWEEN 20 AND 30`,
		`SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30 WEIGHT 2`,
	}
}

// Traffic generates the numeric catalog the concurrent-traffic and
// serving workloads query: one table S with float attributes a, b, c
// drawn uniformly from [0, 100) plus a clustered attribute t that
// ascends with the row index (i/rows*100 plus uniform [0,1) noise).
// The uniform columns make every storage segment span nearly the full
// domain — per-segment stats can never prune them — while t's segments
// cover narrow ascending slices, so a range predicate on t exercises
// the segment-stats pushdown (and t's near-constant high float bits
// compress, where the uniform columns stay raw). Unlike the
// paper-scenario generators it plants nothing — the point is cheap,
// deterministic bulk data whose leaf distances do real work at any row
// count, so the same (rows, seed) pair always reproduces the exact
// catalog on both ends of a client/server benchmark.
func Traffic(rows int, seed int64) (*dataset.Catalog, error) {
	rng := rand.New(rand.NewSource(seed))
	tbl, err := dataset.NewTable("S", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
		{Name: "b", Kind: dataset.KindFloat},
		{Name: "c", Kind: dataset.KindFloat},
		{Name: "t", Kind: dataset.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow(
			dataset.Float(rng.Float64()*100),
			dataset.Float(rng.Float64()*100),
			dataset.Float(rng.Float64()*100),
			dataset.Float(float64(i)/float64(rows)*100+rng.Float64()),
		); err != nil {
			return nil, err
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		return nil, err
	}
	return cat, nil
}
