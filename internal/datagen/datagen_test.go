package datagen

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestEnvironmentalStructure(t *testing.T) {
	cat, truth, err := Environmental(EnvConfig{Hours: 480, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := cat.Table("Weather")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cat.Table("Air-Pollution")
	if err != nil {
		t.Fatal(err)
	}
	if w.NumRows() != 480 || p.NumRows() != 480 {
		t.Fatalf("rows: %d/%d", w.NumRows(), p.NumRows())
	}
	if truth.WeatherRows != 480 || truth.PollutionRow != 480 {
		t.Fatalf("truth rows: %+v", truth)
	}
	// All four figure-3 connections registered.
	for _, conn := range []string{"at-same-location", "at-same-time-as", "with-time-diff", "with-distance"} {
		if _, err := cat.Connection(conn); err != nil {
			t.Errorf("missing connection %s: %v", conn, err)
		}
	}
}

func TestEnvironmentalPlantedCorrelations(t *testing.T) {
	_, truth, err := Environmental(EnvConfig{Hours: 1440, Seed: 2, HotSpots: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Temperature leads ozone by exactly LagHours.
	lag, corr := stats.BestLag(truth.Temperature, truth.Ozone, 6)
	if lag != truth.LagHours {
		t.Fatalf("best lag %d (corr %.3f), want %d", lag, corr, truth.LagHours)
	}
	if corr < 0.7 {
		t.Fatalf("lagged correlation too weak: %v", corr)
	}
}

func TestEnvironmentalTempSolarCorrelation(t *testing.T) {
	cat, _, err := Environmental(EnvConfig{Hours: 720, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := cat.Table("Weather")
	temp, _ := w.FloatsOf("Temperature")
	solar, _ := w.FloatsOf("Solar_Radiation")
	hum, _ := w.FloatsOf("Humidity")
	if c := stats.Pearson(temp, solar); c < 0.6 {
		t.Fatalf("temp/solar correlation: %v", c)
	}
	if c := stats.Pearson(temp, hum); c > -0.5 {
		t.Fatalf("temp/humidity correlation should be negative: %v", c)
	}
}

func TestEnvironmentalHotSpots(t *testing.T) {
	cat, truth, err := Environmental(EnvConfig{Hours: 480, Seed: 4, HotSpots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.HotSpotRows) != 3 {
		t.Fatalf("hot spots: %v", truth.HotSpotRows)
	}
	p, _ := cat.Table("Air-Pollution")
	oz, _ := p.FloatsOf("Ozone")
	for _, row := range truth.HotSpotRows {
		if oz[row] < 200 {
			t.Fatalf("hot spot row %d has ozone %v", row, oz[row])
		}
	}
	// Non-hot-spot ozone stays in the normal regime.
	hot := make(map[int]bool)
	for _, r := range truth.HotSpotRows {
		hot[r] = true
	}
	for i, v := range oz {
		if !hot[i] && v > 200 {
			t.Fatalf("unplanted ozone %v at row %d", v, i)
		}
	}
}

func TestEnvironmentalOffsetsBreakEquality(t *testing.T) {
	cat, _, err := Environmental(EnvConfig{Hours: 200, Seed: 5, OffsetMinutes: 30})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := cat.Table("Weather")
	p, _ := cat.Table("Air-Pollution")
	wt, _ := w.FloatsOf("DateTime")
	pt, _ := p.FloatsOf("DateTime")
	for i := range wt {
		if wt[i] == pt[i] {
			t.Fatal("offset should break timestamp equality")
		}
		if math.Abs(wt[i]-pt[i]) != 1800 {
			t.Fatalf("offset should be exactly 30 min, got %v s", math.Abs(wt[i]-pt[i]))
		}
	}
}

func TestEnvironmentalDeterministic(t *testing.T) {
	cat1, _, _ := Environmental(EnvConfig{Hours: 100, Seed: 7})
	cat2, _, _ := Environmental(EnvConfig{Hours: 100, Seed: 7})
	w1, _ := cat1.Table("Weather")
	w2, _ := cat2.Table("Weather")
	t1, _ := w1.FloatsOf("Temperature")
	t2, _ := w2.FloatsOf("Temperature")
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("same seed must reproduce the same data")
		}
	}
	cat3, _, _ := Environmental(EnvConfig{Hours: 100, Seed: 8})
	w3, _ := cat3.Table("Weather")
	t3, _ := w3.FloatsOf("Temperature")
	same := true
	for i := range t1 {
		if t1[i] != t3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestEnvironmentalSubsampledPollution(t *testing.T) {
	cat, truth, err := Environmental(EnvConfig{Hours: 2849, PollutionEvery: 119, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := cat.Table("Air-Pollution")
	if p.NumRows() != 24 {
		t.Fatalf("pollution rows: %d, want 24", p.NumRows())
	}
	w, _ := cat.Table("Weather")
	// Cross product matches figure 4's 68,376 objects.
	if got := w.NumRows() * p.NumRows(); got != 68376 {
		t.Fatalf("cross product: %d, want 68376", got)
	}
	_ = truth
}

func TestCADPartsStructure(t *testing.T) {
	tbl, truth, err := CADParts(CADConfig{Parts: 200, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 200 {
		t.Fatalf("rows: %d", tbl.NumRows())
	}
	if tbl.NumCols() != 28 { // PartID + 27 params
		t.Fatalf("cols: %d", tbl.NumCols())
	}
	if len(truth.Query) != 27 || len(truth.ExactRows) == 0 {
		t.Fatalf("truth: %+v", truth)
	}
	// Exact rows really are within the allowance on all params.
	for _, row := range truth.ExactRows {
		for p, qv := range truth.Query {
			v, _ := tbl.Value(row, schemaParam(p))
			if math.Abs(v.F-qv) > truth.Allowance {
				t.Fatalf("exact row %d violates allowance on P%d", row, p+1)
			}
		}
	}
	// The near-miss violates exactly one parameter, by ≤ 2 allowances.
	violations := 0
	for p, qv := range truth.Query {
		v, _ := tbl.Value(truth.NearMissRow, schemaParam(p))
		d := math.Abs(v.F - qv)
		if d > truth.Allowance {
			violations++
			if d > 2*truth.Allowance {
				t.Fatalf("near miss too far: %v", d)
			}
		}
	}
	if violations != 1 {
		t.Fatalf("near-miss violations: %d", violations)
	}
}

func TestCADQuerySQLWithBaseline(t *testing.T) {
	tbl, truth, err := CADParts(CADConfig{Parts: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	// The boolean allowance query finds the exact rows but loses the
	// near miss — the paper's similarity-retrieval motivation.
	rows, err := baseline.MatchesSQL(cat, CADQuerySQL(truth, 0))
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[int]bool)
	for _, r := range rows {
		found[r] = true
	}
	for _, want := range truth.ExactRows {
		if !found[want] {
			t.Fatalf("boolean query lost exact row %d", want)
		}
	}
	if found[truth.NearMissRow] {
		t.Fatal("boolean query should lose the near miss")
	}
}

func schemaParam(p int) string { return fmt.Sprintf("P%d", p+1) }

func TestMultiDBStructure(t *testing.T) {
	cat, truth, err := MultiDB(MultiDBConfig{People: 200, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := cat.Table("PersonsA")
	b, _ := cat.Table("PersonsB")
	if a.NumRows() != 200 {
		t.Fatalf("A rows: %d", a.NumRows())
	}
	if len(truth.Matches) == 0 {
		t.Fatal("no planted matches")
	}
	if b.NumRows() < len(truth.Matches) {
		t.Fatalf("B rows %d < matches %d", b.NumRows(), len(truth.Matches))
	}
	// Matched names are similar but (usually) not identical; verify at
	// least 30% differ textually while sharing a prefix-ish structure.
	differ := 0
	for ar, br := range truth.Matches {
		an, _ := a.Value(ar, "Name")
		bn, _ := b.Value(br, "FullName")
		if an.S != bn.S {
			differ++
		}
		if len(bn.S) < 2 {
			t.Fatalf("degenerate misspelling %q of %q", bn.S, an.S)
		}
	}
	if differ*10 < len(truth.Matches)*3 {
		t.Fatalf("too few misspellings: %d of %d", differ, len(truth.Matches))
	}
	if _, err := cat.Connection("similar-name"); err != nil {
		t.Fatal(err)
	}
}
