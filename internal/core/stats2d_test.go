package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// TestStats2DQuantileReorderExact: the exact-match count must survive
// the 2D-quantile display reordering, which breaks the ascending-
// prefix invariant the Stats shortcut relies on (regression: the
// prefix binary search miscounted after apply2DQuantiles).
func TestStats2DQuantileReorderExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tbl, err := dataset.NewTable("T", dataset.Schema{
		{Name: "x", Kind: dataset.KindFloat},
		{Name: "y", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := tbl.AppendRow(dataset.Float(rng.Float64()*100), dataset.Float(rng.Float64()*100)); err != nil {
			t.Fatal(err)
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	e := New(cat, nil, Options{GridW: 12, GridH: 12, Arrangement: Arrange2D, AxisX: "x", AxisY: "y"})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x BETWEEN 40 AND 45 OR y BETWEEN 90 AND 95`)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, d := range res.Combined() {
		if d == 0 {
			want++
		}
	}
	if got := res.Stats().NumResults; got != want {
		t.Fatalf("NumResults = %d, want %d", got, want)
	}
}
