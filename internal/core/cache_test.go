package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

// sameResults asserts two results are bit-identical in everything the
// interface consumes: combined distances, display count, ranking order
// and the per-predicate window vectors.
func sameResults(t *testing.T, a, b *Result) {
	t.Helper()
	if a.N != b.N || a.Displayed != b.Displayed {
		t.Fatalf("shape: N %d vs %d, Displayed %d vs %d", a.N, b.N, a.Displayed, b.Displayed)
	}
	ca, cb := a.Combined(), b.Combined()
	for i := range ca {
		x, y := ca[i], cb[i]
		if math.Float64bits(x) != math.Float64bits(y) && !(math.IsNaN(x) && math.IsNaN(y)) {
			t.Fatalf("combined[%d]: %v vs %v", i, x, y)
		}
	}
	for rank := 0; rank < a.Displayed; rank++ {
		if a.Order[rank] != b.Order[rank] {
			t.Fatalf("order[%d]: %d vs %d", rank, a.Order[rank], b.Order[rank])
		}
	}
	preds := query.Predicates(a.Query.Where)
	bpreds := query.Predicates(b.Query.Where)
	if len(preds) != len(bpreds) {
		t.Fatalf("predicate count: %d vs %d", len(preds), len(bpreds))
	}
	for pi := range preds {
		for i := 0; i < a.N; i++ {
			x, errA := a.NormOf(preds[pi], i)
			y, errB := b.NormOf(bpreds[pi], i)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("NormOf error mismatch for predicate %d", pi)
			}
			if errA != nil {
				break
			}
			if math.Float64bits(x) != math.Float64bits(y) && !(math.IsNaN(x) && math.IsNaN(y)) {
				t.Fatalf("predicate %d item %d: %v vs %v", pi, i, x, y)
			}
		}
	}
}

// TestRunCachedMatchesRun: cold runs, first cached runs and warm cached
// runs must be bit-identical across operator and structure varieties
// (simple ranges, IN lists, strings, negation via both inversion and
// boolean fallback, approximate joins).
func TestRunCachedMatchesRun(t *testing.T) {
	queries := []string{
		`SELECT x FROM T WHERE x > 6`,
		`SELECT x FROM T WHERE x > 6 AND y < 5`,
		`SELECT x FROM T WHERE x BETWEEN 2 AND 5 OR y > 7 WEIGHT 2`,
		`SELECT x FROM T WHERE NOT (x < 4) AND y > 1`,
		`SELECT x FROM T WHERE NOT (name = 'beta') OR x IN (1, 3, 5)`,
		`SELECT x FROM T WHERE name = 'gamma' AND level >= 'mid'`,
	}
	for _, sql := range queries {
		e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
		q, err := query.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := e.Run(q)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		cache := NewRunCache()
		q2, _ := query.Parse(sql)
		first, err := e.RunCached(q2, cache)
		if err != nil {
			t.Fatalf("%s cached: %v", sql, err)
		}
		sameResults(t, cold, first)
		if h, m := first.Timings.CacheHits, first.Timings.CacheMisses; h != 0 || m == 0 {
			t.Fatalf("%s: first cached run hits=%d misses=%d", sql, h, m)
		}
		warm, err := e.RunCached(q2, cache)
		if err != nil {
			t.Fatalf("%s warm: %v", sql, err)
		}
		sameResults(t, cold, warm)
		if h, m := warm.Timings.CacheHits, warm.Timings.CacheMisses; m != 0 || h == 0 {
			t.Fatalf("%s: warm run hits=%d misses=%d", sql, h, m)
		}
	}
}

// TestRunCachedJoinLeaf: connection leaves cache too (the most
// expensive leaf kind), including under negation, whose key carries the
// negation flag so the mutated vector is never re-mutated.
func TestRunCachedJoinLeaf(t *testing.T) {
	for _, sql := range []string{
		`SELECT Temperature FROM Weather, Air-Pollution WHERE Temperature > 20 AND CONNECT with-time-diff(3600)`,
		`SELECT Temperature FROM Weather, Air-Pollution WHERE Temperature > 20 AND NOT (CONNECT with-time-diff(3600))`,
	} {
		e := New(envCatalog(t), nil, Options{GridW: 8, GridH: 8})
		q, err := query.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := e.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		cache := NewRunCache()
		if _, err := e.RunCached(q, cache); err != nil {
			t.Fatal(err)
		}
		warm, err := e.RunCached(q, cache)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, cold, warm)
		if warm.Timings.CacheMisses != 0 {
			t.Fatalf("%s: warm misses %d", sql, warm.Timings.CacheMisses)
		}
	}
}

// TestRunCachedWeightOnlyRerun: changing only weighting factors hits
// the cache on every leaf — the section 5.2 slider loop recomputes
// nothing below the combination stage.
func TestRunCachedWeightOnlyRerun(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	q, err := query.Parse(`SELECT x FROM T WHERE x > 6 AND y < 5 AND name = 'beta'`)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewRunCache()
	if _, err := e.RunCached(q, cache); err != nil {
		t.Fatal(err)
	}
	query.Predicates(q.Where)[0].SetWeight(3)
	query.Predicates(q.Where)[2].SetWeight(0.5)
	res, err := e.RunCached(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.CacheMisses != 0 || res.Timings.CacheHits != 3 {
		t.Fatalf("weight-only rerun: hits=%d misses=%d", res.Timings.CacheHits, res.Timings.CacheMisses)
	}
	// And the reweighted cached result matches a cold reweighted run.
	cold, err := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8}).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, cold, res)
}

// TestRunCachedSingleSliderDrag: moving one condition's range misses
// exactly that leaf and hits the rest.
func TestRunCachedSingleSliderDrag(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	q, err := query.Parse(`SELECT x FROM T WHERE x > 6 AND y < 5 AND name = 'beta'`)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewRunCache()
	if _, err := e.RunCached(q, cache); err != nil {
		t.Fatal(err)
	}
	c := query.Predicates(q.Where)[0].(*query.Cond)
	c.Value = dataset.Float(4) // drag x > 6 to x > 4
	res, err := e.RunCached(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.CacheHits != 2 || res.Timings.CacheMisses != 1 {
		t.Fatalf("slider drag: hits=%d misses=%d", res.Timings.CacheHits, res.Timings.CacheMisses)
	}
}

// TestRunCachedPoolsBuffers: warm runs reuse superseded Results'
// backing arrays — the rerun is allocation-free at the n-vector
// granularity. The pool double-buffers (a run's buffers are recycled
// only once a NEWER run succeeds), so the third run lands in the
// first run's arrays.
func TestRunCachedPoolsBuffers(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	q, err := query.Parse(`SELECT x FROM T WHERE x > 6 AND y < 5`)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewRunCache()
	first, err := e.RunCached(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	firstBufs := map[*float64]bool{&first.Combined()[0]: true, &first.sorted[0]: true}
	for _, vec := range first.Eval.ByNode {
		firstBufs[&vec[0]] = true
	}
	if _, err := e.RunCached(q, cache); err != nil {
		t.Fatal(err)
	}
	third, err := e.RunCached(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !firstBufs[&third.Combined()[0]] {
		t.Fatal("third run's Combined did not reuse a pooled buffer")
	}
	for node, vec := range third.Eval.ByNode {
		if !firstBufs[&vec[0]] {
			t.Fatalf("third run's vector for %q did not reuse a pooled buffer", node.Label)
		}
	}
}

// TestRunCachedFailedRunPreservesLiveResult: a rerun that errors after
// evaluation began must not scribble over the previous (still served)
// Result — its buffers are recycled only once a newer run succeeds.
func TestRunCachedFailedRunPreservesLiveResult(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	q, err := query.Parse(`SELECT x FROM T WHERE x > 6 AND y < 5`)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewRunCache()
	live, err := e.RunCached(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), live.Combined()...)
	// Corrupt the second predicate's weight so Evaluate fails after the
	// first subtree (and its buffer writes) already ran.
	bad := query.Predicates(q.Where)[1].(*query.Cond)
	bad.W = math.Inf(1) * 0 // NaN weight: passes SetWeight-less mutation, fails evaluation
	if _, err := e.RunCached(q, cache); err == nil {
		t.Fatal("expected the NaN-weight run to fail")
	}
	for i, v := range live.Combined() {
		if math.Float64bits(v) != math.Float64bits(snapshot[i]) && !(math.IsNaN(v) && math.IsNaN(snapshot[i])) {
			t.Fatalf("failed run overwrote live Combined[%d]: %v -> %v", i, snapshot[i], v)
		}
	}
	// The cache recovers: fixing the query yields a correct run again.
	bad.W = 1
	again, err := e.RunCached(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, live, again)
}

// TestRunCacheEviction: the entry count stays bounded under a sweep of
// distinct ranges.
func TestRunCacheEviction(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	cache := NewRunCache()
	for i := 0; i < maxCacheEntries+40; i++ {
		q, err := query.Parse(fmt.Sprintf(`SELECT x FROM T WHERE x > %d`, i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.RunCached(q, cache); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() > maxCacheEntries {
		t.Fatalf("cache grew to %d entries (cap %d)", cache.Len(), maxCacheEntries)
	}
}

// TestRunCacheInvalidateAndPrune: per-condition invalidation and
// whole-query pruning drop exactly the affected entries.
func TestRunCacheInvalidateAndPrune(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	q, err := query.Parse(`SELECT x FROM T WHERE x > 6 AND y < 5`)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewRunCache()
	if _, err := e.RunCached(q, cache); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Fatalf("entries: %d", cache.Len())
	}
	cache.InvalidateCond(query.Predicates(q.Where)[0].(*query.Cond))
	if cache.Len() != 1 {
		t.Fatalf("after InvalidateCond: %d entries", cache.Len())
	}
	// Invalidation is structural, not per-attribute: a second condition
	// on the same column keeps its entry when the first is dragged.
	q3, err := query.Parse(`SELECT x FROM T WHERE x > 6 OR x < 2`)
	if err != nil {
		t.Fatal(err)
	}
	c3 := NewRunCache()
	if _, err := e.RunCached(q3, c3); err != nil {
		t.Fatal(err)
	}
	c3.InvalidateCond(query.Predicates(q3.Where)[0].(*query.Cond))
	if c3.Len() != 1 {
		t.Fatalf("same-attribute sibling was evicted: %d entries", c3.Len())
	}
	res3, err := e.RunCached(q3, c3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Timings.CacheHits != 1 || res3.Timings.CacheMisses != 1 {
		t.Fatalf("after structural invalidation: hits=%d misses=%d", res3.Timings.CacheHits, res3.Timings.CacheMisses)
	}
	// Pruning to a query that keeps only y drops the rest.
	q2, err := query.Parse(`SELECT x FROM T WHERE y < 9`)
	if err != nil {
		t.Fatal(err)
	}
	cache.Prune(q2)
	if cache.Len() != 1 {
		t.Fatalf("after Prune: %d entries", cache.Len())
	}
	res, err := e.RunCached(q2, cache)
	if err != nil {
		t.Fatal(err)
	}
	// y < 9 is a different range than y < 5: everything misses.
	if res.Timings.CacheHits != 0 {
		t.Fatalf("pruned cache produced hits: %d", res.Timings.CacheHits)
	}
	cache.Clear()
	if cache.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	hits, misses := cache.Stats()
	if hits == 0 && misses == 0 {
		t.Fatal("cumulative stats never counted")
	}
}

// TestRelevanceLazy: the accessor materializes once and matches the
// eager computation.
func TestRelevanceLazy(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6`)
	if err != nil {
		t.Fatal(err)
	}
	rel := res.Relevance()
	if len(rel) != res.N {
		t.Fatalf("relevance length %d", len(rel))
	}
	for i, d := range res.Combined() {
		want := 1 / (1 + math.Abs(d))
		if math.IsNaN(d) {
			want = 0
		}
		if rel[i] != want {
			t.Fatalf("relevance[%d] = %v, want %v", i, rel[i], want)
		}
	}
	if &res.Relevance()[0] != &rel[0] {
		t.Fatal("Relevance not memoized")
	}
	// Exact answers invert to relevance 1 and rank first.
	if rel[res.Order[0]] != 1 {
		t.Fatalf("top-ranked relevance %v", rel[res.Order[0]])
	}
}
