package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/query"
	"repro/internal/relevance"
)

// RunCache is the reuse layer of the incremental feedback loop: it
// caches per-predicate leaf distance vectors across Engine.RunCached
// calls and pools the evaluation buffers those runs write into.
//
// Entries are keyed by a structural signature of the leaf — table,
// attribute, operator, literals and distance function, but NOT the
// weighting factor — so a weight-only rerun (the section 5.2 slider
// interaction) recomputes nothing below the combination stage, and a
// single-slider range drag recomputes exactly the one leaf whose
// literals changed. Since the signature captures every input of the
// leaf computation (the catalog is immutable while an engine uses it),
// entries never go stale; invalidation (InvalidateCond, Prune, the LRU
// cap) exists to bound memory during slider storms, not for
// correctness.
//
// A RunCache is safe for the concurrent leaf builds within one run, but
// at most one RunCached call may use it at a time, and a Result
// produced with a RunCache is only valid until the next successful
// RunCached on the same cache (whose evaluation recycles the buffers).
// Sessions — one user, one interaction loop — are exactly that shape.
// All runs sharing a cache must use the same catalog and distance
// registry: the keys fingerprint table names and row counts, not cell
// contents or registered function identities.
//
// A RunCache may additionally be backed by a catalog-level SharedCache
// (AttachShared): lookups then fall through private → shared →
// recompute, and recomputed leaves fill the shared tier (singleflight
// across sessions) before being promoted into the private one. The
// private tier keeps serving a session even after shared-tier eviction
// or another session's invalidation — shared entries are immutable and
// only ever unlinked, never overwritten in place.
type RunCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	gen     uint64
	// shared is the optional catalog-level tier behind this cache.
	shared *SharedCache
	// Cumulative and per-run lookup accounting (tests and the
	// StageTimings attribution). Shared-tier hits count as hits and
	// additionally as sharedHits.
	hits, misses                      uint64
	runHits, runMisses, runSharedHits int
	// Per-run segment-pushdown accounting: storage segments whose decode
	// the footer stats skipped, out of the segments cold computes
	// considered (see predicateData.SegsSkipped). Zero on warm runs.
	runSegsSkipped, runSegs int
	// Buffer pools for the evaluation output vectors and the ranking's
	// index permutation. free holds reusable buffers; lent the ones
	// handed out since the current run began; live the ones belonging
	// to the last successful run's Result (recycled only once a newer
	// run SUCCEEDS, so a failed rerun never corrupts the Result a
	// session keeps serving on error).
	free, lent, live          [][]float64
	intFree, intLent, intLive [][]int
	// seedThr/seedSig carry the previous ranking's raw k-th value (the
	// rank-before-scale pruning threshold) across recalculations of the
	// same item space. Weight-only reruns reuse it as-is — a stale seed
	// can only cost a re-run of the selection, never correctness — but
	// query and range edits clear it (InvalidateCond, Prune, Clear):
	// the perturbed leaf makes the old raw domain meaningless as a
	// starting point.
	seedThr float64
	seedSig string
	// interior is the private tier of the interior-normalization cache:
	// cached raw combined vectors of interior query-tree nodes with
	// their quantile sketches (relevance.InteriorEntry), keyed by
	// runKeys.interior. Like leaf entries, interior keys embed every
	// input of the cached computation (the leaves' full cache keys, the
	// subtree shape, child weights, kernel options), so entries never go
	// stale; the invalidation paths drop them wholesale purely to bound
	// memory during slider storms.
	interior map[string]*interiorRef
}

// interiorRef is one privately held interior entry with its LRU stamp.
type interiorRef struct {
	e    *relevance.InteriorEntry
	used uint64
}

// maxCacheEntries bounds the cache so pathological interaction scripts
// (e.g. a slider sweep over hundreds of distinct ranges with
// auto-recalculate on) stay within a constant factor of the working
// set. 64 entries comfortably covers the paper's interfaces (a handful
// of predicates, each with its current and a few recent ranges).
const maxCacheEntries = 64

// maxInteriorEntries bounds the private interior tier. A query tree has
// only a handful of interior nodes (one per AND/OR level), so 16 covers
// the working set of an interaction loop with room for a few recent
// query shapes.
const maxInteriorEntries = 16

// cacheEntry is one cached leaf. Exactly one of pd (simple conditions)
// and dists (join, boolean-negation and subquery leaves) is set.
type cacheEntry struct {
	pd    *predicateData
	dists []float64
	// quant is the sorted quantile index over the leaf's distances,
	// built on the entry's first hit: a leaf that recurs across reruns
	// is hot, and the one-time O(n log n) sort buys O(1) normalization
	// ranges for every subsequent weighting change.
	quant *relevance.LeafQuantiles
	// cstats is the per-chunk min/NaN index built together with quant:
	// it feeds the block-pruning bounds of the rank-before-scale
	// ranking, so warm reruns can skip whole chunks of root combine
	// work.
	cstats *relevance.LeafChunkStats
	// attr is the condition's attribute as written in the query (empty
	// for non-condition leaves) — the handle for per-condition
	// invalidation.
	attr string
	// label is the leaf's structural label — the handle Prune matches
	// against the conditions of a replacement query.
	label string
	// used is the generation of the last run that hit or stored the
	// entry (LRU eviction order).
	used uint64
}

// NewRunCache creates an empty cache.
func NewRunCache() *RunCache {
	return &RunCache{entries: make(map[string]*cacheEntry),
		interior: make(map[string]*interiorRef), seedThr: math.NaN()}
}

// rootSeed returns the previous ranking's raw threshold for the given
// item-space signature, or NaN when none is carried.
func (c *RunCache) rootSeed(sig string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seedSig != sig {
		return math.NaN()
	}
	return c.seedThr
}

// storeRootSeed records a ranking's raw threshold for the next
// recalculation (NaN clears it).
func (c *RunCache) storeRootSeed(sig string, thr float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seedThr, c.seedSig = thr, sig
}

// clearRootSeedLocked drops the carried threshold; called with the
// mutex held by every invalidation path.
func (c *RunCache) clearRootSeedLocked() {
	c.seedThr, c.seedSig = math.NaN(), ""
}

// AttachShared backs this private cache with a catalog-level shared
// tier. All caches attached to one SharedCache must run over the same
// catalog and distance registry. Attach before the first run.
func (c *RunCache) AttachShared(sc *SharedCache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shared = sc
}

// beginRun starts a new run: per-run counters reset, and buffers
// handed out since the last run ended (lazy window materializations of
// the live Result) join the live set.
func (c *RunCache) beginRun() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.runHits, c.runMisses, c.runSharedHits = 0, 0, 0
	c.runSegsSkipped, c.runSegs = 0, 0
	c.live = append(c.live, c.lent...)
	c.lent = c.lent[:0]
	c.intLive = append(c.intLive, c.intLent...)
	c.intLent = c.intLent[:0]
}

// endRun finishes a run. On success the previous Result is superseded:
// its buffers return to the pool and this run's become the live set.
// On failure this run's (possibly partially written) buffers return to
// the pool and the live Result's stay untouched — a session that keeps
// serving its old Result after a failed Recalculate stays consistent.
// Steady state therefore retains two buffer generations (live plus
// free), the usual double-buffering cost.
func (c *RunCache) endRun(ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.free = append(c.free, c.live...)
		c.live = append(c.live[:0], c.lent...)
		c.intFree = append(c.intFree, c.intLive...)
		c.intLive = append(c.intLive[:0], c.intLent...)
	} else {
		c.free = append(c.free, c.lent...)
		c.intFree = append(c.intFree, c.intLent...)
	}
	c.lent = c.lent[:0]
	c.intLent = c.intLent[:0]
}

// evictLocked drops least-recently-used entries beyond the cap; called
// with the mutex held after every store. Entries stored by the current
// run carry the current generation and therefore go last.
func (c *RunCache) evictLocked() {
	for len(c.entries) > maxCacheEntries {
		var oldestKey string
		var oldest uint64
		first := true
		for k, e := range c.entries {
			if first || e.used < oldest || (e.used == oldest && k < oldestKey) {
				oldestKey, oldest, first = k, e.used, false
			}
		}
		delete(c.entries, oldestKey)
	}
}

// runStats returns the current run's lookup counts. sharedHits is the
// subset of hits served by the shared tier (including waits on another
// session's in-flight fill).
func (c *RunCache) runStats() (hits, misses, sharedHits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runHits, c.runMisses, c.runSharedHits
}

// addSegStats folds one cold compute's segment-pushdown counts into the
// current run's attribution. Called from the condFetch compute closure,
// which may run on any goroutine (including another session's
// singleflight fill — the counts land on whichever run paid the cost).
func (c *RunCache) addSegStats(skipped, segs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runSegsSkipped += skipped
	c.runSegs += segs
}

// runSegStats returns the current run's segment-pushdown counts.
func (c *RunCache) runSegStats() (skipped, segs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runSegsSkipped, c.runSegs
}

// Stats returns the cumulative hit/miss counts.
func (c *RunCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached leaves.
func (c *RunCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// InteriorLen returns the number of privately held interior entries.
func (c *RunCache) InteriorLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.interior)
}

// leafIndexes bundles the per-leaf acceleration structures a fetch
// returns: the quantile index (O(1) normalization ranges) and the
// chunk stats (block-pruning bounds). Both are built together on a
// leaf's first reuse and promoted to the shared tier.
type leafIndexes struct {
	quant  *relevance.LeafQuantiles
	cstats *relevance.LeafChunkStats
}

// condFetch resolves a condition leaf through the tiers: private hit,
// then shared hit (promoted into the private tier), then compute (the
// result fills the shared tier singleflight when one is attached, then
// the private tier). needSigned misses entries computed without signed
// distances (a cache shared across arrangement modes never serves a 2D
// run a spiral-era vector).
func (c *RunCache) condFetch(key, attr, label string, needSigned bool, compute func() (*predicateData, error)) (*predicateData, leafIndexes, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok && e.pd != nil && (!needSigned || e.pd.Signed != nil) {
		c.hits++
		c.runHits++
		e.used = c.gen
		pd, li := e.pd, leafIndexes{quant: e.quant, cstats: e.cstats}
		c.mu.Unlock()
		if li.quant == nil {
			li = c.buildIndexes(key, pd.Raw)
		}
		return pd, li, nil
	}
	shared := c.shared
	c.mu.Unlock()
	if shared == nil {
		pd, err := compute()
		if err != nil {
			return nil, leafIndexes{}, err
		}
		c.store(key, &cacheEntry{pd: pd, attr: attr, label: label}, false)
		return pd, leafIndexes{}, nil
	}
	v, hit, err := shared.fetch(key, needSigned, func() (*sharedEntry, error) {
		pd, err := compute()
		if err != nil {
			return nil, err
		}
		return &sharedEntry{pd: pd, attr: attr, label: label}, nil
	})
	if err != nil {
		return nil, leafIndexes{}, err
	}
	li := leafIndexes{quant: v.quant, cstats: v.cstats}
	c.store(key, &cacheEntry{pd: v.pd, quant: li.quant, cstats: li.cstats, attr: attr, label: label}, hit)
	return v.pd, li, nil
}

// leafFetch is condFetch for non-condition leaf vectors (joins,
// boolean-negation fallbacks, subqueries). attr carries the owning
// condition's attribute when the leaf is a boolean-negation fallback of
// a simple condition (so range edits invalidate it too).
func (c *RunCache) leafFetch(key, attr, label string, compute func() ([]float64, error)) ([]float64, leafIndexes, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok && e.dists != nil {
		c.hits++
		c.runHits++
		e.used = c.gen
		dists, li := e.dists, leafIndexes{quant: e.quant, cstats: e.cstats}
		c.mu.Unlock()
		if li.quant == nil {
			li = c.buildIndexes(key, dists)
		}
		return dists, li, nil
	}
	shared := c.shared
	c.mu.Unlock()
	if shared == nil {
		dists, err := compute()
		if err != nil {
			return nil, leafIndexes{}, err
		}
		c.store(key, &cacheEntry{dists: dists, attr: attr, label: label}, false)
		return dists, leafIndexes{}, nil
	}
	v, hit, err := shared.fetch(key, false, func() (*sharedEntry, error) {
		dists, err := compute()
		if err != nil {
			return nil, err
		}
		return &sharedEntry{dists: dists, attr: attr, label: label}, nil
	})
	if err != nil {
		return nil, leafIndexes{}, err
	}
	li := leafIndexes{quant: v.quant, cstats: v.cstats}
	c.store(key, &cacheEntry{dists: v.dists, quant: li.quant, cstats: li.cstats, attr: attr, label: label}, hit)
	return v.dists, li, nil
}

// store records an entry in the private tier and attributes the lookup
// that produced it: sharedHit marks a vector served by the shared tier
// (a cache hit for the run), anything else was computed here (a miss).
func (c *RunCache) store(key string, e *cacheEntry, sharedHit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sharedHit {
		c.hits++
		c.runHits++
		c.runSharedHits++
	} else {
		c.misses++
		c.runMisses++
	}
	e.used = c.gen
	c.entries[key] = e
	c.evictLocked()
}

// buildIndexes resolves a hot leaf's acceleration indexes (quantiles +
// chunk stats): reuse ones another session already promoted to the
// shared tier, else build OUTSIDE the mutex — the O(n log n) sort must
// not serialize the sibling leaf builds that share the cache — and
// promote them. Two racing builders do redundant work; both results
// are identical and the canonical (first promoted) one wins.
func (c *RunCache) buildIndexes(key string, dists []float64) leafIndexes {
	c.mu.Lock()
	shared := c.shared
	c.mu.Unlock()
	var li leafIndexes
	if shared != nil {
		li.quant, li.cstats = shared.indexesOf(key)
		if li.quant == nil {
			// Another node in the fleet may already have paid the sort.
			li.quant, li.cstats = shared.remoteIndexesOf(key)
		}
	}
	if li.quant == nil {
		li.quant = relevance.BuildLeafQuantiles(dists)
		li.cstats = relevance.BuildLeafChunkStats(dists)
		if shared != nil {
			li.quant, li.cstats = shared.attachIndexes(key, li.quant, li.cstats)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.quant != nil {
			return leafIndexes{quant: e.quant, cstats: e.cstats}
		}
		e.quant, e.cstats = li.quant, li.cstats
	}
	return li
}

// interiorFetch resolves an interior-normalization entry through the
// tiers: private hit, then shared hit (promoted into the private tier),
// then nil (the evaluator recomputes and interiorStore fills both
// tiers). Entries are immutable and borrowed read-only by evaluations,
// so serving the same entry to any number of runs is safe.
func (c *RunCache) interiorFetch(key string) *relevance.InteriorEntry {
	c.mu.Lock()
	if r, ok := c.interior[key]; ok {
		r.used = c.gen
		e := r.e
		c.mu.Unlock()
		return e
	}
	shared := c.shared
	c.mu.Unlock()
	if shared == nil {
		return nil
	}
	e := shared.InteriorOf(key)
	if e != nil {
		c.storeInterior(key, e)
	}
	return e
}

// interiorStore records a freshly built interior entry: the shared tier
// first (whose first-promoted entry is canonical, so concurrent
// sessions converge on one resident copy), then the private tier.
func (c *RunCache) interiorStore(key string, e *relevance.InteriorEntry) {
	c.mu.Lock()
	shared := c.shared
	c.mu.Unlock()
	if shared != nil {
		e = shared.AttachInterior(key, e)
	}
	c.storeInterior(key, e)
}

// storeInterior places an entry in the private tier under the LRU cap.
func (c *RunCache) storeInterior(key string, e *relevance.InteriorEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.interior[key] = &interiorRef{e: e, used: c.gen}
	for len(c.interior) > maxInteriorEntries {
		var oldestKey string
		var oldest uint64
		first := true
		for k, r := range c.interior {
			if first || r.used < oldest || (r.used == oldest && k < oldestKey) {
				oldestKey, oldest, first = k, r.used, false
			}
		}
		delete(c.interior, oldestKey)
	}
}

// alloc hands out an n-sized evaluation buffer, reusing the pool when a
// matching length is free. Buffers are fully overwritten by the
// evaluator before any read, so no zeroing happens here.
func (c *RunCache) alloc(n int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.free) - 1; i >= 0; i-- {
		if len(c.free[i]) == n {
			b := c.free[i]
			c.free = append(c.free[:i], c.free[i+1:]...)
			c.lent = append(c.lent, b)
			return b
		}
	}
	b := make([]float64, n)
	c.lent = append(c.lent, b)
	return b
}

// allocInt is alloc for int slices (the ranking's index permutation).
func (c *RunCache) allocInt(n int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.intFree) - 1; i >= 0; i-- {
		if len(c.intFree[i]) == n {
			b := c.intFree[i]
			c.intFree = append(c.intFree[:i], c.intFree[i+1:]...)
			c.intLent = append(c.intLent, b)
			return b
		}
	}
	b := make([]int, n)
	c.intLent = append(c.intLent, b)
	return b
}

// InvalidateCond drops the entries derived from exactly this condition
// in its CURRENT form (matched structurally by attribute and label) —
// the session calls it right before a slider drag supersedes a range,
// so the storm of a continuous drag does not pile up one entry per
// intermediate position. Entries of other conditions that merely share
// the attribute (a second predicate on the same column, a same-named
// column of another table) are untouched: invalidation is memory
// management, and a drag must keep recomputing exactly one leaf.
//
// The invalidation propagates to the attached shared tier (the
// superseded range is dead weight there too); sessions still reading
// the old vectors are unaffected — entries are immutable and
// invalidation only unlinks them.
func (c *RunCache) InvalidateCond(cond *query.Cond) {
	if cond == nil {
		return
	}
	label := cond.Label()
	c.mu.Lock()
	c.clearRootSeedLocked()
	shared := c.shared
	for k, e := range c.entries {
		if e.attr != "" && e.attr == cond.Attr && e.label == label {
			delete(c.entries, k)
		}
	}
	// Interior entries combining the superseded leaf are dead weight
	// (their keys embed the old literals and can never be hit again);
	// the private tier is small, so dropping it wholesale beats parsing
	// leaf keys out of interior signatures. Subtrees not touching the
	// edit re-promote from the shared tier on the next run.
	c.clearInteriorLocked()
	c.mu.Unlock()
	if shared != nil {
		shared.InvalidateCond(cond)
	}
}

// Prune drops entries no longer reachable from q — the per-condition
// invalidation for whole-query replacement (SetQuery) and Undo.
// Condition entries survive when their attribute still appears in some
// condition of q (a restored query re-hits them); join and subquery
// entries survive by structural label. Prune is strictly private: one
// session abandoning a query says nothing about the other sessions
// sharing the catalog tier, whose leaves stay resident there under the
// LRU + byte budget.
func (c *RunCache) Prune(q *query.Query) {
	if q == nil {
		c.Clear()
		return
	}
	attrs := make(map[string]bool)
	labels := make(map[string]bool)
	query.Walk(q.Where, func(e query.Expr) {
		switch n := e.(type) {
		case *query.Cond:
			attrs[n.Attr] = true
		case *query.JoinExpr:
			labels[n.Label()] = true
		case *query.SubqueryExpr:
			labels[n.Label()] = true
		}
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clearRootSeedLocked()
	for k, e := range c.entries {
		if e.attr != "" {
			if !attrs[e.attr] {
				delete(c.entries, k)
			}
			continue
		}
		if !labels[e.label] {
			delete(c.entries, k)
		}
	}
	// Interior entries are per query shape; a replacement query rebuilds
	// them (or re-promotes survivors from the shared tier).
	c.clearInteriorLocked()
}

// Clear drops every entry (the buffer pool is kept: buffer reuse is
// keyed only by vector length).
func (c *RunCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clearRootSeedLocked()
	c.entries = make(map[string]*cacheEntry)
	c.clearInteriorLocked()
}

// clearInteriorLocked drops the private interior tier; called with the
// mutex held by every invalidation path.
func (c *RunCache) clearInteriorLocked() {
	c.interior = make(map[string]*interiorRef)
}

// spaceSig fingerprints the item space a leaf vector was computed over:
// table identities, row counts (and the cross-product cap), and the
// catalog's segment epoch — the content hash of a file-backed catalog,
// 0 for in-memory ones — so a catalog mutated between runs (rows
// appended to a table, a segment file regenerated with different data)
// can never serve stale vectors.
func (e *Engine) spaceSig(space *itemSpace) string {
	epoch := e.cat.Epoch()
	if space.pairs == nil {
		t := space.tables[0]
		return fmt.Sprintf("T:%s:%d:e%x", t.Name(), t.NumRows(), epoch)
	}
	lt, rt := space.tables[0], space.tables[1]
	return fmt.Sprintf("P:%s:%d:%s:%d:%d:e%x", lt.Name(), lt.NumRows(), rt.Name(), rt.NumRows(), e.opt.MaxPairs, epoch)
}
