package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataset"
)

// partnerCatalog: stations and measurements, where each station's
// partner count differs.
func partnerCatalog(t *testing.T) *dataset.Catalog {
	t.Helper()
	cat := dataset.NewCatalog()
	stations, err := dataset.NewTable("Stations", dataset.Schema{
		{Name: "ID", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	measures, err := dataset.NewTable("Measures", dataset.Schema{
		{Name: "StationID", Kind: dataset.KindFloat},
		{Name: "When", Kind: dataset.KindTime},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Station 0: 3 measurements, station 1: 1, station 2: none.
	for i := 0; i < 3; i++ {
		if err := stations.AppendRow(dataset.Float(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Date(1994, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, sid := range []float64{0, 0, 0, 1} {
		if err := measures.AppendRow(dataset.Float(sid), dataset.Time(t0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(stations); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(measures); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddConnection(dataset.Connection{
		Name: "measured-by", Left: "Stations", Right: "Measures",
		LeftAttr: "ID", RightAttr: "StationID",
		Metric: dataset.MetricNumeric, Mode: dataset.ModeEqual,
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPartnerCountDistanceSingleTable(t *testing.T) {
	cat := partnerCatalog(t)
	e := New(cat, nil, Options{GridW: 4, GridH: 4})
	res, err := e.RunSQL(`SELECT ID FROM Stations WHERE CONNECT measured-by`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 {
		t.Fatalf("N = %d", res.N)
	}
	// Ranking: station 0 (3 partners, distance 1/3) before station 1
	// (1 partner, distance 1) before station 2 (no partners, +Inf →
	// dark end).
	if res.Order[0] != 0 || res.Order[1] != 1 || res.Order[2] != 2 {
		t.Fatalf("order: %v", res.Order)
	}
	// No station is an exact answer (1/n never reaches 0) — the
	// partner distance ranks, it does not certify.
	if res.Stats().NumResults != 0 {
		t.Fatalf("results: %d", res.Stats().NumResults)
	}
}

func TestPartnerCountReversedSide(t *testing.T) {
	cat := partnerCatalog(t)
	e := New(cat, nil, Options{GridW: 4, GridH: 4})
	// FROM the right side of the connection: measurements ranked by how
	// many stations they match (1 for rows with a valid station).
	res, err := e.RunSQL(`SELECT StationID FROM Measures WHERE CONNECT measured-by`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 4 {
		t.Fatalf("N = %d", res.N)
	}
	for _, item := range res.Order {
		d := res.Combined()[item]
		if math.IsNaN(d) {
			t.Fatalf("unexpected uncolorable measurement %d", item)
		}
	}
}

func TestPartnerCountUnrelatedTableFails(t *testing.T) {
	cat := partnerCatalog(t)
	other, _ := dataset.NewTable("Other", dataset.Schema{{Name: "z", Kind: dataset.KindFloat}})
	_ = cat.AddTable(other)
	e := New(cat, nil, Options{GridW: 4, GridH: 4})
	if _, err := e.RunSQL(`SELECT z FROM Other WHERE CONNECT measured-by`); err == nil {
		t.Fatal("connection not touching the FROM table should fail to bind")
	}
}

func TestPartnerCountCombinesWithPredicates(t *testing.T) {
	cat := partnerCatalog(t)
	e := New(cat, nil, Options{GridW: 4, GridH: 4})
	res, err := e.RunSQL(`SELECT ID FROM Stations WHERE ID < 2 AND CONNECT measured-by`)
	if err != nil {
		t.Fatal(err)
	}
	// Station 2 now fails both parts; stations 0 and 1 lead.
	if res.Order[2] != 2 {
		t.Fatalf("order: %v", res.Order)
	}
	ws, err := res.Windows()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 { // overall + 2 predicates
		t.Fatalf("windows: %d", len(ws))
	}
}
