package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

func TestAggregates(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT COUNT(*), AVG(x), SUM(x), MAX(x), MIN(x) FROM T WHERE x >= 6`)
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := res.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 5 {
		t.Fatalf("aggs: %d", len(aggs))
	}
	want := []struct {
		agg query.Agg
		val float64
	}{
		{query.AggCount, 4},
		{query.AggAvg, 7.5},
		{query.AggSum, 30},
		{query.AggMax, 9},
		{query.AggMin, 6},
	}
	for i, w := range want {
		got := aggs[i]
		if got.Item.Agg != w.agg {
			t.Fatalf("agg %d: %v", i, got.Item.Agg)
		}
		f, _ := got.Value.AsFloat()
		if f != w.val {
			t.Errorf("%v = %v, want %v", w.agg, f, w.val)
		}
	}
}

func TestAggregatesEmptyResultSet(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT COUNT(*), AVG(x), MAX(x) FROM T WHERE x > 100`)
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := res.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Value.I != 0 {
		t.Errorf("count: %v", aggs[0].Value)
	}
	if !aggs[1].Value.Null || !aggs[2].Value.Null {
		t.Errorf("avg/max of empty set should be null: %v %v", aggs[1].Value, aggs[2].Value)
	}
}

func TestAggregatesStringMinMax(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT MAX(name), MIN(name) FROM T WHERE x < 3`)
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := res.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	// names of rows 0..2: alpha, beta, gamma.
	if aggs[0].Value.S != "gamma" || aggs[1].Value.S != "alpha" {
		t.Fatalf("string min/max: %v %v", aggs[0].Value, aggs[1].Value)
	}
	// AVG over a string attribute errors.
	res, err = e.RunSQL(`SELECT AVG(name) FROM T WHERE x < 3`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Aggregates(); err == nil {
		t.Error("AVG(string) should error")
	}
}

func TestResultTableSingle(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x, name FROM T WHERE x >= 7`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.ResultTable()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 || out.NumCols() != 2 {
		t.Fatalf("dims: %dx%d", out.NumRows(), out.NumCols())
	}
	if out.Schema()[0].Name != "x" || out.Schema()[1].Name != "name" {
		t.Fatalf("schema: %+v", out.Schema())
	}
	v, _ := out.Value(0, "x")
	if v.F < 7 {
		t.Errorf("first row: %v", v)
	}
}

func TestResultTableStar(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT * FROM T WHERE x = 4`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.ResultTable()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.NumCols() != 4 {
		t.Fatalf("dims: %dx%d", out.NumRows(), out.NumCols())
	}
	// Ordinal categories survive projection.
	idx := out.Schema().Index("level")
	if idx < 0 || len(out.Schema()[idx].Categories) != 3 {
		t.Fatalf("categories lost: %+v", out.Schema())
	}
}

func TestResultTableMultiTableQualified(t *testing.T) {
	e := New(envCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT Temperature, Ozone FROM Weather, Air-Pollution
		WHERE Temperature > 20 AND CONNECT with-time-diff(30)`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.ResultTable()
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema()[0].Name != "Weather.Temperature" || out.Schema()[1].Name != "Air-Pollution.Ozone" {
		t.Fatalf("qualified names: %+v", out.Schema())
	}
	if out.NumRows() != res.Stats().NumResults {
		t.Fatalf("rows %d vs results %d", out.NumRows(), res.Stats().NumResults)
	}
}

func TestResultTableNoPlainAttrs(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT COUNT(*) FROM T WHERE x > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.ResultTable(); err == nil {
		t.Error("aggregate-only result list should error")
	}
}

func TestAggregateUnknownAttr(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	// The binder validates aggregate attributes too, so a bogus
	// aggregate attribute fails at bind time.
	q, err := query.Parse(`SELECT MAX(x) FROM T WHERE x > 5`)
	if err != nil {
		t.Fatal(err)
	}
	q.Select[0].Attr = "bogus"
	if _, err := e.Run(q); err == nil {
		t.Error("unknown aggregate attribute should error at bind time")
	}
	_ = dataset.Float(0)
}
