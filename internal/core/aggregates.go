package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/query"
)

// exactItems returns the indices of items fulfilling the query exactly
// (combined distance zero) — the rows a traditional interface would
// return, and the basis of the result list.
func (r *Result) exactItems() []int {
	var out []int
	for i, d := range r.Combined() {
		if d == 0 {
			out = append(out, i)
		}
	}
	return out
}

// AggValue is one computed aggregate of the result list.
type AggValue struct {
	Item  query.SelectItem
	Value dataset.Value
}

// Aggregates evaluates the aggregate operators of the result list
// (AVG, SUM, MAX, MIN, COUNT — the tool-box operators of section 4.1)
// over the exact result set. Plain attributes are skipped here; use
// ResultTable to materialize them.
func (r *Result) Aggregates() ([]AggValue, error) {
	var out []AggValue
	for _, item := range r.Query.Select {
		if item.Agg == query.AggNone {
			continue
		}
		v, err := r.aggregate(item)
		if err != nil {
			return nil, err
		}
		out = append(out, AggValue{Item: item, Value: v})
	}
	return out, nil
}

func (r *Result) aggregate(item query.SelectItem) (dataset.Value, error) {
	exact := r.exactItems()
	if item.Agg == query.AggCount && item.Attr == "*" {
		return dataset.Int(int64(len(exact))), nil
	}
	attr, err := r.resolveSelect(item.Attr)
	if err != nil {
		return dataset.Value{}, err
	}
	t, err := r.Space.tableByName(attr.Table)
	if err != nil {
		return dataset.Value{}, err
	}
	col, err := t.Column(attr.Attr)
	if err != nil {
		return dataset.Value{}, err
	}
	var vals []dataset.Value
	for _, i := range exact {
		row, err := r.Space.rowFor(i, attr.Table)
		if err != nil {
			return dataset.Value{}, err
		}
		v := col.Value(row)
		if !v.Null {
			vals = append(vals, v)
		}
	}
	switch item.Agg {
	case query.AggCount:
		return dataset.Int(int64(len(vals))), nil
	case query.AggAvg, query.AggSum:
		var sum float64
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return dataset.Value{}, fmt.Errorf("core: %s needs a numeric attribute, %s is %v", item.Agg, attr.Qualified(), attr.Kind)
			}
			sum += f
		}
		if item.Agg == query.AggSum {
			return dataset.Float(sum), nil
		}
		if len(vals) == 0 {
			return dataset.Null(dataset.KindFloat), nil
		}
		return dataset.Float(sum / float64(len(vals))), nil
	case query.AggMax, query.AggMin:
		if len(vals) == 0 {
			return dataset.Null(attr.Kind), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if aggLess(v, best) == (item.Agg == query.AggMin) {
				best = v
			}
		}
		return best, nil
	default:
		return dataset.Value{}, fmt.Errorf("core: unsupported aggregate %v", item.Agg)
	}
}

// aggLess orders values numerically when possible, lexically otherwise.
func aggLess(a, b dataset.Value) bool {
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok {
		return af < bf || (math.IsNaN(bf) && !math.IsNaN(af))
	}
	as, _ := a.AsString()
	bs, _ := b.AsString()
	return as < bs
}

// resolveSelect resolves a result-list attribute against the binding.
func (r *Result) resolveSelect(name string) (query.BoundAttr, error) {
	for _, s := range r.Binding.Selects {
		if s.Attr == name || s.Qualified() == name {
			return s, nil
		}
	}
	// Aggregate-only attributes are not in Selects; resolve afresh via
	// a throwaway binding walk.
	b := r.Binding
	for c, attr := range b.Attrs {
		_ = c
		if attr.Attr == name || attr.Qualified() == name {
			return attr, nil
		}
	}
	// Fall back to schema search over the FROM tables.
	for _, tbl := range r.Query.From {
		t, err := r.Engine.cat.Table(tbl)
		if err != nil {
			continue
		}
		attrName := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			if name[:i] != tbl {
				continue
			}
			attrName = name[i+1:]
		}
		if idx := t.Schema().Index(attrName); idx >= 0 {
			return query.BoundAttr{Table: tbl, Attr: attrName, Kind: t.Schema()[idx].Kind}, nil
		}
	}
	return query.BoundAttr{}, fmt.Errorf("core: cannot resolve result-list attribute %q", name)
}

// ResultTable materializes the exact answers as a table, projecting the
// plain (non-aggregate) result-list attributes. Multi-table queries
// qualify column names with their table.
func (r *Result) ResultTable() (*dataset.Table, error) {
	var attrs []query.BoundAttr
	for _, item := range r.Query.Select {
		if item.Agg != query.AggNone {
			continue // aggregates are served by Aggregates()
		}
		if item.Attr == "*" {
			// Expand * to every column of every FROM table.
			for _, tbl := range r.Query.From {
				t, err := r.Engine.cat.Table(tbl)
				if err != nil {
					return nil, err
				}
				for _, f := range t.Schema() {
					attrs = append(attrs, query.BoundAttr{Table: tbl, Attr: f.Name, Kind: f.Kind})
				}
			}
			continue
		}
		attr, err := r.resolveSelect(item.Attr)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, attr)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("core: result list has no plain attributes to materialize")
	}
	multi := len(r.Query.From) > 1
	schema := make(dataset.Schema, len(attrs))
	for i, a := range attrs {
		name := a.Attr
		if multi {
			name = a.Qualified()
		}
		schema[i] = dataset.Field{Name: name, Kind: a.Kind}
		// Copy category metadata so ordinal/nominal stay valid.
		if t, err := r.Engine.cat.Table(a.Table); err == nil {
			if idx := t.Schema().Index(a.Attr); idx >= 0 {
				schema[i].Categories = t.Schema()[idx].Categories
			}
		}
	}
	out, err := dataset.NewTable("result", schema)
	if err != nil {
		return nil, err
	}
	row := make([]dataset.Value, len(attrs))
	for _, item := range r.exactItems() {
		for j, a := range attrs {
			t, err := r.Space.tableByName(a.Table)
			if err != nil {
				return nil, err
			}
			rr, err := r.Space.rowFor(item, a.Table)
			if err != nil {
				return nil, err
			}
			v, err := t.Value(rr, a.Attr)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		if err := out.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return out, nil
}
