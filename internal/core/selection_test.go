package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arrange"
	"repro/internal/dataset"
	"repro/internal/reduce"
)

// selectionCatalog builds an n-row catalog with numeric and string
// columns, including values parked exactly on strict-operator
// boundaries and a few NaN-yielding nulls.
func selectionCatalog(t testing.TB, n int) *dataset.Catalog {
	t.Helper()
	cat := dataset.NewCatalog()
	tbl, err := dataset.NewTable("S", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
		{Name: "b", Kind: dataset.KindFloat},
		{Name: "c", Kind: dataset.KindFloat},
		{Name: "tag", Kind: dataset.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1994))
	tags := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		a := rng.Float64() * 100
		if i%97 == 0 {
			a = 50 // exactly on the strict `a > 50` boundary
		}
		bv := dataset.Float(rng.Float64() * 100)
		if i%89 == 0 {
			bv = dataset.Null(dataset.KindFloat)
		}
		if err := tbl.AppendRow(
			dataset.Float(a),
			bv,
			dataset.Float(rng.Float64()*100),
			dataset.Str(tags[rng.Intn(len(tags))]),
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

var selectionQueries = []string{
	`SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30`,
	`SELECT a FROM S WHERE a > 50 WEIGHT 2 AND tag = 'beta' AND c < 70`,
	`SELECT a FROM S WHERE NOT (a > 50) AND b < 40`,
	`SELECT a FROM S WHERE a IN (10, 50, 90) OR b >= 25`,
}

// TestSelectionMatchesFullSort: the default selection path must produce
// exactly the display the full sort produces — same Displayed count,
// same ranked prefix, same panel stats.
func TestSelectionMatchesFullSort(t *testing.T) {
	cat := selectionCatalog(t, 5000)
	for _, sql := range selectionQueries {
		for _, workers := range []int{1, 8} {
			sel := New(cat, nil, Options{GridW: 16, GridH: 16, Workers: workers})
			full := New(cat, nil, Options{GridW: 16, GridH: 16, Workers: workers, FullSort: true})
			rs, err := sel.RunSQL(sql)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			rf, err := full.RunSQL(sql)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			if rs.Displayed != rf.Displayed {
				t.Fatalf("%s (workers=%d): Displayed %d (select) vs %d (full sort)",
					sql, workers, rs.Displayed, rf.Displayed)
			}
			for rank := 0; rank < rs.Displayed; rank++ {
				if rs.Order[rank] != rf.Order[rank] {
					t.Fatalf("%s (workers=%d): rank %d item %d vs %d",
						sql, workers, rank, rs.Order[rank], rf.Order[rank])
				}
			}
			if rs.Stats() != rf.Stats() {
				t.Fatalf("%s: stats diverged: %+v vs %+v", sql, rs.Stats(), rf.Stats())
			}
			if rs.Timings.Select <= 0 || rs.Timings.Sort != 0 {
				t.Fatalf("%s: selection run has Sort=%v Select=%v", sql, rs.Timings.Sort, rs.Timings.Select)
			}
			if rf.Timings.Sort <= 0 || rf.Timings.Select != 0 {
				t.Fatalf("%s: full-sort run has Sort=%v Select=%v", sql, rf.Timings.Sort, rf.Timings.Select)
			}
		}
	}
}

// TestWorkersBitIdentical: parallel (Workers > 1) and serial (Workers
// == 1) runs must produce bit-identical Result.Combined(), identical
// ranked prefixes and identical display counts, across numeric, string,
// negated and join-bearing queries.
func TestWorkersBitIdentical(t *testing.T) {
	cat := selectionCatalog(t, 5000)
	for _, sql := range selectionQueries {
		serial := New(cat, nil, Options{GridW: 16, GridH: 16, Workers: 1})
		parallel := New(cat, nil, Options{GridW: 16, GridH: 16, Workers: 8})
		rs, err := serial.RunSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		rp, err := parallel.RunSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		cs, cp := rs.Combined(), rp.Combined()
		if len(cs) != len(cp) {
			t.Fatalf("%s: Combined lengths differ", sql)
		}
		for i := range cs {
			if math.Float64bits(cs[i]) != math.Float64bits(cp[i]) {
				t.Fatalf("%s: Combined[%d] = %x (serial) vs %x (parallel)",
					sql, i, math.Float64bits(cs[i]), math.Float64bits(cp[i]))
			}
		}
		if rs.Displayed != rp.Displayed {
			t.Fatalf("%s: Displayed %d vs %d", sql, rs.Displayed, rp.Displayed)
		}
		for rank := 0; rank < rs.rankedK; rank++ {
			if rs.Order[rank] != rp.Order[rank] {
				t.Fatalf("%s: ranked prefix diverged at %d", sql, rank)
			}
		}
	}
}

// TestWorkersBitIdenticalJoin covers the cross-product and
// partner-count leaves.
func TestWorkersBitIdenticalJoin(t *testing.T) {
	cat := envCatalog(t)
	for _, sql := range []string{
		`SELECT Temperature FROM Weather, Air-Pollution WHERE Temperature > 18 AND CONNECT with-time-diff(45)`,
		`SELECT Temperature FROM Weather WHERE CONNECT with-time-diff(45)`,
	} {
		serial := New(cat, nil, Options{GridW: 8, GridH: 8, Workers: 1})
		parallel := New(cat, nil, Options{GridW: 8, GridH: 8, Workers: 8})
		rs, err := serial.RunSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		rp, err := parallel.RunSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		cs, cp := rs.Combined(), rp.Combined()
		for i := range cs {
			if math.Float64bits(cs[i]) != math.Float64bits(cp[i]) {
				t.Fatalf("%s: Combined[%d] diverged", sql, i)
			}
		}
		if rs.Displayed != rp.Displayed {
			t.Fatalf("%s: Displayed %d vs %d", sql, rs.Displayed, rp.Displayed)
		}
	}
}

// TestTopKExtendsSelection: asking for more ranks than the selection
// budget must lazily extend the ranking and agree with the full sort at
// every depth.
func TestTopKExtendsSelection(t *testing.T) {
	cat := selectionCatalog(t, 5000)
	sql := selectionQueries[0]
	sel := New(cat, nil, Options{GridW: 4, GridH: 4}) // budget 16+4+32 = 52 ranks
	full := New(cat, nil, Options{GridW: 4, GridH: 4, FullSort: true})
	rs, err := sel.RunSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.RunSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 52, 53, 500, 4999, 5000, 6000} {
		got := rs.TopK(k)
		want := rf.TopK(k)
		if len(got) != len(want) {
			t.Fatalf("TopK(%d): lengths %d vs %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("TopK(%d): rank %d item %d vs %d", k, i, got[i], want[i])
			}
		}
	}
}

// TestDrillDownIndependentSelection: the independent drill-down
// arrangement must render identically on the selection and full-sort
// paths.
func TestDrillDownIndependentSelection(t *testing.T) {
	cat := selectionCatalog(t, 3000)
	sql := selectionQueries[0]
	sel := New(cat, nil, Options{GridW: 16, GridH: 16})
	full := New(cat, nil, Options{GridW: 16, GridH: 16, FullSort: true})
	rs, err := sel.RunSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.RunSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := rs.DrillDownWindows(rs.Query.Where, true)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := rf.DrillDownWindows(rf.Query.Where, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != len(wf) {
		t.Fatalf("window counts differ: %d vs %d", len(ws), len(wf))
	}
	for i := range ws {
		for y := 0; y < ws[i].GridH; y++ {
			for x := 0; x < ws[i].GridW; x++ {
				p := arrange.Point{X: x, Y: y}
				cs, oks := ws[i].CellAt(p)
				cf, okf := wf[i].CellAt(p)
				if oks != okf || cs != cf {
					t.Fatalf("window %d cell (%d,%d) diverged between selection and full sort", i, x, y)
				}
			}
		}
	}
}

// TestAllNaNPredicateDisplaysNothing is the regression test for the
// display-count audit: a predicate under which every item is
// uncolorable (NaN) must yield Displayed == 0 — never a negative or
// out-of-range cut — on both the percent and heuristic paths, and the
// windows must still render.
func TestAllNaNPredicateDisplaysNothing(t *testing.T) {
	cat := dataset.NewCatalog()
	tbl, err := dataset.NewTable("U", dataset.Schema{{Name: "x", Kind: dataset.KindFloat}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := tbl.AppendRow(dataset.Float(5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	// x <> 5 is pointwise-false everywhere: every item uncolorable.
	for name, opt := range map[string]Options{
		"heuristic":          {GridW: 8, GridH: 8},
		"percent":            {GridW: 8, GridH: 8, PercentDisplayed: 0.5},
		"percent-full-sort":  {GridW: 8, GridH: 8, PercentDisplayed: 0.5, FullSort: true},
		"heuristic-fullsort": {GridW: 8, GridH: 8, FullSort: true},
	} {
		e := New(cat, nil, opt)
		res, err := e.RunSQL(`SELECT x FROM U WHERE x <> 5`)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Displayed != 0 {
			t.Fatalf("%s: Displayed = %d, want 0 (all items NaN)", name, res.Displayed)
		}
		if st := res.Stats(); st.NumDisplayed != 0 || st.PctDisplayed != 0 {
			t.Fatalf("%s: stats %+v, want zero display", name, st)
		}
		if _, err := res.Image(2); err != nil {
			t.Fatalf("%s: rendering all-NaN result: %v", name, err)
		}
	}
}

// TestTopKConcurrent: concurrent TopK calls — including ones that
// extend the ranking past the selection budget — must be synchronized
// and agree with the full sort (run under -race in CI).
func TestTopKConcurrent(t *testing.T) {
	cat := selectionCatalog(t, 4000)
	sel := New(cat, nil, Options{GridW: 4, GridH: 4})
	full := New(cat, nil, Options{GridW: 4, GridH: 4, FullSort: true})
	rs, err := sel.RunSQL(selectionQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.RunSQL(selectionQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	ks := []int{1, 10, 60, 300, 1500, 4000}
	done := make(chan error, len(ks)*2)
	for _, k := range ks {
		for g := 0; g < 2; g++ {
			go func(k int) {
				got := rs.TopK(k)
				for i := range got {
					if got[i] != rf.Order[i] {
						done <- errStat
						return
					}
				}
				done <- nil
			}(k)
		}
	}
	for i := 0; i < len(ks)*2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSelectionInvariantsAtScale: on a larger-than-budget input the
// selection path must keep Order a permutation, the ranked prefix
// ascending (NaNs last), and the display within capacity.
func TestSelectionInvariantsAtScale(t *testing.T) {
	cat := selectionCatalog(t, 60000)
	e := New(cat, nil, Options{GridW: 64, GridH: 64})
	res, err := e.RunSQL(selectionQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Displayed > 64*64 {
		t.Fatalf("Displayed %d exceeds capacity", res.Displayed)
	}
	if len(res.Order) != res.N {
		t.Fatalf("Order length %d, want %d", len(res.Order), res.N)
	}
	seen := make([]bool, res.N)
	for _, it := range res.Order {
		if it < 0 || it >= res.N || seen[it] {
			t.Fatal("Order is not a permutation")
		}
		seen[it] = true
	}
	for rank := 1; rank < res.rankedK; rank++ {
		a := res.Combined()[res.Order[rank-1]]
		b := res.Combined()[res.Order[rank]]
		if math.IsNaN(a) && !math.IsNaN(b) {
			t.Fatalf("NaN before value at rank %d", rank)
		}
		if !math.IsNaN(a) && !math.IsNaN(b) && a > b {
			t.Fatalf("ranked prefix not ascending at rank %d: %v > %v", rank, a, b)
		}
	}
	if res.Timings.Select <= 0 {
		t.Fatal("selection stage not timed")
	}
}

// TestSelectBudgetCoversGapHeuristic: the CutPrefix margin never reads
// past the materialized selection prefix for any grid size.
func TestSelectBudgetCoversGapHeuristic(t *testing.T) {
	e := &Engine{opt: Options{GridW: 128, GridH: 128}.withDefaults()}
	n := 1 << 20
	budget := e.selectBudget(n)
	capacity := e.opt.GridW * e.opt.GridH
	// Worst case: quantile cut k == capacity (+1 rounding), the gap scan
	// reads k + k/4 and GapCut's window reaches k + max(3, k/32).
	worst := capacity + 1 + (capacity+1)/4
	z := (capacity + 1) / 32
	if z < 3 {
		z = 3
	}
	if gw := capacity + 1 + z + 1; gw > worst {
		worst = gw
	}
	if budget < worst {
		t.Fatalf("selectBudget %d < worst-case heuristic reach %d", budget, worst)
	}
}

// TestCutPrefixMatchesCut: CutPrefix on a budget-sized prefix must
// reproduce Cut on the full sorted vector (the engine relies on this
// equivalence for selection-mode display counts).
func TestCutPrefixMatchesCut(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1000 + rng.Intn(20000)
		dists := make([]float64, n)
		for i := range dists {
			if rng.Intn(3) == 0 {
				dists[i] = 1 + 0.1*rng.NormFloat64() // near cluster
			} else {
				dists[i] = 100 + rng.NormFloat64() // far cluster
			}
		}
		sorted, _ := reduce.SortWithIndex(dists)
		capacity := 256
		r := capacity * 2
		want := reduce.Cut(sorted, r, 1)
		budget := capacity + capacity/4 + 32
		if budget > n {
			budget = n
		}
		got := reduce.CutPrefix(sorted[:budget], n, r, 1)
		if got != want {
			t.Fatalf("trial %d (n=%d): CutPrefix = %d, Cut = %d", trial, n, got, want)
		}
	}
}
