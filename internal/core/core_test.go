package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/arrange"
	"repro/internal/colormap"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/relevance"
)

// smallCatalog builds a 10-row single-table catalog with x = 0..9 and a
// category column.
func smallCatalog(t *testing.T) *dataset.Catalog {
	t.Helper()
	cat := dataset.NewCatalog()
	tbl, err := dataset.NewTable("T", dataset.Schema{
		{Name: "x", Kind: dataset.KindFloat},
		{Name: "y", Kind: dataset.KindFloat},
		{Name: "name", Kind: dataset.KindString},
		{Name: "level", Kind: dataset.KindOrdinal, Categories: []string{"low", "mid", "high"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa"}
	levels := []string{"low", "low", "low", "mid", "mid", "mid", "high", "high", "high", "high"}
	for i := 0; i < 10; i++ {
		err := tbl.AppendRow(
			dataset.Float(float64(i)),
			dataset.Float(float64(9-i)),
			dataset.Str(names[i]),
			dataset.Ordinal(levels[i]),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

// envCatalog builds a tiny two-table environmental catalog with a
// 30-minute sampling offset on the pollution side.
func envCatalog(t *testing.T) *dataset.Catalog {
	t.Helper()
	cat := dataset.NewCatalog()
	w, err := dataset.NewTable("Weather", dataset.Schema{
		{Name: "DateTime", Kind: dataset.KindTime},
		{Name: "Temperature", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := dataset.NewTable("Air-Pollution", dataset.Schema{
		{Name: "DateTime", Kind: dataset.KindTime},
		{Name: "Ozone", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(1994, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 24; i++ {
		ts := t0.Add(time.Duration(i) * time.Hour)
		temp := 15 + 10*math.Sin(2*math.Pi*float64(i-9)/24)
		if err := w.AppendRow(dataset.Time(ts), dataset.Float(temp)); err != nil {
			t.Fatal(err)
		}
		if err := p.AppendRow(dataset.Time(ts.Add(30*time.Minute)), dataset.Float(20+temp)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(w); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(p); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddConnection(dataset.Connection{
		Name: "with-time-diff", Left: "Weather", Right: "Air-Pollution",
		LeftAttr: "DateTime", RightAttr: "DateTime",
		Metric: dataset.MetricTime, Mode: dataset.ModeTarget, Param: 0,
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestRunSimpleRanking(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 10 {
		t.Fatalf("N = %d", res.N)
	}
	// Items 7, 8, 9 fulfill exactly; ranking must start with them.
	stats := res.Stats()
	if stats.NumResults != 3 {
		t.Fatalf("# results = %d, want 3", stats.NumResults)
	}
	top := res.TopK(3)
	seen := map[int]bool{}
	for _, it := range top {
		seen[it] = true
	}
	for _, want := range []int{7, 8, 9} {
		if !seen[want] {
			t.Fatalf("top-3 %v should contain %d", top, want)
		}
	}
	// Farther items rank strictly later: item 0 is last.
	if res.Order[len(res.Order)-1] != 0 {
		t.Fatalf("worst item should be x=0: order %v", res.Order)
	}
	// Combined distances increase along the ranking.
	for k := 1; k < len(res.Order); k++ {
		if res.Combined()[res.Order[k]] < res.Combined()[res.Order[k-1]] {
			t.Fatal("ranking not monotone")
		}
	}
}

func TestRunComplexQueryWindows(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE (x > 6 OR y > 6) AND x < 9 WEIGHT 2`)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := res.Windows()
	if err != nil {
		t.Fatal(err)
	}
	// Overall + OR-part + x<9 = 3 windows.
	if len(ws) != 3 {
		t.Fatalf("windows: %d", len(ws))
	}
	if ws[0].Title != "overall result" {
		t.Fatalf("first window: %s", ws[0].Title)
	}
	if ws[1].Title != "OR" {
		t.Fatalf("second window: %s", ws[1].Title)
	}
	// All windows share the same displayed cells.
	for rank := 0; rank < res.Displayed; rank++ {
		cell := res.cells[rank]
		if _, ok := ws[1].CellAt(cell); !ok {
			t.Fatalf("predicate window missing cell for rank %d", rank)
		}
	}
	img, err := res.Image(2)
	if err != nil {
		t.Fatal(err)
	}
	if img.W == 0 || img.H == 0 {
		t.Fatal("empty composed image")
	}
}

func TestOverallWindowSpiralProperty(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 4, GridH: 4})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 5`)
	if err != nil {
		t.Fatal(err)
	}
	// The most relevant item sits at the window center.
	center := arrange.Center(4, 4)
	item, ok := res.ItemAt(center)
	if !ok {
		t.Fatal("no item at center")
	}
	if res.Combined()[item] != res.sorted[0] {
		t.Fatal("center item is not the most relevant")
	}
	// Ring numbers never decrease with rank.
	prev := 0
	for rank := 0; rank < res.Displayed; rank++ {
		ring := arrange.Ring(4, 4, res.cells[rank])
		if ring < prev {
			t.Fatal("spiral rings decrease")
		}
		prev = ring
	}
}

func TestExactAnswersAreYellow(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6`)
	if err != nil {
		t.Fatal(err)
	}
	w := res.OverallWindow()
	c, ok := w.CellAt(arrange.Center(8, 8))
	if !ok {
		t.Fatal("center not set")
	}
	yellow := e.opt.Map.At(0)
	if c != yellow {
		t.Fatalf("center color %+v, want yellow %+v", c, yellow)
	}
}

func TestApproximateJoinQuery(t *testing.T) {
	e := New(envCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT Temperature FROM Weather, Air-Pollution
		WHERE Temperature > 20 AND CONNECT with-time-diff(30)`)
	if err != nil {
		t.Fatal(err)
	}
	// Cross product: 24×24 pairs.
	if res.N != 576 {
		t.Fatalf("N = %d", res.N)
	}
	// Pairs offset exactly 30 minutes fulfill the join exactly; there
	// are 24 such pairs, some with Temperature > 20 too.
	stats := res.Stats()
	if stats.NumResults == 0 {
		t.Fatal("expected exact results from the 30-minute connection")
	}
	// Tuple access returns both rows.
	item := res.TopK(1)[0]
	tup, err := res.Tuple(item)
	if err != nil {
		t.Fatal(err)
	}
	if len(tup.Tables) != 2 || tup.Tables[0] != "Weather" {
		t.Fatalf("tuple: %+v", tup.Tables)
	}
}

func TestEquiVsApproxJoinMotivation(t *testing.T) {
	// The paper's section 4.4 claim: an exact time-equality join returns
	// nothing on offset data while the approximate join ranks near
	// matches highly.
	e := New(envCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT Temperature FROM Weather, Air-Pollution
		WHERE CONNECT with-time-diff(0)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().NumResults != 0 {
		t.Fatal("no pair matches exactly on offset data")
	}
	// But the top-ranked pairs are the 30-minute neighbours.
	top := res.TopK(5)
	for _, item := range top {
		p := res.Space.pairs[item]
		lt, _ := res.Space.tables[0].Value(p.Left, "DateTime")
		rt, _ := res.Space.tables[1].Value(p.Right, "DateTime")
		diff := math.Abs(rt.T.Sub(lt.T).Minutes())
		if diff > 31 {
			t.Fatalf("top pair is %v minutes apart", diff)
		}
	}
}

func TestPercentDisplayedOption(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8, PercentDisplayed: 0.5})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Displayed != 5 {
		t.Fatalf("displayed = %d, want 5", res.Displayed)
	}
	s := res.Stats()
	if math.Abs(s.PctDisplayed-0.5) > 1e-9 {
		t.Fatalf("pct = %v", s.PctDisplayed)
	}
}

func TestCapacityLimitsDisplay(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 2, GridH: 2})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Displayed > 4 {
		t.Fatalf("displayed %d exceeds 2x2 capacity", res.Displayed)
	}
}

func TestNegationSemantics(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	// NOT (x > 6) inverts to x <= 6: colorable, 7 exact answers.
	res, err := e.RunSQL(`SELECT x FROM T WHERE NOT (x > 6)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().NumResults; got != 7 {
		t.Fatalf("inverted negation results: %d, want 7", got)
	}
	// NOT (name = 'alpha') is not invertible: satisfied rows are exact,
	// the failing row uncolorable.
	res, err = e.RunSQL(`SELECT x FROM T WHERE NOT (name = 'alpha')`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().NumResults; got != 9 {
		t.Fatalf("boolean negation results: %d, want 9", got)
	}
	if relevance.CountNaN(res.Combined()) != 1 {
		t.Fatalf("expected 1 uncolorable item, got %d", relevance.CountNaN(res.Combined()))
	}
	// Uncolorable items never display.
	if res.Displayed > 9 {
		t.Fatalf("displayed %d should exclude uncolorable", res.Displayed)
	}
}

func TestStringAndOrdinalPredicates(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	// Phonetic match: the paper's USING clause.
	res, err := e.RunSQL(`SELECT x FROM T WHERE name = 'alfa' USING phonetic`)
	if err != nil {
		t.Fatal(err)
	}
	// "alpha" is phonetically identical to "alfa" → exactly one result.
	if got := res.Stats().NumResults; got != 1 {
		t.Fatalf("phonetic results: %d", got)
	}
	if item := res.TopK(1)[0]; item != 0 {
		t.Fatalf("top item: %d, want 0 (alpha)", item)
	}
	// Ordinal comparison uses category ranks.
	res, err = e.RunSQL(`SELECT x FROM T WHERE level >= 'mid'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().NumResults; got != 7 {
		t.Fatalf("ordinal results: %d, want 7 (mid+high)", got)
	}
}

func TestInListAndBetween(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x IN (2, 5) OR x BETWEEN 7 AND 8`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().NumResults; got != 4 {
		t.Fatalf("results: %d, want 4", got)
	}
}

func TestSubqueryIn(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	// x IN (SELECT y FROM T WHERE y > 7) → y values {8, 9} → x=8, x=9.
	res, err := e.RunSQL(`SELECT x FROM T WHERE x IN (SELECT y FROM T WHERE y > 7)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().NumResults; got != 2 {
		t.Fatalf("IN-subquery results: %d, want 2", got)
	}
	top := res.TopK(2)
	seen := map[int]bool{top[0]: true, top[1]: true}
	if !seen[8] || !seen[9] {
		t.Fatalf("top items: %v", top)
	}
}

func TestSubqueryExistsAndNegations(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	// EXISTS with a satisfiable inner condition: everything is exact.
	res, err := e.RunSQL(`SELECT x FROM T WHERE EXISTS (SELECT y FROM T WHERE y > 8)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().NumResults; got != 10 {
		t.Fatalf("EXISTS results: %d", got)
	}
	// NOT EXISTS with satisfiable inner: everything uncolorable.
	res, err = e.RunSQL(`SELECT x FROM T WHERE NOT EXISTS (SELECT y FROM T WHERE y > 8)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := relevance.CountNaN(res.Combined()); got != 10 {
		t.Fatalf("NOT EXISTS uncolorable: %d", got)
	}
	// NOT IN: x NOT IN {8,9} → 8 exact, 2 uncolorable.
	res, err = e.RunSQL(`SELECT x FROM T WHERE x NOT IN (SELECT y FROM T WHERE y > 7)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().NumResults; got != 8 {
		t.Fatalf("NOT IN results: %d", got)
	}
	if got := relevance.CountNaN(res.Combined()); got != 2 {
		t.Fatalf("NOT IN uncolorable: %d", got)
	}
}

func TestNoWhereClause(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().NumResults; got != 10 {
		t.Fatalf("no-condition results: %d", got)
	}
}

func TestPredicateInfosAndSliders(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6 WEIGHT 2 AND y < 3`)
	if err != nil {
		t.Fatal(err)
	}
	infos := res.PredicateInfos()
	if len(infos) != 2 {
		t.Fatalf("infos: %d", len(infos))
	}
	x := infos[0]
	if x.Weight != 2 || !x.Numeric {
		t.Fatalf("x info: %+v", x)
	}
	if x.MinDB != 0 || x.MaxDB != 9 {
		t.Fatalf("x range: %+v", x)
	}
	if x.QueryLo != 6 || !math.IsInf(x.QueryHi, 1) {
		t.Fatalf("x query range: %+v", x)
	}
	if x.NumResults != 3 {
		t.Fatalf("x results: %d", x.NumResults)
	}
	if x.FirstDisplayed > x.LastDisplayed {
		t.Fatalf("displayed range: %+v", x)
	}
	specs := res.SliderSpecs()
	if len(specs) != 2 || specs[0].Title == "" || len(specs[0].Spectrum) == 0 {
		t.Fatalf("specs: %+v", specs)
	}
	// Query-range marks normalized into [0,1].
	if specs[0].MarkLo < 0 || specs[0].MarkLo > 1 {
		t.Fatalf("mark: %v", specs[0].MarkLo)
	}
}

func TestTupleAndCellRoundTrip(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6`)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < res.Displayed; rank++ {
		item := res.Order[rank]
		cell, ok := res.CellOfItem(item)
		if !ok {
			t.Fatalf("rank %d: no cell", rank)
		}
		back, ok := res.ItemAt(cell)
		if !ok || back != item {
			t.Fatalf("cell round trip: %d vs %d", item, back)
		}
	}
	if _, err := res.Tuple(-1); err == nil {
		t.Error("negative item should error")
	}
	if _, err := res.Tuple(res.N); err == nil {
		t.Error("out-of-range item should error")
	}
	tup, err := res.Tuple(7)
	if err != nil || len(tup.Rows) != 1 || tup.Rows[0][0].F != 7 {
		t.Fatalf("tuple: %+v %v", tup, err)
	}
}

func TestColorRangeProjection(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6`)
	if err != nil {
		t.Fatal(err)
	}
	cond := res.Query.Where.(*query.Cond)
	// Yellow band (level 0) must contain exactly the exact answers.
	items, err := res.ItemsInColorRange(cond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("yellow items: %v", items)
	}
	// The full band contains every displayed item.
	all, err := res.ItemsInColorRange(cond, 0, e.opt.Map.Levels()-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != res.Displayed {
		t.Fatalf("full band: %d vs %d", len(all), res.Displayed)
	}
	// First/last of color: yellow band of x>6 has values 7..9.
	first, last, ok := res.FirstLastOfColor(cond, 0, 0)
	if !ok || first != 7 || last != 9 {
		t.Fatalf("first/last of yellow: %v %v %v", first, last, ok)
	}
	if _, _, ok := res.FirstLastOfColor(&query.Cond{}, 0, 0); ok {
		t.Error("unknown cond should report !ok")
	}
}

func Test2DArrangement(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{
		GridW: 10, GridH: 10,
		Arrangement: Arrange2D, AxisX: "x", AxisY: "y",
	})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x BETWEEN 4 AND 5 AND y BETWEEN 4 AND 5`)
	if err != nil {
		t.Fatal(err)
	}
	c := arrange.Center(10, 10)
	// Items with x below the range (signed < 0) sit left of center.
	for rank := 0; rank < res.Displayed; rank++ {
		item := res.Order[rank]
		cell := res.cells[rank]
		if cell == arrange.Unplaced {
			continue
		}
		sx := res.signedOf("x")[item]
		if sx < 0 && cell.X >= c.X {
			t.Fatalf("item %d (signed %v) placed at %+v, want left of %+v", item, sx, cell, c)
		}
		if sx > 0 && cell.X < c.X {
			t.Fatalf("item %d (signed %v) placed at %+v, want right", item, sx, cell)
		}
	}
}

func TestWindowForSubExpression(t *testing.T) {
	// Figure 5: drilling into the OR part yields windows for each
	// OR predicate with the same arrangement.
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE (x > 6 OR y > 6) AND x < 9`)
	if err != nil {
		t.Fatal(err)
	}
	root := res.Query.Where.(*query.BoolExpr)
	orPart := root.Children[0].(*query.BoolExpr)
	for _, child := range orPart.Children {
		w, err := res.WindowFor(child)
		if err != nil {
			t.Fatal(err)
		}
		if w.Capacity() != 64 {
			t.Fatalf("window capacity: %d", w.Capacity())
		}
	}
	if _, err := res.WindowFor(&query.Cond{Attr: "zzz"}); err == nil {
		t.Error("unknown expression should error")
	}
}

func TestRunErrors(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{})
	if _, err := e.RunSQL(`SELECT`); err == nil {
		t.Error("parse error should propagate")
	}
	if _, err := e.RunSQL(`SELECT z FROM T`); err == nil {
		t.Error("bind error should propagate")
	}
	if _, err := e.RunSQL(`SELECT x FROM T, T2, T3 WHERE x > 1`); err == nil {
		t.Error("three tables should fail")
	}
}

func TestEmptyTable(t *testing.T) {
	cat := dataset.NewCatalog()
	tbl, _ := dataset.NewTable("E", dataset.Schema{{Name: "x", Kind: dataset.KindFloat}})
	_ = cat.AddTable(tbl)
	e := New(cat, nil, Options{GridW: 4, GridH: 4})
	res, err := e.RunSQL(`SELECT x FROM E WHERE x > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 0 || res.Displayed != 0 {
		t.Fatalf("empty table: N=%d displayed=%d", res.N, res.Displayed)
	}
	if _, err := res.Image(2); err != nil {
		t.Fatal(err)
	}
}

func TestAllNullColumn(t *testing.T) {
	cat := dataset.NewCatalog()
	tbl, _ := dataset.NewTable("N", dataset.Schema{{Name: "x", Kind: dataset.KindFloat}})
	for i := 0; i < 5; i++ {
		_ = tbl.AppendRow(dataset.Null(dataset.KindFloat))
	}
	_ = cat.AddTable(tbl)
	e := New(cat, nil, Options{GridW: 4, GridH: 4})
	res, err := e.RunSQL(`SELECT x FROM N WHERE x > 1`)
	if err != nil {
		t.Fatal(err)
	}
	// Every item uncolorable → nothing displayed, nothing exact.
	if res.Displayed != 0 || res.Stats().NumResults != 0 {
		t.Fatalf("all-null: %+v", res.Stats())
	}
}

func TestUncolorableColorInWindows(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8, PercentDisplayed: 1})
	// OpNe: failing item (x=5) is uncolorable in the predicate window
	// but excluded from display by NaN ordering; force full display of
	// colorable items and check the special color never collides.
	res, err := e.RunSQL(`SELECT x FROM T WHERE x <> 5`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().NumResults; got != 9 {
		t.Fatalf("<> results: %d", got)
	}
	w := res.OverallWindow()
	im := w.Image()
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			if im.At(x, y) == colormap.HighlightColor {
				t.Fatal("stray highlight color")
			}
		}
	}
}

func TestGradiIntegration(t *testing.T) {
	e := New(envCatalog(t), nil, Options{})
	q, err := query.Parse(`SELECT Temperature FROM Weather, Air-Pollution
		WHERE (Temperature > 15 OR Ozone > 30) AND CONNECT with-time-diff(120)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := query.Bind(q, e.Catalog()); err != nil {
		t.Fatal(err)
	}
	art := query.Gradi(q)
	if !strings.Contains(art, "with-time-diff") {
		t.Fatalf("gradi: %s", art)
	}
}
