package core

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/relevance"
)

// predicateData holds everything the engine derives for one simple
// condition: the attribute values across the item space, the raw
// (unsigned) and signed distances, and the database min/max the sliders
// display.
type predicateData struct {
	Attr     query.BoundAttr
	Values   []float64 // attribute values per item (NaN for non-numeric)
	Raw      []float64 // unsigned distances
	Signed   []float64 // signed distances (negative below the range)
	MinDB    float64
	MaxDB    float64
	HasRange bool    // numeric predicate with a query range
	Lo, Hi   float64 // current query range (±Inf for open sides)

	// Segment-stats pushdown state (single-table file-backed scans
	// only; see numericCond). skip marks the storage segments whose
	// decode was skipped because the footer stats proved every row's
	// range distance exactly 0: Raw is exact everywhere (the skipped
	// ranges keep their zero fill, which IS the distance), but Values
	// holds stale zeros there and must go through valueAt. CStats is
	// the per-chunk index synthesized at compute time (skipped chunks
	// from the footer, the rest scanned) so even a COLD run hands the
	// deferred-root ranking its block-pruning bounds. SegsSkipped and
	// Segs attribute the pushdown for StageTimings.
	skip        []bool
	fr          dataset.FloatReader
	matMu       sync.Mutex
	matDone     []bool
	CStats      *relevance.LeafChunkStats
	SegsSkipped int
	Segs        int
}

// valueAt returns the item's attribute value, materializing the
// containing segment on first touch when its decode was skipped. The
// display paths (PredicateInfos, FirstLastOfColor) touch only the
// display budget, so a skipped segment decodes lazily — and usually
// never. Safe for concurrent readers: skipped ranges are only written
// under matMu, and non-skipped ranges are immutable after the fill
// pass.
func (pd *predicateData) valueAt(i int) float64 {
	if pd.skip == nil {
		return pd.Values[i]
	}
	si := i / dataset.SegmentSize
	if !pd.skip[si] {
		return pd.Values[i]
	}
	pd.matMu.Lock()
	defer pd.matMu.Unlock()
	if !pd.matDone[si] {
		lo := si * dataset.SegmentSize
		hi := lo + dataset.SegmentSize
		if hi > len(pd.Values) {
			hi = len(pd.Values)
		}
		pd.fr.ReadFloats(pd.Values[lo:hi], lo)
		pd.matDone[si] = true
	}
	return pd.Values[i]
}

// itemSpace describes the totality of items a query ranges over: single
// table rows, or a (possibly capped) two-table cross product.
type itemSpace struct {
	tables []*dataset.Table
	pairs  []join.Pair // nil for single-table
	n      int
}

// rowFor returns, for item i, the row index in the given table.
func (s *itemSpace) rowFor(i int, table string) (int, error) {
	if s.pairs == nil {
		return i, nil
	}
	switch table {
	case s.tables[0].Name():
		return s.pairs[i].Left, nil
	case s.tables[1].Name():
		return s.pairs[i].Right, nil
	default:
		return 0, fmt.Errorf("core: table %q not part of the item space", table)
	}
}

// tableByName finds a FROM table.
func (s *itemSpace) tableByName(name string) (*dataset.Table, error) {
	for _, t := range s.tables {
		if t.Name() == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("core: no table %q in item space", name)
}

// condData computes the distances of a simple condition over the item
// space. attr is the condition's resolved binding, passed explicitly so
// negation rewrites (which evaluate a private copy of the condition)
// never have to touch the shared, read-only Binding.
func (e *Engine) condData(c *query.Cond, attr query.BoundAttr, space *itemSpace, workers int) (*predicateData, error) {
	t, err := space.tableByName(attr.Table)
	if err != nil {
		return nil, err
	}
	pd := &predicateData{
		Attr:   attr,
		Values: make([]float64, space.n),
		Raw:    make([]float64, space.n),
	}
	// Signed distances exist for the 2D quadrant arrangement only; the
	// default spiral never reads them, so skip the vector (and its
	// computation) unless figure 1b is in play.
	if e.opt.Arrangement == Arrange2D {
		pd.Signed = make([]float64, space.n)
	}
	if attr.Kind.IsNumeric() {
		if err := e.numericCond(c, attr, t, space, pd, workers); err != nil {
			return nil, err
		}
	} else {
		if err := e.stringCond(c, attr, t, space, pd, workers); err != nil {
			return nil, err
		}
	}
	return pd, nil
}

// numericCond fills pd for numeric/time/bool attributes using the
// distance-to-range semantics of section 3.
func (e *Engine) numericCond(c *query.Cond, attr query.BoundAttr, t *dataset.Table, space *itemSpace, pd *predicateData, workers int) error {
	singleTable := space.pairs == nil
	// Single-table spaces stream the column range by range straight
	// into pd.Values through the bulk reader — file-backed columns
	// decode a segment at a time and never materialize an n-sized
	// copy. Pair spaces index rows non-monotonically, so they keep the
	// materialized column (the pair count is MaxPairs-capped).
	var col []float64
	fr, err := t.FloatReaderOf(attr.Attr)
	if err != nil {
		return err
	}
	if !singleTable || fr == nil {
		col, err = t.FloatsOf(attr.Attr)
		if err != nil {
			return err
		}
	}
	min, max, okRange, err := t.MinMaxOf(attr.Attr)
	if err != nil {
		return err
	}
	if okRange {
		pd.MinDB, pd.MaxDB = min, max
	} else {
		pd.MinDB, pd.MaxDB = math.NaN(), math.NaN()
	}
	lo, hi, pointwise, err := numericRange(c)
	if err != nil {
		return err
	}
	pd.HasRange = !pointwise
	pd.Lo, pd.Hi = lo, hi
	// Strict operators exclude the boundary: a value sitting exactly on
	// it is not a correct answer, but its distance to fulfillment is
	// infinitesimal. Such items are marked and later assigned a small
	// positive distance relative to the predicate's scale, so they rank
	// just behind the correct answers without being painted yellow.
	strictLo := c.Op == query.OpGt
	strictHi := c.Op == query.OpLt
	// Segment-stats pushdown (the cold-scan block pruning): when the
	// file-backed column carries per-segment min/max and null counts, a
	// segment whose every row provably lies inside [lo, hi] — stats
	// present, no unusable rows, extremes inside the range with
	// strictness honored — scores range distance exactly 0 on every
	// row, so its decode is skipped outright and the zero-filled Raw
	// range already holds the exact distances. The gate excludes every
	// per-item semantics the proof does not cover: pair spaces
	// (non-monotonic row order), OpNe/OpIn (pointwise distances), and
	// signed vectors (the 2D arrangement reads per-item signs).
	var skip []bool
	skipped := 0
	if singleTable && col == nil && pd.Signed == nil &&
		!pointwise && c.Op != query.OpIn && !e.opt.NoSegmentStats {
		if ss, ok := fr.(dataset.SegmentStatser); ok {
			nSegs := (space.n + dataset.SegmentSize - 1) / dataset.SegmentSize
			for si := 0; si < nSegs; si++ {
				smin, smax, nulls, ok := ss.SegmentStats(si)
				if !ok || nulls != 0 {
					continue
				}
				loOK := smin >= lo
				if strictLo {
					loOK = smin > lo
				}
				hiOK := smax <= hi
				if strictHi {
					hiOK = smax < hi
				}
				if loOK && hiOK {
					if skip == nil {
						skip = make([]bool, nSegs)
					}
					skip[si] = true
					skipped++
				}
			}
			pd.Segs = nSegs
			pd.SegsSkipped = skipped
			if skip != nil {
				pd.skip, pd.fr = skip, fr
				pd.matDone = make([]bool, nSegs)
			}
		}
	}
	// The per-item pass runs chunked across the worker pool: every chunk
	// writes disjoint slots of Values/Raw/Signed, and the merged
	// reductions (a max and an any-boundary flag) are order-independent,
	// so the result is bit-identical to the serial loop. Within a chunk,
	// the pass walks segment-aligned subranges so skipped segments drop
	// out wholesale (a parallel chunk may cover a fraction of a
	// segment; both fractions make the same precomputed decision).
	var mu sync.Mutex
	maxFinite := 0.0
	hasBoundary := false
	signed := pd.Signed
	perr := parallelFor(space.n, workers, itemChunk, func(from, to int) error {
		chunkMax := 0.0
		chunkBoundary := false
		for s := from; s < to; {
			end := to
			if skip != nil {
				si := s / dataset.SegmentSize
				if end = (si + 1) * dataset.SegmentSize; end > to {
					end = to
				}
				if skip[si] {
					// Raw[s:end] keeps its zero fill — exactly the distance
					// of every in-range row; a zero never raises chunkMax,
					// and the strict-containment proof rules out boundary
					// hits.
					s = end
					continue
				}
			}
			if singleTable && col == nil {
				fr.ReadFloats(pd.Values[s:end], s)
			}
			for i := s; i < end; i++ {
				var v float64
				if col == nil {
					v = pd.Values[i]
				} else {
					row := i
					if !singleTable {
						r, err := space.rowFor(i, attr.Table)
						if err != nil {
							return err
						}
						row = r
					}
					v = col[row]
					pd.Values[i] = v
				}
				var raw, sd float64
				switch {
				case math.IsNaN(v):
					raw, sd = math.NaN(), math.NaN()
				case pointwise:
					// OpNe: fulfilled (0) unless equal; the failing direction is
					// undefined, so the item becomes uncolorable (section 4.4).
					if v == lo {
						raw, sd = math.NaN(), math.NaN()
					}
				case c.Op == query.OpIn:
					raw, sd = minListDistance(v, c.List)
				case (strictLo && v == lo) || (strictHi && v == hi):
					chunkBoundary = true // distances assigned in the fixup pass
				default:
					raw = distance.ToRange(v, lo, hi)
					if signed != nil {
						sd = distance.ToRangeSigned(v, lo, hi)
					}
				}
				pd.Raw[i] = raw
				if signed != nil {
					signed[i] = sd
				}
				if raw > chunkMax && !math.IsInf(raw, 0) { // NaN compares false
					chunkMax = raw
				}
			}
			s = end
		}
		mu.Lock()
		if chunkMax > maxFinite {
			maxFinite = chunkMax
		}
		hasBoundary = hasBoundary || chunkBoundary
		mu.Unlock()
		return nil
	})
	if perr != nil {
		return perr
	}
	if hasBoundary {
		eps := maxFinite / 128
		if eps == 0 {
			eps = 1
		}
		for i := 0; i < space.n; i++ {
			// Re-derive the boundary membership from the stored values —
			// guarded by the skip mask, whose segments hold stale zero
			// Values (and provably no boundary rows: strict containment
			// requires smin > lo / smax < hi). The conditions are mutually
			// exclusive with every other branch of the fill pass.
			if skip != nil && skip[i/dataset.SegmentSize] {
				continue
			}
			if (strictLo && pd.Values[i] == lo) || (strictHi && pd.Values[i] == hi) {
				pd.Raw[i] = eps
				if signed != nil {
					if strictLo {
						signed[i] = -eps
					} else {
						signed[i] = eps
					}
				}
			}
		}
	}
	if skip != nil {
		// Synthesize the per-chunk pruning index now, while the compute
		// cost is already paid: skipped chunks' entries come straight
		// from the footer proof (min 0, NaN-free), the rest scan. This
		// is what composes the pushdown with the deferred-root block
		// pruning on COLD runs — warm runs build the same index from
		// the cached vector. Requires the storage segment and the
		// evaluator chunk to be the same unit.
		if dataset.SegmentSize == relevance.EvalChunk {
			pd.CStats = relevance.BuildLeafChunkStatsMasked(pd.Raw, skip)
		} else {
			pd.CStats = relevance.BuildLeafChunkStats(pd.Raw)
		}
	}
	return nil
}

// numericRange derives the target interval of a numeric condition.
// pointwise is true for OpNe, where lo carries the excluded value.
func numericRange(c *query.Cond) (lo, hi float64, pointwise bool, err error) {
	valueOf := func(v dataset.Value) (float64, error) {
		f, ok := v.AsFloat()
		if !ok {
			return 0, fmt.Errorf("core: literal %s is not numeric for %q", v, c.Attr)
		}
		return f, nil
	}
	switch c.Op {
	case query.OpGt, query.OpGe:
		v, err := valueOf(c.Value)
		return v, math.Inf(1), false, err
	case query.OpLt, query.OpLe:
		v, err := valueOf(c.Value)
		return math.Inf(-1), v, false, err
	case query.OpEq:
		v, err := valueOf(c.Value)
		return v, v, false, err
	case query.OpNe:
		v, err := valueOf(c.Value)
		return v, v, true, err
	case query.OpBetween:
		l, err := valueOf(c.Lo)
		if err != nil {
			return 0, 0, false, err
		}
		h, err := valueOf(c.Hi)
		return l, h, false, err
	case query.OpIn:
		// Range is informational only (min..max of the list).
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range c.List {
			f, err := valueOf(v)
			if err != nil {
				return 0, 0, false, err
			}
			lo = math.Min(lo, f)
			hi = math.Max(hi, f)
		}
		return lo, hi, false, nil
	default:
		return 0, 0, false, fmt.Errorf("core: unsupported numeric operator %s", c.Op)
	}
}

// minListDistance returns the distance to the nearest IN-list member and
// its signed counterpart.
func minListDistance(v float64, list []dataset.Value) (raw, signed float64) {
	best := math.Inf(1)
	bestSigned := math.Inf(1)
	for _, lv := range list {
		f, ok := lv.AsFloat()
		if !ok {
			continue
		}
		d := math.Abs(v - f)
		if d < best {
			best = d
			bestSigned = v - f
		}
	}
	if math.IsInf(best, 1) {
		return math.NaN(), math.NaN()
	}
	return best, bestSigned
}

// stringCond fills pd for string/ordinal/nominal attributes using the
// string distances and distance matrices of section 3.
func (e *Engine) stringCond(c *query.Cond, attr query.BoundAttr, t *dataset.Table, space *itemSpace, pd *predicateData, workers int) error {
	col, err := t.Column(attr.Attr)
	if err != nil {
		return err
	}
	pd.MinDB, pd.MaxDB = math.NaN(), math.NaN()
	// Resolve the distance: explicit USING overrides; otherwise ordinal
	// attributes use their category-rank matrix, nominal the discrete
	// matrix, and strings edit distance.
	var strDist distance.StringFunc
	var matrix *distance.Matrix
	fieldIdx := t.Schema().Index(attr.Attr)
	categories := t.Schema()[fieldIdx].Categories
	switch {
	case c.DistFunc != "":
		f, err := e.reg.String(c.DistFunc)
		if err != nil {
			return err
		}
		strDist = f
	case attr.Kind == dataset.KindOrdinal:
		m, err := distance.Ordinal(categories)
		if err != nil {
			return err
		}
		matrix = m
	case attr.Kind == dataset.KindNominal:
		m, err := distance.Discrete(categories)
		if err != nil {
			return err
		}
		matrix = m
	default:
		f, err := e.reg.String("edit")
		if err != nil {
			return err
		}
		strDist = f
	}
	dist := func(a, b string) float64 {
		if matrix != nil {
			d, _ := matrix.Dist(a, b)
			return d
		}
		return strDist(a, b)
	}
	// signedOrder gives a direction for ordered string predicates:
	// ordinal ranks when available, lexicographic comparison otherwise.
	signedOrder := func(v, target string) float64 {
		if matrix != nil && attr.Kind == dataset.KindOrdinal {
			rv, rt := matrix.Rank(v), matrix.Rank(target)
			if rv >= 0 && rt >= 0 {
				return float64(rv - rt)
			}
		}
		mag := distance.Lexicographic(v, target)
		return float64(strings.Compare(v, target)) * mag
	}
	// Chunked across the worker pool: string distances (edit distance in
	// particular) dominate this loop, every chunk writes disjoint slots,
	// and the distance functions and matrices are stateless/read-only.
	signed := pd.Signed
	return parallelFor(space.n, workers, itemChunk, func(from, to int) error {
		for i := from; i < to; i++ {
			row, err := space.rowFor(i, attr.Table)
			if err != nil {
				return err
			}
			pd.Values[i] = math.NaN()
			var raw, sd float64
			val := col.Value(row)
			s, ok := val.AsString()
			if !ok {
				raw, sd = math.NaN(), math.NaN()
			} else {
				switch c.Op {
				case query.OpEq:
					tgt := c.Value.S
					d := dist(s, tgt)
					raw = d
					sd = math.Copysign(d, signedOrder(s, tgt))
				case query.OpNe:
					if s == c.Value.S {
						raw, sd = math.NaN(), math.NaN()
					}
				case query.OpIn:
					best := math.Inf(1)
					for _, lv := range c.List {
						if d := dist(s, lv.S); d < best {
							best = d
						}
					}
					raw, sd = best, best
				case query.OpGt, query.OpGe:
					if o := signedOrder(s, c.Value.S); o < 0 {
						raw, sd = -o, o
					}
				case query.OpLt, query.OpLe:
					if o := signedOrder(s, c.Value.S); o > 0 {
						raw, sd = o, o
					}
				case query.OpBetween:
					oLo := signedOrder(s, c.Lo.S)
					oHi := signedOrder(s, c.Hi.S)
					switch {
					case oLo < 0:
						raw, sd = -oLo, oLo
					case oHi > 0:
						raw, sd = oHi, oHi
					}
				default:
					return fmt.Errorf("core: unsupported string operator %s", c.Op)
				}
			}
			pd.Raw[i] = raw
			if signed != nil {
				signed[i] = sd
			}
		}
		return nil
	})
}

// boolEval evaluates a condition exactly (true/false) for the
// non-invertible negation path. Null attribute values evaluate false.
func boolEvalCond(c *query.Cond, b *query.Binding, space *itemSpace, i int) (bool, error) {
	attr := b.Attrs[c]
	t, err := space.tableByName(attr.Table)
	if err != nil {
		return false, err
	}
	row, err := space.rowFor(i, attr.Table)
	if err != nil {
		return false, err
	}
	v, err := t.Value(row, attr.Attr)
	if err != nil {
		return false, err
	}
	if v.Null {
		return false, nil
	}
	if attr.Kind.IsNumeric() {
		f, _ := v.AsFloat()
		switch c.Op {
		case query.OpEq:
			tv, _ := c.Value.AsFloat()
			return f == tv, nil
		case query.OpNe:
			tv, _ := c.Value.AsFloat()
			return f != tv, nil
		case query.OpGt:
			tv, _ := c.Value.AsFloat()
			return f > tv, nil
		case query.OpGe:
			tv, _ := c.Value.AsFloat()
			return f >= tv, nil
		case query.OpLt:
			tv, _ := c.Value.AsFloat()
			return f < tv, nil
		case query.OpLe:
			tv, _ := c.Value.AsFloat()
			return f <= tv, nil
		case query.OpBetween:
			lo, _ := c.Lo.AsFloat()
			hi, _ := c.Hi.AsFloat()
			return f >= lo && f <= hi, nil
		case query.OpIn:
			for _, lv := range c.List {
				if tv, ok := lv.AsFloat(); ok && f == tv {
					return true, nil
				}
			}
			return false, nil
		}
	}
	s, _ := v.AsString()
	switch c.Op {
	case query.OpEq:
		return s == c.Value.S, nil
	case query.OpNe:
		return s != c.Value.S, nil
	case query.OpGt:
		return s > c.Value.S, nil
	case query.OpGe:
		return s >= c.Value.S, nil
	case query.OpLt:
		return s < c.Value.S, nil
	case query.OpLe:
		return s <= c.Value.S, nil
	case query.OpBetween:
		return s >= c.Lo.S && s <= c.Hi.S, nil
	case query.OpIn:
		for _, lv := range c.List {
			if s == lv.S {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("core: cannot boolean-evaluate operator %s", c.Op)
}
